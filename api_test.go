package specabsint

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// tightOptions is tightConfig expressed through the functional-options API.
func tightOptions() []Option {
	return []Option{WithCache(CacheConfig{LineSize: 64, NumSets: 1, Assoc: 19})}
}

func reportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestOptionsMatchConfig checks the two views of the configuration agree:
// a Config rendered back to options (the wire path, Config.Options) must
// produce exactly the report the hand-written option list does.
func TestOptionsMatchConfig(t *testing.T) {
	prog, err := CompileOpts(apiProgram, tightOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := AnalyzeContext(context.Background(), prog, tightOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	viaCfg, err := AnalyzeContext(context.Background(), prog, tightConfig().Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, viaOpts), reportJSON(t, viaCfg); got != want {
		t.Errorf("options path diverges from Config path:\n%s\n%s", got, want)
	}
}

// TestConfigOptionsRoundTrip: Options() must reproduce any Config exactly —
// the invariant the wire protocol's option reconstruction rests on.
func TestConfigOptionsRoundTrip(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(),
		tightConfig(),
		{}, // the zero Config: every field must be emitted, not defaulted
		{
			Cache:                CacheConfig{LineSize: 32, NumSets: 8, Assoc: 2},
			Speculative:          true,
			DepthMiss:            7,
			DepthHit:             3,
			DynamicDepthBounding: true,
			Strategy:             PerRollbackBlock,
			RefinedJoin:          true,
			MaxUnroll:            5,
			Passes:               false,
			SetParallelism:       4,
			Stats:                true,
			MitigateVerify:       true,
		},
	}
	for i, cfg := range cfgs {
		if got := newConfig(cfg.Options()); got != cfg {
			t.Errorf("config %d did not round-trip:\ngot  %+v\nwant %+v", i, got, cfg)
		}
	}
}

// TestOptionSetters checks each With* option lands on the right Config field.
func TestOptionSetters(t *testing.T) {
	cfg := newConfig([]Option{
		WithCache(CacheConfig{LineSize: 32, NumSets: 2, Assoc: 4}),
		WithStrategy(PerRollbackBlock),
		WithDepths(100, 10),
		WithRefinedJoin(false),
		WithSpeculation(false),
		WithDynamicDepthBounding(false),
		WithMaxUnroll(17),
		WithSetParallelism(3),
		nil, // nil options are ignored
	})
	if cfg.Cache.LineSize != 32 || cfg.Cache.NumSets != 2 || cfg.Cache.Assoc != 4 {
		t.Errorf("cache = %+v", cfg.Cache)
	}
	if cfg.Strategy != PerRollbackBlock || cfg.DepthMiss != 100 || cfg.DepthHit != 10 {
		t.Errorf("strategy/depths = %v/%d/%d", cfg.Strategy, cfg.DepthMiss, cfg.DepthHit)
	}
	if cfg.RefinedJoin || cfg.Speculative || cfg.DynamicDepthBounding || cfg.MaxUnroll != 17 {
		t.Errorf("flags = %+v", cfg)
	}
	if cfg.SetParallelism != 3 {
		t.Errorf("SetParallelism = %d, want 3", cfg.SetParallelism)
	}
}

// TestSetParallelismReportUnchanged: the parallelism knob must not alter any
// reported number, only how the fixpoint is scheduled.
func TestSetParallelismReportUnchanged(t *testing.T) {
	setAssoc := WithCache(CacheConfig{LineSize: 64, NumSets: 8, Assoc: 4})
	prog, err := CompileOpts(apiProgram, setAssoc)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := AnalyzeContext(context.Background(), prog, setAssoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		parallel, err := AnalyzeContext(context.Background(), prog, setAssoc, WithSetParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := reportJSON(t, parallel), reportJSON(t, serial); got != want {
			t.Errorf("workers=%d report diverges from serial:\n%s\n%s", workers, got, want)
		}
	}
}

// TestParseErrorPosition checks compile failures expose the exact source
// position through errors.As, across the specabsint error wrap.
func TestParseErrorPosition(t *testing.T) {
	_, err := CompileOpts("int x;\nint main( { return x; }")
	if err == nil {
		t.Fatal("expected a parse error")
	}
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("error %v does not unwrap to *ParseError", err)
	}
	if perr.Line() != 2 || perr.Col() <= 0 {
		t.Errorf("position = %d:%d, want line 2 with a column", perr.Line(), perr.Col())
	}
	if !strings.Contains(err.Error(), "specabsint:") {
		t.Errorf("error lost the package prefix: %v", err)
	}
}

// TestAnalyzeContextCanceled checks a canceled context surfaces as
// ErrCanceled with the context cause preserved.
func TestAnalyzeContextCanceled(t *testing.T) {
	prog, err := CompileOpts(apiProgram)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = AnalyzeContext(ctx, prog, tightOptions()...)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("context cause lost: %v", err)
	}
}

// TestAnalyzeBatchMatchesSerial checks AnalyzeBatch returns, per job, the
// exact report of a serial AnalyzeContext call — including jobs that share
// source (exercising the compile cache) and pre-compiled jobs.
func TestAnalyzeBatchMatchesSerial(t *testing.T) {
	prog, err := CompileOpts(apiProgram, tightOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []BatchJob{
		{Name: "source", Source: apiProgram},
		{Name: "source-again", Source: apiProgram},
		{Name: "precompiled", Prog: prog},
		{Name: "nonspec", Source: apiProgram, Options: []Option{WithSpeculation(false)}},
	}
	results, err := AnalyzeBatch(context.Background(), jobs, tightOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeContext(context.Background(), prog, tightOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := reportJSON(t, want)
	for _, i := range []int{0, 1, 2} {
		if results[i].Err != nil {
			t.Fatalf("%s: %v", results[i].Name, results[i].Err)
		}
		if got := reportJSON(t, results[i].Report); got != wantJSON {
			t.Errorf("%s: batch report diverges from serial", results[i].Name)
		}
	}
	nonspec, err := AnalyzeContext(context.Background(), prog,
		append(tightOptions(), WithSpeculation(false))...)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, results[3].Report); got != reportJSON(t, nonspec) {
		t.Error("per-job option override ignored")
	}
}

// TestAnalyzeBatchAggregatesFailures checks one bad job fails alone, the
// aggregate is a *BatchError in job order, and errors.As digs through it to
// the underlying *ParseError.
func TestAnalyzeBatchAggregatesFailures(t *testing.T) {
	jobs := []BatchJob{
		{Name: "good", Source: apiProgram},
		{Name: "bad", Source: "int main( {"},
	}
	results, err := AnalyzeBatch(context.Background(), jobs)
	if err == nil {
		t.Fatal("expected a batch error")
	}
	var berr *BatchError
	if !errors.As(err, &berr) {
		t.Fatalf("got %T, want *BatchError", err)
	}
	if len(berr.Failures) != 1 || berr.Failures[0].Index != 1 || berr.Failures[0].Name != "bad" {
		t.Errorf("failures = %+v", berr.Failures)
	}
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Errorf("batch error does not unwrap to the job's *ParseError: %v", err)
	}
	if results[0].Err != nil || results[0].Report == nil {
		t.Errorf("good job affected by sibling failure: %+v", results[0])
	}
	if results[1].Err == nil || results[1].Report != nil {
		t.Errorf("bad job not reported: %+v", results[1])
	}
}

// TestAnalyzeBatchCanceled checks a canceled batch fails every job with
// ErrCanceled.
func TestAnalyzeBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := AnalyzeBatch(ctx, []BatchJob{
		{Name: "a", Source: apiProgram},
		{Name: "b", Source: apiProgram},
	})
	if err == nil {
		t.Fatal("expected a batch error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("got %v, want ErrCanceled", err)
	}
	for _, r := range results {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("job %s: got %v, want ErrCanceled", r.Name, r.Err)
		}
	}
}

// TestLeaksSortedBySourceLine checks Report.Leaks come back in source order.
func TestLeaksSortedBySourceLine(t *testing.T) {
	// Partially preloading both tables leaves the secret-indexed accesses
	// able to either hit or miss — two leaks on two source lines.
	const twoLeaks = `
int t1[256]; int t2[256];
secret int k;
int main() {
	reg int i; reg int tmp;
	tmp = 0;
	for (i = 0; i < 256; i += 16) { tmp = tmp + t1[i]; tmp = tmp + t2[i]; }
	tmp = tmp + t2[k & 255];
	tmp = tmp + t1[(k >> 4) & 255];
	return tmp;
}`
	prog, err := CompileOpts(twoLeaks)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeContext(context.Background(), prog, tightOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaks) < 2 {
		t.Fatalf("want at least two leaks, got %v", rep.Leaks)
	}
	prev := 0
	for _, l := range rep.Leaks {
		if !strings.HasPrefix(l.String(), "line ") {
			t.Errorf("leak %q lost its rendered line prefix", l)
		}
		if l.Line < prev {
			t.Errorf("leaks out of source order: %v", rep.Leaks)
		}
		prev = l.Line
	}
}
