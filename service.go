package specabsint

import (
	"context"

	"specabsint/internal/obs"
	"specabsint/internal/runner"
)

// PoolSnapshot is the expvar-style state of a Service's worker pool:
// cumulative job counters, instantaneous running/queue gauges, and the
// hit/miss/eviction/size gauges of both content-addressed cache tiers.
type PoolSnapshot = obs.PoolSnapshot

// ServiceConfig sizes a Service. The zero value is ready to use: GOMAXPROCS
// workers and the default cache bounds.
type ServiceConfig struct {
	// Workers is the analysis pool's concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// ProgramCacheBound bounds the compiled-program cache tier in entries;
	// 0 keeps the default (512), negative disables the bound.
	ProgramCacheBound int
	// ReportCacheBound bounds the report cache tier in entries; 0 keeps the
	// default (4096), negative disables the bound.
	ReportCacheBound int
}

// Service is the long-lived analysis engine behind cmd/specserve: a shared
// worker pool whose two-tier content-addressed cache persists across calls.
// Tier 1 maps SHA-256(source) + lowering configuration to the compiled
// program; tier 2 maps that plus the full analysis configuration to the
// completed Report, so resubmitting an identical request re-runs nothing —
// not even the fixpoint. Only successful analyses are cached; errors always
// re-run.
//
// A Service is safe for concurrent use. Unlike AnalyzeBatch (which builds a
// throwaway pool per call), a Service's caches warm up over its lifetime —
// it is the entry point for daemons, not one-shot sweeps.
type Service struct {
	pool *runner.Pool
}

// NewService creates a Service sized by cfg.
func NewService(cfg ServiceConfig) *Service {
	pool := runner.New(cfg.Workers)
	progBound := cfg.ProgramCacheBound
	switch {
	case progBound == 0:
		progBound = runner.DefaultProgramCacheBound
	case progBound < 0:
		progBound = 0 // unbounded
	}
	repBound := cfg.ReportCacheBound
	switch {
	case repBound == 0:
		repBound = runner.DefaultReportCacheBound
	case repBound < 0:
		repBound = 0 // unbounded
	}
	pool.SetCacheBounds(progBound, repBound)
	return &Service{pool: pool}
}

// Analyze runs one cached analysis: source is compiled and analyzed through
// the shared pool, consulting (and on success populating) the report cache.
// The failure, if any, is in BatchResult.Err — same per-job semantics as
// AnalyzeBatch.
func (s *Service) Analyze(ctx context.Context, name, source string, opts ...Option) BatchResult {
	rj := runnerJob(BatchJob{Name: name, Source: source}, opts, true)
	results := s.pool.RunAll(ctx, []runner.Job{rj})
	return batchResult(results[0])
}

// AnalyzeBatch is AnalyzeBatch on the shared cached pool: results in job
// order, per-job failures aggregated into a *BatchError.
func (s *Service) AnalyzeBatch(ctx context.Context, jobs []BatchJob, opts ...Option) ([]BatchResult, error) {
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		rjobs[i] = runnerJob(j, opts, true)
	}
	results := make([]BatchResult, len(jobs))
	for _, r := range s.pool.RunAll(ctx, rjobs) {
		results[r.Index] = batchResult(r)
	}
	return results, batchError(results)
}

// Stream runs the jobs on the shared cached pool and delivers results in
// completion order — the streamed-batch endpoint's engine. The channel is
// closed after the last result; the caller must drain it. Jobs not started
// when ctx is canceled are dropped (their indices never appear).
func (s *Service) Stream(ctx context.Context, jobs []BatchJob, opts ...Option) <-chan BatchResult {
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		rjobs[i] = runnerJob(j, opts, true)
	}
	out := make(chan BatchResult)
	go func() {
		defer close(out)
		for r := range s.pool.Run(ctx, rjobs) {
			out <- batchResult(r)
		}
	}()
	return out
}

// Snapshot returns the pool's live gauges: job lifecycle counters and both
// cache tiers.
func (s *Service) Snapshot() PoolSnapshot { return s.pool.Snapshot() }

// Drain blocks until every job submitted before the call has completed, or
// ctx expires — the graceful-shutdown path. The caller is responsible for
// stopping new submissions first.
func (s *Service) Drain(ctx context.Context) error { return s.pool.Drain(ctx) }

// PublishExpvar registers the service's live pool snapshot under name in the
// process-wide expvar registry (visible on /debug/vars). Like expvar.Publish
// it panics on duplicate names — publish once, at startup.
func (s *Service) PublishExpvar(name string) { s.pool.PublishExpvar(name) }
