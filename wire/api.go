package wire

import "specabsint/internal/obs"

// This file freezes the specserve v1 HTTP message shapes. Endpoints and
// their envelopes are documented in docs/API.md; every body below carries
// the `"v": 1` version field and obeys the package's canonical-encoding
// rules.

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// V is the contract version; 0 (absent) is accepted as 1 on requests so
	// hand-written curl bodies stay short.
	V int `json:"v,omitempty"`
	// Name labels the request in logs and the response. Optional.
	Name string `json:"name,omitempty"`
	// Source is the MiniC program to analyze.
	Source string `json:"source"`
	// Options overrides the paper's default analysis configuration; absent
	// fields keep their defaults.
	Options *Options `json:"options,omitempty"`
}

// AnalyzeResponse is the success body of POST /v1/analyze.
type AnalyzeResponse struct {
	V    int    `json:"v"`
	Name string `json:"name,omitempty"`
	// CacheHit reports the result was served from the report cache: no
	// fixpoint ran for this request.
	CacheHit bool `json:"cache_hit,omitempty"`
	// ElapsedNanos is the server-side wall clock for the request's job.
	ElapsedNanos int64 `json:"elapsed_nanos,omitempty"`
	// Report is the completed analysis.
	Report *Report `json:"report"`
}

// BatchRequest is the body of POST /v1/batch and /v1/batch/stream.
type BatchRequest struct {
	V int `json:"v,omitempty"`
	// Options are batch-level defaults applied to every job; per-job
	// options override them field by field.
	Options *Options `json:"options,omitempty"`
	// Jobs are analyzed concurrently on the server's worker pool.
	Jobs []BatchJob `json:"jobs"`
}

// BatchJob is one entry of a batch request.
type BatchJob struct {
	Name    string   `json:"name,omitempty"`
	Source  string   `json:"source"`
	Options *Options `json:"options,omitempty"`
}

// BatchItem is one completed batch job: an element of BatchResponse.Results,
// and — on /v1/batch/stream — one NDJSON line, emitted in completion order.
// Exactly one of Report and Error is set.
type BatchItem struct {
	V int `json:"v"`
	// Index is the job's position in the submitted slice.
	Index        int     `json:"index"`
	Name         string  `json:"name,omitempty"`
	CacheHit     bool    `json:"cache_hit,omitempty"`
	ElapsedNanos int64   `json:"elapsed_nanos,omitempty"`
	Report       *Report `json:"report,omitempty"`
	Error        *Error  `json:"error,omitempty"`
}

// BatchResponse is the success body of POST /v1/batch, with results in job
// order.
type BatchResponse struct {
	V       int         `json:"v"`
	Results []BatchItem `json:"results"`
}

// Error codes. Frozen: clients switch on these, not on messages.
const (
	CodeBadRequest   = "bad_request"   // malformed body or options (HTTP 400)
	CodeCompileError = "compile_error" // MiniC front-end rejection (HTTP 422)
	CodeTimeout      = "timeout"       // per-request deadline exceeded (HTTP 504)
	CodeCanceled     = "canceled"      // client went away mid-analysis (HTTP 499 convention)
	CodeOverloaded   = "overloaded"    // admission queue full, retry later (HTTP 429)
	CodeDraining     = "draining"      // server is shutting down (HTTP 503)
	CodeInternal     = "internal"      // everything else (HTTP 500)
)

// Error is the structured failure carried by ErrorResponse and BatchItem.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
	// Line / Col locate compile errors in the submitted source (1-based;
	// 0 when not applicable).
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
}

// Error implements the error interface so decoded failures propagate
// naturally in client code (specload).
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// ErrorResponse is the body of every non-2xx specserve response.
type ErrorResponse struct {
	V     int    `json:"v"`
	Error *Error `json:"error"`
}

// Metrics is the body of GET /v1/metrics: the service-level counters next
// to the worker pool's two-tier cache snapshot (obs.PoolSnapshot, the same
// document the pool publishes on /debug/vars).
type Metrics struct {
	V      int              `json:"v"`
	Server ServerMetrics    `json:"server"`
	Pool   obs.PoolSnapshot `json:"pool"`
}

// ServerMetrics are the HTTP-layer gauges.
type ServerMetrics struct {
	// UptimeNanos is time since the server started.
	UptimeNanos int64 `json:"uptime_nanos"`
	// Requests counts accepted analysis requests (single-shot jobs and
	// batch jobs both count individually); Rejected those turned away by
	// admission control (429); Errors those that completed with a failure.
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
	Errors   int64 `json:"errors"`
	// InFlight is the number of jobs currently admitted and not finished.
	InFlight int64 `json:"in_flight"`
	// QueueBound is the admission queue's capacity.
	QueueBound int `json:"queue_bound"`
	// Draining is true once shutdown has begun.
	Draining bool `json:"draining"`
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	V  int    `json:"v"`
	OK bool   `json:"ok"`
	St string `json:"state"` // "serving" or "draining"
}
