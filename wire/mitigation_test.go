package wire

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"specabsint"
	"specabsint/internal/bench"
)

// sampleMitigation is a fully-populated report exercising every wire field.
func sampleMitigation() *specabsint.MitigationReport {
	return &specabsint.MitigationReport{
		Fences: []specabsint.FencePlacement{
			{Block: "then0", Index: 0, Line: 12, Symbol: "ph"},
			{Block: "else0", Index: 0, Line: 14},
		},
		BaselineLeaks:   2,
		BaselineGadgets: 1,
		ResidualLeaks:   0,
		ResidualGadgets: 0,
		Candidates:      5,
		Analyses:        9,
		BaselineWCET:    5400,
		MitigatedWCET:   5200,
		WCETBounded:     true,
		OverheadPercent: -3.7,
		Verified:        true,
		Traces:          6,
	}
}

// TestMitigationRoundTrip pins the exact-inverse property:
// FromMitigation(m.ToMitigation()) == m, and the canonical encoding is
// byte-stable through a decode.
func TestMitigationRoundTrip(t *testing.T) {
	m := FromMitigation(sampleMitigation())
	rep, err := m.ToMitigation()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Program != nil {
		t.Fatal("Program must not round-trip through the wire")
	}
	back := FromMitigation(rep)
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("round trip drifted:\n %+v\nvs %+v", m, back)
	}

	enc, err := EncodeMitigation(sampleMitigation())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeMitigation(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("decode∘encode not byte-stable:\n%s\nvs\n%s", enc, enc2)
	}
}

// TestMitigationRendered pins that the rendered line is recomputed from the
// placement fields, never stored.
func TestMitigationRendered(t *testing.T) {
	m := FromMitigation(sampleMitigation())
	if got := m.Fences[0].Rendered; !strings.Contains(got, "then0+0") || !strings.Contains(got, "ph") {
		t.Fatalf("rendered placement %q missing location or symbol", got)
	}
	if m.Fences[1].Symbol != "" {
		t.Fatalf("window-entry fence carries symbol %q", m.Fences[1].Symbol)
	}
}

// TestMitigationStrictDecode pins unknown-field rejection and version
// checking — the drift tripwires of the frozen contract.
func TestMitigationStrictDecode(t *testing.T) {
	if _, err := DecodeMitigation([]byte(`{"v":1,"baseline_leaks":1,"bogus":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeMitigation([]byte(`{"v":2,"baseline_leaks":1}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := DecodeMitigation([]byte(`{"baseline_leaks":1}`)); err == nil {
		t.Fatal("missing version accepted")
	}
	if _, err := DecodeMitigation([]byte(`{"v":1,"fences":[{"block":"b0","index":0,"oops":1}]}`)); err == nil {
		t.Fatal("unknown nested fence field accepted")
	}
}

// TestOptionsMitigateVerifyRoundTrip pins the new option through the
// FromConfig/Config round trip, including the non-default value.
func TestOptionsMitigateVerifyRoundTrip(t *testing.T) {
	for _, want := range []bool{true, false} {
		cfg := specabsint.DefaultConfig()
		cfg.MitigateVerify = want
		o, err := FromConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if o.MitigateVerify == nil || *o.MitigateVerify != want {
			t.Fatalf("FromConfig dropped MitigateVerify=%v", want)
		}
		back, err := o.Config()
		if err != nil {
			t.Fatal(err)
		}
		if back != cfg {
			t.Fatalf("config round trip drifted:\n %+v\nvs %+v", cfg, back)
		}
	}
	// Strict decode also covers the options document.
	var o Options
	if err := Unmarshal([]byte(`{"mitigate_verify":true,"mystery":1}`), &o); err == nil {
		t.Fatal("unknown options field accepted")
	}
}

// TestMitigationEndToEnd encodes a real synthesis result for the paper's
// Fig. 2 program and checks the document claims a clean repair.
func TestMitigationEndToEnd(t *testing.T) {
	prog, err := specabsint.CompileOpts(bench.Fig2Program(-1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := specabsint.Mitigate(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeMitigation(rep)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeMitigation(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.BaselineLeaks == 0 || dec.ResidualLeaks != 0 || len(dec.Fences) == 0 {
		t.Fatalf("unexpected mitigation document: %+v", dec)
	}
}
