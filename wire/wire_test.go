package wire

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"specabsint"
	"specabsint/internal/bench"
)

// fig2Report analyzes the Fig. 2 example under cfg.
func fig2Report(t *testing.T, cfg specabsint.Config) *specabsint.Report {
	t.Helper()
	prog, err := specabsint.CompileOpts(bench.Fig2Program(-1), cfg.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := specabsint.AnalyzeContext(context.Background(), prog, cfg.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// testConfigs covers the encoding-relevant configuration corners: defaults,
// baseline (no speculation, so no gadgets), stats on, and a small cache that
// actually produces leaks.
func testConfigs() map[string]specabsint.Config {
	tiny := specabsint.DefaultConfig()
	tiny.Cache = specabsint.CacheConfig{LineSize: 64, NumSets: 4, Assoc: 2}
	base := specabsint.DefaultConfig()
	base.Speculative = false
	stats := specabsint.DefaultConfig()
	stats.Stats = true
	return map[string]specabsint.Config{
		"default": specabsint.DefaultConfig(),
		"tiny":    tiny,
		"base":    base,
		"stats":   stats,
	}
}

// TestReportRoundTrip checks FromReport/ToReport are exact inverses and the
// canonical encoding is byte-stable across decode∘encode.
func TestReportRoundTrip(t *testing.T) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			rep := fig2Report(t, cfg)

			w := FromReport(rep)
			back, err := w.ToReport()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, back) {
				t.Error("ToReport(FromReport(r)) != r")
			}
			if !reflect.DeepEqual(FromReport(back), w) {
				t.Error("FromReport(ToReport(w)) != w")
			}

			enc1, err := EncodeReport(rep)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeReport(enc1)
			if err != nil {
				t.Fatal(err)
			}
			enc2, err := Marshal(dec)
			if err != nil {
				t.Fatal(err)
			}
			if string(enc1) != string(enc2) {
				t.Errorf("decode∘encode is not byte-stable:\n%s\nvs\n%s", enc1, enc2)
			}
			if enc1[len(enc1)-1] != '\n' {
				t.Error("canonical encoding lacks trailing newline")
			}
			if cfg.Stats && dec.Stats == nil {
				t.Error("stats requested but absent from the wire document")
			}
			if !cfg.Stats && dec.Stats != nil {
				t.Error("stats present despite not being requested")
			}
		})
	}
}

// leakyProgram is a Spectre-v1 shape that the tight single-set cache flags.
const leakyProgram = `
int table[256];
int l1[16]; int l2[16];
char p;
secret int key;
int main() {
	reg int i; reg int tmp;
	tmp = 0;
	for (i = 0; i < 256; i += 16) { tmp = tmp + table[i]; }
	if (p == 0) { tmp = tmp + l1[0]; }
	else { tmp = tmp - l2[0]; }
	return tmp + table[key & 255];
}`

// TestLeakRendered checks that the wire Leak carries the derived human
// rendering and that it matches the API's String exactly.
func TestLeakRendered(t *testing.T) {
	cfg := specabsint.DefaultConfig()
	cfg.Cache = specabsint.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 19}
	prog, err := specabsint.CompileOpts(leakyProgram, cfg.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := specabsint.AnalyzeContext(context.Background(), prog, cfg.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	w := FromReport(rep)
	if len(w.Leaks) == 0 {
		t.Fatal("expected the tight cache to flag leaks")
	}
	for i, l := range w.Leaks {
		if l.Rendered != rep.Leaks[i].String() {
			t.Errorf("leak %d: rendered %q != String %q", i, l.Rendered, rep.Leaks[i].String())
		}
		if !strings.HasPrefix(l.Rendered, "line ") {
			t.Errorf("leak %d: unexpected rendering %q", i, l.Rendered)
		}
	}
	back, err := w.ToReport()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Leaks, rep.Leaks) {
		t.Error("leaks do not round-trip")
	}
}

// TestStrictDecode checks unknown fields and bad versions are rejected.
func TestStrictDecode(t *testing.T) {
	rep := fig2Report(t, specabsint.DefaultConfig())
	enc, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}

	tampered := strings.Replace(string(enc), `"v": 1`, `"v": 1,`+"\n  "+`"bogus": true`, 1)
	if _, err := DecodeReport([]byte(tampered)); err == nil {
		t.Error("unknown field accepted")
	}
	wrongVer := strings.Replace(string(enc), `"v": 1`, `"v": 2`, 1)
	if _, err := DecodeReport([]byte(wrongVer)); err == nil {
		t.Error("wrong version accepted")
	}
	var w Report
	if err := Unmarshal([]byte(`{"v": 1, "misses": "three"}`), &w); err == nil {
		t.Error("type mismatch accepted")
	}
}

// TestOptionsRoundTrip checks FromConfig/Config are exact inverses for every
// test configuration, through the JSON encoding as well.
func TestOptionsRoundTrip(t *testing.T) {
	custom := specabsint.Config{
		Cache:                specabsint.CacheConfig{LineSize: 32, NumSets: 16, Assoc: 4},
		Speculative:          true,
		DepthMiss:            77,
		DepthHit:             7,
		DynamicDepthBounding: false,
		Strategy:             specabsint.PerRollbackBlock,
		Scheduler:            specabsint.Worklist,
		Exec:                 specabsint.Interp,
		RefinedJoin:          true,
		MaxUnroll:            9,
		Passes:               true,
		SetParallelism:       3,
		Stats:                true,
	}
	cfgs := testConfigs()
	cfgs["custom"] = custom
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			o, err := FromConfig(cfg)
			if err != nil {
				t.Fatal(err)
			}
			back, err := o.Config()
			if err != nil {
				t.Fatal(err)
			}
			if back != cfg {
				t.Errorf("FromConfig(cfg).Config() = %+v, want %+v", back, cfg)
			}

			enc, err := Marshal(o)
			if err != nil {
				t.Fatal(err)
			}
			var o2 Options
			if err := Unmarshal(enc, &o2); err != nil {
				t.Fatal(err)
			}
			back2, err := o2.Config()
			if err != nil {
				t.Fatal(err)
			}
			if back2 != cfg {
				t.Errorf("JSON round-trip changed the config: %+v vs %+v", back2, cfg)
			}
		})
	}
}

// TestOptionsDefaults checks that absent options mean the paper defaults.
func TestOptionsDefaults(t *testing.T) {
	var nilOpts *Options
	cfg, err := nilOpts.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg != specabsint.DefaultConfig() {
		t.Errorf("nil Options resolved to %+v, want DefaultConfig", cfg)
	}
	var empty Options
	if cfg, err = empty.Config(); err != nil || cfg != specabsint.DefaultConfig() {
		t.Errorf("empty Options resolved to %+v (err %v), want DefaultConfig", cfg, err)
	}

	one := Options{DepthMiss: ptr(123)}
	cfg, err = one.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := specabsint.DefaultConfig()
	want.DepthMiss = 123
	if cfg != want {
		t.Errorf("single-field Options resolved to %+v, want %+v", cfg, want)
	}

	bad := Options{Strategy: ptr("speculate-harder")}
	if _, err := bad.Config(); err == nil {
		t.Error("unknown strategy accepted")
	}
	badExec := Options{Exec: ptr("jit")}
	if _, err := badExec.Config(); err == nil {
		t.Error("unknown exec engine accepted")
	}
}

// TestMarshalLine checks the NDJSON encoding is one line with the same
// field content as the canonical form.
func TestMarshalLine(t *testing.T) {
	rep := fig2Report(t, specabsint.DefaultConfig())
	line, err := MarshalLine(FromReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(line), "\n"); n != 1 || line[len(line)-1] != '\n' {
		t.Fatalf("MarshalLine produced %d newlines, want exactly one trailing", n)
	}
	var w Report
	if err := Unmarshal(line, &w); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&w, FromReport(rep)) {
		t.Error("NDJSON line decodes to a different document")
	}
}
