// Package wire is the frozen v1 JSON contract of the specabsint analysis
// service: one canonical encoding for Report, Leak, SpectreGadget, Stats and
// the analysis options, shared by `specanalyze -json`, the specserve HTTP
// endpoints, and the specload load generator. No CLI or service marshals
// these types ad hoc — they all go through this package, so the bytes a
// client sees are identical no matter which tool produced them.
//
// Contract rules:
//
//   - every document carries a `"v": 1` version field; decoding rejects any
//     other version;
//   - field names are frozen snake_case; empty optional sections are omitted
//     (`omitempty`), absent never means zero-but-present;
//   - encoding is canonical: two-space indent, struct field order, trailing
//     newline — the same document always serializes to the same bytes, and
//     decode∘encode is byte-stable (pinned by property tests);
//   - decoding is strict: unknown fields are an error, so contract drift is
//     caught at the boundary instead of being silently dropped.
//
// The stats section reuses the exact serialization of specabsint.Stats
// (internal/obs), which `specanalyze -stats=json` prints bare and
// stats.schema.json validates — one Stats encoding everywhere.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"

	"specabsint"
)

// Version is the wire contract version every document carries.
const Version = 1

// Report is the canonical serialized form of a completed analysis
// (specabsint.Report).
type Report struct {
	// V is the contract version, always 1.
	V int `json:"v"`
	// Accesses lists every architecturally reachable memory access, in
	// source order.
	Accesses []Access `json:"accesses,omitempty"`
	// Misses is the paper's #Miss; SpecMisses its wrong-path #SpMiss.
	Misses     int `json:"misses"`
	SpecMisses int `json:"spec_misses"`
	// Branches and Iterations report analysis effort.
	Branches   int `json:"branches"`
	Iterations int `json:"iterations"`
	// WCET summarizes the timing estimate.
	WCET WCET `json:"wcet"`
	// Leaks lists detected cache side channels; LeakDetected mirrors
	// len(Leaks) > 0 for clients that only triage.
	Leaks        []Leak `json:"leaks,omitempty"`
	LeakDetected bool   `json:"leak_detected,omitempty"`
	// SpectreGadgets lists speculative transmission gadgets.
	SpectreGadgets []Leak `json:"spectre_gadgets,omitempty"`
	// Stats is the observability snapshot, present when the analysis ran
	// with stats collection. Its encoding is exactly the document
	// `specanalyze -stats=json` prints.
	Stats *specabsint.Stats `json:"stats,omitempty"`
}

// Access is one memory access verdict.
type Access struct {
	Line   int    `json:"line"`
	Store  bool   `json:"store,omitempty"`
	Symbol string `json:"symbol"`
	// Class is the architectural verdict: "always-hit", "always-miss" or
	// "unknown".
	Class string `json:"class"`
	// SpecClass is the wrong-path verdict; omitted (with SpecReached false)
	// when no speculative lane reaches the access.
	SpecClass   string `json:"spec_class,omitempty"`
	SpecReached bool   `json:"spec_reached,omitempty"`
}

// Leak is one detected side channel or Spectre gadget.
type Leak struct {
	Line   int    `json:"line"`
	Symbol string `json:"symbol"`
	Store  bool   `json:"store,omitempty"`
	Class  string `json:"class"`
	// Rendered is the human-readable report line, derived from the fields
	// above (specabsint.Leak.String); it round-trips because it is
	// recomputed, never stored.
	Rendered string `json:"rendered,omitempty"`
}

// WCET is the timing estimate summary.
type WCET struct {
	Accesses        int   `json:"accesses"`
	AlwaysHits      int   `json:"always_hits"`
	AlwaysMisses    int   `json:"always_misses"`
	Unknown         int   `json:"unknown"`
	Misses          int   `json:"misses"`
	SpecMisses      int   `json:"spec_misses"`
	WorstCaseCycles int64 `json:"worst_case_cycles"`
	SpecExtraCycles int64 `json:"spec_extra_cycles"`
}

// classString renders a Classification into its frozen wire name (the same
// names Classification.String and its MarshalJSON use).
func classString(c specabsint.Classification) string { return c.String() }

// classFromString is the inverse of classString.
func classFromString(s string) (specabsint.Classification, error) {
	switch s {
	case "unknown":
		return specabsint.Unknown, nil
	case "always-hit":
		return specabsint.AlwaysHit, nil
	case "always-miss":
		return specabsint.AlwaysMiss, nil
	}
	return specabsint.Unknown, fmt.Errorf("wire: unknown classification %q", s)
}

// FromReport converts a completed analysis into its wire form.
func FromReport(r *specabsint.Report) *Report {
	if r == nil {
		return nil
	}
	out := &Report{
		V:            Version,
		Misses:       r.Misses,
		SpecMisses:   r.SpecMisses,
		Branches:     r.Branches,
		Iterations:   r.Iterations,
		LeakDetected: r.LeakDetected,
		WCET: WCET{
			Accesses:        r.WCET.Accesses,
			AlwaysHits:      r.WCET.AlwaysHits,
			AlwaysMisses:    r.WCET.AlwaysMisses,
			Unknown:         r.WCET.Unknown,
			Misses:          r.WCET.Misses,
			SpecMisses:      r.WCET.SpecMisses,
			WorstCaseCycles: r.WCET.WorstCaseCycles,
			SpecExtraCycles: r.WCET.SpecExtraCycles,
		},
		Stats: r.Stats.Clone(),
	}
	for _, a := range r.Accesses {
		wa := Access{
			Line:        a.Line,
			Store:       a.Store,
			Symbol:      a.Symbol,
			Class:       classString(a.Class),
			SpecReached: a.SpecReached,
		}
		if a.SpecReached {
			wa.SpecClass = classString(a.SpecClass)
		}
		out.Accesses = append(out.Accesses, wa)
	}
	out.Leaks = fromLeaks(r.Leaks)
	out.SpectreGadgets = fromLeaks(r.SpectreGadgets)
	return out
}

func fromLeaks(leaks []specabsint.Leak) []Leak {
	var out []Leak
	for _, l := range leaks {
		out = append(out, Leak{
			Line:     l.Line,
			Symbol:   l.Symbol,
			Store:    l.Store,
			Class:    classString(l.Class),
			Rendered: l.String(),
		})
	}
	return out
}

// ToReport converts a wire document back into the API form. The conversion
// is the exact inverse of FromReport: FromReport(w.ToReport()) == w for any
// document FromReport produced.
func (w *Report) ToReport() (*specabsint.Report, error) {
	if w == nil {
		return nil, nil
	}
	if w.V != Version {
		return nil, fmt.Errorf("wire: unsupported report version %d (want %d)", w.V, Version)
	}
	out := &specabsint.Report{
		Misses:       w.Misses,
		SpecMisses:   w.SpecMisses,
		Branches:     w.Branches,
		Iterations:   w.Iterations,
		LeakDetected: w.LeakDetected,
		WCET: specabsint.WCETEstimate{
			Accesses:        w.WCET.Accesses,
			AlwaysHits:      w.WCET.AlwaysHits,
			AlwaysMisses:    w.WCET.AlwaysMisses,
			Unknown:         w.WCET.Unknown,
			Misses:          w.WCET.Misses,
			SpecMisses:      w.WCET.SpecMisses,
			WorstCaseCycles: w.WCET.WorstCaseCycles,
			SpecExtraCycles: w.WCET.SpecExtraCycles,
		},
		Stats: w.Stats.Clone(),
	}
	for _, a := range w.Accesses {
		cls, err := classFromString(a.Class)
		if err != nil {
			return nil, err
		}
		ra := specabsint.AccessReport{
			Line:        a.Line,
			Store:       a.Store,
			Symbol:      a.Symbol,
			Class:       cls,
			SpecReached: a.SpecReached,
		}
		if a.SpecReached {
			if ra.SpecClass, err = classFromString(a.SpecClass); err != nil {
				return nil, err
			}
		}
		out.Accesses = append(out.Accesses, ra)
	}
	var err error
	if out.Leaks, err = toLeaks(w.Leaks); err != nil {
		return nil, err
	}
	if out.SpectreGadgets, err = toLeaks(w.SpectreGadgets); err != nil {
		return nil, err
	}
	return out, nil
}

func toLeaks(leaks []Leak) ([]specabsint.Leak, error) {
	var out []specabsint.Leak
	for _, l := range leaks {
		cls, err := classFromString(l.Class)
		if err != nil {
			return nil, err
		}
		out = append(out, specabsint.Leak{Line: l.Line, Symbol: l.Symbol, Store: l.Store, Class: cls})
	}
	return out, nil
}

// Marshal renders any wire document in the canonical form: two-space
// indent, frozen field order, trailing newline. The same document always
// produces the same bytes.
func Marshal(doc any) ([]byte, error) {
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// MarshalLine renders a wire document compactly on a single newline-
// terminated line — the NDJSON form used by /v1/batch/stream. Field order
// and names match Marshal exactly; only whitespace differs.
func MarshalLine(doc any) ([]byte, error) {
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Unmarshal strictly decodes a wire document: unknown fields are an error.
func Unmarshal(data []byte, doc any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(doc); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	return nil
}

// EncodeReport is the one-call canonical encoding of an analysis result.
func EncodeReport(r *specabsint.Report) ([]byte, error) {
	return Marshal(FromReport(r))
}

// DecodeReport strictly parses a canonical report document.
func DecodeReport(data []byte) (*Report, error) {
	var w Report
	if err := Unmarshal(data, &w); err != nil {
		return nil, err
	}
	if w.V != Version {
		return nil, fmt.Errorf("wire: unsupported report version %d (want %d)", w.V, Version)
	}
	return &w, nil
}
