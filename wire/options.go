package wire

import (
	"fmt"

	"specabsint"
)

// Options is the wire form of an analysis configuration. Every field is
// optional: absent fields keep the paper's defaults (specabsint
// DefaultConfig), so a request body `{}` — or no options object at all —
// runs the canonical analysis. A fully-populated Options round-trips a
// Config exactly: FromConfig(cfg).Config() == cfg.
type Options struct {
	// Cache is the modeled data-cache geometry.
	Cache *CacheGeometry `json:"cache,omitempty"`
	// Speculative toggles the speculation-aware analysis; false runs the
	// classic baseline.
	Speculative *bool `json:"speculative,omitempty"`
	// DepthMiss / DepthHit bound the speculation window in instructions
	// (the paper's b_m / b_h).
	DepthMiss *int `json:"depth_miss,omitempty"`
	DepthHit  *int `json:"depth_hit,omitempty"`
	// DynamicDepthBounding toggles the §6.2 optimization.
	DynamicDepthBounding *bool `json:"dynamic_depth_bounding,omitempty"`
	// Strategy selects the merge strategy: "jit", "rollback" or "partition"
	// (the same names specanalyze -strategy accepts).
	Strategy *string `json:"strategy,omitempty"`
	// Scheduler selects the fixpoint iteration order: "wto" or "worklist"
	// (the same names specanalyze -scheduler accepts). Classifications are
	// byte-identical under either; it is a performance knob.
	Scheduler *string `json:"scheduler,omitempty"`
	// Exec selects the execution engine: "compiled" or "interp" (the same
	// names specanalyze -exec accepts). Results are byte-identical under
	// either; it is a performance knob.
	Exec *string `json:"exec,omitempty"`
	// RefinedJoin toggles the Appendix-B shadow-variable refinement.
	RefinedJoin *bool `json:"refined_join,omitempty"`
	// MaxUnroll caps full unrolling of constant-trip loops at lowering time.
	MaxUnroll *int `json:"max_unroll,omitempty"`
	// Passes toggles the analysis-preserving pass pipeline after lowering.
	Passes *bool `json:"passes,omitempty"`
	// SetParallelism fans the per-cache-set fixpoints across goroutines
	// (0 = single dense fixpoint). Results are identical at every value.
	SetParallelism *int `json:"set_parallelism,omitempty"`
	// Stats requests the observability snapshot in the response report.
	Stats *bool `json:"stats,omitempty"`
	// MitigateVerify toggles the differential secret-pair trace check on
	// fence-synthesis results (specabsint.Mitigate); analysis requests
	// ignore it.
	MitigateVerify *bool `json:"mitigate_verify,omitempty"`
}

// CacheGeometry is the wire form of specabsint.CacheConfig.
type CacheGeometry struct {
	LineSize int `json:"line_size"`
	NumSets  int `json:"num_sets"`
	Assoc    int `json:"assoc"`
}

// Strategy wire names.
const (
	StrategyJIT       = "jit"
	StrategyRollback  = "rollback"
	StrategyPartition = "partition"
)

// strategyString renders a merge strategy into its frozen wire name.
func strategyString(s specabsint.Strategy) (string, error) {
	switch s {
	case specabsint.JustInTime:
		return StrategyJIT, nil
	case specabsint.MergeAtRollback:
		return StrategyRollback, nil
	case specabsint.PerRollbackBlock:
		return StrategyPartition, nil
	}
	return "", fmt.Errorf("wire: unknown merge strategy %v", s)
}

// strategyFromString is the inverse of strategyString.
func strategyFromString(s string) (specabsint.Strategy, error) {
	switch s {
	case StrategyJIT:
		return specabsint.JustInTime, nil
	case StrategyRollback:
		return specabsint.MergeAtRollback, nil
	case StrategyPartition:
		return specabsint.PerRollbackBlock, nil
	}
	return specabsint.JustInTime, fmt.Errorf("wire: unknown merge strategy %q (want %s, %s or %s)",
		s, StrategyJIT, StrategyRollback, StrategyPartition)
}

// Scheduler wire names.
const (
	SchedulerWTO      = "wto"
	SchedulerWorklist = "worklist"
)

// schedulerString renders a fixpoint scheduler into its frozen wire name.
func schedulerString(s specabsint.Scheduler) (string, error) {
	switch s {
	case specabsint.WTO:
		return SchedulerWTO, nil
	case specabsint.Worklist:
		return SchedulerWorklist, nil
	}
	return "", fmt.Errorf("wire: unknown scheduler %v", s)
}

// schedulerFromString is the inverse of schedulerString.
func schedulerFromString(s string) (specabsint.Scheduler, error) {
	switch s {
	case SchedulerWTO:
		return specabsint.WTO, nil
	case SchedulerWorklist:
		return specabsint.Worklist, nil
	}
	return specabsint.WTO, fmt.Errorf("wire: unknown scheduler %q (want %s or %s)",
		s, SchedulerWTO, SchedulerWorklist)
}

// Exec wire names.
const (
	ExecCompiled = "compiled"
	ExecInterp   = "interp"
)

// execString renders an execution engine into its frozen wire name.
func execString(m specabsint.Exec) (string, error) {
	switch m {
	case specabsint.Compiled:
		return ExecCompiled, nil
	case specabsint.Interp:
		return ExecInterp, nil
	}
	return "", fmt.Errorf("wire: unknown exec engine %v", m)
}

// execFromString is the inverse of execString.
func execFromString(s string) (specabsint.Exec, error) {
	switch s {
	case ExecCompiled:
		return specabsint.Compiled, nil
	case ExecInterp:
		return specabsint.Interp, nil
	}
	return specabsint.Compiled, fmt.Errorf("wire: unknown exec engine %q (want %s or %s)",
		s, ExecCompiled, ExecInterp)
}

// FromConfig renders a Config with every field populated, so the document
// reconstructs the configuration exactly regardless of the receiver's
// defaults.
func FromConfig(cfg specabsint.Config) (*Options, error) {
	strat, err := strategyString(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	sched, err := schedulerString(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	exec, err := execString(cfg.Exec)
	if err != nil {
		return nil, err
	}
	return &Options{
		Cache: &CacheGeometry{
			LineSize: cfg.Cache.LineSize,
			NumSets:  cfg.Cache.NumSets,
			Assoc:    cfg.Cache.Assoc,
		},
		Speculative:          ptr(cfg.Speculative),
		DepthMiss:            ptr(cfg.DepthMiss),
		DepthHit:             ptr(cfg.DepthHit),
		DynamicDepthBounding: ptr(cfg.DynamicDepthBounding),
		Strategy:             ptr(strat),
		Scheduler:            ptr(sched),
		Exec:                 ptr(exec),
		RefinedJoin:          ptr(cfg.RefinedJoin),
		MaxUnroll:            ptr(cfg.MaxUnroll),
		Passes:               ptr(cfg.Passes),
		SetParallelism:       ptr(cfg.SetParallelism),
		Stats:                ptr(cfg.Stats),
		MitigateVerify:       ptr(cfg.MitigateVerify),
	}, nil
}

func ptr[T any](v T) *T { return &v }

// Config resolves the document into a full configuration: the paper's
// defaults overridden by every present field. A nil *Options is valid and
// yields DefaultConfig. The returned Config converts to the option form
// with Config.Options — the reconstruction path every service entry point
// uses:
//
//	cfg, err := req.Options.Config()
//	rep, err := svc.Analyze(ctx, src, cfg.Options()...)
func (o *Options) Config() (specabsint.Config, error) {
	cfg := specabsint.DefaultConfig()
	if o == nil {
		return cfg, nil
	}
	if o.Cache != nil {
		cfg.Cache = specabsint.CacheConfig{
			LineSize: o.Cache.LineSize,
			NumSets:  o.Cache.NumSets,
			Assoc:    o.Cache.Assoc,
		}
	}
	if o.Speculative != nil {
		cfg.Speculative = *o.Speculative
	}
	if o.DepthMiss != nil {
		cfg.DepthMiss = *o.DepthMiss
	}
	if o.DepthHit != nil {
		cfg.DepthHit = *o.DepthHit
	}
	if o.DynamicDepthBounding != nil {
		cfg.DynamicDepthBounding = *o.DynamicDepthBounding
	}
	if o.Strategy != nil {
		strat, err := strategyFromString(*o.Strategy)
		if err != nil {
			return cfg, err
		}
		cfg.Strategy = strat
	}
	if o.Scheduler != nil {
		sched, err := schedulerFromString(*o.Scheduler)
		if err != nil {
			return cfg, err
		}
		cfg.Scheduler = sched
	}
	if o.Exec != nil {
		exec, err := execFromString(*o.Exec)
		if err != nil {
			return cfg, err
		}
		cfg.Exec = exec
	}
	if o.RefinedJoin != nil {
		cfg.RefinedJoin = *o.RefinedJoin
	}
	if o.MaxUnroll != nil {
		cfg.MaxUnroll = *o.MaxUnroll
	}
	if o.Passes != nil {
		cfg.Passes = *o.Passes
	}
	if o.SetParallelism != nil {
		cfg.SetParallelism = *o.SetParallelism
	}
	if o.Stats != nil {
		cfg.Stats = *o.Stats
	}
	if o.MitigateVerify != nil {
		cfg.MitigateVerify = *o.MitigateVerify
	}
	return cfg, nil
}
