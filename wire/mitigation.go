package wire

import (
	"fmt"

	"specabsint"
)

// Mitigation is the canonical serialized form of a fence-synthesis outcome
// (specabsint.MitigationReport). It is a versioned top-level document with
// the same contract rules as Report: frozen snake_case names, canonical
// encoding, strict decoding. The fenced program itself does not travel on
// the wire — the placement list reconstructs it against the source.
type Mitigation struct {
	// V is the contract version, always 1.
	V int `json:"v"`
	// Fences is the synthesized placement set, sorted by block then index.
	Fences []FencePlacement `json:"fences,omitempty"`
	// BaselineLeaks / BaselineGadgets count the input program's reported
	// side channels and Spectre gadgets; ResidualLeaks / ResidualGadgets
	// what survives the fence set (nonzero residual leaks exist under the
	// classic analysis too and are not fence-fixable).
	BaselineLeaks   int `json:"baseline_leaks"`
	BaselineGadgets int `json:"baseline_gadgets"`
	ResidualLeaks   int `json:"residual_leaks"`
	ResidualGadgets int `json:"residual_gadgets"`
	// Candidates counts seeded fence sites; Analyses the re-analysis runs
	// the greedy search spent.
	Candidates int `json:"candidates"`
	Analyses   int `json:"analyses"`
	// BaselineWCET / MitigatedWCET are the worst-case cycle bounds, -1 when
	// the CFG is cyclic; WCETBounded reports whether both exist.
	BaselineWCET  int64 `json:"baseline_wcet"`
	MitigatedWCET int64 `json:"mitigated_wcet"`
	WCETBounded   bool  `json:"wcet_bounded,omitempty"`
	// OverheadPercent is the WCET cost of the repair, two-decimal rounded.
	OverheadPercent float64 `json:"overhead_percent"`
	// Verified / VerifySkipped / Traces report the differential secret-pair
	// trace check on the fenced program.
	Verified      bool `json:"verified,omitempty"`
	VerifySkipped bool `json:"verify_skipped,omitempty"`
	Traces        int  `json:"traces,omitempty"`
}

// FencePlacement is one synthesized fence: inserted immediately before the
// instruction at Index in the block labeled Block.
type FencePlacement struct {
	Block string `json:"block"`
	Index int    `json:"index"`
	Line  int    `json:"line,omitempty"`
	// Symbol names the protected access's variable; omitted when the fence
	// anchors a speculation-window entry rather than a memory access.
	Symbol string `json:"symbol,omitempty"`
	// Rendered is the human-readable placement line, derived from the
	// fields above (specabsint.FencePlacement.String); it round-trips
	// because it is recomputed, never stored.
	Rendered string `json:"rendered,omitempty"`
}

// FromMitigation converts a synthesis outcome into its wire form.
func FromMitigation(r *specabsint.MitigationReport) *Mitigation {
	if r == nil {
		return nil
	}
	out := &Mitigation{
		V:               Version,
		BaselineLeaks:   r.BaselineLeaks,
		BaselineGadgets: r.BaselineGadgets,
		ResidualLeaks:   r.ResidualLeaks,
		ResidualGadgets: r.ResidualGadgets,
		Candidates:      r.Candidates,
		Analyses:        r.Analyses,
		BaselineWCET:    r.BaselineWCET,
		MitigatedWCET:   r.MitigatedWCET,
		WCETBounded:     r.WCETBounded,
		OverheadPercent: r.OverheadPercent,
		Verified:        r.Verified,
		VerifySkipped:   r.VerifySkipped,
		Traces:          r.Traces,
	}
	for _, f := range r.Fences {
		out.Fences = append(out.Fences, FencePlacement{
			Block:    f.Block,
			Index:    f.Index,
			Line:     f.Line,
			Symbol:   f.Symbol,
			Rendered: f.String(),
		})
	}
	return out
}

// ToMitigation converts a wire document back into the API form. The
// conversion is the exact inverse of FromMitigation —
// FromMitigation(m.ToMitigation()) == m for any document FromMitigation
// produced — except for MitigationReport.Program, which does not travel on
// the wire and comes back nil.
func (m *Mitigation) ToMitigation() (*specabsint.MitigationReport, error) {
	if m == nil {
		return nil, nil
	}
	if m.V != Version {
		return nil, fmt.Errorf("wire: unsupported mitigation version %d (want %d)", m.V, Version)
	}
	out := &specabsint.MitigationReport{
		BaselineLeaks:   m.BaselineLeaks,
		BaselineGadgets: m.BaselineGadgets,
		ResidualLeaks:   m.ResidualLeaks,
		ResidualGadgets: m.ResidualGadgets,
		Candidates:      m.Candidates,
		Analyses:        m.Analyses,
		BaselineWCET:    m.BaselineWCET,
		MitigatedWCET:   m.MitigatedWCET,
		WCETBounded:     m.WCETBounded,
		OverheadPercent: m.OverheadPercent,
		Verified:        m.Verified,
		VerifySkipped:   m.VerifySkipped,
		Traces:          m.Traces,
	}
	for _, f := range m.Fences {
		out.Fences = append(out.Fences, specabsint.FencePlacement{
			Block:  f.Block,
			Index:  f.Index,
			Line:   f.Line,
			Symbol: f.Symbol,
		})
	}
	return out, nil
}

// EncodeMitigation is the one-call canonical encoding of a synthesis result.
func EncodeMitigation(r *specabsint.MitigationReport) ([]byte, error) {
	return Marshal(FromMitigation(r))
}

// DecodeMitigation strictly parses a canonical mitigation document.
func DecodeMitigation(data []byte) (*Mitigation, error) {
	var m Mitigation
	if err := Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if m.V != Version {
		return nil, fmt.Errorf("wire: unsupported mitigation version %d (want %d)", m.V, Version)
	}
	return &m, nil
}
