// Package specabsint is a static analyzer that makes abstract
// interpretation sound under speculative execution, reproducing Wu & Wang,
// "Abstract Interpretation under Speculative Execution" (PLDI 2019).
//
// The package compiles MiniC programs (a small C subset, see
// internal/source) to an IR, augments the control flow with the paper's
// virtual control flows (colored speculative lanes with rollback states and
// just-in-time merging), and runs an LRU must/may cache analysis over them.
// Two applications are built in: execution-time estimation and cache
// side-channel detection. A concrete speculative CPU simulator provides
// ground truth.
//
// Quick start:
//
//	prog, err := specabsint.CompileOpts(src)
//	report, err := specabsint.AnalyzeContext(ctx, prog)
//	fmt.Println(report.Misses, report.SpecMisses)
//
// Analyses are configured with functional options (WithCache, WithStrategy,
// WithDepths, ...) on top of the paper's defaults; AnalyzeBatch fans many
// (program, options) jobs out across CPUs with per-job error isolation, and
// Service is the long-lived variant behind cmd/specserve: a shared worker
// pool with a two-tier content-addressed cache (compiled programs and full
// reports). Config remains as the plain-struct view of the same knobs —
// Config.Options converts it back to the option form, which is how
// configurations received over the wire (specabsint/wire) reconstruct the
// analysis.
package specabsint

import (
	"context"
	"fmt"
	"sort"

	"specabsint/internal/bytecode"
	"specabsint/internal/cache"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/lower"
	"specabsint/internal/machine"
	"specabsint/internal/obs"
	"specabsint/internal/passes"
	"specabsint/internal/sidechannel"
	"specabsint/internal/source"
	"specabsint/internal/wcet"
)

// CacheConfig describes the modeled data cache geometry.
type CacheConfig = layout.CacheConfig

// PaperCache returns the paper's cache: 512 lines of 64 bytes, LRU,
// fully associative.
func PaperCache() CacheConfig { return layout.PaperConfig() }

// Strategy selects how speculative states merge with normal ones (Fig. 6 of
// the paper).
type Strategy = core.Strategy

// Merge strategies.
const (
	JustInTime       = core.StrategyJustInTime
	MergeAtRollback  = core.StrategyMergeAtRollback
	PerRollbackBlock = core.StrategyPerRollbackBlock
)

// Scheduler selects the fixpoint iteration order (see WithScheduler).
type Scheduler = core.Scheduler

// Fixpoint schedulers.
const (
	// WTO iterates in Bourdoncle's hierarchical weak topological order,
	// stabilizing inner loop components before re-entering outer ones.
	// The default.
	WTO = core.SchedulerWTO
	// Worklist is the classic reverse-postorder priority worklist.
	Worklist = core.SchedulerWorklist
)

// Exec selects the execution engine for the fixpoint transfer loops and the
// concrete simulator core (see WithExec).
type Exec = bytecode.ExecMode

// Execution engines.
const (
	// Compiled runs the bytecode-compiled forms: per-block access steps for
	// the fixpoint engine, specialized closures for the simulator. The
	// default.
	Compiled = bytecode.ExecCompiled
	// Interp runs the original tree-walking loops over the IR — the
	// differential-testing reference.
	Interp = bytecode.ExecInterp
)

// Classification of one memory access.
type Classification = cache.Classification

// Access classifications.
const (
	Unknown    = cache.Unknown
	AlwaysHit  = cache.AlwaysHit
	AlwaysMiss = cache.AlwaysMiss
)

// WCETEstimate summarizes the timing analysis.
type WCETEstimate = wcet.Estimate

// Stats is the full observability snapshot of one compile + analyze run:
// program shape, pass effects, deterministic fixpoint counters, the cache-set
// partition that ran, and per-phase wall clock. Request it with
// WithStats(true); read it from Report.Stats. All counters except
// Phases[].Nanos are deterministic — identical across repeated runs and
// across SetParallelism worker counts. Stats.JSON renders the canonical form
// validated by internal/obs/stats.schema.json.
type Stats = obs.Stats

// Component types of Stats, aliased so callers can name them.
type (
	ProgramStats   = obs.ProgramStats
	PassStat       = obs.PassStat
	FixpointStats  = obs.FixpointStats
	PartitionStats = obs.PartitionStats
	BytecodeStats  = obs.BytecodeStats
	PhaseStat      = obs.PhaseStat
)

// CompiledProgram is a lowered MiniC program ready for analysis.
type CompiledProgram struct {
	prog *ir.Program
	// stats holds the compile-time observability snapshot (program shape,
	// pass effects, parse/lower/passes phase timings); analyzeConfig replays
	// it into the analysis collector when stats are requested.
	stats *obs.Stats
}

// IR exposes the compiled program's textual IR listing (for debugging).
func (p *CompiledProgram) IR() string { return p.prog.String() }

// Stats returns the compile-time observability snapshot: the program's shape
// after lowering and passes, each pass's effect, and the parse/lower/passes
// wall-clock phases. Analysis counters are absent — run AnalyzeContext with
// WithStats(true) and read Report.Stats for the full picture.
func (p *CompiledProgram) Stats() *Stats { return p.stats.Clone() }

// Internal returns the internal IR program. It is exported for the
// command-line tools and examples living in this module.
func (p *CompiledProgram) Internal() *ir.Program { return p.prog }

// Config configures the analysis.
type Config struct {
	// Cache is the modeled cache; defaults to the paper's 512 x 64 B LRU
	// fully-associative cache.
	Cache CacheConfig
	// Speculative enables the speculation-aware analysis; disabling it
	// yields the classic (unsound-under-speculation) baseline.
	Speculative bool
	// DepthMiss / DepthHit bound the speculation window in instructions
	// (the paper's b_m / b_h).
	DepthMiss int
	DepthHit  int
	// DynamicDepthBounding enables the §6.2 optimization.
	DynamicDepthBounding bool
	// Strategy selects the merge strategy (default JustInTime).
	Strategy Strategy
	// Scheduler selects the fixpoint iteration order (default WTO).
	// Classifications are byte-identical under either scheduler — the
	// classic widening-bearing pass always runs under one canonical
	// schedule, and the speculative completion is a pure monotone
	// iteration — so this is purely a performance knob; only the effort
	// counters (iterations, joins, spawns) differ.
	Scheduler Scheduler
	// Exec selects the execution engine (default Compiled). Results are
	// byte-identical under either engine — the compiled form replays the
	// exact access/transfer sequence of the tree walk — so this is purely
	// a performance knob; Interp is the differential-testing reference.
	Exec Exec
	// RefinedJoin enables the Appendix-B shadow-variable refinement.
	RefinedJoin bool
	// MaxUnroll caps full unrolling of constant-trip loops.
	MaxUnroll int
	// Passes runs the analysis-preserving pass pipeline (SCCP, copy
	// propagation, branch resolution, DCE — see internal/passes) after
	// lowering. On by default: classifications are byte-identical or
	// strictly more precise, never weaker. WithPasses(false) is the escape
	// hatch for debugging or A/B comparison against the untransformed IR.
	Passes bool
	// SetParallelism >= 1 partitions the analysis by independent cache-set
	// groups and fans the per-group fixpoints across up to that many
	// goroutines (1 = partitioned but serial). 0, the default, runs the
	// single dense fixpoint. Results are identical at every value.
	SetParallelism int
	// Stats populates Report.Stats with the observability snapshot (compile
	// phases, pass effects, fixpoint counters, partition shape). Off by
	// default; the un-instrumented analysis path is allocation-free.
	Stats bool
	// MitigateVerify runs the differential secret-pair trace check on the
	// fenced program Mitigate synthesizes (on by default). It only affects
	// Mitigate; the analysis entry points ignore it.
	MitigateVerify bool
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	o := core.DefaultOptions()
	return Config{
		Cache:                o.Cache,
		Speculative:          true,
		DepthMiss:            o.DepthMiss,
		DepthHit:             o.DepthHit,
		DynamicDepthBounding: o.DynamicDepthBounding,
		Strategy:             o.Strategy,
		Scheduler:            o.Scheduler,
		Exec:                 o.Exec,
		RefinedJoin:          o.RefinedJoin,
		MaxUnroll:            lower.DefaultOptions().MaxUnroll,
		Passes:               true,
		MitigateVerify:       true,
	}
}

func (c Config) coreOptions() core.Options {
	o := core.DefaultOptions()
	o.Cache = c.Cache
	o.Speculative = c.Speculative
	o.DepthMiss = c.DepthMiss
	o.DepthHit = c.DepthHit
	o.DynamicDepthBounding = c.DynamicDepthBounding
	o.Strategy = c.Strategy
	o.Scheduler = c.Scheduler
	o.Exec = c.Exec
	o.RefinedJoin = c.RefinedJoin
	o.SetParallelism = c.SetParallelism
	return o
}

// Leak describes one detected cache timing side channel: a secret-indexed
// memory access whose cache behaviour — and therefore latency — can vary
// with the secret. The zero Class (Unknown) is what makes the timing
// observable; Leaks never carry a constant-time verdict.
type Leak struct {
	// Line is the access's source line.
	Line int
	// Symbol is the accessed variable.
	Symbol string
	// Store reports whether the access is a write.
	Store bool
	// Class is the (non-constant) hit/miss verdict that makes the timing
	// observable.
	Class Classification
}

// String renders the leak for reports.
func (l Leak) String() string {
	kind := "load"
	if l.Store {
		kind = "store"
	}
	if l.Class == Unknown {
		return fmt.Sprintf("line %d: secret-indexed %s of %s may hit or miss (%s)",
			l.Line, kind, l.Symbol, l.Class)
	}
	return fmt.Sprintf("line %d: secret-dependent %s of %s installs a secret-selected cache line (%s)",
		l.Line, kind, l.Symbol, l.Class)
}

// SpectreGadget is a Spectre-v1 style transmission gadget: an access on a
// speculative path whose address may carry a value read out of bounds past a
// mis-speculated bounds check. It shares Leak's shape and rendering; the two
// are reported in separate lists because gadgets are this reproduction's
// extension beyond the paper's timing-channel model.
type SpectreGadget = Leak

// AccessReport describes one memory access in the analyzed program.
type AccessReport struct {
	Line  int
	Store bool
	// Symbol is the accessed variable.
	Symbol string
	// Class is the hit/miss verdict on architectural flows (normal
	// execution including post-rollback pollution).
	Class Classification
	// SpecClass is the verdict on wrong-path executions; SpecReached is
	// false when no speculative lane reaches the access.
	SpecClass   Classification
	SpecReached bool
}

// Report is a completed analysis.
type Report struct {
	// Accesses lists every architecturally reachable memory access, in
	// source order.
	Accesses []AccessReport
	// Misses counts accesses not proved always-hit (the paper's #Miss).
	Misses int
	// SpecMisses counts wrong-path accesses not proved always-hit (#SpMiss).
	SpecMisses int
	// Branches and Iterations report analysis effort.
	Branches   int
	Iterations int
	// WCET summarizes the timing estimate.
	WCET WCETEstimate
	// Leaks lists detected cache side channels (secret-indexed accesses
	// with non-constant timing), in source order.
	Leaks []Leak
	// LeakDetected is true when Leaks is non-empty.
	LeakDetected bool
	// SpectreGadgets lists Spectre-v1 style transmission gadgets: accesses
	// on speculative paths whose address may carry a value read out of
	// bounds past a mis-speculated bounds check.
	SpectreGadgets []SpectreGadget
	// Stats is the observability snapshot, populated only when the analysis
	// ran with WithStats(true) (nil otherwise). Everything except
	// Stats.Phases[].Nanos is deterministic.
	Stats *Stats
}

// CompileOpts parses and lowers MiniC source. Only WithMaxUnroll (and a
// MaxUnroll carried by WithConfig) affects lowering. Compilation errors
// satisfy errors.As for *ParseError, with the source position preserved.
func CompileOpts(src string, opts ...Option) (*CompiledProgram, error) {
	return compileConfig(src, newConfig(opts))
}

func compileConfig(src string, cfg Config) (*CompiledProgram, error) {
	// Compile-time stats are collected unconditionally: the counters are a
	// handful of integers and the phase timers two clock reads each, noise
	// next to parsing and lowering. WithStats only gates the analysis side.
	col := obs.NewCollector()
	var ast *source.Program
	var err error
	col.Phase("parse", func() { ast, err = source.Parse(src) })
	if err != nil {
		return nil, wrapErr(err)
	}
	lopts := lower.DefaultOptions()
	if cfg.MaxUnroll > 0 {
		lopts.MaxUnroll = cfg.MaxUnroll
	}
	var prog *ir.Program
	col.Phase("lower", func() { prog, err = lower.Lower(ast, lopts) })
	if err != nil {
		return nil, wrapErr(err)
	}
	if cfg.Passes {
		var pres *passes.Result
		col.Phase("passes", func() { pres, err = passes.Run(prog, passes.Default()) })
		if err != nil {
			return nil, wrapErr(err)
		}
		for _, ps := range pres.Stats {
			col.AddPass(ps.Name, ps.Changed)
		}
	}
	col.SetProgram(programStats(prog))
	return &CompiledProgram{prog: prog, stats: col.Snapshot()}, nil
}

// programStats summarizes the IR shape after lowering and passes.
func programStats(prog *ir.Program) ProgramStats {
	return ProgramStats{
		Blocks:           len(prog.Blocks),
		Instrs:           prog.InstrCount(),
		Symbols:          len(prog.Symbols),
		MemAccesses:      prog.MemAccessCount(),
		CondBranches:     prog.CondBranchCount(),
		ResolvedBranches: prog.ResolvedBranchCount(),
	}
}

// AnalyzeContext runs the speculation-aware cache analysis and both
// applications (execution-time estimation and side-channel detection),
// configured by opts on top of the paper's defaults. The fixpoint loop
// polls ctx between iterations; on cancellation the returned error
// satisfies both errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()).
func AnalyzeContext(ctx context.Context, p *CompiledProgram, opts ...Option) (*Report, error) {
	return analyzeConfig(ctx, p, newConfig(opts))
}

func analyzeConfig(ctx context.Context, p *CompiledProgram, cfg Config) (*Report, error) {
	copts := cfg.coreOptions()
	var col *obs.Collector
	if cfg.Stats {
		col = obs.NewCollector()
		// Replay the compile-time snapshot so one Stats document covers the
		// whole pipeline: program shape, pass effects, then analysis phases.
		if cs := p.stats; cs != nil {
			col.SetProgram(cs.Program)
			for _, ps := range cs.Passes {
				col.AddPass(ps.Name, ps.Changed)
			}
			for _, ph := range cs.Phases {
				col.AddPhase(ph.Name, ph.Nanos)
			}
		}
		copts.Collector = col
	}
	rep, err := sidechannel.AnalyzeContext(ctx, p.prog, copts)
	if err != nil {
		return nil, wrapErr(err)
	}
	out := buildReport(p.prog, rep)
	out.Stats = col.Snapshot()
	return out, nil
}

// buildReport converts the internal side-channel report into the public
// Report. Leaks and SpectreGadgets inherit the source-line ordering of the
// internal report; Accesses are listed in source order.
func buildReport(prog *ir.Program, rep *sidechannel.Report) *Report {
	res := rep.Analysis
	out := &Report{
		Misses:       res.MissCount(),
		SpecMisses:   res.SpecMissCount(),
		Branches:     res.Branches,
		Iterations:   res.Iterations,
		WCET:         wcet.New(res, wcet.DefaultCosts()),
		LeakDetected: rep.LeakDetected(),
	}
	for _, l := range rep.Leaks {
		out.Leaks = append(out.Leaks, Leak{Line: l.Line, Symbol: l.Sym, Store: l.Store, Class: l.Class})
	}
	for _, l := range rep.SpectreLeaks {
		out.SpectreGadgets = append(out.SpectreGadgets, SpectreGadget{Line: l.Line, Symbol: l.Sym, Store: l.Store, Class: l.Class})
	}
	ids := make([]int, 0, len(res.Access))
	for id := range res.Access {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		info := res.Access[id]
		spec, reached := res.SpecAccess[id]
		out.Accesses = append(out.Accesses, AccessReport{
			Line:        info.Instr.Line,
			Store:       info.Instr.Op == ir.OpStore,
			Symbol:      prog.Symbol(info.Instr.Sym).Name,
			Class:       info.Class,
			SpecClass:   spec,
			SpecReached: reached,
		})
	}
	return out
}

// SimulationResult carries the concrete simulator's counters.
type SimulationResult = machine.Stats

// Simulate executes the program on the concrete speculative CPU simulator
// with the same cache geometry and speculation windows as cfg. When
// cfg.Speculative is set, every branch is mispredicted (worst-case
// wrong-path pollution); otherwise speculation is disabled.
func Simulate(p *CompiledProgram, cfg Config) (SimulationResult, error) {
	mc := machine.DefaultConfig()
	mc.Cache = cfg.Cache
	mc.DepthMiss = cfg.DepthMiss
	mc.DepthHit = cfg.DepthHit
	mc.Exec = cfg.Exec
	mc.ForceMispredict = true
	if !cfg.Speculative {
		mc.DepthMiss, mc.DepthHit = 0, 0
		mc.ForceMispredict = false
	}
	return machine.RunProgram(p.prog, mc)
}
