// Package specabsint is a static analyzer that makes abstract
// interpretation sound under speculative execution, reproducing Wu & Wang,
// "Abstract Interpretation under Speculative Execution" (PLDI 2019).
//
// The package compiles MiniC programs (a small C subset, see
// internal/source) to an IR, augments the control flow with the paper's
// virtual control flows (colored speculative lanes with rollback states and
// just-in-time merging), and runs an LRU must/may cache analysis over them.
// Two applications are built in: execution-time estimation and cache
// side-channel detection. A concrete speculative CPU simulator provides
// ground truth.
//
// Quick start:
//
//	prog, err := specabsint.Compile(src)
//	report, err := specabsint.Analyze(prog, specabsint.DefaultConfig())
//	fmt.Println(report.Misses, report.SpecMisses)
package specabsint

import (
	"fmt"
	"sort"

	"specabsint/internal/cache"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/lower"
	"specabsint/internal/machine"
	"specabsint/internal/sidechannel"
	"specabsint/internal/source"
	"specabsint/internal/wcet"
)

// CacheConfig describes the modeled data cache geometry.
type CacheConfig = layout.CacheConfig

// PaperCache returns the paper's cache: 512 lines of 64 bytes, LRU,
// fully associative.
func PaperCache() CacheConfig { return layout.PaperConfig() }

// Strategy selects how speculative states merge with normal ones (Fig. 6 of
// the paper).
type Strategy = core.Strategy

// Merge strategies.
const (
	JustInTime       = core.StrategyJustInTime
	MergeAtRollback  = core.StrategyMergeAtRollback
	PerRollbackBlock = core.StrategyPerRollbackBlock
)

// Classification of one memory access.
type Classification = cache.Classification

// Access classifications.
const (
	Unknown    = cache.Unknown
	AlwaysHit  = cache.AlwaysHit
	AlwaysMiss = cache.AlwaysMiss
)

// WCETEstimate summarizes the timing analysis.
type WCETEstimate = wcet.Estimate

// CompiledProgram is a lowered MiniC program ready for analysis.
type CompiledProgram struct {
	prog *ir.Program
}

// IR exposes the compiled program's textual IR listing (for debugging).
func (p *CompiledProgram) IR() string { return p.prog.String() }

// Internal returns the internal IR program. It is exported for the
// command-line tools and examples living in this module.
func (p *CompiledProgram) Internal() *ir.Program { return p.prog }

// Config configures the analysis.
type Config struct {
	// Cache is the modeled cache; defaults to the paper's 512 x 64 B LRU
	// fully-associative cache.
	Cache CacheConfig
	// Speculative enables the speculation-aware analysis; disabling it
	// yields the classic (unsound-under-speculation) baseline.
	Speculative bool
	// DepthMiss / DepthHit bound the speculation window in instructions
	// (the paper's b_m / b_h).
	DepthMiss int
	DepthHit  int
	// DynamicDepthBounding enables the §6.2 optimization.
	DynamicDepthBounding bool
	// Strategy selects the merge strategy (default JustInTime).
	Strategy Strategy
	// RefinedJoin enables the Appendix-B shadow-variable refinement.
	RefinedJoin bool
	// MaxUnroll caps full unrolling of constant-trip loops.
	MaxUnroll int
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	o := core.DefaultOptions()
	return Config{
		Cache:                o.Cache,
		Speculative:          true,
		DepthMiss:            o.DepthMiss,
		DepthHit:             o.DepthHit,
		DynamicDepthBounding: o.DynamicDepthBounding,
		Strategy:             o.Strategy,
		RefinedJoin:          o.RefinedJoin,
		MaxUnroll:            lower.DefaultOptions().MaxUnroll,
	}
}

func (c Config) coreOptions() core.Options {
	o := core.DefaultOptions()
	o.Cache = c.Cache
	o.Speculative = c.Speculative
	o.DepthMiss = c.DepthMiss
	o.DepthHit = c.DepthHit
	o.DynamicDepthBounding = c.DynamicDepthBounding
	o.Strategy = c.Strategy
	o.RefinedJoin = c.RefinedJoin
	return o
}

// AccessReport describes one memory access in the analyzed program.
type AccessReport struct {
	Line  int
	Store bool
	// Symbol is the accessed variable.
	Symbol string
	// Class is the hit/miss verdict on architectural flows (normal
	// execution including post-rollback pollution).
	Class Classification
	// SpecClass is the verdict on wrong-path executions; SpecReached is
	// false when no speculative lane reaches the access.
	SpecClass   Classification
	SpecReached bool
}

// Report is a completed analysis.
type Report struct {
	// Accesses lists every architecturally reachable memory access, in
	// source order.
	Accesses []AccessReport
	// Misses counts accesses not proved always-hit (the paper's #Miss).
	Misses int
	// SpecMisses counts wrong-path accesses not proved always-hit (#SpMiss).
	SpecMisses int
	// Branches and Iterations report analysis effort.
	Branches   int
	Iterations int
	// WCET summarizes the timing estimate.
	WCET WCETEstimate
	// Leaks lists detected cache side channels (secret-indexed accesses
	// with non-constant timing).
	Leaks []string
	// LeakDetected is true when Leaks is non-empty.
	LeakDetected bool
	// SpectreGadgets lists Spectre-v1 style transmission gadgets: accesses
	// on speculative paths whose address may carry a value read out of
	// bounds past a mis-speculated bounds check.
	SpectreGadgets []string
}

// Compile parses and lowers MiniC source with the default configuration.
func Compile(src string) (*CompiledProgram, error) {
	return CompileWith(src, DefaultConfig())
}

// CompileWith parses and lowers MiniC source with explicit options.
func CompileWith(src string, cfg Config) (*CompiledProgram, error) {
	ast, err := source.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("specabsint: %w", err)
	}
	lopts := lower.DefaultOptions()
	if cfg.MaxUnroll > 0 {
		lopts.MaxUnroll = cfg.MaxUnroll
	}
	prog, err := lower.Lower(ast, lopts)
	if err != nil {
		return nil, fmt.Errorf("specabsint: %w", err)
	}
	return &CompiledProgram{prog: prog}, nil
}

// Analyze runs the speculation-aware cache analysis and both applications
// (execution-time estimation and side-channel detection).
func Analyze(p *CompiledProgram, cfg Config) (*Report, error) {
	opts := cfg.coreOptions()
	rep, err := sidechannel.Analyze(p.prog, opts)
	if err != nil {
		return nil, fmt.Errorf("specabsint: %w", err)
	}
	res := rep.Analysis
	out := &Report{
		Misses:       res.MissCount(),
		SpecMisses:   res.SpecMissCount(),
		Branches:     res.Branches,
		Iterations:   res.Iterations,
		WCET:         wcet.New(res, wcet.DefaultCosts()),
		LeakDetected: rep.LeakDetected(),
	}
	for _, l := range rep.Leaks {
		out.Leaks = append(out.Leaks, l.String())
	}
	for _, l := range rep.SpectreLeaks {
		out.SpectreGadgets = append(out.SpectreGadgets, l.String())
	}
	ids := make([]int, 0, len(res.Access))
	for id := range res.Access {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		info := res.Access[id]
		spec, reached := res.SpecAccess[id]
		out.Accesses = append(out.Accesses, AccessReport{
			Line:        info.Instr.Line,
			Store:       info.Instr.Op == ir.OpStore,
			Symbol:      p.prog.Symbol(info.Instr.Sym).Name,
			Class:       info.Class,
			SpecClass:   spec,
			SpecReached: reached,
		})
	}
	return out, nil
}

// SimulationResult carries the concrete simulator's counters.
type SimulationResult = machine.Stats

// Simulate executes the program on the concrete speculative CPU simulator
// with the same cache geometry and speculation windows as cfg. When
// cfg.Speculative is set, every branch is mispredicted (worst-case
// wrong-path pollution); otherwise speculation is disabled.
func Simulate(p *CompiledProgram, cfg Config) (SimulationResult, error) {
	mc := machine.DefaultConfig()
	mc.Cache = cfg.Cache
	mc.DepthMiss = cfg.DepthMiss
	mc.DepthHit = cfg.DepthHit
	mc.ForceMispredict = true
	if !cfg.Speculative {
		mc.DepthMiss, mc.DepthHit = 0, 0
		mc.ForceMispredict = false
	}
	return machine.RunProgram(p.prog, mc)
}
