//go:build !race

package specabsint

// raceDetectorOn marks builds under `go test -race`; see race_on_test.go.
const raceDetectorOn = false
