package specabsint

import (
	"context"
	"testing"

	"specabsint/internal/irverify"
)

// FuzzAnalyze asserts the analysis pipeline is total on type-checked
// programs: whenever CompileOpts accepts an input, AnalyzeContext must
// return a report or an error — never panic — under speculation-hostile
// options. Lowering is bounded (small MaxUnroll, capped input size) so the
// fuzzer explores program shapes rather than giant unrollings; the file
// corpus lives in testdata/fuzz/FuzzAnalyze.
func FuzzAnalyze(f *testing.F) {
	for _, seed := range []string{
		"int main() { return 0; }",
		"int g0 = 1;\nint arr[8];\nint main(int inp) {\nif (inp >= 0 && inp < 8) { g0 = arr[inp]; }\nreturn g0;\n}\n",
		"char ph[256];\nchar p;\nsecret int k;\nint main() {\nreg int i;\nreg int t;\nfor (i = 0; i < 256; i += 64) { t = ph[i]; }\nif (p == 0) { t = ph[0]; }\nt = ph[k & 255];\nreturn t;\n}\n",
		"int a[4] = { 3, 1, 4, 1 };\nint main(int x) {\nfor (int i = 0; i < 4; i++) {\nif (a[i] == x) { return i; }\n}\nreturn -1;\n}\n",
		"secret int sec;\nint sink;\nint arr0[16];\nint main(int inp) {\nsink = arr0[sec & 15];\nreturn inp;\n}\n",
		"char ph[128];\nsecret int k;\nint main(int inp) {\nreg int t;\nif (inp == 0) {\nfence;\nt = ph[k & 127];\n}\nreturn t;\n}\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		opts := []Option{
			WithMaxUnroll(64),
			WithDepths(8, 8),
			WithCache(CacheConfig{LineSize: 32, NumSets: 2, Assoc: 2}),
		}
		p, err := CompileOpts(src, opts...)
		if err != nil {
			return // front-end rejections are FuzzParse's concern
		}
		// Every accepted program must be structurally well-formed after
		// lowering and the pass pipeline; a diagnostic here is a compiler
		// bug, not a bad input.
		if verr := irverify.Verify(p.Internal()); verr != nil {
			t.Fatalf("compiled program fails the IR verifier: %v", verr)
		}
		rep, err := AnalyzeContext(context.Background(), p, opts...)
		if err == nil && rep == nil {
			t.Fatal("AnalyzeContext returned nil report and nil error")
		}
	})
}
