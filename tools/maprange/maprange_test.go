package maprange

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"specabsint/tools/analysis"
)

// runOn applies the analyzer to one source string and returns the rendered
// diagnostics.
func runOn(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var out []string
	pass := &analysis.Pass{
		Analyzer: Analyzer,
		Fset:     fset,
		Files:    []*ast.File{f},
		Pkg:      f.Name.Name,
		Report: func(d analysis.Diagnostic) {
			out = append(out, fset.Position(d.Pos).String()+": "+d.Message)
		},
	}
	if err := Analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func wantDiag(t *testing.T, diags []string, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d, substr) {
			return
		}
	}
	t.Fatalf("no diagnostic containing %q; got %v", substr, diags)
}

func wantClean(t *testing.T, diags []string) {
	t.Helper()
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics, got %v", diags)
	}
}

func TestAppendWithoutSort(t *testing.T) {
	wantDiag(t, runOn(t, `package p
func f(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}`), "appends to out")
}

func TestCollectThenSortIsClean(t *testing.T) {
	wantClean(t, runOn(t, `package p
import "sort"
func f(m map[int]string) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}`))
}

func TestSortHelperIsClean(t *testing.T) {
	wantClean(t, runOn(t, `package p
func f(m map[site]bool) []site {
	var out []site
	for s := range m {
		out = append(out, s)
	}
	sortSites(out)
	return out
}`))
}

func TestWriterInLoop(t *testing.T) {
	wantDiag(t, runOn(t, `package p
import "fmt"
import "io"
func f(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}`), "writes output via Fprintf")
}

func TestStringConcat(t *testing.T) {
	wantDiag(t, runOn(t, `package p
func f() string {
	m := map[string]int{"a": 1}
	s := ""
	for k := range m {
		s += k + ";"
	}
	return s
}`), "concatenates into s")
}

func TestCountingIsClean(t *testing.T) {
	wantClean(t, runOn(t, `package p
func f(m map[int]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}`))
}

func TestLoopLocalAppendIsClean(t *testing.T) {
	wantClean(t, runOn(t, `package p
func f(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		tmp := []int{}
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}`))
}

func TestLoopLocalVarAppendIsClean(t *testing.T) {
	wantClean(t, runOn(t, `package p
func f(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}`))
}

func TestStructFieldMap(t *testing.T) {
	wantDiag(t, runOn(t, `package p
type R struct {
	Access map[int]string
}
func f(r *R) []string {
	var out []string
	for _, v := range r.Access {
		out = append(out, v)
	}
	return out
}`), "appends to out")
}

func TestSliceRangeIsClean(t *testing.T) {
	wantClean(t, runOn(t, `package p
func f(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}`))
}

func TestMakeMapLocal(t *testing.T) {
	wantDiag(t, runOn(t, `package p
func f() []int {
	m := make(map[int]bool)
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}`), "appends to out")
}
