// Package maprange is a vet-style analyzer that flags nondeterministic
// map iteration feeding ordered output. Go randomizes map iteration order,
// so a `for ... range m` over a map that appends to a slice, writes to an
// io.Writer, or concatenates into a string produces a different result on
// every run — exactly the bug class the project's determinism contracts
// (canonical wire encodings, diffable -stats output, stable mitigation
// reports) exist to prevent.
//
// The checker is syntactic (the driver does not type-check): an expression
// counts as a map when the surrounding function or package declares it as
// one (make(map...), a map literal, a `var x map[...]`, a map-typed
// parameter) or when it is a selector whose field name is declared with map
// type — and only map type — somewhere in the package. A flagged loop body
// must actually order its output: it appends to a slice declared outside
// the loop, calls a printing/writing method, or string-concatenates into an
// outer variable. Loops whose accumulated slice is visibly sorted later in
// the same function are exempt — collect-then-sort is the idiomatic fix,
// not a bug.
package maprange

import (
	"fmt"
	"go/ast"
	"go/token"

	"specabsint/tools/analysis"
)

// Analyzer is the nondeterministic-map-iteration checker.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag `for ... range m` over a map whose body appends to a slice, writes\n" +
		"output, or builds a string: iteration order is nondeterministic, so the\n" +
		"result differs run to run; collect the keys and sort them first",
	Run: run,
}

// writerCalls are method names whose invocation inside a map-range loop
// emits output in iteration order.
var writerCalls = map[string]bool{
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

func run(pass *analysis.Pass) error {
	fields := packageMapFields(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass, maps: map[string]bool{}, fields: fields}
			c.collectMapDecls(f)
			c.collectFuncMaps(fn)
			c.checkBody(fn.Body)
		}
	}
	return nil
}

// packageMapFields collects struct field names that are declared with map
// type — and never with a non-map type — anywhere in the package, so
// `x.Sel` can be recognized as a map without type information.
func packageMapFields(files []*ast.File) map[string]bool {
	mapNamed := map[string]bool{}
	otherNamed := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				_, isMap := fld.Type.(*ast.MapType)
				for _, name := range fld.Names {
					if isMap {
						mapNamed[name.Name] = true
					} else {
						otherNamed[name.Name] = true
					}
				}
			}
			return true
		})
	}
	for name := range otherNamed {
		delete(mapNamed, name)
	}
	return mapNamed
}

type checker struct {
	pass *analysis.Pass
	// maps holds local identifiers known to be map-typed.
	maps map[string]bool
	// fields holds package struct field names that are unambiguously maps.
	fields map[string]bool
}

// collectMapDecls records package-level `var x map[...]` declarations.
func (c *checker) collectMapDecls(f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if _, isMap := vs.Type.(*ast.MapType); isMap {
				for _, name := range vs.Names {
					c.maps[name.Name] = true
				}
			}
		}
	}
}

// collectFuncMaps records map-typed parameters, receivers and local
// declarations of one function.
func (c *checker) collectFuncMaps(fn *ast.FuncDecl) {
	record := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			if _, isMap := fld.Type.(*ast.MapType); isMap {
				for _, name := range fld.Names {
					c.maps[name.Name] = true
				}
			}
		}
	}
	record(fn.Recv)
	record(fn.Type.Params)
	record(fn.Type.Results)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if isMapExpr(rhs) {
					c.maps[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						_, typed := vs.Type.(*ast.MapType)
						for i, name := range vs.Names {
							if typed || (i < len(vs.Values) && isMapExpr(vs.Values[i])) {
								c.maps[name.Name] = true
							}
						}
					}
				}
			}
		}
		return true
	})
}

// isMapExpr reports whether an expression evidently produces a map:
// make(map[...]...) or a map composite literal.
func isMapExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
			_, isMap := x.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := x.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// isMapRange reports whether a range statement iterates a recognized map.
func (c *checker) isMapRange(rs *ast.RangeStmt) bool {
	switch x := rs.X.(type) {
	case *ast.Ident:
		return c.maps[x.Name]
	case *ast.SelectorExpr:
		return c.fields[x.Sel.Name]
	}
	return false
}

// checkBody walks one function body, visiting every statement list so the
// sort-after-loop exemption can see the loop's trailing siblings.
func (c *checker) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range block.List {
			rs, ok := st.(*ast.RangeStmt)
			if !ok || !c.isMapRange(rs) {
				continue
			}
			c.checkLoop(rs, block.List[i+1:])
		}
		return true
	})
}

// checkLoop reports the loop if its body orders output, unless the
// accumulated slice is sorted in the statements following the loop.
func (c *checker) checkLoop(rs *ast.RangeStmt, after []ast.Stmt) {
	declared := localDecls(rs.Body)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				lhs, ok := x.Lhs[i].(*ast.Ident)
				if !ok || declared[lhs.Name] {
					continue
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isAppend(call) && !sortedAfter(lhs.Name, after) {
					c.pass.Report(analysis.Diagnostic{
						Pos: rs.For,
						Message: fmt.Sprintf("map iteration appends to %s in nondeterministic order; "+
							"collect and sort the keys first", lhs.Name),
					})
					return false
				}
				if x.Tok == token.ADD_ASSIGN && isStringExpr(rhs) {
					c.pass.Report(analysis.Diagnostic{
						Pos: rs.For,
						Message: fmt.Sprintf("map iteration concatenates into %s in nondeterministic order; "+
							"collect and sort the keys first", lhs.Name),
					})
					return false
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && writerCalls[sel.Sel.Name] {
				c.pass.Report(analysis.Diagnostic{
					Pos: rs.For,
					Message: fmt.Sprintf("map iteration writes output via %s in nondeterministic order; "+
						"collect and sort the keys first", sel.Sel.Name),
				})
				return false
			}
		}
		return true
	})
}

// localDecls names the variables declared inside the loop body — appending
// to those is loop-local and order-irrelevant by the time the loop exits.
func localDecls(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							out[name.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// isStringExpr reports whether an expression evidently produces a string —
// the only `+=` accumulation that is order-sensitive (numeric sums are
// commutative). A string literal anywhere in the expression, or a
// fmt.Sprint* call, is the evidence.
func isStringExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BasicLit:
			if x.Kind == token.STRING {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Sprintf", "Sprint", "Sprintln", "String":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isAppend reports whether the call is append(...).
func isAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// sortedAfter reports whether an identifier is passed to a sort.* call (or
// a call named sortX) in the statements after the loop — the
// collect-then-sort idiom.
func sortedAfter(name string, after []ast.Stmt) bool {
	for _, st := range after {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && id.Name == name {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall recognizes sort.X(...) and helper calls whose name starts with
// "sort" (sortSites, sortKeys, ...).
func isSortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "sort" {
			return true
		}
	case *ast.Ident:
		return len(fun.Name) >= 4 && fun.Name[:4] == "sort"
	}
	return false
}
