// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver surface: named Analyzers run over
// parsed packages and report positioned Diagnostics. The repository is
// stdlib-only, so the real go/analysis framework is out of reach; this
// package keeps the same shape (Analyzer / Pass / Diagnostic, a multichecker
// driver) so project-specific checkers read like ordinary vet analyzers and
// could be ported to the real framework verbatim.
//
// The driver is purely syntactic: packages are parsed, not type-checked.
// Analyzers therefore work from AST shape and naming heuristics, which is
// exactly the level the project's checkers need (see tools/statecheck).
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description printed by specvet -help.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, tests included.
	Files []*ast.File
	// Pkg is the package name (not import path); Dir its directory.
	Pkg string
	Dir string
	// Report records one finding.
	Report func(Diagnostic)
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// pkgUnit is one parsed directory/package pair.
type pkgUnit struct {
	dir   string
	name  string
	files []*ast.File
}

// Run loads the packages matched by patterns (directory paths, optionally
// with a /... suffix for recursion, like go vet) and applies every analyzer
// to each. Diagnostics are printed to stderr in file:line:col order; the
// returned count is the number of findings. Parse errors are hard errors:
// a checker that silently skips unparseable code gives false confidence.
func Run(patterns []string, analyzers []*Analyzer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := expand(pat)
		if err != nil {
			return 0, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)

	count := 0
	fset := token.NewFileSet()
	for _, dir := range dirs {
		units, err := parseDir(fset, dir)
		if err != nil {
			return count, err
		}
		for _, u := range units {
			var diags []Diagnostic
			for _, a := range analyzers {
				pass := &Pass{
					Analyzer: a,
					Fset:     fset,
					Files:    u.files,
					Pkg:      u.name,
					Dir:      u.dir,
					Report:   func(d Diagnostic) { diags = append(diags, d) },
				}
				if err := a.Run(pass); err != nil {
					return count, fmt.Errorf("%s: %s: %w", u.dir, a.Name, err)
				}
			}
			sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			}
			count += len(diags)
		}
	}
	return count, nil
}

// expand resolves one pattern to package directories.
func expand(pat string) ([]string, error) {
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
	} else if pat == "..." {
		recursive = true
		pat = "."
	}
	if pat == "" {
		pat = "."
	}
	if !recursive {
		return []string{filepath.Clean(pat)}, nil
	}
	var dirs []string
	err := filepath.WalkDir(pat, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		// Mirror the go tool: _-, .-prefixed, and testdata directories do
		// not hold package code.
		if path != pat && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return fs.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, filepath.Clean(path))
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// parseDir parses every .go file of a directory, grouped by package clause
// (a directory can hold package foo and foo_test).
func parseDir(fset *token.FileSet, dir string) ([]*pkgUnit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string]*pkgUnit{}
	var order []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		name := f.Name.Name
		u, ok := byName[name]
		if !ok {
			u = &pkgUnit{dir: dir, name: name}
			byName[name] = u
			order = append(order, name)
		}
		u.files = append(u.files, f)
	}
	units := make([]*pkgUnit, 0, len(order))
	for _, n := range order {
		units = append(units, byName[n])
	}
	return units, nil
}
