// Package statecheck is a vet-style analyzer for the cache.State pooling
// discipline (internal/cache.Pool, DESIGN.md "Scratch-state pooling"):
//
//  1. a state handed back with Put must not be used afterwards — the pool
//     will recycle the buffers under the caller;
//  2. a state must not be Put twice — the free list would hand the same
//     buffers to two owners;
//  3. a state obtained from Get carries arbitrary stale contents and must be
//     initialized with CopyFrom or SetBottom before anything reads it.
//
// The checker is syntactic (the driver does not type-check): a "pool" is any
// receiver whose terminal identifier contains "pool", and the rules are
// enforced where they are decidable without control-flow analysis — rules 1
// and 2 within one statement list (straight-line code between a Put and a
// later mention), rule 3 on the first mention anywhere after the Get, with
// deferred Puts treated as end-of-function releases. That is conservative
// enough to stay silent on correct code and still catches the realistic
// regressions: hoisting a use below the Put during a refactor, pasting a
// second Put, or dropping the CopyFrom that separates scratch reuse from
// reading another iteration's garbage.
package statecheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"specabsint/tools/analysis"
)

// Analyzer is the cache.State pooling-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "statecheck",
	Doc: "check cache.State pooling discipline: no use after Put, no double Put,\n" +
		"and CopyFrom/SetBottom before a pooled state's first use",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The pool implementation and its own tests legitimately touch free-list
	// internals; the discipline binds the pool's clients.
	if pass.Pkg == "cache" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass, deferred: map[string]token.Pos{}}
			c.checkFreshStates(fn.Body)
			c.checkList(fn.Body.List)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// deferred maps variables with a pending `defer pool.Put(x)` to the
	// defer's position (function-scoped: the release happens at return).
	deferred map[string]token.Pos
}

// poolReceiver reports whether the call's receiver chain names a pool
// (e.pool.Get(), pool.Put(x), p.statePool.Get(), ...).
func poolReceiver(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch recv := sel.X.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(recv.Name), "pool")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(recv.Sel.Name), "pool")
	}
	return false
}

// asPoolGet matches `<pool>.Get()`.
func asPoolGet(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Get" && len(call.Args) == 0 && poolReceiver(call)
}

// asPoolPut matches `<pool>.Put(x)` and returns the argument variable name
// ("" when the argument is not a plain identifier).
func asPoolPut(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 || !poolReceiver(call) {
		return "", false
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return id.Name, true
	}
	return "", true
}

// initCallOn matches `x.CopyFrom(...)` / `x.SetBottom()` statements, the two
// ways a pooled state's stale contents become defined.
func initCallOn(st ast.Stmt) (string, bool) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "CopyFrom" && sel.Sel.Name != "SetBottom") {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// mentions reports whether the node references the identifier.
func mentions(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// assignsTo reports whether the statement (re)binds the name, which ends any
// tracking of the previous value.
func assignsTo(st ast.Stmt, name string) bool {
	as, ok := st.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// checkFreshStates enforces rule 3: for every `x := <pool>.Get()`, the first
// mention of x afterwards (in source order, nested statements included) must
// be x.CopyFrom or x.SetBottom. A `defer pool.Put(x)` between the Get and
// the initialization is fine — it runs at return, after the state's life.
func (c *checker) checkFreshStates(body *ast.BlockStmt) {
	var stmts []ast.Stmt
	flatten(body, &stmts)
	for i, st := range stmts {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || !asPoolGet(as.Rhs[0]) {
			continue
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		for _, later := range stmts[i+1:] {
			if initName, ok := initCallOn(later); ok && initName == id.Name {
				break // initialized first: fine
			}
			if ds, ok := later.(*ast.DeferStmt); ok {
				if arg, ok := asPoolPut(ds.Call); ok && arg == id.Name {
					continue // release at return, not a read
				}
			}
			if assignsTo(later, id.Name) {
				break // rebound before any read
			}
			if mentionsStmt(later, id.Name) {
				c.pass.Report(analysis.Diagnostic{
					Pos: later.Pos(),
					Message: fmt.Sprintf("%s: pooled state %q used before CopyFrom or SetBottom (Pool.Get returns stale contents)",
						c.pass.Analyzer.Name, id.Name),
				})
				break
			}
		}
	}
}

// flatten appends every statement of the block in source order, recursing
// into nested bodies, so "first mention after" scans cross block boundaries.
func flatten(n ast.Node, out *[]ast.Stmt) {
	ast.Inspect(n, func(x ast.Node) bool {
		if st, ok := x.(ast.Stmt); ok {
			if _, isBlock := st.(*ast.BlockStmt); !isBlock {
				*out = append(*out, st)
			}
		}
		return true
	})
}

// mentionsStmt reports whether the statement itself reads the name. Compound
// statements (for, if, switch, range) only contribute their header
// expressions — their nested statements appear later in the flattened order
// and are judged on their own.
func mentionsStmt(st ast.Stmt, name string) bool {
	var headers []ast.Node
	switch s := st.(type) {
	case *ast.ForStmt:
		if s.Cond != nil {
			headers = append(headers, s.Cond)
		}
	case *ast.RangeStmt:
		headers = append(headers, s.X)
	case *ast.IfStmt:
		headers = append(headers, s.Cond)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			headers = append(headers, s.Tag)
		}
	case *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.CaseClause, *ast.CommClause:
		// headers carry no expressions of interest; children are scanned
		// as their own flattened statements
	default:
		return mentions(st, name)
	}
	for _, h := range headers {
		if mentions(h, name) {
			return true
		}
	}
	return false
}

// checkList enforces rules 1 and 2 over one statement list: after a direct
// `<pool>.Put(x)` statement, a later statement in the same list must neither
// mention x (use after free) nor Put it again (double free). Nested blocks
// are checked recursively with their own horizon, so releases on one branch
// never taint the other.
func (c *checker) checkList(list []ast.Stmt) {
	released := map[string]token.Pos{}
	for _, st := range list {
		switch s := st.(type) {
		case *ast.DeferStmt:
			if arg, ok := asPoolPut(s.Call); ok && arg != "" {
				if _, dup := c.deferred[arg]; dup {
					c.report(s.Pos(), "second deferred Put of pooled state %q (double release at return)", arg)
				}
				c.deferred[arg] = s.Pos()
				continue
			}
		case *ast.ExprStmt:
			if arg, ok := asPoolPut(s.X); ok && arg != "" {
				if _, wasReleased := released[arg]; wasReleased {
					c.report(s.Pos(), "pooled state %q already returned with Put (double release)", arg)
				} else if _, def := c.deferred[arg]; def {
					c.report(s.Pos(), "pooled state %q has a pending deferred Put; this Put releases it twice", arg)
				}
				released[arg] = s.Pos()
				continue
			}
		}
		for name := range released {
			if assignsTo(st, name) {
				delete(released, name)
				continue
			}
			if mentions(st, name) {
				c.report(st.Pos(), "pooled state %q used after Put returned it to the pool", name)
				delete(released, name) // one report per release site
			}
		}
		// Recurse into nested statement lists with a fresh horizon.
		ast.Inspect(st, func(x ast.Node) bool {
			if b, ok := x.(*ast.BlockStmt); ok {
				c.checkList(b.List)
				return false
			}
			return true
		})
	}
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Report(analysis.Diagnostic{
		Pos:     pos,
		Message: c.pass.Analyzer.Name + ": " + fmt.Sprintf(format, args...),
	})
}
