package statecheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"specabsint/tools/analysis"
)

// runOn applies the analyzer to one source string and returns the rendered
// diagnostics.
func runOn(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var out []string
	pass := &analysis.Pass{
		Analyzer: Analyzer,
		Fset:     fset,
		Files:    []*ast.File{f},
		Pkg:      f.Name.Name,
		Report: func(d analysis.Diagnostic) {
			out = append(out, fset.Position(d.Pos).String()+": "+d.Message)
		},
	}
	if err := Analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func wantDiag(t *testing.T, diags []string, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d, substr) {
			return
		}
	}
	t.Fatalf("no diagnostic containing %q; got %v", substr, diags)
}

func wantClean(t *testing.T, diags []string) {
	t.Helper()
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics, got %v", diags)
	}
}

const header = `package p
type State struct{}
func (s *State) CopyFrom(o *State) {}
func (s *State) SetBottom()        {}
func (s *State) Age()              {}
type Pool struct{}
func (p *Pool) Get() *State  { return nil }
func (p *Pool) Put(s *State) {}
var pool Pool
func sink(s *State) {}
`

func TestUseAfterPut(t *testing.T) {
	diags := runOn(t, header+`
func f(src *State) {
	st := pool.Get()
	st.CopyFrom(src)
	pool.Put(st)
	st.Age()
}`)
	wantDiag(t, diags, `"st" used after Put`)
}

func TestDoublePut(t *testing.T) {
	diags := runOn(t, header+`
func f(src *State) {
	st := pool.Get()
	st.CopyFrom(src)
	pool.Put(st)
	pool.Put(st)
}`)
	wantDiag(t, diags, "double release")
}

func TestPutAfterDeferredPut(t *testing.T) {
	diags := runOn(t, header+`
func f(src *State) {
	st := pool.Get()
	st.CopyFrom(src)
	defer pool.Put(st)
	pool.Put(st)
}`)
	wantDiag(t, diags, "pending deferred Put")
}

func TestMissingCopyFrom(t *testing.T) {
	diags := runOn(t, header+`
func f() {
	st := pool.Get()
	st.Age()
	pool.Put(st)
}`)
	wantDiag(t, diags, "before CopyFrom or SetBottom")
}

func TestReadAsArgumentBeforeInit(t *testing.T) {
	diags := runOn(t, header+`
func f(dst *State) {
	st := pool.Get()
	dst.CopyFrom(st)
	pool.Put(st)
}`)
	wantDiag(t, diags, "before CopyFrom or SetBottom")
}

func TestCleanEnginePattern(t *testing.T) {
	// The shapes internal/core actually uses: init-then-use-then-Put,
	// deferred Put with later uses, SetBottom init, and first use nested in
	// a loop below the defer.
	diags := runOn(t, header+`
func transfer(src *State) *State {
	out := pool.Get()
	out.CopyFrom(src)
	out.Age()
	return out
}
func walk(src *State) {
	st := pool.Get()
	st.CopyFrom(src)
	rollback := pool.Get()
	rollback.SetBottom()
	st.Age()
	rollback.Age()
	pool.Put(st)
	pool.Put(rollback)
}
func classify(flows []*State) {
	st := pool.Get()
	defer pool.Put(st)
	for _, f := range flows {
		st.CopyFrom(f)
		st.Age()
	}
}`)
	wantClean(t, diags)
}

func TestRebindClearsTracking(t *testing.T) {
	diags := runOn(t, header+`
func f(src *State) {
	st := pool.Get()
	st.CopyFrom(src)
	pool.Put(st)
	st = pool.Get()
	st.CopyFrom(src)
	pool.Put(st)
}`)
	wantClean(t, diags)
}

func TestBranchPutDoesNotTaintSiblings(t *testing.T) {
	diags := runOn(t, header+`
func f(src *State, cond bool) {
	st := pool.Get()
	st.CopyFrom(src)
	if cond {
		pool.Put(st)
	} else {
		st.Age()
		pool.Put(st)
	}
}`)
	wantClean(t, diags)
}

func TestCachePackageExempt(t *testing.T) {
	diags := runOn(t, strings.Replace(header, "package p", "package cache", 1)+`
func f() {
	st := pool.Get()
	st.Age()
	pool.Put(st)
	st.Age()
}`)
	wantClean(t, diags)
}
