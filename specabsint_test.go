package specabsint

import (
	"strings"
	"testing"
)

const apiProgram = `
int table[256];
int l1[16]; int l2[16];
char p;
secret int key;
int main() {
	reg int i; reg int tmp;
	tmp = 0;
	for (i = 0; i < 256; i += 16) { tmp = tmp + table[i]; }
	if (p == 0) { tmp = tmp + l1[0]; }
	else { tmp = tmp - l2[0]; }
	return tmp + table[key & 255];
}`

func tightConfig() Config {
	cfg := DefaultConfig()
	cfg.Cache = CacheConfig{LineSize: 64, NumSets: 1, Assoc: 19}
	return cfg
}

func TestCompileError(t *testing.T) {
	if _, err := CompileOpts("int main() { return oops; }"); err == nil {
		t.Fatal("expected a compile error")
	} else if !strings.Contains(err.Error(), "oops") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestAnalyzeSpeculativeVsBaseline(t *testing.T) {
	prog, err := CompileOpts(apiProgram)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := AnalyzeContext(t.Context(), prog, tightConfig().Options()...)
	if err != nil {
		t.Fatal(err)
	}
	base, err := AnalyzeContext(t.Context(), prog, append(tightConfig().Options(), WithSpeculation(false))...)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.LeakDetected {
		t.Error("speculative analysis should find the leak")
	}
	if base.LeakDetected {
		t.Error("baseline should not find a leak")
	}
	if spec.Misses <= base.Misses {
		t.Errorf("spec misses %d should exceed baseline %d", spec.Misses, base.Misses)
	}
	if len(spec.Accesses) != len(base.Accesses) {
		t.Errorf("access counts differ: %d vs %d", len(spec.Accesses), len(base.Accesses))
	}
	if spec.WCET.WorstCaseCycles <= 0 {
		t.Error("acyclic program should have a finite WCET bound")
	}
}

func TestReportAccessesSorted(t *testing.T) {
	prog, err := CompileOpts(apiProgram)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeContext(t.Context(), prog, tightConfig().Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Accesses) == 0 {
		t.Fatal("no accesses reported")
	}
	seenSpec := false
	for _, a := range rep.Accesses {
		if a.Symbol == "" {
			t.Error("access without symbol name")
		}
		if a.SpecReached {
			seenSpec = true
		}
	}
	if !seenSpec {
		t.Error("no access was reached speculatively despite a branch")
	}
}

func TestSimulateMatchesAnalysisDirection(t *testing.T) {
	prog, err := CompileOpts(apiProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tightConfig()
	spec, err := Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Speculative = false
	base, err := Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-path execution may *prefetch* for the right path (fewer
	// architectural misses) or pollute (more); counting the wrong-path
	// traffic, the speculative run always does at least as much memory work.
	if spec.Misses+spec.SpecMisses < base.Misses {
		t.Errorf("speculative total misses %d+%d < baseline %d",
			spec.Misses, spec.SpecMisses, base.Misses)
	}
	if spec.Rollbacks == 0 {
		t.Error("forced misprediction should cause rollbacks")
	}
	if base.Mispredicts != 0 {
		t.Errorf("baseline run should not mispredict, got %d", base.Mispredicts)
	}
}

func TestIRListing(t *testing.T) {
	prog, err := CompileOpts("int x; int main() { return x; }")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.IR(), "load x[0]") {
		t.Errorf("IR listing missing load:\n%s", prog.IR())
	}
	if prog.Internal() == nil {
		t.Error("Internal() returned nil")
	}
}

func TestPaperCacheConstants(t *testing.T) {
	c := PaperCache()
	if c.Lines() != 512 || c.LineSize != 64 {
		t.Errorf("paper cache = %v", c)
	}
	cfg := DefaultConfig()
	if cfg.DepthMiss != 200 || cfg.DepthHit != 20 {
		t.Errorf("default depths = %d/%d, want 200/20", cfg.DepthMiss, cfg.DepthHit)
	}
	if cfg.Strategy != JustInTime {
		t.Errorf("default strategy = %v, want JIT", cfg.Strategy)
	}
}
