package specabsint

import (
	"context"
	"strings"
	"testing"

	"specabsint/internal/bench"
)

// leakyProgram is the paper's Fig. 2 motivating example: the bounds check
// keeps the classic analysis clean, but the mispredicted lane reaches the
// secret-indexed load, so the repair is a pure fence insertion.
var leakyProgram = bench.Fig2Program(-1)

// TestMitigateRepairsLeak drives the public API end to end: baseline leak,
// synthesized fences, zero residual, and a fenced program that re-analyzes
// clean with the same options.
func TestMitigateRepairsLeak(t *testing.T) {
	prog, err := CompileOpts(leakyProgram)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Mitigate(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineLeaks == 0 {
		t.Fatal("expected a baseline leak")
	}
	if rep.ResidualLeaks != 0 || rep.ResidualGadgets != 0 {
		t.Fatalf("residual %d/%d, want 0/0", rep.ResidualLeaks, rep.ResidualGadgets)
	}
	if len(rep.Fences) == 0 {
		t.Fatal("no fences synthesized")
	}
	if !strings.Contains(rep.Fences[0].String(), "fence at ") {
		t.Fatalf("placement renders as %q", rep.Fences[0])
	}
	if rep.VerifySkipped || !rep.Verified {
		t.Fatalf("differential verification: skipped=%v verified=%v", rep.VerifySkipped, rep.Verified)
	}
	if !strings.Contains(rep.Program.IR(), "fence") {
		t.Fatal("fenced program's IR lists no fence")
	}
	after, err := AnalyzeContext(context.Background(), rep.Program)
	if err != nil {
		t.Fatal(err)
	}
	if after.LeakDetected || len(after.SpectreGadgets) != 0 {
		t.Fatalf("fenced program still reports leaks: %+v", after.Leaks)
	}
}

// TestMitigateCleanProgram pins the no-op path through the public API: no
// leaks, no fences, and the same CompiledProgram back.
func TestMitigateCleanProgram(t *testing.T) {
	prog, err := CompileOpts("int main(int inp) { return inp; }")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Mitigate(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineLeaks != 0 || len(rep.Fences) != 0 {
		t.Fatalf("clean program got %d leaks / %d fences", rep.BaselineLeaks, len(rep.Fences))
	}
	if rep.Program != prog {
		t.Fatal("clean program must come back as the same *CompiledProgram")
	}
}

// TestMitigateVerifyOption pins WithMitigateVerify(false): the check is
// skipped, everything else is unchanged.
func TestMitigateVerifyOption(t *testing.T) {
	prog, err := CompileOpts(leakyProgram)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Mitigate(context.Background(), prog, WithMitigateVerify(false))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.VerifySkipped || rep.Verified || rep.Traces != 0 {
		t.Fatalf("verification ran despite WithMitigateVerify(false): %+v", rep)
	}
	if rep.ResidualLeaks != 0 {
		t.Fatalf("residual %d, want 0", rep.ResidualLeaks)
	}
}
