//go:build race

package specabsint

// raceDetectorOn marks builds under `go test -race`. The corpus-wide
// scheduler-equivalence sweep trims to its cheap kernels there (the detector
// makes the full corpus an order of magnitude slower); the determinism and
// equivalence properties themselves still run raced on those kernels.
const raceDetectorOn = true
