package specabsint

import (
	"fmt"
	"reflect"
	"testing"
)

// TestServiceCacheHit checks the Service's report cache: identical resubmits
// are hits with identical reports, different options miss.
func TestServiceCacheHit(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 2})
	cold := svc.Analyze(t.Context(), "api", apiProgram, tightConfig().Options()...)
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.CacheHit {
		t.Fatal("cold run reported a cache hit")
	}
	warm := svc.Analyze(t.Context(), "api", apiProgram, tightConfig().Options()...)
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.CacheHit {
		t.Fatal("identical resubmit missed the report cache")
	}
	if !reflect.DeepEqual(cold.Report, warm.Report) {
		t.Error("cached report differs from the cold run")
	}

	other := svc.Analyze(t.Context(), "api", apiProgram, append(tightConfig().Options(), WithSpeculation(false))...)
	if other.Err != nil {
		t.Fatal(other.Err)
	}
	if other.CacheHit {
		t.Error("different options hit the cache")
	}

	snap := svc.Snapshot()
	if snap.ReportCacheHits != 1 || snap.ReportCacheMisses != 2 {
		t.Errorf("report cache: %d hits %d misses, want 1/2", snap.ReportCacheHits, snap.ReportCacheMisses)
	}
}

// TestServiceMatchesAnalyzeBatch checks the Service produces the same
// reports as the one-shot AnalyzeBatch path.
func TestServiceMatchesAnalyzeBatch(t *testing.T) {
	jobs := make([]BatchJob, 6)
	for i := range jobs {
		jobs[i] = BatchJob{Name: fmt.Sprintf("j%d", i), Source: apiProgram}
		if i%2 == 1 {
			jobs[i].Options = []Option{WithSpeculation(false)}
		}
	}
	opts := tightConfig().Options()

	svc := NewService(ServiceConfig{Workers: 2})
	viaService, err := svc.AnalyzeBatch(t.Context(), jobs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	viaBatch, err := AnalyzeBatch(t.Context(), jobs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(viaService[i].Report, viaBatch[i].Report) {
			t.Errorf("job %d: service and batch reports differ", i)
		}
	}
}

// TestServiceStream checks every job index arrives exactly once on the
// stream and that repeated jobs are cache hits.
func TestServiceStream(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 2})
	jobs := make([]BatchJob, 8)
	for i := range jobs {
		jobs[i] = BatchJob{Name: "same", Source: apiProgram}
	}
	seen := map[int]bool{}
	hits := 0
	for r := range svc.Stream(t.Context(), jobs, tightConfig().Options()...) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if seen[r.Index] {
			t.Errorf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		if r.CacheHit {
			hits++
		}
	}
	if len(seen) != len(jobs) {
		t.Errorf("got %d results, want %d", len(seen), len(jobs))
	}
	// All jobs are identical; apart from races between concurrent cold
	// misses, later ones are served from the cache.
	if hits == 0 {
		t.Error("no cache hits across identical streamed jobs")
	}
	if err := svc.Drain(t.Context()); err != nil {
		t.Errorf("drain: %v", err)
	}
}
