package specabsint

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7). Run with
//
//	go test -bench=. -benchmem
//
// The absolute times land in bench_output.txt / EXPERIMENTS.md; the paper's
// qualitative shape (speculative analysis slower but sound; JIT merging
// faster than merge-at-rollback; Table 7 leak split) is asserted by the unit
// tests in internal/experiments.

import (
	"context"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/core"
	"specabsint/internal/experiments"
	"specabsint/internal/ir"
	"specabsint/internal/machine"
	"specabsint/internal/sidechannel"
)

func compileBench(b *testing.B, code string) *ir.Program {
	b.Helper()
	prog, err := bench.Compile(code, 4096)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkFig2Motivation measures the motivating example end to end:
// speculative analysis of the Fig. 2 program on the paper's cache.
func BenchmarkFig2Motivation(b *testing.B) {
	prog := compileBench(b, bench.Fig2Program(-1))
	opts := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Simulation measures the concrete speculative replay of the
// Fig. 3 traces.
func BenchmarkFig3Simulation(b *testing.B) {
	prog := compileBench(b, bench.Fig2Program(0))
	cfg := machine.DefaultConfig()
	cfg.ForceMispredict = true
	cfg.DepthMiss, cfg.DepthHit = 3, 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := machine.RunProgram(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTable5 runs one Table 5 cell: the named benchmark under the given
// analysis mode.
func benchTable5(b *testing.B, name string, speculative bool) {
	bm, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	prog := compileBench(b, bm.Code)
	opts := core.DefaultOptions()
	opts.Speculative = speculative
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Analyze(prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.AccessCount() == 0 {
			b.Fatal("no accesses")
		}
	}
}

// BenchmarkTable5 regenerates Table 5: per-benchmark analysis times for the
// non-speculative baseline and the speculative analysis.
func BenchmarkTable5(b *testing.B) {
	for _, bm := range bench.WCETBenchmarks() {
		b.Run(bm.Name+"/nonspec", func(b *testing.B) { benchTable5(b, bm.Name, false) })
		b.Run(bm.Name+"/spec", func(b *testing.B) { benchTable5(b, bm.Name, true) })
	}
}

// BenchmarkTable6 regenerates Table 6: merge-at-rollback vs just-in-time
// merging on every WCET benchmark.
func BenchmarkTable6(b *testing.B) {
	for _, bm := range bench.WCETBenchmarks() {
		prog := compileBench(b, bm.Code)
		for _, strat := range []struct {
			name string
			s    core.Strategy
		}{
			{"rollback", core.StrategyMergeAtRollback},
			{"jit", core.StrategyJustInTime},
		} {
			b.Run(bm.Name+"/"+strat.name, func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.Strategy = strat.s
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Analyze(prog, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable7 regenerates Table 7's per-benchmark cost: side-channel
// detection on each crypto kernel with the Fig. 10 client at the cache-sized
// buffer (the paper's starting point of the sweep).
func BenchmarkTable7(b *testing.B) {
	for _, bm := range bench.CryptoBenchmarks() {
		prog := compileBench(b, bench.WithClient(bm, 32*1024))
		for _, mode := range []struct {
			name string
			spec bool
		}{{"nonspec", false}, {"spec", true}} {
			b.Run(bm.Name+"/"+mode.name, func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.Speculative = mode.spec
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sidechannel.Analyze(prog, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDepthBounding measures the §6.2 ablation on the whole WCET suite:
// dynamic speculation-depth bounding on vs off.
func BenchmarkDepthBounding(b *testing.B) {
	for _, mode := range []struct {
		name    string
		bounded bool
	}{{"on", true}, {"off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			progs := make([]*ir.Program, 0, 10)
			for _, bm := range bench.WCETBenchmarks() {
				progs = append(progs, compileBench(b, bm.Code))
			}
			opts := core.DefaultOptions()
			opts.DynamicDepthBounding = mode.bounded
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range progs {
					if _, err := core.Analyze(p, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkMergeStrategiesFig7 measures the Fig. 6/7 micro-benchmark: all
// three strategies on the diamond example.
func BenchmarkMergeStrategiesFig7(b *testing.B) {
	const fig7 = `
	int a; int b; int c; int d; int e;
	int main(reg int cond) {
		reg int t;
		t = a; t = b; t = c;
		if (cond > 0) { t = d; }
		else { t = e; }
		return t + a;
	}`
	prog := compileBench(b, fig7)
	for _, strat := range []struct {
		name string
		s    core.Strategy
	}{
		{"jit", core.StrategyJustInTime},
		{"rollback", core.StrategyMergeAtRollback},
		{"partition", core.StrategyPerRollbackBlock},
	} {
		b.Run(strat.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Strategy = strat.s
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(prog, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLeakThreshold measures the Table 7 buffer sweep for one leaky
// kernel (the guided search of §7.3).
func BenchmarkLeakThreshold(b *testing.B) {
	bm, _ := bench.ByName("hash")
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		if _, found, err := experiments.FindLeakThreshold(context.Background(), bm, setup); err != nil || !found {
			b.Fatalf("found=%v err=%v", found, err)
		}
	}
}

// BenchmarkSimulatorThroughput measures the concrete simulator on the
// largest corpus kernel under adversarial prediction.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bm, _ := bench.ByName("susan")
	prog := compileBench(b, bm.Code)
	cfg := machine.DefaultConfig()
	cfg.Predictor = machine.NewAdversarial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := machine.RunProgram(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
