package specabsint

import (
	"context"
	"time"

	"specabsint/internal/obs"
	"specabsint/internal/runner"
)

// BatchJob is one entry of an AnalyzeBatch request.
type BatchJob struct {
	// Name labels the job in results and aggregated errors. Optional but
	// recommended; results also carry the job's index.
	Name string
	// Source is MiniC source, compiled through the batch's shared program
	// cache — repeated jobs over the same source (e.g. a strategy sweep)
	// parse and lower once. Ignored when Prog is set.
	Source string
	// Prog, when non-nil, is analyzed directly.
	Prog *CompiledProgram
	// Options are per-job overrides, applied after the batch-level options.
	Options []Option
}

// BatchResult is one completed batch job.
type BatchResult struct {
	// Index is the job's position in the submitted slice; results from
	// AnalyzeBatch are already in index order.
	Index int
	// Name echoes the job's label.
	Name string
	// Report is the completed analysis; nil when Err is set. Report.Stats is
	// populated when the job ran with WithStats(true).
	Report *Report
	// CacheHit reports the result was served from a Service's report cache
	// without running the analysis (always false for plain AnalyzeBatch).
	CacheHit bool
	// Elapsed is the job's wall-clock time (compile + analysis).
	Elapsed time.Duration
	// Err is the job's failure: a compile or analysis error (errors.As
	// reaches *ParseError), or a cancellation satisfying
	// errors.Is(err, ErrCanceled).
	Err error
}

// runnerJob lowers one BatchJob into the pool's job form: batch-level opts
// first, per-job overrides on top, a fresh stats collector when requested.
func runnerJob(j BatchJob, base []Option, cache bool) runner.Job {
	cfg := newConfig(base)
	for _, o := range j.Options {
		if o != nil {
			o(&cfg)
		}
	}
	copts := cfg.coreOptions()
	if cfg.Stats {
		copts.Collector = obs.NewCollector()
	}
	rj := runner.Job{
		Name:      j.Name,
		Source:    j.Source,
		MaxUnroll: cfg.MaxUnroll,
		Passes:    cfg.Passes,
		Opts:      copts,
		Mode:      runner.ModeSideChannel,
		Cache:     cache,
	}
	if j.Prog != nil {
		rj.Prog = j.Prog.prog
	}
	return rj
}

// batchResult lifts one pool result into the public form.
func batchResult(r runner.Result) BatchResult {
	br := BatchResult{Index: r.Index, Name: r.Name, Elapsed: r.Elapsed, CacheHit: r.CacheHit}
	if r.Err != nil {
		br.Err = wrapErr(r.Err)
		return br
	}
	br.Report = buildReport(r.Prog, r.Leaks)
	br.Report.Stats = r.Stats
	return br
}

// batchError aggregates per-job failures in job order, deterministic however
// the workers interleaved; nil when every job succeeded.
func batchError(results []BatchResult) error {
	var batchErr *BatchError
	for _, br := range results {
		if br.Err == nil {
			continue
		}
		if batchErr == nil {
			batchErr = &BatchError{}
		}
		batchErr.Failures = append(batchErr.Failures, JobFailure{
			Index: br.Index, Name: br.Name, Err: br.Err,
		})
	}
	if batchErr != nil {
		return batchErr
	}
	return nil
}

// AnalyzeBatch fans the jobs out across GOMAXPROCS workers and returns one
// result per job, in job order. Batch-level opts configure every job;
// per-job BatchJob.Options override them. Failures are isolated per job —
// panics included — and do not stop the rest of the batch; the returned
// error is nil when every job succeeded, and a *BatchError aggregating the
// per-job failures otherwise. Cancelling ctx stops running fixpoints at
// their next iteration and fails the remaining jobs with ErrCanceled.
//
// Analysis results are deterministic: a batch produces exactly the reports
// the equivalent serial AnalyzeContext calls would. Long-lived callers that
// want the batch engine plus the content-addressed report cache should hold
// a Service instead — AnalyzeBatch builds a fresh pool per call.
func AnalyzeBatch(ctx context.Context, jobs []BatchJob, opts ...Option) ([]BatchResult, error) {
	pool := runner.New(0)
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		rjobs[i] = runnerJob(j, opts, false)
	}
	results := make([]BatchResult, len(jobs))
	for _, r := range pool.RunAll(ctx, rjobs) {
		results[r.Index] = batchResult(r)
	}
	return results, batchError(results)
}
