package specabsint

import (
	"context"
	"time"

	"specabsint/internal/runner"
)

// BatchJob is one entry of an AnalyzeBatch request.
type BatchJob struct {
	// Name labels the job in results and aggregated errors. Optional but
	// recommended; results also carry the job's index.
	Name string
	// Source is MiniC source, compiled through the batch's shared program
	// cache — repeated jobs over the same source (e.g. a strategy sweep)
	// parse and lower once. Ignored when Prog is set.
	Source string
	// Prog, when non-nil, is analyzed directly.
	Prog *CompiledProgram
	// Options are per-job overrides, applied after the batch-level options.
	Options []Option
}

// BatchResult is one completed batch job.
type BatchResult struct {
	// Index is the job's position in the submitted slice; results from
	// AnalyzeBatch are already in index order.
	Index int
	// Name echoes the job's label.
	Name string
	// Report is the completed analysis; nil when Err is set.
	Report *Report
	// Elapsed is the job's wall-clock time (compile + analysis).
	Elapsed time.Duration
	// Err is the job's failure: a compile or analysis error (errors.As
	// reaches *ParseError), or a cancellation satisfying
	// errors.Is(err, ErrCanceled).
	Err error
}

// AnalyzeBatch fans the jobs out across GOMAXPROCS workers and returns one
// result per job, in job order. Batch-level opts configure every job;
// per-job BatchJob.Options override them. Failures are isolated per job —
// panics included — and do not stop the rest of the batch; the returned
// error is nil when every job succeeded, and a *BatchError aggregating the
// per-job failures otherwise. Cancelling ctx stops running fixpoints at
// their next iteration and fails the remaining jobs with ErrCanceled.
//
// Analysis results are deterministic: a batch produces exactly the reports
// the equivalent serial AnalyzeContext calls would.
func AnalyzeBatch(ctx context.Context, jobs []BatchJob, opts ...Option) ([]BatchResult, error) {
	pool := runner.New(0)
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		cfg := newConfig(opts)
		for _, o := range j.Options {
			if o != nil {
				o(&cfg)
			}
		}
		rj := runner.Job{
			Name:      j.Name,
			Source:    j.Source,
			MaxUnroll: cfg.MaxUnroll,
			Passes:    cfg.Passes,
			Opts:      cfg.coreOptions(),
			Mode:      runner.ModeSideChannel,
		}
		if j.Prog != nil {
			rj.Prog = j.Prog.prog
		}
		rjobs[i] = rj
	}
	results := make([]BatchResult, len(jobs))
	for _, r := range pool.RunAll(ctx, rjobs) {
		br := BatchResult{Index: r.Index, Name: r.Name, Elapsed: r.Elapsed}
		if r.Err != nil {
			br.Err = wrapErr(r.Err)
		} else {
			br.Report = buildReport(r.Prog, r.Leaks)
		}
		results[r.Index] = br
	}
	// Aggregate failures in job order, deterministic however the workers
	// interleaved.
	var batchErr *BatchError
	for _, br := range results {
		if br.Err == nil {
			continue
		}
		if batchErr == nil {
			batchErr = &BatchError{}
		}
		batchErr.Failures = append(batchErr.Failures, JobFailure{
			Index: br.Index, Name: br.Name, Err: br.Err,
		})
	}
	if batchErr != nil {
		return results, batchErr
	}
	return results, nil
}
