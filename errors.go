package specabsint

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"specabsint/internal/source"
)

// ParseError is a MiniC front-end diagnostic with its source position.
// Compilation errors returned by CompileOpts satisfy errors.As for
// *ParseError through the package's
// "specabsint:" wrapping, so callers can recover the exact line and column:
//
//	var perr *specabsint.ParseError
//	if errors.As(err, &perr) {
//		fmt.Printf("%d:%d: %s\n", perr.Line(), perr.Col(), perr.Msg)
//	}
type ParseError = source.ParseError

// ErrCanceled marks analyses stopped by context cancellation or deadline
// expiry. Errors returned from AnalyzeContext and AnalyzeBatch under a
// canceled context satisfy errors.Is(err, ErrCanceled) as well as
// errors.Is(err, ctx.Err()).
var ErrCanceled = errors.New("specabsint: analysis canceled")

// JobFailure is one failed job inside a BatchError.
type JobFailure struct {
	// Index is the job's position in the submitted batch.
	Index int
	// Name echoes the job's label.
	Name string
	// Err is the job's failure; it preserves the typed error chain
	// (*ParseError, ErrCanceled, *runner.PanicError).
	Err error
}

// BatchError aggregates the per-job failures of an AnalyzeBatch call whose
// successful jobs still completed. It unwraps to every underlying failure,
// so errors.Is / errors.As reach through to the typed per-job errors.
type BatchError struct {
	Failures []JobFailure
}

// Error summarizes the failures.
func (e *BatchError) Error() string {
	if len(e.Failures) == 1 {
		f := e.Failures[0]
		return fmt.Sprintf("specabsint: batch job %q failed: %v", f.Name, f.Err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "specabsint: %d batch jobs failed:", len(e.Failures))
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "\n  %q: %v", f.Name, f.Err)
	}
	return b.String()
}

// Unwrap exposes every per-job failure to errors.Is and errors.As.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// wrapErr applies the package's error discipline: analysis errors gain the
// "specabsint:" prefix while keeping their typed chain intact, and
// cancellation is additionally marked with ErrCanceled.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return fmt.Errorf("specabsint: %w", err)
}
