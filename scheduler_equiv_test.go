package specabsint

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"specabsint/internal/bench"
)

// This file is the scheduler-equivalence harness: the WTO scheduler is a
// pure performance knob, so classifications must be byte-identical to the
// worklist scheduler's on the whole corpus, at every parallelism level, and
// the deterministic stats contract must hold per scheduler. Any engine
// change that lets iteration order leak into a verdict fails here.

// classificationText renders every externally observable verdict of a
// report: the equivalence tests compare these strings byte-for-byte.
func classificationText(rep *Report) string {
	var sb strings.Builder
	for _, a := range rep.Accesses {
		fmt.Fprintf(&sb, "line=%d store=%v sym=%s class=%v spec=%v reached=%v\n",
			a.Line, a.Store, a.Symbol, a.Class, a.SpecClass, a.SpecReached)
	}
	fmt.Fprintf(&sb, "misses=%d specmisses=%d branches=%d\n", rep.Misses, rep.SpecMisses, rep.Branches)
	for _, l := range rep.Leaks {
		fmt.Fprintf(&sb, "leak line=%d sym=%s store=%v class=%v\n", l.Line, l.Symbol, l.Store, l.Class)
	}
	for _, g := range rep.SpectreGadgets {
		fmt.Fprintf(&sb, "gadget line=%d sym=%s store=%v class=%v\n", g.Line, g.Symbol, g.Store, g.Class)
	}
	return sb.String()
}

// equivCorpus returns the kernels the sweep runs on: Fig. 2 plus the full
// benchmark corpus (side-channel kernels get the standard client wrapper).
// Under -race or -short it trims to the cheap representative slice so the
// properties still run, just not corpus-wide.
func equivCorpus(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{"fig2": bench.Fig2Program(-1)}
	cheap := map[string]bool{"fig2": true, "crc": true, "jcmarker": true, "hash": true}
	for _, b := range bench.All() {
		code := b.Code
		if b.Kind == bench.SideChannel {
			code = bench.WithClient(b, 4096)
		}
		out[b.Name] = code
	}
	if raceDetectorOn || testing.Short() {
		for name := range out {
			if !cheap[name] {
				delete(out, name)
			}
		}
	}
	return out
}

// slowWorklist names kernels whose worklist arm is expensive at the shipped
// configuration (seconds per run): the sweep keeps their WTO arm full-width
// but runs the worklist arm only densely, against the same reference.
var slowWorklist = map[string]bool{"adpcm": true, "g72": true, "susan": true, "jcphuff": true}

// TestSchedulerEquivalenceCorpus is the tentpole guarantee: on every corpus
// kernel, classifications under the WTO scheduler are byte-identical to the
// worklist scheduler's, at SetParallelism 0, 1, 4, and NumCPU, with the
// dense worklist run as the single reference.
func TestSchedulerEquivalenceCorpus(t *testing.T) {
	parallelisms := []int{0, 1, 4, runtime.NumCPU()}
	if raceDetectorOn || testing.Short() {
		parallelisms = []int{0, 2, runtime.NumCPU()}
	}
	for name, src := range equivCorpus(t) {
		t.Run(name, func(t *testing.T) {
			p, err := CompileOpts(src)
			if err != nil {
				t.Fatal(err)
			}
			render := func(s Scheduler, par int) string {
				t.Helper()
				rep, err := AnalyzeContext(t.Context(), p, WithScheduler(s), WithSetParallelism(par))
				if err != nil {
					t.Fatalf("scheduler=%v parallelism=%d: %v", s, par, err)
				}
				return classificationText(rep)
			}
			want := render(Worklist, 0)
			for _, s := range []Scheduler{Worklist, WTO} {
				pars := parallelisms
				if s == Worklist && slowWorklist[name] {
					pars = parallelisms[:1] // dense run only; it is the reference itself
				}
				for _, par := range pars {
					if got := render(s, par); got != want {
						t.Errorf("scheduler=%v parallelism=%d: classifications differ from worklist/dense reference:\n got:\n%s\nwant:\n%s", s, par, got, want)
					}
				}
			}
		})
	}
}

// TestSchedulerStatsDeterministic pins the per-scheduler stats contract:
// with wall clock zeroed, the rendered stats document is byte-identical
// across SetParallelism levels and across repeated runs — separately for
// each scheduler. (The two schedulers legitimately differ from each other:
// iteration counts and lane spawns depend on the visit order.)
func TestSchedulerStatsDeterministic(t *testing.T) {
	kernels := map[string]string{"fig2": bench.Fig2Program(-1)}
	if !raceDetectorOn && !testing.Short() {
		kernels["jcmarker"] = mustKernel(t, "jcmarker")
	}
	parallelisms := []int{0, 1, 4, runtime.NumCPU()}
	if raceDetectorOn || testing.Short() {
		parallelisms = []int{0, 2, runtime.NumCPU()}
	}
	for name, src := range kernels {
		t.Run(name, func(t *testing.T) {
			render := func(s Scheduler, par int) string {
				t.Helper()
				opts := []Option{WithStats(true), WithScheduler(s), WithSetParallelism(par)}
				p, err := CompileOpts(src, opts...)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := AnalyzeContext(t.Context(), p, opts...)
				if err != nil {
					t.Fatal(err)
				}
				rep.Stats.ZeroTimes()
				out, err := rep.Stats.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return string(out)
			}
			for _, s := range []Scheduler{WTO, Worklist} {
				want := render(s, 0)
				for _, par := range parallelisms {
					if got := render(s, par); got != want {
						t.Errorf("scheduler=%v parallelism=%d: stats differ from dense run:\n got %s\nwant %s", s, par, got, want)
					}
				}
				// Repeated-run determinism: same config, same document.
				if got := render(s, 0); got != want {
					t.Errorf("scheduler=%v: repeated run changed the stats document:\n got %s\nwant %s", s, got, want)
				}
			}
		})
	}
}

// TestSchedulerOptionRoundTrip pins the public plumbing: the option reaches
// the config, survives Config.Options(), and the zero value is the WTO
// default.
func TestSchedulerOptionRoundTrip(t *testing.T) {
	if got := newConfig(nil).Scheduler; got != WTO {
		t.Fatalf("default scheduler = %v, want %v", got, WTO)
	}
	cfg := newConfig([]Option{WithScheduler(Worklist)})
	if cfg.Scheduler != Worklist {
		t.Fatalf("WithScheduler(Worklist) -> %v", cfg.Scheduler)
	}
	round := newConfig(cfg.Options())
	if round.Scheduler != Worklist {
		t.Fatalf("Config.Options() dropped the scheduler: %v", round.Scheduler)
	}
	if WTO.String() != "wto" || Worklist.String() != "worklist" {
		t.Fatalf("scheduler names = %q/%q", WTO.String(), Worklist.String())
	}
}
