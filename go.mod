module specabsint

go 1.22
