package specabsint

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/gen"
	"specabsint/internal/machine"
)

// This file is the exec-equivalence harness: the bytecode-compiled engine is
// a pure performance knob, so every externally observable result —
// classifications, leaks, WCET, deterministic stats counters, synthesized
// fence sets, and concrete simulator traces — must be byte-identical to the
// tree-walking interpreter's on the whole corpus, at every parallelism
// level, under both schedulers. Any lowering bug that lets the compiled form
// drift from the tree walk fails here.

// execReportText renders every externally observable verdict of a report
// plus the full WCET estimate: the equivalence tests compare these strings
// byte-for-byte.
func execReportText(rep *Report) string {
	return classificationText(rep) + fmt.Sprintf("wcet=%+v\n", rep.WCET)
}

// TestExecEquivalenceCorpus is the tentpole guarantee: on every corpus
// kernel, classifications, leaks, and the WCET estimate under the compiled
// engine are byte-identical to the interpreter's, at SetParallelism 0, 1, 4,
// and NumCPU, under both schedulers, with the interpreted dense run as the
// single reference per scheduler.
func TestExecEquivalenceCorpus(t *testing.T) {
	parallelisms := []int{0, 1, 4, runtime.NumCPU()}
	if raceDetectorOn || testing.Short() {
		parallelisms = []int{0, 2, runtime.NumCPU()}
	}
	for name, src := range equivCorpus(t) {
		t.Run(name, func(t *testing.T) {
			p, err := CompileOpts(src)
			if err != nil {
				t.Fatal(err)
			}
			render := func(e Exec, s Scheduler, par int) string {
				t.Helper()
				rep, err := AnalyzeContext(t.Context(), p,
					WithExec(e), WithScheduler(s), WithSetParallelism(par))
				if err != nil {
					t.Fatalf("exec=%v scheduler=%v parallelism=%d: %v", e, s, par, err)
				}
				return execReportText(rep)
			}
			for _, s := range []Scheduler{WTO, Worklist} {
				pars := parallelisms
				if s == Worklist && slowWorklist[name] {
					pars = parallelisms[:1] // dense run only, as in the scheduler suite
				}
				want := render(Interp, s, 0)
				for _, par := range pars {
					if got := render(Compiled, s, par); got != want {
						t.Errorf("exec=compiled scheduler=%v parallelism=%d: results differ from interp/dense reference:\n got:\n%s\nwant:\n%s", s, par, got, want)
					}
				}
			}
		})
	}
}

// TestExecStatsEquivalence pins the deterministic stats contract across
// engines: the fixpoint counters and the partition shape must be identical
// between compiled and interpreted runs (the engines execute the same joins,
// transfers, and spawns — only the dispatch differs), while the bytecode
// section is the one legitimate difference: populated under the compiled
// engine, all-zero under the interpreter. Full JSON documents are not
// compared across engines for exactly that reason.
func TestExecStatsEquivalence(t *testing.T) {
	kernels := map[string]string{"fig2": bench.Fig2Program(-1)}
	if !raceDetectorOn && !testing.Short() {
		kernels["jcmarker"] = mustKernel(t, "jcmarker")
	}
	for name, src := range kernels {
		t.Run(name, func(t *testing.T) {
			statsFor := func(e Exec, par int) *Stats {
				t.Helper()
				opts := []Option{WithStats(true), WithExec(e), WithSetParallelism(par)}
				p, err := CompileOpts(src, opts...)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := AnalyzeContext(t.Context(), p, opts...)
				if err != nil {
					t.Fatal(err)
				}
				rep.Stats.ZeroTimes()
				return rep.Stats
			}
			for _, par := range []int{0, 4} {
				comp, interp := statsFor(Compiled, par), statsFor(Interp, par)
				if comp.Fixpoint != interp.Fixpoint {
					t.Errorf("parallelism=%d: fixpoint counters differ:\ncompiled %+v\ninterp   %+v",
						par, comp.Fixpoint, interp.Fixpoint)
				}
				if comp.Partition != interp.Partition {
					t.Errorf("parallelism=%d: partition shape differs:\ncompiled %+v\ninterp   %+v",
						par, comp.Partition, interp.Partition)
				}
				if comp.Bytecode == (BytecodeStats{}) {
					t.Errorf("parallelism=%d: compiled run reported no bytecode shape", par)
				}
				if interp.Bytecode != (BytecodeStats{}) {
					t.Errorf("parallelism=%d: interpreted run reported bytecode shape %+v", par, interp.Bytecode)
				}
			}
		})
	}
}

// TestExecMitigateEquivalence asserts the mitigation inner loop rides the
// compiled engine transparently: on every leak-reporting corpus kernel, the
// synthesized fence set (placements, residuals, WCET bounds) is identical
// whichever engine drives the greedy search's re-analyses.
func TestExecMitigateEquivalence(t *testing.T) {
	for name, src := range equivCorpus(t) {
		t.Run(name, func(t *testing.T) {
			p, err := CompileOpts(src)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := AnalyzeContext(t.Context(), p)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.LeakDetected && len(rep.SpectreGadgets) == 0 {
				t.Skip("kernel reports no leaks; the synthesizer is a no-op")
			}
			render := func(e Exec) string {
				t.Helper()
				mrep, err := Mitigate(t.Context(), p, WithExec(e))
				if err != nil {
					t.Fatalf("exec=%v: %v", e, err)
				}
				return fmt.Sprintf("fences=%v residualLeaks=%d residualGadgets=%d wcet=%d->%d bounded=%v",
					mrep.Fences, mrep.ResidualLeaks, mrep.ResidualGadgets,
					mrep.BaselineWCET, mrep.MitigatedWCET, mrep.WCETBounded)
			}
			want := render(Interp)
			if got := render(Compiled); got != want {
				t.Errorf("fence sets differ between engines:\n got (compiled): %s\nwant (interp):   %s", got, want)
			}
		})
	}
}

// TestExecOptionRoundTrip pins the public plumbing: the option reaches the
// config, survives Config.Options(), and the zero value is the compiled
// default.
func TestExecOptionRoundTrip(t *testing.T) {
	if got := newConfig(nil).Exec; got != Compiled {
		t.Fatalf("default exec = %v, want %v", got, Compiled)
	}
	cfg := newConfig([]Option{WithExec(Interp)})
	if cfg.Exec != Interp {
		t.Fatalf("WithExec(Interp) -> %v", cfg.Exec)
	}
	round := newConfig(cfg.Options())
	if round.Exec != Interp {
		t.Fatalf("Config.Options() dropped the exec engine: %v", round.Exec)
	}
	if Compiled.String() != "compiled" || Interp.String() != "interp" {
		t.Fatalf("exec names = %q/%q", Compiled.String(), Interp.String())
	}
}

// TestExecSimulateEquivalence asserts the public Simulate entry point is
// engine-invisible: the concrete counters (hits, misses, rollbacks, fences,
// cycles) agree between the compiled machine and the interpreter on the
// Fig. 2 replay, speculative and non-speculative, near and far secrets.
func TestExecSimulateEquivalence(t *testing.T) {
	for _, k := range []int{0, 64 * 300} {
		for _, spec := range []bool{false, true} {
			p, err := CompileOpts(bench.Fig2Program(k))
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Speculative = spec
			cfg.DepthMiss, cfg.DepthHit = 3, 3
			cfg.Exec = Compiled
			comp, err := Simulate(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Exec = Interp
			interp, err := Simulate(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if comp != interp {
				t.Errorf("k=%d speculative=%v: stats diverge:\ncompiled %+v\ninterp   %+v", k, spec, comp, interp)
			}
		}
	}
}

// FuzzExecEquiv is the native differential fuzz target for the compiled
// engine: for every accepted program, the compiled and interpreted engines
// must agree byte-for-byte on the analysis report, and the two simulator
// cores must produce the identical forced-mispredict trace and counters
// (SpecFences included). Seeds span the generator's distributions — plain,
// secret-carrying, and fence-bearing programs — so the corpus exercises
// fence truncation in both the lane walk and the speculation squash.
func FuzzExecEquiv(f *testing.F) {
	for i, gcfg := range []gen.Config{gen.Default(), gen.Secrets(), gen.Fenced(), gen.Sized(2)} {
		for seed := int64(1); seed <= 3; seed++ {
			f.Add(gen.Program(rand.New(rand.NewSource(seed+int64(i)*100)), gcfg))
		}
	}
	f.Add("char ph[128];\nsecret int k;\nint main(int inp) {\nreg int t;\nif (inp == 0) {\nfence;\nt = ph[k & 127];\n}\nreturn t;\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		opts := []Option{
			WithMaxUnroll(64),
			WithDepths(8, 8),
			WithCache(CacheConfig{LineSize: 32, NumSets: 2, Assoc: 2}),
		}
		p, err := CompileOpts(src, opts...)
		if err != nil {
			return // front-end rejections are FuzzParse's concern
		}
		compRep, err := AnalyzeContext(t.Context(), p, append(opts, WithExec(Compiled))...)
		if err != nil {
			return // totality is FuzzAnalyze's concern; equivalence needs two reports
		}
		interpRep, err := AnalyzeContext(t.Context(), p, append(opts, WithExec(Interp))...)
		if err != nil {
			t.Fatalf("interp engine failed where compiled succeeded: %v", err)
		}
		if got, want := execReportText(compRep), execReportText(interpRep); got != want {
			t.Fatalf("engines disagree on the analysis report:\ncompiled:\n%s\ninterp:\n%s", got, want)
		}

		trace := func(e Exec) ([]machine.AccessRecord, machine.Stats, error) {
			t.Helper()
			cfg := machine.DefaultConfig()
			cfg.Cache = CacheConfig{LineSize: 32, NumSets: 2, Assoc: 2}
			cfg.DepthMiss, cfg.DepthHit = 8, 8
			cfg.ForceMispredict = true
			cfg.WrongPathOOB = true
			cfg.MaxSteps = 1_000_000
			cfg.Exec = e
			sim, err := machine.New(p.Internal(), cfg)
			if err != nil {
				t.Fatalf("exec=%v: simulator: %v", e, err)
			}
			var recs []machine.AccessRecord
			sim.OnAccess = func(r machine.AccessRecord) { recs = append(recs, r) }
			if err := sim.Run(); err != nil {
				return nil, machine.Stats{}, err
			}
			return recs, sim.Stats, nil
		}
		cRecs, cStats, cErr := trace(Compiled)
		iRecs, iStats, iErr := trace(Interp)
		// Runtime faults (division by zero, step budget) are legitimate, but
		// the engines must fault identically or not at all.
		if (cErr == nil) != (iErr == nil) || (cErr != nil && cErr.Error() != iErr.Error()) {
			t.Fatalf("engines disagree on runtime failure:\ncompiled: %v\ninterp:   %v", cErr, iErr)
		}
		if cErr != nil {
			return
		}
		if cStats != iStats {
			t.Fatalf("simulator counters diverge:\ncompiled %+v\ninterp   %+v", cStats, iStats)
		}
		if len(cRecs) != len(iRecs) {
			t.Fatalf("trace lengths diverge: compiled %d accesses, interp %d", len(cRecs), len(iRecs))
		}
		for i := range cRecs {
			if cRecs[i] != iRecs[i] {
				t.Fatalf("traces diverge at access %d: compiled %+v, interp %+v", i, cRecs[i], iRecs[i])
			}
		}
	})
}
