// Command specsim executes a MiniC program on the concrete speculative CPU
// simulator and reports cache and prediction statistics — the ground-truth
// side of the repository. Useful for comparing predictors and for watching
// wrong-path pollution concretely.
//
// Usage:
//
//	specsim [flags] program.c
//
// Example:
//
//	specsim -predictor adversarial -bm 200 -bh 20 -icache-lines 64 prog.c
package main

import (
	"flag"
	"fmt"
	"os"

	"specabsint/internal/layout"
	"specabsint/internal/lower"
	"specabsint/internal/machine"
	"specabsint/internal/source"
)

func main() {
	var (
		lines       = flag.Int("lines", 512, "data cache lines")
		lineSize    = flag.Int("linesize", 64, "bytes per line")
		sets        = flag.Int("sets", 1, "cache sets (1 = fully associative)")
		bm          = flag.Int("bm", 200, "speculation depth after a missing condition")
		bh          = flag.Int("bh", 20, "speculation depth after a hitting condition")
		predictor   = flag.String("predictor", "2bit", "branch predictor: 2bit, gshare, taken, nottaken, adversarial, oracle")
		force       = flag.Bool("force-mispredict", false, "mispredict every branch (worst-case pollution)")
		icacheLines = flag.Int("icache-lines", 0, "simulate an instruction cache with this many lines (0 = off)")
		unroll      = flag.Int("unroll", 4096, "loop unrolling cap")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: specsim [flags] program.c")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	ast, err := source.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	prog, err := lower.Lower(ast, lower.Options{MaxUnroll: *unroll})
	if err != nil {
		fatal(err)
	}

	cfg := machine.DefaultConfig()
	cfg.Cache = layout.CacheConfig{LineSize: *lineSize, NumSets: *sets, Assoc: *lines / *sets}
	cfg.DepthMiss = *bm
	cfg.DepthHit = *bh
	cfg.ForceMispredict = *force
	switch *predictor {
	case "2bit":
		cfg.Predictor = machine.NewTwoBit()
	case "gshare":
		cfg.Predictor = machine.NewGShare(12)
	case "taken":
		cfg.Predictor = machine.AlwaysTaken{}
	case "nottaken":
		cfg.Predictor = machine.NeverTaken{}
	case "adversarial":
		cfg.Predictor = machine.NewAdversarial()
	case "oracle":
		cfg.DepthMiss, cfg.DepthHit = 0, 0 // perfect prediction = no wrong paths
	default:
		fatal(fmt.Errorf("unknown predictor %q", *predictor))
	}
	if *icacheLines > 0 {
		ic := layout.CacheConfig{LineSize: *lineSize, NumSets: 1, Assoc: *icacheLines}
		cfg.ICache = &ic
	}

	stats, err := machine.RunProgram(prog, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result:        %d\n", stats.Ret)
	fmt.Printf("instructions:  %d architectural, %d wrong-path\n", stats.Instructions, stats.SpecInstructions)
	fmt.Printf("data cache:    %d hits, %d misses architectural; %d hits, %d misses wrong-path\n",
		stats.Hits, stats.Misses, stats.SpecHits, stats.SpecMisses)
	if cfg.ICache != nil {
		fmt.Printf("instr cache:   %d hits, %d misses architectural; %d hits, %d misses wrong-path\n",
			stats.IFetchHits, stats.IFetchMisses, stats.SpecIFetchHits, stats.SpecIFetchMisses)
	}
	fmt.Printf("branches:      %d executed, %d mispredicted, %d rollbacks\n",
		stats.Branches, stats.Mispredicts, stats.Rollbacks)
	fmt.Printf("cycles:        %d\n", stats.Cycles)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specsim:", err)
	os.Exit(1)
}
