// Command specload is the load generator for specserve: it replays the
// benchmark corpus (internal/bench Tables 3/4 plus the Fig. 2 example)
// against a running daemon at high concurrency and records latency
// percentiles, throughput, error counts and the report-cache hit rate into
// a BENCH_serve.json document.
//
// Usage:
//
//	specload [-addr http://localhost:8723] [-concurrency 32] [-rounds 4]
//	         [-o BENCH_serve.json] [-min-hit-rate 0]
//
// Each round submits the whole corpus once via POST /v1/analyze. Because
// the server's report cache is content-addressed, the first round is all
// misses and subsequent rounds should be (near-)all hits; -min-hit-rate
// makes specload exit nonzero when the observed hit rate over rounds after
// the first falls below the threshold — the CI serve-smoke gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specabsint/internal/bench"
	"specabsint/internal/experiments"
	"specabsint/wire"
)

// request is one unit of load: a named corpus program.
type request struct {
	round int
	name  string
	src   string
}

// sample is one completed request.
type sample struct {
	round    int
	latency  time.Duration
	cacheHit bool
	rejected bool
	failed   bool
}

// roundStats aggregates one corpus pass.
type roundStats struct {
	Round        int     `json:"round"`
	Requests     int     `json:"requests"`
	CacheHits    int     `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Errors       int     `json:"errors"`
}

// loadReport is the BENCH_serve.json document.
type loadReport struct {
	Meta         experiments.BenchMeta `json:"meta"`
	Addr         string                `json:"addr"`
	Concurrency  int                   `json:"concurrency"`
	Rounds       int                   `json:"rounds"`
	CorpusSize   int                   `json:"corpus_size"`
	Requests     int                   `json:"requests"`
	Completed    int                   `json:"completed"`
	Errors       int                   `json:"errors"`
	Rejected     int                   `json:"rejected_429"`
	CacheHits    int                   `json:"cache_hits"`
	CacheHitRate float64               `json:"cache_hit_rate"`
	// WarmHitRate is the hit rate over every round after the first — the
	// number -min-hit-rate gates on.
	WarmHitRate  float64      `json:"warm_hit_rate"`
	ElapsedNanos int64        `json:"elapsed_nanos"`
	ReqPerSec    float64      `json:"req_per_sec"`
	P50Nanos     int64        `json:"p50_nanos"`
	P90Nanos     int64        `json:"p90_nanos"`
	P99Nanos     int64        `json:"p99_nanos"`
	MaxNanos     int64        `json:"max_nanos"`
	PerRound     []roundStats `json:"per_round"`
	// Server is the daemon's /v1/metrics snapshot after the run: pool
	// counters and both cache tiers.
	Server *wire.Metrics `json:"server,omitempty"`
}

// corpus builds the replay set: every Table 3/4 benchmark (side-channel
// kernels wrapped in the Fig. 10 client) plus the Fig. 2 example.
func corpus() []request {
	var out []request
	for _, b := range bench.All() {
		src := b.Code
		if b.Kind == bench.SideChannel {
			src = bench.WithClient(b, 4096)
		}
		out = append(out, request{name: b.Name, src: src})
	}
	out = append(out, request{name: "fig2", src: bench.Fig2Program(-1)})
	return out
}

// analyze submits one request, retrying 429s with the advertised backoff.
func analyze(client *http.Client, addr string, req request) sample {
	body, err := wire.Marshal(wire.AnalyzeRequest{Name: req.name, Source: req.src})
	if err != nil {
		log.Fatalf("specload: marshal: %v", err)
	}
	start := time.Now()
	var rejected bool
	for {
		resp, err := client.Post(addr+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return sample{round: req.round, latency: time.Since(start), failed: true}
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return sample{round: req.round, latency: time.Since(start), failed: true}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = true
			time.Sleep(retryAfter(resp.Header, 50*time.Millisecond))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return sample{round: req.round, latency: time.Since(start), rejected: rejected, failed: true}
		}
		var ar wire.AnalyzeResponse
		if err := wire.Unmarshal(data, &ar); err != nil {
			return sample{round: req.round, latency: time.Since(start), rejected: rejected, failed: true}
		}
		return sample{round: req.round, latency: time.Since(start), cacheHit: ar.CacheHit, rejected: rejected}
	}
}

// retryAfter parses a 429's backoff hint.
func retryAfter(h http.Header, def time.Duration) time.Duration {
	if v := h.Get("Retry-After"); v != "" {
		var secs int
		if _, err := fmt.Sscanf(v, "%d", &secs); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return def
}

// fetchMetrics grabs the daemon's post-run snapshot.
func fetchMetrics(client *http.Client, addr string) *wire.Metrics {
	resp, err := client.Get(addr + "/v1/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var m wire.Metrics
	if err := wire.Unmarshal(data, &m); err != nil {
		return nil
	}
	return &m
}

// percentile reads the q-quantile from sorted latencies.
func percentile(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Nanoseconds()
}

func main() {
	addr := flag.String("addr", "http://localhost:8723", "specserve base URL")
	concurrency := flag.Int("concurrency", 32, "concurrent in-flight requests")
	rounds := flag.Int("rounds", 4, "full corpus passes (round 1 is the cold pass)")
	out := flag.String("o", "BENCH_serve.json", "output path (- for stdout)")
	minHitRate := flag.Float64("min-hit-rate", 0, "exit nonzero when the warm hit rate (rounds after the first) is below this")
	flag.Parse()

	reqs := corpus()
	client := &http.Client{Timeout: 2 * time.Minute}

	// Wait for the daemon to come up (CI starts it in the background).
	ready := false
	for i := 0; i < 100; i++ {
		resp, err := client.Get(*addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ready = true
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ready {
		log.Fatalf("specload: %s not ready", *addr)
	}

	var (
		mu      sync.Mutex
		samples []sample
		done    atomic.Int64
	)
	start := time.Now()
	// Rounds run sequentially so round N+1 sees the cache round N warmed;
	// inside a round the corpus fans out across -concurrency workers.
	for round := 1; round <= *rounds; round++ {
		work := make(chan request)
		var wg sync.WaitGroup
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for req := range work {
					s := analyze(client, *addr, req)
					mu.Lock()
					samples = append(samples, s)
					mu.Unlock()
					done.Add(1)
				}
			}()
		}
		for _, r := range reqs {
			r.round = round
			work <- r
		}
		close(work)
		wg.Wait()
	}
	elapsed := time.Since(start)

	rep := loadReport{
		Meta:         experiments.NewBenchMeta(),
		Addr:         *addr,
		Concurrency:  *concurrency,
		Rounds:       *rounds,
		CorpusSize:   len(reqs),
		Requests:     len(samples),
		ElapsedNanos: elapsed.Nanoseconds(),
		Server:       fetchMetrics(client, *addr),
	}
	perRound := make(map[int]*roundStats)
	var latencies []time.Duration
	var warmReqs, warmHits int
	for _, s := range samples {
		rs := perRound[s.round]
		if rs == nil {
			rs = &roundStats{Round: s.round}
			perRound[s.round] = rs
		}
		rs.Requests++
		if s.failed {
			rep.Errors++
			rs.Errors++
			continue
		}
		rep.Completed++
		latencies = append(latencies, s.latency)
		if s.rejected {
			rep.Rejected++
		}
		if s.cacheHit {
			rep.CacheHits++
			rs.CacheHits++
		}
		if s.round > 1 {
			warmReqs++
			if s.cacheHit {
				warmHits++
			}
		}
	}
	for r := 1; r <= *rounds; r++ {
		if rs := perRound[r]; rs != nil {
			if n := rs.Requests - rs.Errors; n > 0 {
				rs.CacheHitRate = float64(rs.CacheHits) / float64(n)
			}
			rep.PerRound = append(rep.PerRound, *rs)
		}
	}
	if rep.Completed > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.Completed)
		rep.ReqPerSec = float64(rep.Completed) / elapsed.Seconds()
	}
	if warmReqs > 0 {
		rep.WarmHitRate = float64(warmHits) / float64(warmReqs)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50Nanos = percentile(latencies, 0.50)
	rep.P90Nanos = percentile(latencies, 0.90)
	rep.P99Nanos = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.MaxNanos = latencies[n-1].Nanoseconds()
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("specload: %v", err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
	} else {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Fatalf("specload: %v", err)
		}
	}
	fmt.Printf("specload: %d requests (%d rounds x %d programs) in %v — p50 %v p99 %v, hit rate %.1f%% (warm %.1f%%), %d errors\n",
		rep.Requests, *rounds, len(reqs), elapsed.Round(time.Millisecond),
		time.Duration(rep.P50Nanos).Round(time.Microsecond),
		time.Duration(rep.P99Nanos).Round(time.Microsecond),
		100*rep.CacheHitRate, 100*rep.WarmHitRate, rep.Errors)
	if rep.Errors > 0 {
		os.Exit(1)
	}
	if *minHitRate > 0 && rep.WarmHitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "specload: warm hit rate %.3f below required %.3f\n", rep.WarmHitRate, *minHitRate)
		os.Exit(1)
	}
}
