// Command specvet is the project's vet multichecker: it runs the
// repository-specific analyzers (tools/statecheck, the cache.State
// pooling-discipline check, and tools/maprange, the nondeterministic
// map-iteration check) over the given packages and exits non-zero on
// findings, mirroring `go vet` so CI can chain them.
//
// Usage:
//
//	specvet [packages]
//
// Packages are directory patterns (`./...` by default), like the go tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"specabsint/tools/analysis"
	"specabsint/tools/maprange"
	"specabsint/tools/statecheck"
)

var analyzers = []*analysis.Analyzer{
	statecheck.Analyzer,
	maprange.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: specvet [packages]")
		fmt.Fprintln(os.Stderr, "\nregistered analyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "\n%s:\n%s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	count, err := analysis.Run(flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specvet:", err)
		os.Exit(2)
	}
	if count > 0 {
		os.Exit(1)
	}
}
