// Command specfuzz is the differential soundness fuzzer: it generates random
// MiniC programs (internal/gen), checks every oracle property on each
// (internal/oracle) — must-hit/must-miss soundness against the concrete
// speculative simulator, leak-detection completeness, the metamorphic window
// and unroll relations, parallel equivalence, and (with -scheduler=both /
// -exec=both) the worklist-vs-WTO scheduler and compiled-vs-interp engine
// cross-checks — and shrinks any failing program to a minimal reproducer.
//
// Usage:
//
//	specfuzz [flags]
//
// Examples:
//
//	specfuzz -seed 1 -n 500
//	specfuzz -duration 30s -workers 8 -corpus internal/oracle/testdata/fuzz-corpus
//
// Failing reproducers are written to the corpus directory (when -corpus is
// set); internal/oracle's TestFuzzCorpusReplay replays that directory
// forever, so a caught bug stays caught.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"specabsint/internal/gen"
	"specabsint/internal/oracle"
	"specabsint/internal/runner"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "first generator seed; program i uses seed+i")
		n        = flag.Int("n", 200, "number of programs to check (ignored when -duration is set)")
		duration = flag.Duration("duration", 0, "keep fuzzing until this much time has passed")
		workers  = flag.Int("workers", 0, "analysis pool workers (0 = GOMAXPROCS)")
		corpus   = flag.String("corpus", "", "write shrunk reproducers to this directory")
		quick    = flag.Bool("quick", false, "use the cut-down oracle sweep (fewer configurations)")
		sched    = flag.String("scheduler", "default", "scheduler sweep: default (WTO only) or both (cross-check worklist vs WTO)")
		exec     = flag.String("exec", "default", "exec sweep: default (compiled only) or both (cross-check interp vs compiled, analysis and simulator)")
		verbose  = flag.Bool("v", false, "log every program checked")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: specfuzz [flags]")
		flag.Usage()
		os.Exit(2)
	}

	cfg := oracle.Default()
	if *quick {
		cfg = oracle.Quick()
	}
	switch *sched {
	case "default":
	case "both":
		cfg.CheckSchedulers = true
	default:
		fmt.Fprintf(os.Stderr, "specfuzz: unknown -scheduler %q (want default or both)\n", *sched)
		os.Exit(2)
	}
	switch *exec {
	case "default":
	case "both":
		cfg.CheckExec = true
	default:
		fmt.Fprintf(os.Stderr, "specfuzz: unknown -exec %q (want default or both)\n", *exec)
		os.Exit(2)
	}
	cfg.Pool = runner.New(*workers)

	// Alternate the generator distributions so one sweep exercises plain
	// programs, secret-carrying programs, larger programs, and fence-bearing
	// programs (the shape the mitigation synthesizer emits).
	genCfgs := []gen.Config{gen.Default(), gen.Secrets(), gen.Sized(2), gen.Fenced()}

	start := time.Now()
	deadline := time.Time{}
	if *duration > 0 {
		deadline = start.Add(*duration)
	}
	checked, analyses, traces, failures := 0, 0, 0, 0
	for i := 0; ; i++ {
		if deadline.IsZero() {
			if i >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		s := *seed + int64(i)
		gcfg := genCfgs[i%len(genCfgs)]
		src := gen.Program(rand.New(rand.NewSource(s)), gcfg)
		res, err := oracle.Check(src, cfg)
		if err != nil {
			// The generator emitted a program the front end rejects: that is
			// a bug in gen itself, and the program text is the reproducer.
			fmt.Fprintf(os.Stderr, "seed %d: generated program does not compile: %v\n%s", s, err, src)
			failures++
			continue
		}
		checked++
		analyses += res.Analyses
		traces += res.Traces
		if *verbose {
			fmt.Printf("seed %d: ok (%d analyses, %d traces)\n", s, res.Analyses, res.Traces)
		}
		if !res.Failed() {
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "seed %d FAILED: %d violation(s)\n", s, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		shrunk := shrink(src, cfg)
		fmt.Fprintf(os.Stderr, "reproducer (%d lines):\n%s", len(strings.Split(strings.TrimRight(shrunk, "\n"), "\n")), shrunk)
		if *corpus != "" {
			if path, err := writeReproducer(*corpus, s, shrunk, res.Violations); err != nil {
				fmt.Fprintf(os.Stderr, "write reproducer: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "reproducer written to %s\n", path)
			}
		}
	}
	fmt.Printf("specfuzz: %d programs, %d analyses, %d traces, %d failure(s) in %v\n",
		checked, analyses, traces, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

// shrink minimizes a failing program: a candidate is kept while it still
// compiles and still refutes at least one oracle property.
func shrink(src string, cfg oracle.Config) string {
	return oracle.Shrink(src, func(cand string) bool {
		res, err := oracle.Check(cand, cfg)
		return err == nil && res.Failed()
	})
}

// writeReproducer stores a shrunk failing program in the corpus directory,
// with the violations it triggered as a header comment.
func writeReproducer(dir string, seed int64, src string, violations []oracle.Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// specfuzz reproducer (seed %d). Violations at capture time:\n", seed)
	for _, v := range violations {
		fmt.Fprintf(&sb, "//   %s\n", v)
	}
	sb.WriteString(src)
	path := filepath.Join(dir, fmt.Sprintf("specfuzz-seed%d.c", seed))
	return path, os.WriteFile(path, []byte(sb.String()), 0o644)
}
