package main

import (
	"testing"

	"specabsint/internal/bytecode"
	"specabsint/internal/core"
)

// TestFlagParsers checks the enum flags resolve their valid values and — the
// regression this file exists for — report unknown values as errors instead
// of silently benchmarking the default configuration.
func TestFlagParsers(t *testing.T) {
	if s, err := parseScheduler("worklist"); err != nil || s != core.SchedulerWorklist {
		t.Errorf("parseScheduler(worklist) = %v, %v", s, err)
	}
	if s, err := parseScheduler("wto"); err != nil || s != core.SchedulerWTO {
		t.Errorf("parseScheduler(wto) = %v, %v", s, err)
	}
	if m, err := parseExec("interp"); err != nil || m != bytecode.ExecInterp {
		t.Errorf("parseExec(interp) = %v, %v", m, err)
	}
	if m, err := parseExec("compiled"); err != nil || m != bytecode.ExecCompiled {
		t.Errorf("parseExec(compiled) = %v, %v", m, err)
	}
	for _, bad := range []string{"", "wt0", "legacy"} {
		if _, err := parseScheduler(bad); err == nil {
			t.Errorf("parseScheduler(%q) accepted", bad)
		}
	}
	for _, bad := range []string{"", "bytecode", "tree"} {
		if _, err := parseExec(bad); err == nil {
			t.Errorf("parseExec(%q) accepted", bad)
		}
	}
}
