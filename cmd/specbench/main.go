// Command specbench regenerates the paper's evaluation tables and figures
// (§7) on the MiniC corpus and prints them as aligned text tables. Run with
// -write to refresh EXPERIMENTS.md-style output on stdout for the repo docs.
//
// Usage:
//
//	specbench [-experiment all|fig2|table3|table4|table5|table6|table7|depth|icache|geometry|fixpoint]
//	          [-workers N] [-timeout d] [-cpuprofile f] [-memprofile f]
//
// The corpus sweeps fan out across -workers CPUs on a shared batch engine
// (one compile per benchmark for the whole run); per-program results are
// identical to the serial path. Ctrl-C or -timeout cancels the running
// fixpoints mid-iteration.
//
// -experiment fixpoint (not part of "all") measures the engine's cost on the
// reference medium kernel and writes a machine-readable report with the
// seed-engine baseline to -benchout (default BENCH_fixpoint.json).
// -cpuprofile / -memprofile write pprof profiles of whatever experiments ran.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"specabsint/internal/bytecode"
	"specabsint/internal/core"
	"specabsint/internal/experiments"
	"specabsint/internal/runner"
)

func main() {
	which := flag.String("experiment", "all", "which experiment to run: all, fig2, table3, table4, table5, table6, table7, depth, icache, geometry, fixpoint")
	workers := flag.Int("workers", 0, "concurrent analysis workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	benchOut := flag.String("benchout", "BENCH_fixpoint.json", "output path of the fixpoint benchmark report")
	benchRounds := flag.Int("benchrounds", 0, "fixpoint benchmark rounds (0 = default)")
	minSpeedup := flag.Float64("minspeedup", 0, "fail the fixpoint experiment if the pass-pipeline speedup falls below this (0 = don't assert)")
	scheduler := flag.String("scheduler", "wto", "fixpoint scheduler for the headline measurements: wto or worklist")
	schedCompare := flag.Bool("schedcompare", true, "measure the scheduler-comparison section (legacy/worklist/wto over the branch-heavy slice)")
	minWTOSpeedup := flag.Float64("minwtospeedup", 0, "fail the fixpoint experiment if jcmarker's WTO-vs-worklist speedup falls below this, or if any slice kernel's scheduler arms disagree (0 = don't assert)")
	execFlag := flag.String("exec", "compiled", "execution engine for the headline measurements: compiled or interp")
	execCompare := flag.Bool("execcompare", true, "measure the exec-comparison section (compiled vs interp over the loop-carrying slice)")
	minExecSpeedup := flag.Float64("minexecspeedup", 0, "fail the fixpoint experiment if the compiled engine's geomean speedup over the interpreter falls below this, or if any slice kernel's exec arms disagree (0 = don't assert)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()
	// Validate enum flags before any experiment runs: a typo must be an
	// error for every -experiment value, never a silent fallback to the
	// default configuration.
	sched, err := parseScheduler(*scheduler)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specbench: %v\n", err)
		os.Exit(2)
	}
	exec, err := parseExec(*execFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specbench: %v\n", err)
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()
	setup := experiments.PaperSetup()
	setup.Workers = *workers
	setup.Pool = runner.New(*workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			stopProfiles()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "specbench: %s: canceled after %v\n",
					name, time.Since(start).Round(time.Millisecond))
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "specbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig2", func() error { return fig2(setup) })
	run("table3", func() error {
		return stats("Table 3 — execution time estimation: benchmark statistics", experiments.Table3())
	})
	run("table4", func() error {
		return stats("Table 4 — side channel detection: benchmark statistics", experiments.Table4())
	})
	run("table5", func() error { return table5(ctx, setup) })
	run("table6", func() error { return table6(ctx, setup) })
	run("table7", func() error { return table7(ctx, setup) })
	run("depth", func() error { return depth(ctx, setup) })
	run("icache", func() error { return icache(ctx, setup) })
	run("geometry", func() error { return geometry(ctx, setup) })
	if *which == "fixpoint" {
		run("fixpoint", func() error {
			return fixpoint(*benchRounds, *benchOut, *minSpeedup, *minWTOSpeedup, *minExecSpeedup,
				sched, exec, *schedCompare, *execCompare)
		})
	}
}

// startProfiles starts the requested pprof profiles and returns an
// idempotent stop function that flushes them.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects out of the live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}

func fixpoint(rounds int, outPath string, minSpeedup, minWTOSpeedup, minExecSpeedup float64, sched core.Scheduler, exec bytecode.ExecMode, schedCompare, execCompare bool) error {
	rep, err := experiments.FixpointBench(rounds, sched, exec, schedCompare, execCompare)
	if err != nil {
		return err
	}
	fmt.Printf("Fixpoint benchmark — %s, paper options, %d rounds, %s scheduler, %s exec\n",
		rep.Kernel, rep.Rounds, rep.Meta.Scheduler, rep.Meta.Exec)
	fmt.Printf("  now:         %8.1f ms/op  %9d allocs/op  %d states pooled/op\n",
		float64(rep.Now.NsPerOp)/1e6, rep.Now.AllocsPerOp, rep.StatesPooledPerOp)
	fmt.Printf("  baseline:    %8.1f ms/op  %9d allocs/op  (seed engine)\n",
		float64(rep.Baseline.NsPerOp)/1e6, rep.Baseline.AllocsPerOp)
	fmt.Printf("  with passes: %8.1f ms/op  %9d allocs/op  (%d vs %d iterations)\n",
		float64(rep.WithPasses.NsPerOp)/1e6, rep.WithPasses.AllocsPerOp,
		rep.PassesIterations, rep.Iterations)
	fmt.Printf("  alloc ratio: %.1fx fewer allocations\n", rep.AllocRatio)
	fmt.Printf("  passes speedup: %.2fx\n", rep.PassesSpeedup)
	if d := rep.ResolvedKernel; d != nil {
		fmt.Printf("  %s (where branch resolution fires): %d branches resolved, lanes %d -> %d\n",
			d.Kernel, d.ResolvedBranches, d.LanesBefore, d.LanesAfter)
		fmt.Printf("    off: %8.1f ms/op   on: %8.1f ms/op   speedup: %.2fx\n",
			float64(d.Off.NsPerOp)/1e6, float64(d.On.NsPerOp)/1e6, d.Speedup)
	}
	if s := rep.Schedulers; s != nil {
		fmt.Println("  schedulers (legacy = seed-equivalent worklist, uncertainty focusing off):")
		for _, r := range s.Kernels {
			fmt.Printf("    %-9s %2d comps  legacy %8.1f  worklist %8.1f  wto %8.1f ms/op  %.2fx vs legacy  %.2fx vs worklist  identical=%v\n",
				r.Kernel, r.WTOComponents,
				float64(r.Legacy.NsPerOp)/1e6, float64(r.Worklist.NsPerOp)/1e6,
				float64(r.WTO.NsPerOp)/1e6, r.SpeedupVsLegacy, r.SpeedupVsWorklist, r.Identical)
		}
		fmt.Printf("    geomean: %.2fx vs legacy, %.2fx vs worklist\n",
			s.GeomeanSpeedup, s.GeomeanVsWorklist)
	}
	if e := rep.Execs; e != nil {
		fmt.Println("  exec engines (loop-carrying slice, identical analysis semantics):")
		for _, r := range e.Kernels {
			fmt.Printf("    %-9s interp %8.1f  compiled %8.1f ms/op  %.2fx  identical=%v\n",
				r.Kernel, float64(r.Interp.NsPerOp)/1e6, float64(r.Compiled.NsPerOp)/1e6,
				r.SpeedupVsInterp, r.Identical)
		}
		fmt.Printf("    geomean: %.2fx vs interp\n", e.GeomeanSpeedup)
	}
	if err := rep.WriteJSON(outPath); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	if minWTOSpeedup > 0 {
		if rep.Schedulers == nil {
			return fmt.Errorf("-minwtospeedup needs the scheduler comparison (-schedcompare)")
		}
		for _, r := range rep.Schedulers.Kernels {
			if !r.Identical {
				return fmt.Errorf("scheduler arms disagree on %s — equivalence bug, not noise", r.Kernel)
			}
			if r.Kernel == "jcmarker" && r.SpeedupVsWorklist < minWTOSpeedup {
				return fmt.Errorf("WTO speedup %.2fx on %s below required %.2fx — wall-clock regression",
					r.SpeedupVsWorklist, r.Kernel, minWTOSpeedup)
			}
		}
	}
	if minExecSpeedup > 0 {
		if rep.Execs == nil {
			return fmt.Errorf("-minexecspeedup needs the exec comparison (-execcompare)")
		}
		for _, r := range rep.Execs.Kernels {
			if !r.Identical {
				return fmt.Errorf("exec arms disagree on %s — equivalence bug, not noise", r.Kernel)
			}
		}
		if rep.Execs.GeomeanSpeedup < minExecSpeedup {
			return fmt.Errorf("compiled-engine geomean speedup %.2fx below required %.2fx — wall-clock regression",
				rep.Execs.GeomeanSpeedup, minExecSpeedup)
		}
	}
	if minSpeedup > 0 {
		if rep.PassesSpeedup < minSpeedup {
			return fmt.Errorf("pass-pipeline speedup %.2fx on %s below required %.2fx — wall-clock regression",
				rep.PassesSpeedup, rep.Kernel, minSpeedup)
		}
		if d := rep.ResolvedKernel; d != nil && d.Speedup < minSpeedup {
			return fmt.Errorf("pass-pipeline speedup %.2fx on %s below required %.2fx — wall-clock regression",
				d.Speedup, d.Kernel, minSpeedup)
		}
	}
	return nil
}

func fig2(setup experiments.Setup) error {
	res, err := experiments.Fig2(setup)
	if err != nil {
		return err
	}
	fmt.Println("Figure 2/3 — motivating example (512-line cache, ph spans 510 lines)")
	fmt.Printf("  abstract  non-speculative: ph[k] always-hit = %v (claims the hit)\n", res.NonSpecAlwaysHit)
	fmt.Printf("  abstract  speculative:     ph[k] always-hit = %v (refuses the proof)\n", res.SpecAlwaysHit)
	fmt.Printf("  concrete  non-speculative: %d misses + %d hit\n", res.NonSpecMisses, res.NonSpecHits)
	fmt.Printf("  concrete  mis-speculated:  %d observable misses + %d wrong-path miss = %d total\n",
		res.SpecMisses, res.SpecSpMisses, res.SpecMisses+res.SpecSpMisses)
	return nil
}

func stats(title string, rows []experiments.StatRow) error {
	fmt.Println(title)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Name, r.Origin, r.Description, fmt.Sprint(r.LoC)})
	}
	fmt.Print(experiments.FormatTable([]string{"Name", "Source", "Description", "LoC"}, cells))
	return nil
}

func table5(ctx context.Context, setup experiments.Setup) error {
	rows, err := experiments.Table5(ctx, setup)
	if err != nil {
		return err
	}
	fmt.Println("Table 5 — execution time estimation: non-speculative vs speculative")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name,
			r.NonSpecTime.Round(time.Millisecond).String(), fmt.Sprint(r.NonSpecMiss),
			r.SpecTime.Round(time.Millisecond).String(), fmt.Sprint(r.SpecMiss),
			fmt.Sprint(r.SpecSpMiss), fmt.Sprint(r.Branches), fmt.Sprint(r.Iterations),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Name", "Time(ns)", "#Miss", "Time(sp)", "#Miss(sp)", "#SpMiss", "#Branch", "#Iteration"},
		cells))
	return nil
}

func table6(ctx context.Context, setup experiments.Setup) error {
	rows, err := experiments.Table6(ctx, setup)
	if err != nil {
		return err
	}
	fmt.Println("Table 6 — merging strategies: merge-at-rollback (Fig. 6d) vs just-in-time (Fig. 6c)")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name,
			r.RollbackTime.Round(time.Millisecond).String(), fmt.Sprint(r.RollbackMiss),
			fmt.Sprint(r.RollbackSpMiss), fmt.Sprint(r.RollbackIter),
			r.JITTime.Round(time.Millisecond).String(), fmt.Sprint(r.JITMiss),
			fmt.Sprint(r.JITSpMiss), fmt.Sprint(r.JITIter),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Name", "RB-Time", "RB-#Miss", "RB-#SpMiss", "RB-#Ite", "JIT-Time", "JIT-#Miss", "JIT-#SpMiss", "JIT-#Ite"},
		cells))
	return nil
}

func table7(ctx context.Context, setup experiments.Setup) error {
	rows, err := experiments.Table7(ctx, setup)
	if err != nil {
		return err
	}
	fmt.Println("Table 7 — side channel detection (buffer found by sweeping, as §7.3)")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, fmt.Sprint(r.BufferBytes),
			r.NonSpecTime.Round(time.Millisecond).String(), leak(r.NonSpecLeak),
			r.SpecTime.Round(time.Millisecond).String(), leak(r.SpecLeak),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Name", "Buffer(B)", "NS-Time", "NS-Leak", "SP-Time", "SP-Leak"},
		cells))
	return nil
}

func depth(ctx context.Context, setup experiments.Setup) error {
	rows, err := experiments.DepthAblation(ctx, setup)
	if err != nil {
		return err
	}
	fmt.Println("§6.2 ablation — dynamic speculation-depth bounding on/off")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name,
			r.BoundedTime.Round(time.Millisecond).String(), fmt.Sprint(r.BoundedMiss), fmt.Sprint(r.BoundedIter),
			r.UnboundedTime.Round(time.Millisecond).String(), fmt.Sprint(r.UnboundedMiss), fmt.Sprint(r.UnboundedIter),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Name", "On-Time", "On-#Miss", "On-#Ite", "Off-Time", "Off-#Miss", "Off-#Ite"},
		cells))
	return nil
}

func icache(ctx context.Context, setup experiments.Setup) error {
	const lines = 16
	rows, err := experiments.ICacheTable(ctx, lines, setup)
	if err != nil {
		return err
	}
	fmt.Printf("§3.2 extension — instruction cache analysis (%d-line i-cache)\n", lines)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, fmt.Sprint(r.Fetches), fmt.Sprint(r.NonSpecMiss),
			fmt.Sprint(r.SpecMiss), fmt.Sprint(r.SpecSpMiss),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Name", "#Fetch", "NS-#Miss", "SP-#Miss", "#SpMiss"}, cells))
	return nil
}

func geometry(ctx context.Context, setup experiments.Setup) error {
	lineCounts := []int{8, 16, 32, 64, 128, 256, 512}
	rows, err := experiments.GeometrySweep(ctx, "g72", lineCounts, setup)
	if err != nil {
		return err
	}
	fmt.Println("Cache-geometry sweep (g72): where speculation-awareness matters")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprint(r.Lines), fmt.Sprint(r.NonSpecMiss),
			fmt.Sprint(r.SpecMiss), fmt.Sprint(r.SpecSpMiss),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Lines", "NS-#Miss", "SP-#Miss", "#SpMiss"}, cells))
	return nil
}

func leak(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}
