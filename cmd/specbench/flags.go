package main

import (
	"fmt"

	"specabsint/internal/bytecode"
	"specabsint/internal/core"
)

// The flag parsers reject unknown values instead of silently falling back to
// a default: a typo in -scheduler or -exec must not quietly benchmark the
// wrong configuration — and must fail for every -experiment value, not only
// the ones that happen to read the flag.

// parseScheduler resolves the -scheduler flag value.
func parseScheduler(s string) (core.Scheduler, error) {
	switch s {
	case "wto":
		return core.SchedulerWTO, nil
	case "worklist":
		return core.SchedulerWorklist, nil
	}
	return core.SchedulerWTO, fmt.Errorf("unknown -scheduler %q (want wto or worklist)", s)
}

// parseExec resolves the -exec flag value.
func parseExec(s string) (bytecode.ExecMode, error) {
	switch s {
	case "compiled":
		return bytecode.ExecCompiled, nil
	case "interp":
		return bytecode.ExecInterp, nil
	}
	return bytecode.ExecCompiled, fmt.Errorf("unknown -exec %q (want compiled or interp)", s)
}
