// Command specserve is the specabsint analysis daemon: an HTTP/JSON service
// that compiles and analyzes MiniC programs through a shared worker pool
// with a two-tier content-addressed cache. The wire contract is frozen at
// v1 (specabsint/wire, docs/API.md); identical requests are answered from
// the report cache without re-running the analysis.
//
// Usage:
//
//	specserve [-addr :8723] [-workers N] [-queue N] [-timeout 30s]
//	          [-prog-cache N] [-report-cache N]
//
// Endpoints: POST /v1/analyze, POST /v1/batch, POST /v1/batch/stream (NDJSON),
// GET /v1/metrics, GET /v1/healthz, GET /debug/vars (expvar; pool snapshot
// under "specserve.pool").
//
// On SIGTERM or SIGINT the daemon drains gracefully: readiness flips to
// 503, in-flight requests finish (bounded by -drain-timeout), and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specabsint"
	"specabsint/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", 0, "analysis worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", serve.DefaultQueueBound, "admission queue bound (jobs); excess requests get 429")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request analysis deadline (<0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight work on shutdown")
	progCache := flag.Int("prog-cache", 0, "compiled-program cache bound in entries (0 = default, <0 unbounded)")
	reportCache := flag.Int("report-cache", 0, "report cache bound in entries (0 = default, <0 unbounded)")
	flag.Parse()

	svc := specabsint.NewService(specabsint.ServiceConfig{
		Workers:           *workers,
		ProgramCacheBound: *progCache,
		ReportCacheBound:  *reportCache,
	})
	svc.PublishExpvar("specserve.pool")

	srv := serve.New(serve.Config{
		Service:        svc,
		QueueBound:     *queue,
		RequestTimeout: *timeout,
	})

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("/debug/vars", expvar.Handler())

	httpSrv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("specserve: %v", err)
	}
	log.Printf("specserve: listening on %s (queue=%d timeout=%v)", ln.Addr(), *queue, *timeout)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		log.Printf("specserve: %v received, draining", sig)
	case err := <-errc:
		log.Fatalf("specserve: %v", err)
	}

	// Drain: stop routing (healthz 503, new work 503), close the listener
	// and wait for in-flight handlers, then settle the pool.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "specserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "specserve: drain: %v\n", err)
		os.Exit(1)
	}
	log.Printf("specserve: drained, exiting")
}
