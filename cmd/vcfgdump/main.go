// Command vcfgdump prints a MiniC program's lowered IR, its CFG in Graphviz
// DOT format, and the speculative-flow summary (colors, vn_stop placements)
// that the analysis derives — the paper's virtual control flow made visible.
//
// Usage:
//
//	vcfgdump [-ir] [-dot] [-colors] program.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specabsint/internal/cfg"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/lower"
	"specabsint/internal/source"
)

func main() {
	var (
		showIR     = flag.Bool("ir", false, "print the lowered IR")
		showDOT    = flag.Bool("dot", true, "print the CFG in DOT format")
		showVCFG   = flag.Bool("vcfg", false, "print the CFG with the virtual (speculative) control flows as dashed edges")
		showColors = flag.Bool("colors", false, "print the speculative flows (colors)")
		maxUnroll  = flag.Int("unroll", 64, "loop unrolling cap (small keeps the graph readable)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vcfgdump [flags] program.c")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	ast, err := source.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	prog, err := lower.Lower(ast, lower.Options{MaxUnroll: *maxUnroll})
	if err != nil {
		fatal(err)
	}
	g := cfg.New(prog)

	if *showIR {
		fmt.Println(prog.String())
	}
	if *showDOT && !*showVCFG {
		fmt.Println(g.DOT())
	}
	if *showVCFG {
		opts := core.DefaultOptions()
		res, err := core.Analyze(prog, opts)
		if err != nil {
			fatal(err)
		}
		dot := g.DOT()
		dot = strings.TrimSuffix(strings.TrimSpace(dot), "}")
		var sb strings.Builder
		sb.WriteString(dot)
		for _, f := range res.Flows {
			// vn_start: the speculation begins at the predicted successor.
			fmt.Fprintf(&sb, "  b%d -> b%d [style=dotted, color=blue, label=\"speculate\"];\n",
				f.Branch, f.SpecSucc)
			// rollback: the speculative state is injected into the other arm.
			fmt.Fprintf(&sb, "  b%d -> b%d [style=dashed, color=red, label=\"rollback\"];\n",
				f.SpecSucc, f.OtherSucc)
			// vn_stop: the speculative state merges back into the normal flow.
			if int(f.Stop) < len(prog.Blocks) {
				fmt.Fprintf(&sb, "  b%d -> b%d [style=dashed, color=red, label=\"vn_stop\"];\n",
					f.OtherSucc, f.Stop)
			}
		}
		sb.WriteString("}\n")
		fmt.Println(sb.String())
	}
	if *showColors {
		pdom := g.PostDominators()
		fmt.Println("speculative flows (color = branch x predicted direction):")
		n := 0
		for _, b := range prog.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpCondBr || !g.Reachable(b.ID) {
				continue
			}
			succs := b.Succs()
			stop := pdom.ImmediatePostDom(b.ID)
			stopName := "exit"
			if int(stop) < len(prog.Blocks) {
				stopName = prog.Blocks[stop].Label
			}
			fmt.Printf("  branch %-8s predict-T: speculate %s, rollback into %s, vn_stop %s\n",
				b.Label, prog.Blocks[succs[0]].Label, prog.Blocks[succs[1]].Label, stopName)
			fmt.Printf("  branch %-8s predict-F: speculate %s, rollback into %s, vn_stop %s\n",
				b.Label, prog.Blocks[succs[1]].Label, prog.Blocks[succs[0]].Label, stopName)
			n += 2
		}
		fmt.Printf("total colors: %d\n", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcfgdump:", err)
	os.Exit(1)
}
