// Command vcfgdump prints a MiniC program's lowered IR, its CFG in Graphviz
// DOT format, and the speculative-flow summary (colors, vn_stop placements)
// that the analysis derives — the paper's virtual control flow made visible.
//
// Usage:
//
//	vcfgdump [-ir] [-dot] [-colors] [-verify] [-passes] [-mitigate] program.c
//
// -passes runs the analysis-preserving pass pipeline one pass at a time and
// prints the effective block and speculative-lane counts before and after
// each pass; -verify re-runs the structural IR verifier on the final program
// and prints its verdict (non-zero exit on diagnostics); -mitigate runs the
// fence synthesizer and prints the per-function mitigation summary — the
// placements, the leak counts before and after, and the fenced blocks.
// Fence instructions, whether written in the source or synthesized, render
// as `fence` lines in both the -ir listing and the DOT node labels.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specabsint/internal/cfg"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/irverify"
	"specabsint/internal/lower"
	"specabsint/internal/mitigate"
	"specabsint/internal/passes"
	"specabsint/internal/source"
)

func main() {
	// All failures funnel through run's error — including output errors,
	// which fmt.Println would silently drop, letting a failed dump exit 0.
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vcfgdump:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("vcfgdump", flag.ExitOnError)
	var (
		showIR     = fs.Bool("ir", false, "print the lowered IR")
		showDOT    = fs.Bool("dot", true, "print the CFG in DOT format")
		showVCFG   = fs.Bool("vcfg", false, "print the CFG with the virtual (speculative) control flows as dashed edges")
		showColors = fs.Bool("colors", false, "print the speculative flows (colors)")
		maxUnroll  = fs.Int("unroll", 64, "loop unrolling cap (small keeps the graph readable)")
		runPasses  = fs.Bool("passes", false, "run the pass pipeline one pass at a time, printing before/after block and lane counts")
		verify     = fs.Bool("verify", false, "re-run the structural IR verifier on the final program and print the verdict")
		mitigateF  = fs.Bool("mitigate", false, "run the fence synthesizer and print the per-function mitigation summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vcfgdump [flags] program.c")
		fs.Usage()
		os.Exit(2)
	}
	out := bufio.NewWriter(stdout)

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	ast, err := source.Parse(string(src))
	if err != nil {
		return err
	}
	prog, err := lower.Lower(ast, lower.Options{MaxUnroll: *maxUnroll})
	if err != nil {
		return err
	}

	if *runPasses {
		if err := dumpPasses(out, prog); err != nil {
			return err
		}
	}
	g := cfg.New(prog)

	if *verify {
		if diags := irverify.Diagnose(prog, g); len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintln(out, "verify:", d.String())
			}
			if err := out.Flush(); err != nil {
				return err
			}
			return fmt.Errorf("verify: %d diagnostic(s)", len(diags))
		}
		fmt.Fprintf(out, "verify: OK (%d blocks, %d instructions, %d symbols)\n",
			len(prog.Blocks), prog.NumInstrs, len(prog.Symbols))
	}

	if *showIR {
		fmt.Fprintln(out, prog.String())
	}
	if *showDOT && !*showVCFG {
		fmt.Fprintln(out, g.DOT())
	}
	if *showVCFG {
		opts := core.DefaultOptions()
		res, err := core.Analyze(prog, opts)
		if err != nil {
			return err
		}
		dot := g.DOT()
		dot = strings.TrimSuffix(strings.TrimSpace(dot), "}")
		var sb strings.Builder
		sb.WriteString(dot)
		for _, f := range res.Flows {
			// vn_start: the speculation begins at the predicted successor.
			fmt.Fprintf(&sb, "  b%d -> b%d [style=dotted, color=blue, label=\"speculate\"];\n",
				f.Branch, f.SpecSucc)
			// rollback: the speculative state is injected into the other arm.
			fmt.Fprintf(&sb, "  b%d -> b%d [style=dashed, color=red, label=\"rollback\"];\n",
				f.SpecSucc, f.OtherSucc)
			// vn_stop: the speculative state merges back into the normal flow.
			if int(f.Stop) < len(prog.Blocks) {
				fmt.Fprintf(&sb, "  b%d -> b%d [style=dashed, color=red, label=\"vn_stop\"];\n",
					f.OtherSucc, f.Stop)
			}
		}
		sb.WriteString("}\n")
		fmt.Fprintln(out, sb.String())
	}
	if *mitigateF {
		if err := dumpMitigation(out, prog); err != nil {
			return err
		}
	}
	if *showColors {
		pdom := g.PostDominators()
		fmt.Fprintln(out, "speculative flows (color = branch x predicted direction):")
		n := 0
		for _, b := range prog.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpCondBr || t.Resolved || !g.Reachable(b.ID) {
				continue
			}
			succs := b.Succs()
			stop := pdom.ImmediatePostDom(b.ID)
			stopName := "exit"
			if int(stop) < len(prog.Blocks) {
				stopName = prog.Blocks[stop].Label
			}
			fmt.Fprintf(out, "  branch %-8s predict-T: speculate %s, rollback into %s, vn_stop %s\n",
				b.Label, prog.Blocks[succs[0]].Label, prog.Blocks[succs[1]].Label, stopName)
			fmt.Fprintf(out, "  branch %-8s predict-F: speculate %s, rollback into %s, vn_stop %s\n",
				b.Label, prog.Blocks[succs[1]].Label, prog.Blocks[succs[0]].Label, stopName)
			n += 2
		}
		fmt.Fprintf(out, "total colors: %d\n", n)
	}
	return out.Flush()
}

// dumpMitigation runs the fence synthesizer on the program and prints the
// per-function mitigation summary: MiniC programs have a single function
// (main), so the function row carries the whole program's placements,
// residuals, and fenced blocks.
func dumpMitigation(out io.Writer, prog *ir.Program) error {
	rep, err := mitigate.Synthesize(context.Background(), prog, mitigate.DefaultOptions())
	if err != nil {
		return fmt.Errorf("mitigate: %w", err)
	}
	fmt.Fprintln(out, "mitigation summary:")
	fmt.Fprintf(out, "  %-10s %-8s %-8s %-8s %s\n", "function", "leaks", "residual", "fences", "fenced blocks")
	blocks := map[string]bool{}
	var labels []string
	for _, f := range rep.Fences {
		if !blocks[f.Label] {
			blocks[f.Label] = true
			labels = append(labels, f.Label)
		}
	}
	list := "-"
	if len(labels) > 0 {
		list = strings.Join(labels, ",")
	}
	fmt.Fprintf(out, "  %-10s %-8d %-8d %-8d %s\n", "main",
		rep.BaselineLeaks+rep.BaselineGadgets, rep.ResidualLeaks+rep.ResidualGadgets,
		len(rep.Fences), list)
	for _, f := range rep.Fences {
		fmt.Fprintf(out, "    %s\n", f)
	}
	if rep.ResidualLeaks > 0 {
		fmt.Fprintf(out, "  residual leaks are not speculation-induced (classic analysis reports them too)\n")
	}
	return nil
}

// dumpPasses applies the pipeline one pass at a time, printing the effective
// block count (blocks reachable along taken-only edges) and speculative lane
// count (unresolved conditional branches x 2 directions) around each pass.
func dumpPasses(out io.Writer, prog *ir.Program) error {
	type step struct {
		name string
		opts passes.Options
	}
	steps := []step{
		{"sccp", passes.Options{SCCP: true}},
		{"copyprop", passes.Options{CopyProp: true}},
		{"resolve-branches", passes.Options{ResolveBranches: true}},
		{"dce", passes.Options{DCE: true}},
	}
	fmt.Fprintln(out, "pass pipeline (before -> after):")
	fmt.Fprintf(out, "  %-18s %-16s %-12s %s\n", "pass", "live blocks", "lanes", "effect")
	blocks, lanes := effBlockCount(prog), prog.CondBranchCount()*2
	fmt.Fprintf(out, "  %-18s %-16d %-12d -\n", "(input)", blocks, lanes)
	for _, s := range steps {
		res, err := passes.Run(prog, s.opts)
		if err != nil {
			return fmt.Errorf("pass %s: %w", s.name, err)
		}
		nb, nl := effBlockCount(prog), prog.CondBranchCount()*2
		effect := "no change"
		switch {
		case res.FoldedOperands > 0:
			effect = fmt.Sprintf("folded %d operand(s)", res.FoldedOperands)
		case res.ResolvedBranches > 0:
			effect = fmt.Sprintf("resolved %d branch(es)", res.ResolvedBranches)
		case res.NopsInserted > 0:
			effect = fmt.Sprintf("nopped %d instruction(s)", res.NopsInserted)
		}
		fmt.Fprintf(out, "  %-18s %-16s %-12s %s\n", s.name,
			fmt.Sprintf("%d -> %d", blocks, nb), fmt.Sprintf("%d -> %d", lanes, nl), effect)
		blocks, lanes = nb, nl
	}
	return nil
}

// effBlockCount counts blocks reachable from entry along effective successor
// edges (resolved branches contribute only their taken edge).
func effBlockCount(prog *ir.Program) int {
	reach := make([]bool, len(prog.Blocks))
	stack := []ir.BlockID{prog.Entry}
	reach[prog.Entry] = true
	n := 1
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range prog.Blocks[b].EffectiveSuccs() {
			if !reach[s] {
				reach[s] = true
				n++
				stack = append(stack, s)
			}
		}
	}
	return n
}
