package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeProgram drops MiniC source into a temp file and returns its path.
func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.c")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const fencedSrc = `char ph[256];
char p;
secret reg int k;
int main() {
  reg int t;
  if (p == 0) {
    fence;
    t = ph[0];
  }
  t = ph[k & 255];
  return t;
}
`

// TestFenceRendering pins that fence instructions written in the source
// appear in both the -ir listing and the DOT node labels.
func TestFenceRendering(t *testing.T) {
	path := writeProgram(t, fencedSrc)
	var out bytes.Buffer
	if err := run(&out, []string{"-ir", "-dot", path}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "fence") {
		t.Fatalf("no fence instruction in output:\n%s", text)
	}
	if !strings.Contains(text, "digraph cfg") {
		t.Fatalf("DOT section missing:\n%s", text)
	}
}

// TestMitigationSummary pins the -mitigate section: a leaky program gets a
// per-function row with synthesized fences and zero residual.
func TestMitigationSummary(t *testing.T) {
	src := `char ph[256];
char p;
secret reg int k;
reg int t;
int main() {
  if (p == 0) {
    t = ph[k & 255];
  }
  return t;
}
`
	path := writeProgram(t, src)
	var out bytes.Buffer
	if err := run(&out, []string{"-dot=false", "-mitigate", path}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "mitigation summary:") {
		t.Fatalf("no mitigation summary in output:\n%s", text)
	}
	if !strings.Contains(text, "main") {
		t.Fatalf("no per-function row in output:\n%s", text)
	}
}

// failingWriter errors on every write.
type failingWriter struct{}

var errSink = errors.New("sink failed")

func (failingWriter) Write([]byte) (int, error) { return 0, errSink }

// TestWriteErrorExitsNonzero pins the failure path main relies on for its
// non-zero exit: a write error on stdout must surface as run's error, not be
// swallowed (a failed dump that exits 0 corrupts downstream pipelines).
func TestWriteErrorExitsNonzero(t *testing.T) {
	path := writeProgram(t, fencedSrc)
	err := run(failingWriter{}, []string{"-ir", path})
	if err == nil {
		t.Fatal("run succeeded despite every write failing")
	}
	if !errors.Is(err, errSink) {
		t.Fatalf("error %v does not wrap the writer's failure", err)
	}
}
