// Command specmitigate runs the automatic Spectre fence synthesis on a MiniC
// source file: it analyzes the program, searches for a low-cost fence set
// that makes the speculation-aware analysis report zero speculation-induced
// leaks, verifies the repaired program, and reports the placements with
// their WCET cost.
//
// Usage:
//
//	specmitigate [flags] program.c
//	specmitigate [flags] -corpus name
//
// Exit codes: 0 — repair complete (zero residual leaks and gadgets);
// 3 — residual leaks remain (they exist under the classic non-speculative
// analysis too and are not fence-fixable); 1 — error; 2 — usage.
//
// Examples:
//
//	specmitigate -corpus fig2
//	specmitigate -json -corpus ocb
//	specmitigate -dump-ir examples/fig2.c
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"specabsint"
	"specabsint/internal/bench"
	"specabsint/wire"
)

func main() {
	var (
		lines    = flag.Int("lines", 512, "total cache lines")
		lineSize = flag.Int("linesize", 64, "bytes per cache line")
		sets     = flag.Int("sets", 1, "cache sets (1 = fully associative)")
		bm       = flag.Int("bm", 200, "speculation depth after a missing condition (instructions)")
		bh       = flag.Int("bh", 20, "speculation depth after a hitting condition (instructions)")
		verify   = flag.Bool("verify", true, "differentially verify the fenced program against the concrete speculative machine")
		asJSON   = flag.Bool("json", false, "emit the mitigation report as its canonical wire document")
		dumpIR   = flag.Bool("dump-ir", false, "print the fenced program's IR after the report")
		timeout  = flag.Duration("timeout", 0, "abort the synthesis after this long (0 = no limit)")
		corpus   = flag.String("corpus", "", "mitigate a built-in program instead of a file: fig2 or a benchmark name")
	)
	flag.Parse()

	var src, srcName string
	switch {
	case *corpus != "" && flag.NArg() == 0:
		srcName = *corpus
		text, err := corpusSource(*corpus)
		if err != nil {
			fatal(err)
		}
		src = text
	case *corpus == "" && flag.NArg() == 1:
		srcName = flag.Arg(0)
		data, err := os.ReadFile(srcName)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: specmitigate [flags] program.c | specmitigate [flags] -corpus name")
		flag.Usage()
		os.Exit(2)
	}

	opts := []specabsint.Option{
		specabsint.WithCache(specabsint.CacheConfig{LineSize: *lineSize, NumSets: *sets, Assoc: *lines / *sets}),
		specabsint.WithDepths(*bm, *bh),
		specabsint.WithMitigateVerify(*verify),
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	prog, err := specabsint.CompileOpts(src, opts...)
	if err != nil {
		var perr *specabsint.ParseError
		if errors.As(err, &perr) {
			fmt.Fprintf(os.Stderr, "specmitigate: %s:%d:%d: %s\n", srcName, perr.Line(), perr.Col(), perr.Msg)
			os.Exit(1)
		}
		fatal(err)
	}
	rep, err := specabsint.Mitigate(ctx, prog, opts...)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		out, err := wire.EncodeMitigation(rep)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		printReport(rep)
	}
	if *dumpIR {
		fmt.Println()
		fmt.Println(rep.Program.IR())
	}
	if rep.ResidualLeaks > 0 || rep.ResidualGadgets > 0 {
		os.Exit(3)
	}
}

func printReport(rep *specabsint.MitigationReport) {
	fmt.Printf("baseline: %d leak(s), %d spectre gadget(s)\n", rep.BaselineLeaks, rep.BaselineGadgets)
	if len(rep.Fences) == 0 {
		fmt.Println("fences:   none needed")
	} else {
		fmt.Printf("fences:   %d synthesized (%d candidate sites, %d analyses)\n",
			len(rep.Fences), rep.Candidates, rep.Analyses)
		for _, f := range rep.Fences {
			fmt.Printf("  %s\n", f)
		}
	}
	fmt.Printf("residual: %d leak(s), %d gadget(s)", rep.ResidualLeaks, rep.ResidualGadgets)
	if rep.ResidualLeaks > 0 {
		fmt.Print("  [not speculation-induced: the classic analysis reports them too]")
	}
	fmt.Println()
	if rep.WCETBounded {
		fmt.Printf("wcet:     %d -> %d cycles (%+.2f%%)\n", rep.BaselineWCET, rep.MitigatedWCET, rep.OverheadPercent)
	} else {
		fmt.Println("wcet:     unbounded (cyclic CFG)")
	}
	switch {
	case rep.VerifySkipped:
		fmt.Println("verify:   skipped (no secrets, secret-dependent control flow, or disabled)")
	case rep.Verified:
		fmt.Printf("verify:   OK — %d concrete replays, no unreported secret-varying trace pair\n", rep.Traces)
	default:
		fmt.Printf("verify:   FAILED — a secret-varying trace pair survives the fence set (%d replays)\n", rep.Traces)
	}
}

// corpusSource resolves -corpus like specanalyze does: the paper's Fig. 2
// example or any internal/bench benchmark (side-channel kernels wrapped in
// the Fig. 10 client with a 4 KiB attacker buffer).
func corpusSource(name string) (string, error) {
	if name == "fig2" {
		return bench.Fig2Program(-1), nil
	}
	b, ok := bench.ByName(name)
	if !ok {
		names := []string{"fig2"}
		for _, bb := range bench.All() {
			names = append(names, bb.Name)
		}
		return "", fmt.Errorf("unknown corpus program %q (have: %s)", name, strings.Join(names, ", "))
	}
	if b.Kind == bench.SideChannel {
		return bench.WithClient(b, 4096), nil
	}
	return b.Code, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specmitigate:", err)
	os.Exit(1)
}
