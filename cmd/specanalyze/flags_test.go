package main

import (
	"testing"

	"specabsint"
)

// TestFlagParsers checks every valid flag value resolves and — the important
// half — that unknown values are reported as errors rather than silently
// mapped to a default configuration.
func TestFlagParsers(t *testing.T) {
	if s, err := parseStrategy("partition"); err != nil || s != specabsint.PerRollbackBlock {
		t.Errorf("parseStrategy(partition) = %v, %v", s, err)
	}
	if s, err := parseScheduler("worklist"); err != nil || s != specabsint.Worklist {
		t.Errorf("parseScheduler(worklist) = %v, %v", s, err)
	}
	if m, err := parseExec("compiled"); err != nil || m != specabsint.Compiled {
		t.Errorf("parseExec(compiled) = %v, %v", m, err)
	}
	if m, err := parseExec("interp"); err != nil || m != specabsint.Interp {
		t.Errorf("parseExec(interp) = %v, %v", m, err)
	}
	if on, err := parsePasses("off"); err != nil || on {
		t.Errorf("parsePasses(off) = %v, %v", on, err)
	}

	for _, bad := range []struct {
		name string
		err  error
	}{
		{"strategy", errOf(parseStrategy("speculate-harder"))},
		{"scheduler", errOf(parseScheduler("wt0"))},
		{"scheduler-empty", errOf(parseScheduler(""))},
		{"exec", errOf(parseExec("bytecode"))},
		{"exec-empty", errOf(parseExec(""))},
		{"passes", errOf(parsePasses("maybe"))},
	} {
		if bad.err == nil {
			t.Errorf("unknown -%s value accepted", bad.name)
		}
	}
}

func errOf[T any](_ T, err error) error { return err }
