package main

import (
	"fmt"

	"specabsint"
)

// The flag parsers reject unknown values instead of silently falling back to
// a default: a typo in -scheduler or -exec must not quietly benchmark or
// analyze the wrong configuration.

// parseStrategy resolves the -strategy flag value.
func parseStrategy(s string) (specabsint.Strategy, error) {
	switch s {
	case "jit":
		return specabsint.JustInTime, nil
	case "rollback":
		return specabsint.MergeAtRollback, nil
	case "partition":
		return specabsint.PerRollbackBlock, nil
	}
	return specabsint.JustInTime, fmt.Errorf("unknown strategy %q (want jit, rollback or partition)", s)
}

// parseScheduler resolves the -scheduler flag value.
func parseScheduler(s string) (specabsint.Scheduler, error) {
	switch s {
	case "wto":
		return specabsint.WTO, nil
	case "worklist":
		return specabsint.Worklist, nil
	}
	return specabsint.WTO, fmt.Errorf("unknown scheduler %q (want wto or worklist)", s)
}

// parseExec resolves the -exec flag value.
func parseExec(s string) (specabsint.Exec, error) {
	switch s {
	case "compiled":
		return specabsint.Compiled, nil
	case "interp":
		return specabsint.Interp, nil
	}
	return specabsint.Compiled, fmt.Errorf("unknown exec engine %q (want compiled or interp)", s)
}

// parsePasses resolves the -passes flag value.
func parsePasses(s string) (bool, error) {
	switch s {
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("-passes must be on or off, got %q", s)
}
