// Command specanalyze runs the speculation-aware cache analysis on a MiniC
// source file and reports per-access hit/miss verdicts, the timing estimate,
// and any cache side channels.
//
// Usage:
//
//	specanalyze [flags] program.c
//	specanalyze [flags] -corpus name
//
// Examples:
//
//	specanalyze -lines 512 -linesize 64 -bm 200 -bh 20 examples/fig2.c
//	specanalyze -corpus fig2 -stats=json -stats-notimes
//	specanalyze -corpus fig2 -mitigate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"specabsint"
	"specabsint/internal/bench"
	"specabsint/internal/obs"
	"specabsint/wire"
)

func main() {
	var (
		lines      = flag.Int("lines", 512, "total cache lines")
		lineSize   = flag.Int("linesize", 64, "bytes per cache line")
		sets       = flag.Int("sets", 1, "cache sets (1 = fully associative)")
		bm         = flag.Int("bm", 200, "speculation depth after a missing condition (instructions)")
		bh         = flag.Int("bh", 20, "speculation depth after a hitting condition (instructions)")
		nonspec    = flag.Bool("nonspec", false, "run the classic non-speculative analysis instead")
		passesFlag = flag.String("passes", "on", "analysis-preserving pass pipeline (SCCP, copy propagation, branch resolution, DCE): on or off")
		strategy   = flag.String("strategy", "jit", "merge strategy: jit, rollback, partition")
		scheduler  = flag.String("scheduler", "wto", "fixpoint scheduler: wto or worklist (results are identical; effort differs)")
		execFlag   = flag.String("exec", "compiled", "execution engine: compiled or interp (results are identical; speed differs)")
		parallel   = flag.Int("parallel", 0, "cache-set fixpoint parallelism (0 = single dense fixpoint)")
		timeout    = flag.Duration("timeout", 0, "abort the analysis after this long (0 = no limit)")
		sim        = flag.Bool("sim", false, "also run the concrete speculative simulator")
		mitigateF  = flag.Bool("mitigate", false, "synthesize a fence set repairing the reported leaks and print the mitigation summary (text mode only)")
		verbose    = flag.Bool("v", false, "print every access verdict")
		asJSON     = flag.Bool("json", false, "emit the full report as JSON")
		statsMode  = flag.String("stats", "", "print only the analysis stats document: json or text")
		statsNoT   = flag.Bool("stats-notimes", false, "zero wall-clock phase timings in -stats output (deterministic, diffable)")
		statsCheck = flag.Bool("stats-validate", false, "validate -stats=json output against the built-in schema before printing")
		corpus     = flag.String("corpus", "", "analyze a built-in program instead of a file: fig2 or a benchmark name")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	if *statsMode != "" && *statsMode != "json" && *statsMode != "text" {
		fatal(fmt.Errorf("-stats must be json or text, got %q", *statsMode))
	}
	var src, srcName string
	switch {
	case *corpus != "" && flag.NArg() == 0:
		srcName = *corpus
		text, err := corpusSource(*corpus)
		if err != nil {
			fatal(err)
		}
		src = text
	case *corpus == "" && flag.NArg() == 1:
		srcName = flag.Arg(0)
		data, err := os.ReadFile(srcName)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: specanalyze [flags] program.c | specanalyze [flags] -corpus name")
		flag.Usage()
		os.Exit(2)
	}
	if err := startProfiles(*cpuProfile, *memProfile); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	sched, err := parseScheduler(*scheduler)
	if err != nil {
		fatal(err)
	}
	exec, err := parseExec(*execFlag)
	if err != nil {
		fatal(err)
	}
	runPasses, err := parsePasses(*passesFlag)
	if err != nil {
		fatal(err)
	}
	opts := []specabsint.Option{
		specabsint.WithCache(specabsint.CacheConfig{LineSize: *lineSize, NumSets: *sets, Assoc: *lines / *sets}),
		specabsint.WithDepths(*bm, *bh),
		specabsint.WithSpeculation(!*nonspec),
		specabsint.WithStrategy(strat),
		specabsint.WithScheduler(sched),
		specabsint.WithExec(exec),
		specabsint.WithSetParallelism(*parallel),
		specabsint.WithPasses(runPasses),
		specabsint.WithStats(*statsMode != ""),
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	prog, err := specabsint.CompileOpts(src, opts...)
	if err != nil {
		// Surface the exact source position for front-end diagnostics.
		var perr *specabsint.ParseError
		if errors.As(err, &perr) {
			fmt.Fprintf(os.Stderr, "specanalyze: %s:%d:%d: %s\n",
				srcName, perr.Line(), perr.Col(), perr.Msg)
			os.Exit(1)
		}
		fatal(err)
	}
	rep, err := specabsint.AnalyzeContext(ctx, prog, opts...)
	if err != nil {
		if errors.Is(err, specabsint.ErrCanceled) {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "specanalyze: analysis exceeded %v\n", *timeout)
			os.Exit(130)
		}
		fatal(err)
	}
	cfg := specabsint.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if *statsMode != "" {
		if err := printStats(rep.Stats, *statsMode, *statsNoT, *statsCheck); err != nil {
			fatal(err)
		}
		return
	}
	if *asJSON {
		// The canonical wire encoding — the same bytes specserve returns in
		// AnalyzeResponse.Report for this program and configuration.
		out, err := wire.EncodeReport(rep)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		return
	}

	mode := "speculative"
	if *nonspec {
		mode = "non-speculative"
	}
	fmt.Printf("analysis: %s, cache %v, b_m=%d b_h=%d, strategy %v, scheduler %v\n",
		mode, cfg.Cache, cfg.DepthMiss, cfg.DepthHit, cfg.Strategy, cfg.Scheduler)
	fmt.Printf("accesses: %d   misses (#Miss): %d   wrong-path misses (#SpMiss): %d\n",
		len(rep.Accesses), rep.Misses, rep.SpecMisses)
	fmt.Printf("branches: %d   fixpoint iterations: %d\n", rep.Branches, rep.Iterations)
	fmt.Printf("timing:   %s\n", rep.WCET)
	if rep.LeakDetected {
		fmt.Printf("side channels: %d leak(s) detected\n", len(rep.Leaks))
		for _, l := range rep.Leaks {
			fmt.Printf("  LEAK %s\n", l)
		}
	} else {
		fmt.Println("side channels: none detected")
	}
	if len(rep.SpectreGadgets) > 0 {
		fmt.Printf("spectre gadgets: %d speculative transmission gadget(s)\n", len(rep.SpectreGadgets))
		for _, g := range rep.SpectreGadgets {
			fmt.Printf("  GADGET %s\n", g)
		}
	} else {
		fmt.Println("spectre gadgets: none detected")
	}
	if *verbose {
		fmt.Println("\nper-access verdicts:")
		for _, a := range rep.Accesses {
			kind := "load "
			if a.Store {
				kind = "store"
			}
			spec := ""
			if a.SpecReached {
				spec = fmt.Sprintf("  [wrong-path: %v]", a.SpecClass)
			}
			fmt.Printf("  line %4d  %s %-16s %v%s\n", a.Line, kind, a.Symbol, a.Class, spec)
		}
	}
	if *sim {
		stats, err := specabsint.Simulate(prog, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nconcrete simulation (all branches mispredicted): %v\n", stats)
	}
	if *mitigateF {
		mrep, err := specabsint.Mitigate(ctx, prog, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nmitigation (fence synthesis):")
		if len(mrep.Fences) == 0 {
			fmt.Println("  no fences needed")
		} else {
			fmt.Printf("  %d fence(s), %d analyses:\n", len(mrep.Fences), mrep.Analyses)
			for _, f := range mrep.Fences {
				fmt.Printf("    %s\n", f)
			}
		}
		fmt.Printf("  residual: %d leak(s), %d gadget(s)\n", mrep.ResidualLeaks, mrep.ResidualGadgets)
		if mrep.WCETBounded {
			fmt.Printf("  wcet: %d -> %d cycles (%+.2f%%)\n", mrep.BaselineWCET, mrep.MitigatedWCET, mrep.OverheadPercent)
		}
		// The full document — placements, verification verdict, wire JSON —
		// is specmitigate's job; this is the triage view.
	}
}

// corpusSource resolves -corpus to MiniC source: the paper's Fig. 2 example
// or any internal/bench benchmark (side-channel kernels are wrapped in the
// Fig. 10 client with a 4 KiB attacker buffer so they have a main).
func corpusSource(name string) (string, error) {
	if name == "fig2" {
		return bench.Fig2Program(-1), nil
	}
	b, ok := bench.ByName(name)
	if !ok {
		names := []string{"fig2"}
		for _, bb := range bench.All() {
			names = append(names, bb.Name)
		}
		return "", fmt.Errorf("unknown corpus program %q (have: %s)", name, strings.Join(names, ", "))
	}
	if b.Kind == bench.SideChannel {
		return bench.WithClient(b, 4096), nil
	}
	return b.Code, nil
}

// printStats renders the stats document, the only output in -stats mode.
func printStats(st *specabsint.Stats, mode string, noTimes, validate bool) error {
	if st == nil {
		return fmt.Errorf("stats requested but not collected")
	}
	if noTimes {
		st.ZeroTimes()
	}
	if mode == "text" {
		st.WriteText(os.Stdout)
		return nil
	}
	out, err := st.JSON()
	if err != nil {
		return err
	}
	if validate {
		if err := obs.ValidateStats(out); err != nil {
			return fmt.Errorf("stats failed schema validation: %w", err)
		}
	}
	_, err = os.Stdout.Write(out)
	return err
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "specanalyze:", err)
	os.Exit(1)
}

// profiles holds the pprof teardown state; stopProfiles is safe to call
// multiple times and on the error-exit paths.
var profiles struct {
	cpuFile *os.File
	memPath string
	stopped bool
}

func startProfiles(cpuPath, memPath string) error {
	profiles.memPath = memPath
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		profiles.cpuFile = f
	}
	return nil
}

func stopProfiles() {
	if profiles.stopped {
		return
	}
	profiles.stopped = true
	if profiles.cpuFile != nil {
		pprof.StopCPUProfile()
		profiles.cpuFile.Close()
	}
	if profiles.memPath != "" {
		f, err := os.Create(profiles.memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "specanalyze: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // flush recently freed objects out of the live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "specanalyze: memprofile:", err)
		}
	}
}
