// Command specanalyze runs the speculation-aware cache analysis on a MiniC
// source file and reports per-access hit/miss verdicts, the timing estimate,
// and any cache side channels.
//
// Usage:
//
//	specanalyze [flags] program.c
//
// Example:
//
//	specanalyze -lines 512 -linesize 64 -bm 200 -bh 20 examples/fig2.c
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"specabsint"
)

func main() {
	var (
		lines    = flag.Int("lines", 512, "total cache lines")
		lineSize = flag.Int("linesize", 64, "bytes per cache line")
		sets     = flag.Int("sets", 1, "cache sets (1 = fully associative)")
		bm       = flag.Int("bm", 200, "speculation depth after a missing condition (instructions)")
		bh       = flag.Int("bh", 20, "speculation depth after a hitting condition (instructions)")
		nonspec  = flag.Bool("nonspec", false, "run the classic non-speculative analysis instead")
		strategy = flag.String("strategy", "jit", "merge strategy: jit, rollback, partition")
		sim      = flag.Bool("sim", false, "also run the concrete speculative simulator")
		verbose  = flag.Bool("v", false, "print every access verdict")
		asJSON   = flag.Bool("json", false, "emit the full report as JSON")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: specanalyze [flags] program.c")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	cfg := specabsint.DefaultConfig()
	cfg.Cache = specabsint.CacheConfig{LineSize: *lineSize, NumSets: *sets, Assoc: *lines / *sets}
	cfg.DepthMiss = *bm
	cfg.DepthHit = *bh
	cfg.Speculative = !*nonspec
	switch *strategy {
	case "jit":
		cfg.Strategy = specabsint.JustInTime
	case "rollback":
		cfg.Strategy = specabsint.MergeAtRollback
	case "partition":
		cfg.Strategy = specabsint.PerRollbackBlock
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	prog, err := specabsint.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	rep, err := specabsint.Analyze(prog, cfg)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	mode := "speculative"
	if *nonspec {
		mode = "non-speculative"
	}
	fmt.Printf("analysis: %s, cache %v, b_m=%d b_h=%d, strategy %v\n",
		mode, cfg.Cache, cfg.DepthMiss, cfg.DepthHit, cfg.Strategy)
	fmt.Printf("accesses: %d   misses (#Miss): %d   wrong-path misses (#SpMiss): %d\n",
		len(rep.Accesses), rep.Misses, rep.SpecMisses)
	fmt.Printf("branches: %d   fixpoint iterations: %d\n", rep.Branches, rep.Iterations)
	fmt.Printf("timing:   %s\n", rep.WCET)
	if rep.LeakDetected {
		fmt.Printf("side channels: %d leak(s) detected\n", len(rep.Leaks))
		for _, l := range rep.Leaks {
			fmt.Printf("  LEAK %s\n", l)
		}
	} else {
		fmt.Println("side channels: none detected")
	}
	if len(rep.SpectreGadgets) > 0 {
		fmt.Printf("spectre gadgets: %d speculative transmission gadget(s)\n", len(rep.SpectreGadgets))
		for _, g := range rep.SpectreGadgets {
			fmt.Printf("  GADGET %s\n", g)
		}
	} else {
		fmt.Println("spectre gadgets: none detected")
	}
	if *verbose {
		fmt.Println("\nper-access verdicts:")
		for _, a := range rep.Accesses {
			kind := "load "
			if a.Store {
				kind = "store"
			}
			spec := ""
			if a.SpecReached {
				spec = fmt.Sprintf("  [wrong-path: %v]", a.SpecClass)
			}
			fmt.Printf("  line %4d  %s %-16s %v%s\n", a.Line, kind, a.Symbol, a.Class, spec)
		}
	}
	if *sim {
		stats, err := specabsint.Simulate(prog, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nconcrete simulation (all branches mispredicted): %v\n", stats)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specanalyze:", err)
	os.Exit(1)
}
