package specabsint

// Option configures an analysis or compilation. Options are applied in
// order on top of the paper's defaults (DefaultConfig), so later options
// override earlier ones:
//
//	rep, err := specabsint.AnalyzeContext(ctx, prog,
//		specabsint.WithCache(specabsint.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 128}),
//		specabsint.WithStrategy(specabsint.PerRollbackBlock),
//		specabsint.WithDepths(100, 10),
//	)
//
// The same options configure CompileOpts (only WithMaxUnroll and WithConfig
// affect lowering), AnalyzeContext, and the per-job overrides of
// AnalyzeBatch.
type Option func(*Config)

// WithConfig replaces the whole configuration, bridging code that still
// builds a Config by struct mutation into the option-based entry points.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithCache sets the modeled data-cache geometry.
func WithCache(cache CacheConfig) Option {
	return func(c *Config) { c.Cache = cache }
}

// WithStrategy selects the speculative-state merge strategy (Fig. 6).
func WithStrategy(s Strategy) Option {
	return func(c *Config) { c.Strategy = s }
}

// WithDepths bounds the speculation window in instructions: miss is the
// paper's b_m (window after a potentially missing branch condition), hit is
// b_h (window after a proved-hit condition, §6.2).
func WithDepths(miss, hit int) Option {
	return func(c *Config) { c.DepthMiss, c.DepthHit = miss, hit }
}

// WithScheduler selects the fixpoint iteration order: WTO (Bourdoncle's
// hierarchical weak topological ordering, the default) or Worklist (the
// classic reverse-postorder priority worklist). Classifications are
// byte-identical under either scheduler; only wall clock and the effort
// counters differ.
func WithScheduler(s Scheduler) Option {
	return func(c *Config) { c.Scheduler = s }
}

// WithExec selects the execution engine: Compiled (per-block bytecode for
// the fixpoint transfer loops and specialized closures for the simulator,
// the default) or Interp (the original tree-walking loops over the IR).
// Results are byte-identical under either engine — the compiled form
// replays the exact access/transfer sequence of the tree walk — so this is
// purely a performance knob; Interp exists as the differential-testing
// reference.
func WithExec(m Exec) Option {
	return func(c *Config) { c.Exec = m }
}

// WithRefinedJoin toggles the Appendix-B shadow-variable join refinement
// (on by default).
func WithRefinedJoin(on bool) Option {
	return func(c *Config) { c.RefinedJoin = on }
}

// WithSpeculation toggles the speculation-aware analysis; false runs the
// classic (unsound-under-speculation) baseline.
func WithSpeculation(on bool) Option {
	return func(c *Config) { c.Speculative = on }
}

// WithDynamicDepthBounding toggles the §6.2 optimization that shrinks the
// speculation window once the branch condition's loads are proved must-hits
// (on by default).
func WithDynamicDepthBounding(on bool) Option {
	return func(c *Config) { c.DynamicDepthBounding = on }
}

// WithSetParallelism partitions the analysis into independent cache-set
// groups and fans the per-group fixpoints across up to n goroutines (1 =
// partitioned but serial; 0, the default, keeps the single dense fixpoint).
// Classifications are identical at every value — only wall-clock and
// allocation behavior change — so it is purely a performance knob for
// set-associative cache configurations on multicore hosts.
func WithSetParallelism(n int) Option {
	return func(c *Config) { c.SetParallelism = n }
}

// WithStats populates Report.Stats with the run's observability snapshot:
// program shape, pass effects, the deterministic fixpoint counters, the
// cache-set partition, and per-phase wall clock. Off by default — the
// un-instrumented engine path allocates nothing for stats. Everything except
// the phase timings is deterministic: identical across repeated runs and
// across WithSetParallelism worker counts.
func WithStats(on bool) Option {
	return func(c *Config) { c.Stats = on }
}

// WithPasses toggles the analysis-preserving pass pipeline (SCCP, copy
// propagation, branch resolution, DCE) that runs after lowering. On by
// default; it only affects CompileOpts and the compilations AnalyzeBatch
// performs. Disabling it analyzes the raw lowered IR — useful for debugging
// and for A/B precision comparisons.
func WithPasses(on bool) Option {
	return func(c *Config) { c.Passes = on }
}

// WithMaxUnroll caps full unrolling of constant-trip loops at lowering
// time. It only affects CompileOpts (and the compilations AnalyzeBatch
// performs); analysis entry points ignore it.
func WithMaxUnroll(n int) Option {
	return func(c *Config) { c.MaxUnroll = n }
}

// WithMitigateVerify toggles the differential secret-pair trace check
// Mitigate runs on the fenced program (on by default). The analysis entry
// points ignore it.
func WithMitigateVerify(on bool) Option {
	return func(c *Config) { c.MitigateVerify = on }
}

// Options renders the Config as the equivalent option list: applying the
// returned options to any starting configuration yields exactly c. Every
// field is emitted explicitly (zero values included), so a Config decoded
// from the wire — e.g. a specserve request — reconstructs the same analysis
// the option-based entry points would run:
//
//	rep, err := specabsint.AnalyzeContext(ctx, prog, cfg.Options()...)
//
// The round trip is exact: newConfig(cfg.Options()) == cfg for every cfg.
func (c Config) Options() []Option {
	return []Option{
		WithCache(c.Cache),
		WithSpeculation(c.Speculative),
		WithDepths(c.DepthMiss, c.DepthHit),
		WithDynamicDepthBounding(c.DynamicDepthBounding),
		WithStrategy(c.Strategy),
		WithScheduler(c.Scheduler),
		WithExec(c.Exec),
		WithRefinedJoin(c.RefinedJoin),
		WithMaxUnroll(c.MaxUnroll),
		WithPasses(c.Passes),
		WithSetParallelism(c.SetParallelism),
		WithStats(c.Stats),
		WithMitigateVerify(c.MitigateVerify),
	}
}

// newConfig applies opts on top of the paper's defaults.
func newConfig(opts []Option) Config {
	cfg := DefaultConfig()
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}
