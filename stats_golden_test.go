package specabsint

import (
	"runtime"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/obs"
)

// TestGoldenStats pins the full -stats=json document for the paper's Fig. 2
// program and the two benchmark kernels the perf work is measured on. Phase
// wall clock is zeroed (ZeroTimes) so the files are byte-stable; everything
// else in the document is part of the deterministic stats contract, and any
// engine change that alters a semantic counter must update these files
// consciously (run `go test -run TestGoldenStats -update`).
func TestGoldenStats(t *testing.T) {
	cases := []struct {
		name string
		src  func() string
	}{
		{"fig2", func() string { return bench.Fig2Program(-1) }},
		{"g72", func() string { return mustKernel(t, "g72") }},
		{"jcmarker", func() string { return mustKernel(t, "jcmarker") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := []Option{WithStats(true)}
			p, err := CompileOpts(tc.src(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := AnalyzeContext(t.Context(), p, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Stats == nil {
				t.Fatal("WithStats(true) produced no stats")
			}
			st := rep.Stats
			st.ZeroTimes()
			out, err := st.JSON()
			if err != nil {
				t.Fatal(err)
			}
			// Every golden document must also satisfy the published schema;
			// drift in either direction fails here before it fails in CI.
			if err := obs.ValidateStats(out); err != nil {
				t.Fatalf("golden stats violate schema: %v", err)
			}
			checkGolden(t, "stats_"+tc.name+".json", string(out))
		})
	}
}

// TestStatsOffByDefault pins the opt-in contract: without WithStats the
// report carries no stats document and the compiled program still serves its
// compile-time snapshot.
func TestStatsOffByDefault(t *testing.T) {
	p, err := CompileOpts(bench.Fig2Program(-1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeContext(t.Context(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats != nil {
		t.Fatalf("Report.Stats = %+v without WithStats, want nil", rep.Stats)
	}
	cs := p.Stats()
	if cs == nil || cs.Program.Instrs == 0 {
		t.Fatalf("CompiledProgram.Stats() = %+v, want compile-time snapshot", cs)
	}
}

// TestStatsParallelismByteIdentical is the stats contract stated in the
// strongest available form: on the paper's fully-associative cache, the
// rendered JSON document (wall clock zeroed) is byte-for-byte identical at
// SetParallelism 0, 1, 4, and NumCPU, and across repeated runs.
func TestStatsParallelismByteIdentical(t *testing.T) {
	render := func(workers int) string {
		t.Helper()
		opts := []Option{WithStats(true), WithSetParallelism(workers)}
		p, err := CompileOpts(bench.Fig2Program(-1), opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeContext(t.Context(), p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep.Stats.ZeroTimes()
		out, err := rep.Stats.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	want := render(0)
	for _, w := range []int{0, 1, 4, runtime.NumCPU()} {
		if got := render(w); got != want {
			t.Fatalf("workers=%d: stats document differs from workers=0:\n got %s\nwant %s", w, got, want)
		}
	}
}

// mustKernel returns the raw source of a WCET-kind corpus kernel.
func mustKernel(t *testing.T, name string) string {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("kernel %q not in corpus", name)
	}
	return b.Code
}
