// Wcet_dsp analyzes the paper's running example (§6.1): the quantl routine
// of the adpcm DSP benchmark (Fig. 8). It prints the abstract cache states
// of the fixpoint in the style of Tables 1 and 2 and shows how speculative
// execution lets *both* quantizer tables enter a single execution.
//
//	go run ./examples/wcet_dsp
package main

import (
	"fmt"
	"log"

	"specabsint/internal/bench"
	"specabsint/internal/core"
	"specabsint/internal/layout"
	"specabsint/internal/wcet"
)

func main() {
	// An 8-line fully associative cache keeps the states readable and makes
	// the extra speculative occupancy visible, like the paper's discussion
	// ("if the cache is only large enough to hold the first eight
	// variables...").
	cacheCfg := layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 9}

	prog, err := bench.Compile(bench.QuantlProgram, 1) // keep the loop: the paper widens it
	if err != nil {
		log.Fatal(err)
	}

	for _, spec := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.Cache = cacheCfg
		opts.Speculative = spec
		res, err := core.Analyze(prog, opts)
		if err != nil {
			log.Fatal(err)
		}
		if spec {
			fmt.Println("=== speculative fixpoint (Table 2) ===")
		} else {
			fmt.Println("=== non-speculative fixpoint (Table 1) ===")
		}
		for _, b := range res.Graph.RPO {
			st := res.In[b]
			if st.IsBottom || st.MustCount() == 0 {
				continue
			}
			fmt.Printf("  %-10s %s\n", prog.Block(b).Label, st.Format(res.Layout))
		}
		// The quantl search loop runs at most 30 times (the decision-level
		// table has 30 entries) — the loop bound a WCET user would supply.
		persist, err := core.AnalyzePersistence(prog, opts)
		if err != nil {
			log.Fatal(err)
		}
		est := wcet.NewWithBounds(res, wcet.DefaultCosts(), wcet.BoundOptions{
			DefaultLoopBound: 30,
			Persistence:      persist,
		})
		fmt.Printf("  -> %d of %d accesses may miss; %d wrong-path misses; "+
			"WCET <= %d cycles (loop bound 30, first-miss accounting)\n\n",
			est.Misses, est.Accesses, est.SpecMisses, est.WorstCaseCycles)
	}

	fmt.Println("Under speculation the rollback path loads BOTH quant26bt_pos and")
	fmt.Println("quant26bt_neg (red rows of Table 2), so the must-cache holds one more")
	fmt.Println("table line than any real path would — and one fewer of everything else:")
	fmt.Println("the extra potential miss the classic analysis cannot see.")
}
