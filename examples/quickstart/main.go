// Quickstart: compile a small MiniC program, run the speculation-aware
// cache analysis, and compare it against the classic baseline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"specabsint"
)

const program = `
int table[256];      // a 16-line lookup table
int l1[16]; int l2[16];
char p;              // branch condition living in memory
secret int key;      // the index we must not leak

int main() {
	reg int i; reg int tmp;
	tmp = 0;
	// Warm the table: one access per cache line.
	for (i = 0; i < 256; i += 16) { tmp = tmp + table[i]; }
	// A data-dependent branch: the processor may speculate both ways.
	if (p == 0) { tmp = tmp + l1[0]; }
	else { tmp = tmp - l2[0]; }
	// The secret-indexed access the analysis must judge.
	return tmp + table[key & 255];
}`

func main() {
	prog, err := specabsint.CompileOpts(program)
	if err != nil {
		log.Fatal(err)
	}

	// A small cache makes the effect visible: 19 lines fit the table (16),
	// p, one branch arm, and the key cell exactly — the mis-speculated
	// other arm is the 20th line that does not fit.
	ctx := context.Background()
	small := specabsint.WithCache(specabsint.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 19})

	specRep, err := specabsint.AnalyzeContext(ctx, prog, small)
	if err != nil {
		log.Fatal(err)
	}
	baseRep, err := specabsint.AnalyzeContext(ctx, prog, small, specabsint.WithSpeculation(false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== classic (non-speculative) analysis ===")
	fmt.Printf("  potential misses: %d of %d accesses\n", baseRep.Misses, len(baseRep.Accesses))
	fmt.Printf("  leak detected:    %v\n", baseRep.LeakDetected)

	fmt.Println("=== speculation-aware analysis ===")
	fmt.Printf("  potential misses: %d of %d accesses (+ %d wrong-path)\n",
		specRep.Misses, len(specRep.Accesses), specRep.SpecMisses)
	fmt.Printf("  leak detected:    %v\n", specRep.LeakDetected)
	for _, l := range specRep.Leaks {
		fmt.Printf("    %s\n", l)
	}

	fmt.Println("\nThe classic analysis certifies table[key] as a guaranteed hit and the")
	fmt.Println("program as constant-time; modeling mis-speculation shows both claims fail:")
	fmt.Println("the wrong-path load of the other branch arm can evict a table line, and")
	fmt.Println("whether it does depends on the secret key.")
}
