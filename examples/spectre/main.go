// Spectre demonstrates this reproduction's extension beyond the paper: the
// wrong-path out-of-bounds behaviour behind Spectre v1, detected statically
// and exfiltrated concretely.
//
// The gadget is the classic one: a bounds-checked array read whose
// mis-speculated instance reads past the array — straight into the secret
// laid out after it — and a probe-array access indexed by the stolen value,
// which installs a secret-selected cache line that survives the rollback.
//
//	go run ./examples/spectre
package main

import (
	"fmt"
	"log"

	"specabsint/internal/core"
	"specabsint/internal/layout"
	"specabsint/internal/machine"
	"specabsint/internal/sidechannel"
	"specabsint/internal/source"

	"specabsint/internal/lower"
)

const gadget = `
int a_len = 16;
int a[16];              // one cache line of public data
secret int secret_val;  // lives on the very next line
int probe[4096];        // 256 lines: one per possible secret byte
int x = 16;             // attacker-chosen index: one past the end
int main() {
	reg int y;
	if (x < a_len) {              // the bounds check
		y = a[x];                 // wrong-path instance reads secret_val
		return probe[(y & 255) * 16]; // transmits y through the cache
	}
	return 0;
}`

func main() {
	ast, err := source.Parse(gadget)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lower.Lower(ast, lower.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// --- Static detection -------------------------------------------------
	rep, err := sidechannel.Analyze(prog, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("static analysis:")
	fmt.Printf("  architectural timing leaks: %d (the secret never flows into an architectural address)\n",
		len(rep.Leaks))
	fmt.Printf("  speculative transmission gadgets: %d\n", len(rep.SpectreLeaks))
	for _, l := range rep.SpectreLeaks {
		fmt.Printf("    GADGET %s\n", l)
	}

	// --- Concrete exfiltration --------------------------------------------
	fmt.Println("\nconcrete attack (mis-speculated bounds check, then prime-and-probe):")
	for _, secret := range []int64{7, 42, 200} {
		prog.SymbolByName("secret_val").Init = []int64{secret}
		cfg := machine.DefaultConfig()
		cfg.ForceMispredict = true
		sim, err := machine.New(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			log.Fatal(err)
		}
		probe := prog.SymbolByName("probe")
		first, n := sim.Layout.BlockRange(probe.ID)
		recovered := -1
		for v := 0; v < n; v++ {
			if sim.Cache.Contains(first + layout.BlockID(v)) {
				recovered = v
				break
			}
		}
		fmt.Printf("  secret_val = %3d  ->  probe line cached: %3d  (architectural result: %d)\n",
			secret, recovered, sim.Stats.Ret)
	}
	fmt.Println("\nThe architectural result is always 0 — the bounds check 'works' — yet")
	fmt.Println("the cache names the secret. The speculation-aware analysis flags the")
	fmt.Println("probe access; masking the index (y = a[x & 15]) removes the gadget.")
}
