// Timing replays the paper's motivating example (Fig. 2 and Fig. 3):
// a program whose worst-case execution time is under-estimated by the
// classic cache analysis because mis-speculation loads both branch arms.
//
//	go run ./examples/timing
package main

import (
	"fmt"
	"log"

	"specabsint/internal/bench"
	"specabsint/internal/core"
	"specabsint/internal/experiments"
	"specabsint/internal/machine"
	"specabsint/internal/wcet"
)

func main() {
	setup := experiments.PaperSetup()

	fmt.Println("Figure 2 program: 510 preloaded ph lines, a branch on uncached p,")
	fmt.Println("then the load ph[k] the analysis must judge (512-line cache).")
	fmt.Println()

	// --- Abstract analysis, both modes ------------------------------------
	prog, err := bench.Compile(bench.Fig2Program(-1), setup.MaxUnroll)
	if err != nil {
		log.Fatal(err)
	}
	for _, spec := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.Speculative = spec
		res, err := core.Analyze(prog, opts)
		if err != nil {
			log.Fatal(err)
		}
		est := wcet.New(res, wcet.DefaultCosts())
		mode := "classic     "
		if spec {
			mode = "speculative "
		}
		fmt.Printf("%s analysis: %d/%d accesses may miss, WCET bound %d cycles (+%d wrong-path)\n",
			mode, est.Misses, est.Accesses, est.WorstCaseCycles, est.SpecExtraCycles)
	}

	// --- Concrete replay of Fig. 3 ----------------------------------------
	fmt.Println()
	fmt.Println("Concrete traces (secret k = 0):")
	conc, err := bench.Compile(bench.Fig2Program(0), setup.MaxUnroll)
	if err != nil {
		log.Fatal(err)
	}

	cfg := machine.DefaultConfig()
	cfg.DepthMiss, cfg.DepthHit = 0, 0
	stats, err := machine.RunProgram(conc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  in-order CPU:      %3d misses + %d hit   (%d cycles)\n",
		stats.Misses, stats.Hits, stats.Cycles)

	cfg = machine.DefaultConfig()
	cfg.ForceMispredict = true
	cfg.DepthMiss, cfg.DepthHit = 3, 3
	stats, err = machine.RunProgram(conc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mis-speculating:   %3d misses + %d hits  (%d cycles), plus %d wrong-path miss\n",
		stats.Misses, stats.Hits, stats.Cycles, stats.SpecMisses)

	fmt.Println()
	fmt.Println("The wrong-path load of the other branch arm evicts the oldest ph line,")
	fmt.Println("so ph[k] — a certified hit under the classic analysis — misses: the")
	fmt.Println("classic WCET bound is invalid on speculative hardware (Fig. 3).")
}
