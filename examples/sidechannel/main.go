// Sidechannel reproduces the paper's §2.2/§7.3 scenario: a crypto kernel
// wrapped in the Fig. 10 client. The attacker controls the input buffer
// size; at the right pressure, the cache leaks the secret S-box index —
// but only a speculation-aware analysis can see it.
//
//	go run ./examples/sidechannel
package main

import (
	"context"
	"fmt"
	"log"

	"specabsint/internal/bench"
	"specabsint/internal/core"
	"specabsint/internal/experiments"
	"specabsint/internal/sidechannel"
)

func main() {
	setup := experiments.PaperSetup()
	kernel, ok := bench.ByName("hash")
	if !ok {
		log.Fatal("hash benchmark missing")
	}

	fmt.Println("Kernel: hpn-ssh style hash with a secret-keyed S-box lookup,")
	fmt.Println("wrapped in the Fig. 10 client (preload S-box, read attacker buffer,")
	fmt.Println("branch, call kernel). Cache: 512 lines x 64 B, LRU.")
	fmt.Println()

	fmt.Printf("%-12s %-18s %-18s\n", "buffer", "classic analysis", "speculative analysis")
	for _, bufBytes := range []int{0, 16 * 1024, 28 * 1024, 30592, 32 * 1024} {
		src := bench.WithClient(kernel, bufBytes)
		prog, err := bench.Compile(src, setup.MaxUnroll)
		if err != nil {
			log.Fatal(err)
		}
		verdicts := map[bool]string{}
		for _, spec := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.Speculative = spec
			rep, err := sidechannel.Analyze(prog, opts)
			if err != nil {
				log.Fatal(err)
			}
			v := "constant-time"
			if rep.LeakDetected() {
				v = fmt.Sprintf("LEAK (%d sites)", len(rep.Leaks))
			}
			verdicts[spec] = v
		}
		fmt.Printf("%-12d %-18s %-18s\n", bufBytes, verdicts[false], verdicts[true])
	}

	fmt.Println()
	size, found, err := experiments.FindLeakThreshold(context.Background(), kernel, setup)
	if err != nil {
		log.Fatal(err)
	}
	if found {
		fmt.Printf("Smallest leaking buffer (speculative analysis only): %d bytes.\n", size)
	}
	fmt.Println("At that pressure the S-box plus the attacker's buffer fill the cache")
	fmt.Println("exactly; only the mis-speculated branch arm tips an S-box line out, and")
	fmt.Println("whether the secret's line is the evicted one is visible in the timing.")
}
