package specabsint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/machine"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run %s -update`): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("report drifted from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenFig2Report pins the abstract classifications of the paper's
// Fig. 2 program — the classic (unsound) analysis against the
// speculation-aware one — as a rendered report. Any refactor that shifts a
// verdict, the WCET bound, or the reported side channels shows up as a diff.
func TestGoldenFig2Report(t *testing.T) {
	var sb strings.Builder
	for _, spec := range []bool{false, true} {
		opts := []Option{WithSpeculation(spec), WithDepths(3, 3)}
		p, err := CompileOpts(bench.Fig2Program(-1), opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeContext(t.Context(), p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		mode := "classic (non-speculative)"
		if spec {
			mode = "speculative (bm=3 bh=3)"
		}
		fmt.Fprintf(&sb, "== %s ==\n", mode)
		fmt.Fprintf(&sb, "accesses=%d misses=%d specMisses=%d branches=%d\n",
			len(rep.Accesses), rep.Misses, rep.SpecMisses, rep.Branches)
		fmt.Fprintf(&sb, "wcet: hits=%d misses=%d unknown=%d cycles=%d specExtra=%d\n",
			rep.WCET.AlwaysHits, rep.WCET.AlwaysMisses, rep.WCET.Unknown,
			rep.WCET.WorstCaseCycles, rep.WCET.SpecExtraCycles)
		// Classifications aggregated per source line: the Fig. 2 preload
		// loop unrolls to 510 accesses that must all agree.
		type key struct {
			line  int
			sym   string
			store bool
			cls   Classification
			spec  Classification
			rch   bool
		}
		counts := map[key]int{}
		var order []key
		for _, a := range rep.Accesses {
			k := key{a.Line, a.Symbol, a.Store, a.Class, a.SpecClass, a.SpecReached}
			if counts[k] == 0 {
				order = append(order, k)
			}
			counts[k]++
		}
		for _, k := range order {
			kind := "load"
			if k.store {
				kind = "store"
			}
			specStr := "unreached"
			if k.rch {
				specStr = k.spec.String()
			}
			fmt.Fprintf(&sb, "line %2d %-5s %-3s x%-3d class=%-11s spec=%s\n",
				k.line, kind, k.sym, counts[k], k.cls, specStr)
		}
		fmt.Fprintf(&sb, "leaks: %s\n", strings.Join(leakStrings(rep.Leaks), "; "))
		fmt.Fprintf(&sb, "spectre gadgets: %s\n\n", strings.Join(leakStrings(rep.SpectreGadgets), "; "))
	}
	checkGolden(t, "fig2-report.txt", sb.String())
}

// leakStrings renders structured leaks back to their report lines.
func leakStrings(leaks []Leak) []string {
	out := make([]string, len(leaks))
	for i, l := range leaks {
		out[i] = l.String()
	}
	return out
}

// TestGoldenFig3Traces pins the concrete speculative traces of Fig. 3: the
// non-speculative trace (512 misses, ph[k] hits), the forced-mispredict
// trace (ph[k] evicted by the wrong-path arm), and the secret-dependent
// timing difference that constitutes the leak.
func TestGoldenFig3Traces(t *testing.T) {
	run := func(k int, forced bool) machine.Stats {
		prog, err := bench.Compile(bench.Fig2Program(k), 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		if forced {
			cfg.ForceMispredict = true
			cfg.DepthMiss, cfg.DepthHit = 3, 3
		} else {
			cfg.DepthMiss, cfg.DepthHit = 0, 0
		}
		stats, err := machine.RunProgram(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	var sb strings.Builder
	nonspec, spec := run(0, false), run(0, true)
	fmt.Fprintf(&sb, "non-speculative (k=0): %s rollbacks=%d\n", nonspec, nonspec.Rollbacks)
	fmt.Fprintf(&sb, "forced mispredict (k=0, bm=bh=3): %s rollbacks=%d\n", spec, spec.Rollbacks)
	const kFar = 64 * 300
	fmt.Fprintf(&sb, "secret-dependent timing, speculative: k=0 misses=%d cycles=%d, k=%d misses=%d cycles=%d\n",
		spec.Misses, spec.Cycles, kFar, run(kFar, true).Misses, run(kFar, true).Cycles)
	fmt.Fprintf(&sb, "secret-independent timing, classic: k=0 misses=%d cycles=%d, k=%d misses=%d cycles=%d\n",
		nonspec.Misses, nonspec.Cycles, kFar, run(kFar, false).Misses, run(kFar, false).Cycles)
	checkGolden(t, "fig3-traces.txt", sb.String())
}
