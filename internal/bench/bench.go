// Package bench holds the MiniC benchmark corpus used by the experiment
// harness. The paper evaluates on ten WCET kernels (Mälardalen, MiBench,
// MediaBench — Table 3) and ten cryptographic kernels (hpn-ssh,
// LibTomCrypt, OpenSSL, linux-tegra — Table 4). Those exact C sources
// cannot be vendored here, so each benchmark is rewritten in MiniC
// preserving the cache-relevant structure: table sizes and layouts, loop
// nests, and data-dependent branches (see DESIGN.md, "Substitutions").
package bench

import (
	"fmt"
	"strings"

	"specabsint/internal/ir"
	"specabsint/internal/lower"
	"specabsint/internal/source"
)

// Kind distinguishes the two benchmark sets.
type Kind int

// Benchmark sets.
const (
	WCET Kind = iota
	SideChannel
)

// Benchmark is one corpus entry.
type Benchmark struct {
	Name        string
	Origin      string // provenance of the modeled kernel (Table 3/4 "Source")
	Description string
	Kind        Kind
	Code        string // MiniC source; SideChannel kernels lack a main
}

// LoC counts non-blank source lines (reported in Tables 3/4).
func (b Benchmark) LoC() int {
	n := 0
	for _, ln := range strings.Split(b.Code, "\n") {
		if strings.TrimSpace(ln) != "" {
			n++
		}
	}
	return n
}

// Compile parses and lowers a benchmark (plus an optional client wrapper
// already merged into code) to IR.
func Compile(code string, maxUnroll int) (*ir.Program, error) {
	ast, err := source.Parse(code)
	if err != nil {
		return nil, err
	}
	opts := lower.DefaultOptions()
	if maxUnroll > 0 {
		opts.MaxUnroll = maxUnroll
	}
	return lower.Lower(ast, opts)
}

// WithClient wraps a side-channel kernel in the paper's Fig. 10 client: the
// kernel's primary table `sc_table` is preloaded, an attacker-controlled
// input buffer of bufBytes bytes is read (touching one word per cache
// line), a branchy dispatcher touches one of two fresh lines (the Fig. 2
// l1/l2 pattern — the mis-speculated arm is the extra eviction), and
// finally the kernel runs. The kernel must define `int sc_table[256]` and
// `int kernel(int x)`.
func WithClient(b Benchmark, bufBytes int) string {
	bufInts := bufBytes / 4
	if bufInts < 16 {
		bufInts = 16
	}
	return fmt.Sprintf(`%s
int client_inBuf[%d];
int client_l1[16];
int client_l2[16];
char client_mode;
int main() {
	reg int i; reg int tmp;
	tmp = 0;
	for (i = 0; i < 256; i += 16) { tmp = tmp + sc_table[i]; }
	for (i = 0; i < %d; i += 16) { tmp = tmp + client_inBuf[i]; }
	if (client_mode == 0) { tmp = tmp + client_l1[0]; }
	else { tmp = tmp - client_l2[0]; }
	tmp = tmp + kernel(client_inBuf[0]);
	return tmp;
}
`, b.Code, bufInts, bufInts)
}

// Fig2Program renders the paper's Fig. 2 motivating example. When kConst is
// negative the secret k is left symbolic (a `secret` register); otherwise it
// is fixed to the given concrete value so the concrete simulator can replay
// Fig. 3.
func Fig2Program(kConst int) string {
	kDecl := "secret reg int k;"
	if kConst >= 0 {
		kDecl = fmt.Sprintf("reg int k;\n\tk = %d;", kConst)
	}
	return fmt.Sprintf(`
char ph[64*510];
char l1[64];
char l2[64];
char p;
int main() {
	reg int i; reg int tmp;
	%s
	for (i = 0; i < 64*510; i += 64) { tmp = ph[i]; }
	if (p == 0) { tmp = l1[0]; }
	else { tmp = l2[0]; }
	tmp = ph[k];
	return tmp;
}`, kDecl)
}

// QuantlProgram is the paper's Fig. 8 running example (the quantl routine of
// the adpcm Mälardalen benchmark) with a symbolic input.
const QuantlProgram = `
int quant26bt_pos[31] = { 61,60,59,58,57,56,55,54,53,52,51,50,49,48,47,
	46,45,44,43,42,41,40,39,38,37,36,35,34,33,32,32 };
int quant26bt_neg[31] = { 63,62,31,30,29,28,27,26,25,24,23,22,21,20,19,
	18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,4 };
int decis_levl[30] = { 280,576,880,1200,1520,1864,2208,2584,2960,3376,
	3784,4240,4696,5200,5712,6288,6864,7520,8184,8968,9752,10712,11664,
	12896,14120,15840,17560,20456,23352,32767 };
int my_abs(int x) { if (x < 0) { return -x; } return x; }
int quantl(int el, int detl) {
	int ril; int mil;
	long wd; long decis;
	wd = my_abs(el);
	for (mil = 0; mil < 30; mil++) {
		decis = (decis_levl[mil] * (long)detl) >> 15;
		if (wd <= decis) break;
	}
	if (el >= 0) { ril = quant26bt_pos[mil]; }
	else { ril = quant26bt_neg[mil]; }
	return ril;
}
int main(int el, int detl) { return quantl(el, detl); }
`

// All returns the full corpus.
func All() []Benchmark {
	out := append([]Benchmark(nil), WCETBenchmarks()...)
	return append(out, CryptoBenchmarks()...)
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
