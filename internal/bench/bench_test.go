package bench

import (
	"testing"

	"specabsint/internal/core"
	"specabsint/internal/interp"
	"specabsint/internal/machine"
	"specabsint/internal/taint"
)

func TestCorpusComplete(t *testing.T) {
	if n := len(WCETBenchmarks()); n != 10 {
		t.Errorf("WCET set has %d entries, want 10 (Table 3)", n)
	}
	if n := len(CryptoBenchmarks()); n != 10 {
		t.Errorf("crypto set has %d entries, want 10 (Table 4)", n)
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Origin == "" || b.Description == "" {
			t.Errorf("%s: missing provenance metadata", b.Name)
		}
		if b.LoC() < 10 {
			t.Errorf("%s: suspiciously small (%d LoC)", b.Name, b.LoC())
		}
	}
	if _, ok := ByName("adpcm"); !ok {
		t.Error("ByName failed for adpcm")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent benchmark")
	}
}

func TestWCETBenchmarksCompileAndRun(t *testing.T) {
	for _, b := range WCETBenchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Compile(b.Code, 0)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("invalid IR: %v", err)
			}
			st, err := interp.NewMachine(prog).Run(5_000_000)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			_ = st.Ret
			if prog.MemAccessCount() == 0 {
				t.Error("kernel performs no memory accesses")
			}
		})
	}
}

func TestCryptoBenchmarksCompileAndRunWithClient(t *testing.T) {
	for _, b := range CryptoBenchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := WithClient(b, 1024)
			prog, err := Compile(src, 0)
			if err != nil {
				t.Fatalf("compile with client: %v", err)
			}
			if _, err := interp.NewMachine(prog).Run(5_000_000); err != nil {
				t.Fatalf("run: %v", err)
			}
			// The simulator must also execute it with speculation on.
			cfg := machine.DefaultConfig()
			cfg.ForceMispredict = true
			if _, err := machine.RunProgram(prog, cfg); err != nil {
				t.Fatalf("speculative run: %v", err)
			}
		})
	}
}

func TestCryptoKernelsDeclareContract(t *testing.T) {
	for _, b := range CryptoBenchmarks() {
		prog, err := Compile(WithClient(b, 64), 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if prog.SymbolByName("sc_table") == nil {
			t.Errorf("%s: missing sc_table", b.Name)
		}
		key := prog.SymbolByName("sc_key")
		if key == nil || !key.Secret {
			t.Errorf("%s: missing secret sc_key", b.Name)
		}
	}
}

// TestSecretIndexedSplit pins down which kernels perform secret-indexed
// lookups at all — the structural precondition for the Table 7 shape.
func TestSecretIndexedSplit(t *testing.T) {
	wantIndexed := map[string]bool{
		"hash": true, "encoder": true, "chacha20": true, "ocb": true,
		"des": true, "aes": true, "seed": true, "camellia": true,
		"str2key": false, "salsa": false,
	}
	for _, b := range CryptoBenchmarks() {
		prog, err := Compile(WithClient(b, 64), 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res := taint.Analyze(prog)
		got := len(res.SecretIndexed) > 0
		if got != wantIndexed[b.Name] {
			t.Errorf("%s: secret-indexed accesses = %v, want %v",
				b.Name, got, wantIndexed[b.Name])
		}
	}
}

func TestWCETBenchmarksAnalyzable(t *testing.T) {
	for _, b := range WCETBenchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Compile(b.Code, 0)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Analyze(prog, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if res.AccessCount() == 0 {
				t.Error("no accesses classified")
			}
			if res.Iterations == 0 {
				t.Error("no fixpoint iterations")
			}
		})
	}
}

func TestFig2ProgramVariants(t *testing.T) {
	sym, err := Compile(Fig2Program(-1), 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sym.Symbols {
		if s.Secret {
			found = true
		}
	}
	_ = found // symbolic variant keeps k in a secret register, not memory
	conc, err := Compile(Fig2Program(128), 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := interp.NewMachine(conc).Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ret != 0 {
		t.Errorf("ph is zero-initialized; got %d", st.Ret)
	}
}

func TestQuantlProgramMatchesPaperValues(t *testing.T) {
	prog, err := Compile(QuantlProgram, 0)
	if err != nil {
		t.Fatal(err)
	}
	// main has params (el, detl) = (0, 0) in the zero-filled interpreter:
	// wd=0 <= decis at mil=0, el >= 0 -> quant26bt_pos[0] = 61.
	st, err := interp.NewMachine(prog).Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ret != 61 {
		t.Errorf("quantl(0,0) = %d, want 61", st.Ret)
	}
}
