package bench

// WCETBenchmarks returns the execution-time estimation set (Table 3).
// Each program is a self-contained MiniC main modeled on the cache-relevant
// core of the original kernel.
func WCETBenchmarks() []Benchmark {
	return []Benchmark{
		{
			Name:        "adpcm",
			Origin:      "WCET@mdh",
			Description: "motor control (ADPCM codec: quantizer + predictor)",
			Kind:        WCET,
			Code:        adpcmCode,
		},
		{
			Name:        "susan",
			Origin:      "MiBench",
			Description: "image process algorithm (smoothing + corner response)",
			Kind:        WCET,
			Code:        susanCode,
		},
		{
			Name:        "layer3",
			Origin:      "MiBench",
			Description: "mp3 audio lib (windowed MDCT + scalefactor selection)",
			Kind:        WCET,
			Code:        layer3Code,
		},
		{
			Name:        "jcmarker",
			Origin:      "MiBench",
			Description: "jpeg compose algorithm (marker emission)",
			Kind:        WCET,
			Code:        jcmarkerCode,
		},
		{
			Name:        "jdmarker",
			Origin:      "MiBench",
			Description: "jpeg decompose algorithm (marker parsing)",
			Kind:        WCET,
			Code:        jdmarkerCode,
		},
		{
			Name:        "jcphuff",
			Origin:      "MiBench",
			Description: "jpeg Huffman entropy encoding routines",
			Kind:        WCET,
			Code:        jcphuffCode,
		},
		{
			Name:        "gtk",
			Origin:      "MiBench",
			Description: "GTK plotting routines (scanline rasterizer)",
			Kind:        WCET,
			Code:        gtkCode,
		},
		{
			Name:        "g72",
			Origin:      "mediaBench",
			Description: "routines for G.721 and G.723 conversions",
			Kind:        WCET,
			Code:        g72Code,
		},
		{
			Name:        "vga",
			Origin:      "mediaBench",
			Description: "driver for Borland Graphics Interface (line drawing)",
			Kind:        WCET,
			Code:        vgaCode,
		},
		{
			Name:        "stc",
			Origin:      "mediaBench",
			Description: "Epson Stylus-Color printer driver (dithering)",
			Kind:        WCET,
			Code:        stcCode,
		},
	}
}

const adpcmCode = `
/* ADPCM motor-control kernel: abs, quantl lookup, predictor update. */
int quant26bt_pos[31] = { 61,60,59,58,57,56,55,54,53,52,51,50,49,48,47,
	46,45,44,43,42,41,40,39,38,37,36,35,34,33,32,32 };
int quant26bt_neg[31] = { 63,62,31,30,29,28,27,26,25,24,23,22,21,20,19,
	18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,4 };
int decis_levl[30] = { 280,576,880,1200,1520,1864,2208,2584,2960,3376,
	3784,4240,4696,5200,5712,6288,6864,7520,8184,8968,9752,10712,11664,
	12896,14120,15840,17560,20456,23352,32767 };
int dlt[7];
int bpl[7];
int samples[16];
int my_abs(int x) { if (x < 0) { return -x; } return x; }
int quantl(int el, int detl) {
	int ril; int mil;
	long wd; long decis;
	wd = my_abs(el);
	for (mil = 0; mil < 30; mil++) {
		decis = (decis_levl[mil] * (long)detl) >> 15;
		if (wd <= decis) break;
	}
	if (el >= 0) { ril = quant26bt_pos[mil]; }
	else { ril = quant26bt_neg[mil]; }
	return ril;
}
int upzero(int d) {
	int wd2; int i;
	wd2 = 0;
	for (i = 0; i < 6; i++) {
		if (d == 0) { bpl[i] = (bpl[i] * 255) >> 8; }
		else {
			if ((d ^ dlt[i]) >= 0) { bpl[i] = ((bpl[i] * 255) >> 8) + 128; }
			else { bpl[i] = ((bpl[i] * 255) >> 8) - 128; }
		}
		wd2 = wd2 + bpl[i];
	}
	for (i = 5; i > 0; i--) { dlt[i] = dlt[i - 1]; }
	dlt[0] = d;
	return wd2;
}
int main(int el, int detl) {
	int acc; int s;
	acc = 0;
	for (int n = 0; n < 16; n++) {
		s = samples[n] + el;
		acc = acc + quantl(s, detl | 1);
		acc = acc + upzero(s - detl);
	}
	return acc;
}
`

const susanCode = `
/* SUSAN smoothing: brightness LUT plus a 2D mask pass with thresholds. */
int bp[516];
int img[144];
int out[144];
int setup_brightness_lut(int thresh) {
	int k; int temp;
	for (k = -256; k < 258; k++) {
		temp = ((k * k) / (thresh * thresh)) * 100;
		if (temp > 100) { temp = 100; }
		bp[k + 256] = 100 - temp;
	}
	return bp[256];
}
int main(int thresh, int limit) {
	int total; int center; int diff; int n;
	if (thresh < 1) { thresh = 1; }
	setup_brightness_lut(thresh + 6);
	total = 0;
	for (int y = 1; y < 11; y++) {
		for (int x = 1; x < 11; x++) {
			center = img[y * 12 + x];
			n = 100;
			diff = img[y * 12 + x - 1] - center;
			if (diff < 0) { diff = -diff; }
			n = n + bp[(diff + 256) & 511];
			diff = img[y * 12 + x + 1] - center;
			if (diff < 0) { diff = -diff; }
			n = n + bp[(diff + 256) & 511];
			diff = img[(y - 1) * 12 + x] - center;
			if (diff < 0) { diff = -diff; }
			n = n + bp[(diff + 256) & 511];
			diff = img[(y + 1) * 12 + x] - center;
			if (diff < 0) { diff = -diff; }
			n = n + bp[(diff + 256) & 511];
			if (n > limit) { out[y * 12 + x] = 255; }
			else { out[y * 12 + x] = (n * center) >> 8; }
			total = total + out[y * 12 + x];
		}
	}
	return total;
}
`

const layer3Code = `
/* MP3 layer-3: windowing + MDCT butterflies + scalefactor band search. */
int win[36] = { 2,5,9,14,20,27,35,44,54,65,77,90,104,119,135,152,170,189,
	189,170,152,135,119,104,90,77,65,54,44,35,27,20,14,9,5,2 };
int cos_t[18] = { 32767,32728,32610,32413,32138,31786,31357,30853,30274,
	29622,28899,28106,27246,26320,25330,24279,23170,22006 };
int sb_bounds[14] = { 4,8,12,16,20,24,30,36,44,52,62,74,90,110 };
int granule[36];
int spectrum[36];
int scf[14];
int mdct_block(int blocktype) {
	int i; int k; long sum;
	for (i = 0; i < 36; i++) {
		if (blocktype == 2) { granule[i] = (granule[i] * win[i]) >> 9; }
		else { granule[i] = (granule[i] * win[35 - i]) >> 9; }
	}
	for (i = 0; i < 18; i++) {
		sum = 0;
		for (k = 0; k < 18; k++) {
			sum = sum + (long)granule[(i + k) % 36] * cos_t[k];
		}
		spectrum[i] = (int)(sum >> 15);
		spectrum[35 - i] = -spectrum[i];
	}
	return spectrum[0];
}
int pick_scalefactors(int nlines) {
	int band; int i; int maxv; int v;
	band = 0;
	for (i = 0; i < 14; i++) { scf[i] = 0; }
	maxv = 0;
	for (i = 0; i < 36; i++) {
		if (band < 13 && i >= sb_bounds[band]) { band = band + 1; }
		v = spectrum[i];
		if (v < 0) { v = -v; }
		if (v > scf[band]) { scf[band] = v; }
		if (v > maxv) { maxv = v; }
		if (i >= nlines) break;
	}
	return maxv;
}
int main(int blocktype, int nlines) {
	int r;
	r = mdct_block(blocktype & 3);
	r = r + pick_scalefactors(nlines & 35);
	return r;
}
`

const jcmarkerCode = `
/* JPEG marker emission: quantization tables scaled then written out. */
int std_luminance[64] = { 16,11,10,16,24,40,51,61,12,12,14,19,26,58,60,55,
	14,13,16,24,40,57,69,56,14,17,22,29,51,87,80,62,18,22,37,56,68,109,103,
	77,24,35,55,64,81,104,113,92,49,64,78,87,103,121,120,101,72,92,95,98,
	112,100,103,99 };
int std_chrominance[64] = { 17,18,24,47,99,99,99,99,18,21,26,66,99,99,99,
	99,24,26,56,99,99,99,99,99,47,66,99,99,99,99,99,99,99,99,99,99,99,99,
	99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,99,
	99,99,99 };
int qtable[64];
int outbuf[256];
int outpos;
void emit_byte(int v) {
	outbuf[outpos & 255] = v & 255;
	outpos = outpos + 1;
}
void emit_dqt(int which, int quality) {
	int i; int t;
	emit_byte(255); emit_byte(219);
	for (i = 0; i < 64; i++) {
		if (which == 0) { t = (std_luminance[i] * quality + 50) / 100; }
		else { t = (std_chrominance[i] * quality + 50) / 100; }
		if (t < 1) { t = 1; }
		if (t > 255) { t = 255; }
		qtable[i] = t;
		emit_byte(t);
	}
}
int main(int quality) {
	int sum; int i;
	if (quality < 1) { quality = 1; }
	if (quality > 100) { quality = 100; }
	emit_dqt(0, quality);
	emit_dqt(1, quality);
	sum = 0;
	for (i = 0; i < 64; i++) { sum = sum + qtable[i]; }
	return sum + outpos;
}
`

const jdmarkerCode = `
/* JPEG marker parsing: scan a buffer, dispatch on marker codes. */
int stream[256];
int qt[64];
int ht_counts[16];
int restart_interval;
int width; int height;
int read_word(int pos) {
	return ((stream[pos & 255] & 255) << 8) | (stream[(pos + 1) & 255] & 255);
}
int parse(int len) {
	int pos; int marker; int seg; int i; int seen;
	pos = 0; seen = 0;
	while (pos < len) {
		if ((stream[pos & 255] & 255) != 255) { pos = pos + 1; continue; }
		marker = stream[(pos + 1) & 255] & 255;
		pos = pos + 2;
		if (marker == 216) { seen = seen + 1; continue; }
		seg = read_word(pos);
		if (marker == 219) {
			for (i = 0; i < 64; i++) { qt[i] = stream[(pos + 2 + i) & 255] & 255; }
			seen = seen + 2;
		} else if (marker == 196) {
			for (i = 0; i < 16; i++) { ht_counts[i] = stream[(pos + 2 + i) & 255] & 255; }
			seen = seen + 4;
		} else if (marker == 221) {
			restart_interval = read_word(pos + 2);
			seen = seen + 8;
		} else if (marker == 192) {
			height = read_word(pos + 3);
			width = read_word(pos + 5);
			seen = seen + 16;
		}
		pos = pos + seg;
		if (seg == 0) { pos = pos + 1; }
	}
	return seen;
}
int main(int len) {
	if (len < 0) { len = 0; }
	if (len > 255) { len = 255; }
	return parse(len) + width + height + restart_interval;
}
`

const jcphuffCode = `
/* Progressive JPEG Huffman encoding: bit counting + code emission. */
int bits[19];
int freq[64];
int codesize[64];
int nbits_table[256] = { 0,1,2,2,3,3,3,3,4,4,4,4,4,4,4,4,
	5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,5,6,6,6,6,6,6,6,6,6,6,6,6,6,6,6,6,
	6,6,6,6,6,6,6,6,6,6,6,6,6,6,6,6,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,
	7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,
	7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,
	8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,
	8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,
	8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,
	8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8 };
int count_bits(int v) {
	if (v < 0) { v = -v; }
	if (v > 255) { return 8 + nbits_table[(v >> 8) & 255]; }
	return nbits_table[v & 255];
}
int main(int n) {
	int i; int total; int size;
	total = 0;
	for (i = 0; i < 19; i++) { bits[i] = 0; }
	for (i = 0; i < 64; i++) {
		size = count_bits(freq[i] + n);
		codesize[i] = size;
		if (size > 18) { size = 18; }
		bits[size] = bits[size] + 1;
		total = total + size;
	}
	for (i = 18; i > 0; i--) {
		while (bits[i] > 8) {
			bits[i] = bits[i] - 2;
			bits[i - 1] = bits[i - 1] + 1;
			total = total - 1;
		}
	}
	return total;
}
`

const gtkCode = `
/* Plot rasterizer: color LUT, clipping branches, scanline writes. */
int palette[256];
int canvas[1024];
int clip_x0; int clip_x1; int clip_y0; int clip_y1;
int plot_point(int x, int y, int c) {
	if (x < clip_x0) { return 0; }
	if (x > clip_x1) { return 0; }
	if (y < clip_y0) { return 0; }
	if (y > clip_y1) { return 0; }
	canvas[((y & 31) * 32 + (x & 31)) & 1023] = palette[c & 255];
	return 1;
}
int draw_series(int n, int scale) {
	int i; int x; int y; int plotted;
	plotted = 0;
	for (i = 0; i < 64; i++) {
		x = i >> 1;
		y = ((i * scale) >> 4) & 63;
		if (i >= n) break;
		plotted = plotted + plot_point(x, y, i * 3);
		if (y > 16) { plotted = plotted + plot_point(x, y - 16, i * 3 + 1); }
	}
	return plotted;
}
int main(int n, int scale) {
	int i;
	clip_x0 = 0; clip_x1 = 31; clip_y0 = 0; clip_y1 = 31;
	for (i = 0; i < 256; i += 1) { palette[i] = i * 7 + 3; }
	return draw_series(n & 63, scale | 1);
}
`

const g72Code = `
/* G.721/G.723: quan table search plus predictor coefficient update. */
int qtab_721[7] = { -124, 80, 178, 246, 300, 349, 400 };
int wtab[8] = { -12, 18, 41, 64, 112, 198, 355, 1122 };
int ftab[8] = { 0, 0, 0, 1, 1, 1, 3, 7 };
int a_coef[2];
int b_coef[6];
int dq_hist[6];
int quan(int val) {
	int i;
	for (i = 0; i < 7; i++) {
		if (val < qtab_721[i]) break;
	}
	return i;
}
int update(int dq, int y) {
	int i; int code; int w;
	code = quan(dq - y);
	w = wtab[code & 7];
	for (i = 0; i < 6; i++) {
		if ((dq_hist[i] ^ dq) >= 0) { b_coef[i] = b_coef[i] + (w >> 3); }
		else { b_coef[i] = b_coef[i] - (w >> 3); }
	}
	for (i = 5; i > 0; i--) { dq_hist[i] = dq_hist[i - 1]; }
	dq_hist[0] = dq;
	a_coef[0] = a_coef[0] + ftab[code & 7];
	a_coef[1] = a_coef[1] - (a_coef[0] >> 4);
	return code;
}
int main(int dq, int y) {
	int acc; int n;
	acc = 0;
	for (n = 0; n < 16; n++) { acc = acc + update(dq + n * 17, y); }
	return acc;
}
`

const vgaCode = `
/* BGI-style driver: Bresenham line into a banked framebuffer. */
int fb[2048];
int cur_color;
int bank_switches;
int put_pixel(int x, int y) {
	int addr;
	addr = y * 64 + x;
	if (addr >= 1024) { bank_switches = bank_switches + 1; }
	fb[addr & 2047] = cur_color;
	return addr;
}
int line(int x0, int y0, int x1, int y1) {
	int dx; int dy; int sx; int sy; int err; int e2; int steps;
	dx = x1 - x0; if (dx < 0) { dx = -dx; }
	dy = y1 - y0; if (dy < 0) { dy = -dy; }
	if (x0 < x1) { sx = 1; } else { sx = -1; }
	if (y0 < y1) { sy = 1; } else { sy = -1; }
	err = dx - dy;
	steps = 0;
	while (steps < 96) {
		put_pixel(x0 & 63, y0 & 31);
		if (x0 == x1 && y0 == y1) break;
		e2 = 2 * err;
		if (e2 > -dy) { err = err - dy; x0 = x0 + sx; }
		if (e2 < dx) { err = err + dx; y0 = y0 + sy; }
		steps = steps + 1;
	}
	return steps;
}
int main(int x1, int y1) {
	cur_color = 7;
	return line(0, 0, x1 & 63, y1 & 31) + bank_switches;
}
`

const stcCode = `
/* Stylus-Color driver: error-diffusion dithering over one scanline. */
int err_row[66];
int line_in[64];
int line_out[64];
int density_tab[64] = { 0,4,8,12,16,20,24,28,32,36,40,44,48,52,56,60,
	64,68,72,76,80,84,88,92,96,100,104,108,112,116,120,124,128,132,136,
	140,144,148,152,156,160,164,168,172,176,180,184,188,192,196,200,204,
	208,212,216,220,224,228,232,236,240,244,248,252 };
int dither_line(int threshold) {
	int x; int v; int e; int dots;
	dots = 0;
	for (x = 0; x < 64; x++) {
		v = density_tab[line_in[x] & 63] + err_row[x + 1];
		if (v > threshold) {
			line_out[x] = 1;
			e = v - 255;
			dots = dots + 1;
		} else {
			line_out[x] = 0;
			e = v;
		}
		err_row[x] = err_row[x] + ((e * 3) >> 4);
		err_row[x + 1] = (e * 5) >> 4;
		err_row[x + 2] = err_row[x + 2] + ((e * 7) >> 4);
	}
	return dots;
}
int main(int threshold, int seed) {
	int i; int total;
	for (i = 0; i < 64; i++) { line_in[i] = (seed + i * 37) & 63; }
	total = 0;
	for (i = 0; i < 4; i++) { total = total + dither_line((threshold + i) & 255); }
	return total;
}
`
