package bench

// CryptoBenchmarks returns the side-channel detection set (Table 4). Every
// kernel declares `int sc_table[256]` (its primary lookup table, preloaded
// by the Fig. 10 client) and `int kernel(int x)`.
//
// The corpus preserves the paper's Table 7 shape: hash, encoder, chacha20,
// ocb and des perform secret-indexed lookups into a table that client-
// controlled pressure can partially evict (leaky under speculation only);
// aes, seed and camellia touch their whole table immediately before the
// secret-indexed rounds (key schedule / runtime S-box generation), so the
// lookups stay must-hits; str2key and salsa are arithmetic-only.
func CryptoBenchmarks() []Benchmark {
	return []Benchmark{
		{Name: "hash", Origin: "hpn-ssh", Description: "hash function", Kind: SideChannel, Code: hashCode},
		{Name: "encoder", Origin: "LibTomCrypt", Description: "hex encode a string", Kind: SideChannel, Code: encoderCode},
		{Name: "chacha20", Origin: "LibTomCrypt", Description: "chacha20poly1305 cipher", Kind: SideChannel, Code: chacha20Code},
		{Name: "ocb", Origin: "LibTomCrypt", Description: "OCB mode implementation", Kind: SideChannel, Code: ocbCode},
		{Name: "aes", Origin: "LibTomCrypt", Description: "AES implementation", Kind: SideChannel, Code: aesCode},
		{Name: "str2key", Origin: "openssl", Description: "key prepare for des", Kind: SideChannel, Code: str2keyCode},
		{Name: "des", Origin: "openssl", Description: "des cipher", Kind: SideChannel, Code: desCode},
		{Name: "seed", Origin: "linux-tegra", Description: "seed cipher", Kind: SideChannel, Code: seedCode},
		{Name: "camellia", Origin: "linux-tegra", Description: "camellia cipher", Kind: SideChannel, Code: camelliaCode},
		{Name: "salsa", Origin: "linux-tegra", Description: "Salsa20 stream cipher", Kind: SideChannel, Code: salsaCode},
	}
}

const hashCode = `
/* hpn-ssh style hash: djb2 over a message, secret-keyed finalization
 * indexed into the mixing table. */
int sc_table[256];
secret int sc_key;
int msg[16];
int kernel(int x) {
	reg int h; reg int i;
	h = 5381;
	for (i = 0; i < 16; i++) {
		h = ((h << 5) + h) ^ msg[i];
	}
	h = h ^ x;
	if (h < 0) { h = -h; }
	return sc_table[(h + sc_key) & 255];
}
`

const encoderCode = `
/* LibTomCrypt hex encoder: each secret nibble selects a digit from the
 * encoding table. */
int sc_table[256];
secret int sc_key;
int out[8];
int kernel(int x) {
	reg int i; reg int nib; reg int acc;
	acc = 0;
	for (i = 0; i < 8; i++) {
		nib = (sc_key >> (i * 4)) & 15;
		acc = acc * 16 + nib;
	}
	out[0] = sc_table[(acc + (x & 15)) & 255];
	return out[0];
}
`

const chacha20Code = `
/* LibTomCrypt chacha20poly1305: ARX quarter-rounds on the state, then a
 * table-driven poly1305-style MAC finalization indexed by the secret
 * accumulator (the table models the radix-26 carry lookup). */
int sc_table[256];
secret int sc_key;
int state[16];
int rotl(reg int v, reg int n) {
	return ((v << n) | ((v >> (32 - n)) & ((1 << n) - 1)));
}
void qround(reg int a, reg int b, reg int c, reg int d) {
	state[a] = state[a] + state[b]; state[d] = rotl(state[d] ^ state[a], 16);
	state[c] = state[c] + state[d]; state[b] = rotl(state[b] ^ state[c], 12);
	state[a] = state[a] + state[b]; state[d] = rotl(state[d] ^ state[a], 8);
	state[c] = state[c] + state[d]; state[b] = rotl(state[b] ^ state[c], 7);
}
int kernel(int x) {
	reg int i; reg int acc;
	state[0] = 1634760805; state[1] = 857760878;
	state[2] = 2036477234; state[3] = 1797285236;
	state[4] = sc_key; state[5] = sc_key >> 8;
	state[12] = x;
	for (i = 0; i < 10; i++) {
		qround(0, 4, 8, 12);
		qround(1, 5, 9, 13);
		qround(2, 6, 10, 14);
		qround(3, 7, 11, 15);
	}
	acc = state[0] + sc_key;
	if (acc < 0) { acc = -acc; }
	return sc_table[acc & 255];
}
`

const ocbCode = `
/* LibTomCrypt OCB: ntz-driven offset schedule, checksum xor, and a
 * secret-indexed lookup into the L table region. */
int sc_table[256];
secret int sc_key;
int L[8];
int blocks[8];
int ntz(reg int n) {
	reg int z;
	z = 0;
	if (n == 0) { return 8; }
	while ((n & 1) == 0) {
		z = z + 1;
		n = n >> 1;
		if (z >= 8) break;
	}
	return z;
}
int kernel(int x) {
	reg int i; reg int checksum; reg int offset;
	checksum = 0;
	offset = x;
	for (i = 1; i <= 8; i++) {
		offset = offset ^ L[ntz(i) & 7];
		checksum = checksum ^ blocks[i - 1] ^ offset;
	}
	checksum = checksum ^ sc_key;
	if (checksum < 0) { checksum = -checksum; }
	return sc_table[checksum & 255];
}
`

const aesCode = `
/* LibTomCrypt AES: the key schedule touches the entire S-box right before
 * the rounds, so the secret-indexed round lookups are guaranteed hits —
 * the paper's analysis also finds no leak here (Table 7). */
int sc_table[256];
secret int sc_key;
int rk[44];
int stt[4];
int kernel(int x) {
	reg int i; reg int t; reg int r;
	/* Key schedule: subword every byte of the key material; this sweeps
	 * all 256 S-box entries, and like real AES it is branch-free. */
	t = sc_key;
	for (i = 0; i < 256; i++) {
		t = t + sc_table[i];
		rk[(i >> 3) & 43] = t;
	}
	stt[0] = x ^ rk[0]; stt[1] = x ^ rk[1];
	stt[2] = x ^ rk[2]; stt[3] = x ^ rk[3];
	for (r = 1; r <= 10; r++) {
		for (i = 0; i < 4; i++) {
			t = (stt[i] ^ sc_key) & 255;
			stt[i] = sc_table[t] ^ rk[(4 * r + i) & 43];
		}
	}
	return stt[0] ^ stt[1] ^ stt[2] ^ stt[3];
}
`

const str2keyCode = `
/* OpenSSL DES_string_to_key: parity fixing and bit folding, arithmetic
 * only — no secret-indexed memory access exists. */
int sc_table[256];
secret int sc_key;
int keysched[16];
int parity_fix(int b) {
	int p; int i; int v;
	p = 0;
	v = b;
	for (i = 0; i < 7; i++) {
		p = p ^ (v & 1);
		v = v >> 1;
	}
	return (b & 254) | (p ^ 1);
}
int kernel(int x) {
	reg int i; reg int k; reg int acc;
	acc = 0;
	k = sc_key ^ x;
	for (i = 0; i < 16; i++) {
		k = ((k << 1) | ((k >> 27) & 1)) ^ (i * 2654435761);
		keysched[i] = parity_fix(k & 255);
		acc = acc + keysched[i];
	}
	return acc;
}
`

const desCode = `
/* OpenSSL DES: Feistel rounds with secret-indexed S-box folds. The kernel
 * carries its own working buffer (the user-controlled buffer the paper
 * notes makes des leak even with a zero-size client buffer). */
int sc_table[256];
secret int sc_key;
int des_work[7856];
int kernel(int x) {
	reg int i; reg int l; reg int r; reg int t;
	for (i = 0; i < 7856; i += 16) { t = des_work[i]; }
	l = x;
	r = x ^ sc_key;
	for (i = 0; i < 16; i++) {
		t = l ^ ((r << 1) + sc_key + i);
		l = r;
		r = t;
	}
	return sc_table[((l ^ r) >> 4) & 255];
}
`

const seedCode = `
/* linux-tegra SEED: the SS-boxes are generated at runtime (every line of
 * the table is written) immediately before the rounds, so the G-function
 * lookups are guaranteed hits. */
int sc_table[256];
secret int sc_key;
int ss0[256];
int kernel(int x) {
	reg int i; reg int a; reg int b; reg int t;
	for (i = 0; i < 256; i++) {
		ss0[i] = (i * 257 + 19) ^ (i << 3);
	}
	a = x; b = sc_key;
	for (i = 0; i < 16; i++) {
		t = a ^ ss0[(b + i) & 255];
		a = b;
		b = t;
	}
	return a ^ b;
}
`

const camelliaCode = `
/* linux-tegra Camellia: runtime SP-table derivation touches all lines
 * before the F-function rounds, keeping the secret lookups hits. */
int sc_table[256];
secret int sc_key;
int sp[256];
int kernel(int x) {
	reg int i; reg int d1; reg int d2; reg int t;
	for (i = 0; i < 256; i++) {
		sp[i] = (i ^ 99) * 131 + (i << 4);
	}
	d1 = x; d2 = sc_key;
	for (i = 0; i < 18; i++) {
		t = sp[(d1 ^ d2 ^ i) & 255];
		d1 = d2 ^ (t << 1);
		d2 = t;
	}
	return d1 ^ d2;
}
`

const salsaCode = `
/* linux-tegra Salsa20: pure ARX — addition, rotation, xor. There is no
 * table to index, so there is nothing for the cache to leak. */
int sc_table[256];
secret int sc_key;
int sx[16];
int rotl7(reg int v) { return (v << 7) | ((v >> 25) & 127); }
int rotl9(reg int v) { return (v << 9) | ((v >> 23) & 511); }
int rotl13(reg int v) { return (v << 13) | ((v >> 19) & 8191); }
int rotl18(reg int v) { return (v << 18) | ((v >> 14) & 262143); }
void column_round() {
	sx[4] = sx[4] ^ rotl7(sx[0] + sx[12]);
	sx[8] = sx[8] ^ rotl9(sx[4] + sx[0]);
	sx[12] = sx[12] ^ rotl13(sx[8] + sx[4]);
	sx[0] = sx[0] ^ rotl18(sx[12] + sx[8]);
	sx[9] = sx[9] ^ rotl7(sx[5] + sx[1]);
	sx[13] = sx[13] ^ rotl9(sx[9] + sx[5]);
	sx[1] = sx[1] ^ rotl13(sx[13] + sx[9]);
	sx[5] = sx[5] ^ rotl18(sx[1] + sx[13]);
}
int kernel(int x) {
	reg int i;
	sx[0] = 1634760805;
	sx[1] = sc_key;
	sx[5] = sc_key >> 8;
	sx[12] = x;
	for (i = 0; i < 10; i++) {
		column_round();
	}
	if (sx[0] < 0) { return -(sx[0] + sx[1]); }
	return sx[0] + sx[1];
}
`
