package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilCollectorNoOps pins the nil fast path: every method on a nil
// *Collector is a safe no-op.
func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	c.StartPhase("x")()
	ran := false
	c.Phase("y", func() { ran = true })
	if !ran {
		t.Fatal("Phase on nil collector must still run fn")
	}
	c.SetProgram(ProgramStats{Blocks: 1})
	c.AddPass("sccp", 3)
	c.AddFixpoint(FixpointStats{Iterations: 7})
	c.SetPartition(PartitionStats{Engines: 2})
	if got := c.Snapshot(); got != nil {
		t.Fatalf("nil collector snapshot = %+v, want nil", got)
	}
}

// TestNilCollectorAllocFree is half of the overhead contract: the nil
// fast path must not allocate, so un-instrumented analyses pay nothing.
func TestNilCollectorAllocFree(t *testing.T) {
	var c *Collector
	fs := FixpointStats{Iterations: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		c.StartPhase("p")()
		c.AddFixpoint(fs)
		c.AddPass("sccp", 1)
		c.SetProgram(ProgramStats{})
		c.SetPartition(PartitionStats{})
	})
	if allocs != 0 {
		t.Fatalf("nil-collector hot path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCollectorAccumulates checks the merge semantics: fixpoint counters
// sum, program/partition are last-write-wins, passes and phases append.
func TestCollectorAccumulates(t *testing.T) {
	c := NewCollector()
	c.SetProgram(ProgramStats{Blocks: 9, CondBranches: 4, ResolvedBranches: 1})
	c.AddPass("sccp", 5)
	c.AddPass("resolve", 1)
	c.AddFixpoint(FixpointStats{Iterations: 10, Joins: 3})
	c.AddFixpoint(FixpointStats{Iterations: 5, LanesSpawned: 2})
	c.SetPartition(PartitionStats{Engines: 3, Groups: 3, DepthGroup: -1})
	c.Phase("fixpoint", func() {})

	s := c.Snapshot()
	if s.Program.Blocks != 9 || s.Program.Lanes() != 6 {
		t.Fatalf("program stats wrong: %+v (lanes %d)", s.Program, s.Program.Lanes())
	}
	if len(s.Passes) != 2 || s.Passes[0].Name != "sccp" || s.Passes[1].Changed != 1 {
		t.Fatalf("pass stats wrong: %+v", s.Passes)
	}
	if s.Fixpoint.Iterations != 15 || s.Fixpoint.Joins != 3 || s.Fixpoint.LanesSpawned != 2 {
		t.Fatalf("fixpoint counters wrong: %+v", s.Fixpoint)
	}
	if s.Partition.Engines != 3 {
		t.Fatalf("partition stats wrong: %+v", s.Partition)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "fixpoint" {
		t.Fatalf("phases wrong: %+v", s.Phases)
	}

	// Snapshot is a deep copy: mutating it must not reach the collector.
	s.Passes[0].Changed = 999
	if c.Snapshot().Passes[0].Changed == 999 {
		t.Fatal("snapshot shares slice backing with collector")
	}
}

// TestCollectorConcurrentFlush drives concurrent engine flushes (the
// partitioned fan-out) under -race and checks the sum is exact.
func TestCollectorConcurrentFlush(t *testing.T) {
	c := NewCollector()
	const goroutines, perG = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.AddFixpoint(FixpointStats{Iterations: 1, Transfers: 2})
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Fixpoint.Iterations != goroutines*perG || s.Fixpoint.Transfers != 2*goroutines*perG {
		t.Fatalf("lost updates: %+v", s.Fixpoint)
	}
}

// TestZeroTimes checks that only wall-clock fields are cleared.
func TestZeroTimes(t *testing.T) {
	s := &Stats{
		Fixpoint: FixpointStats{Iterations: 42},
		Phases:   []PhaseStat{{Name: "parse", Nanos: 123}, {Name: "fixpoint", Nanos: 456}},
	}
	s.ZeroTimes()
	if s.Fixpoint.Iterations != 42 {
		t.Fatal("ZeroTimes touched a semantic counter")
	}
	for _, p := range s.Phases {
		if p.Nanos != 0 {
			t.Fatalf("phase %s not zeroed", p.Name)
		}
	}
	if len(s.Phases) != 2 || s.Phases[0].Name != "parse" {
		t.Fatal("ZeroTimes must keep phase names and order")
	}
	var nilStats *Stats
	if nilStats.ZeroTimes() != nil || nilStats.Clone() != nil {
		t.Fatal("nil Stats helpers must return nil")
	}
}

// TestWriteText smoke-checks the human rendering mentions the §6.2 and §6.4
// counters by their glossary names.
func TestWriteText(t *testing.T) {
	s := &Stats{
		Program:   ProgramStats{Blocks: 3, CondBranches: 2},
		Fixpoint:  FixpointStats{Iterations: 10, DepthHitBounds: 4},
		Partition: PartitionStats{Engines: 1},
	}
	var sb strings.Builder
	s.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"iterations", "lanes", "b_h", "dense single fixpoint"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, out)
		}
	}
}
