package obs

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
)

// The stats contract is pinned twice: golden tests fix the exact bytes for
// known programs, and stats.schema.json fixes the shape for arbitrary ones.
// The schema is plain draft-07 JSON Schema so external tooling can consume
// it; this file carries the minimal in-tree validator for the keyword subset
// the schema uses (type, properties, required, additionalProperties, items,
// minimum), keeping the check dependency-free for the CI smoke step.

//go:embed stats.schema.json
var statsSchemaJSON []byte

// StatsSchemaJSON returns the embedded schema document (for tooling that
// wants to re-export it).
func StatsSchemaJSON() []byte { return append([]byte(nil), statsSchemaJSON...) }

// schemaNode is the supported JSON-Schema keyword subset.
type schemaNode struct {
	Type                 string                 `json:"type"`
	Properties           map[string]*schemaNode `json:"properties"`
	Required             []string               `json:"required"`
	AdditionalProperties *bool                  `json:"additionalProperties"`
	Items                *schemaNode            `json:"items"`
	Minimum              *float64               `json:"minimum"`
}

var statsSchema = sync.OnceValues(func() (*schemaNode, error) {
	var s schemaNode
	if err := json.Unmarshal(statsSchemaJSON, &s); err != nil {
		return nil, fmt.Errorf("obs: embedded stats schema is invalid JSON: %w", err)
	}
	return &s, nil
})

// ValidateStats checks a serialized Stats document against the embedded
// schema and returns the first violation found (with its JSON path), or nil.
func ValidateStats(doc []byte) error {
	s, err := statsSchema()
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		return fmt.Errorf("obs: stats document is invalid JSON: %w", err)
	}
	return validate(s, v, "$")
}

func validate(s *schemaNode, v any, path string) error {
	switch s.Type {
	case "object":
		obj, ok := v.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: want object, got %T", path, v)
		}
		for _, req := range s.Required {
			if _, ok := obj[req]; !ok {
				return fmt.Errorf("%s: missing required property %q", path, req)
			}
		}
		// Sorted key order makes the first-violation error deterministic.
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sub, known := s.Properties[k]
			if !known {
				if s.AdditionalProperties != nil && !*s.AdditionalProperties {
					return fmt.Errorf("%s: unknown property %q", path, k)
				}
				continue
			}
			if err := validate(sub, obj[k], path+"."+k); err != nil {
				return err
			}
		}
		return nil
	case "array":
		arr, ok := v.([]any)
		if !ok {
			return fmt.Errorf("%s: want array, got %T", path, v)
		}
		if s.Items != nil {
			for i, el := range arr {
				if err := validate(s.Items, el, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
		return nil
	case "integer", "number":
		n, ok := v.(float64) // encoding/json decodes every number as float64
		if !ok {
			return fmt.Errorf("%s: want %s, got %T", path, s.Type, v)
		}
		if s.Type == "integer" && n != math.Trunc(n) {
			return fmt.Errorf("%s: want integer, got %v", path, n)
		}
		if s.Minimum != nil && n < *s.Minimum {
			return fmt.Errorf("%s: %v below minimum %v", path, n, *s.Minimum)
		}
		return nil
	case "string":
		if _, ok := v.(string); !ok {
			return fmt.Errorf("%s: want string, got %T", path, v)
		}
		return nil
	case "boolean":
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("%s: want boolean, got %T", path, v)
		}
		return nil
	case "":
		return nil // untyped: anything goes
	default:
		return fmt.Errorf("%s: schema uses unsupported type %q", path, s.Type)
	}
}
