package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Stats is the full observability snapshot of one compile + analyze run: the
// instrument panel behind Report.Stats, `specanalyze -stats`, and the CI
// stats-smoke diff. Its serialized form is a public contract, pinned by
// golden tests and by internal/obs/stats.schema.json.
//
// The counters split into two classes with different guarantees:
//
//   - Semantic counters (Program, Passes, Fixpoint, Partition) describe what
//     the analysis *computed* — how many fixpoint iterations ran, how many
//     lanes were spawned, how often §6.2 pruned the speculation window. They
//     are a pure function of (program, options): byte-identical across
//     repeated runs, across SetParallelism worker counts, and across the
//     goroutine schedules of the partitioned engine.
//   - Wall-clock fields (Phases, and nothing else) measure where time went.
//     They vary run to run; ZeroTimes clears them for diffable output.
type Stats struct {
	// Program describes the analyzed IR after lowering and passes.
	Program ProgramStats `json:"program"`
	// Passes records the pre-analysis pipeline's per-pass effect.
	Passes []PassStat `json:"passes,omitempty"`
	// Fixpoint carries the engine's semantic effort counters.
	Fixpoint FixpointStats `json:"fixpoint"`
	// Partition describes the per-cache-set decomposition that ran.
	Partition PartitionStats `json:"partition"`
	// Bytecode describes the compiled execution form's shape (all zero when
	// the interpreted engine ran). Structural, hence deterministic.
	Bytecode BytecodeStats `json:"bytecode"`
	// Phases is the wall-clock breakdown, in execution order. The only
	// nondeterministic section of the report.
	Phases []PhaseStat `json:"phases,omitempty"`
}

// ProgramStats is the shape of the analyzed program.
type ProgramStats struct {
	// Blocks and Instrs count basic blocks and instructions after lowering.
	Blocks int `json:"blocks"`
	Instrs int `json:"instrs"`
	// Symbols counts memory-resident variables.
	Symbols int `json:"symbols"`
	// MemAccesses counts static Load/Store instructions.
	MemAccesses int `json:"mem_accesses"`
	// CondBranches counts conditional branches; ResolvedBranches the subset
	// statically decided by the pass pipeline (they spawn no lanes).
	CondBranches     int `json:"cond_branches"`
	ResolvedBranches int `json:"resolved_branches"`
}

// Lanes returns the number of speculative flows the engine must consider:
// two per unresolved conditional branch (§6.4, one color per predicted
// direction).
func (p ProgramStats) Lanes() int { return 2 * (p.CondBranches - p.ResolvedBranches) }

// PassStat records one pre-analysis pass's effect.
type PassStat struct {
	Name string `json:"name"`
	// Changed counts rewritten operands (sccp, copyprop), branches marked
	// resolved (resolve), or instructions nopped (dce).
	Changed int `json:"changed"`
}

// FixpointStats are the engine's semantic effort counters — the paper's
// evaluation columns (§7 Tables 2-4) as first-class data. Every field is
// deterministic: identical across repeated runs and worker counts. In the
// partitioned analysis the counters are sums over the per-set-group engines,
// so they differ from the dense engine's (SetParallelism 0) — the engines
// solve different flow systems — but are identical at every SetParallelism
// >= 1. The struct is flat and comparable with ==.
type FixpointStats struct {
	// Iterations counts worklist block processings (the paper's #Iteration).
	Iterations int64 `json:"iterations"`
	// Joins counts state joins attempted into normal-flow block entries;
	// JoinChanges the subset that changed the target state.
	Joins       int64 `json:"joins"`
	JoinChanges int64 `json:"join_changes"`
	// SpecJoins counts joins into post-rollback (SS) flows, LaneJoins joins
	// into wrong-path lane states.
	SpecJoins int64 `json:"spec_joins"`
	LaneJoins int64 `json:"lane_joins"`
	// Transfers counts cache-domain transfer applications on architectural
	// flows; SpecTransfers the same on wrong-path lanes.
	Transfers     int64 `json:"transfers"`
	SpecTransfers int64 `json:"spec_transfers"`
	// Widenings counts §6.3 widening applications across all flow kinds.
	Widenings int64 `json:"widenings"`
	// Colors counts the speculative flows the engine built: two per
	// unresolved, effectively-reachable conditional branch (§6.4). It is
	// structural — identical in every per-set-group engine — so Add treats
	// it as set-once rather than summed.
	Colors int64 `json:"colors"`
	// LanesSpawned counts lane injections at mispredicted branches (a color
	// seeded with a fresh speculation budget); LanesExpired counts lane
	// walks that exhausted their budget inside a block.
	LanesSpawned int64 `json:"lanes_spawned"`
	LanesExpired int64 `json:"lanes_expired"`
	// LanesSkippedCertain counts lane spawns the uncertainty focusing
	// suppressed because the speculation budget provably cannot reach any
	// wrong-path memory access (the skip is invisible to classifications).
	LanesSkippedCertain int64 `json:"lanes_skipped_certain"`
	// FencesHit counts lane walks terminated by reaching a fence instruction
	// (the speculation barrier the mitigation synthesizer inserts): the lane's
	// budget is zeroed at the fence and nothing past it transfers.
	FencesHit int64 `json:"fences_hit"`
	// WTOComponents counts the components of the Bourdoncle weak
	// topological ordering of the effective CFG — structural, identical in
	// every per-set-group engine (set-once in Add, like Colors), and 0
	// under the worklist scheduler, which never computes the ordering.
	WTOComponents int64 `json:"wto_components"`
	// Rollbacks counts rollback states injected into the architectural flow
	// (every memory access inside a speculation window accumulates one).
	Rollbacks int64 `json:"rollbacks"`
	// DepthHitBounds counts §6.2 decisions that proved the branch condition
	// a must-hit and used the small window b_h (the depth-oracle prunes);
	// DepthMissBounds counts decisions falling back to b_m.
	DepthHitBounds  int64 `json:"depth_hit_bounds"`
	DepthMissBounds int64 `json:"depth_miss_bounds"`
	// StatesPooled counts scratch states served from the engine free list
	// instead of the heap.
	StatesPooled int64 `json:"states_pooled"`
}

// Add accumulates o into s (used to sum per-set-group engines; integer sums
// are schedule-independent, which is what keeps the partitioned counters
// deterministic at any worker count).
func (s *FixpointStats) Add(o FixpointStats) {
	s.Iterations += o.Iterations
	s.Joins += o.Joins
	s.JoinChanges += o.JoinChanges
	s.SpecJoins += o.SpecJoins
	s.LaneJoins += o.LaneJoins
	s.Transfers += o.Transfers
	s.SpecTransfers += o.SpecTransfers
	s.Widenings += o.Widenings
	if s.Colors == 0 {
		s.Colors = o.Colors
	}
	s.LanesSpawned += o.LanesSpawned
	s.LanesExpired += o.LanesExpired
	s.LanesSkippedCertain += o.LanesSkippedCertain
	s.FencesHit += o.FencesHit
	if s.WTOComponents == 0 {
		s.WTOComponents = o.WTOComponents
	}
	s.Rollbacks += o.Rollbacks
	s.DepthHitBounds += o.DepthHitBounds
	s.DepthMissBounds += o.DepthMissBounds
	s.StatesPooled += o.StatesPooled
}

// PartitionStats describes the per-cache-set decomposition (PR 2's
// partitioned fixpoint). The dense single-fixpoint engine reports Engines=1,
// Groups=0.
type PartitionStats struct {
	// Engines counts fixpoint engines run (1 dense, or one per set group).
	Engines int `json:"engines"`
	// Groups counts independent cache-set groups (0 when dense).
	Groups int `json:"groups"`
	// DepthGroup is the index of the group owning the branch-slice loads
	// (§6.2's depth decisions), -1 when none or dense.
	DepthGroup int `json:"depth_group"`
	// SetsAnalyzed counts cache sets touched by at least one access.
	SetsAnalyzed int `json:"sets_analyzed"`
}

// BytecodeStats is the shape of the bytecode-compiled transfer program (PR
// 10's execution lowering): how many pre-resolved access steps the fixpoint
// loops iterate instead of re-walking ir.Instr. A pure function of the
// lowered program and cache geometry — identical across runs, schedulers,
// and parallelism — and all zero under the interpreted engine, which builds
// no compiled form.
type BytecodeStats struct {
	// Blocks counts compiled basic blocks.
	Blocks int64 `json:"blocks"`
	// ArchSteps counts pre-resolved architectural access steps; SpecSteps
	// the wrong-path steps (accesses reachable before the block's first
	// fence, with OOB-extended resolutions).
	ArchSteps int64 `json:"arch_steps"`
	SpecSteps int64 `json:"spec_steps"`
	// FencedBlocks counts blocks whose speculative step list was truncated
	// by a fence.
	FencedBlocks int64 `json:"fenced_blocks"`
}

// PhaseStat is one wall-clock phase sample.
type PhaseStat struct {
	Name string `json:"name"`
	// Nanos is the phase's wall-clock duration. Nondeterministic; zeroed by
	// ZeroTimes for diffable output.
	Nanos int64 `json:"nanos"`
}

// Clone returns a deep copy (the slices are copied, not shared).
func (s *Stats) Clone() *Stats {
	if s == nil {
		return nil
	}
	c := *s
	c.Passes = append([]PassStat(nil), s.Passes...)
	c.Phases = append([]PhaseStat(nil), s.Phases...)
	return &c
}

// ZeroTimes clears every wall-clock field in place, leaving only the
// deterministic semantic counters. Phase names (and their order) are kept:
// which phases ran is part of the contract, how long they took is not.
func (s *Stats) ZeroTimes() *Stats {
	if s == nil {
		return nil
	}
	for i := range s.Phases {
		s.Phases[i].Nanos = 0
	}
	return s
}

// JSON renders the canonical serialized form: two-space indent, trailing
// newline — the exact bytes `specanalyze -stats=json` prints and the golden
// tests pin.
func (s *Stats) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteText renders the human-readable form (`specanalyze -stats=text`):
// one glossary-ordered line per counter, aligned for scanning.
func (s *Stats) WriteText(w io.Writer) {
	p, f, pt := s.Program, s.Fixpoint, s.Partition
	fmt.Fprintf(w, "program:   %d blocks, %d instrs, %d symbols, %d mem accesses\n",
		p.Blocks, p.Instrs, p.Symbols, p.MemAccesses)
	fmt.Fprintf(w, "branches:  %d conditional, %d resolved statically -> %d speculative lanes\n",
		p.CondBranches, p.ResolvedBranches, p.Lanes())
	for _, ps := range s.Passes {
		fmt.Fprintf(w, "pass:      %-8s changed %d\n", ps.Name, ps.Changed)
	}
	fmt.Fprintf(w, "fixpoint:  %d iterations, %d joins (%d changed), %d spec joins, %d lane joins\n",
		f.Iterations, f.Joins, f.JoinChanges, f.SpecJoins, f.LaneJoins)
	fmt.Fprintf(w, "           %d transfers, %d spec transfers, %d widenings, %d states pooled\n",
		f.Transfers, f.SpecTransfers, f.Widenings, f.StatesPooled)
	fmt.Fprintf(w, "schedule:  %d wto components\n", f.WTOComponents)
	fmt.Fprintf(w, "lanes:     %d colors, %d spawned, %d skipped certain, %d expired, %d rollbacks injected\n",
		f.Colors, f.LanesSpawned, f.LanesSkippedCertain, f.LanesExpired, f.Rollbacks)
	if f.FencesHit > 0 {
		fmt.Fprintf(w, "fences:    %d lane walks killed at a fence\n", f.FencesHit)
	}
	fmt.Fprintf(w, "depth 6.2: %d pruned to b_h, %d at b_m\n",
		f.DepthHitBounds, f.DepthMissBounds)
	if bc := s.Bytecode; bc.Blocks > 0 {
		fmt.Fprintf(w, "exec:      compiled, %d blocks -> %d arch + %d spec access steps (%d fence-truncated)\n",
			bc.Blocks, bc.ArchSteps, bc.SpecSteps, bc.FencedBlocks)
	} else {
		fmt.Fprintf(w, "exec:      interpreted\n")
	}
	if pt.Groups > 0 {
		fmt.Fprintf(w, "partition: %d engines over %d set groups (%d sets analyzed, depth group %d)\n",
			pt.Engines, pt.Groups, pt.SetsAnalyzed, pt.DepthGroup)
	} else {
		fmt.Fprintf(w, "partition: dense single fixpoint\n")
	}
	for _, ph := range s.Phases {
		fmt.Fprintf(w, "phase:     %-12s %.3f ms\n", ph.Name, float64(ph.Nanos)/1e6)
	}
}

// SortPasses orders the pass stats by name. The pipeline records passes in
// execution order, which is already deterministic; this helper exists for
// callers merging stats from differently-ordered sources.
func (s *Stats) SortPasses() {
	sort.SliceStable(s.Passes, func(i, j int) bool { return s.Passes[i].Name < s.Passes[j].Name })
}

// PoolSnapshot is the expvar-style state of a runner.Pool, for long-running
// batch services. Counters are cumulative since pool creation; Running and
// QueueDepth are instantaneous gauges.
type PoolSnapshot struct {
	// Workers is the pool's configured concurrency.
	Workers int `json:"workers"`
	// Submitted counts jobs handed to Run; Completed those that finished
	// (successfully or not).
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	// Running is the number of jobs executing right now.
	Running int64 `json:"running"`
	// QueueDepth is Submitted - Completed - Running: jobs waiting for a
	// worker.
	QueueDepth int64 `json:"queue_depth"`
	// Panics counts jobs that crashed (isolated into PanicError); Canceled
	// counts jobs that returned a context error.
	Panics   int64 `json:"panics"`
	Canceled int64 `json:"canceled"`
	// CacheHits / CacheMisses / CacheEvictions / CacheSize are the compiled-
	// program tier's counters: how often a job's source was already lowered.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheSize      int64 `json:"cache_size"`
	// ReportCache* are the report tier's counters: how often an identical
	// (source, options, mode) request was answered without running the
	// analysis at all. Together with the program tier above, both levels of
	// the content-addressed cache are observable from one snapshot.
	ReportCacheHits      int64 `json:"report_cache_hits"`
	ReportCacheMisses    int64 `json:"report_cache_misses"`
	ReportCacheEvictions int64 `json:"report_cache_evictions"`
	ReportCacheSize      int64 `json:"report_cache_size"`
}

// ReportCacheHitRate returns hits/(hits+misses) for the report tier, or 0
// before any lookup.
func (s PoolSnapshot) ReportCacheHitRate() float64 {
	total := s.ReportCacheHits + s.ReportCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.ReportCacheHits) / float64(total)
}
