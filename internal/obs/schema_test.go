package obs

import (
	"strings"
	"testing"
)

// sample builds a fully-populated Stats document.
func sample() *Stats {
	return &Stats{
		Program: ProgramStats{Blocks: 5, Instrs: 40, Symbols: 3, MemAccesses: 12,
			CondBranches: 2, ResolvedBranches: 1},
		Passes: []PassStat{{Name: "sccp", Changed: 4}, {Name: "resolve", Changed: 1}},
		Fixpoint: FixpointStats{Iterations: 9, Joins: 20, JoinChanges: 12, SpecJoins: 3,
			LaneJoins: 6, Transfers: 80, SpecTransfers: 30, Widenings: 1,
			Colors: 2, LanesSpawned: 2, LanesExpired: 1, Rollbacks: 4,
			DepthHitBounds: 1, DepthMissBounds: 3, StatesPooled: 15},
		Partition: PartitionStats{Engines: 1, Groups: 0, DepthGroup: -1, SetsAnalyzed: 4},
		Phases:    []PhaseStat{{Name: "parse", Nanos: 1000}, {Name: "fixpoint", Nanos: 5000}},
	}
}

// TestSchemaAcceptsStats is the positive direction: every Stats the code can
// produce must serialize to a schema-valid document.
func TestSchemaAcceptsStats(t *testing.T) {
	for name, s := range map[string]*Stats{
		"full":    sample(),
		"zeroed":  sample().ZeroTimes(),
		"minimal": {Partition: PartitionStats{Engines: 1, DepthGroup: -1}},
	} {
		doc, err := s.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		if err := ValidateStats(doc); err != nil {
			t.Fatalf("%s: schema rejected own output: %v\n%s", name, err, doc)
		}
	}
}

// TestSchemaRejectsDrift is the negative direction: documents that drift
// from the contract (missing counters, renamed fields, wrong types) must
// fail validation with a path-bearing error.
func TestSchemaRejectsDrift(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the expected error
	}{
		{"not json", `{`, "invalid JSON"},
		{"root not object", `[1,2]`, "want object"},
		{"missing fixpoint", `{"program":{"blocks":0,"instrs":0,"symbols":0,"mem_accesses":0,"cond_branches":0,"resolved_branches":0},"partition":{"engines":1,"groups":0,"depth_group":-1,"sets_analyzed":0}}`,
			`missing required property "fixpoint"`},
		{"unknown counter", ``, `unknown property "bogus"`}, // patched below
		{"float iterations", ``, "want integer"},            // patched below
		{"negative engines", ``, "below minimum"},           // patched below
	}
	// Build the structured cases from a valid document so they stay in sync
	// with the schema.
	valid, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	cases[3].doc = strings.Replace(string(valid), `"blocks": 5`, `"blocks": 5, "bogus": 1`, 1)
	cases[4].doc = strings.Replace(string(valid), `"iterations": 9`, `"iterations": 9.5`, 1)
	cases[5].doc = strings.Replace(string(valid), `"engines": 1`, `"engines": 0`, 1)

	for _, tc := range cases {
		err := ValidateStats([]byte(tc.doc))
		if err == nil {
			t.Fatalf("%s: validation passed, want failure", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSchemaCoversEveryField catches schema rot in the other direction: a
// field added to the structs but not the schema would make every CI
// stats-smoke run fail with "unknown property", because the schema pins
// additionalProperties: false. Serialize a document with every field set
// non-zero and require acceptance — plus spot-check that the embedded schema
// really does forbid unknowns at each level.
func TestSchemaCoversEveryField(t *testing.T) {
	doc, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateStats(doc); err != nil {
		t.Fatalf("schema out of sync with Stats struct: %v", err)
	}
	for _, inject := range []struct{ anchor, name string }{
		{`"blocks": 5`, "program"},
		{`"iterations": 9`, "fixpoint"},
		{`"engines": 1`, "partition"},
	} {
		mutated := strings.Replace(string(doc), inject.anchor, inject.anchor+`, "zz_new_field": 1`, 1)
		if err := ValidateStats([]byte(mutated)); err == nil {
			t.Fatalf("schema silently accepts unknown field in %s section", inject.name)
		}
	}
}
