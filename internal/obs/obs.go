// Package obs is the analysis observability layer: a zero-dependency
// collector for the metrics the paper's evaluation is built on (fixpoint
// iterations, speculative-lane counts, §6.2 depth-bound hits, per-phase
// wall clock), threaded through the compile and analysis pipeline.
//
// The design splits the cost three ways so the hot path stays hot:
//
//   - The fixpoint engine accumulates its semantic counters in plain (non-
//     atomic) struct fields local to one engine and flushes them into the
//     Collector once per engine run — one mutex acquisition per fixpoint,
//     nothing per iteration.
//   - Phase timing is two time.Now calls per phase; phases are coarse
//     (parse, lower, fixpoint), so this is noise.
//   - A nil *Collector is valid everywhere and every method on it is an
//     allocation-free no-op, so un-instrumented runs pay nothing.
//
// Semantic counters are deterministic and parallelism-independent by
// construction: each engine's counting is single-goroutine, and cross-engine
// aggregation is integer addition, which no goroutine schedule can reorder
// into a different sum. That determinism is the testable contract pinned by
// the golden and property tests.
package obs

import (
	"sync"
	"time"
)

// Collector accumulates one run's Stats. The zero value is ready to use;
// a nil *Collector is valid and turns every method into a no-op. Collectors
// are safe for concurrent use (the partitioned engine flushes from several
// goroutines).
type Collector struct {
	mu    sync.Mutex
	stats Stats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// noopStop is returned by StartPhase on a nil collector; a shared func value
// keeps the nil fast path allocation-free.
var noopStop = func() {}

// StartPhase begins timing a named wall-clock phase and returns the function
// that ends it. Phases are recorded in end order; nested or overlapping
// phases simply produce multiple entries.
func (c *Collector) StartPhase(name string) func() {
	if c == nil {
		return noopStop
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		c.mu.Lock()
		c.stats.Phases = append(c.stats.Phases, PhaseStat{Name: name, Nanos: d.Nanoseconds()})
		c.mu.Unlock()
	}
}

// AddPhase appends an already-measured phase sample — used to replay the
// compile-time phases (parse, lower, passes) into the analysis collector so
// one Stats document covers the whole pipeline.
func (c *Collector) AddPhase(name string, nanos int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.Phases = append(c.stats.Phases, PhaseStat{Name: name, Nanos: nanos})
	c.mu.Unlock()
}

// Phase times fn as a named phase.
func (c *Collector) Phase(name string, fn func()) {
	if c == nil {
		fn()
		return
	}
	stop := c.StartPhase(name)
	fn()
	stop()
}

// SetProgram records the analyzed program's shape. Last write wins (the
// shape is recomputed after the pass pipeline).
func (c *Collector) SetProgram(p ProgramStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.Program = p
	c.mu.Unlock()
}

// AddPass appends one pre-analysis pass record.
func (c *Collector) AddPass(name string, changed int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.Passes = append(c.stats.Passes, PassStat{Name: name, Changed: changed})
	c.mu.Unlock()
}

// AddFixpoint merges one engine run's semantic counters. Engines flush once,
// at the end of their run; sums are schedule-independent.
func (c *Collector) AddFixpoint(f FixpointStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.Fixpoint.Add(f)
	c.mu.Unlock()
}

// SetBytecode records the compiled execution form's shape (zero when the
// interpreted engine ran).
func (c *Collector) SetBytecode(b BytecodeStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.Bytecode = b
	c.mu.Unlock()
}

// SetPartition records the cache-set decomposition that ran.
func (c *Collector) SetPartition(p PartitionStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.Partition = p
	c.mu.Unlock()
}

// Replay merges a previously captured snapshot into the collector: program
// shape and partition are overwritten, passes and phases appended, fixpoint
// counters summed. It is how cached work (a shared compilation, a report-
// cache hit) contributes its stats to a fresh run's document. A nil receiver
// or a nil snapshot is a no-op.
func (c *Collector) Replay(s *Stats) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Program = s.Program
	c.stats.Passes = append(c.stats.Passes, s.Passes...)
	c.stats.Fixpoint.Add(s.Fixpoint)
	if s.Partition != (PartitionStats{}) {
		c.stats.Partition = s.Partition
	}
	if s.Bytecode != (BytecodeStats{}) {
		c.stats.Bytecode = s.Bytecode
	}
	c.stats.Phases = append(c.stats.Phases, s.Phases...)
}

// Snapshot returns a deep copy of the collected stats; the collector can
// keep accumulating afterwards.
func (c *Collector) Snapshot() *Stats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.Clone()
}
