package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 17} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			counts := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachWorkersExceedN(t *testing.T) {
	var calls int32
	ForEach(64, 3, func(i int) { atomic.AddInt32(&calls, 1) })
	if calls != 3 {
		t.Fatalf("got %d calls, want 3", calls)
	}
}

func TestForEachInlineWhenSerial(t *testing.T) {
	// workers <= 1 must run on the calling goroutine, in order.
	var order []int
	ForEach(1, 4, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order %v, want 0..3 ascending", order)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(workers, 50, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachPanicStopsPool(t *testing.T) {
	// After a panic the pool must stop handing out work: with 1 extra-slow
	// panic at the first index and many pending indices, far fewer than n
	// calls should happen. We only assert no *new* work starts after stop is
	// observed — deterministically, every call that runs must see an index in
	// range (no double-dispatch past n).
	var calls int32
	func() {
		defer func() { recover() }()
		ForEach(4, 1000, func(i int) {
			atomic.AddInt32(&calls, 1)
			panic("stop")
		})
	}()
	if c := atomic.LoadInt32(&calls); c < 1 || c > 4 {
		t.Fatalf("%d calls ran after panic, want 1..4 (one per worker at most)", c)
	}
}
