// Package par provides the minimal fan-out primitive shared by the
// per-cache-set parallel fixpoint (internal/core) without creating an import
// cycle with internal/runner's job-level pool.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach calls fn(i) for every i in [0, n), spreading calls across up to
// workers goroutines, and returns once all calls have completed. With
// workers <= 1 (or n <= 1) everything runs inline on the caller.
//
// A panic inside fn stops the pool (workers finish their current call and
// pick up no further work) and the first panic value is re-raised on the
// calling goroutine, preserving the caller's recover-based isolation
// (internal/runner wraps analyses in PanicError recovery; fan-out must not
// let a worker panic escape to a bare goroutine and kill the process).
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     int64
		stop     int32
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	worker := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				atomic.StoreInt32(&stop, 1)
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		for atomic.LoadInt32(&stop) == 0 {
			i := atomic.AddInt64(&next, 1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
