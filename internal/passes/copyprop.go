package passes

import "specabsint/internal/ir"

// copyProp performs block-local forward copy propagation: within one block,
// a use of a mov destination is replaced by the mov source (register or
// constant), recorded transitively so chains collapse to their root. A
// mapping dies when either side of the copy is overwritten. Only register
// state is involved, so substitution is valid on every execution that
// reaches the instruction — architectural or wrong-path — and the mov itself
// becomes dead for the DCE pass to nop. It returns the number of rewritten
// operands.
func copyProp(prog *ir.Program) int {
	n := 0
	copyOf := make([]ir.Value, prog.NumRegs)
	stamp := make([]int, prog.NumRegs)
	gen := 0
	var active []ir.Reg // mov destinations with a live mapping this block
	for _, b := range prog.Blocks {
		gen++
		active = active[:0]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			eachUse(in, func(v *ir.Value) {
				if stamp[v.Reg] == gen {
					*v = copyOf[v.Reg]
					n++
				}
			})
			d, ok := instrDef(in)
			if !ok {
				continue
			}
			// Overwriting d kills its own mapping and every mapping whose
			// source it is.
			stamp[d] = 0
			for _, a := range active {
				if stamp[a] == gen && !copyOf[a].IsConst && copyOf[a].Reg == d {
					stamp[a] = 0
				}
			}
			if in.Op == ir.OpMov && (in.A.IsConst || in.A.Reg != d) {
				copyOf[d] = in.A
				stamp[d] = gen
				active = append(active, d)
			}
		}
	}
	return n
}
