package passes

import "specabsint/internal/ir"

// eachUse calls fn with a pointer to every register operand the instruction
// reads, so callers can rewrite operands in place.
func eachUse(in *ir.Instr, fn func(*ir.Value)) {
	useVal := func(v *ir.Value) {
		if !v.IsConst {
			fn(v)
		}
	}
	switch in.Op {
	case ir.OpNop, ir.OpBr, ir.OpConst, ir.OpFence:
	case ir.OpMov, ir.OpNeg, ir.OpNot, ir.OpBool, ir.OpRet, ir.OpCondBr:
		useVal(&in.A)
	case ir.OpLoad:
		useVal(&in.Idx)
	case ir.OpStore:
		useVal(&in.Idx)
		useVal(&in.A)
	default:
		if in.Op.IsBinop() {
			useVal(&in.A)
			useVal(&in.B)
		}
	}
}

// instrDef returns the register the instruction writes, if any.
func instrDef(in *ir.Instr) (ir.Reg, bool) {
	switch in.Op {
	case ir.OpNop, ir.OpStore, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpFence:
		return 0, false
	}
	return in.Dst, true
}

// bitset is a fixed-width bit vector over dense cross-register indices.
type bitset []uint64

func newBitset(bits int) bitset    { return make(bitset, (bits+63)/64) }
func (s bitset) set(i int)         { s[i/64] |= 1 << (i % 64) }
func (s bitset) clear(i int)       { s[i/64] &^= 1 << (i % 64) }
func (s bitset) has(i int) bool    { return s[i/64]&(1<<(i%64)) != 0 }
func (s bitset) copyFrom(o bitset) { copy(s, o) }
func (s bitset) union(o bitset) {
	for i := range s {
		s[i] |= o[i]
	}
}
func (s bitset) equal(o bitset) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// classifyCross assigns compact indices to cross-block registers (referenced
// by more than one block); block-local registers map to -1. Mirrors the
// interval analysis's sparse-environment trick: after full unrolling a
// program has tens of thousands of single-block temporaries, and per-block
// lattices must not carry them all.
func classifyCross(prog *ir.Program) (crossIdx []int, numCross int) {
	const unseen = ir.BlockID(-1)
	regBlock := make([]ir.BlockID, prog.NumRegs)
	for i := range regBlock {
		regBlock[i] = unseen
	}
	cross := make([]bool, prog.NumRegs)
	for _, b := range prog.Blocks {
		touch := func(r ir.Reg) {
			if regBlock[r] == unseen {
				regBlock[r] = b.ID
			} else if regBlock[r] != b.ID {
				cross[r] = true
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			eachUse(in, func(v *ir.Value) { touch(v.Reg) })
			if d, ok := instrDef(in); ok {
				touch(d)
			}
		}
	}
	crossIdx = make([]int, prog.NumRegs)
	for r := range crossIdx {
		if cross[r] {
			crossIdx[r] = numCross
			numCross++
		} else {
			crossIdx[r] = -1
		}
	}
	return crossIdx, numCross
}
