package passes_test

import (
	"context"
	"math/rand"
	"testing"

	"specabsint/internal/cache"
	"specabsint/internal/core"
	"specabsint/internal/gen"
	"specabsint/internal/ir"
	"specabsint/internal/lower"
	"specabsint/internal/passes"
	"specabsint/internal/source"
)

// TestPreservationCorpus is the pass pipeline's preservation proof over a
// seeded corpus: for every generated program, the analysis of the
// transformed program must classify every architecturally live access either
// byte-identically to the untransformed analysis or strictly more precisely
// (Unknown -> AlwaysHit/AlwaysMiss). Accesses the transformed analysis drops
// must sit in blocks only reachable through a resolved branch's dead edge —
// code no execution of the emitted program can reach. Wrong-path coverage
// (SpecAccess) may shrink, because resolved branches spawn no lanes, but a
// lane verdict present on both sides must satisfy the same equal-or-tighter
// relation on always-hit/always-miss agreements being allowed to differ only
// toward precision.
func TestPreservationCorpus(t *testing.T) {
	const programs = 60
	rng := rand.New(rand.NewSource(7))
	cfgs := []gen.Config{gen.Default(), gen.Secrets(), gen.Sized(3)}
	checked := 0
	for i := 0; i < programs; i++ {
		src := gen.Program(rng, cfgs[i%len(cfgs)])
		if comparePassPreservation(t, src) {
			checked++
		}
	}
	if checked < programs/2 {
		t.Fatalf("only %d/%d generated programs were comparable", checked, programs)
	}
}

// comparePassPreservation analyzes one source with and without the pipeline
// and asserts the preservation relation. It reports false for programs that
// do not compile or analyze (the generator can exceed unroll limits).
func comparePassPreservation(t *testing.T, src string) bool {
	t.Helper()
	compile := func(withPasses bool) *ir.Program {
		ast, err := source.Parse(src)
		if err != nil {
			return nil
		}
		prog, err := lower.Lower(ast, lower.DefaultOptions())
		if err != nil {
			return nil
		}
		if withPasses {
			if _, err := passes.Run(prog, passes.Default()); err != nil {
				t.Fatalf("passes.Run: %v\nsource:\n%s", err, src)
			}
		}
		return prog
	}
	plain := compile(false)
	transformed := compile(true)
	if plain == nil || transformed == nil {
		return false
	}
	opts := core.DefaultOptions()
	opts.Cache.NumSets, opts.Cache.Assoc = 2, 2
	off, err := core.AnalyzeContext(context.Background(), plain, opts)
	if err != nil {
		return false
	}
	on, err := core.AnalyzeContext(context.Background(), transformed, opts)
	if err != nil {
		t.Fatalf("analysis of transformed program failed: %v\nsource:\n%s", err, src)
	}

	deadBlocks := effectivelyDead(transformed)
	for id, offInfo := range off.Access {
		onInfo, ok := on.Access[id]
		if !ok {
			if !deadBlocks[offInfo.Block] {
				t.Errorf("instr %d (line %d) classified without passes but dropped with them, and its block %d is effectively reachable\nsource:\n%s",
					id, offInfo.Instr.Line, offInfo.Block, src)
			}
			continue
		}
		if !equalOrMorePrecise(offInfo.Class, onInfo.Class) {
			t.Errorf("instr %d (line %d): class weakened %v -> %v with passes\nsource:\n%s",
				id, offInfo.Instr.Line, offInfo.Class, onInfo.Class, src)
		}
	}
	for id := range on.Access {
		if _, ok := off.Access[id]; !ok {
			t.Errorf("instr %d classified only with passes on — transformed analysis covered more architectural code than the original\nsource:\n%s", id, src)
		}
	}
	// Lane verdicts: coverage may shrink (resolved branches spawn no
	// speculative lanes) but surviving verdicts must not weaken.
	for id, onCls := range on.SpecAccess {
		if offCls, ok := off.SpecAccess[id]; ok && !equalOrMorePrecise(offCls, onCls) {
			t.Errorf("instr %d: wrong-path class weakened %v -> %v with passes\nsource:\n%s", id, offCls, onCls, src)
		}
	}
	return true
}

// equalOrMorePrecise is the preservation order: identical, or a definite
// verdict replacing Unknown.
func equalOrMorePrecise(off, on cache.Classification) bool {
	return on == off || off == cache.Unknown
}

// effectivelyDead marks blocks unreachable along effective successor edges:
// the only code the pass pipeline may drop from the architectural report.
func effectivelyDead(prog *ir.Program) map[ir.BlockID]bool {
	reach := make(map[ir.BlockID]bool, len(prog.Blocks))
	stack := []ir.BlockID{prog.Entry}
	reach[prog.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range prog.Blocks[b].EffectiveSuccs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	dead := map[ir.BlockID]bool{}
	for _, b := range prog.Blocks {
		if !reach[b.ID] {
			dead[b.ID] = true
		}
	}
	return dead
}
