// Package passes is the pre-analysis pass pipeline: an ordered set of
// analysis-preserving IR transformations run after lowering and before the
// speculative fixpoint. The point is the paper's own lever — prune statically
// decidable work before the expensive part: §6.2 bounds speculation depth via
// must-hit branch conditions, §6.4 keeps colored lanes independent, and here
// we stop lanes from being spawned at all for branches whose outcome is a
// compile-time constant.
//
// Passes, in order:
//
//  1. sccp — sparse conditional constant propagation over registers and
//     value-tracked memory scalars (the same memory model the interval
//     analysis uses: secret scalars and uninitialized scalars are unknown,
//     initialized scalars start at their initializer, array contents are
//     never tracked). Register uses whose value is a proven constant are
//     rewritten to constant operands in place.
//  2. copyprop — block-local forward copy propagation, replacing uses of
//     mov destinations with the mov source so the mov becomes dead.
//  3. resolve — marks CondBrs whose condition operand is now a constant as
//     Resolved (direction TakenTrue). Resolution never rewrites the CFG:
//     both edges stay, so dominator/post-dominator geometry and every
//     vn_stop placement are unchanged; the engine, interval analysis, and
//     simulator simply follow only the taken edge and spawn no speculative
//     lane for the branch.
//  4. dce — dead-register elimination, replacing pure dead instructions with
//     Nop. Nop-replacement (rather than removal) keeps instruction ids,
//     speculation budgets, the fetch stream, and cycle counts identical, so
//     it has no memory or i-cache footprint by construction. Loads, stores,
//     terminators, and potentially-faulting divisions are never eliminated.
//     The pass is additionally gated off entirely when the caller models an
//     instruction cache, per the conservative contract in DESIGN.md.
//
// Every transformation keeps the instruction-id assignment (Finalize is
// never re-run) so per-access analysis results remain comparable across
// passes-on/passes-off runs of the same program.
package passes

import (
	"fmt"

	"specabsint/internal/ir"
	"specabsint/internal/irverify"
)

// Options selects which passes run.
type Options struct {
	// SCCP enables sparse conditional constant propagation + operand
	// folding.
	SCCP bool
	// CopyProp enables block-local copy propagation.
	CopyProp bool
	// ResolveBranches enables marking constant-condition CondBrs Resolved.
	ResolveBranches bool
	// DCE enables dead-register elimination (Nop replacement).
	DCE bool
	// ICacheModeled disables DCE when the caller models an instruction
	// cache. Nop replacement preserves the fetch stream, but the gate keeps
	// the preservation argument trivial: with i-cache modeling on, the
	// instruction stream is byte-identical to the unoptimized program.
	ICacheModeled bool
	// SkipVerify disables the post-pipeline structural verification.
	SkipVerify bool
}

// Default returns the standard pipeline: everything on.
func Default() Options {
	return Options{SCCP: true, CopyProp: true, ResolveBranches: true, DCE: true}
}

// PassStat records one pass's effect.
type PassStat struct {
	Name string
	// Changed counts rewritten operands (sccp, copyprop), marked branches
	// (resolve), or inserted nops (dce).
	Changed int
}

// Result summarizes a pipeline run.
type Result struct {
	Stats []PassStat
	// FoldedOperands counts register operands rewritten to constants.
	FoldedOperands int
	// ResolvedBranches counts CondBrs marked Resolved.
	ResolvedBranches int
	// NopsInserted counts instructions replaced by Nop.
	NopsInserted int
}

// Changed reports whether any pass modified the program.
func (r *Result) Changed() bool {
	return r.FoldedOperands+r.ResolvedBranches+r.NopsInserted > 0
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("passes: folded %d operands, resolved %d branches, nopped %d instrs",
		r.FoldedOperands, r.ResolvedBranches, r.NopsInserted)
}

// Run executes the configured pipeline on prog in place and verifies the
// result. The program must already be structurally valid (lowering verifies
// its own output); a verification failure afterwards means a pass bug and is
// returned as an error wrapping the irverify diagnostics.
func Run(prog *ir.Program, opts Options) (*Result, error) {
	res := &Result{}
	if opts.SCCP {
		folded := sccp(prog)
		res.FoldedOperands += folded
		res.Stats = append(res.Stats, PassStat{Name: "sccp", Changed: folded})
	}
	if opts.CopyProp {
		n := copyProp(prog)
		res.FoldedOperands += n
		res.Stats = append(res.Stats, PassStat{Name: "copyprop", Changed: n})
	}
	if opts.ResolveBranches {
		n := resolveBranches(prog)
		res.ResolvedBranches = n
		res.Stats = append(res.Stats, PassStat{Name: "resolve", Changed: n})
	}
	if opts.DCE && !opts.ICacheModeled {
		n := dce(prog)
		res.NopsInserted = n
		res.Stats = append(res.Stats, PassStat{Name: "dce", Changed: n})
	}
	if !opts.SkipVerify {
		if err := irverify.Verify(prog); err != nil {
			return nil, fmt.Errorf("pass pipeline produced invalid IR: %w", err)
		}
	}
	return res, nil
}

// resolveBranches marks every reachable CondBr whose condition operand is a
// constant (after sccp/copyprop folding, or straight from lowering) as
// Resolved with the matching direction. The instruction itself is otherwise
// untouched.
func resolveBranches(prog *ir.Program) int {
	n := 0
	for _, b := range prog.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr || t.Resolved || !t.A.IsConst {
			continue
		}
		if t.TrueTarget == t.FalseTarget {
			// Degenerate both-edges-same branch; the verifier rejects these,
			// so never mint one into a Resolved marker.
			continue
		}
		t.Resolved = true
		t.TakenTrue = t.A.Const != 0
		n++
	}
	return n
}
