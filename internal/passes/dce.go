package passes

import "specabsint/internal/ir"

// Dead-register elimination by Nop replacement.
//
// An instruction is eliminated when it is pure — touches no memory, cannot
// fault, is not a terminator — and its destination register is read by no
// later instruction on any CFG path. Liveness runs over the FULL edge set
// (both sides of Resolved branches): wrong-path speculative execution also
// executes instructions, and while it can never cross a resolved branch's
// dead edge, keeping the analysis edge-set maximal makes the conservatism
// obvious.
//
// Replacement, not removal: the Nop keeps the instruction's id and source
// line, so Finalize never re-runs, per-access analysis results stay keyed
// identically, the speculation budget still counts the slot, and the fetch
// stream and cycle estimate are unchanged — no memory or i-cache footprint
// is created or destroyed.

// dceEligible reports whether the instruction may be eliminated when dead.
// Loads stay (cache footprint), stores and terminators obviously stay, and
// division stays unless its divisor is a provably nonzero constant (nopping
// it would erase a runtime fault).
func dceEligible(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpMov, ir.OpNeg, ir.OpNot, ir.OpBool:
		return true
	case ir.OpDiv, ir.OpRem:
		return in.B.IsConst && in.B.Const != 0
	case ir.OpLoad, ir.OpStore, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpNop:
		return false
	}
	return in.Op.IsBinop()
}

// dce runs elimination rounds until none fires (nopping an instruction can
// make its operands' definitions dead in turn).
func dce(prog *ir.Program) int {
	total := 0
	for {
		n := dceRound(prog)
		total += n
		if n == 0 {
			return total
		}
	}
}

func dceRound(prog *ir.Program) int {
	crossIdx, numCross := classifyCross(prog)
	words := (numCross + 63) / 64
	nBlocks := len(prog.Blocks)
	liveIn := make([]bitset, nBlocks)
	slab := make([]uint64, nBlocks*words)
	for i := 0; i < nBlocks; i++ {
		liveIn[i] = bitset(slab[i*words : (i+1)*words])
	}
	liveOut := func(b *ir.Block, dst bitset) {
		for i := range dst {
			dst[i] = 0
		}
		for _, s := range b.Succs() {
			dst.union(liveIn[s])
		}
	}

	// Backward liveness over cross registers to a fixpoint. Blocks are
	// processed in reverse layout order, which is near-postorder for lowered
	// programs, so convergence is fast.
	cur := newBitset(numCross)
	for changed := true; changed; {
		changed = false
		for bi := nBlocks - 1; bi >= 0; bi-- {
			b := prog.Blocks[bi]
			liveOut(b, cur)
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				if d, ok := instrDef(in); ok {
					if ci := crossIdx[d]; ci >= 0 {
						cur.clear(ci)
					}
				}
				eachUse(in, func(v *ir.Value) {
					if ci := crossIdx[v.Reg]; ci >= 0 {
						cur.set(ci)
					}
				})
			}
			if !cur.equal(liveIn[b.ID]) {
				liveIn[b.ID].copyFrom(cur)
				changed = true
			}
		}
	}

	// Sweep: walk each block backward; a dead eligible definition becomes a
	// Nop (its uses are then not marked live, so in-block chains die in the
	// same sweep). Block-local registers are tracked with generation stamps.
	nops := 0
	localLive := make([]int, prog.NumRegs)
	gen := 0
	for bi := nBlocks - 1; bi >= 0; bi-- {
		b := prog.Blocks[bi]
		liveOut(b, cur)
		gen++
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			if d, ok := instrDef(in); ok {
				ci := crossIdx[d]
				isLive := localLive[d] == gen
				if ci >= 0 {
					isLive = cur.has(ci)
				}
				if !isLive && dceEligible(in) {
					*in = ir.Instr{Op: ir.OpNop, Line: in.Line, ID: in.ID}
					nops++
					continue
				}
				if ci >= 0 {
					cur.clear(ci)
				}
				localLive[d] = 0
			}
			eachUse(in, func(v *ir.Value) {
				if ci := crossIdx[v.Reg]; ci >= 0 {
					cur.set(ci)
				} else {
					localLive[v.Reg] = gen
				}
			})
		}
	}
	return nops
}
