package passes_test

import (
	"errors"
	"strings"
	"testing"

	"specabsint/internal/interp"
	"specabsint/internal/ir"
	"specabsint/internal/lower"
	"specabsint/internal/passes"
	"specabsint/internal/source"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := lower.Lower(ast, lower.DefaultOptions())
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func run(t *testing.T, prog *ir.Program, opts passes.Options) *passes.Result {
	t.Helper()
	res, err := passes.Run(prog, opts)
	if err != nil {
		t.Fatalf("passes.Run: %v", err)
	}
	return res
}

// snapshotIDs captures the (block, index) -> instruction id layout so tests
// can assert passes never renumber or add/remove instructions.
func snapshotIDs(prog *ir.Program) []int {
	var ids []int
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			ids = append(ids, b.Instrs[i].ID)
		}
	}
	return ids
}

func TestResolveConstantBranch(t *testing.T) {
	prog := compile(t, `int main() {
		reg int x = 3;
		if (x < 5) { return 1; }
		return 2;
	}`)
	res := run(t, prog, passes.Default())
	if res.ResolvedBranches != 1 {
		t.Fatalf("ResolvedBranches = %d, want 1\n%s", res.ResolvedBranches, prog)
	}
	if got := prog.ResolvedBranchCount(); got != 1 {
		t.Fatalf("ResolvedBranchCount = %d, want 1", got)
	}
	if got := prog.CondBranchCount(); got != 0 {
		t.Fatalf("CondBranchCount = %d, want 0 (resolved branches cannot mispredict)", got)
	}
	st, err := interp.NewMachine(prog).Run(10_000)
	if err != nil || st.Ret != 1 {
		t.Fatalf("run: ret=%d err=%v, want 1", st.Ret, err)
	}
}

func TestFoldAndDCE(t *testing.T) {
	prog := compile(t, `int main() {
		reg int a = 2;
		reg int b = a + 3;
		return b;
	}`)
	before := snapshotIDs(prog)
	numInstrs := prog.NumInstrs
	res := run(t, prog, passes.Default())
	if res.FoldedOperands == 0 {
		t.Fatalf("expected folded operands\n%s", prog)
	}
	if !strings.Contains(prog.String(), "ret 5") {
		t.Fatalf("return value should fold to 5:\n%s", prog)
	}
	if res.NopsInserted == 0 {
		t.Fatalf("expected dead definitions to be nopped\n%s", prog)
	}
	if prog.NumInstrs != numInstrs {
		t.Fatalf("NumInstrs changed %d -> %d; passes must not add or remove instructions",
			numInstrs, prog.NumInstrs)
	}
	after := snapshotIDs(prog)
	if len(before) != len(after) {
		t.Fatalf("instruction count changed %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("instruction id at position %d changed %d -> %d", i, before[i], after[i])
		}
	}
}

func TestSecretNeverFolds(t *testing.T) {
	prog := compile(t, `secret int k;
	char ph[256];
	int main() {
		reg int t = ph[k & 255];
		if (k > 0) { t = ph[0]; }
		return t;
	}`)
	res := run(t, prog, passes.Default())
	if res.ResolvedBranches != 0 {
		t.Fatalf("secret-conditioned branch must not resolve\n%s", prog)
	}
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpLoad && prog.Symbol(in.Sym).Name == "ph" && in.Idx.IsConst && in.Idx.Const != 0 {
				t.Fatalf("secret-derived index folded to constant %d:\n%s", in.Idx.Const, prog)
			}
		}
	}
}

func TestInputParamNotFolded(t *testing.T) {
	prog := compile(t, `int main(int x) {
		if (x < 5) { return 1; }
		return 2;
	}`)
	res := run(t, prog, passes.Default())
	if res.ResolvedBranches != 0 {
		t.Fatalf("input-dependent branch must not resolve\n%s", prog)
	}
}

func TestRegInputNotFolded(t *testing.T) {
	// A `reg` variable without an initializer models an input read straight
	// from the register file; its value must never fold even though it is
	// concretely zero in the unpreloaded interpreter.
	prog := compile(t, `int main() {
		reg int x;
		if (x < 5) { return 1; }
		return 2;
	}`)
	res := run(t, prog, passes.Default())
	if res.ResolvedBranches != 0 {
		t.Fatalf("input-register branch must not resolve\n%s", prog)
	}
}

func TestDeadDivisionByZeroKept(t *testing.T) {
	prog := compile(t, `int main() {
		reg int a = 1;
		reg int b = 0;
		reg int c = a / b;
		return 7;
	}`)
	run(t, prog, passes.Default())
	found := false
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpDiv {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("dead division by zero must not be eliminated (it faults at runtime):\n%s", prog)
	}
	if _, err := interp.NewMachine(prog).Run(10_000); !errors.Is(err, interp.ErrDivideByZero) {
		t.Fatalf("transformed program should still fault, got %v", err)
	}
}

func TestICacheGateDisablesDCE(t *testing.T) {
	prog := compile(t, `int main() {
		reg int a = 2;
		reg int b = a + 3;
		return 1;
	}`)
	opts := passes.Default()
	opts.ICacheModeled = true
	res := run(t, prog, opts)
	if res.NopsInserted != 0 {
		t.Fatalf("DCE must be gated off under i-cache modeling, nopped %d", res.NopsInserted)
	}
}

func TestUnresolvedLoopUntouched(t *testing.T) {
	prog := compile(t, `int g;
	int main(int n) {
		reg int i = 0;
		while (i < n) { g = g + i; i = i + 1; }
		return g;
	}`)
	branches := prog.CondBranchCount()
	res := run(t, prog, passes.Default())
	if res.ResolvedBranches != 0 {
		t.Fatalf("input-bounded loop must not resolve\n%s", prog)
	}
	if got := prog.CondBranchCount(); got != branches {
		t.Fatalf("CondBranchCount changed %d -> %d", branches, got)
	}
}

func TestScalarGlobalThroughStore(t *testing.T) {
	// g starts at 1, is stored a constant 4 on the only path, and the
	// following branch on g reads the stored value: SCCP's scalar-memory
	// tracking resolves it.
	prog := compile(t, `int g = 1;
	int main() {
		g = 4;
		if (g > 2) { return 1; }
		return 2;
	}`)
	res := run(t, prog, passes.Default())
	if res.ResolvedBranches != 1 {
		t.Fatalf("stored-constant scalar branch should resolve, got %d\n%s", res.ResolvedBranches, prog)
	}
	st, err := interp.NewMachine(prog).Run(10_000)
	if err != nil || st.Ret != 1 {
		t.Fatalf("run: ret=%d err=%v, want 1", st.Ret, err)
	}
}

func TestCopyPropagation(t *testing.T) {
	// Hand-built block: r1 = input; r2 = mov r1; r3 = add r2, 1; ret r3.
	bd := ir.NewBuilder("cp")
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	r1 := bd.NewReg()
	bd.MarkInputReg(r1)
	r2 := bd.NewReg()
	bd.Mov(r2, ir.RegVal(r1))
	r3 := bd.Binop(ir.OpAdd, ir.RegVal(r2), ir.ConstVal(1))
	bd.Ret(ir.RegVal(r3))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	res := run(t, prog, passes.Options{CopyProp: true})
	if res.FoldedOperands == 0 {
		t.Fatalf("expected copy-propagated operand\n%s", prog)
	}
	add := &prog.Blocks[0].Instrs[1]
	if add.Op != ir.OpAdd || add.A.IsConst || add.A.Reg != r1 {
		t.Fatalf("add should read %s directly, got %s", r1, prog.FormatInstr(add))
	}
}

// TestArchitecturalEquivalence runs a few programs to completion with and
// without the pipeline and requires identical return values: passes must
// preserve architectural semantics exactly.
func TestArchitecturalEquivalence(t *testing.T) {
	srcs := []string{
		`int main() { reg int x = 3; if (x < 5) { return x + 10; } return 2; }`,
		`int g = 1; int a[8] = {7, 6, 5, 4, 3, 2, 1, 0};
		 int main() { reg int s = 0; for (int i = 0; i < 8; i++) { s = s + a[i]; } if (g == 1) { s = s * 2; } return s; }`,
		`int f(int v) { return v * 3; }
		 int main() { reg int x = f(2); while (x > 0 && x < 100) { x = x * 2; } return x; }`,
		`int g; int main() { g = 5; g = g - 2; if (g == 3) { return g; } return -1; }`,
	}
	for _, src := range srcs {
		plain := compile(t, src)
		transformed := compile(t, src)
		run(t, transformed, passes.Default())
		st1, err1 := interp.NewMachine(plain).Run(1_000_000)
		st2, err2 := interp.NewMachine(transformed).Run(1_000_000)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("fault behavior diverged: %v vs %v\n%s", err1, err2, src)
		}
		if err1 == nil && st1.Ret != st2.Ret {
			t.Fatalf("return diverged: %d vs %d\nsource:\n%s\ntransformed:\n%s",
				st1.Ret, st2.Ret, src, transformed)
		}
	}
}
