package passes

import (
	"specabsint/internal/interp"
	"specabsint/internal/ir"
)

// Sparse conditional constant propagation.
//
// The lattice per register / tracked scalar is the usual three-level one:
// unknown (optimistically "no value seen yet"), a single constant, or
// overdefined. Environments live only at block entries and only for
// cross-block registers plus one slot per memory symbol; block-local
// temporaries are evaluated in a scratch table during the transfer, exactly
// like the interval analysis.
//
// Conditionality: propagation starts at entry and pushes environments only
// along edges that can execute — a CondBr whose condition evaluates to a
// constant propagates only its taken edge. Blocks never reached this way
// keep a nil environment and are left untouched by the rewrite (they are
// exactly the blocks behind a to-be-resolved branch's dead edge).
//
// The memory model mirrors interval.entryEnv: secret scalars and
// uninitialized scalars are overdefined at entry (input vectors may preload
// them), initialized scalars start at their initializer, and array contents
// are never value-tracked. Folding uses interp.EvalBinop so compile-time
// arithmetic is bit-identical to the machine's, and a potentially faulting
// operation (division by a non-constant or zero divisor) is never folded —
// the fault must still happen at runtime.

type latKind int8

const (
	latUnknown latKind = iota
	latConst
	latOver
)

type lat struct {
	kind latKind
	c    int64
}

var overLat = lat{kind: latOver}

func constLat(c int64) lat { return lat{kind: latConst, c: c} }

// meet is the lattice meet: unknown is the identity, differing constants
// fall to overdefined.
func meet(a, b lat) lat {
	switch {
	case a.kind == latUnknown:
		return b
	case b.kind == latUnknown:
		return a
	case a.kind == latOver || b.kind == latOver:
		return overLat
	case a.c == b.c:
		return a
	default:
		return overLat
	}
}

type sccpState struct {
	prog     *ir.Program
	crossIdx []int
	numCross int
	// env slot layout: [0,numCross) cross registers, then one slot per
	// symbol (only scalars are ever non-overdefined).
	width int
	inEnv [][]lat
	// scratch holds block-local register values during one transfer.
	scratch    []lat
	scratchGen []int
	curGen     int
}

func (s *sccpState) slotSym(id ir.SymbolID) int { return s.numCross + int(id) }

func (s *sccpState) read(env []lat, r ir.Reg) lat {
	if ci := s.crossIdx[r]; ci >= 0 {
		return env[ci]
	}
	if s.scratchGen[r] == s.curGen {
		return s.scratch[r]
	}
	// Read of a local register with no in-block definition: only input
	// registers do this on verified IR, and inputs are arbitrary.
	return overLat
}

func (s *sccpState) write(env []lat, r ir.Reg, v lat) {
	if ci := s.crossIdx[r]; ci >= 0 {
		env[ci] = v
		return
	}
	s.scratch[r] = v
	s.scratchGen[r] = s.curGen
}

func (s *sccpState) lookup(env []lat, v ir.Value) lat {
	if v.IsConst {
		return constLat(v.Const)
	}
	return s.read(env, v.Reg)
}

func (s *sccpState) entryEnv() []lat {
	env := make([]lat, s.width)
	// Cross registers start unknown; input and secret registers are
	// externally set and must never fold.
	for _, r := range s.prog.InputRegs {
		if ci := s.crossIdx[r]; ci >= 0 {
			env[ci] = overLat
		}
	}
	for _, r := range s.prog.SecretRegs {
		if ci := s.crossIdx[r]; ci >= 0 {
			env[ci] = overLat
		}
	}
	for _, sym := range s.prog.Symbols {
		slot := s.slotSym(sym.ID)
		switch {
		case sym.Len != 1 || sym.Secret:
			env[slot] = overLat
		case len(sym.Init) > 0:
			env[slot] = constLat(sym.Init[0])
		default:
			// Uninitialized scalars (e.g. main's parameters) model inputs.
			env[slot] = overLat
		}
	}
	return env
}

// transfer evaluates one instruction over env/scratch.
func (s *sccpState) transfer(env []lat, in *ir.Instr) {
	switch in.Op {
	case ir.OpConst, ir.OpMov:
		s.write(env, in.Dst, s.lookup(env, in.A))
	case ir.OpNeg:
		s.write(env, in.Dst, s.unop(env, in, func(c int64) int64 { return -c }))
	case ir.OpNot:
		s.write(env, in.Dst, s.unop(env, in, func(c int64) int64 { return ^c }))
	case ir.OpBool:
		s.write(env, in.Dst, s.unop(env, in, func(c int64) int64 {
			if c != 0 {
				return 1
			}
			return 0
		}))
	case ir.OpLoad:
		sym := s.prog.Symbol(in.Sym)
		if sym.Len == 1 {
			s.write(env, in.Dst, env[s.slotSym(in.Sym)])
		} else {
			s.write(env, in.Dst, overLat)
		}
	case ir.OpStore:
		if s.prog.Symbol(in.Sym).Len == 1 {
			env[s.slotSym(in.Sym)] = s.lookup(env, in.A)
		}
	case ir.OpNop, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpFence:
	default:
		if !in.Op.IsBinop() {
			return
		}
		a, b := s.lookup(env, in.A), s.lookup(env, in.B)
		switch {
		case a.kind == latConst && b.kind == latConst:
			if v, err := interp.EvalBinop(in.Op, a.c, b.c); err == nil {
				s.write(env, in.Dst, constLat(v))
			} else {
				// Folding would erase a runtime fault (division by zero).
				s.write(env, in.Dst, overLat)
			}
		case a.kind == latOver || b.kind == latOver:
			s.write(env, in.Dst, overLat)
		default:
			s.write(env, in.Dst, lat{kind: latUnknown})
		}
	}
}

func (s *sccpState) unop(env []lat, in *ir.Instr, f func(int64) int64) lat {
	a := s.lookup(env, in.A)
	if a.kind == latConst {
		return constLat(f(a.c))
	}
	return a
}

// outTargets returns the successors execution can reach from the block's
// terminator under env: a constant-condition CondBr yields only its taken
// edge.
func (s *sccpState) outTargets(env []lat, t *ir.Instr) []ir.BlockID {
	switch t.Op {
	case ir.OpBr:
		return []ir.BlockID{t.TrueTarget}
	case ir.OpCondBr:
		if t.Resolved {
			return []ir.BlockID{t.TakenTarget()}
		}
		if cv := s.lookup(env, t.A); cv.kind == latConst {
			if cv.c != 0 {
				return []ir.BlockID{t.TrueTarget}
			}
			return []ir.BlockID{t.FalseTarget}
		}
		return []ir.BlockID{t.TrueTarget, t.FalseTarget}
	}
	return nil
}

// sccp runs the propagation to a fixpoint and then rewrites proven-constant
// register uses to constant operands in place. It returns the number of
// rewritten operands.
func sccp(prog *ir.Program) int {
	crossIdx, numCross := classifyCross(prog)
	s := &sccpState{
		prog:       prog,
		crossIdx:   crossIdx,
		numCross:   numCross,
		width:      numCross + len(prog.Symbols),
		inEnv:      make([][]lat, len(prog.Blocks)),
		scratch:    make([]lat, prog.NumRegs),
		scratchGen: make([]int, prog.NumRegs),
	}
	s.inEnv[prog.Entry] = s.entryEnv()
	work := []ir.BlockID{prog.Entry}
	inWork := make([]bool, len(prog.Blocks))
	inWork[prog.Entry] = true
	env := make([]lat, s.width)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		blk := prog.Blocks[b]
		copy(env, s.inEnv[b])
		s.curGen++
		for i := range blk.Instrs {
			s.transfer(env, &blk.Instrs[i])
		}
		t := blk.Terminator()
		for _, succ := range s.outTargets(env, t) {
			if s.inEnv[succ] == nil {
				s.inEnv[succ] = append([]lat(nil), env...)
			} else {
				changed := false
				dst := s.inEnv[succ]
				for i := range dst {
					m := meet(dst[i], env[i])
					if m != dst[i] {
						dst[i] = m
						changed = true
					}
				}
				if !changed {
					continue
				}
			}
			if !inWork[succ] {
				inWork[succ] = true
				work = append(work, succ)
			}
		}
	}

	// Rewrite: in every executed block, replace register uses whose lattice
	// value is a constant. The transfer re-runs with post-rewrite operands,
	// which yields the same lattice values.
	folded := 0
	for _, blk := range prog.Blocks {
		if s.inEnv[blk.ID] == nil {
			continue
		}
		copy(env, s.inEnv[blk.ID])
		s.curGen++
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			eachUse(in, func(v *ir.Value) {
				if lv := s.read(env, v.Reg); lv.kind == latConst {
					*v = ir.ConstVal(lv.c)
					folded++
				}
			})
			s.transfer(env, in)
		}
	}
	return folded
}
