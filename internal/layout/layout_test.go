package layout

import (
	"testing"

	"specabsint/internal/ir"
)

func progWithSymbols(t *testing.T) *ir.Program {
	t.Helper()
	bd := ir.NewBuilder("p")
	bd.AddSymbol("x", 4, 1, false, nil)     // scalar int
	bd.AddSymbol("arr", 4, 64, false, nil)  // 256 bytes = 4 lines of 64B
	bd.AddSymbol("c", 1, 1, false, nil)     // scalar char
	bd.AddSymbol("big", 1, 130, false, nil) // 130 bytes = 3 lines (spans boundary)
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Ret(ir.ConstVal(0))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPaperConfig(t *testing.T) {
	c := PaperConfig()
	if c.Lines() != 512 || c.SizeBytes() != 32*1024 {
		t.Errorf("paper config: %d lines, %d bytes", c.Lines(), c.SizeBytes())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{LineSize: 0, NumSets: 1, Assoc: 1},
		{LineSize: 64, NumSets: 0, Assoc: 1},
		{LineSize: 63, NumSets: 1, Assoc: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestLineAlignedLayout(t *testing.T) {
	prog := progWithSymbols(t)
	l, err := New(prog, CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range prog.Symbols {
		if l.Base[s.ID]%64 != 0 {
			t.Errorf("symbol %s base %d not line-aligned", s.Name, l.Base[s.ID])
		}
	}
	// Distinct symbols must not share blocks.
	seen := map[BlockID]string{}
	for _, s := range prog.Symbols {
		first, n := l.BlockRange(s.ID)
		for i := 0; i < n; i++ {
			b := first + BlockID(i)
			if other, dup := seen[b]; dup {
				t.Errorf("block %d shared by %s and %s", b, other, s.Name)
			}
			seen[b] = s.Name
		}
	}
}

func TestBlockRanges(t *testing.T) {
	prog := progWithSymbols(t)
	l, err := New(prog, CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8})
	if err != nil {
		t.Fatal(err)
	}
	arr := prog.SymbolByName("arr")
	if _, n := l.BlockRange(arr.ID); n != 4 {
		t.Errorf("arr spans %d blocks, want 4", n)
	}
	big := prog.SymbolByName("big")
	if _, n := l.BlockRange(big.ID); n != 3 {
		t.Errorf("big spans %d blocks, want 3", n)
	}
	x := prog.SymbolByName("x")
	if _, n := l.BlockRange(x.ID); n != 1 {
		t.Errorf("x spans %d blocks, want 1", n)
	}
}

func TestBlockOfElem(t *testing.T) {
	prog := progWithSymbols(t)
	l, err := New(prog, CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8})
	if err != nil {
		t.Fatal(err)
	}
	arr := prog.SymbolByName("arr")
	first, _ := l.BlockRange(arr.ID)
	// Elements 0..15 are in the first line (4B each, 64B lines).
	if got := l.BlockOfElem(arr.ID, 0); got != first {
		t.Errorf("elem 0 in block %d, want %d", got, first)
	}
	if got := l.BlockOfElem(arr.ID, 15); got != first {
		t.Errorf("elem 15 in block %d, want %d", got, first)
	}
	if got := l.BlockOfElem(arr.ID, 16); got != first+1 {
		t.Errorf("elem 16 in block %d, want %d", got, first+1)
	}
}

func TestBlockRangeOfElems(t *testing.T) {
	prog := progWithSymbols(t)
	l, err := New(prog, CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8})
	if err != nil {
		t.Fatal(err)
	}
	arr := prog.SymbolByName("arr")
	first, _ := l.BlockRange(arr.ID)
	b, n := l.BlockRangeOfElems(arr.ID, 0, 15)
	if b != first || n != 1 {
		t.Errorf("elems 0..15 -> (%d,%d), want (%d,1)", b, n, first)
	}
	b, n = l.BlockRangeOfElems(arr.ID, 10, 40)
	if b != first || n != 3 {
		t.Errorf("elems 10..40 -> (%d,%d), want (%d,3)", b, n, first)
	}
	// Clamping: out-of-bounds interval covers the whole symbol.
	b, n = l.BlockRangeOfElems(arr.ID, -5, 1000)
	if b != first || n != 4 {
		t.Errorf("clamped range -> (%d,%d), want (%d,4)", b, n, first)
	}
}

func TestSetMapping(t *testing.T) {
	prog := progWithSymbols(t)
	l, err := New(prog, CacheConfig{LineSize: 64, NumSets: 4, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	arr := prog.SymbolByName("arr")
	first, n := l.BlockRange(arr.ID)
	sets := map[int]bool{}
	for i := 0; i < n; i++ {
		sets[l.SetOf(first+BlockID(i))] = true
	}
	if len(sets) != 4 {
		t.Errorf("4 consecutive blocks map to %d sets, want 4", len(sets))
	}
}

func TestBlockName(t *testing.T) {
	prog := progWithSymbols(t)
	l, err := New(prog, CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8})
	if err != nil {
		t.Fatal(err)
	}
	x := prog.SymbolByName("x")
	fx, _ := l.BlockRange(x.ID)
	if got := l.BlockName(fx); got != "x" {
		t.Errorf("scalar block name = %q, want x", got)
	}
	arr := prog.SymbolByName("arr")
	fa, _ := l.BlockRange(arr.ID)
	if got := l.BlockName(fa + 1); got != "arr[2*]" {
		t.Errorf("array block name = %q, want arr[2*]", got)
	}
	if s := l.SymbolOfBlock(fa); s == nil || s.Name != "arr" {
		t.Errorf("SymbolOfBlock = %v", s)
	}
}
