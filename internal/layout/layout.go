// Package layout assigns memory addresses to program symbols and maps them
// onto cache blocks and cache sets. The default placement mirrors the
// paper's setup: every symbol starts on its own cache-line boundary, so
// distinct scalars occupy distinct lines and arrays span consecutive lines.
package layout

import (
	"fmt"

	"specabsint/internal/ir"
)

// CacheConfig describes the modeled data cache.
type CacheConfig struct {
	LineSize int // bytes per line
	NumSets  int // 1 for a fully-associative cache
	Assoc    int // ways per set; lines total = NumSets * Assoc
}

// PaperConfig returns the configuration used throughout the paper's
// experiments: 512 lines of 64 bytes, fully associative, LRU.
func PaperConfig() CacheConfig {
	return CacheConfig{LineSize: 64, NumSets: 1, Assoc: 512}
}

// Lines returns the total number of cache lines.
func (c CacheConfig) Lines() int { return c.NumSets * c.Assoc }

// SizeBytes returns the total cache capacity.
func (c CacheConfig) SizeBytes() int { return c.Lines() * c.LineSize }

// Validate checks the configuration for plausibility.
func (c CacheConfig) Validate() error {
	if c.LineSize <= 0 || c.NumSets <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("layout: cache dimensions must be positive, got %+v", c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("layout: line size %d is not a power of two", c.LineSize)
	}
	return nil
}

// String formats the configuration compactly.
func (c CacheConfig) String() string {
	shape := "fully-assoc"
	if c.NumSets > 1 {
		shape = fmt.Sprintf("%d-set/%d-way", c.NumSets, c.Assoc)
	}
	return fmt.Sprintf("%d lines x %dB (%s)", c.Lines(), c.LineSize, shape)
}

// BlockID identifies a memory block (an address range of one cache line).
type BlockID int

// Layout holds the address assignment for a program's symbols.
type Layout struct {
	Config CacheConfig
	Prog   *ir.Program
	// Base[sym] is the symbol's starting byte address.
	Base []int64
	// NumBlocks is one past the largest block id in use.
	NumBlocks int
}

// New lays out every symbol of prog on line-size boundaries, in declaration
// order starting at address 0.
func New(prog *ir.Program, cfg CacheConfig) (*Layout, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Layout{Config: cfg, Prog: prog, Base: make([]int64, len(prog.Symbols))}
	addr := int64(0)
	line := int64(cfg.LineSize)
	for _, s := range prog.Symbols {
		// Align to a line boundary so each symbol begins a fresh line.
		addr = (addr + line - 1) / line * line
		l.Base[s.ID] = addr
		addr += int64(s.SizeBytes())
	}
	end := (addr + line - 1) / line
	l.NumBlocks = int(end)
	if l.NumBlocks == 0 {
		l.NumBlocks = 1
	}
	return l, nil
}

// BlockOfAddr returns the block containing the byte address.
func (l *Layout) BlockOfAddr(addr int64) BlockID {
	return BlockID(addr / int64(l.Config.LineSize))
}

// AddrOfElem returns the byte address of sym[elem].
func (l *Layout) AddrOfElem(sym ir.SymbolID, elem int64) int64 {
	s := l.Prog.Symbol(sym)
	return l.Base[sym] + elem*int64(s.ElemSize)
}

// BlockOfElem returns the block holding sym[elem].
func (l *Layout) BlockOfElem(sym ir.SymbolID, elem int64) BlockID {
	return l.BlockOfAddr(l.AddrOfElem(sym, elem))
}

// BlockRange returns the first block of sym and the number of blocks the
// symbol spans.
func (l *Layout) BlockRange(sym ir.SymbolID) (BlockID, int) {
	s := l.Prog.Symbol(sym)
	first := l.BlockOfAddr(l.Base[sym])
	last := l.BlockOfAddr(l.Base[sym] + int64(s.SizeBytes()) - 1)
	return first, int(last-first) + 1
}

// BlockRangeOfElems returns the blocks touched by sym[lo..hi] (inclusive
// element bounds, clamped to the symbol).
func (l *Layout) BlockRangeOfElems(sym ir.SymbolID, lo, hi int64) (BlockID, int) {
	s := l.Prog.Symbol(sym)
	if lo < 0 {
		lo = 0
	}
	if hi >= int64(s.Len) {
		hi = int64(s.Len) - 1
	}
	if hi < lo {
		return l.BlockOfElem(sym, 0), 1
	}
	first := l.BlockOfElem(sym, lo)
	last := l.BlockOfElem(sym, hi)
	return first, int(last-first) + 1
}

// SetOf returns the cache set a block maps to.
func (l *Layout) SetOf(b BlockID) int { return int(b) % l.Config.NumSets }

// SetSpan returns the span of set's blocks within a dense per-block vector:
// blocks map to sets round-robin (SetOf above), so set s owns exactly the
// indices {s, s+NumSets, s+2·NumSets, …}. The per-set views of the cache
// domain (filtered joins, per-set-group state stitching) iterate these spans
// rather than re-deriving the mapping.
func (l *Layout) SetSpan(set int) (start, stride int) { return set, l.Config.NumSets }

// BlockName renders a block id as symbol[line-offset] for diagnostics,
// matching the paper's decis_lev[1*] style.
func (l *Layout) BlockName(b BlockID) string {
	addr := int64(b) * int64(l.Config.LineSize)
	for _, s := range l.Prog.Symbols {
		base := l.Base[s.ID]
		if addr >= base && addr < base+int64(s.SizeBytes()) {
			first, n := l.BlockRange(s.ID)
			if n == 1 {
				return s.Name
			}
			return fmt.Sprintf("%s[%d*]", s.Name, int(b-first)+1)
		}
	}
	return fmt.Sprintf("block%d", b)
}

// AddrToElem maps a byte address back to the symbol and element containing
// it. ok is false when the address falls outside every symbol's storage
// (padding between line-aligned symbols, or beyond the address space).
// Wrong-path (speculative) out-of-bounds accesses use this to model real
// hardware, which reads whatever memory sits at the computed address
// instead of faulting — the Spectre v1 ingredient.
func (l *Layout) AddrToElem(addr int64) (sym ir.SymbolID, elem int64, ok bool) {
	for _, s := range l.Prog.Symbols {
		base := l.Base[s.ID]
		if addr >= base && addr < base+int64(s.SizeBytes()) {
			return s.ID, (addr - base) / int64(s.ElemSize), true
		}
	}
	return 0, 0, false
}

// AddressSpaceEnd returns one past the last mapped byte address.
func (l *Layout) AddressSpaceEnd() int64 {
	return int64(l.NumBlocks) * int64(l.Config.LineSize)
}

// SymbolOfBlock returns the symbol whose storage includes block b, or nil.
func (l *Layout) SymbolOfBlock(b BlockID) *ir.Symbol {
	addr := int64(b) * int64(l.Config.LineSize)
	for _, s := range l.Prog.Symbols {
		base := l.Base[s.ID]
		if addr >= base && addr < base+int64(s.SizeBytes()) {
			return s
		}
	}
	return nil
}
