package layout

import "specabsint/internal/ir"

// InstrBytes is the modeled size of one instruction in code memory
// (RISC-style fixed-width encoding).
const InstrBytes = 4

// CodeLayout lays the program's instructions out in code memory and returns
// a layout over the *code* address space plus the code block of every
// instruction (indexed by instruction id). The paper notes its technique
// "can be extended to the instruction cache as well" (§3.2); fetching an
// instruction touches its code block exactly like a load touches a data
// block, and wrong-path fetches pollute the instruction cache the same way.
//
// Basic blocks are placed sequentially in id order, each starting on an
// instruction boundary (not a line boundary — straight-line code spans
// lines, which is what makes the i-cache analysis interesting).
func CodeLayout(prog *ir.Program, cfg CacheConfig) (*Layout, []BlockID, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	blocks := make([]BlockID, prog.NumInstrs)
	addr := int64(0)
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			blocks[b.Instrs[i].ID] = BlockID(addr / int64(cfg.LineSize))
			addr += InstrBytes
		}
	}
	n := int((addr + int64(cfg.LineSize) - 1) / int64(cfg.LineSize))
	if n == 0 {
		n = 1
	}
	l := &Layout{
		Config:    cfg,
		Prog:      prog,
		Base:      make([]int64, len(prog.Symbols)),
		NumBlocks: n,
	}
	return l, blocks, nil
}
