package bytecode

import (
	"fmt"

	"specabsint/internal/interp"
	"specabsint/internal/ir"
)

// stepFn executes one specialized instruction against a state.
type stepFn func(m *Machine, s *interp.State) error

// Machine is the bytecode-compiled concrete executor: it runs interp.State
// states with semantics identical to interp.Machine — same hook firing
// points, same error values, same operand and fault rules — but each
// instruction is pre-specialized into a closure at build time, so the step
// loop performs one indirect call instead of a switch over ir.Op with
// operand re-decoding.
//
// Hooks and ResolveOOB are read at execution time through the machine, so
// the simulator can swap them per wrong-path excursion exactly as it does
// with the interpreter.
type Machine struct {
	Prog       *ir.Program
	Hooks      interp.Hooks
	ResolveOOB func(sym ir.SymbolID, elem int64) (ir.SymbolID, int64, bool)

	code [][]stepFn // indexed by block id, then instruction index
}

// NewMachine compiles prog into a closure-array executor.
func NewMachine(prog *ir.Program) *Machine {
	m := &Machine{Prog: prog}
	m.code = make([][]stepFn, len(prog.Blocks))
	for _, b := range prog.Blocks {
		fns := make([]stepFn, len(b.Instrs))
		for i := range b.Instrs {
			fns[i] = compileInstr(&b.Instrs[i])
		}
		m.code[b.ID] = fns
	}
	return m
}

// SetHooks installs the execution observers (the stepper contract shared
// with interp.Machine).
func (m *Machine) SetHooks(h interp.Hooks) { m.Hooks = h }

// SetResolveOOB installs the wrong-path out-of-bounds redirection.
func (m *Machine) SetResolveOOB(f func(ir.SymbolID, int64) (ir.SymbolID, int64, bool)) {
	m.ResolveOOB = f
}

// NewState builds the initial state exactly like interp.Machine.NewState.
func (m *Machine) NewState() *interp.State {
	return interp.NewMachine(m.Prog).NewState()
}

// CurrentInstr returns the instruction the state is about to execute, or nil
// when the state is done.
func (m *Machine) CurrentInstr(s *interp.State) *ir.Instr {
	if s.Done {
		return nil
	}
	b := m.Prog.Block(s.Block)
	return &b.Instrs[s.IP]
}

// Step executes exactly one instruction, advancing the state.
func (m *Machine) Step(s *interp.State) error {
	if s.Done {
		return fmt.Errorf("bytecode: step after completion")
	}
	fn := m.code[s.Block][s.IP]
	s.Steps++
	return fn(m, s)
}

// operand specializes an ir.Value read: a constant closes over its value, a
// register reads the state's register file.
func operand(v ir.Value) func(s *interp.State) int64 {
	if v.IsConst {
		c := v.Const
		return func(*interp.State) int64 { return c }
	}
	r := v.Reg
	return func(s *interp.State) int64 { return s.Regs[r] }
}

// compileInstr specializes one instruction into a step closure. Every case
// mirrors interp.Machine.Step byte for byte: hook order (OnMem before the
// memory effect, OnBranch before the jump), resolved-branch shortcutting,
// and fault behaviour are unchanged.
func compileInstr(in *ir.Instr) stepFn {
	switch in.Op {
	case ir.OpNop, ir.OpFence:
		// A fence is architecturally a no-op; its speculation-killing effect
		// lives in the speculative simulator and the abstract engine.
		return func(_ *Machine, s *interp.State) error {
			s.IP++
			return nil
		}
	case ir.OpConst, ir.OpMov:
		dst, a := in.Dst, operand(in.A)
		return func(_ *Machine, s *interp.State) error {
			s.Regs[dst] = a(s)
			s.IP++
			return nil
		}
	case ir.OpNeg:
		dst, a := in.Dst, operand(in.A)
		return func(_ *Machine, s *interp.State) error {
			s.Regs[dst] = -a(s)
			s.IP++
			return nil
		}
	case ir.OpNot:
		dst, a := in.Dst, operand(in.A)
		return func(_ *Machine, s *interp.State) error {
			s.Regs[dst] = ^a(s)
			s.IP++
			return nil
		}
	case ir.OpBool:
		dst, a := in.Dst, operand(in.A)
		return func(_ *Machine, s *interp.State) error {
			if a(s) != 0 {
				s.Regs[dst] = 1
			} else {
				s.Regs[dst] = 0
			}
			s.IP++
			return nil
		}
	case ir.OpLoad:
		instr, dst, idx := in, in.Dst, operand(in.Idx)
		return func(m *Machine, s *interp.State) error {
			symID, elem, err := m.resolveAccess(instr, idx(s))
			if err != nil {
				return err
			}
			if m.Hooks.OnMem != nil {
				m.Hooks.OnMem(instr, symID, elem, false)
			}
			s.Regs[dst] = s.Mem[symID][elem]
			s.IP++
			return nil
		}
	case ir.OpStore:
		instr, a, idx := in, operand(in.A), operand(in.Idx)
		return func(m *Machine, s *interp.State) error {
			symID, elem, err := m.resolveAccess(instr, idx(s))
			if err != nil {
				return err
			}
			if m.Hooks.OnMem != nil {
				m.Hooks.OnMem(instr, symID, elem, true)
			}
			s.Mem[symID][elem] = a(s)
			s.IP++
			return nil
		}
	case ir.OpBr:
		target := in.TrueTarget
		return func(_ *Machine, s *interp.State) error {
			s.Block = target
			s.IP = 0
			return nil
		}
	case ir.OpCondBr:
		if in.Resolved {
			// The emitted program has an unconditional jump here: the
			// condition is not evaluated, the branch hook does not fire, and
			// even wrong-path (speculative) execution follows the taken edge.
			target := in.TakenTarget()
			return func(_ *Machine, s *interp.State) error {
				s.Block = target
				s.IP = 0
				return nil
			}
		}
		instr, a := in, operand(in.A)
		tt, ft := in.TrueTarget, in.FalseTarget
		return func(m *Machine, s *interp.State) error {
			taken := a(s) != 0
			if m.Hooks.OnBranch != nil {
				m.Hooks.OnBranch(instr, taken)
			}
			if taken {
				s.Block = tt
			} else {
				s.Block = ft
			}
			s.IP = 0
			return nil
		}
	case ir.OpRet:
		a := operand(in.A)
		return func(_ *Machine, s *interp.State) error {
			s.Ret = a(s)
			s.Done = true
			return nil
		}
	default:
		op, dst := in.Op, in.Dst
		a, b := operand(in.A), operand(in.B)
		return func(_ *Machine, s *interp.State) error {
			v, err := interp.EvalBinop(op, a(s), b(s))
			if err != nil {
				return err
			}
			s.Regs[dst] = v
			s.IP++
			return nil
		}
	}
}

// resolveAccess bounds-checks an access, consulting ResolveOOB for
// out-of-bounds element indices — interp.Machine.resolveAccess verbatim,
// including the error text.
func (m *Machine) resolveAccess(in *ir.Instr, elem int64) (ir.SymbolID, int64, error) {
	sym := m.Prog.Symbol(in.Sym)
	if elem >= 0 && elem < int64(sym.Len) {
		return in.Sym, elem, nil
	}
	if m.ResolveOOB != nil {
		if s2, e2, ok := m.ResolveOOB(in.Sym, elem); ok {
			return s2, e2, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: access %s[%d] (len %d)", interp.ErrOutOfBounds, sym.Name, elem, sym.Len)
}
