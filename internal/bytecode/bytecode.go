// Package bytecode compiles the analyzer's two interpretive hot loops into
// flat, pre-resolved forms executed without per-instruction dispatch through
// ir.Instr:
//
//   - the per-block cache-transfer sequence of the fixpoint engine (this
//     file): every Load/Store is resolved to its candidate cache blocks once,
//     at build time, and the engine's transfer, lane-walk, classification,
//     and depth-decision loops iterate a dense access-step slice instead of
//     re-walking b.Instrs with a map lookup per instruction;
//   - the concrete machine's fetch/execute step (machine.go): each
//     instruction is specialized into a closure, so stepping is one indirect
//     call instead of a switch over ir.Op plus operand re-decoding.
//
// Both forms are pure lowerings: they precompute what the tree-walking loops
// recompute, and change no join, widen, transfer, or hook order. The
// tree-walking paths stay selectable via ExecInterp for differential
// checking.
package bytecode

import (
	"fmt"

	"specabsint/internal/cache"
	"specabsint/internal/ir"
)

// ExecMode selects the execution engine for the fixpoint transfer loops and
// the concrete simulator core. Both modes compute identical results — the
// compiled form is a pure lowering — and the interpreted form is kept as a
// differential-testing reference and escape hatch, like the scheduler knob.
type ExecMode int

// Execution modes.
const (
	// ExecCompiled (the default) runs the bytecode-compiled forms.
	ExecCompiled ExecMode = iota
	// ExecInterp runs the original tree-walking loops over ir.Instr.
	ExecInterp
)

// String names the mode (the same names specanalyze -exec and the wire
// options accept).
func (m ExecMode) String() string {
	switch m {
	case ExecCompiled:
		return "compiled"
	case ExecInterp:
		return "interp"
	}
	return fmt.Sprintf("exec(%d)", int(m))
}

// AccessStep is one pre-resolved memory access within a block: the
// instruction, its index in the block, and its candidate cache blocks.
type AccessStep struct {
	In  *ir.Instr
	Pos int // instruction index within the block
	Acc cache.Access
}

// BlockCode is the compiled transfer program of one basic block.
//
// Arch lists every memory access in order with its architectural (in-bounds)
// resolution; fences do not truncate it, because a fence is architecturally a
// no-op. Spec lists the accesses a wrong-path lane can execute — the
// wrong-path (OOB-extended) resolutions, truncated at the block's first
// fence, since no lane survives past it. A lane entering the block with
// budget B executes Spec step s iff B >= s.Pos+1, exactly the tree-walking
// loop's per-instruction budget decrement.
type BlockCode struct {
	Arch []AccessStep
	Spec []AccessStep
	// FenceIdx is the instruction index of the block's first fence, -1 when
	// the block has none. A lane whose budget strictly exceeds FenceIdx hits
	// the fence (FencesHit accounting); at or below it, the budget expires
	// first.
	FenceIdx int
	// NumInstrs is len(b.Instrs): the budget a lane consumes crossing the
	// whole block.
	NumInstrs int
}

// Program is the compiled analysis form of an ir.Program, indexed by block
// id. It is immutable after Compile and safe to share across the per-set
// partition engines: access steps carry unfiltered resolutions, and the
// domain's set filter is applied inside Transfer/Classify as always.
type Program struct {
	Blocks []BlockCode

	// Shape counters (reported through obs.BytecodeStats).
	ArchSteps    int
	SpecSteps    int
	FencedBlocks int
}

// Compile lowers prog's transfer loops against the given access resolutions
// (the engine's dataAccessMaps output: instruction id to candidate blocks,
// architectural and wrong-path).
func Compile(prog *ir.Program, access, accessSpec map[int]cache.Access) *Program {
	p := &Program{Blocks: make([]BlockCode, len(prog.Blocks))}
	for _, b := range prog.Blocks {
		bc := BlockCode{FenceIdx: -1, NumInstrs: len(b.Instrs)}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpFence && bc.FenceIdx < 0 {
				bc.FenceIdx = i
			}
			acc, ok := access[in.ID]
			if !ok {
				continue
			}
			bc.Arch = append(bc.Arch, AccessStep{In: in, Pos: i, Acc: acc})
			// No wrong-path execution survives past the first fence, so
			// later accesses can never transfer speculatively.
			if bc.FenceIdx < 0 {
				bc.Spec = append(bc.Spec, AccessStep{In: in, Pos: i, Acc: accessSpec[in.ID]})
			}
		}
		p.ArchSteps += len(bc.Arch)
		p.SpecSteps += len(bc.Spec)
		if bc.FenceIdx >= 0 {
			p.FencedBlocks++
		}
		p.Blocks[b.ID] = bc
	}
	return p
}
