//go:build race

package experiments

// raceDetectorOn marks builds under `go test -race`. The full-corpus sweeps
// run an order of magnitude slower with the detector instrumenting every
// memory access; the heaviest ones are skipped there. The pool's concurrency
// is still raced end to end by internal/runner's tests (including a golden
// sweep over the whole WCET corpus) and by TestTable5Shape here.
const raceDetectorOn = true
