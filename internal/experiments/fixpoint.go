package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"specabsint/internal/bench"
	"specabsint/internal/bytecode"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/mitigate"
	"specabsint/internal/passes"
)

// FixpointBaseline records the seed engine's cost on the reference kernel,
// measured before the pooled fixpoint core landed (same kernel, same paper
// options, same container class). BENCH_fixpoint.json carries it next to the
// current numbers so the perf trajectory is visible in one file.
var FixpointBaseline = FixpointSample{
	NsPerOp:     324_000_000,
	AllocsPerOp: 191_184,
}

// FixpointSample is one measurement of the full speculative fixpoint.
type FixpointSample struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
}

// BenchMeta identifies the environment a benchmark report was produced in.
// Without it, ns/op entries recorded on different machines or toolchains are
// silently incomparable; with it, a regression can be told apart from a
// hardware change.
type BenchMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Commit is the VCS revision baked in by the Go toolchain (empty when the
	// binary was built outside version control); "-dirty" marks uncommitted
	// changes.
	Commit string `json:"commit,omitempty"`
	// Scheduler is the fixpoint scheduler the headline measurements ran
	// under ("wto" or "worklist"); the schedulers section below always
	// measures both, so this only disambiguates Now/WithPasses.
	Scheduler string `json:"scheduler,omitempty"`
	// Exec is the execution engine the headline measurements ran under
	// ("compiled" or "interp"); the exec section below always measures
	// both, so this only disambiguates Now/WithPasses.
	Exec string `json:"exec,omitempty"`
	// PassConfig lists the enabled analysis-preserving passes of the
	// measured pipeline configuration, in execution order.
	PassConfig []string `json:"pass_config,omitempty"`
}

// NewBenchMeta samples the current process's environment.
func NewBenchMeta() BenchMeta {
	m := BenchMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		modified := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Commit = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
		if m.Commit != "" && modified {
			m.Commit += "-dirty"
		}
	}
	return m
}

// FixpointReport is the machine-readable output of the fixpoint benchmark.
type FixpointReport struct {
	Kernel string `json:"kernel"`
	Rounds int    `json:"rounds"`
	// Meta records the environment the numbers were measured in.
	Meta BenchMeta `json:"meta"`
	// Now measures the engine on the raw lowered IR (passes off) — the same
	// configuration Baseline was recorded under, keeping the pre-pooling
	// comparison apples-to-apples across PRs.
	Now FixpointSample `json:"now"`
	// Baseline is the pre-pooling seed engine on the same kernel/options.
	Baseline FixpointSample `json:"baseline"`
	// AllocRatio is baseline allocs/op over current allocs/op (higher is
	// better; the PR's acceptance bar was >= 5).
	AllocRatio float64 `json:"alloc_ratio"`
	// WithPasses measures the same fixpoint on the pass-pipeline output
	// (SCCP + copy propagation + branch resolution + DCE): resolved branches
	// spawn no speculative colors, so the engine solves a smaller flow
	// system for byte-identical-or-tighter classifications.
	WithPasses FixpointSample `json:"with_passes"`
	// PassesSpeedup is Now ns/op over WithPasses ns/op (>= 1 means the
	// pipeline pays for itself; the transform runs once, the fixpoint many
	// iterations).
	PassesSpeedup float64 `json:"passes_speedup"`
	// PassesIterations is the transformed fixpoint's worklist block count,
	// next to Iterations for the untransformed one.
	PassesIterations int `json:"passes_iterations"`
	// ResolvedKernel shows the pipeline on the corpus kernel where branch
	// resolution fires hardest; g72 has no statically-decided branches, so
	// its speedup hovers at 1.0x and this is where the lane reduction pays.
	ResolvedKernel *ResolvedKernelDemo `json:"resolved_kernel,omitempty"`
	// Schedulers compares the fixpoint schedulers on the branch-heavy
	// corpus slice (see SchedulerSlice).
	Schedulers *SchedulerComparison `json:"schedulers,omitempty"`
	// Execs compares the bytecode-compiled engine against the tree-walking
	// interpreter on the loop-carrying corpus slice (see ExecSlice).
	Execs *ExecComparison `json:"execs,omitempty"`
	// Mitigation sweeps the fence synthesizer over the corpus: one row per
	// leak-reporting kernel, recording the synthesized fence count, the
	// residual, and the WCET overhead the repair costs.
	Mitigation *MitigationSummary `json:"mitigation,omitempty"`
	// StatesPooledPerOp counts scratch states served from the engine's free
	// list instead of the heap, per analysis.
	StatesPooledPerOp int `json:"states_pooled_per_op"`
	// Iterations is the fixpoint's worklist block count (a determinism
	// canary: it must not vary run to run).
	Iterations int `json:"iterations"`
}

// SchedulerSlice is the branch-heavy corpus slice the scheduler comparison
// measures: every corpus kernel whose simplified CFG retains loops after
// unrolling (where the WTO's stabilize-inner-first discipline can pay —
// deepest in adpcm, g72, jcphuff), plus the two large acyclic guard-chain
// kernels (jcmarker, susan) as break-even controls — on an acyclic CFG both
// schedulers degenerate to the same reverse-postorder drain, so anything but
// 1.0x there is measurement noise.
var SchedulerSlice = []string{
	"adpcm", "g72", "jcphuff", "layer3", "jdmarker", "gtk", "vga", "ocb",
	"jcmarker", "susan",
}

// SchedulerKernelRow compares the fixpoint schedulers on one kernel. All
// three arms run the shipped two-phase engine semantics except Legacy, which
// is the pre-WTO seed configuration (worklist order, uncertainty focusing
// off) kept for attribution: Worklist-vs-WTO isolates the scheduling win,
// Legacy-vs-WTO shows the whole trajectory.
type SchedulerKernelRow struct {
	Kernel string `json:"kernel"`
	// WTOComponents counts the hierarchical components of the kernel's WTO
	// (0 means the simplified CFG is loop-free).
	WTOComponents int `json:"wto_components"`
	// Legacy is the seed-equivalent ablation: worklist scheduler with the
	// uncertainty machinery disabled.
	Legacy FixpointSample `json:"legacy"`
	// Worklist and WTO are the shipped engine under each scheduler. On an
	// acyclic kernel (WTOComponents == 0) the engine routes both schedulers
	// through the same worklist code path, so the WTO arm reuses the
	// worklist measurement rather than re-timing identical code.
	Worklist FixpointSample `json:"worklist"`
	WTO      FixpointSample `json:"wto"`
	// SpeedupVsLegacy is Legacy ns/op over WTO ns/op: what the WTO schedule
	// and uncertainty focusing buy together over the seed engine.
	SpeedupVsLegacy float64 `json:"speedup_vs_legacy"`
	// SpeedupVsWorklist is Worklist ns/op over WTO ns/op: the scheduling
	// win alone, with the two-phase semantics held fixed.
	SpeedupVsWorklist float64 `json:"speedup_vs_worklist"`
	// Identical asserts the two shipped arms produced byte-identical
	// classifications (the tentpole equivalence guarantee); a false here is
	// an engine bug, not noise.
	Identical bool `json:"identical"`
}

// SchedulerComparison is the scheduler section of the fixpoint report.
type SchedulerComparison struct {
	Kernels []SchedulerKernelRow `json:"kernels"`
	// GeomeanSpeedup is the geometric mean of the per-kernel
	// SpeedupVsLegacy figures — the headline WTO+uncertainty claim.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
	// GeomeanVsWorklist is the geometric mean of SpeedupVsWorklist.
	GeomeanVsWorklist float64 `json:"geomean_vs_worklist"`
}

// ExecSlice is the loop-carrying corpus slice the exec comparison measures:
// every corpus kernel whose simplified CFG retains loops after unrolling.
// Loop blocks are transferred once per fixpoint iteration, so they are where
// the compiled form's flat access-step replay (no per-instruction dispatch
// on ir.Instr kinds) pays; acyclic kernels amortize the compile over a
// single sweep and hover near break-even.
var ExecSlice = []string{
	"adpcm", "g72", "jcphuff", "layer3", "jdmarker", "gtk", "vga", "ocb",
}

// ExecKernelRow compares the execution engines on one kernel: the same
// shipped two-phase engine, once walking the IR tree (interp) and once
// replaying the bytecode-compiled access steps (compiled).
type ExecKernelRow struct {
	Kernel string `json:"kernel"`
	// Interp and Compiled time the identical analysis under each engine.
	Interp   FixpointSample `json:"interp"`
	Compiled FixpointSample `json:"compiled"`
	// SpeedupVsInterp is Interp ns/op over Compiled ns/op: what eliminating
	// the per-instruction dispatch buys, semantics held fixed.
	SpeedupVsInterp float64 `json:"speedup_vs_interp"`
	// Identical asserts the two arms produced byte-identical
	// classifications (the tentpole equivalence guarantee); a false here is
	// an engine bug, not noise.
	Identical bool `json:"identical"`
}

// ExecComparison is the execution-engine section of the fixpoint report.
type ExecComparison struct {
	Kernels []ExecKernelRow `json:"kernels"`
	// GeomeanSpeedup is the geometric mean of the per-kernel
	// SpeedupVsInterp figures — the headline compiled-engine claim.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// MitigationKernelRow is the fence synthesizer's outcome on one
// leak-reporting kernel.
type MitigationKernelRow struct {
	Kernel string `json:"kernel"`
	// BaselineLeaks / BaselineGadgets count the unfenced kernel's reported
	// cache timing leaks and Spectre transmission gadgets.
	BaselineLeaks   int `json:"baseline_leaks"`
	BaselineGadgets int `json:"baseline_gadgets"`
	// ResidualLeaks counts what survives the fence set; nonzero means the
	// remaining leaks are architectural (the classic analysis reports them
	// too) and no fence can remove them.
	ResidualLeaks int `json:"residual_leaks"`
	Fences        int `json:"fences"`
	// Analyses counts the re-analysis runs the greedy search spent.
	Analyses int `json:"analyses"`
	// BaselineWCET / MitigatedWCET are the architectural worst-case cycle
	// bounds; omitted when the kernel's CFG is cyclic (WCETBounded false).
	BaselineWCET  int64 `json:"baseline_wcet,omitempty"`
	MitigatedWCET int64 `json:"mitigated_wcet,omitempty"`
	WCETBounded   bool  `json:"wcet_bounded"`
	// OverheadPercent is the WCET cost of the repair; negative overhead is
	// real (killing speculation also removes wrong-path misses).
	OverheadPercent float64 `json:"overhead_percent"`
}

// MitigationSummary is the fence-synthesis section of the fixpoint report.
type MitigationSummary struct {
	// Kernels holds one row per corpus kernel (plus the paper's Fig. 2
	// example) on which the analysis reports at least one leak or gadget.
	Kernels []MitigationKernelRow `json:"kernels"`
	// FullyRepaired counts rows whose residual is zero.
	FullyRepaired int `json:"fully_repaired"`
}

// ResolvedKernelDemo is the pass pipeline measured on a kernel with
// statically-decided branches: every resolved branch removes two speculative
// lanes from the flow system the fixpoint has to solve.
type ResolvedKernelDemo struct {
	Kernel           string         `json:"kernel"`
	ResolvedBranches int            `json:"resolved_branches"`
	LanesBefore      int            `json:"lanes_before"`
	LanesAfter       int            `json:"lanes_after"`
	Off              FixpointSample `json:"off"`
	On               FixpointSample `json:"on"`
	Speedup          float64        `json:"speedup"`
}

// FixpointBench measures the full speculative fixpoint on the reference
// medium kernel (g72, paper options) and returns the report. rounds <= 0
// picks enough rounds for a stable median on a quiet machine. scheduler and
// exec drive the headline Now/WithPasses measurements; schedCompare adds the
// three-arm scheduler section over the branch-heavy slice, execCompare the
// compiled-vs-interp section over the loop-carrying slice.
func FixpointBench(rounds int, scheduler core.Scheduler, exec bytecode.ExecMode, schedCompare, execCompare bool) (*FixpointReport, error) {
	const kernel = "g72"
	b, ok := bench.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("fixpoint: kernel %q not in corpus", kernel)
	}
	prog, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	// Second compile of the same kernel for the pass pipeline: the transform
	// mutates the program in place, so the passes-off measurement needs its
	// own untouched copy.
	transformed, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	if _, err := passes.Run(transformed, passes.Default()); err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Scheduler = scheduler
	opts.Exec = exec

	// Warm-up runs, also the source of the pool and iteration counters.
	warm, err := core.Analyze(prog, opts)
	if err != nil {
		return nil, err
	}
	warmOn, err := core.Analyze(transformed, opts)
	if err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = 5
	}

	now, err := timeAnalyze(prog, opts, rounds)
	if err != nil {
		return nil, err
	}
	withPasses, err := timeAnalyze(transformed, opts, rounds)
	if err != nil {
		return nil, err
	}

	rep := &FixpointReport{
		Kernel:            kernel,
		Rounds:            rounds,
		Meta:              NewBenchMeta(),
		Now:               now,
		Baseline:          FixpointBaseline,
		WithPasses:        withPasses,
		PassesIterations:  warmOn.Iterations,
		StatesPooledPerOp: warm.PoolStats.Reused(),
		Iterations:        warm.Iterations,
	}
	if rep.Now.AllocsPerOp > 0 {
		rep.AllocRatio = float64(rep.Baseline.AllocsPerOp) / float64(rep.Now.AllocsPerOp)
	}
	if rep.WithPasses.NsPerOp > 0 {
		rep.PassesSpeedup = float64(rep.Now.NsPerOp) / float64(rep.WithPasses.NsPerOp)
	}
	rep.Meta.Scheduler = opts.Scheduler.String()
	rep.Meta.Exec = opts.Exec.String()
	rep.Meta.PassConfig = passNames(passes.Default())
	demo, err := resolvedKernelDemo(opts, rounds)
	if err != nil {
		return nil, err
	}
	rep.ResolvedKernel = demo
	mit, err := mitigationSummary()
	if err != nil {
		return nil, err
	}
	rep.Mitigation = mit
	if schedCompare {
		sched, err := schedulerComparison(rounds)
		if err != nil {
			return nil, err
		}
		rep.Schedulers = sched
	}
	if execCompare {
		execs, err := execComparison(rounds)
		if err != nil {
			return nil, err
		}
		rep.Execs = execs
	}
	return rep, nil
}

// passNames renders a pass configuration as the pipeline's execution order.
func passNames(o passes.Options) []string {
	var names []string
	if o.SCCP {
		names = append(names, "sccp")
	}
	if o.CopyProp {
		names = append(names, "copyprop")
	}
	if o.ResolveBranches {
		names = append(names, "resolve")
	}
	if o.DCE {
		names = append(names, "dce")
	}
	return names
}

// sameClassifications reports whether two analyses agreed on every
// architectural and speculative verdict (map printing is key-sorted, so the
// rendered forms are canonical).
func sameClassifications(a, b *core.Result) bool {
	return fmt.Sprint(a.Access) == fmt.Sprint(b.Access) &&
		fmt.Sprint(a.SpecAccess) == fmt.Sprint(b.SpecAccess)
}

// schedulerComparison measures the three scheduler arms over the
// branch-heavy slice: legacy (seed-equivalent single-pass worklist), and the
// shipped two-phase engine under each scheduler. The WTO arm's verdicts are
// checked byte-identical against the worklist arm's before timing anything —
// a speedup with different answers would be meaningless.
func schedulerComparison(rounds int) (*SchedulerComparison, error) {
	cmp := &SchedulerComparison{}
	var logLegacy, logWorklist float64
	for _, name := range SchedulerSlice {
		b, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("fixpoint: kernel %q not in corpus", name)
		}
		code := b.Code
		if b.Kind == bench.SideChannel {
			code = bench.WithClient(b, 4096)
		}
		prog, err := bench.Compile(code, 0)
		if err != nil {
			return nil, err
		}
		legacyOpts := core.DefaultOptions()
		legacyOpts.Scheduler = core.SchedulerWorklist
		legacyOpts.DisableUncertainty = true
		wlOpts := core.DefaultOptions()
		wlOpts.Scheduler = core.SchedulerWorklist
		wtoOpts := core.DefaultOptions()

		wtoRes, err := core.Analyze(prog, wtoOpts)
		if err != nil {
			return nil, err
		}
		wlRes, err := core.Analyze(prog, wlOpts)
		if err != nil {
			return nil, err
		}
		row := SchedulerKernelRow{
			Kernel:        name,
			WTOComponents: int(wtoRes.Stats.WTOComponents),
			Identical:     sameClassifications(wtoRes, wlRes),
		}
		optsList := []core.Options{legacyOpts, wlOpts, wtoOpts}
		if row.WTOComponents == 0 {
			// Acyclic kernel: the WTO degenerates to reverse postorder and the
			// engine routes both schedulers through the identical worklist
			// code path, so timing the arm twice would only measure noise.
			// Share the measured sample; the ratio is 1.0 by construction.
			optsList = optsList[:2]
		}
		arms, err := timeArms(prog, optsList, rounds)
		if err != nil {
			return nil, err
		}
		row.Legacy, row.Worklist = arms[0], arms[1]
		row.WTO = arms[1]
		if len(arms) > 2 {
			row.WTO = arms[2]
		}
		if row.WTO.NsPerOp > 0 {
			row.SpeedupVsLegacy = float64(row.Legacy.NsPerOp) / float64(row.WTO.NsPerOp)
			row.SpeedupVsWorklist = float64(row.Worklist.NsPerOp) / float64(row.WTO.NsPerOp)
			logLegacy += math.Log(row.SpeedupVsLegacy)
			logWorklist += math.Log(row.SpeedupVsWorklist)
		}
		cmp.Kernels = append(cmp.Kernels, row)
	}
	if n := float64(len(cmp.Kernels)); n > 0 {
		cmp.GeomeanSpeedup = math.Exp(logLegacy / n)
		cmp.GeomeanVsWorklist = math.Exp(logWorklist / n)
	}
	return cmp, nil
}

// execComparison measures the execution engines over the loop-carrying
// slice: the shipped engine once under the tree-walking interpreter and once
// under the bytecode-compiled replay. The compiled arm's verdicts are checked
// byte-identical against the interpreter's before timing anything — a
// speedup with different answers would be meaningless.
func execComparison(rounds int) (*ExecComparison, error) {
	cmp := &ExecComparison{}
	var logSpeedup float64
	for _, name := range ExecSlice {
		b, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("fixpoint: kernel %q not in corpus", name)
		}
		code := b.Code
		if b.Kind == bench.SideChannel {
			code = bench.WithClient(b, 4096)
		}
		prog, err := bench.Compile(code, 0)
		if err != nil {
			return nil, err
		}
		interpOpts := core.DefaultOptions()
		interpOpts.Exec = bytecode.ExecInterp
		compiledOpts := core.DefaultOptions()
		compiledOpts.Exec = bytecode.ExecCompiled

		compiledRes, err := core.Analyze(prog, compiledOpts)
		if err != nil {
			return nil, err
		}
		interpRes, err := core.Analyze(prog, interpOpts)
		if err != nil {
			return nil, err
		}
		row := ExecKernelRow{
			Kernel:    name,
			Identical: sameClassifications(compiledRes, interpRes),
		}
		arms, err := timeArms(prog, []core.Options{interpOpts, compiledOpts}, rounds)
		if err != nil {
			return nil, err
		}
		row.Interp, row.Compiled = arms[0], arms[1]
		if row.Compiled.NsPerOp > 0 {
			row.SpeedupVsInterp = float64(row.Interp.NsPerOp) / float64(row.Compiled.NsPerOp)
			logSpeedup += math.Log(row.SpeedupVsInterp)
		}
		cmp.Kernels = append(cmp.Kernels, row)
	}
	if n := float64(len(cmp.Kernels)); n > 0 {
		cmp.GeomeanSpeedup = math.Exp(logSpeedup / n)
	}
	return cmp, nil
}

// mitigationSummary sweeps the fence synthesizer over the corpus plus the
// paper's Fig. 2 example and records one row per kernel the analysis flags.
// SideChannel kernels get the standard 4 KiB client wrapper, matching the
// CLI drivers; clean kernels produce no row (the synthesizer is a no-op on
// them and their WCET is unchanged by construction).
func mitigationSummary() (*MitigationSummary, error) {
	type entry struct {
		name string
		code string
	}
	entries := []entry{{"fig2", bench.Fig2Program(-1)}}
	for _, b := range bench.All() {
		code := b.Code
		if b.Kind == bench.SideChannel {
			code = bench.WithClient(b, 4096)
		}
		entries = append(entries, entry{b.Name, code})
	}
	sum := &MitigationSummary{}
	for _, e := range entries {
		prog, err := bench.Compile(e.code, 0)
		if err != nil {
			return nil, fmt.Errorf("mitigation %s: %w", e.name, err)
		}
		res, err := mitigate.Synthesize(context.Background(), prog, mitigate.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("mitigation %s: %w", e.name, err)
		}
		if res.BaselineLeaks+res.BaselineGadgets == 0 {
			continue
		}
		row := MitigationKernelRow{
			Kernel:          e.name,
			BaselineLeaks:   res.BaselineLeaks,
			BaselineGadgets: res.BaselineGadgets,
			ResidualLeaks:   res.ResidualLeaks,
			Fences:          len(res.Fences),
			Analyses:        res.Analyses,
			WCETBounded:     res.WCETBounded,
			OverheadPercent: res.OverheadPercent,
		}
		if res.WCETBounded {
			row.BaselineWCET = res.BaselineWCET
			row.MitigatedWCET = res.MitigatedWCET
		}
		if row.ResidualLeaks == 0 {
			sum.FullyRepaired++
		}
		sum.Kernels = append(sum.Kernels, row)
	}
	return sum, nil
}

// resolvedKernelDemo measures the pipeline on jcmarker, the corpus kernel
// with the most statically-decided branches (guard chains against constant
// marker codes), where resolving them shrinks the speculative flow system.
func resolvedKernelDemo(opts core.Options, rounds int) (*ResolvedKernelDemo, error) {
	const kernel = "jcmarker"
	b, ok := bench.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("fixpoint: kernel %q not in corpus", kernel)
	}
	plain, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	transformed, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	lanesBefore := transformed.CondBranchCount() * 2
	res, err := passes.Run(transformed, passes.Default())
	if err != nil {
		return nil, err
	}
	demo := &ResolvedKernelDemo{
		Kernel:           kernel,
		ResolvedBranches: res.ResolvedBranches,
		LanesBefore:      lanesBefore,
		LanesAfter:       transformed.CondBranchCount() * 2,
	}
	if demo.Off, err = timeAnalyze(plain, opts, rounds); err != nil {
		return nil, err
	}
	if demo.On, err = timeAnalyze(transformed, opts, rounds); err != nil {
		return nil, err
	}
	if demo.On.NsPerOp > 0 {
		demo.Speedup = float64(demo.Off.NsPerOp) / float64(demo.On.NsPerOp)
	}
	return demo, nil
}

// timeArms times several option configurations over one program with their
// rounds interleaved (arm A round 1, arm B round 1, ..., arm A round 2, ...)
// and reports the per-arm median round. Interleaving means slow environment
// drift — turbo clocks, allocator growth, background load — lands on every
// arm equally instead of biasing whichever was measured last; the median
// drops the odd GC-hit round. Back-to-back sequential timings of
// near-identical arms were observed to differ by 6% from drift alone, which
// would swamp the scheduler deltas this section exists to resolve.
func timeArms(prog *ir.Program, optsList []core.Options, rounds int) ([]FixpointSample, error) {
	if rounds <= 0 {
		rounds = 5
	}
	ns := make([][]int64, len(optsList))
	allocs := make([]int64, len(optsList))
	bytes := make([]int64, len(optsList))
	var ms0, ms1 runtime.MemStats
	for r := 0; r < rounds; r++ {
		// Rotate the starting arm each round: with a fixed order, whichever
		// arm always runs first after the round's GC sees a systematically
		// smaller heap and measures a few percent fast.
		for k := 0; k < len(optsList); k++ {
			i := (r + k) % len(optsList)
			opts := optsList[i]
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			if _, err := core.Analyze(prog, opts); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			ns[i] = append(ns[i], elapsed.Nanoseconds())
			allocs[i] += int64(ms1.Mallocs - ms0.Mallocs)
			bytes[i] += int64(ms1.TotalAlloc - ms0.TotalAlloc)
		}
	}
	samples := make([]FixpointSample, len(optsList))
	for i := range samples {
		sort.Slice(ns[i], func(a, b int) bool { return ns[i][a] < ns[i][b] })
		samples[i] = FixpointSample{
			NsPerOp:     ns[i][len(ns[i])/2],
			AllocsPerOp: allocs[i] / int64(rounds),
			BytesPerOp:  bytes[i] / int64(rounds),
		}
	}
	return samples, nil
}

// timeAnalyze runs the fixpoint rounds times over one program and returns the
// per-op wall clock and allocation figures.
func timeAnalyze(prog *ir.Program, opts core.Options, rounds int) (FixpointSample, error) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := core.Analyze(prog, opts); err != nil {
			return FixpointSample{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return FixpointSample{
		NsPerOp:     elapsed.Nanoseconds() / int64(rounds),
		AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(rounds),
		BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(rounds),
	}, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *FixpointReport) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
