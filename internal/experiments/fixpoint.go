package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"specabsint/internal/bench"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/passes"
)

// FixpointBaseline records the seed engine's cost on the reference kernel,
// measured before the pooled fixpoint core landed (same kernel, same paper
// options, same container class). BENCH_fixpoint.json carries it next to the
// current numbers so the perf trajectory is visible in one file.
var FixpointBaseline = FixpointSample{
	NsPerOp:     324_000_000,
	AllocsPerOp: 191_184,
}

// FixpointSample is one measurement of the full speculative fixpoint.
type FixpointSample struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
}

// BenchMeta identifies the environment a benchmark report was produced in.
// Without it, ns/op entries recorded on different machines or toolchains are
// silently incomparable; with it, a regression can be told apart from a
// hardware change.
type BenchMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Commit is the VCS revision baked in by the Go toolchain (empty when the
	// binary was built outside version control); "-dirty" marks uncommitted
	// changes.
	Commit string `json:"commit,omitempty"`
}

// NewBenchMeta samples the current process's environment.
func NewBenchMeta() BenchMeta {
	m := BenchMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		modified := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Commit = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
		if m.Commit != "" && modified {
			m.Commit += "-dirty"
		}
	}
	return m
}

// FixpointReport is the machine-readable output of the fixpoint benchmark.
type FixpointReport struct {
	Kernel string `json:"kernel"`
	Rounds int    `json:"rounds"`
	// Meta records the environment the numbers were measured in.
	Meta BenchMeta `json:"meta"`
	// Now measures the engine on the raw lowered IR (passes off) — the same
	// configuration Baseline was recorded under, keeping the pre-pooling
	// comparison apples-to-apples across PRs.
	Now FixpointSample `json:"now"`
	// Baseline is the pre-pooling seed engine on the same kernel/options.
	Baseline FixpointSample `json:"baseline"`
	// AllocRatio is baseline allocs/op over current allocs/op (higher is
	// better; the PR's acceptance bar was >= 5).
	AllocRatio float64 `json:"alloc_ratio"`
	// WithPasses measures the same fixpoint on the pass-pipeline output
	// (SCCP + copy propagation + branch resolution + DCE): resolved branches
	// spawn no speculative colors, so the engine solves a smaller flow
	// system for byte-identical-or-tighter classifications.
	WithPasses FixpointSample `json:"with_passes"`
	// PassesSpeedup is Now ns/op over WithPasses ns/op (>= 1 means the
	// pipeline pays for itself; the transform runs once, the fixpoint many
	// iterations).
	PassesSpeedup float64 `json:"passes_speedup"`
	// PassesIterations is the transformed fixpoint's worklist block count,
	// next to Iterations for the untransformed one.
	PassesIterations int `json:"passes_iterations"`
	// ResolvedKernel shows the pipeline on the corpus kernel where branch
	// resolution fires hardest; g72 has no statically-decided branches, so
	// its speedup hovers at 1.0x and this is where the lane reduction pays.
	ResolvedKernel *ResolvedKernelDemo `json:"resolved_kernel,omitempty"`
	// StatesPooledPerOp counts scratch states served from the engine's free
	// list instead of the heap, per analysis.
	StatesPooledPerOp int `json:"states_pooled_per_op"`
	// Iterations is the fixpoint's worklist block count (a determinism
	// canary: it must not vary run to run).
	Iterations int `json:"iterations"`
}

// ResolvedKernelDemo is the pass pipeline measured on a kernel with
// statically-decided branches: every resolved branch removes two speculative
// lanes from the flow system the fixpoint has to solve.
type ResolvedKernelDemo struct {
	Kernel           string         `json:"kernel"`
	ResolvedBranches int            `json:"resolved_branches"`
	LanesBefore      int            `json:"lanes_before"`
	LanesAfter       int            `json:"lanes_after"`
	Off              FixpointSample `json:"off"`
	On               FixpointSample `json:"on"`
	Speedup          float64        `json:"speedup"`
}

// FixpointBench measures the full speculative fixpoint on the reference
// medium kernel (g72, paper options) and returns the report. rounds <= 0
// picks enough rounds for a stable median on a quiet machine.
func FixpointBench(rounds int) (*FixpointReport, error) {
	const kernel = "g72"
	b, ok := bench.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("fixpoint: kernel %q not in corpus", kernel)
	}
	prog, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	// Second compile of the same kernel for the pass pipeline: the transform
	// mutates the program in place, so the passes-off measurement needs its
	// own untouched copy.
	transformed, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	if _, err := passes.Run(transformed, passes.Default()); err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()

	// Warm-up runs, also the source of the pool and iteration counters.
	warm, err := core.Analyze(prog, opts)
	if err != nil {
		return nil, err
	}
	warmOn, err := core.Analyze(transformed, opts)
	if err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = 5
	}

	now, err := timeAnalyze(prog, opts, rounds)
	if err != nil {
		return nil, err
	}
	withPasses, err := timeAnalyze(transformed, opts, rounds)
	if err != nil {
		return nil, err
	}

	rep := &FixpointReport{
		Kernel:            kernel,
		Rounds:            rounds,
		Meta:              NewBenchMeta(),
		Now:               now,
		Baseline:          FixpointBaseline,
		WithPasses:        withPasses,
		PassesIterations:  warmOn.Iterations,
		StatesPooledPerOp: warm.PoolStats.Reused(),
		Iterations:        warm.Iterations,
	}
	if rep.Now.AllocsPerOp > 0 {
		rep.AllocRatio = float64(rep.Baseline.AllocsPerOp) / float64(rep.Now.AllocsPerOp)
	}
	if rep.WithPasses.NsPerOp > 0 {
		rep.PassesSpeedup = float64(rep.Now.NsPerOp) / float64(rep.WithPasses.NsPerOp)
	}
	demo, err := resolvedKernelDemo(opts, rounds)
	if err != nil {
		return nil, err
	}
	rep.ResolvedKernel = demo
	return rep, nil
}

// resolvedKernelDemo measures the pipeline on jcmarker, the corpus kernel
// with the most statically-decided branches (guard chains against constant
// marker codes), where resolving them shrinks the speculative flow system.
func resolvedKernelDemo(opts core.Options, rounds int) (*ResolvedKernelDemo, error) {
	const kernel = "jcmarker"
	b, ok := bench.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("fixpoint: kernel %q not in corpus", kernel)
	}
	plain, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	transformed, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	lanesBefore := transformed.CondBranchCount() * 2
	res, err := passes.Run(transformed, passes.Default())
	if err != nil {
		return nil, err
	}
	demo := &ResolvedKernelDemo{
		Kernel:           kernel,
		ResolvedBranches: res.ResolvedBranches,
		LanesBefore:      lanesBefore,
		LanesAfter:       transformed.CondBranchCount() * 2,
	}
	if demo.Off, err = timeAnalyze(plain, opts, rounds); err != nil {
		return nil, err
	}
	if demo.On, err = timeAnalyze(transformed, opts, rounds); err != nil {
		return nil, err
	}
	if demo.On.NsPerOp > 0 {
		demo.Speedup = float64(demo.Off.NsPerOp) / float64(demo.On.NsPerOp)
	}
	return demo, nil
}

// timeAnalyze runs the fixpoint rounds times over one program and returns the
// per-op wall clock and allocation figures.
func timeAnalyze(prog *ir.Program, opts core.Options, rounds int) (FixpointSample, error) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := core.Analyze(prog, opts); err != nil {
			return FixpointSample{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return FixpointSample{
		NsPerOp:     elapsed.Nanoseconds() / int64(rounds),
		AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(rounds),
		BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(rounds),
	}, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *FixpointReport) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
