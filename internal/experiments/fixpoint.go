package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"specabsint/internal/bench"
	"specabsint/internal/core"
)

// FixpointBaseline records the seed engine's cost on the reference kernel,
// measured before the pooled fixpoint core landed (same kernel, same paper
// options, same container class). BENCH_fixpoint.json carries it next to the
// current numbers so the perf trajectory is visible in one file.
var FixpointBaseline = FixpointSample{
	NsPerOp:     324_000_000,
	AllocsPerOp: 191_184,
}

// FixpointSample is one measurement of the full speculative fixpoint.
type FixpointSample struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
}

// FixpointReport is the machine-readable output of the fixpoint benchmark.
type FixpointReport struct {
	Kernel string         `json:"kernel"`
	Rounds int            `json:"rounds"`
	Now    FixpointSample `json:"now"`
	// Baseline is the pre-pooling seed engine on the same kernel/options.
	Baseline FixpointSample `json:"baseline"`
	// AllocRatio is baseline allocs/op over current allocs/op (higher is
	// better; the PR's acceptance bar was >= 5).
	AllocRatio float64 `json:"alloc_ratio"`
	// StatesPooledPerOp counts scratch states served from the engine's free
	// list instead of the heap, per analysis.
	StatesPooledPerOp int `json:"states_pooled_per_op"`
	// Iterations is the fixpoint's worklist block count (a determinism
	// canary: it must not vary run to run).
	Iterations int `json:"iterations"`
}

// FixpointBench measures the full speculative fixpoint on the reference
// medium kernel (g72, paper options) and returns the report. rounds <= 0
// picks enough rounds for a stable median on a quiet machine.
func FixpointBench(rounds int) (*FixpointReport, error) {
	const kernel = "g72"
	b, ok := bench.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("fixpoint: kernel %q not in corpus", kernel)
	}
	prog, err := bench.Compile(b.Code, 0)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()

	// Warm-up run, also the source of the pool and iteration counters.
	warm, err := core.Analyze(prog, opts)
	if err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = 5
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := core.Analyze(prog, opts); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	rep := &FixpointReport{
		Kernel: kernel,
		Rounds: rounds,
		Now: FixpointSample{
			NsPerOp:     elapsed.Nanoseconds() / int64(rounds),
			AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(rounds),
			BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(rounds),
		},
		Baseline:          FixpointBaseline,
		StatesPooledPerOp: warm.PoolStats.Reused(),
		Iterations:        warm.Iterations,
	}
	if rep.Now.AllocsPerOp > 0 {
		rep.AllocRatio = float64(rep.Baseline.AllocsPerOp) / float64(rep.Now.AllocsPerOp)
	}
	return rep, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *FixpointReport) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
