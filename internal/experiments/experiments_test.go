package experiments

import (
	"context"
	"strings"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/layout"
)

// quickSetup shrinks the analysis for fast tests while keeping the paper's
// cache geometry.
func quickSetup() Setup {
	return PaperSetup()
}

func TestTable3And4Statistics(t *testing.T) {
	t3 := Table3()
	if len(t3) != 10 {
		t.Fatalf("Table 3 has %d rows, want 10", len(t3))
	}
	t4 := Table4()
	if len(t4) != 10 {
		t.Fatalf("Table 4 has %d rows, want 10", len(t4))
	}
	for _, r := range append(t3, t4...) {
		if r.LoC <= 0 || r.Origin == "" {
			t.Errorf("row %s incomplete: %+v", r.Name, r)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(context.Background(), quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Table 5 has %d rows, want 10", len(rows))
	}
	moreMisses := 0
	specTotal, baseTotal := 0, 0
	for _, r := range rows {
		// The paper's headline: the speculative analysis reports more
		// potential misses. Per-row the counts may dip by a hair below the
		// baseline — widening points depend on the growth sequence, and the
		// two analyses iterate differently — so allow a tiny slack here;
		// actual soundness is asserted against the concrete machine in
		// internal/core's property tests.
		if r.SpecMiss < r.NonSpecMiss-2 {
			t.Errorf("%s: spec misses %d far below non-spec %d",
				r.Name, r.SpecMiss, r.NonSpecMiss)
		}
		if r.SpecMiss > r.NonSpecMiss {
			moreMisses++
		}
		specTotal += r.SpecMiss
		baseTotal += r.NonSpecMiss
		if r.Branches <= 0 {
			t.Errorf("%s: no branches recorded", r.Name)
		}
		if r.Iterations <= 0 {
			t.Errorf("%s: no iterations recorded", r.Name)
		}
	}
	// The paper's Table 5 has equal rows too (jcphuff 12=12, vga 4=4);
	// require a clear majority of strictly-more rows and a higher total.
	if moreMisses < 5 {
		t.Errorf("speculation adds misses on only %d/10 benchmarks; expected a majority", moreMisses)
	}
	if specTotal <= baseTotal {
		t.Errorf("total spec misses %d not above baseline %d", specTotal, baseTotal)
	}
}

func TestTable6Shape(t *testing.T) {
	if raceDetectorOn {
		t.Skip("full-corpus strategy sweep is too slow under the race detector; raced via internal/runner")
	}
	rows, err := Table6(context.Background(), quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Table 6 has %d rows, want 10", len(rows))
	}
	jitNotWorse := 0
	for _, r := range rows {
		// Just-in-time merging is at least as precise as merge-at-rollback
		// on most benchmarks (the paper reports occasional exceptions in
		// #SpMiss but JIT winning overall).
		if r.JITMiss <= r.RollbackMiss {
			jitNotWorse++
		}
	}
	if jitNotWorse < 7 {
		t.Errorf("JIT at least as precise on only %d/10 benchmarks", jitNotWorse)
	}
}

// TestTable7PaperShape is the headline side-channel reproduction: the same
// five kernels as the paper leak under the speculative analysis only, and
// des leaks even with a zero-size client buffer.
func TestTable7PaperShape(t *testing.T) {
	if raceDetectorOn {
		t.Skip("crypto corpus sweep is too slow under the race detector; raced via internal/runner")
	}
	if testing.Short() {
		t.Skip("table 7 sweep is expensive")
	}
	rows, err := Table7(context.Background(), quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	wantLeak := map[string]bool{
		"hash": true, "encoder": true, "chacha20": true, "ocb": true,
		"des": true,
		"aes": false, "str2key": false, "seed": false, "camellia": false,
		"salsa": false,
	}
	for _, r := range rows {
		if r.NonSpecLeak {
			t.Errorf("%s: non-speculative analysis reported a leak (paper: never)", r.Name)
		}
		if r.SpecLeak != wantLeak[r.Name] {
			t.Errorf("%s: speculative leak = %v, want %v (buffer %d)",
				r.Name, r.SpecLeak, wantLeak[r.Name], r.BufferBytes)
		}
		if r.Name == "des" && r.SpecLeak && r.BufferBytes != 0 {
			t.Errorf("des should leak at buffer size 0, got %d", r.BufferBytes)
		}
	}
}

func TestFig2Experiment(t *testing.T) {
	res, err := Fig2(quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if !res.NonSpecAlwaysHit {
		t.Error("baseline should prove ph[k] always-hit")
	}
	if res.SpecAlwaysHit {
		t.Error("speculative analysis must not prove ph[k] always-hit")
	}
	// Fig. 3 concrete counts.
	if res.NonSpecMisses != 512 || res.NonSpecHits != 1 {
		t.Errorf("non-spec trace: %d misses %d hits, want 512/1",
			res.NonSpecMisses, res.NonSpecHits)
	}
	if res.SpecMisses != 513 || res.SpecSpMisses != 1 {
		t.Errorf("spec trace: %d misses %d spec-misses, want 513/1",
			res.SpecMisses, res.SpecSpMisses)
	}
}

func TestDepthAblation(t *testing.T) {
	if raceDetectorOn {
		t.Skip("full-corpus depth ablation is too slow under the race detector; raced via internal/runner")
	}
	rows, err := DepthAblation(context.Background(), quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	// §6.2: bounding the depth removes speculative behaviours, so the
	// bounded analysis tends to report fewer misses. (It is a tendency, not
	// a theorem: widening points are iteration-order dependent, so isolated
	// benchmarks can deviate — the paper also reports it as an accuracy
	// improvement in aggregate.)
	notWorse, boundedTotal, unboundedTotal := 0, 0, 0
	for _, r := range rows {
		if r.BoundedMiss <= r.UnboundedMiss {
			notWorse++
		}
		boundedTotal += r.BoundedMiss
		unboundedTotal += r.UnboundedMiss
	}
	if notWorse < 7 {
		t.Errorf("bounded analysis no worse on only %d/10 benchmarks", notWorse)
	}
	if boundedTotal > unboundedTotal+unboundedTotal/20 {
		t.Errorf("bounded total misses %d exceed unbounded %d by more than 5%%",
			boundedTotal, unboundedTotal)
	}
}

func TestFindLeakThresholdOnFig2LikeKernel(t *testing.T) {
	b, ok := bench.ByName("hash")
	if !ok {
		t.Fatal("hash missing")
	}
	size, found, err := FindLeakThreshold(context.Background(), b, quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("hash must have a speculation-only leak window")
	}
	if size <= 0 || size > layout.PaperConfig().SizeBytes() {
		t.Errorf("threshold %d out of range", size)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"name", "n"}, [][]string{{"a", "1"}, {"bench", "22"}})
	if !strings.Contains(out, "name") || !strings.Contains(out, "bench") {
		t.Errorf("bad table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}
