package experiments

import (
	"context"
	"testing"
)

func TestGeometrySweepShape(t *testing.T) {
	rows, err := GeometrySweep(context.Background(), "g72", []int{4, 16, 64, 256}, quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	gapSomewhere := false
	for i, r := range rows {
		if r.SpecMiss < r.NonSpecMiss-2 {
			t.Errorf("lines=%d: spec %d far below non-spec %d", r.Lines, r.SpecMiss, r.NonSpecMiss)
		}
		if r.SpecMiss > r.NonSpecMiss {
			gapSomewhere = true
		}
		// Bigger caches never create more baseline misses.
		if i > 0 && r.NonSpecMiss > rows[i-1].NonSpecMiss {
			t.Errorf("non-spec misses grew from %d to %d when the cache grew",
				rows[i-1].NonSpecMiss, r.NonSpecMiss)
		}
	}
	if !gapSomewhere {
		t.Error("no cache size shows a speculation gap")
	}
}

func TestGeometrySweepUnknownBench(t *testing.T) {
	if _, err := GeometrySweep(context.Background(), "nope", []int{8}, quickSetup()); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestICacheTableShape(t *testing.T) {
	if raceDetectorOn {
		t.Skip("full-corpus i-cache sweep is too slow under the race detector; raced via internal/runner")
	}
	// A modest speculation window keeps the 10-benchmark i-cache sweep
	// fast; the shape is the same as with the paper's 200.
	setup := quickSetup()
	setup.DepthMiss = 60
	setup.DepthHit = 20
	rows, err := ICacheTable(context.Background(), 16, setup)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	addsSomewhere := false
	for _, r := range rows {
		if r.Fetches <= 0 {
			t.Errorf("%s: no fetches", r.Name)
		}
		if r.SpecMiss < r.NonSpecMiss-2 {
			t.Errorf("%s: spec fetch misses %d far below non-spec %d",
				r.Name, r.SpecMiss, r.NonSpecMiss)
		}
		if r.SpecMiss > r.NonSpecMiss {
			addsSomewhere = true
		}
	}
	if !addsSomewhere {
		t.Error("speculation never adds instruction-cache misses")
	}
}
