package experiments

import (
	"fmt"

	"specabsint/internal/bench"
	"specabsint/internal/core"
	"specabsint/internal/layout"
)

// GeomRow is one point of the cache-geometry sweep: potential miss counts
// under both analyses for one cache size.
type GeomRow struct {
	Lines       int
	NonSpecMiss int
	SpecMiss    int
	SpecSpMiss  int
}

// GeometrySweep regenerates the figure-style ablation: how the gap between
// the classic and the speculation-aware analysis varies with cache capacity
// on one benchmark. Small caches thrash either way; very large caches
// absorb the wrong-path pollution; the speculative analysis matters most in
// between — the regime the paper's 512-line configuration sits in.
func GeometrySweep(benchName string, lineCounts []int, setup Setup) ([]GeomRow, error) {
	b, ok := bench.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	prog, err := bench.Compile(b.Code, setup.MaxUnroll)
	if err != nil {
		return nil, err
	}
	var rows []GeomRow
	for _, lines := range lineCounts {
		cfg := layout.CacheConfig{LineSize: setup.Cache.LineSize, NumSets: 1, Assoc: lines}
		opts := setup.options(false)
		opts.Cache = cfg
		base, err := core.Analyze(prog, opts)
		if err != nil {
			return nil, err
		}
		opts = setup.options(true)
		opts.Cache = cfg
		spec, err := core.Analyze(prog, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GeomRow{
			Lines:       lines,
			NonSpecMiss: base.MissCount(),
			SpecMiss:    spec.MissCount(),
			SpecSpMiss:  spec.SpecMissCount(),
		})
	}
	return rows, nil
}

// ICacheRow is one line of the instruction-cache extension experiment.
type ICacheRow struct {
	Name        string
	Fetches     int
	NonSpecMiss int
	SpecMiss    int
	SpecSpMiss  int
}

// ICacheTable runs the §3.2 extension — the same speculative analysis over
// the instruction cache — on the WCET suite.
func ICacheTable(lines int, setup Setup) ([]ICacheRow, error) {
	var rows []ICacheRow
	for _, b := range bench.WCETBenchmarks() {
		prog, err := bench.Compile(b.Code, setup.MaxUnroll)
		if err != nil {
			return nil, err
		}
		cfg := layout.CacheConfig{LineSize: setup.Cache.LineSize, NumSets: 1, Assoc: lines}
		opts := setup.options(false)
		opts.Cache = cfg
		base, err := core.AnalyzeInstructionCache(prog, opts)
		if err != nil {
			return nil, err
		}
		opts = setup.options(true)
		opts.Cache = cfg
		spec, err := core.AnalyzeInstructionCache(prog, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ICacheRow{
			Name:        b.Name,
			Fetches:     spec.AccessCount(),
			NonSpecMiss: base.MissCount(),
			SpecMiss:    spec.MissCount(),
			SpecSpMiss:  spec.SpecMissCount(),
		})
	}
	return rows, nil
}
