package experiments

import (
	"context"
	"fmt"

	"specabsint/internal/bench"
	"specabsint/internal/layout"
	"specabsint/internal/runner"
)

// GeomRow is one point of the cache-geometry sweep: potential miss counts
// under both analyses for one cache size.
type GeomRow struct {
	Lines       int
	NonSpecMiss int
	SpecMiss    int
	SpecSpMiss  int
}

// GeometrySweep regenerates the figure-style ablation: how the gap between
// the classic and the speculation-aware analysis varies with cache capacity
// on one benchmark. Small caches thrash either way; very large caches
// absorb the wrong-path pollution; the speculative analysis matters most in
// between — the regime the paper's 512-line configuration sits in.
//
// The benchmark is compiled once; the analyses (one pair per geometry) are
// independent and share the compiled program across the pool's workers.
func GeometrySweep(ctx context.Context, benchName string, lineCounts []int, setup Setup) ([]GeomRow, error) {
	b, ok := bench.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	prog, err := bench.Compile(b.Code, setup.MaxUnroll)
	if err != nil {
		return nil, err
	}
	var jobs []runner.Job
	for _, lines := range lineCounts {
		cfg := layout.CacheConfig{LineSize: setup.Cache.LineSize, NumSets: 1, Assoc: lines}
		for _, speculative := range []bool{false, true} {
			opts := setup.options(speculative)
			opts.Cache = cfg
			jobs = append(jobs, runner.Job{
				Name: fmt.Sprintf("%s@%d/spec=%v", b.Name, lines, speculative),
				Prog: prog,
				Opts: opts,
			})
		}
	}
	results, err := collect(setup.pool().RunAll(ctx, jobs))
	if err != nil {
		return nil, err
	}
	rows := make([]GeomRow, 0, len(lineCounts))
	for i, lines := range lineCounts {
		base, spec := results[2*i], results[2*i+1]
		rows = append(rows, GeomRow{
			Lines:       lines,
			NonSpecMiss: base.Analysis.MissCount(),
			SpecMiss:    spec.Analysis.MissCount(),
			SpecSpMiss:  spec.Analysis.SpecMissCount(),
		})
	}
	return rows, nil
}

// ICacheRow is one line of the instruction-cache extension experiment.
type ICacheRow struct {
	Name        string
	Fetches     int
	NonSpecMiss int
	SpecMiss    int
	SpecSpMiss  int
}

// ICacheTable runs the §3.2 extension — the same speculative analysis over
// the instruction cache — on the WCET suite, batched on the setup's pool.
func ICacheTable(ctx context.Context, lines int, setup Setup) ([]ICacheRow, error) {
	benches := bench.WCETBenchmarks()
	cfg := layout.CacheConfig{LineSize: setup.Cache.LineSize, NumSets: 1, Assoc: lines}
	var jobs []runner.Job
	for _, b := range benches {
		for _, speculative := range []bool{false, true} {
			opts := setup.options(speculative)
			opts.Cache = cfg
			j := setup.job(fmt.Sprintf("%s/icache/spec=%v", b.Name, speculative), b.Code, opts)
			j.Mode = runner.ModeICache
			jobs = append(jobs, j)
		}
	}
	results, err := collect(setup.pool().RunAll(ctx, jobs))
	if err != nil {
		return nil, err
	}
	rows := make([]ICacheRow, 0, len(benches))
	for i, b := range benches {
		base, spec := results[2*i], results[2*i+1]
		rows = append(rows, ICacheRow{
			Name:        b.Name,
			Fetches:     spec.Analysis.AccessCount(),
			NonSpecMiss: base.Analysis.MissCount(),
			SpecMiss:    spec.Analysis.MissCount(),
			SpecSpMiss:  spec.Analysis.SpecMissCount(),
		})
	}
	return rows, nil
}
