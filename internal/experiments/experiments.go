// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the MiniC corpus: Table 3/4 (benchmark statistics),
// Table 5 (non-speculative vs speculative execution-time estimation),
// Table 6 (merge strategies), Table 7 (side-channel detection), the Fig. 2/3
// motivating example, and the §6.2/§6.3 ablations. The cmd/specbench binary
// and the repository's bench_test.go both drive this package.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"specabsint/internal/bench"
	"specabsint/internal/cache"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/machine"
	"specabsint/internal/runner"
)

// Setup fixes the experimental configuration (the paper's §7 defaults).
type Setup struct {
	Cache     layout.CacheConfig
	DepthMiss int
	DepthHit  int
	MaxUnroll int
	// Workers caps the sweep concurrency; 0 uses GOMAXPROCS.
	Workers int
	// Pool, when non-nil, is the shared batch engine (worker pool plus
	// compiled-program cache) the sweeps run on. Sharing one pool across
	// tables lets a full specbench run lower each benchmark exactly once.
	Pool *runner.Pool
}

// pool returns the shared batch engine, creating a private one on demand.
func (s Setup) pool() *runner.Pool {
	if s.Pool != nil {
		return s.Pool
	}
	return runner.New(s.Workers)
}

// PaperSetup returns the configuration used in the paper: 512 lines x 64 B,
// LRU, speculation windows 200 (miss) / 20 (hit).
func PaperSetup() Setup {
	return Setup{
		Cache:     layout.PaperConfig(),
		DepthMiss: 200,
		DepthHit:  20,
		MaxUnroll: 4096,
	}
}

func (s Setup) options(speculative bool) core.Options {
	o := core.DefaultOptions()
	o.Cache = s.Cache
	o.DepthMiss = s.DepthMiss
	o.DepthHit = s.DepthHit
	o.Speculative = speculative
	return o
}

// StatRow is one line of Table 3 / Table 4.
type StatRow struct {
	Name        string
	Origin      string
	Description string
	LoC         int
}

// Table3 returns the WCET benchmark statistics.
func Table3() []StatRow { return statRows(bench.WCETBenchmarks()) }

// Table4 returns the side-channel benchmark statistics.
func Table4() []StatRow { return statRows(bench.CryptoBenchmarks()) }

func statRows(list []bench.Benchmark) []StatRow {
	rows := make([]StatRow, 0, len(list))
	for _, b := range list {
		rows = append(rows, StatRow{b.Name, b.Origin, b.Description, b.LoC()})
	}
	return rows
}

// Table5Row compares the non-speculative and speculative analyses on one
// WCET benchmark (Table 5 columns).
type Table5Row struct {
	Name        string
	NonSpecTime time.Duration
	NonSpecMiss int
	SpecTime    time.Duration
	SpecMiss    int
	SpecSpMiss  int
	Branches    int
	Iterations  int
}

// Table5 regenerates the execution-time estimation comparison. The per-
// benchmark (non-speculative, speculative) analysis pairs run concurrently
// on the setup's pool; rows come back in corpus order regardless of which
// worker finished first.
func Table5(ctx context.Context, setup Setup) ([]Table5Row, error) {
	benches := bench.WCETBenchmarks()
	var jobs []runner.Job
	for _, b := range benches {
		jobs = append(jobs, setup.job(b.Name+"/nonspec", b.Code, setup.options(false)))
		jobs = append(jobs, setup.job(b.Name+"/spec", b.Code, setup.options(true)))
	}
	results, err := collect(setup.pool().RunAll(ctx, jobs))
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, 0, len(benches))
	for i, b := range benches {
		base, spec := results[2*i], results[2*i+1]
		rows = append(rows, Table5Row{
			Name:        b.Name,
			Branches:    spec.Analysis.Branches,
			NonSpecTime: base.Elapsed,
			NonSpecMiss: base.Analysis.MissCount(),
			SpecTime:    spec.Elapsed,
			SpecMiss:    spec.Analysis.MissCount(),
			SpecSpMiss:  spec.Analysis.SpecMissCount(),
			Iterations:  spec.Analysis.Iterations,
		})
	}
	return rows, nil
}

// job builds a pool job for one benchmark source under one option set.
func (s Setup) job(name, code string, opts core.Options) runner.Job {
	return runner.Job{Name: name, Source: code, MaxUnroll: s.MaxUnroll, Opts: opts}
}

// collect fails a whole sweep on the first per-job error — the experiment
// tables are all-or-nothing — while keeping the job-order determinism of
// RunAll.
func collect(results []runner.Result) ([]runner.Result, error) {
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return results, nil
}

// Table6Row compares merge strategies on one benchmark (Table 6 columns).
type Table6Row struct {
	Name           string
	RollbackTime   time.Duration
	RollbackMiss   int
	RollbackSpMiss int
	RollbackIter   int
	JITTime        time.Duration
	JITMiss        int
	JITSpMiss      int
	JITIter        int
}

// Table6 regenerates the merging-strategy comparison (Fig. 6d vs Fig. 6c).
// Thanks to the pool's compile cache, each benchmark is lowered once and
// analyzed under both strategies concurrently.
func Table6(ctx context.Context, setup Setup) ([]Table6Row, error) {
	benches := bench.WCETBenchmarks()
	var jobs []runner.Job
	for _, b := range benches {
		rbOpts := setup.options(true)
		rbOpts.Strategy = core.StrategyMergeAtRollback
		jitOpts := setup.options(true)
		jitOpts.Strategy = core.StrategyJustInTime
		jobs = append(jobs, setup.job(b.Name+"/rollback", b.Code, rbOpts))
		jobs = append(jobs, setup.job(b.Name+"/jit", b.Code, jitOpts))
	}
	results, err := collect(setup.pool().RunAll(ctx, jobs))
	if err != nil {
		return nil, err
	}
	rows := make([]Table6Row, 0, len(benches))
	for i, b := range benches {
		rb, jit := results[2*i], results[2*i+1]
		rows = append(rows, Table6Row{
			Name:           b.Name,
			RollbackTime:   rb.Elapsed,
			RollbackMiss:   rb.Analysis.MissCount(),
			RollbackSpMiss: rb.Analysis.SpecMissCount(),
			RollbackIter:   rb.Analysis.Iterations,
			JITTime:        jit.Elapsed,
			JITMiss:        jit.Analysis.MissCount(),
			JITSpMiss:      jit.Analysis.SpecMissCount(),
			JITIter:        jit.Analysis.Iterations,
		})
	}
	return rows, nil
}

// Table7Row is one line of the side-channel comparison.
type Table7Row struct {
	Name        string
	BufferBytes int
	NonSpecTime time.Duration
	NonSpecLeak bool
	SpecTime    time.Duration
	SpecLeak    bool
}

// Table7 regenerates the side-channel detection comparison. For each crypto
// kernel the client buffer size is swept (as in §7.3, from 32 KB down)
// until the two methods diverge; kernels with no diverging size are
// reported at the full 32 KB buffer.
func Table7(ctx context.Context, setup Setup) ([]Table7Row, error) {
	var rows []Table7Row
	for _, b := range bench.CryptoBenchmarks() {
		size, found, err := FindLeakThreshold(ctx, b, setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		if !found {
			size = setup.Cache.SizeBytes()
		}
		row, err := table7At(ctx, b, size, setup)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table7At(ctx context.Context, b bench.Benchmark, bufBytes int, setup Setup) (Table7Row, error) {
	line := setup.Cache.LineSize
	v, elapsed, err := probeSizes(ctx, b, setup, []int{(bufBytes + line - 1) / line})
	if err != nil {
		return Table7Row{}, err
	}
	return Table7Row{
		Name:        b.Name,
		BufferBytes: bufBytes,
		NonSpecTime: elapsed[0].non,
		NonSpecLeak: v[0].non,
		SpecTime:    elapsed[0].spec,
		SpecLeak:    v[0].spec,
	}, nil
}

// probeVerdict is the (speculative, non-speculative) leak verdict at one
// buffer size.
type probeVerdict struct{ spec, non bool }

type probeTiming struct{ spec, non time.Duration }

// probeSizes analyzes the benchmark's client at each buffer size (in cache
// lines) under both analyses, fanning the 2*len(sizes) jobs out on the
// setup's pool. Verdicts come back indexed like sizes.
func probeSizes(ctx context.Context, b bench.Benchmark, setup Setup, sizes []int) ([]probeVerdict, []probeTiming, error) {
	line := setup.Cache.LineSize
	var jobs []runner.Job
	for _, s := range sizes {
		code := bench.WithClient(b, s*line)
		for _, speculative := range []bool{true, false} {
			j := setup.job(fmt.Sprintf("%s@%dL/spec=%v", b.Name, s, speculative),
				code, setup.options(speculative))
			j.Mode = runner.ModeSideChannel
			jobs = append(jobs, j)
		}
	}
	results, err := collect(setup.pool().RunAll(ctx, jobs))
	if err != nil {
		return nil, nil, err
	}
	verdicts := make([]probeVerdict, len(sizes))
	timings := make([]probeTiming, len(sizes))
	for i := range sizes {
		spec, non := results[2*i], results[2*i+1]
		verdicts[i] = probeVerdict{spec: spec.Leaks.LeakDetected(), non: non.Leaks.LeakDetected()}
		timings[i] = probeTiming{spec: spec.Elapsed, non: non.Elapsed}
	}
	return verdicts, timings, nil
}

// FindLeakThreshold sweeps the client buffer size and returns the smallest
// size (in bytes) at which the speculative analysis reports a leak while the
// non-speculative analysis does not. found is false when no such size
// exists up to the cache capacity.
//
// The sweep is guided: the cache pressure at which a single mis-speculated
// line tips an S-box line out is where the architectural working set
// exactly fills the cache, so the expected threshold is (cache lines −
// working-set lines). A narrow scan around that estimate finds the exact
// point; a coarse full sweep is the fallback for kernels with unusual
// structure.
func FindLeakThreshold(ctx context.Context, b bench.Benchmark, setup Setup) (size int, found bool, err error) {
	line := setup.Cache.LineSize
	maxLines := setup.Cache.Lines()
	probeAll := func(sizes []int) ([]probeVerdict, error) {
		v, _, err := probeSizes(ctx, b, setup, sizes)
		return v, err
	}

	guess, err := workingSetLines(ctx, b, setup)
	if err != nil {
		return 0, false, err
	}
	// The minimal client already carries one buffer line; the window around
	// (cache − workingSet) covers layout rounding and the wrong-path lines.
	// The whole window is probed as one batch: the probes are independent,
	// and scanning the verdicts in ascending size order afterwards returns
	// the same threshold the serial scan did.
	center := maxLines - guess
	lo, hi := center-12, center+12
	if lo < 0 {
		lo = 0
	}
	if hi > maxLines {
		hi = maxLines
	}
	var window []int
	for s := lo; s <= hi; s++ {
		window = append(window, s)
	}
	verdicts, err := probeAll(window)
	if err != nil {
		return 0, false, err
	}
	for i, s := range window {
		if verdicts[i].spec && !verdicts[i].non {
			return s * line, true, nil
		}
	}
	// Fallback: binary search for the onset of the speculative leak.
	// Below the full-eviction regime the speculative verdict is monotone in
	// the buffer size, so the smallest leaking size is well-defined. The
	// probes here are inherently sequential (each depends on the previous
	// verdict), so they run one at a time.
	loS, hiS := 0, maxLines
	onset := -1
	for loS <= hiS {
		mid := (loS + hiS) / 2
		v, err := probeAll([]int{mid})
		if err != nil {
			return 0, false, err
		}
		if v[0].spec {
			onset = mid
			hiS = mid - 1
		} else {
			loS = mid + 1
		}
	}
	if onset < 0 {
		return 0, false, nil
	}
	// The window [spec onset, non-spec onset) may span a few lines; walk it
	// as one final batch.
	var tail []int
	for s := onset; s <= onset+8 && s <= maxLines; s++ {
		tail = append(tail, s)
	}
	verdicts, err = probeAll(tail)
	if err != nil {
		return 0, false, err
	}
	for i, s := range tail {
		if verdicts[i].spec && !verdicts[i].non {
			return s * line, true, nil
		}
	}
	return 0, false, nil
}

// workingSetLines estimates the distinct cache lines the client+kernel touch
// besides the attacker buffer, by compiling with a minimal buffer and
// collecting the candidate blocks of every architectural access.
func workingSetLines(ctx context.Context, b bench.Benchmark, setup Setup) (int, error) {
	prog, err := bench.Compile(bench.WithClient(b, 64), setup.MaxUnroll)
	if err != nil {
		return 0, err
	}
	res, err := core.AnalyzeContext(ctx, prog, setup.options(false))
	if err != nil {
		return 0, err
	}
	touched := map[layout.BlockID]bool{}
	for _, info := range res.Access {
		for i := 0; i < info.Acc.Count; i++ {
			touched[info.Acc.First+layout.BlockID(i)] = true
		}
	}
	// Subtract the minimal buffer's own line.
	buf := prog.SymbolByName("client_inBuf")
	first, n := res.Layout.BlockRange(buf.ID)
	for i := 0; i < n; i++ {
		delete(touched, first+layout.BlockID(i))
	}
	return len(touched), nil
}

// Fig2Result replays the motivating example both abstractly and concretely.
type Fig2Result struct {
	// Abstract verdicts for the final ph[k] access.
	NonSpecAlwaysHit bool
	SpecAlwaysHit    bool
	// Concrete trace counts (Fig. 3).
	NonSpecMisses int64
	NonSpecHits   int64
	SpecMisses    int64
	SpecSpMisses  int64
}

// Fig2 regenerates the Fig. 2/3 motivating example.
func Fig2(setup Setup) (*Fig2Result, error) {
	res := &Fig2Result{}

	// Abstract: symbolic secret k.
	prog, err := bench.Compile(bench.Fig2Program(-1), setup.MaxUnroll)
	if err != nil {
		return nil, err
	}
	final := lastLoadOf(prog, "ph")
	base, err := core.Analyze(prog, setup.options(false))
	if err != nil {
		return nil, err
	}
	if cls, ok := base.ClassOf(final.ID); ok {
		res.NonSpecAlwaysHit = cls == cache.AlwaysHit
	}
	spec, err := core.Analyze(prog, setup.options(true))
	if err != nil {
		return nil, err
	}
	if cls, ok := spec.ClassOf(final.ID); ok {
		res.SpecAlwaysHit = cls == cache.AlwaysHit
	}

	// Concrete: k = 0 (the evicted line).
	conc, err := bench.Compile(bench.Fig2Program(0), setup.MaxUnroll)
	if err != nil {
		return nil, err
	}
	cfg := machine.DefaultConfig()
	cfg.Cache = setup.Cache
	cfg.DepthMiss, cfg.DepthHit = 0, 0
	stats, err := machine.RunProgram(conc, cfg)
	if err != nil {
		return nil, err
	}
	res.NonSpecMisses, res.NonSpecHits = stats.Misses, stats.Hits

	cfg = machine.DefaultConfig()
	cfg.Cache = setup.Cache
	cfg.ForceMispredict = true
	cfg.DepthMiss, cfg.DepthHit = 3, 3
	stats, err = machine.RunProgram(conc, cfg)
	if err != nil {
		return nil, err
	}
	res.SpecMisses, res.SpecSpMisses = stats.Misses, stats.SpecMisses
	return res, nil
}

func lastLoadOf(prog *ir.Program, name string) *ir.Instr {
	sym := prog.SymbolByName(name)
	var last *ir.Instr
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpLoad && in.Sym == sym.ID {
				last = in
			}
		}
	}
	return last
}

// DepthRow is one line of the §6.2 dynamic-depth-bounding ablation.
type DepthRow struct {
	Name          string
	BoundedTime   time.Duration
	BoundedMiss   int
	BoundedIter   int
	UnboundedTime time.Duration
	UnboundedMiss int
	UnboundedIter int
}

// DepthAblation compares the speculative analysis with and without the
// §6.2 dynamic speculation-depth bounding, batched on the setup's pool.
func DepthAblation(ctx context.Context, setup Setup) ([]DepthRow, error) {
	benches := bench.WCETBenchmarks()
	var jobs []runner.Job
	for _, b := range benches {
		onOpts := setup.options(true)
		onOpts.DynamicDepthBounding = true
		offOpts := setup.options(true)
		offOpts.DynamicDepthBounding = false
		jobs = append(jobs, setup.job(b.Name+"/bounded", b.Code, onOpts))
		jobs = append(jobs, setup.job(b.Name+"/unbounded", b.Code, offOpts))
	}
	results, err := collect(setup.pool().RunAll(ctx, jobs))
	if err != nil {
		return nil, err
	}
	rows := make([]DepthRow, 0, len(benches))
	for i, b := range benches {
		on, off := results[2*i], results[2*i+1]
		rows = append(rows, DepthRow{
			Name:          b.Name,
			BoundedTime:   on.Elapsed,
			BoundedMiss:   on.Analysis.MissCount(),
			BoundedIter:   on.Analysis.Iterations,
			UnboundedTime: off.Elapsed,
			UnboundedMiss: off.Analysis.MissCount(),
			UnboundedIter: off.Analysis.Iterations,
		})
	}
	return rows, nil
}

// FormatTable renders rows of strings as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	underline := make([]string, len(header))
	for i := range header {
		underline[i] = strings.Repeat("-", widths[i])
	}
	writeRow(underline)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}
