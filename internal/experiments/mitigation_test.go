package experiments

import "testing"

// TestMitigationSummaryCorpus pins the acceptance claim of the mitigation
// sweep: every corpus kernel the analysis flags is fully repaired by the
// synthesizer (the two SideChannel kernels under the standard 4 KiB client
// wrapper), and the fig2 row keeps its bounded WCET. The honest-residual
// behavior (des at a 1 KiB buffer) is pinned in internal/mitigate's tests.
func TestMitigationSummaryCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide synthesis sweep (~8s)")
	}
	sum, err := mitigationSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Kernels) == 0 {
		t.Fatal("no leak-reporting kernels in the sweep")
	}
	if sum.FullyRepaired != len(sum.Kernels) {
		t.Errorf("fully repaired %d of %d rows", sum.FullyRepaired, len(sum.Kernels))
	}
	var fig2 *MitigationKernelRow
	for i := range sum.Kernels {
		row := &sum.Kernels[i]
		if row.ResidualLeaks != 0 {
			t.Errorf("%s: residual %d", row.Kernel, row.ResidualLeaks)
		}
		if row.Fences == 0 {
			t.Errorf("%s: repaired with zero fences", row.Kernel)
		}
		if row.Kernel == "fig2" {
			fig2 = row
		}
	}
	if fig2 == nil {
		t.Fatal("fig2 row missing")
	}
	if !fig2.WCETBounded || fig2.BaselineWCET <= 0 || fig2.MitigatedWCET <= 0 {
		t.Errorf("fig2 WCET bounds missing: %+v", *fig2)
	}
}
