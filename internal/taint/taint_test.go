package taint

import (
	"testing"

	"specabsint/internal/ir"
	"specabsint/internal/lower"
	"specabsint/internal/source"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(ast, lower.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func secretIndexedSyms(t *testing.T, prog *ir.Program, res *Result) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if res.IsSecretIndexed(in.ID) {
				out[prog.Symbol(in.Sym).Name] = true
			}
		}
	}
	return out
}

func TestDirectSecretIndex(t *testing.T) {
	prog := compile(t, `
		secret int key;
		int sbox[256];
		int main() { return sbox[key & 255]; }`)
	res := Analyze(prog)
	syms := secretIndexedSyms(t, prog, res)
	if !syms["sbox"] {
		t.Error("sbox access not flagged secret-indexed")
	}
}

func TestTaintThroughArithmetic(t *testing.T) {
	prog := compile(t, `
		secret int key;
		int tbl[64];
		int main() {
			int x = (key * 3 + 7) & 63;
			return tbl[x];
		}`)
	res := Analyze(prog)
	if !secretIndexedSyms(t, prog, res)["tbl"] {
		t.Error("taint lost through arithmetic and memory")
	}
}

func TestTaintThroughArrayContents(t *testing.T) {
	prog := compile(t, `
		secret int key;
		int scratch[8];
		int tbl[8];
		int main() {
			scratch[0] = key;
			return tbl[scratch[0] & 7];
		}`)
	res := Analyze(prog)
	if !secretIndexedSyms(t, prog, res)["tbl"] {
		t.Error("taint lost through array store/load")
	}
}

func TestNoFalseTaint(t *testing.T) {
	prog := compile(t, `
		secret int key;
		int pub;
		int tbl[8];
		int main() {
			int x = pub & 7;
			int unused = key;
			return tbl[x];
		}`)
	res := Analyze(prog)
	if secretIndexedSyms(t, prog, res)["tbl"] {
		t.Error("public index flagged as secret")
	}
}

func TestSecretBranchDetected(t *testing.T) {
	prog := compile(t, `
		secret int key;
		int a; int b;
		int main() {
			if (key > 0) { return a; }
			return b;
		}`)
	res := Analyze(prog)
	if len(res.SecretBranches) == 0 {
		t.Error("secret-dependent branch not detected")
	}
}

func TestConstIndexNeverTainted(t *testing.T) {
	prog := compile(t, `
		secret int key;
		int tbl[8];
		int main() { int x = key; return tbl[3]; }`)
	res := Analyze(prog)
	if len(res.SecretIndexed) != 0 {
		t.Error("constant index flagged")
	}
}

func TestSecretArraySource(t *testing.T) {
	prog := compile(t, `
		secret int keys[4];
		int tbl[16];
		int main() { return tbl[keys[0] & 15]; }`)
	res := Analyze(prog)
	if !secretIndexedSyms(t, prog, res)["tbl"] {
		t.Error("secret array contents not treated as taint source")
	}
}

func TestIndexRevealsThroughLoadedValue(t *testing.T) {
	// Loading tbl[key] taints the loaded value; using it as another index
	// keeps the second access tainted too.
	prog := compile(t, `
		secret int key;
		int t1[16]; int t2[16];
		int main() { return t2[t1[key & 15] & 15]; }`)
	res := Analyze(prog)
	syms := secretIndexedSyms(t, prog, res)
	if !syms["t1"] || !syms["t2"] {
		t.Errorf("chained secret lookups: %v", syms)
	}
}
