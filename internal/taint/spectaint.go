package taint

import (
	"specabsint/internal/interval"
	"specabsint/internal/ir"
)

// SpecResult holds the speculative-taint facts used for Spectre-v1 style
// leak detection. On a mis-speculated path a bounds check does not protect
// a load: the access reads whatever memory sits at the computed address, so
// its result may be *any* secret in the address space. A later access whose
// address depends on such a value transmits it through the cache.
type SpecResult struct {
	// OOBSources lists Load instructions whose index may exceed the
	// symbol's bounds on some (wrong) path.
	OOBSources []int
	// SpectreSinks lists memory accesses whose element index may depend on
	// a value obtained by an out-of-bounds (wrong-path) load — the
	// transmission gadgets.
	SpectreSinks []int
}

// IsSink reports whether the instruction id is a Spectre transmission sink.
func (r *SpecResult) IsSink(id int) bool {
	for _, x := range r.SpectreSinks {
		if x == id {
			return true
		}
	}
	return false
}

// AnalyzeSpeculative computes the speculative taint: loads that can read out
// of bounds on wrong paths become taint sources, and the taint propagates
// exactly like secret taint (flow-insensitively, covering speculative
// paths). idx supplies the index intervals; they are computed without
// branch-condition refinement, so "may exceed bounds" already accounts for
// mis-speculated guards.
func AnalyzeSpeculative(prog *ir.Program, idx *interval.Result) *SpecResult {
	res := &SpecResult{}
	tainted := make([]bool, prog.NumRegs)
	scalars := make([]bool, len(prog.Symbols))
	arrays := make([]bool, len(prog.Symbols))

	oob := func(in *ir.Instr) bool {
		sym := prog.Symbol(in.Sym)
		iv := idx.IndexOf(in)
		return iv.Lo < 0 || iv.Hi >= int64(sym.Len)
	}

	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpLoad && oob(in) {
				res.OOBSources = append(res.OOBSources, in.ID)
			}
		}
	}
	if len(res.OOBSources) == 0 {
		return res
	}
	oobSet := map[int]bool{}
	for _, id := range res.OOBSources {
		oobSet[id] = true
	}

	taintedVal := func(v ir.Value) bool { return !v.IsConst && tainted[v.Reg] }

	changed := true
	for changed {
		changed = false
		setReg := func(r ir.Reg, v bool) {
			if v && !tainted[r] {
				tainted[r] = true
				changed = true
			}
		}
		for _, b := range prog.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpConst:
				case ir.OpMov, ir.OpNeg, ir.OpNot, ir.OpBool:
					setReg(in.Dst, taintedVal(in.A))
				case ir.OpLoad:
					sym := prog.Symbol(in.Sym)
					src := oobSet[in.ID] // the OOB read itself is the source
					if sym.Len == 1 {
						src = src || scalars[in.Sym]
					} else {
						src = src || arrays[in.Sym]
					}
					setReg(in.Dst, src || taintedVal(in.Idx))
				case ir.OpStore:
					sym := prog.Symbol(in.Sym)
					if taintedVal(in.A) || taintedVal(in.Idx) {
						if sym.Len == 1 {
							if !scalars[in.Sym] {
								scalars[in.Sym] = true
								changed = true
							}
						} else if !arrays[in.Sym] {
							arrays[in.Sym] = true
							changed = true
						}
					}
				case ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpNop, ir.OpFence:
				default: // binops
					setReg(in.Dst, taintedVal(in.A) || taintedVal(in.B))
				}
			}
		}
	}

	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if (in.Op == ir.OpLoad || in.Op == ir.OpStore) && taintedVal(in.Idx) {
				res.SpectreSinks = append(res.SpectreSinks, in.ID)
			}
		}
	}
	return res
}
