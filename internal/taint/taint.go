// Package taint computes which values in an IR program depend on secrets
// (symbols declared with the `secret` qualifier). The side-channel detector
// combines this with the speculative cache analysis: a secret-dependent
// memory address whose hit/miss behaviour is not constant leaks timing
// information about the secret.
package taint

import (
	"specabsint/internal/ir"
)

// Result holds the taint facts for a program.
type Result struct {
	// Regs[r] reports whether virtual register r may carry secret data.
	Regs []bool
	// Scalars[sym] reports whether a scalar memory cell may hold secret
	// data; Arrays[sym] whether any element of an array may.
	Scalars []bool
	Arrays  []bool
	// SecretIndexed lists the ids of Load/Store instructions whose element
	// index may depend on a secret — the cache side-channel sources.
	SecretIndexed []int
	// SecretBranches lists CondBr instruction ids whose condition may
	// depend on a secret — control-flow timing channels (reported
	// separately; the cache analysis covers the data-cache channel).
	SecretBranches []int
}

// IsSecretIndexed reports whether the instruction id is a secret-indexed
// access.
func (r *Result) IsSecretIndexed(id int) bool {
	for _, x := range r.SecretIndexed {
		if x == id {
			return true
		}
	}
	return false
}

// Analyze propagates taint to a fixpoint. The analysis is flow-insensitive
// (a cell tainted anywhere is tainted everywhere), which over-approximates
// all executions including speculative ones — exactly what a sound leak
// detector needs.
func Analyze(prog *ir.Program) *Result {
	res := &Result{
		Regs:    make([]bool, prog.NumRegs),
		Scalars: make([]bool, len(prog.Symbols)),
		Arrays:  make([]bool, len(prog.Symbols)),
	}
	for _, s := range prog.Symbols {
		if !s.Secret {
			continue
		}
		if s.Len == 1 {
			res.Scalars[s.ID] = true
		} else {
			res.Arrays[s.ID] = true
		}
	}
	// `secret reg` declarations have no Symbol; the lowerer tags the
	// register directly.
	for _, r := range prog.SecretRegs {
		res.Regs[r] = true
	}

	tainted := func(v ir.Value) bool {
		return !v.IsConst && res.Regs[v.Reg]
	}

	changed := true
	for changed {
		changed = false
		setReg := func(r ir.Reg, v bool) {
			if v && !res.Regs[r] {
				res.Regs[r] = true
				changed = true
			}
		}
		for _, b := range prog.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpConst:
					// never tainted
				case ir.OpMov, ir.OpNeg, ir.OpNot, ir.OpBool:
					setReg(in.Dst, tainted(in.A))
				case ir.OpLoad:
					sym := prog.Symbol(in.Sym)
					src := false
					if sym.Len == 1 {
						src = res.Scalars[in.Sym]
					} else {
						src = res.Arrays[in.Sym]
					}
					// Loading via a tainted index also taints the value
					// (the value reveals the index).
					setReg(in.Dst, src || tainted(in.Idx))
				case ir.OpStore:
					sym := prog.Symbol(in.Sym)
					if tainted(in.A) || tainted(in.Idx) {
						if sym.Len == 1 {
							if !res.Scalars[in.Sym] {
								res.Scalars[in.Sym] = true
								changed = true
							}
						} else if !res.Arrays[in.Sym] {
							res.Arrays[in.Sym] = true
							changed = true
						}
					}
				case ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpNop, ir.OpFence:
					// no dataflow
				default: // binops
					setReg(in.Dst, tainted(in.A) || tainted(in.B))
				}
			}
		}
	}

	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				if tainted(in.Idx) {
					res.SecretIndexed = append(res.SecretIndexed, in.ID)
				}
			case ir.OpCondBr:
				if tainted(in.A) {
					res.SecretBranches = append(res.SecretBranches, in.ID)
				}
			}
		}
	}
	return res
}
