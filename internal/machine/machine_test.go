package machine

import (
	"fmt"
	"testing"

	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/lower"
	"specabsint/internal/source"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := lower.Lower(ast, lower.DefaultOptions())
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func TestCacheSimLRU(t *testing.T) {
	c := NewCacheSim(layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 3})
	if c.Access(1) {
		t.Error("first access should miss")
	}
	if !c.Access(1) {
		t.Error("second access should hit")
	}
	c.Access(2)
	c.Access(3) // cache: 3,2,1
	if c.AgeOf(3) != 1 || c.AgeOf(2) != 2 || c.AgeOf(1) != 3 {
		t.Errorf("ages: %d %d %d", c.AgeOf(3), c.AgeOf(2), c.AgeOf(1))
	}
	c.Access(4) // evicts 1
	if c.Contains(1) {
		t.Error("LRU block should be evicted")
	}
	if !c.Contains(2) || !c.Contains(3) || !c.Contains(4) {
		t.Error("younger blocks must survive")
	}
	// Re-access moves to front and prevents eviction.
	c.Access(2) // 2,4,3
	c.Access(5) // evicts 3
	if c.Contains(3) {
		t.Error("3 should be evicted")
	}
	if !c.Contains(2) {
		t.Error("refreshed block must survive")
	}
}

func TestCacheSimSets(t *testing.T) {
	c := NewCacheSim(layout.CacheConfig{LineSize: 64, NumSets: 2, Assoc: 1})
	c.Access(0) // set 0
	c.Access(1) // set 1
	if !c.Contains(0) || !c.Contains(1) {
		t.Error("different sets must not conflict")
	}
	c.Access(2) // set 0, evicts 0
	if c.Contains(0) {
		t.Error("same-set block should be evicted with assoc 1")
	}
	if !c.Contains(1) {
		t.Error("other set must be untouched")
	}
	if c.Occupancy() != 2 {
		t.Errorf("occupancy = %d, want 2", c.Occupancy())
	}
}

func TestCacheSimFlushAndClone(t *testing.T) {
	c := NewCacheSim(layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 4})
	c.Access(7)
	cl := c.Clone()
	c.Flush()
	if c.Contains(7) {
		t.Error("flush failed")
	}
	if !cl.Contains(7) {
		t.Error("clone must be independent")
	}
}

func TestTwoBitPredictor(t *testing.T) {
	p := NewTwoBit()
	if !p.Predict(1) {
		t.Error("initial state should be weakly taken")
	}
	p.Update(1, false)
	p.Update(1, false)
	if p.Predict(1) {
		t.Error("two not-taken outcomes should flip the prediction")
	}
	p.Update(1, true)
	if p.Predict(1) {
		t.Error("one taken from strong not-taken should stay not-taken")
	}
	p.Update(1, true)
	if !p.Predict(1) {
		t.Error("two takens should flip back")
	}
}

func TestGSharePredictorLearnsPattern(t *testing.T) {
	p := NewGShare(10)
	// Alternating pattern on one branch: gshare with history should learn
	// it almost perfectly after warm-up.
	correct := 0
	taken := false
	for i := 0; i < 400; i++ {
		taken = !taken
		if p.Predict(42) == taken {
			correct++
		}
		p.Update(42, taken)
	}
	if correct < 300 {
		t.Errorf("gshare learned %d/400 of an alternating pattern", correct)
	}
}

func TestAdversarialPredictor(t *testing.T) {
	p := NewAdversarial()
	p.Update(3, true)
	if p.Predict(3) {
		t.Error("adversarial must predict the opposite of the last outcome")
	}
}

func TestSimulatorStraightLine(t *testing.T) {
	prog := compile(t, `
	int a[32];
	int main() {
		int s = 0;
		for (int i = 0; i < 32; i++) { s += a[i]; }
		return s;
	}`)
	cfg := DefaultConfig()
	cfg.Cache = layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8}
	stats, err := RunProgram(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 32 ints = 2 blocks of a; plus scalar s and i: all touched repeatedly.
	if stats.Misses < 3 {
		t.Errorf("misses = %d, want >= 3 (cold blocks)", stats.Misses)
	}
	if stats.Hits == 0 {
		t.Error("expected hits on warm scalars")
	}
	if stats.Branches != 0 {
		t.Errorf("unrolled program has %d branches", stats.Branches)
	}
}

// fig2Src builds the paper's Fig. 2 program with the secret k fixed to a
// concrete value.
func fig2Src(k int) string {
	return fmt.Sprintf(`
	char ph[64*510];
	char l1[64]; char l2[64]; char p;
	int main() {
		reg int i; reg int tmp;
		reg int k;
		k = %d;
		for (i = 0; i < 64*510; i += 64) { tmp = ph[i]; }
		if (p == 0) { tmp = l1[0]; }
		else { tmp = l2[0]; }
		tmp = ph[k];
		return tmp;
	}`, k)
}

func TestFig3NonSpeculativeTrace(t *testing.T) {
	// Left-hand side of Fig. 3: 512 misses + 1 hit.
	prog := compile(t, fig2Src(0))
	cfg := DefaultConfig()
	cfg.DepthMiss = 0 // speculation disabled
	cfg.DepthHit = 0
	stats, err := RunProgram(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 512 {
		t.Errorf("misses = %d, want 512", stats.Misses)
	}
	if stats.Hits != 1 {
		t.Errorf("hits = %d, want 1 (ph[k])", stats.Hits)
	}
}

func TestFig3SpeculativeTrace(t *testing.T) {
	// Right-hand side of Fig. 3: mis-speculation loads the other branch's
	// line too; 513 observable misses plus 1 speculative miss = 514.
	prog := compile(t, fig2Src(0))
	cfg := DefaultConfig()
	cfg.ForceMispredict = true
	cfg.DepthMiss = 3 // the branch arm: load + mov + br (rollback boundary)
	cfg.DepthHit = 3
	stats, err := RunProgram(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 513 {
		t.Errorf("architectural misses = %d, want 513", stats.Misses)
	}
	if stats.SpecMisses != 1 {
		t.Errorf("speculative misses = %d, want 1", stats.SpecMisses)
	}
	if stats.Hits != 0 {
		t.Errorf("hits = %d, want 0 (ph[k] evicted by wrong path)", stats.Hits)
	}
	if stats.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", stats.Rollbacks)
	}
}

func TestFig2SecretDependentTiming(t *testing.T) {
	// The execution time depends on the secret k only under speculation:
	// k=0 maps to the evicted ph line (miss), a large k maps to a surviving
	// line (hit). Without speculation both hit — that is the side channel.
	run := func(k int, spec bool) Stats {
		prog := compile(t, fig2Src(k))
		cfg := DefaultConfig()
		if spec {
			cfg.ForceMispredict = true
			cfg.DepthMiss = 3
			cfg.DepthHit = 3
		} else {
			cfg.DepthMiss = 0
			cfg.DepthHit = 0
		}
		stats, err := RunProgram(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	specK0, specKbig := run(0, true), run(64*300, true)
	if specK0.Misses == specKbig.Misses {
		t.Errorf("speculative misses identical (%d) for k=0 and k=big: no leak observed",
			specK0.Misses)
	}
	nonK0, nonKbig := run(0, false), run(64*300, false)
	if nonK0.Misses != nonKbig.Misses {
		t.Errorf("non-speculative misses differ (%d vs %d): leak without speculation?",
			nonK0.Misses, nonKbig.Misses)
	}
}

func TestSpeculativeRollbackPreservesSemantics(t *testing.T) {
	// Wrong-path execution must not change the architectural result.
	src := `
	int acc; int tbl[16];
	int main(int n) {
		int i = 0;
		while (i < 13) {
			if (tbl[i & 15] == 0) { acc = acc + 2; }
			else { acc = acc - 1; }
			i = i + 1;
		}
		return acc;
	}`
	prog := compile(t, src)
	want := int64(26)
	for _, cfg := range []Config{
		{Cache: layout.PaperConfig(), DepthMiss: 0, DepthHit: 0},
		{Cache: layout.PaperConfig(), ForceMispredict: true, DepthMiss: 50, DepthHit: 10},
		{Cache: layout.PaperConfig(), Predictor: NewGShare(8), DepthMiss: 200, DepthHit: 20},
		{Cache: layout.PaperConfig(), Predictor: NewAdversarial(), DepthMiss: 200, DepthHit: 20},
	} {
		stats, err := RunProgram(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Ret != want {
			t.Errorf("cfg %+v: result %d, want %d (rollback broke semantics)",
				cfg, stats.Ret, want)
		}
	}
}

func TestWrongPathFaultSquashed(t *testing.T) {
	// The wrong path divides by zero / runs out of bounds; the simulation
	// must squash it and keep running.
	src := `
	int tbl[4]; int z;
	int main(int x) {
		reg int r;
		r = 0;
		if (z != 0) { r = tbl[100 / z]; }
		return r;
	}`
	prog := compile(t, src)
	cfg := DefaultConfig()
	cfg.ForceMispredict = true
	stats, err := RunProgram(prog, cfg)
	if err != nil {
		t.Fatalf("wrong-path fault leaked: %v", err)
	}
	if stats.Ret != 0 {
		t.Errorf("result = %d, want 0", stats.Ret)
	}
}

func TestMispredictsReducedByTraining(t *testing.T) {
	// A heavily biased branch: the 2-bit predictor should mispredict far
	// less than the adversarial predictor.
	src := `
	int acc; int t[8];
	int main() {
		int i = 0;
		while (i < 100) {
			if (i < 99) { acc = acc + t[i & 7]; }
			i = i + 1;
		}
		return acc;
	}`
	prog := compile(t, src)
	run := func(p Predictor) Stats {
		cfg := DefaultConfig()
		cfg.Predictor = p
		stats, err := RunProgram(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	trained := run(NewTwoBit())
	adversarial := run(NewAdversarial())
	if trained.Mispredicts >= adversarial.Mispredicts {
		t.Errorf("2bit mispredicts %d >= adversarial %d",
			trained.Mispredicts, adversarial.Mispredicts)
	}
}

func TestOnAccessHook(t *testing.T) {
	prog := compile(t, fig2Src(0))
	sim, err := New(prog, Config{
		Cache: layout.PaperConfig(), ForceMispredict: true,
		DepthMiss: 3, DepthHit: 3, MaxSteps: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var arch, spec int
	sim.OnAccess = func(r AccessRecord) {
		if r.Speculative {
			spec++
		} else {
			arch++
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if arch != 513 {
		t.Errorf("architectural records = %d, want 513", arch)
	}
	if spec != 1 {
		t.Errorf("speculative records = %d, want 1", spec)
	}
}

func TestCyclesAccounting(t *testing.T) {
	prog := compile(t, `int a; int main() { int x = a; int y = a; return x + y; }`)
	cfg := DefaultConfig()
	cfg.DepthMiss, cfg.DepthHit = 0, 0
	stats, err := RunProgram(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := stats.Instructions*cfg.BaseLatency + stats.Misses*cfg.MissPenalty + stats.Hits*cfg.HitLatency
	if stats.Cycles != wantMin {
		t.Errorf("cycles = %d, want %d", stats.Cycles, wantMin)
	}
}

// TestConfigInputs: named scalars (main parameters, secrets) are preloaded
// before execution, so one program replays across concrete input vectors.
func TestConfigInputs(t *testing.T) {
	prog := compile(t, `
	secret int sec;
	int main(int inp) {
		if (inp > 3) { return 100 + sec; }
		return sec;
	}`)
	run := func(inputs map[string]int64) int64 {
		cfg := DefaultConfig()
		cfg.DepthMiss, cfg.DepthHit = 0, 0
		cfg.Inputs = inputs
		stats, err := RunProgram(prog, cfg)
		if err != nil {
			t.Fatalf("run %v: %v", inputs, err)
		}
		return stats.Ret
	}
	if got := run(nil); got != 0 {
		t.Errorf("zero inputs: ret = %d, want 0", got)
	}
	if got := run(map[string]int64{"inp": 5, "sec": 7}); got != 107 {
		t.Errorf("inp=5 sec=7: ret = %d, want 107", got)
	}
	if got := run(map[string]int64{"inp": 1, "sec": 9}); got != 9 {
		t.Errorf("inp=1 sec=9: ret = %d, want 9", got)
	}

	cfg := DefaultConfig()
	cfg.Inputs = map[string]int64{"nosuch": 1}
	if _, err := RunProgram(prog, cfg); err == nil {
		t.Error("unknown input symbol: want error")
	}
}
