package machine

// Predictor models a branch prediction unit. Branches are identified by the
// program-unique instruction id of their CondBr.
type Predictor interface {
	// Predict guesses whether the branch will be taken.
	Predict(branchID int) bool
	// Update trains the predictor with the real outcome.
	Update(branchID int, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// AlwaysTaken predicts every branch taken (static forward-taken policy).
type AlwaysTaken struct{}

// Predict always returns true.
func (AlwaysTaken) Predict(int) bool { return true }

// Update is a no-op.
func (AlwaysTaken) Update(int, bool) {}

// Name identifies the predictor.
func (AlwaysTaken) Name() string { return "always-taken" }

// NeverTaken predicts every branch not taken.
type NeverTaken struct{}

// Predict always returns false.
func (NeverTaken) Predict(int) bool { return false }

// Update is a no-op.
func (NeverTaken) Update(int, bool) {}

// Name identifies the predictor.
func (NeverTaken) Name() string { return "never-taken" }

// TwoBit is the classic per-branch two-bit saturating counter predictor.
type TwoBit struct {
	counters map[int]uint8 // 0..3; >=2 predicts taken
}

// NewTwoBit creates a two-bit predictor initialized to weakly taken.
func NewTwoBit() *TwoBit { return &TwoBit{counters: map[int]uint8{}} }

func (p *TwoBit) counter(id int) uint8 {
	if c, ok := p.counters[id]; ok {
		return c
	}
	return 2 // weakly taken
}

// Predict consults the branch's saturating counter.
func (p *TwoBit) Predict(id int) bool { return p.counter(id) >= 2 }

// Update saturates the counter toward the outcome.
func (p *TwoBit) Update(id int, taken bool) {
	c := p.counter(id)
	if taken && c < 3 {
		c++
	} else if !taken && c > 0 {
		c--
	}
	p.counters[id] = c
}

// Name identifies the predictor.
func (p *TwoBit) Name() string { return "2bit" }

// GShare is a global-history predictor: the branch id is XOR-folded with a
// global history register to index a table of two-bit counters.
type GShare struct {
	history uint32
	bits    uint32
	table   []uint8
}

// NewGShare creates a gshare predictor with 2^bits counters.
func NewGShare(bits uint32) *GShare {
	if bits == 0 || bits > 20 {
		bits = 12
	}
	return &GShare{bits: bits, table: make([]uint8, 1<<bits)}
}

func (p *GShare) index(id int) uint32 {
	mask := uint32(1)<<p.bits - 1
	return (uint32(id) ^ p.history) & mask
}

// Predict consults the indexed counter.
func (p *GShare) Predict(id int) bool { return p.table[p.index(id)] >= 2 }

// Update trains the counter and shifts the outcome into the history.
func (p *GShare) Update(id int, taken bool) {
	i := p.index(id)
	c := p.table[i]
	if taken && c < 3 {
		p.table[i] = c + 1
	} else if !taken && c > 0 {
		p.table[i] = c - 1
	}
	p.history <<= 1
	if taken {
		p.history |= 1
	}
}

// Name identifies the predictor.
func (p *GShare) Name() string { return "gshare" }

// Adversarial always predicts the WRONG direction. It needs the actual
// outcome before predicting, so the simulator feeds it through Update first;
// it exists to maximize wrong-path cache pollution in worst-case and
// side-channel experiments.
type Adversarial struct {
	last map[int]bool
}

// NewAdversarial creates the adversarial predictor.
func NewAdversarial() *Adversarial { return &Adversarial{last: map[int]bool{}} }

// Predict returns the opposite of the branch's last observed outcome
// (pessimistic: first encounter predicts taken).
func (p *Adversarial) Predict(id int) bool {
	if taken, ok := p.last[id]; ok {
		return !taken
	}
	return true
}

// Update records the outcome.
func (p *Adversarial) Update(id int, taken bool) { p.last[id] = taken }

// Name identifies the predictor.
func (p *Adversarial) Name() string { return "adversarial" }
