// Package machine is a concrete speculative CPU simulator: a set-associative
// LRU data cache, branch predictors, and an execution loop with
// checkpoint/rollback wrong-path execution. It substitutes for the paper's
// GEM5 + Alpha 21264 testbed: it supplies ground-truth cache behaviour for
// the soundness property tests, the speculation-depth calibration, and the
// concrete miss counts of the motivating example (Fig. 2/3).
package machine

import (
	"specabsint/internal/layout"
)

// CacheSim is a concrete set-associative LRU cache.
type CacheSim struct {
	cfg  layout.CacheConfig
	sets [][]layout.BlockID // each set ordered youngest-first
}

// NewCacheSim creates an empty cache.
func NewCacheSim(cfg layout.CacheConfig) *CacheSim {
	return &CacheSim{cfg: cfg, sets: make([][]layout.BlockID, cfg.NumSets)}
}

// Access touches block b, returning whether it hit, and updates LRU state
// (the block becomes the youngest in its set; on a miss the oldest block is
// evicted if the set is full).
func (c *CacheSim) Access(b layout.BlockID) bool {
	set := int(b) % c.cfg.NumSets
	ways := c.sets[set]
	for i, w := range ways {
		if w == b {
			// Move to front.
			copy(ways[1:i+1], ways[:i])
			ways[0] = b
			return true
		}
	}
	if len(ways) < c.cfg.Assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = b
	c.sets[set] = ways
	return false
}

// Contains reports whether b is currently cached, without touching LRU
// state.
func (c *CacheSim) Contains(b layout.BlockID) bool {
	set := int(b) % c.cfg.NumSets
	for _, w := range c.sets[set] {
		if w == b {
			return true
		}
	}
	return false
}

// AgeOf returns b's LRU age (1 = youngest) or assoc+1 when not cached.
func (c *CacheSim) AgeOf(b layout.BlockID) int {
	set := int(b) % c.cfg.NumSets
	for i, w := range c.sets[set] {
		if w == b {
			return i + 1
		}
	}
	return c.cfg.Assoc + 1
}

// Flush empties the cache.
func (c *CacheSim) Flush() {
	for i := range c.sets {
		c.sets[i] = nil
	}
}

// Clone deep-copies the cache state.
func (c *CacheSim) Clone() *CacheSim {
	n := &CacheSim{cfg: c.cfg, sets: make([][]layout.BlockID, len(c.sets))}
	for i, s := range c.sets {
		n.sets[i] = append([]layout.BlockID(nil), s...)
	}
	return n
}

// Occupancy returns the number of blocks currently cached.
func (c *CacheSim) Occupancy() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}
