package machine

import (
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/bytecode"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// These tests pin the simulator's engine contract: the bytecode-compiled
// fetch/execute core must reproduce the tree-walking interpreter's traces
// byte-for-byte — every access record in order, every counter including the
// fence-squash count — under forced misprediction, wrong-path OOB reads,
// secret-pair replays, and instruction-cache simulation. The interpreter is
// the reference; any divergence is a lowering bug in the compiled machine.

// tracePair runs the same program/config under both execution cores and
// returns (compiled, interp) access traces and stats.
func tracePair(t *testing.T, prog *ir.Program, cfg Config) (c, i []AccessRecord, cs, is Stats) {
	t.Helper()
	run := func(mode bytecode.ExecMode) ([]AccessRecord, Stats) {
		t.Helper()
		cfg := cfg
		cfg.Exec = mode
		cfg.Predictor = nil // fresh predictor per run; New defaults it
		sim, err := New(prog, cfg)
		if err != nil {
			t.Fatalf("exec=%v: %v", mode, err)
		}
		var recs []AccessRecord
		sim.OnAccess = func(r AccessRecord) { recs = append(recs, r) }
		if err := sim.Run(); err != nil {
			t.Fatalf("exec=%v: %v", mode, err)
		}
		return recs, sim.Stats
	}
	c, cs = run(bytecode.ExecCompiled)
	i, is = run(bytecode.ExecInterp)
	return c, i, cs, is
}

// requireSameTrace fails with the first divergence point.
func requireSameTrace(t *testing.T, c, i []AccessRecord, cs, is Stats) {
	t.Helper()
	if cs != is {
		t.Errorf("stats diverge:\ncompiled %+v\ninterp   %+v", cs, is)
	}
	if len(c) != len(i) {
		t.Fatalf("trace lengths diverge: compiled %d accesses, interp %d", len(c), len(i))
	}
	for n := range c {
		if c[n] != i[n] {
			t.Fatalf("traces diverge at access %d: compiled %+v, interp %+v", n, c[n], i[n])
		}
	}
}

// TestExecTraceEquivalenceFig2 replays the paper's Fig. 2 program — the
// source of the Fig. 3 golden traces — under both cores, near and far
// secret, forced misprediction on. The root-package goldens pin the compiled
// core's output; this pins that the interpreter produces the same bytes, so
// the goldens transitively cover both.
func TestExecTraceEquivalenceFig2(t *testing.T) {
	for _, k := range []int{0, 64 * 300} {
		prog := compile(t, bench.Fig2Program(k))
		cfg := DefaultConfig()
		cfg.ForceMispredict = true
		c, i, cs, is := tracePair(t, prog, cfg)
		requireSameTrace(t, c, i, cs, is)
		if cs.Mispredicts == 0 || cs.SpecMisses == 0 {
			t.Errorf("k=%d: replay is vacuous: %+v", k, cs)
		}
	}
}

// TestExecTraceEquivalenceSecretPairs drives a Spectre-v1 gadget across a
// secret pair with wrong-path OOB reads enabled: the mis-speculated
// then-branch reads pub[k] out of bounds and transmits through probe. The
// cores must agree on the full speculative trace for each secret value.
func TestExecTraceEquivalenceSecretPairs(t *testing.T) {
	prog := compile(t, `
char pub[16];
char probe[256];
secret int k;
int main() {
	reg int t;
	reg int v;
	t = 0;
	if (k < 16) {
		v = pub[k];
		t = probe[v & 255];
	}
	return t;
}
`)
	for _, secret := range []int64{40, 200} {
		cfg := DefaultConfig()
		cfg.ForceMispredict = true
		cfg.WrongPathOOB = true
		cfg.Inputs = map[string]int64{"k": secret}
		c, i, cs, is := tracePair(t, prog, cfg)
		requireSameTrace(t, c, i, cs, is)
		spec := 0
		for _, r := range c {
			if r.Speculative {
				spec++
			}
		}
		if spec == 0 {
			t.Errorf("secret=%d: no wrong-path accesses; the OOB replay is vacuous", secret)
		}
	}
}

// TestExecFenceSquashEquivalence puts a fence on the wrong path: both cores
// must squash the speculation at the same instruction and count it in
// SpecFences.
func TestExecFenceSquashEquivalence(t *testing.T) {
	prog := compile(t, `
char pub[16];
char probe[256];
secret int k;
int main() {
	reg int t;
	reg int v;
	t = 0;
	if (k < 16) {
		fence;
		v = pub[k & 15];
		t = probe[v & 255];
	}
	return t;
}
`)
	cfg := DefaultConfig()
	cfg.ForceMispredict = true
	cfg.Inputs = map[string]int64{"k": 200}
	c, i, cs, is := tracePair(t, prog, cfg)
	requireSameTrace(t, c, i, cs, is)
	if cs.SpecFences == 0 {
		t.Fatalf("wrong path never reached the fence: %+v", cs)
	}
}

// TestExecICacheTraceEquivalence runs with an instruction cache simulated:
// the compiled core must issue the identical fetch stream (architectural and
// wrong-path) as the interpreter, not just the identical data accesses.
func TestExecICacheTraceEquivalence(t *testing.T) {
	prog := compile(t, bench.Fig2Program(64*3))
	run := func(mode bytecode.ExecMode) ([]AccessRecord, Stats) {
		t.Helper()
		cfg := DefaultConfig()
		cfg.ForceMispredict = true
		cfg.ICache = &layout.CacheConfig{LineSize: 64, NumSets: 4, Assoc: 2}
		cfg.Exec = mode
		sim, err := New(prog, cfg)
		if err != nil {
			t.Fatalf("exec=%v: %v", mode, err)
		}
		var fetches []AccessRecord
		sim.OnFetch = func(r AccessRecord) { fetches = append(fetches, r) }
		if err := sim.Run(); err != nil {
			t.Fatalf("exec=%v: %v", mode, err)
		}
		return fetches, sim.Stats
	}
	c, cs := run(bytecode.ExecCompiled)
	i, is := run(bytecode.ExecInterp)
	requireSameTrace(t, c, i, cs, is)
	if cs.IFetchHits+cs.IFetchMisses == 0 {
		t.Fatalf("no instruction fetches recorded: %+v", cs)
	}
}
