package machine

import (
	"errors"
	"fmt"

	"specabsint/internal/bytecode"
	"specabsint/internal/interp"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// Config configures the speculative simulator.
type Config struct {
	Cache layout.CacheConfig
	// Predictor chooses branch targets; nil defaults to NewTwoBit().
	Predictor Predictor
	// Exec selects the fetch/execute core: the zero value runs the
	// bytecode-compiled machine, ExecInterp the tree-walking interpreter.
	// Traces, stats, and hook firing are identical under both.
	Exec bytecode.ExecMode
	// DepthMiss / DepthHit bound the wrong-path window in instructions,
	// depending on whether a load missed since the last branch (a proxy for
	// "the condition is waiting on memory"). These mirror the analysis
	// bounds b_m / b_h.
	DepthMiss int
	DepthHit  int
	// ForceMispredict makes every branch mispredict, maximizing wrong-path
	// pollution (used by worst-case experiments and the Fig. 2 replay).
	ForceMispredict bool
	// WrongPathOOB models real hardware on mis-speculated out-of-bounds
	// accesses: instead of faulting, the access reads whatever memory sits
	// at the computed address (the Spectre v1 ingredient). Accesses outside
	// the program's entire address space still squash the speculation.
	WrongPathOOB bool
	// ICache, when non-nil, simulates an instruction cache of that geometry:
	// every executed instruction (architectural or wrong-path) fetches its
	// code block. Architectural fetch misses are charged MissPenalty cycles.
	ICache *layout.CacheConfig
	// HitLatency / MissPenalty / BaseLatency feed the cycle estimate.
	HitLatency  int64
	MissPenalty int64
	BaseLatency int64
	// MaxSteps bounds architectural execution.
	MaxSteps int64
	// Inputs preloads named memory-resident scalars (main parameters,
	// secret-tagged variables, uninitialized globals) before execution, so
	// one program can be replayed across concrete input vectors. The
	// analyses treat exactly these cells as unknown, which makes any such
	// assignment a trace the abstract result must over-approximate.
	// Register-resident (`reg`) variables are not addressable here.
	Inputs map[string]int64
	// RegInputs preloads virtual registers before execution — the
	// register-file analogue of Inputs, for varying `reg`-resident values
	// (including `secret reg` declarations, which Inputs cannot reach)
	// across replays. Registers outside the program's range are rejected.
	RegInputs map[ir.Reg]int64
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		Cache:        layout.PaperConfig(),
		Predictor:    NewTwoBit(),
		DepthMiss:    200,
		DepthHit:     20,
		WrongPathOOB: true,
		HitLatency:   1,
		MissPenalty:  100,
		BaseLatency:  1,
		MaxSteps:     50_000_000,
	}
}

// Stats aggregates one run.
type Stats struct {
	Instructions     int64
	SpecInstructions int64
	Hits             int64 // architectural
	Misses           int64 // architectural
	SpecHits         int64 // wrong-path (invisible architecturally)
	SpecMisses       int64
	Branches         int64
	Mispredicts      int64
	Rollbacks        int64
	// SpecFences counts wrong-path executions squashed by reaching a fence.
	SpecFences int64
	Cycles     int64
	Ret        int64
	// Instruction-cache counters (zero unless Config.ICache is set).
	IFetchHits       int64
	IFetchMisses     int64
	SpecIFetchHits   int64
	SpecIFetchMisses int64
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("instrs=%d hits=%d misses=%d specMisses=%d branches=%d mispredicts=%d cycles=%d",
		s.Instructions, s.Hits, s.Misses, s.SpecMisses, s.Branches, s.Mispredicts, s.Cycles)
}

// AccessRecord describes one observed memory access.
type AccessRecord struct {
	InstrID     int
	Block       layout.BlockID
	Hit         bool
	Speculative bool
}

// Simulator executes a program with speculative wrong-path execution whose
// cache side effects persist across rollback — the behaviour the paper's
// analysis must soundly over-approximate.
type Simulator struct {
	Prog   *ir.Program
	Layout *layout.Layout
	Cfg    Config
	Cache  *CacheSim
	Stats  Stats
	// OnAccess, if set, observes every access (architectural and
	// speculative).
	OnAccess func(AccessRecord)
	// OnFetch, if set, observes every instruction fetch when an i-cache is
	// simulated.
	OnFetch func(AccessRecord)

	// ICacheSim is the simulated instruction cache (nil unless configured).
	ICacheSim   *CacheSim
	fetchBlocks []layout.BlockID

	m           stepper
	missedSince bool // a load missed since the last branch resolved
}

// stepper is the execution core contract the simulator drives: the
// tree-walking interp.Machine or the bytecode-compiled bytecode.Machine.
// Both operate on interp.State, fire the same hooks at the same points, and
// return the same error values, so the simulator's speculation, squash, and
// predictor logic is engine-agnostic.
type stepper interface {
	NewState() *interp.State
	CurrentInstr(*interp.State) *ir.Instr
	Step(*interp.State) error
	SetHooks(interp.Hooks)
	SetResolveOOB(func(ir.SymbolID, int64) (ir.SymbolID, int64, bool))
}

// New creates a simulator.
func New(prog *ir.Program, cfg Config) (*Simulator, error) {
	if cfg.Predictor == nil {
		cfg.Predictor = NewTwoBit()
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultConfig().MaxSteps
	}
	l, err := layout.New(prog, cfg.Cache)
	if err != nil {
		return nil, err
	}
	var m stepper
	if cfg.Exec == bytecode.ExecInterp {
		m = interp.NewMachine(prog)
	} else {
		m = bytecode.NewMachine(prog)
	}
	sim := &Simulator{
		Prog:   prog,
		Layout: l,
		Cfg:    cfg,
		Cache:  NewCacheSim(cfg.Cache),
		m:      m,
	}
	if cfg.ICache != nil {
		_, blocks, err := layout.CodeLayout(prog, *cfg.ICache)
		if err != nil {
			return nil, err
		}
		sim.ICacheSim = NewCacheSim(*cfg.ICache)
		sim.fetchBlocks = blocks
	}
	return sim, nil
}

// fetch simulates the instruction fetch of in.
func (s *Simulator) fetch(in *ir.Instr, speculative bool) {
	if s.ICacheSim == nil {
		return
	}
	b := s.fetchBlocks[in.ID]
	hit := s.ICacheSim.Access(b)
	switch {
	case speculative && hit:
		s.Stats.SpecIFetchHits++
	case speculative:
		s.Stats.SpecIFetchMisses++
	case hit:
		s.Stats.IFetchHits++
	default:
		s.Stats.IFetchMisses++
		s.Stats.Cycles += s.Cfg.MissPenalty
	}
	if s.OnFetch != nil {
		s.OnFetch(AccessRecord{InstrID: in.ID, Block: b, Hit: hit, Speculative: speculative})
	}
}

// access performs the cache access for one memory instruction. sym may
// differ from in.Sym when a wrong-path out-of-bounds access was redirected.
func (s *Simulator) access(in *ir.Instr, sym ir.SymbolID, elem int64, speculative bool) {
	b := s.Layout.BlockOfElem(sym, elem)
	hit := s.Cache.Access(b)
	if speculative {
		if hit {
			s.Stats.SpecHits++
		} else {
			s.Stats.SpecMisses++
		}
	} else {
		if hit {
			s.Stats.Hits++
			s.Stats.Cycles += s.Cfg.HitLatency
		} else {
			s.Stats.Misses++
			s.Stats.Cycles += s.Cfg.MissPenalty
			s.missedSince = true
		}
	}
	if s.OnAccess != nil {
		s.OnAccess(AccessRecord{InstrID: in.ID, Block: b, Hit: hit, Speculative: speculative})
	}
}

// Run executes the program to completion.
func (s *Simulator) Run() error {
	st := s.m.NewState()
	for name, v := range s.Cfg.Inputs {
		sym := s.Prog.SymbolByName(name)
		if sym == nil {
			return fmt.Errorf("machine: input %q: no such symbol", name)
		}
		if sym.Len != 1 {
			return fmt.Errorf("machine: input %q: not a scalar", name)
		}
		st.Mem[sym.ID][0] = v
	}
	for r, v := range s.Cfg.RegInputs {
		if int(r) < 0 || int(r) >= s.Prog.NumRegs {
			return fmt.Errorf("machine: register input %s out of range", r)
		}
		st.Regs[r] = v
	}

	// One hook set per path kind, built once: the wrong-path excursion swaps
	// them in speculate and Run swaps back, instead of allocating a closure
	// pair per architectural instruction.
	archHooks := interp.Hooks{
		OnMem: func(in *ir.Instr, sym ir.SymbolID, elem int64, isStore bool) {
			s.access(in, sym, elem, false)
		},
	}
	specHooks := interp.Hooks{
		OnMem: func(in *ir.Instr, sym ir.SymbolID, elem int64, isStore bool) {
			s.access(in, sym, elem, true)
		},
	}

	s.m.SetHooks(archHooks)
	for !st.Done {
		if st.Steps >= s.Cfg.MaxSteps {
			return interp.ErrStepLimit
		}
		in := s.m.CurrentInstr(st)
		// Fetch before resolving/speculating: the wrong path starts with
		// the branch already in the instruction cache.
		s.fetch(in, false)
		if in.Op == ir.OpCondBr && in.Resolved {
			// The pass pipeline emitted this as an unconditional jump: no
			// prediction, no misprediction, no speculation. The tripwire
			// below is the simulator's check on the pipeline's proof — a
			// resolved branch whose architectural outcome disagrees with the
			// recorded direction means folding was unsound.
			if condTaken(st, in) != in.TakenTrue {
				return fmt.Errorf("machine: resolved branch at instr %d (line %d) would go %v architecturally, but passes fixed it %v",
					in.ID, in.Line, condTaken(st, in), in.TakenTrue)
			}
		} else if in.Op == ir.OpCondBr {
			s.Stats.Branches++
			taken := condTaken(st, in)
			predicted := s.Cfg.Predictor.Predict(in.ID)
			if s.Cfg.ForceMispredict {
				predicted = !taken
			}
			s.Cfg.Predictor.Update(in.ID, taken)
			if predicted != taken {
				s.Stats.Mispredicts++
				depth := s.Cfg.DepthHit
				if s.missedSince {
					depth = s.Cfg.DepthMiss
				}
				if depth > 0 {
					s.speculate(st, in, predicted, depth, specHooks)
					s.m.SetHooks(archHooks)
					s.Stats.Rollbacks++
				}
			}
			// The branch resolves; the next condition starts clean.
			s.missedSince = false
		}
		s.Stats.Instructions++
		s.Stats.Cycles += s.Cfg.BaseLatency
		if err := s.m.Step(st); err != nil {
			return err
		}
	}
	s.Stats.Ret = st.Ret
	return nil
}

// condTaken evaluates a CondBr's outcome without executing it.
func condTaken(st *interp.State, in *ir.Instr) bool {
	if in.A.IsConst {
		return in.A.Const != 0
	}
	return st.Regs[in.A.Reg] != 0
}

// speculate executes the wrong path from the branch on a cloned state. The
// register and memory effects are discarded on return (the rollback), but
// every cache access performed along the way persists in s.Cache — that is
// precisely the side channel. Faults (out-of-bounds, division by zero) and
// program exit squash the speculation early. Speculative stores allocate
// cache lines (write-allocate at issue) but their values live only in the
// cloned memory, so rollback discards them.
func (s *Simulator) speculate(st *interp.State, branch *ir.Instr, predicted bool, depth int, hooks interp.Hooks) {
	clone := st.Clone()
	if predicted {
		clone.Block = branch.TrueTarget
	} else {
		clone.Block = branch.FalseTarget
	}
	clone.IP = 0
	s.m.SetHooks(hooks)
	if s.Cfg.WrongPathOOB {
		s.m.SetResolveOOB(func(sym ir.SymbolID, elem int64) (ir.SymbolID, int64, bool) {
			const lim = int64(1) << 40
			if elem > lim || elem < -lim {
				return 0, 0, false
			}
			addr := s.Layout.AddrOfElem(sym, elem)
			if addr < 0 || addr >= s.Layout.AddressSpaceEnd() {
				return 0, 0, false
			}
			return s.Layout.AddrToElem(addr)
		})
		defer s.m.SetResolveOOB(nil)
	}
	for i := 0; i < depth && !clone.Done; i++ {
		in := s.m.CurrentInstr(clone)
		if in.Op == ir.OpFence {
			// A fence reaching execute kills all in-flight speculation: the
			// wrong path stops here, before the fence's successors issue.
			s.Stats.SpecFences++
			break
		}
		s.fetch(in, true)
		if err := s.m.Step(clone); err != nil {
			if errors.Is(err, interp.ErrOutOfBounds) || errors.Is(err, interp.ErrDivideByZero) {
				break // fault on the wrong path: squash
			}
			break
		}
		s.Stats.SpecInstructions++
	}
}

// RunProgram is a convenience wrapper: simulate prog under cfg and return
// the stats.
func RunProgram(prog *ir.Program, cfg Config) (Stats, error) {
	sim, err := New(prog, cfg)
	if err != nil {
		return Stats{}, err
	}
	err = sim.Run()
	return sim.Stats, err
}
