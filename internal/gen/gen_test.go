package gen

import (
	"math/rand"
	"strings"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/taint"
)

// TestDeterministic: the same (seed, config) pair must always produce the
// same source — the whole point of a shared generator is that a failing seed
// reproduces identically in every suite.
func TestDeterministic(t *testing.T) {
	for _, cfg := range []Config{Default(), Secrets(), Sized(3), Fenced()} {
		for seed := int64(1); seed <= 10; seed++ {
			a := Program(rand.New(rand.NewSource(seed)), cfg)
			b := Program(rand.New(rand.NewSource(seed)), cfg)
			if a != b {
				t.Fatalf("seed %d: generator is not deterministic", seed)
			}
		}
	}
}

// TestPinnedSeedsCompile keeps the soundness suite's historical seeds (1–25)
// compiling: these are the pinned regression cases the core tests replay.
func TestPinnedSeedsCompile(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		src := Source(rand.New(rand.NewSource(seed)))
		if _, err := bench.Compile(src, 0); err != nil {
			t.Errorf("pinned seed %d no longer compiles: %v\n%s", seed, err, src)
		}
	}
}

// TestGeneratedProgramsCompile sweeps a wider seed range across every
// configuration: the generator must never emit source the front end rejects.
func TestGeneratedProgramsCompile(t *testing.T) {
	configs := map[string]Config{
		"default": Default(),
		"secret":  Secrets(),
		"sized4":  Sized(4),
		"fenced":  Fenced(),
	}
	n := int64(60)
	if testing.Short() {
		n = 15
	}
	for name, cfg := range configs {
		for seed := int64(100); seed < 100+n; seed++ {
			src := Program(rand.New(rand.NewSource(seed)), cfg)
			if _, err := bench.Compile(src, 0); err != nil {
				t.Fatalf("%s seed %d does not compile: %v\n%s", name, seed, err, src)
			}
		}
	}
}

// TestFencedModeEmitsFences: across a seed sweep the fence face must
// actually fire (producing `fence;` statements the front end accepts), and
// turning it on must not disturb what the secret machinery guarantees.
func TestFencedModeEmitsFences(t *testing.T) {
	fenced := 0
	for seed := int64(1); seed <= 40; seed++ {
		src := Program(rand.New(rand.NewSource(seed)), Fenced())
		if strings.Contains(src, "fence;") {
			fenced++
		}
		prog, err := bench.Compile(src, 0)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if strings.Contains(src, "fence;") && prog.FenceCount() == 0 {
			t.Errorf("seed %d: fence statement lowered to no fence op", seed)
		}
	}
	if fenced < 10 {
		t.Fatalf("only %d/40 fenced-mode programs contain a fence", fenced)
	}
}

// TestSecretModeGroundTruth: secret-mode programs must contain at least one
// secret-indexed access (the ground truth the leak oracle checks against)
// and must never branch on the secret (so the data cache is the only
// channel).
func TestSecretModeGroundTruth(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		src := Program(rand.New(rand.NewSource(seed)), Secrets())
		if !strings.Contains(src, "secret int sec;") {
			t.Fatalf("seed %d: missing secret declaration", seed)
		}
		prog, err := bench.Compile(src, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tnt := taint.Analyze(prog)
		if len(tnt.SecretIndexed) == 0 {
			t.Errorf("seed %d: no secret-indexed access in\n%s", seed, src)
		}
		if len(tnt.SecretBranches) != 0 {
			t.Errorf("seed %d: secret reached a branch condition in\n%s", seed, src)
		}
	}
}

// TestDefaultMatchesHistoricalGenerator pins the seed-1 program: Default()
// must keep reproducing the original soundness-suite generator's output so
// that pinned seeds retain their historical coverage. If this test fails,
// the change silently re-rolled every pinned regression case.
func TestDefaultMatchesHistoricalGenerator(t *testing.T) {
	got := Source(rand.New(rand.NewSource(1)))
	if got != historicalSeed1 {
		t.Errorf("Default() drifted from the historical generator on seed 1:\n got:\n%s\nwant:\n%s",
			got, historicalSeed1)
	}
}

// historicalSeed1 is the seed-1 program of the original generator, recorded
// when the generator was extracted from internal/core.
const historicalSeed1 = `int g0 = -3;
int g1 = 9;
int g2 = -9;
int g3 = 8;
int arr0[8];
int arr1[4];
int main(int inp) {
arr0[g3 & 7] = 14;
g2 = (g1 + 2);
g3 = -7;
g3 = g3;
return g0;
}
`
