// Package gen generates random, well-formed MiniC programs for differential
// testing. It is the single source of fuzz programs for the soundness suite
// (internal/core), the instruction-cache tests, the parallel-equivalence
// sweeps, and the specfuzz oracle driver (cmd/specfuzz): one generator means
// a failing seed reproduces identically everywhere.
//
// Programs are generated from a seeded *rand.Rand and a Config, and are
// deterministic in both: the same (seed, config) pair always yields the same
// source text. With Default() the generator reproduces, byte for byte, the
// distribution of the original private generator that lived in
// internal/core's soundness test, so its pinned regression seeds keep their
// historical meaning.
//
// Generated programs are architecturally safe by construction — array
// indices are masked to the array length — but deliberately speculation-
// hostile: bounds-guarded *unmasked* accesses (the Spectre v1 shape) read
// out of bounds on mis-speculated paths. With Config.Secret, programs also
// declare a secret-tagged input and emit secret-indexed accesses whose cache
// footprint depends on the secret, giving the side-channel analyses known
// ground truth to detect.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config tunes the shape and size of generated programs.
type Config struct {
	// MinScalars / MaxScalars bound the number of int globals (g0, g1, ...).
	MinScalars, MaxScalars int
	// MinArrays / MaxArrays bound the number of int array globals.
	MinArrays, MaxArrays int
	// ArraySizes is the pool of array lengths; each must be a power of two
	// (indices are masked with len-1).
	ArraySizes []int
	// MaxDepth bounds statement nesting: branches generate at depth <
	// MaxDepth, loops at depth < MaxDepth-1.
	MaxDepth int
	// MinStmts / MaxStmts bound the number of top-level statements.
	MinStmts, MaxStmts int
	// Secret adds a secret-tagged scalar input and emits secret-indexed
	// loads and stores (cache side-channel sources with known ground truth).
	// The secret never flows into a branch condition, so the only channel in
	// a generated program is the data cache.
	Secret bool
	// Fences adds `fence;` statements to the statement die: speculation
	// barriers at random points exercise the analyzer's lane-truncation
	// paths and the machine's wrong-path squashing against each other.
	// Off by default so the historical rng consumption is untouched.
	Fences bool
}

// Default mirrors the original soundness-suite generator: 2–4 scalars, 1–2
// arrays of 4–32 elements, nesting depth 3, 4–7 top-level statements, no
// secrets. With this config Program consumes the rng exactly like the
// historical generator, so pinned seeds regenerate their original programs.
func Default() Config {
	return Config{
		MinScalars: 2, MaxScalars: 4,
		MinArrays: 1, MaxArrays: 2,
		ArraySizes: []int{4, 8, 16, 32},
		MaxDepth:   3,
		MinStmts:   4, MaxStmts: 7,
	}
}

// Secrets is Default with secret-tagged inputs enabled.
func Secrets() Config {
	c := Default()
	c.Secret = true
	return c
}

// Fenced is Secrets with fence emission enabled: leaky programs with random
// speculation barriers, the shape the mitigation synthesizer both consumes
// and produces.
func Fenced() Config {
	c := Secrets()
	c.Fences = true
	return c
}

// Sized scales Default's statement budget by n (n <= 1 is Default): larger
// programs exercise deeper speculation windows and more cache pressure.
func Sized(n int) Config {
	c := Default()
	if n > 1 {
		c.MinStmts *= n
		c.MaxStmts *= n
		c.MaxScalars += n
		c.MaxArrays++
	}
	return c
}

// Source generates a program with the Default configuration. It is the
// drop-in replacement for the soundness suite's original genProgram.
func Source(rng *rand.Rand) string { return Program(rng, Default()) }

// intn draws from [lo, hi].
func intn(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// Program produces a random but well-formed MiniC program under cfg: global
// scalars and arrays, nested branches, bounded loops, and masked array
// indices (so architectural execution never faults).
func Program(rng *rand.Rand, cfg Config) string {
	var sb strings.Builder
	nScalars := intn(rng, cfg.MinScalars, cfg.MaxScalars)
	nArrays := intn(rng, cfg.MinArrays, cfg.MaxArrays)
	for i := 0; i < nScalars; i++ {
		fmt.Fprintf(&sb, "int g%d = %d;\n", i, rng.Intn(20)-10)
	}
	arrLens := make([]int, nArrays)
	for i := 0; i < nArrays; i++ {
		arrLens[i] = cfg.ArraySizes[rng.Intn(len(cfg.ArraySizes))]
		fmt.Fprintf(&sb, "int arr%d[%d];\n", i, arrLens[i])
	}
	const secLen = 16
	secretAccesses := 0
	if cfg.Secret {
		fmt.Fprintf(&sb, "secret int sec;\nint sink;\nint secarr[%d];\n", secLen)
	}
	sb.WriteString("int main(int inp) {\n")

	expr := func() string {
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(30)-15)
		case 1:
			return fmt.Sprintf("g%d", rng.Intn(nScalars))
		case 2:
			a := rng.Intn(nArrays)
			return fmt.Sprintf("arr%d[g%d & %d]", a, rng.Intn(nScalars), arrLens[a]-1)
		case 3:
			return fmt.Sprintf("(g%d + %d)", rng.Intn(nScalars), rng.Intn(9))
		case 4:
			return fmt.Sprintf("(g%d * %d)", rng.Intn(nScalars), rng.Intn(4))
		default:
			return "inp"
		}
	}
	cond := func() string {
		ops := []string{"<", ">", "==", "!=", "<=", ">="}
		return fmt.Sprintf("%s %s %s", expr(), ops[rng.Intn(len(ops))], expr())
	}
	// secretStmt emits a secret-indexed access. Loads read public arrays but
	// land in the write-only sink; stores go to the dedicated secarr that
	// public code never reads. Either way the secret cannot influence
	// control flow — by construction the generated program's sole secret
	// channel is the cache line the masked index selects. (A secret-indexed
	// store into a *public* array would conservatively taint every value
	// later loaded from it, and with it any branch those values feed.)
	secretStmt := func() {
		if rng.Intn(2) == 0 {
			a := rng.Intn(nArrays)
			fmt.Fprintf(&sb, "sink = arr%d[sec & %d];\n", a, arrLens[a]-1)
		} else {
			fmt.Fprintf(&sb, "secarr[sec & %d] = g%d;\n", secLen-1, rng.Intn(nScalars))
		}
		secretAccesses++
	}

	// kinds is the statement-kind die. The historical generator rolled
	// Intn(8); secret mode extends the die with two secret-access faces and
	// fence mode with one barrier face, so the default distribution is
	// untouched when both are off.
	kinds := 8
	if cfg.Secret {
		kinds = 10
	}
	fenceFace := -1
	if cfg.Fences {
		fenceFace = kinds
		kinds++
	}
	var stmts func(depth, n int)
	stmts = func(depth, n int) {
		for i := 0; i < n; i++ {
			switch k := rng.Intn(kinds); {
			case k == fenceFace:
				sb.WriteString("fence;\n")
			case k < 3:
				fmt.Fprintf(&sb, "g%d = %s;\n", rng.Intn(nScalars), expr())
			case k < 5:
				a := rng.Intn(nArrays)
				fmt.Fprintf(&sb, "arr%d[g%d & %d] = %s;\n",
					a, rng.Intn(nScalars), arrLens[a]-1, expr())
			case k == 5 && depth < cfg.MaxDepth:
				// Bounds-guarded unmasked access: architecturally safe, but
				// a mis-speculated guard reads out of bounds (Spectre v1).
				a := rng.Intn(nArrays)
				g := rng.Intn(nScalars)
				fmt.Fprintf(&sb, "if (g%d >= 0 && g%d < %d) { g%d = arr%d[g%d]; }\n",
					g, g, arrLens[a], rng.Intn(nScalars), a, g)
			case k < 7 && depth < cfg.MaxDepth:
				fmt.Fprintf(&sb, "if (%s) {\n", cond())
				stmts(depth+1, 1+rng.Intn(2))
				if rng.Intn(2) == 0 {
					sb.WriteString("} else {\n")
					stmts(depth+1, 1+rng.Intn(2))
				}
				sb.WriteString("}\n")
			case k < 8 && depth < cfg.MaxDepth-1:
				iv := fmt.Sprintf("i%d_%d", depth, i)
				fmt.Fprintf(&sb, "for (int %s = 0; %s < %d; %s++) {\n",
					iv, iv, 2+rng.Intn(6), iv)
				stmts(depth+1, 1+rng.Intn(2))
				sb.WriteString("}\n")
			case k >= 8:
				secretStmt()
			default:
				fmt.Fprintf(&sb, "g%d = g%d - 1;\n", rng.Intn(nScalars), rng.Intn(nScalars))
			}
		}
	}
	stmts(0, intn(rng, cfg.MinStmts, cfg.MaxStmts))
	if cfg.Secret && secretAccesses == 0 {
		secretStmt()
	}
	fmt.Fprintf(&sb, "return g0;\n}\n")
	return sb.String()
}
