package sidechannel

import (
	"fmt"
	"testing"

	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/lower"
	"specabsint/internal/source"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(ast, lower.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// clientSrc builds a Fig. 10 style client: preload a 16-line S-box, fill
// bufLines more cache lines from an input buffer, run a branchy kernel, then
// perform the secret-indexed S-box lookup. With a 512-line cache, the
// preload + buffer + p + kernel arm + key cell sum to 19+bufLines lines, so
// bufLines=493 fills the cache exactly: only the extra mis-speculated arm
// pushes an S-box line out.
func clientSrc(bufLines int) string {
	return fmt.Sprintf(`
	int sbox[256];
	int inBuf[%d];
	char p;
	secret int key;
	int main() {
		reg int i; reg int tmp;
		for (i = 0; i < 256; i += 16) { tmp = sbox[i]; }
		for (i = 0; i < %d; i += 16) { tmp = inBuf[i]; }
		if (p == 0) { tmp = tmp + 1; tmp = inBuf[0]; }
		else { tmp = tmp + sbox[0]; tmp = p; }
		return sbox[key & 255];
	}`, bufLines*16, bufLines*16)
}

// leakSrc is a variant whose branch arms load two *fresh* lines (l1/l2), the
// direct analogue of Fig. 2 with a secret S-box lookup at the end.
func leakSrc(bufLines int) string {
	return fmt.Sprintf(`
	int sbox[256];
	int inBuf[%d];
	int l1[16]; int l2[16];
	char p;
	secret int key;
	int main() {
		reg int i; reg int tmp;
		for (i = 0; i < 256; i += 16) { tmp = sbox[i]; }
		for (i = 0; i < %d; i += 16) { tmp = inBuf[i]; }
		if (p == 0) { tmp = l1[0]; }
		else { tmp = l2[0]; }
		return sbox[key & 255];
	}`, bufLines*16, bufLines*16)
}

func analyze(t *testing.T, src string, speculative bool) *Report {
	t.Helper()
	prog := compile(t, src)
	opts := core.DefaultOptions()
	opts.Speculative = speculative
	rep, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestLeakOnlyUnderSpeculation(t *testing.T) {
	// 493 buffer lines + sbox(16) + p(1) + one arm line(1) + key(1) = 512:
	// exactly full. The mis-speculated arm evicts an S-box line.
	src := leakSrc(493)
	if rep := analyze(t, src, false); rep.LeakDetected() {
		t.Errorf("non-speculative analysis found a leak: %v", rep.Leaks)
	}
	rep := analyze(t, src, true)
	if !rep.LeakDetected() {
		t.Error("speculative analysis missed the leak")
	}
	if rep.SecretAccesses == 0 {
		t.Error("no secret accesses counted")
	}
}

func TestSmallBufferNoLeak(t *testing.T) {
	// With a small buffer there is ample cache headroom: even speculative
	// pollution cannot evict the S-box, so no leak either way (the paper's
	// aes/seed/camellia rows).
	src := leakSrc(100)
	if rep := analyze(t, src, true); rep.LeakDetected() {
		t.Errorf("speculative analysis flagged a leak with headroom: %v", rep.Leaks)
	}
	if rep := analyze(t, src, false); rep.LeakDetected() {
		t.Error("non-speculative analysis flagged a leak with headroom")
	}
}

func TestBufferThreshold(t *testing.T) {
	// Sweeping the buffer size must show: no leak at small sizes, a
	// window where only the speculative analysis leaks.
	specLeakAt := -1
	for _, lines := range []int{400, 470, 493} {
		src := leakSrc(lines)
		spec := analyze(t, src, true).LeakDetected()
		nonspec := analyze(t, src, false).LeakDetected()
		if nonspec && !spec {
			t.Errorf("bufLines=%d: non-spec leak without spec leak is impossible", lines)
		}
		if spec && !nonspec && specLeakAt < 0 {
			specLeakAt = lines
		}
	}
	if specLeakAt < 0 {
		t.Error("no buffer size produced a speculation-only leak")
	}
}

func TestNoSecretNoLeak(t *testing.T) {
	src := `
	int sbox[256];
	int idx;
	int main() { return sbox[idx & 255]; }`
	rep := analyze(t, src, true)
	if rep.SecretAccesses != 0 || rep.LeakDetected() {
		t.Error("program without secrets cannot leak")
	}
}

func TestAlwaysMissIsConstantTime(t *testing.T) {
	// Nothing is preloaded and the cache is tiny: the secret access misses
	// for every key, which is constant time, not a leak.
	src := `
	secret int key;
	int sbox[256];
	int main() { return sbox[key & 255]; }`
	prog := compile(t, src)
	opts := core.DefaultOptions()
	opts.Cache.Assoc = 4
	opts.Cache.NumSets = 1
	rep, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakDetected() {
		t.Errorf("always-miss access flagged as leak: %v", rep.Leaks)
	}
	if rep.SecretAccesses != 1 {
		t.Errorf("secret accesses = %d, want 1", rep.SecretAccesses)
	}
}

func TestSecretBranchCounted(t *testing.T) {
	src := `
	secret int key;
	int a; int b;
	int main() {
		if (key > 0) { return a; }
		return b;
	}`
	rep := analyze(t, src, true)
	if rep.SecretBranches == 0 {
		t.Error("secret branch not surfaced in the report")
	}
}

func TestLeakStringFormat(t *testing.T) {
	src := leakSrc(493)
	rep := analyze(t, src, true)
	if !rep.LeakDetected() {
		t.Fatal("expected leak")
	}
	s := rep.Leaks[0].String()
	if s == "" || rep.Leaks[0].Sym != "sbox" {
		t.Errorf("leak rendering: %q (sym %s)", s, rep.Leaks[0].Sym)
	}
}
