// Package sidechannel detects cache timing side channels: program points
// where the cache behaviour (hit vs. miss) may depend on secret data. It is
// the second application of the paper (§2.2, §7.3): a program that is
// leak-free under the classic analysis may still leak under speculative
// execution, because mis-speculated paths evict lines that the secret-
// indexed access would otherwise always hit.
package sidechannel

import (
	"context"
	"fmt"
	"sort"

	"specabsint/internal/cache"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/taint"
)

// Leak describes one leaking access.
type Leak struct {
	InstrID int
	Sym     string
	Line    int
	// Class is the (non-constant) hit/miss verdict that makes the timing
	// observable.
	Class cache.Classification
	// Store reports whether the access is a write.
	Store bool
}

// String renders the leak for reports.
func (l Leak) String() string {
	kind := "load"
	if l.Store {
		kind = "store"
	}
	if l.Class == cache.Unknown {
		return fmt.Sprintf("line %d: secret-indexed %s of %s may hit or miss (%s)",
			l.Line, kind, l.Sym, l.Class)
	}
	return fmt.Sprintf("line %d: secret-dependent %s of %s installs a secret-selected cache line (%s)",
		l.Line, kind, l.Sym, l.Class)
}

// Report is the outcome of leak detection on one program.
type Report struct {
	// Leaks lists secret-indexed accesses whose timing varies with the
	// secret.
	Leaks []Leak
	// SpectreLeaks lists Spectre-v1 style transmission gadgets: accesses
	// reached on speculative lanes whose address may depend on a value read
	// *out of bounds* on a mis-speculated path. These are reported
	// separately from Leaks — they are this reproduction's extension beyond
	// the paper's timing-channel model, in the spirit of Spectector-style
	// detectors.
	SpectreLeaks []Leak
	// SecretAccesses counts all secret-indexed accesses examined.
	SecretAccesses int
	// SecretBranches counts secret-dependent conditional branches
	// (control-flow channels, reported but not counted as cache leaks).
	SecretBranches int
	// Analysis is the underlying cache analysis result.
	Analysis *core.Result
}

// LeakDetected reports whether any cache timing leak (the paper's Table 7
// criterion) was found. Spectre gadgets are reported separately.
func (r *Report) LeakDetected() bool { return len(r.Leaks) > 0 }

// SpectreDetected reports whether any speculative transmission gadget was
// found.
func (r *Report) SpectreDetected() bool { return len(r.SpectreLeaks) > 0 }

// Analyze runs the (speculative, per opts) cache analysis and classifies
// every secret-indexed access:
//
//   - always-hit: constant time, no leak — every block the secret could
//     select is guaranteed cached;
//   - always-miss: constant time, no leak — no candidate block can be
//     cached;
//   - otherwise: the latency depends on which block the secret selects, or
//     on speculative pollution controlled by prior execution — a leak.
func Analyze(prog *ir.Program, opts core.Options) (*Report, error) {
	return AnalyzeContext(context.Background(), prog, opts)
}

// AnalyzeContext is Analyze with cancellation, threaded through the
// underlying fixpoint computation.
func AnalyzeContext(ctx context.Context, prog *ir.Program, opts core.Options) (*Report, error) {
	col := opts.Collector
	stopFix := col.StartPhase("fixpoint")
	res, err := core.AnalyzeContext(ctx, prog, opts)
	stopFix()
	if err != nil {
		return nil, err
	}
	defer col.StartPhase("sidechannel")()
	tnt := taint.Analyze(prog)
	rep := &Report{
		Analysis:       res,
		SecretBranches: len(tnt.SecretBranches),
	}
	for _, id := range tnt.SecretIndexed {
		info, reachable := res.Access[id]
		if !reachable {
			continue
		}
		rep.SecretAccesses++
		if info.Class == cache.Unknown {
			sym := prog.Symbol(info.Instr.Sym)
			rep.Leaks = append(rep.Leaks, Leak{
				InstrID: id,
				Sym:     sym.Name,
				Line:    info.Instr.Line,
				Class:   info.Class,
				Store:   info.Instr.Op == ir.OpStore,
			})
		}
	}
	sortLeaks(rep.Leaks)

	if opts.Speculative {
		rep.findSpectreGadgets(prog, res)
	}
	return rep, nil
}

// findSpectreGadgets flags accesses whose address may carry a value read out
// of bounds on a wrong path. The access transmits through the cache when the
// value can select between multiple cache blocks, regardless of whether the
// access itself hits: the *identity* of the installed line is what a
// prime-and-probe attacker reads back.
func (rep *Report) findSpectreGadgets(prog *ir.Program, res *core.Result) {
	spec := taint.AnalyzeSpeculative(prog, res.IndexIntervals())
	if len(spec.SpectreSinks) == 0 {
		return
	}
	instrByID := map[int]*ir.Instr{}
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			instrByID[b.Instrs[i].ID] = &b.Instrs[i]
		}
	}
	for _, id := range spec.SpectreSinks {
		cls, laneReached := res.SpecAccess[id]
		if !laneReached {
			continue // no speculative lane reaches the sink
		}
		in := instrByID[id]
		acc := res.SpecAccessOf(in)
		if acc.Count <= 1 {
			continue // a single candidate block transmits nothing
		}
		rep.SpectreLeaks = append(rep.SpectreLeaks, Leak{
			InstrID: id,
			Sym:     prog.Symbol(in.Sym).Name,
			Line:    in.Line,
			Class:   cls,
			Store:   in.Op == ir.OpStore,
		})
	}
	sortLeaks(rep.SpectreLeaks)
}

// sortLeaks orders leaks by source line (then instruction id for accesses
// sharing a line), so reports are stable however the analysis visited them.
func sortLeaks(leaks []Leak) {
	sort.Slice(leaks, func(i, j int) bool {
		if leaks[i].Line != leaks[j].Line {
			return leaks[i].Line < leaks[j].Line
		}
		return leaks[i].InstrID < leaks[j].InstrID
	})
}
