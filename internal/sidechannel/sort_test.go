package sidechannel

import (
	"reflect"
	"testing"
)

func TestSortLeaksBySourceLine(t *testing.T) {
	leaks := []Leak{
		{InstrID: 1, Line: 9},
		{InstrID: 7, Line: 3},
		{InstrID: 4, Line: 3},
		{InstrID: 2, Line: 12},
	}
	sortLeaks(leaks)
	want := []Leak{
		{InstrID: 4, Line: 3},
		{InstrID: 7, Line: 3},
		{InstrID: 1, Line: 9},
		{InstrID: 2, Line: 12},
	}
	if !reflect.DeepEqual(leaks, want) {
		t.Errorf("got %+v, want %+v", leaks, want)
	}
}
