package sidechannel

import (
	"testing"

	"specabsint/internal/core"
	"specabsint/internal/layout"
	"specabsint/internal/machine"
)

// spectreGadget is the classic Spectre v1 pattern: a bounds-checked read
// whose mis-speculated out-of-bounds access reaches the secret (laid out
// right after the array), followed by a probe-array access indexed by the
// stolen value. x is the attacker-chosen index.
const spectreGadget = `
int a_len = 16;
int a[16];
secret int secret_val;
int probe[4096];
int x = 16;
int main() {
	reg int y;
	if (x < a_len) {
		y = a[x];
		return probe[(y & 255) * 16];
	}
	return 0;
}`

func TestSpectreGadgetDetected(t *testing.T) {
	prog := compile(t, spectreGadget)
	rep, err := Analyze(prog, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SpectreDetected() {
		t.Fatal("the classic Spectre v1 gadget was not detected")
	}
	found := false
	for _, l := range rep.SpectreLeaks {
		if l.Sym == "probe" {
			found = true
		}
	}
	if !found {
		t.Errorf("probe access not among gadgets: %v", rep.SpectreLeaks)
	}
	// The paper's timing-channel criterion must NOT fire here: the secret
	// never flows into an architectural address.
	if rep.LeakDetected() {
		t.Errorf("architectural timing leak reported for a purely speculative gadget: %v", rep.Leaks)
	}
}

func TestSpectreGadgetNotDetectedWithoutSpeculation(t *testing.T) {
	prog := compile(t, spectreGadget)
	opts := core.DefaultOptions()
	opts.Speculative = false
	rep, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpectreDetected() {
		t.Error("non-speculative analysis cannot witness a wrong-path gadget")
	}
}

func TestMaskedGadgetIsSafe(t *testing.T) {
	// Masking the index (Spectre v1 mitigation) keeps even the wrong path
	// in bounds: no gadget.
	src := `
	int a_len = 16;
	int a[16];
	secret int secret_val;
	int probe[4096];
	int x = 16;
	int main() {
		reg int y;
		if (x < a_len) {
			y = a[x & 15];
			return probe[(y & 255) * 16];
		}
		return 0;
	}`
	prog := compile(t, src)
	rep, err := Analyze(prog, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpectreDetected() {
		t.Errorf("masked gadget flagged: %v", rep.SpectreLeaks)
	}
}

// TestSpectreConcreteExfiltration runs the gadget on the concrete simulator
// and recovers the secret from the cache state — the end-to-end attack the
// detector warns about.
func TestSpectreConcreteExfiltration(t *testing.T) {
	recover := func(secret int) int {
		prog := compile(t, spectreGadget)
		sym := prog.SymbolByName("secret_val")
		sym.Init = []int64{int64(secret)}

		cfg := machine.DefaultConfig()
		cfg.ForceMispredict = true
		sim, err := machine.New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		// Attacker's probe phase: which probe line is cached? Each probe
		// value maps to its own 64-byte line (16 ints apart).
		probe := prog.SymbolByName("probe")
		first, n := sim.Layout.BlockRange(probe.ID)
		for v := 0; v < n; v++ {
			if sim.Cache.Contains(first + layout.BlockID(v)) {
				return v
			}
		}
		return -1
	}
	for _, secret := range []int{7, 42, 200} {
		if got := recover(secret); got != secret&255 {
			t.Errorf("recovered %d, want %d", got, secret&255)
		}
	}
}

// TestSpectreSquashedBeyondAddressSpace: an index far beyond the program's
// memory squashes the wrong path instead of faulting the run.
func TestSpectreSquashedBeyondAddressSpace(t *testing.T) {
	src := `
	int a_len = 16;
	int a[16];
	int probe[4096];
	int x = 1000000;
	int main() {
		reg int y;
		if (x < a_len) {
			y = a[x];
			return probe[(y & 255) * 16];
		}
		return 0;
	}`
	prog := compile(t, src)
	cfg := machine.DefaultConfig()
	cfg.ForceMispredict = true
	stats, err := machine.RunProgram(prog, cfg)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if stats.Ret != 0 {
		t.Errorf("result = %d, want 0", stats.Ret)
	}
}
