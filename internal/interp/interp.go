// Package interp executes IR programs concretely. It provides both a simple
// run-to-completion entry point and a single-step API with cloneable machine
// states, which the speculative CPU simulator uses to implement checkpoint
// and rollback.
package interp

import (
	"errors"
	"fmt"

	"specabsint/internal/ir"
)

// ErrOutOfBounds is returned when a memory access falls outside its symbol.
// The speculative simulator treats it as a faulting wrong-path access and
// squashes the speculation; a committed (architectural) out-of-bounds access
// is a program bug.
var ErrOutOfBounds = errors.New("interp: memory access out of bounds")

// ErrDivideByZero is returned for division or modulo by zero.
var ErrDivideByZero = errors.New("interp: division by zero")

// ErrStepLimit is returned when Run exceeds its step budget.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// State is a complete, copyable machine state.
type State struct {
	Regs  []int64
	Mem   [][]int64 // indexed by SymbolID, then element
	Block ir.BlockID
	IP    int // instruction index within Block
	Done  bool
	Ret   int64
	Steps int64
}

// Clone deep-copies the state (used for speculation checkpoints).
func (s *State) Clone() *State {
	c := &State{
		Regs:  append([]int64(nil), s.Regs...),
		Mem:   make([][]int64, len(s.Mem)),
		Block: s.Block,
		IP:    s.IP,
		Done:  s.Done,
		Ret:   s.Ret,
		Steps: s.Steps,
	}
	for i, m := range s.Mem {
		c.Mem[i] = append([]int64(nil), m...)
	}
	return c
}

// Hooks observe execution. Any hook may be nil.
type Hooks struct {
	// OnMem fires for every Load/Store with the accessed element index.
	OnMem func(in *ir.Instr, sym ir.SymbolID, elem int64, isStore bool)
	// OnBranch fires for every conditional branch with its outcome.
	OnBranch func(in *ir.Instr, taken bool)
}

// Machine executes a program.
type Machine struct {
	Prog  *ir.Program
	Hooks Hooks
	// ResolveOOB, when non-nil, redirects an out-of-bounds access to
	// another symbol/element instead of faulting — the speculative
	// simulator installs it during wrong-path execution, where real
	// hardware reads whatever memory sits at the computed address
	// (Spectre v1). Returning ok=false faults as usual.
	ResolveOOB func(sym ir.SymbolID, elem int64) (ir.SymbolID, int64, bool)
}

// NewMachine creates an executor for prog.
func NewMachine(prog *ir.Program) *Machine {
	return &Machine{Prog: prog}
}

// SetHooks installs the execution observers. It exists so the simulator can
// drive this machine and the bytecode-compiled one through one interface.
func (m *Machine) SetHooks(h Hooks) { m.Hooks = h }

// SetResolveOOB installs the wrong-path out-of-bounds redirection (see
// ResolveOOB).
func (m *Machine) SetResolveOOB(f func(ir.SymbolID, int64) (ir.SymbolID, int64, bool)) {
	m.ResolveOOB = f
}

// NewState builds the initial state: registers zeroed, memory zeroed and
// then filled from symbol initializers.
func (m *Machine) NewState() *State {
	st := &State{
		Regs:  make([]int64, m.Prog.NumRegs),
		Mem:   make([][]int64, len(m.Prog.Symbols)),
		Block: m.Prog.Entry,
	}
	for i, sym := range m.Prog.Symbols {
		st.Mem[i] = make([]int64, sym.Len)
		copy(st.Mem[i], sym.Init)
	}
	return st
}

func (s *State) value(v ir.Value) int64 {
	if v.IsConst {
		return v.Const
	}
	return s.Regs[v.Reg]
}

// CurrentInstr returns the instruction the state is about to execute, or nil
// when the state is done.
func (m *Machine) CurrentInstr(s *State) *ir.Instr {
	if s.Done {
		return nil
	}
	b := m.Prog.Block(s.Block)
	return &b.Instrs[s.IP]
}

// Step executes exactly one instruction, advancing the state.
func (m *Machine) Step(s *State) error {
	if s.Done {
		return fmt.Errorf("interp: step after completion")
	}
	in := m.CurrentInstr(s)
	s.Steps++
	advance := func() {
		s.IP++
	}
	switch in.Op {
	case ir.OpNop, ir.OpFence:
		// A fence is architecturally a no-op; its speculation-killing effect
		// lives in the speculative simulator and the abstract engine.
		advance()
	case ir.OpConst, ir.OpMov:
		s.Regs[in.Dst] = s.value(in.A)
		advance()
	case ir.OpNeg:
		s.Regs[in.Dst] = -s.value(in.A)
		advance()
	case ir.OpNot:
		s.Regs[in.Dst] = ^s.value(in.A)
		advance()
	case ir.OpBool:
		if s.value(in.A) != 0 {
			s.Regs[in.Dst] = 1
		} else {
			s.Regs[in.Dst] = 0
		}
		advance()
	case ir.OpLoad:
		symID, elem, err := m.resolveAccess(in, s.value(in.Idx))
		if err != nil {
			return err
		}
		if m.Hooks.OnMem != nil {
			m.Hooks.OnMem(in, symID, elem, false)
		}
		s.Regs[in.Dst] = s.Mem[symID][elem]
		advance()
	case ir.OpStore:
		symID, elem, err := m.resolveAccess(in, s.value(in.Idx))
		if err != nil {
			return err
		}
		if m.Hooks.OnMem != nil {
			m.Hooks.OnMem(in, symID, elem, true)
		}
		s.Mem[symID][elem] = s.value(in.A)
		advance()
	case ir.OpBr:
		s.Block = in.TrueTarget
		s.IP = 0
	case ir.OpCondBr:
		if in.Resolved {
			// The emitted program has an unconditional jump here: the
			// condition is not evaluated, the branch hook does not fire, and
			// even wrong-path (speculative) execution follows the taken edge.
			s.Block = in.TakenTarget()
			s.IP = 0
			break
		}
		taken := s.value(in.A) != 0
		if m.Hooks.OnBranch != nil {
			m.Hooks.OnBranch(in, taken)
		}
		if taken {
			s.Block = in.TrueTarget
		} else {
			s.Block = in.FalseTarget
		}
		s.IP = 0
	case ir.OpRet:
		s.Ret = s.value(in.A)
		s.Done = true
	default:
		v, err := EvalBinop(in.Op, s.value(in.A), s.value(in.B))
		if err != nil {
			return err
		}
		s.Regs[in.Dst] = v
		advance()
	}
	return nil
}

// resolveAccess bounds-checks an access, consulting ResolveOOB for
// out-of-bounds element indices.
func (m *Machine) resolveAccess(in *ir.Instr, elem int64) (ir.SymbolID, int64, error) {
	sym := m.Prog.Symbol(in.Sym)
	if elem >= 0 && elem < int64(sym.Len) {
		return in.Sym, elem, nil
	}
	if m.ResolveOOB != nil {
		if s2, e2, ok := m.ResolveOOB(in.Sym, elem); ok {
			return s2, e2, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: access %s[%d] (len %d)", ErrOutOfBounds, sym.Name, elem, sym.Len)
}

// EvalBinop evaluates a two-operand op with the machine's exact semantics
// (shift amounts masked to 6 bits, arithmetic right shift, faulting
// division). The pass pipeline's constant folder uses it too, so compile-time
// folding and runtime execution can never disagree.
func EvalBinop(op ir.Op, a, b int64) (int64, error) {
	switch op {
	case ir.OpAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpMul:
		return a * b, nil
	case ir.OpDiv:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return a / b, nil
	case ir.OpRem:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return a % b, nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	case ir.OpShl:
		return a << (uint64(b) & 63), nil
	case ir.OpShr:
		return a >> (uint64(b) & 63), nil
	case ir.OpCmpLt:
		return b2i(a < b), nil
	case ir.OpCmpLe:
		return b2i(a <= b), nil
	case ir.OpCmpGt:
		return b2i(a > b), nil
	case ir.OpCmpGe:
		return b2i(a >= b), nil
	case ir.OpCmpEq:
		return b2i(a == b), nil
	case ir.OpCmpNe:
		return b2i(a != b), nil
	}
	return 0, fmt.Errorf("interp: unknown op %s", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes the program to completion (or until maxSteps) and returns
// the final state.
func (m *Machine) Run(maxSteps int64) (*State, error) {
	st := m.NewState()
	return st, m.RunState(st, maxSteps)
}

// RunState executes from st until completion or the step budget runs out.
func (m *Machine) RunState(st *State, maxSteps int64) error {
	for !st.Done {
		if st.Steps >= maxSteps {
			return ErrStepLimit
		}
		if err := m.Step(st); err != nil {
			return err
		}
	}
	return nil
}
