package interp

import (
	"errors"
	"testing"

	"specabsint/internal/ir"
)

// buildProg creates: sum = 0; for i in 0..n-1: sum += arr[i]; return sum,
// using explicit IR (arr has 4 elements initialized 1,2,3,4).
func buildProg(t *testing.T) *ir.Program {
	t.Helper()
	bd := ir.NewBuilder("sum")
	arr := bd.AddSymbol("arr", 4, 4, false, []int64{1, 2, 3, 4})
	entry := bd.NewBlock("entry")
	head := bd.NewBlock("head")
	body := bd.NewBlock("body")
	exit := bd.NewBlock("exit")

	bd.SetBlock(entry)
	sum := bd.NewReg()
	i := bd.NewReg()
	bd.Mov(sum, ir.ConstVal(0))
	bd.Mov(i, ir.ConstVal(0))
	bd.Br(head)

	bd.SetBlock(head)
	c := bd.Binop(ir.OpCmpLt, ir.RegVal(i), ir.ConstVal(4))
	bd.CondBr(ir.RegVal(c), body, exit)

	bd.SetBlock(body)
	v := bd.Load(arr, ir.RegVal(i))
	s2 := bd.Binop(ir.OpAdd, ir.RegVal(sum), ir.RegVal(v))
	bd.Mov(sum, ir.RegVal(s2))
	i2 := bd.Binop(ir.OpAdd, ir.RegVal(i), ir.ConstVal(1))
	bd.Mov(i, ir.RegVal(i2))
	bd.Br(head)

	bd.SetBlock(exit)
	bd.Ret(ir.RegVal(sum))

	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRunLoop(t *testing.T) {
	m := NewMachine(buildProg(t))
	st, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ret != 10 {
		t.Errorf("sum = %d, want 10", st.Ret)
	}
}

func TestHooksObserveAccesses(t *testing.T) {
	m := NewMachine(buildProg(t))
	loads, branches := 0, 0
	m.Hooks = Hooks{
		OnMem:    func(in *ir.Instr, sym ir.SymbolID, elem int64, isStore bool) { loads++ },
		OnBranch: func(in *ir.Instr, taken bool) { branches++ },
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if loads != 4 {
		t.Errorf("loads = %d, want 4", loads)
	}
	if branches != 5 {
		t.Errorf("branches = %d, want 5", branches)
	}
}

func TestStepLimit(t *testing.T) {
	bd := ir.NewBuilder("spin")
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Br(entry)
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(prog).Run(100); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want step limit", err)
	}
}

func TestOutOfBounds(t *testing.T) {
	bd := ir.NewBuilder("oob")
	arr := bd.AddSymbol("arr", 4, 2, false, nil)
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	r := bd.Load(arr, ir.ConstVal(5))
	bd.Ret(ir.RegVal(r))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(prog).Run(100); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("err = %v, want out of bounds", err)
	}
}

func TestDivideByZero(t *testing.T) {
	bd := ir.NewBuilder("div0")
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	r := bd.Binop(ir.OpDiv, ir.ConstVal(1), ir.ConstVal(0))
	bd.Ret(ir.RegVal(r))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(prog).Run(100); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("err = %v, want divide by zero", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	m := NewMachine(buildProg(t))
	st := m.NewState()
	for j := 0; j < 3; j++ {
		if err := m.Step(st); err != nil {
			t.Fatal(err)
		}
	}
	clone := st.Clone()
	// Run the clone to completion; the original must be unaffected.
	if err := m.RunState(clone, 1000); err != nil {
		t.Fatal(err)
	}
	if !clone.Done || clone.Ret != 10 {
		t.Fatalf("clone: done=%v ret=%d", clone.Done, clone.Ret)
	}
	if st.Done {
		t.Error("original advanced by clone execution")
	}
	// Memory isolation: write into clone, original unchanged.
	clone.Mem[0][0] = 99
	if st.Mem[0][0] == 99 {
		t.Error("clone shares memory with original")
	}
	if err := m.RunState(st, 1000); err != nil {
		t.Fatal(err)
	}
	if st.Ret != 10 {
		t.Errorf("original ret = %d, want 10", st.Ret)
	}
}

func TestInitializerApplied(t *testing.T) {
	m := NewMachine(buildProg(t))
	st := m.NewState()
	want := []int64{1, 2, 3, 4}
	for i, v := range want {
		if st.Mem[0][i] != v {
			t.Errorf("mem[0][%d] = %d, want %d", i, st.Mem[0][i], v)
		}
	}
}

func TestAllBinops(t *testing.T) {
	cases := []struct {
		op      ir.Op
		a, b, r int64
	}{
		{ir.OpAdd, 3, 4, 7},
		{ir.OpSub, 3, 4, -1},
		{ir.OpMul, 3, 4, 12},
		{ir.OpDiv, 17, 5, 3},
		{ir.OpRem, 17, 5, 2},
		{ir.OpAnd, 12, 10, 8},
		{ir.OpOr, 12, 10, 14},
		{ir.OpXor, 12, 10, 6},
		{ir.OpShl, 1, 4, 16},
		{ir.OpShr, 16, 3, 2},
		{ir.OpCmpLt, 1, 2, 1},
		{ir.OpCmpLe, 2, 2, 1},
		{ir.OpCmpGt, 1, 2, 0},
		{ir.OpCmpGe, 2, 2, 1},
		{ir.OpCmpEq, 5, 5, 1},
		{ir.OpCmpNe, 5, 5, 0},
	}
	for _, tc := range cases {
		got, err := EvalBinop(tc.op, tc.a, tc.b)
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if got != tc.r {
			t.Errorf("%s(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.r)
		}
	}
}

func TestUnops(t *testing.T) {
	bd := ir.NewBuilder("unops")
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	a := bd.Unop(ir.OpNeg, ir.ConstVal(5))  // -5
	b := bd.Unop(ir.OpNot, ir.ConstVal(0))  // -1
	c := bd.Unop(ir.OpBool, ir.ConstVal(7)) // 1
	s1 := bd.Binop(ir.OpAdd, ir.RegVal(a), ir.RegVal(b))
	s2 := bd.Binop(ir.OpAdd, ir.RegVal(s1), ir.RegVal(c))
	bd.Ret(ir.RegVal(s2))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewMachine(prog).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ret != -5 {
		t.Errorf("got %d, want -5", st.Ret)
	}
}
