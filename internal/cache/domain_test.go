package cache

import (
	"testing"

	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// fourLine builds a layout with scalar symbols over a 4-line
// fully-associative cache, matching the paper's Fig. 5 / Fig. 12 /
// Appendix B examples.
func fourLine(t *testing.T, names ...string) (*layout.Layout, map[string]layout.BlockID) {
	t.Helper()
	bd := ir.NewBuilder("p")
	for _, n := range names {
		bd.AddSymbol(n, 4, 1, false, nil)
	}
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Ret(ir.ConstVal(0))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.New(prog, layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	blocks := map[string]layout.BlockID{}
	for _, s := range prog.Symbols {
		b, _ := l.BlockRange(s.ID)
		blocks[s.Name] = b
	}
	return l, blocks
}

// exact builds an exact access to a named block.
func exact(b layout.BlockID) Access { return Access{First: b, Count: 1} }

// mAge returns the must age, or 0 when not must-cached.
func mAge(s *State, b layout.BlockID) int {
	a, _ := s.Must(b)
	return a
}

// shAge returns the shadow age, or 0 when not may-cached.
func shAge(s *State, b layout.BlockID) int {
	a, _ := s.Shadow(b)
	return a
}

func TestTransferFig4LeftMiss(t *testing.T) {
	// Fig. 4 left: v not cached; u1..u4 at ages 1..4. Accessing v loads it
	// at age 1 and evicts u4.
	l, blk := fourLine(t, "v", "u1", "u2", "u3", "u4")
	d := &Domain{L: l, Refined: false}
	s := d.NewState()
	for i, n := range []string{"u1", "u2", "u3", "u4"} {
		s.SetMust(blk[n], i+1)
		s.SetShadow(blk[n], i+1)
	}
	d.Transfer(s, exact(blk["v"]))
	if mAge(s, blk["v"]) != 1 {
		t.Errorf("v age = %d, want 1", mAge(s, blk["v"]))
	}
	for i, n := range []string{"u1", "u2", "u3"} {
		if mAge(s, blk[n]) != i+2 {
			t.Errorf("%s age = %d, want %d", n, mAge(s, blk[n]), i+2)
		}
	}
	if _, cached := s.Must(blk["u4"]); cached {
		t.Error("u4 should be evicted")
	}
	if s.MayBeCached(blk["u4"]) {
		t.Error("u4 should not even be may-cached")
	}
}

func TestTransferFig4RightHit(t *testing.T) {
	// Fig. 4 right: v at age 2; u younger (1), w1/w2 older (3,4). Accessing
	// v moves it to 1; u ages to 2; w1/w2 keep their ages.
	l, blk := fourLine(t, "u", "v", "w1", "w2")
	d := &Domain{L: l, Refined: false}
	s := d.NewState()
	ages := map[string]int{"u": 1, "v": 2, "w1": 3, "w2": 4}
	for n, a := range ages {
		s.SetMust(blk[n], a)
		s.SetShadow(blk[n], a)
	}
	d.Transfer(s, exact(blk["v"]))
	want := map[string]int{"v": 1, "u": 2, "w1": 3, "w2": 4}
	for n, a := range want {
		if mAge(s, blk[n]) != a {
			t.Errorf("%s age = %d, want %d", n, mAge(s, blk[n]), a)
		}
	}
}

func TestJoinFig5(t *testing.T) {
	// Fig. 5: S has x:1,y:2,z:3,k:4; S' has t:1,z:2,x:3,k:4.
	// Join keeps x:3, z:3, k:4; y and t drop out of the must state.
	l, blk := fourLine(t, "x", "y", "z", "k", "t")
	d := &Domain{L: l, Refined: true}
	s1 := d.NewState()
	for n, a := range map[string]int{"x": 1, "y": 2, "z": 3, "k": 4} {
		s1.SetMust(blk[n], a)
		s1.SetShadow(blk[n], a)
	}
	s2 := d.NewState()
	for n, a := range map[string]int{"t": 1, "z": 2, "x": 3, "k": 4} {
		s2.SetMust(blk[n], a)
		s2.SetShadow(blk[n], a)
	}
	j := d.Join(s1, s2)
	wantMust := map[string]int{"x": 3, "z": 3, "k": 4}
	if j.MustCount() != len(wantMust) {
		t.Errorf("join must size = %d, want %d (%v)", j.MustCount(), len(wantMust), j)
	}
	for n, a := range wantMust {
		if mAge(j, blk[n]) != a {
			t.Errorf("must %s = %d, want %d", n, mAge(j, blk[n]), a)
		}
	}
	// Example B.3: shadow ages are pointwise minima over the union.
	wantShadow := map[string]int{"x": 1, "t": 1, "y": 2, "z": 2, "k": 4}
	for n, a := range wantShadow {
		if shAge(j, blk[n]) != a {
			t.Errorf("shadow %s = %d, want %d", n, shAge(j, blk[n]), a)
		}
	}
}

// appendixBState reproduces the pre-state of Example B.2:
// must [{},{},{x,z},{k}], shadow [{∃x,∃t},{∃y,∃z},{},{∃k}].
func appendixBState(d *Domain, blk map[string]layout.BlockID) *State {
	s := d.NewState()
	s.SetMust(blk["x"], 3)
	s.SetMust(blk["z"], 3)
	s.SetMust(blk["k"], 4)
	for n, a := range map[string]int{"x": 1, "t": 1, "y": 2, "z": 2, "k": 4} {
		s.SetShadow(blk[n], a)
	}
	return s
}

func TestAppendixBRefX(t *testing.T) {
	l, blk := fourLine(t, "x", "y", "z", "k", "t")
	d := &Domain{L: l, Refined: true}
	s := appendixBState(d, blk)
	d.Transfer(s, exact(blk["x"]))
	// Expected: shadow [{∃x},{∃t,∃y,∃z},{},{∃k}], must [{x},{},{z},{k}].
	wantShadow := map[string]int{"x": 1, "t": 2, "y": 2, "z": 2, "k": 4}
	for n, a := range wantShadow {
		if shAge(s, blk[n]) != a {
			t.Errorf("shadow %s = %d, want %d", n, shAge(s, blk[n]), a)
		}
	}
	wantMust := map[string]int{"x": 1, "z": 3, "k": 4}
	if s.MustCount() != len(wantMust) {
		t.Errorf("must size = %d, want %d", s.MustCount(), len(wantMust))
	}
	for n, a := range wantMust {
		if mAge(s, blk[n]) != a {
			t.Errorf("must %s = %d, want %d", n, mAge(s, blk[n]), a)
		}
	}
}

func TestAppendixBRefY(t *testing.T) {
	// Fig. 12: accessing y on the merged state ages x and z by one and
	// evicts k (NYoung rule keeps them from aging *less* than that).
	l, blk := fourLine(t, "x", "y", "z", "k", "t")
	d := &Domain{L: l, Refined: true}
	s := appendixBState(d, blk)
	d.Transfer(s, exact(blk["y"]))
	wantShadow := map[string]int{"y": 1, "x": 2, "t": 2, "z": 3, "k": 4}
	for n, a := range wantShadow {
		if shAge(s, blk[n]) != a {
			t.Errorf("shadow %s = %d, want %d", n, shAge(s, blk[n]), a)
		}
	}
	wantMust := map[string]int{"y": 1, "x": 4, "z": 4}
	if s.MustCount() != len(wantMust) {
		t.Errorf("must count = %d, want %d", s.MustCount(), len(wantMust))
	}
	for n, a := range wantMust {
		if mAge(s, blk[n]) != a {
			t.Errorf("must %s = %d, want %d", n, mAge(s, blk[n]), a)
		}
	}
	if _, cached := s.Must(blk["k"]); cached {
		t.Error("k should be evicted from the must state")
	}
}

func TestAppendixBRefK(t *testing.T) {
	l, blk := fourLine(t, "x", "y", "z", "k", "t")
	d := &Domain{L: l, Refined: true}
	s := appendixBState(d, blk)
	d.Transfer(s, exact(blk["k"]))
	// Expected shadow: [{∃k},{∃x,∃t},{∃y,∃z},{}].
	wantShadow := map[string]int{"k": 1, "x": 2, "t": 2, "y": 3, "z": 3}
	for n, a := range wantShadow {
		if shAge(s, blk[n]) != a {
			t.Errorf("shadow %s = %d, want %d", n, shAge(s, blk[n]), a)
		}
	}
	// Must: k becomes 1; x and z have NYoung >= 3, so they age to 4.
	wantMust := map[string]int{"k": 1, "x": 4, "z": 4}
	for n, a := range wantMust {
		if mAge(s, blk[n]) != a {
			t.Errorf("must %s = %d, want %d", n, mAge(s, blk[n]), a)
		}
	}
}

// TestAppendixCLoop replays the Appendix C table: the loop of Fig. 11/13
// with a 4-line cache. With the refined join, `a` survives at age 3 at the
// fixed point (S10); with the original rule it is evicted on round 4.
func TestAppendixCLoop(t *testing.T) {
	l, blk := fourLine(t, "a", "b", "c")
	a, b, c := blk["a"], blk["b"], blk["c"]

	run := func(refined bool, rounds int) *State {
		d := &Domain{L: l, Refined: refined}
		s := d.NewState()
		d.Transfer(s, exact(a)) // S1 = ref a
		for i := 0; i < rounds; i++ {
			sb := s.Clone()
			d.Transfer(sb, exact(b))
			sc := s.Clone()
			d.Transfer(sc, exact(c))
			s = d.Join(sb, sc)
		}
		return s
	}

	// Refined: fixed point with a kept at age 3 (S10 in the appendix).
	refined := run(true, 3)
	if got := mAge(refined, a); got != 3 {
		t.Errorf("refined: a at age %d, want 3 (kept in cache)", got)
	}
	// Original: S10 has a at age 4 and the next round evicts it.
	if got := mAge(run(false, 3), a); got != 4 {
		t.Errorf("original after 3 rounds: a at age %d, want 4", got)
	}
	if _, cached := run(false, 4).Must(a); cached {
		t.Error("original after 4 rounds: a should be evicted")
	}
	// The refined analysis never evicts a, no matter how long it runs.
	if got := mAge(run(true, 10), a); got != 3 {
		t.Errorf("refined after 10 rounds: a at age %d, want 3", got)
	}
}

func TestAppendixCFixedPoint(t *testing.T) {
	// With shadow variables the state reaches a fixed point after three
	// iterations.
	l, blk := fourLine(t, "a", "b", "c")
	a, b, c := blk["a"], blk["b"], blk["c"]
	d := &Domain{L: l, Refined: true}
	s := d.NewState()
	d.Transfer(s, exact(a))
	var prev *State
	for i := 0; i < 10; i++ {
		sb := s.Clone()
		d.Transfer(sb, exact(b))
		sc := s.Clone()
		d.Transfer(sc, exact(c))
		next := d.Join(sb, sc)
		if prev != nil && next.Equal(prev) {
			if i > 3 {
				t.Errorf("fixed point only after %d iterations", i)
			}
			return
		}
		prev = next
		s = next
	}
	t.Fatal("no fixed point within 10 iterations")
}

func TestRangeAccessAgesEverything(t *testing.T) {
	l, blk := fourLine(t, "x", "y", "arr")
	d := &Domain{L: l, Refined: false}
	s := d.NewState()
	s.SetMust(blk["x"], 1)
	s.SetShadow(blk["x"], 1)
	s.SetMust(blk["y"], 2)
	s.SetShadow(blk["y"], 2)
	// Unknown access somewhere within a two-block range (arr's block plus
	// the next one; the layout has no symbol there but the id is valid for
	// the transfer).
	d.Transfer(s, Access{First: blk["x"], Count: 2})
	if mAge(s, blk["x"]) != 2 || mAge(s, blk["y"]) != 3 {
		t.Errorf("x=%d y=%d, want 2,3", mAge(s, blk["x"]), mAge(s, blk["y"]))
	}
	// No candidate becomes must-cached beyond its previous bound...
	if _, ok := s.Must(blk["arr"]); ok {
		t.Error("unknown access must not create must-hits")
	}
	// But all candidates may be cached now.
	if shAge(s, blk["x"]) != 1 || shAge(s, blk["y"]) != 1 {
		t.Error("candidates should be may-cached at age 1")
	}
}

func TestRangeAccessRepeatedEvicts(t *testing.T) {
	// Four unknown accesses to a 4-block array in a 4-way cache evict a
	// previously cached scalar — the paper's Table 1 loop behaviour.
	bd := ir.NewBuilder("p")
	bd.AddSymbol("s", 4, 1, false, nil)
	bd.AddSymbol("arr", 4, 64, false, nil) // 256B = 4 blocks
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Ret(ir.ConstVal(0))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.New(prog, layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	sBlk, _ := l.BlockRange(prog.SymbolByName("s").ID)
	aBlk, n := l.BlockRange(prog.SymbolByName("arr").ID)
	if n != 4 {
		t.Fatalf("arr spans %d blocks, want 4", n)
	}

	d := &Domain{L: l, Refined: false}
	st := d.NewState()
	d.Transfer(st, exact(sBlk))
	for i := 0; i < 3; i++ {
		d.Transfer(st, Access{First: aBlk, Count: 4})
		if !st.MustHit(sBlk, 4) {
			t.Fatalf("s evicted after %d unknown accesses, want survival through 3", i+1)
		}
	}
	d.Transfer(st, Access{First: aBlk, Count: 4})
	if st.MustHit(sBlk, 4) {
		t.Error("s should not be guaranteed cached after 4 unknown accesses")
	}
}

func TestClassify(t *testing.T) {
	l, blk := fourLine(t, "x", "y")
	d := NewDomain(l)
	s := d.NewState()
	s.SetMust(blk["x"], 2)
	s.SetShadow(blk["x"], 1)
	if got := d.Classify(s, exact(blk["x"])); got != AlwaysHit {
		t.Errorf("x: %v, want always-hit", got)
	}
	if got := d.Classify(s, exact(blk["y"])); got != AlwaysMiss {
		t.Errorf("y: %v, want always-miss (not even may-cached)", got)
	}
	s.SetShadow(blk["y"], 3) // may be cached, not guaranteed
	if got := d.Classify(s, exact(blk["y"])); got != Unknown {
		t.Errorf("y: %v, want unknown", got)
	}
}

func TestBottomJoinIdentity(t *testing.T) {
	l, blk := fourLine(t, "x")
	d := NewDomain(l)
	s := d.NewState()
	s.SetMust(blk["x"], 1)
	s.SetShadow(blk["x"], 1)
	j := d.Join(Bottom(), s)
	if !j.Equal(s) {
		t.Error("join(bottom, s) != s")
	}
	j = d.Join(s, Bottom())
	if !j.Equal(s) {
		t.Error("join(s, bottom) != s")
	}
	if !d.Leq(Bottom(), s) {
		t.Error("bottom should be ⊑ everything")
	}
	if d.Leq(s, Bottom()) {
		t.Error("s should not be ⊑ bottom")
	}
}

func TestJoinIntoMatchesJoin(t *testing.T) {
	l, blk := fourLine(t, "x", "y", "z")
	d := NewDomain(l)
	a := d.NewState()
	a.SetMust(blk["x"], 1)
	a.SetMust(blk["y"], 2)
	a.SetShadow(blk["x"], 1)
	a.SetShadow(blk["y"], 2)
	b := d.NewState()
	b.SetMust(blk["x"], 2)
	b.SetMust(blk["z"], 1)
	b.SetShadow(blk["x"], 2)
	b.SetShadow(blk["z"], 1)
	j := d.Join(a, b)
	into := a.Clone()
	if !d.JoinInto(into, b) {
		t.Error("JoinInto should report a change")
	}
	if !into.Equal(j) {
		t.Errorf("JoinInto %v != Join %v", into, j)
	}
	if d.JoinInto(into, b) {
		t.Error("second JoinInto should be a no-op")
	}
}

func TestLeqOrder(t *testing.T) {
	l, blk := fourLine(t, "x", "y")
	d := NewDomain(l)
	strong := d.NewState()
	strong.SetMust(blk["x"], 1)
	strong.SetShadow(blk["x"], 2)
	weak := d.NewState()
	weak.SetMust(blk["x"], 3) // older must age = weaker guarantee
	weak.SetShadow(blk["x"], 1)
	weak.SetShadow(blk["y"], 1)
	if !d.Leq(strong, weak) {
		t.Error("strong ⊑ weak expected")
	}
	if d.Leq(weak, strong) {
		t.Error("weak ⊑ strong must not hold")
	}
	if !d.Leq(strong, strong) {
		t.Error("⊑ must be reflexive")
	}
}

func TestJoinIsLub(t *testing.T) {
	l, blk := fourLine(t, "x", "y", "z")
	d := NewDomain(l)
	a := d.NewState()
	a.SetMust(blk["x"], 1)
	a.SetMust(blk["y"], 2)
	a.SetShadow(blk["x"], 1)
	a.SetShadow(blk["y"], 2)
	b := d.NewState()
	b.SetMust(blk["x"], 2)
	b.SetMust(blk["z"], 1)
	b.SetShadow(blk["x"], 2)
	b.SetShadow(blk["z"], 1)
	j := d.Join(a, b)
	if !d.Leq(a, j) || !d.Leq(b, j) {
		t.Error("join must be an upper bound of both inputs")
	}
	if !d.Leq(j, j) {
		t.Error("join not reflexively ordered")
	}
}

func TestWidenOverApproximatesJoin(t *testing.T) {
	l, blk := fourLine(t, "x", "y")
	d := NewDomain(l)
	prev := d.NewState()
	prev.SetMust(blk["x"], 1)
	prev.SetMust(blk["y"], 2)
	prev.SetShadow(blk["x"], 1)
	prev.SetShadow(blk["y"], 2)
	next := prev.Clone()
	next.SetMust(blk["x"], 2) // grew
	next.SetShadow(blk["y"], 1)
	w := d.Widen(prev, next)
	if !d.Leq(next, w) {
		t.Error("widen must over-approximate next")
	}
	if _, ok := w.Must(blk["x"]); ok {
		t.Error("growing must age should jump to evicted")
	}
	if mAge(w, blk["y"]) != 2 {
		t.Error("stable must age should be kept")
	}
}

func TestTransferOnBottomIsNoop(t *testing.T) {
	l, blk := fourLine(t, "x")
	d := NewDomain(l)
	s := Bottom()
	d.Transfer(s, exact(blk["x"]))
	if !s.IsBottom {
		t.Error("transfer must preserve bottom")
	}
}

func TestStateCloneIndependence(t *testing.T) {
	l, blk := fourLine(t, "x", "y")
	d := NewDomain(l)
	s := d.NewState()
	d.Transfer(s, exact(blk["x"]))
	c := s.Clone()
	d.Transfer(c, exact(blk["y"]))
	if _, ok := s.Must(blk["y"]); ok {
		t.Error("mutating the clone leaked into the original")
	}
}

func TestStateFormat(t *testing.T) {
	l, blk := fourLine(t, "x", "y")
	d := NewDomain(l)
	s := d.NewState()
	d.Transfer(s, exact(blk["x"]))
	d.Transfer(s, exact(blk["y"]))
	got := s.Format(l)
	if got != "[{y} {x}]" {
		t.Errorf("format = %q, want [{y} {x}]", got)
	}
	if Bottom().Format(l) != "⊥" {
		t.Error("bottom format")
	}
}

func TestMustBlocksOrdering(t *testing.T) {
	l, blk := fourLine(t, "x", "y", "z")
	d := NewDomain(l)
	s := d.NewState()
	d.Transfer(s, exact(blk["z"]))
	d.Transfer(s, exact(blk["x"]))
	d.Transfer(s, exact(blk["y"]))
	ids := s.MustBlocks()
	want := []layout.BlockID{blk["y"], blk["x"], blk["z"]}
	if len(ids) != 3 {
		t.Fatalf("got %d blocks", len(ids))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("MustBlocks[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
}

func TestSetAssociativeIsolation(t *testing.T) {
	// Two blocks in different sets must not age each other.
	bd := ir.NewBuilder("p")
	bd.AddSymbol("a", 64, 1, false, nil) // block 0 -> set 0
	bd.AddSymbol("b", 64, 1, false, nil) // block 1 -> set 1
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Ret(ir.ConstVal(0))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.New(prog, layout.CacheConfig{LineSize: 64, NumSets: 2, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDomain(l)
	aBlk, _ := l.BlockRange(prog.SymbolByName("a").ID)
	bBlk, _ := l.BlockRange(prog.SymbolByName("b").ID)
	if l.SetOf(aBlk) == l.SetOf(bBlk) {
		t.Fatal("test setup: blocks should be in different sets")
	}
	s := d.NewState()
	d.Transfer(s, exact(aBlk))
	d.Transfer(s, exact(bBlk))
	if mAge(s, aBlk) != 1 {
		t.Errorf("a aged to %d by an access in another set", mAge(s, aBlk))
	}
}
