package cache

import "specabsint/internal/layout"

// Persistence analysis (Ferdinand's third cache analysis, cited by the
// paper alongside must/may): a block is *persistent* at an access when,
// once it has been loaded, no path can evict it again — so all dynamic
// executions of the access miss at most once in total ("first miss").
//
// The domain reuses State's must vector with a different encoding:
//
//	0            — ⊥: never loaded yet (join identity)
//	1..assoc     — upper bound of the block's age since its first load
//	persistTop   — may have been evicted after loading (sticky)
//
// Ages never shrink (re-accessing a block does not rejuvenate its tracked
// maximum), joins take the pointwise max (persistTop absorbs, 0 is the
// identity — both fall out of plain max), and an access is classified
// persistent (reported as AlwaysHit) when no candidate block is persistTop.
// The shadow vector keeps its usual may semantics for AlwaysMiss reporting.
const persistTop = ^uint16(0)

// persistAccessExact ages every loaded block in v's set and marks v loaded.
func (d *Domain) persistAccessExact(s *State, v layout.BlockID) {
	assoc := d.assoc()
	stride := d.L.Config.NumSets
	d.shadowUpdateExact(s, v) // may component unchanged in meaning

	oldV := s.must[v]
	for i := d.setStart(v); i < len(s.must); i += stride {
		a := s.must[i]
		if a == 0 || a == persistTop || layout.BlockID(i) == v {
			continue
		}
		// v's (re)load can push u down only if u sits above v's position;
		// when v's age is unknown (fresh or evicted) assume the worst.
		if oldV != 0 && oldV != persistTop && a >= oldV {
			continue
		}
		if int(a)+1 > assoc {
			s.must[i] = persistTop
		} else {
			s.must[i] = a + 1
		}
	}
	if s.must[v] == 0 {
		s.must[v] = 1
	}
	// A re-access does NOT lower the tracked maximum age (and persistTop is
	// sticky): the quantity is "oldest the block has ever been".
}

// persistAccessRange handles an unknown-target access: every loaded block in
// an affected set may age; candidates count as loaded from now on (starting
// the clock early only raises the tracked maximum — sound).
func (d *Domain) persistAccessRange(s *State, acc Access) {
	assoc := d.assoc()
	numSets := d.L.Config.NumSets
	affected := d.affectedSets(acc)
	for i := 0; i < acc.Count; i++ {
		b := acc.First + layout.BlockID(i)
		s.shadow[b] = 1
		if s.must[b] == 0 {
			s.must[b] = 1
		}
	}
	for _, set := range affected {
		for i := set; i < len(s.must); i += numSets {
			a := s.must[i]
			if a == 0 || a == persistTop {
				continue
			}
			if int(a)+1 > assoc {
				s.must[i] = persistTop
			} else {
				s.must[i] = a + 1
			}
		}
	}
}

// persistJoinInto merges with pointwise max: persistTop absorbs and ⊥ (0)
// is the identity, both directly from uint16 ordering.
func (d *Domain) persistJoinInto(dst, src *State) bool {
	if src.IsBottom {
		return false
	}
	if dst.IsBottom {
		dst.CopyFrom(src)
		return true
	}
	changed := false
	d.spans(func(start, stride int) bool {
		for i := start; i < len(dst.must); i += stride {
			if src.must[i] > dst.must[i] {
				dst.must[i] = src.must[i]
				changed = true
			}
			ds, ss := dst.shadow[i], src.shadow[i]
			if ss != 0 && (ds == 0 || ss < ds) {
				dst.shadow[i] = ss
				changed = true
			}
		}
		return true
	})
	return changed
}

// persistLeq is the pointwise order matching persistJoinInto.
func (d *Domain) persistLeq(a, b *State) bool {
	if a.IsBottom {
		return true
	}
	if b.IsBottom {
		return false
	}
	leq := true
	d.spans(func(start, stride int) bool {
		for i := start; i < len(a.must); i += stride {
			if a.must[i] > b.must[i] {
				leq = false
				return false
			}
			as, bs := a.shadow[i], b.shadow[i]
			if as != 0 && (bs == 0 || bs > as) {
				leq = false
				return false
			}
		}
		return true
	})
	return leq
}

// persistWiden jumps growing ages straight to persistTop.
func (d *Domain) persistWiden(prev, next *State) *State {
	if prev.IsBottom {
		return next.Clone()
	}
	if next.IsBottom {
		return prev.Clone()
	}
	out := next.Clone()
	d.spans(func(start, stride int) bool {
		for i := start; i < len(out.must); i += stride {
			if next.must[i] > prev.must[i] && prev.must[i] != 0 {
				out.must[i] = persistTop
			}
			ns, ps := next.shadow[i], prev.shadow[i]
			if (ns != 0 && (ps == 0 || ns < ps)) || (ns == 0 && ps != 0) {
				out.shadow[i] = 1
			}
		}
		return true
	})
	return out
}

// persistClassify reports AlwaysHit ("persistent": at most one miss across
// all executions of the access) when no candidate may have been evicted
// after loading; AlwaysMiss keeps its usual may-based meaning.
func (d *Domain) persistClassify(s *State, acc Access) Classification {
	if s.IsBottom {
		return Unknown
	}
	persistent, allMiss := true, true
	for i := 0; i < acc.Count; i++ {
		b := acc.First + layout.BlockID(i)
		if s.must[b] == persistTop {
			persistent = false
		}
		if s.MayBeCached(b) {
			allMiss = false
		}
	}
	switch {
	case persistent:
		return AlwaysHit
	case allMiss:
		return AlwaysMiss
	}
	return Unknown
}
