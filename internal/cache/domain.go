package cache

import (
	"encoding/json"

	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// Access describes the blocks a memory instruction may touch. Exactly one
// of the Count candidate blocks [First, First+Count) is accessed; Count == 1
// means the block is statically known.
type Access struct {
	Sym   ir.SymbolID
	First layout.BlockID
	Count int
}

// Exact reports whether the accessed block is statically known.
func (a Access) Exact() bool { return a.Count == 1 }

// Blocks returns the candidate block ids.
func (a Access) Blocks() []layout.BlockID {
	ids := make([]layout.BlockID, a.Count)
	for i := range ids {
		ids[i] = a.First + layout.BlockID(i)
	}
	return ids
}

// Classification of a single access against an abstract state.
type Classification int

// Access classifications.
const (
	Unknown Classification = iota
	AlwaysHit
	AlwaysMiss
)

// String names the classification.
func (c Classification) String() string {
	switch c {
	case AlwaysHit:
		return "always-hit"
	case AlwaysMiss:
		return "always-miss"
	}
	return "unknown"
}

// MarshalJSON renders the classification as its name.
func (c Classification) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// Domain bundles the layout with analysis options and implements the
// abstract operations. All operations iterate the block universe with the
// stride of the cache-set mapping, so only blocks competing for the accessed
// set are touched.
type Domain struct {
	L *layout.Layout
	// Refined enables the Appendix-B shadow-variable aging rule (NYoung);
	// when false the classic Ferdinand aging rule is used. The shadow (may)
	// component is maintained either way for Always-Miss classification.
	Refined bool
	// Persist switches the domain to the persistence ("first miss")
	// analysis: ages become sticky maxima since first load, joins take the
	// pointwise max, and AlwaysHit means "misses at most once in total".
	// See persist.go.
	Persist bool
	// Filter, when non-nil, restricts the domain to a subset of the cache
	// sets: Transfer ignores accesses outside the filter, and JoinInto /
	// Leq / Equal / Widen iterate only the owned sets' blocks. See filter.go.
	Filter *SetFilter

	// prefix is scratch for the NYoung cumulative histogram.
	prefix []int
	// affected/affectedList are scratch for range transfers: membership mask
	// and list of the cache sets a range access may touch. Reused across
	// calls so the hot path performs no per-transfer allocation.
	affected     []bool
	affectedList []int
}

// affectedSets collects the distinct cache sets touched by acc into the
// domain's scratch list, returning it. Valid until the next call.
func (d *Domain) affectedSets(acc Access) []int {
	numSets := d.L.Config.NumSets
	if len(d.affected) < numSets {
		d.affected = make([]bool, numSets)
	}
	d.affectedList = d.affectedList[:0]
	for i := 0; i < acc.Count && len(d.affectedList) < numSets; i++ {
		set := d.L.SetOf(acc.First + layout.BlockID(i))
		if !d.affected[set] {
			d.affected[set] = true
			d.affectedList = append(d.affectedList, set)
		}
	}
	for _, set := range d.affectedList {
		d.affected[set] = false
	}
	return d.affectedList
}

// NewDomain creates a refined domain over l.
func NewDomain(l *layout.Layout) *Domain { return &Domain{L: l, Refined: true} }

// NewState returns the empty-cache state sized for the domain's layout.
func (d *Domain) NewState() *State { return NewState(d.L.NumBlocks) }

func (d *Domain) assoc() int { return d.L.Config.Assoc }

// setStart returns the first block id in the same cache set as b, so that
// iterating with stride NumSets visits exactly b's competitors.
func (d *Domain) setStart(b layout.BlockID) int { return d.L.SetOf(b) }

// Owns reports whether acc falls inside the domain's set filter. The
// partitioned engine's grouping guarantees all candidate blocks of an access
// share one set group, so checking the first candidate suffices.
func (d *Domain) Owns(acc Access) bool {
	return d.Filter == nil || d.Filter.Contains(d.L.SetOf(acc.First))
}

// Transfer applies one memory access to the state in place. Accesses outside
// the domain's set filter are no-ops: their effects are confined to cache
// sets this domain does not own.
func (d *Domain) Transfer(s *State, acc Access) {
	if s.IsBottom || !d.Owns(acc) {
		return
	}
	if d.Persist {
		if acc.Exact() {
			d.persistAccessExact(s, acc.First)
		} else {
			d.persistAccessRange(s, acc)
		}
		return
	}
	if acc.Exact() {
		d.accessExact(s, acc.First)
		return
	}
	d.accessRange(s, acc)
}

// shadowUpdateExact applies the Appendix-B may-aging for a known access:
// blocks whose shadow age is <= the accessed block's old shadow age get one
// step older. When the domain is refined, the histogram of the *new* shadow
// ages is collected into d.prefix in the same pass (avoiding a second scan
// for the NYoung rule).
func (d *Domain) shadowUpdateExact(s *State, v layout.BlockID) {
	assoc := uint16(d.assoc())
	stride := d.L.Config.NumSets
	oldShadowV := s.shadow[v] // 0 = infinity
	counting := d.Refined
	if counting {
		if cap(d.prefix) < int(assoc)+2 {
			d.prefix = make([]int, int(assoc)+2)
		}
		d.prefix = d.prefix[:int(assoc)+2]
		for i := range d.prefix {
			d.prefix[i] = 0
		}
	}
	for i := d.setStart(v); i < len(s.shadow); i += stride {
		a := s.shadow[i]
		if a == 0 {
			continue
		}
		if layout.BlockID(i) != v && (oldShadowV == 0 || a <= oldShadowV) {
			if a+1 > assoc {
				s.shadow[i] = 0
				continue
			}
			a++
			s.shadow[i] = a
		}
		if counting && layout.BlockID(i) != v {
			d.prefix[a]++
		}
	}
	s.shadow[v] = 1
	if counting {
		d.prefix[1]++ // v itself
		for a := 2; a <= int(assoc)+1; a++ {
			d.prefix[a] += d.prefix[a-1]
		}
	}
}

// buildPrefix fills d.prefix with the cumulative histogram of the (already
// updated) shadow ages of one set: prefix[a] = number of shadow blocks in
// the set with age <= a. It makes the NYoung rule O(1) per aged block.
func (d *Domain) buildPrefix(s *State, set int) {
	assoc := d.assoc()
	if cap(d.prefix) < assoc+2 {
		d.prefix = make([]int, assoc+2)
	}
	d.prefix = d.prefix[:assoc+2]
	for i := range d.prefix {
		d.prefix[i] = 0
	}
	stride := d.L.Config.NumSets
	for i := set; i < len(s.shadow); i += stride {
		if a := int(s.shadow[i]); a != 0 && a <= assoc {
			d.prefix[a]++
		}
	}
	for a := 1; a <= assoc+1; a++ {
		d.prefix[a] += d.prefix[a-1]
	}
}

// shouldAge implements the NYoung rule: u ages only if at least Age(u)
// shadow blocks (other than u, in u's set) may be younger than or as young
// as u. Shadow ages are the *new* ages, per Appendix B.
func (d *Domain) shouldAge(s *State, u int, ageU int) bool {
	idx := ageU
	if idx >= len(d.prefix) {
		idx = len(d.prefix) - 1
	}
	n := d.prefix[idx]
	if a := int(s.shadow[u]); a != 0 && a <= ageU {
		n-- // u itself does not count toward NYoung(u)
	}
	return n >= ageU
}

// accessExact implements the Fig. 4 / Appendix B transfer for a known block.
func (d *Domain) accessExact(s *State, v layout.BlockID) {
	assoc := d.assoc()
	stride := d.L.Config.NumSets

	d.shadowUpdateExact(s, v) // also builds d.prefix when refined

	oldMustV := int(s.must[v]) // 0 = infinity
	for i := d.setStart(v); i < len(s.must); i += stride {
		a := int(s.must[i])
		if a == 0 || layout.BlockID(i) == v {
			continue
		}
		if oldMustV != 0 && a >= oldMustV {
			continue
		}
		if d.Refined && !d.shouldAge(s, i, a) {
			continue
		}
		if a+1 > assoc {
			s.must[i] = 0
		} else {
			s.must[i] = uint16(a + 1)
		}
	}
	if assoc >= 1 {
		s.must[v] = 1
	}
}

// accessRange handles an access whose target block is only known to lie in
// [First, First+Count): exactly one of them is touched, so every block in an
// affected set may age by one, and no block becomes must-cached; on the may
// side every candidate may now be the youngest.
func (d *Domain) accessRange(s *State, acc Access) {
	assoc := d.assoc()
	numSets := d.L.Config.NumSets
	affected := d.affectedSets(acc)

	// Shadow: candidates may be youngest now. Other blocks keep their
	// lower bounds (the access may have gone elsewhere in their set).
	for i := 0; i < acc.Count; i++ {
		s.shadow[acc.First+layout.BlockID(i)] = 1
	}

	// Must: age every block in an affected set (the accessed block's age is
	// unknown, so conservatively it evicts from the bottom of the set).
	for _, set := range affected {
		if d.Refined {
			d.buildPrefix(s, set)
		}
		for i := set; i < len(s.must); i += numSets {
			a := int(s.must[i])
			if a == 0 {
				continue
			}
			if d.Refined && !d.shouldAge(s, i, a) {
				continue
			}
			if a+1 > assoc {
				s.must[i] = 0
			} else {
				s.must[i] = uint16(a + 1)
			}
		}
	}
}

// TransferInto makes dst a copy of src with one access applied — the
// allocation-free replacement for the engine's clone-then-mutate pattern
// (dst is typically pooled scratch).
func (d *Domain) TransferInto(dst, src *State, acc Access) {
	dst.CopyFrom(src)
	d.Transfer(dst, acc)
}

// spans invokes fn once per (start, stride) index span the domain's filter
// selects: the whole vector when unfiltered, or one span per owned cache set.
// fn returns whether to keep going (false short-circuits, for Leq/Equal).
func (d *Domain) spans(fn func(start, stride int) bool) {
	if d.Filter == nil {
		fn(0, 1)
		return
	}
	for _, set := range d.Filter.Sets() {
		if !fn(d.L.SetSpan(set)) {
			return
		}
	}
}

// Join returns the least upper bound of a and b (Fig. 5 plus the Appendix-B
// shadow rule): max of must ages (with 0 = infinity absorbing), min of
// shadow ages (with 0 = infinity neutral).
func (d *Domain) Join(a, b *State) *State {
	if a.IsBottom {
		return b.Clone()
	}
	if b.IsBottom {
		return a.Clone()
	}
	out := a.Clone()
	d.JoinInto(out, b)
	return out
}

// JoinInto merges src into dst in place and reports whether dst changed.
// JoinInto copies out of src and never retains it, so callers may pool src.
func (d *Domain) JoinInto(dst, src *State) bool {
	if d.Persist {
		return d.persistJoinInto(dst, src)
	}
	if src.IsBottom {
		return false
	}
	if dst.IsBottom {
		dst.CopyFrom(src)
		return true
	}
	changed := false
	d.spans(func(start, stride int) bool {
		for i := start; i < len(dst.must); i += stride {
			dm, sm := dst.must[i], src.must[i]
			if dm != 0 && (sm == 0 || sm > dm) {
				dst.must[i] = sm
				changed = true
			}
			ds, ss := dst.shadow[i], src.shadow[i]
			if ss != 0 && (ds == 0 || ss < ds) {
				dst.shadow[i] = ss
				changed = true
			}
		}
		return true
	})
	return changed
}

// Leq reports whether a ⊑ b (b over-approximates a): b's must ages are no
// younger than a's, and b's shadow ages no older than a's.
func (d *Domain) Leq(a, b *State) bool {
	if d.Persist {
		return d.persistLeq(a, b)
	}
	if a.IsBottom {
		return true
	}
	if b.IsBottom {
		return false
	}
	leq := true
	d.spans(func(start, stride int) bool {
		for i := start; i < len(a.must); i += stride {
			am, bm := a.must[i], b.must[i]
			if bm != 0 && (am == 0 || am > bm) {
				leq = false
				return false
			}
			as, bs := a.shadow[i], b.shadow[i]
			if as != 0 && (bs == 0 || bs > as) {
				leq = false
				return false
			}
		}
		return true
	})
	return leq
}

// Equal reports state equality under the domain's filter: only blocks in
// owned cache sets are compared (full structural equality when unfiltered).
func (d *Domain) Equal(a, b *State) bool {
	if a.IsBottom || b.IsBottom {
		return a.IsBottom == b.IsBottom
	}
	if len(a.must) != len(b.must) {
		return false
	}
	eq := true
	d.spans(func(start, stride int) bool {
		for i := start; i < len(a.must); i += stride {
			if a.must[i] != b.must[i] || a.shadow[i] != b.shadow[i] {
				eq = false
				return false
			}
		}
		return true
	})
	return eq
}

// Widen accelerates convergence: any must age that grew since prev jumps to
// evicted, and any shadow age that shrank (or appeared) jumps to 1. The
// result over-approximates next, so widening preserves soundness (§6.3).
func (d *Domain) Widen(prev, next *State) *State {
	if d.Persist {
		return d.persistWiden(prev, next)
	}
	if prev.IsBottom {
		return next.Clone()
	}
	if next.IsBottom {
		return prev.Clone()
	}
	out := next.Clone()
	d.spans(func(start, stride int) bool {
		for i := start; i < len(out.must); i += stride {
			nm, pm := next.must[i], prev.must[i]
			if nm != 0 && (pm == 0 || nm > pm) {
				out.must[i] = 0
			}
			ns, ps := next.shadow[i], prev.shadow[i]
			if (ns != 0 && (ps == 0 || ns < ps)) || (ns == 0 && ps != 0) {
				out.shadow[i] = 1
			}
		}
		return true
	})
	return out
}

// Saturate clamps x, in place, against a fixed reference state: any must age
// strictly above the reference's jumps to evicted, and any shadow age
// strictly below the reference's (or present where the reference has none)
// jumps to 1. Unlike Widen — whose prev is the evolving previous iterate —
// the reference here never changes, which makes Saturate a *monotone*
// function of x: each dimension either passes through unchanged or maps to
// the join-absorbing extreme, and the threshold it is compared against is
// constant. Applying it to every loop-head contribution therefore keeps the
// enclosing fixpoint a monotone system with a unique, visit-order-independent
// least solution. (Widen's extra rule "shadow disappeared → 1" is deliberately
// absent: it maps the dimension's bottom above values it is ordered below,
// which is exactly the non-monotonicity this transform exists to avoid.)
// The result over-approximates x, so saturation preserves soundness.
func (d *Domain) Saturate(ref, x *State) {
	if ref.IsBottom || x.IsBottom {
		return
	}
	d.spans(func(start, stride int) bool {
		for i := start; i < len(x.must); i += stride {
			xm, rm := x.must[i], ref.must[i]
			if d.Persist {
				if xm > rm {
					x.must[i] = persistTop
				}
			} else if xm != 0 && (rm == 0 || xm > rm) {
				x.must[i] = 0
			}
			xs, rs := x.shadow[i], ref.shadow[i]
			if xs != 0 && (rs == 0 || xs < rs) {
				x.shadow[i] = 1
			}
		}
		return true
	})
}

// Classify judges one access against the state: it is an AlwaysHit when all
// candidate blocks are must-cached, an AlwaysMiss when none may be cached,
// and Unknown otherwise.
func (d *Domain) Classify(s *State, acc Access) Classification {
	if d.Persist {
		return d.persistClassify(s, acc)
	}
	if s.IsBottom {
		return Unknown
	}
	assoc := d.assoc()
	allHit, allMiss := true, true
	for i := 0; i < acc.Count; i++ {
		b := acc.First + layout.BlockID(i)
		if !s.MustHit(b, assoc) {
			allHit = false
		}
		if s.MayBeCached(b) {
			allMiss = false
		}
	}
	switch {
	case allHit:
		return AlwaysHit
	case allMiss:
		return AlwaysMiss
	}
	return Unknown
}
