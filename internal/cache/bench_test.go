package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// benchLayout builds a layout over nBlocks line-sized scalars, mirroring
// propLayout but sized for benchmarking.
func benchLayout(b *testing.B, nBlocks, numSets, assoc int) *layout.Layout {
	b.Helper()
	bd := ir.NewBuilder("bench")
	for i := 0; i < nBlocks; i++ {
		bd.AddSymbol(fmt.Sprintf("s%d", i), 64, 1, false, nil)
	}
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Ret(ir.ConstVal(0))
	prog, err := bd.Finish(entry)
	if err != nil {
		b.Fatal(err)
	}
	l, err := layout.New(prog, layout.CacheConfig{LineSize: 64, NumSets: numSets, Assoc: assoc})
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// warmState drives a random access sequence through a fresh state so the
// benchmarks operate on realistic mid-fixpoint contents.
func warmState(d *Domain, nBlocks int, seed int64) *State {
	rng := rand.New(rand.NewSource(seed))
	st := d.NewState()
	for i := 0; i < 4*nBlocks; i++ {
		d.Transfer(st, Access{First: layout.BlockID(rng.Intn(nBlocks)), Count: 1})
	}
	return st
}

// BenchmarkTransfer measures one exact-access transfer on the paper's
// fully-associative geometry and on a 64-set/8-way one.
func BenchmarkTransfer(b *testing.B) {
	shapes := []struct {
		name           string
		blocks, sets   int
		assoc, refined int // refined: 1 = NYoung rule on
	}{
		{"fullyassoc-512", 512, 1, 512, 1},
		{"64set-8way", 512, 64, 8, 1},
		{"fullyassoc-classic", 512, 1, 512, 0},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			l := benchLayout(b, sh.blocks, sh.sets, sh.assoc)
			d := &Domain{L: l, Refined: sh.refined == 1}
			st := warmState(d, sh.blocks, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Transfer(st, Access{First: layout.BlockID(i % sh.blocks), Count: 1})
			}
		})
	}
}

// BenchmarkTransferInto measures the copy+transfer step that replaces the
// clone-then-mutate pattern in the fixpoint engine.
func BenchmarkTransferInto(b *testing.B) {
	l := benchLayout(b, 512, 1, 512)
	d := NewDomain(l)
	src := warmState(d, 512, 2)
	dst := d.NewState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TransferInto(dst, src, Access{First: layout.BlockID(i % 512), Count: 1})
	}
}

// BenchmarkJoinInto measures the in-place join on already-converged (equal)
// states — the steady-state case a fixpoint spends most of its time in.
func BenchmarkJoinInto(b *testing.B) {
	for _, sets := range []int{1, 64} {
		b.Run(fmt.Sprintf("%dset", sets), func(b *testing.B) {
			l := benchLayout(b, 512, sets, 512/sets)
			d := NewDomain(l)
			src := warmState(d, 512, 3)
			dst := src.Clone()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.JoinInto(dst, src)
			}
		})
	}
}

// BenchmarkJoinIntoFiltered measures the per-set view: joining only one
// set's blocks out of 64, the partitioned engine's steady-state join.
func BenchmarkJoinIntoFiltered(b *testing.B) {
	l := benchLayout(b, 512, 64, 8)
	d := NewDomain(l)
	d.Filter = NewSetFilter(64, []int{5})
	src := warmState(d, 512, 4)
	dst := src.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.JoinInto(dst, src)
	}
}
