// Package cache implements the abstract cache domain of the paper: per-block
// LRU ages for a Must-Hit analysis (§4), the max-based join (Fig. 5), the
// aging transfer function (Fig. 4), and the shadow-variable refinement of
// Appendix B that keeps a May (youngest-age) component and uses it to avoid
// unnecessary aging (the NYoung rule, Fig. 12/13).
//
// States are dense age vectors indexed by block id: the analyses track every
// memory block of the program in every state, so a dense representation is
// both smaller and much faster than hash maps.
package cache

import (
	"fmt"
	"sort"
	"strings"

	"specabsint/internal/layout"
)

// State is an abstract cache state.
//
// must[b] is an upper bound on b's LRU age within its cache set (1 =
// most-recently used); 0 encodes "possibly not cached" (age infinity). A
// block is guaranteed cached — a Must-Hit — iff must[b] is in 1..assoc.
//
// shadow[b] is a lower bound on b's age along *some* path (the paper's ∃v
// shadow variables); 0 encodes "definitely not cached on any path", which
// makes an access to b an Always-Miss.
type State struct {
	IsBottom bool
	must     []uint16
	shadow   []uint16
}

// NewState returns the empty-cache state over numBlocks blocks: nothing is
// guaranteed cached and nothing may be cached. Both vectors share one
// backing allocation (the fixpoint materializes one state per block × flow,
// so halving the allocation count matters).
func NewState(numBlocks int) *State {
	buf := make([]uint16, 2*numBlocks)
	return &State{must: buf[:numBlocks:numBlocks], shadow: buf[numBlocks:]}
}

// Bottom returns the unreachable state (identity of join).
func Bottom() *State { return &State{IsBottom: true} }

// NumBlocks returns the size of the block universe (0 for bottom).
func (s *State) NumBlocks() int {
	if s.IsBottom {
		return 0
	}
	return len(s.must)
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	if s.IsBottom {
		return Bottom()
	}
	n := len(s.must)
	buf := make([]uint16, 2*n)
	copy(buf[:n], s.must)
	copy(buf[n:], s.shadow)
	return &State{must: buf[:n:n], shadow: buf[n:]}
}

// CopyFrom makes s a deep copy of src, reusing s's buffers when they are
// large enough. It is the allocation-free replacement for s = src.Clone():
// a state that has ever held buffers keeps them across bottom transitions,
// so fixpoint loops that repeatedly copy into the same slot stop allocating
// after the first round.
func (s *State) CopyFrom(src *State) {
	if src.IsBottom {
		s.IsBottom = true
		return
	}
	n := len(src.must)
	if cap(s.must) < n || cap(s.shadow) < n {
		buf := make([]uint16, 2*n)
		s.must = buf[:n:n]
		s.shadow = buf[n:]
	}
	s.must = s.must[:n]
	s.shadow = s.shadow[:n]
	copy(s.must, src.must)
	copy(s.shadow, src.shadow)
	s.IsBottom = false
}

// SetBottom marks s unreachable while keeping its buffers, so a later
// CopyFrom (e.g. via JoinInto's bottom case) reuses them instead of
// allocating. The pooled counterpart of Bottom().
func (s *State) SetBottom() { s.IsBottom = true }

// CopySets overwrites s's entries in the given cache sets with src's,
// leaving all other entries untouched. Both states must be non-bottom and of
// equal size; numSets is the cache-set count the block universe is strided
// by. Used to stitch per-set-group fixpoint results into one dense state.
func (s *State) CopySets(src *State, sets []int, numSets int) {
	for _, set := range sets {
		for i := set; i < len(s.must); i += numSets {
			s.must[i] = src.must[i]
			s.shadow[i] = src.shadow[i]
		}
	}
}

// Equal reports structural equality.
func (s *State) Equal(o *State) bool {
	if s.IsBottom || o.IsBottom {
		return s.IsBottom == o.IsBottom
	}
	if len(s.must) != len(o.must) {
		return false
	}
	for i := range s.must {
		if s.must[i] != o.must[i] || s.shadow[i] != o.shadow[i] {
			return false
		}
	}
	return true
}

// Must returns b's must age and whether b is must-cached.
func (s *State) Must(b layout.BlockID) (int, bool) {
	if s.IsBottom || int(b) >= len(s.must) || s.must[b] == 0 {
		return 0, false
	}
	return int(s.must[b]), true
}

// Shadow returns b's shadow (may) age and whether b may be cached.
func (s *State) Shadow(b layout.BlockID) (int, bool) {
	if s.IsBottom || int(b) >= len(s.shadow) || s.shadow[b] == 0 {
		return 0, false
	}
	return int(s.shadow[b]), true
}

// SetMust records a must age (age >= 1); used by transfer and tests.
func (s *State) SetMust(b layout.BlockID, age int) { s.must[b] = uint16(age) }

// ClearMust marks b as possibly evicted.
func (s *State) ClearMust(b layout.BlockID) { s.must[b] = 0 }

// SetShadow records a shadow age (age >= 1).
func (s *State) SetShadow(b layout.BlockID, age int) { s.shadow[b] = uint16(age) }

// ClearShadow marks b as definitely not cached on any path.
func (s *State) ClearShadow(b layout.BlockID) { s.shadow[b] = 0 }

// MustAge returns the must age of b, or assoc+1 ("not guaranteed cached")
// when absent.
func (s *State) MustAge(b layout.BlockID, assoc int) int {
	if a, ok := s.Must(b); ok {
		return a
	}
	if s.IsBottom {
		return 1 // bottom guarantees everything vacuously; callers guard
	}
	return assoc + 1
}

// MustHit reports whether an access to block b is guaranteed to hit.
func (s *State) MustHit(b layout.BlockID, assoc int) bool {
	if s.IsBottom {
		return true // vacuous: no execution reaches this point
	}
	a, ok := s.Must(b)
	return ok && a <= assoc
}

// MayBeCached reports whether b may be cached on some path.
func (s *State) MayBeCached(b layout.BlockID) bool {
	_, ok := s.Shadow(b)
	return ok
}

// MustCount returns the number of must-cached blocks.
func (s *State) MustCount() int {
	if s.IsBottom {
		return 0
	}
	n := 0
	for _, a := range s.must {
		if a != 0 {
			n++
		}
	}
	return n
}

// ForEachMust calls fn for every must-cached block.
func (s *State) ForEachMust(fn func(b layout.BlockID, age int)) {
	if s.IsBottom {
		return
	}
	for i, a := range s.must {
		if a != 0 {
			fn(layout.BlockID(i), int(a))
		}
	}
}

// ForEachShadow calls fn for every may-cached block.
func (s *State) ForEachShadow(fn func(b layout.BlockID, age int)) {
	if s.IsBottom {
		return
	}
	for i, a := range s.shadow {
		if a != 0 {
			fn(layout.BlockID(i), int(a))
		}
	}
}

// String renders the state in the paper's {youngest, ..., oldest} style,
// grouping blocks by age.
func (s *State) String() string {
	return s.Format(nil)
}

// Format renders the state, using l (if non-nil) for block names.
func (s *State) Format(l *layout.Layout) string {
	if s.IsBottom {
		return "⊥"
	}
	name := func(b layout.BlockID) string {
		if l != nil {
			return l.BlockName(b)
		}
		return fmt.Sprintf("b%d", b)
	}
	byAge := map[int][]string{}
	maxAge := 0
	s.ForEachMust(func(b layout.BlockID, a int) {
		byAge[a] = append(byAge[a], name(b))
		if a > maxAge {
			maxAge = a
		}
	})
	s.ForEachShadow(func(b layout.BlockID, a int) {
		if m, ok := s.Must(b); !ok || m != a {
			byAge[a] = append(byAge[a], "∃"+name(b))
			if a > maxAge {
				maxAge = a
			}
		}
	})
	var parts []string
	for age := 1; age <= maxAge; age++ {
		entries := byAge[age]
		sort.Strings(entries)
		parts = append(parts, "{"+strings.Join(entries, ",")+"}")
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// MustBlocks returns the must-cached blocks sorted by (age, id).
func (s *State) MustBlocks() []layout.BlockID {
	var ids []layout.BlockID
	s.ForEachMust(func(b layout.BlockID, _ int) { ids = append(ids, b) })
	sort.Slice(ids, func(i, j int) bool {
		ai, aj := s.must[ids[i]], s.must[ids[j]]
		if ai != aj {
			return ai < aj
		}
		return ids[i] < ids[j]
	})
	return ids
}
