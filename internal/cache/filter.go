package cache

// SetFilter restricts a Domain's operations to a subset of the cache sets.
// The partitioned fixpoint engine gives each per-set-group analysis a filter
// over the sets it owns: transfers of accesses outside the filter become
// no-ops, and joins, orders, and widenings iterate only the owned sets'
// blocks instead of the whole vector. A nil *SetFilter means "all sets".
//
// Filters rely on the set-locality of the LRU domain (Fig. 4/5: an access
// ages only blocks competing for its own set), so a state operated on under
// a filter has meaningful contents only at block indices b with
// SetOf(b) ∈ Sets(); everything else stays at its initial zero.
type SetFilter struct {
	member []bool
	sets   []int
}

// NewSetFilter builds a filter over the given cache sets (of numSets total).
// Duplicate and out-of-range sets are ignored; the retained sets are kept in
// first-seen order.
func NewSetFilter(numSets int, sets []int) *SetFilter {
	f := &SetFilter{member: make([]bool, numSets)}
	for _, s := range sets {
		if s < 0 || s >= numSets || f.member[s] {
			continue
		}
		f.member[s] = true
		f.sets = append(f.sets, s)
	}
	return f
}

// Contains reports whether the filter owns the given cache set.
func (f *SetFilter) Contains(set int) bool {
	return set >= 0 && set < len(f.member) && f.member[set]
}

// Sets returns the owned cache sets. The caller must not modify the slice.
func (f *SetFilter) Sets() []int { return f.sets }

// NumSets returns the size of the set universe the filter was built over.
func (f *SetFilter) NumSets() int { return len(f.member) }
