package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// propLayout builds a layout over nBlocks scalar line-sized symbols with the
// given set count.
func propLayout(t *testing.T, nBlocks, numSets, assoc int) *layout.Layout {
	t.Helper()
	bd := ir.NewBuilder("prop")
	for i := 0; i < nBlocks; i++ {
		bd.AddSymbol(symName(i), 64, 1, false, nil)
	}
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Ret(ir.ConstVal(0))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.New(prog, layout.CacheConfig{LineSize: 64, NumSets: numSets, Assoc: assoc})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func symName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// concreteLRU is a reference LRU cache used as the ground truth: sets of
// blocks ordered youngest first.
type concreteLRU struct {
	numSets, assoc int
	sets           [][]layout.BlockID
}

func newConcreteLRU(numSets, assoc int) *concreteLRU {
	return &concreteLRU{numSets: numSets, assoc: assoc, sets: make([][]layout.BlockID, numSets)}
}

func (c *concreteLRU) access(b layout.BlockID) {
	set := int(b) % c.numSets
	ways := c.sets[set]
	for i, w := range ways {
		if w == b {
			copy(ways[1:i+1], ways[:i])
			ways[0] = b
			return
		}
	}
	if len(ways) < c.assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = b
	c.sets[set] = ways
}

func (c *concreteLRU) ageOf(b layout.BlockID) int {
	set := int(b) % c.numSets
	for i, w := range c.sets[set] {
		if w == b {
			return i + 1
		}
	}
	return c.assoc + 1
}

// TestPropertyMustAgeIsUpperBound drives random access sequences through
// both the abstract transfer and the concrete LRU and checks the paper's
// central domain invariants:
//
//   - the must age is an upper bound on the concrete age (so a must-hit
//     verdict implies a concrete hit), and
//   - the shadow age is a lower bound (so "not may-cached" implies a
//     concrete miss).
func TestPropertyMustAgeIsUpperBound(t *testing.T) {
	shapes := []struct{ blocks, sets, assoc int }{
		{8, 1, 4},
		{12, 2, 3},
		{16, 4, 2},
		{6, 1, 8},
	}
	for _, refined := range []bool{true, false} {
		for _, sh := range shapes {
			l := propLayout(t, sh.blocks, sh.sets, sh.assoc)
			d := &Domain{L: l, Refined: refined}
			for seed := int64(0); seed < 30; seed++ {
				rng := rand.New(rand.NewSource(seed))
				st := d.NewState()
				conc := newConcreteLRU(sh.sets, sh.assoc)
				for step := 0; step < 200; step++ {
					b := layout.BlockID(rng.Intn(sh.blocks))
					d.Transfer(st, Access{First: b, Count: 1})
					conc.access(b)
					for blk := 0; blk < sh.blocks; blk++ {
						id := layout.BlockID(blk)
						ca := conc.ageOf(id)
						if ma, ok := st.Must(id); ok && ma < ca {
							t.Fatalf("refined=%v shape=%+v seed=%d step=%d: block %d must age %d < concrete %d",
								refined, sh, seed, step, blk, ma, ca)
						}
						if sa, ok := st.Shadow(id); ok {
							if sa > ca && ca <= sh.assoc {
								t.Fatalf("refined=%v shape=%+v seed=%d step=%d: block %d shadow age %d > concrete %d",
									refined, sh, seed, step, blk, sa, ca)
							}
						} else if ca <= sh.assoc {
							t.Fatalf("refined=%v shape=%+v seed=%d step=%d: block %d cached concretely (age %d) but not may-cached",
								refined, sh, seed, step, blk, ca)
						}
					}
				}
			}
		}
	}
}

// TestPropertyJoinCoversBothPaths models two divergent access sequences that
// re-merge: the joined abstract state must be sound for whichever path ran.
func TestPropertyJoinCoversBothPaths(t *testing.T) {
	const blocks, assoc = 10, 5
	l := propLayout(t, blocks, 1, assoc)
	d := NewDomain(l)
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prefix := randSeq(rng, blocks, 30)
		armA := randSeq(rng, blocks, 15)
		armB := randSeq(rng, blocks, 15)

		absA, absB := d.NewState(), d.NewState()
		concA, concB := newConcreteLRU(1, assoc), newConcreteLRU(1, assoc)
		for _, b := range prefix {
			d.Transfer(absA, Access{First: b, Count: 1})
			d.Transfer(absB, Access{First: b, Count: 1})
			concA.access(b)
			concB.access(b)
		}
		for _, b := range armA {
			d.Transfer(absA, Access{First: b, Count: 1})
			concA.access(b)
		}
		for _, b := range armB {
			d.Transfer(absB, Access{First: b, Count: 1})
			concB.access(b)
		}
		joined := d.Join(absA, absB)
		for blk := 0; blk < blocks; blk++ {
			id := layout.BlockID(blk)
			for _, conc := range []*concreteLRU{concA, concB} {
				ca := conc.ageOf(id)
				if ma, ok := joined.Must(id); ok && ma < ca {
					t.Fatalf("seed %d: joined must age %d < concrete %d for block %d",
						seed, ma, ca, blk)
				}
				if !joined.MayBeCached(id) && ca <= assoc {
					t.Fatalf("seed %d: block %d cached on a path but not may-cached after join",
						seed, blk)
				}
			}
		}
	}
}

func randSeq(rng *rand.Rand, blocks, n int) []layout.BlockID {
	out := make([]layout.BlockID, n)
	for i := range out {
		out[i] = layout.BlockID(rng.Intn(blocks))
	}
	return out
}

// TestPropertyRangeAccessCoversAllResolutions: an unknown access resolved to
// any candidate must be covered by the range transfer.
func TestPropertyRangeAccessCoversAllResolutions(t *testing.T) {
	const blocks, assoc = 8, 4
	l := propLayout(t, blocks, 1, assoc)
	d := NewDomain(l)
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prefix := randSeq(rng, blocks, 25)
		first := layout.BlockID(rng.Intn(blocks - 2))
		count := 2 + rng.Intn(int(layout.BlockID(blocks)-first)-1)

		abs := d.NewState()
		conc := newConcreteLRU(1, assoc)
		for _, b := range prefix {
			d.Transfer(abs, Access{First: b, Count: 1})
			conc.access(b)
		}
		d.Transfer(abs, Access{First: first, Count: count})

		// Concretely, the access resolved to SOME candidate; the abstract
		// state must be sound for every resolution.
		for pick := 0; pick < count; pick++ {
			c2 := newConcreteLRU(1, assoc)
			for _, b := range prefix {
				c2.access(b)
			}
			c2.access(first + layout.BlockID(pick))
			for blk := 0; blk < blocks; blk++ {
				id := layout.BlockID(blk)
				ca := c2.ageOf(id)
				if ma, ok := abs.Must(id); ok && ma < ca {
					t.Fatalf("seed %d pick %d: must age %d < concrete %d for block %d",
						seed, pick, ma, ca, blk)
				}
				if !abs.MayBeCached(id) && ca <= assoc {
					t.Fatalf("seed %d pick %d: block %d cached concretely but not may-cached",
						seed, pick, blk)
				}
			}
		}
	}
}

// TestPropertyTransferMonotone: x ⊑ y implies Transfer(x) ⊑ Transfer(y) —
// the fixpoint engine's convergence argument rests on this.
func TestPropertyTransferMonotone(t *testing.T) {
	const blocks, assoc = 8, 4
	l := propLayout(t, blocks, 1, assoc)
	for _, refined := range []bool{true, false} {
		d := &Domain{L: l, Refined: refined}
		for seed := int64(0); seed < 60; seed++ {
			rng := rand.New(rand.NewSource(seed))
			x := d.NewState()
			for _, b := range randSeq(rng, blocks, 20) {
				d.Transfer(x, Access{First: b, Count: 1})
			}
			// y = x joined with another state is ⊒ x.
			other := d.NewState()
			for _, b := range randSeq(rng, blocks, 20) {
				d.Transfer(other, Access{First: b, Count: 1})
			}
			y := d.Join(x, other)
			if !d.Leq(x, y) {
				t.Fatalf("seed %d: join not an upper bound", seed)
			}
			acc := Access{First: layout.BlockID(rng.Intn(blocks)), Count: 1}
			x2, y2 := x.Clone(), y.Clone()
			d.Transfer(x2, acc)
			d.Transfer(y2, acc)
			if !d.Leq(x2, y2) {
				t.Fatalf("refined=%v seed %d: transfer not monotone for %v\n x=%v\n y=%v\n x'=%v\n y'=%v",
					refined, seed, acc, x, y, x2, y2)
			}
		}
	}
}

// randState drives a random access sequence into a fresh state.
func randState(d *Domain, rng *rand.Rand, blocks, n int) *State {
	st := d.NewState()
	for _, b := range randSeq(rng, blocks, n) {
		d.Transfer(st, Access{First: b, Count: 1})
	}
	return st
}

// TestPropertyFilteredOpsMatchUnfiltered is the dirty-set invariant the
// partitioned fixpoint rests on: a Domain restricted to a set filter must
// behave exactly like the unrestricted Domain *on the owned sets*, and its
// joins must leave un-owned entries of the destination untouched.
func TestPropertyFilteredOpsMatchUnfiltered(t *testing.T) {
	const blocks, sets, assoc = 24, 4, 3
	l := propLayout(t, blocks, sets, assoc)
	full := NewDomain(l)
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		owned := []int{rng.Intn(sets)}
		if rng.Intn(2) == 0 {
			owned = append(owned, rng.Intn(sets))
		}
		part := &Domain{L: l, Refined: true, Filter: NewSetFilter(sets, owned)}

		a := randState(full, rng, blocks, 30)
		b := randState(full, rng, blocks, 30)

		// Filtered join: owned entries equal the full join, others untouched.
		fullJoined := a.Clone()
		full.JoinInto(fullJoined, b)
		partJoined := a.Clone()
		partChanged := part.JoinInto(partJoined, b)
		for blk := 0; blk < blocks; blk++ {
			id := layout.BlockID(blk)
			want := a // un-owned: join must not have written
			if part.Filter.Contains(l.SetOf(id)) {
				want = fullJoined
			}
			wm, _ := want.Must(id)
			gm, _ := partJoined.Must(id)
			ws, _ := want.Shadow(id)
			gs, _ := partJoined.Shadow(id)
			if wm != gm || ws != gs {
				t.Fatalf("seed %d: block %d (set %d, owned=%v): got must/shadow %d/%d, want %d/%d",
					seed, blk, l.SetOf(id), part.Filter.Contains(l.SetOf(id)), gm, gs, wm, ws)
			}
		}
		// The changed flag must agree with filtered equality.
		if partChanged == part.Equal(a, partJoined) {
			t.Fatalf("seed %d: JoinInto changed=%v but filtered Equal=%v",
				seed, partChanged, part.Equal(a, partJoined))
		}

		// Filtered Leq/Equal ignore differences outside the filter: a state
		// perturbed only on un-owned sets stays filtered-equal.
		perturbed := a.Clone()
		for blk := 0; blk < blocks; blk++ {
			id := layout.BlockID(blk)
			if !part.Filter.Contains(l.SetOf(id)) {
				perturbed.SetMust(id, assoc)
				perturbed.SetShadow(id, 1)
			}
		}
		if !part.Equal(a, perturbed) || !part.Leq(a, perturbed) || !part.Leq(perturbed, a) {
			t.Fatalf("seed %d: un-owned perturbation visible through the filter", seed)
		}
		// And the join is still an upper bound through the filtered Leq.
		if !part.Leq(a, partJoined) || !part.Leq(b, partJoined) {
			t.Fatalf("seed %d: filtered join not an upper bound on owned sets", seed)
		}
	}
}

// TestPropertyCopyFromMatchesClone: CopyFrom into a reused state — including
// across bottom transitions — must be indistinguishable from Clone.
func TestPropertyCopyFromMatchesClone(t *testing.T) {
	const blocks, assoc = 10, 4
	l := propLayout(t, blocks, 1, assoc)
	d := NewDomain(l)
	dst := d.NewState()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var src *State
		switch seed % 3 {
		case 0:
			src = randState(d, rng, blocks, 25)
		case 1:
			src = Bottom()
		default:
			src = d.NewState()
		}
		if seed%2 == 0 {
			dst.SetBottom() // must not poison the next CopyFrom
		}
		dst.CopyFrom(src)
		if !dst.Equal(src) || !src.Equal(dst) {
			t.Fatalf("seed %d: CopyFrom result differs from source", seed)
		}
		if !src.IsBottom {
			// Deep copy: mutating dst must not write through to src.
			d.Transfer(dst, Access{First: 0, Count: 1})
			if dst.Equal(src) && src.MustCount() != dst.MustCount() {
				t.Fatalf("seed %d: CopyFrom aliased source buffers", seed)
			}
			dst.CopyFrom(src)
			if !dst.Equal(src) {
				t.Fatalf("seed %d: second CopyFrom differs from source", seed)
			}
		}
	}
}

// TestPropertyPoolReuse: the pool hands back usable buffers, counts reuse
// accurately, and a recycled state carries no trace of its previous life
// once reinitialized per the ownership rules.
func TestPropertyPoolReuse(t *testing.T) {
	const blocks, assoc = 10, 4
	l := propLayout(t, blocks, 1, assoc)
	d := NewDomain(l)
	p := NewPool(l.NumBlocks)

	ref := randState(d, rng40(), blocks, 25)
	s1 := p.Get()
	s1.CopyFrom(ref)
	if !s1.Equal(ref) {
		t.Fatal("pooled state differs from its source after CopyFrom")
	}
	p.Put(s1)
	s2 := p.Get()
	if s2 != s1 {
		t.Fatal("free list did not hand back the recycled state")
	}
	s2.SetBottom()
	s2.CopyFrom(ref)
	if !s2.Equal(ref) {
		t.Fatal("recycled state differs from source after SetBottom+CopyFrom")
	}
	st := p.Stats()
	if st.Gets != 2 || st.News != 1 || st.Puts != 1 || st.Reused() != 1 {
		t.Fatalf("stats %+v, want Gets=2 News=1 Puts=1 Reused=1", st)
	}
}

func rng40() *rand.Rand { return rand.New(rand.NewSource(40)) }

// TestQuickCloneEquality uses testing/quick to fuzz Clone/Equal consistency.
func TestQuickCloneEquality(t *testing.T) {
	const blocks, assoc = 8, 4
	l := propLayout(t, blocks, 1, assoc)
	d := NewDomain(l)
	f := func(seq []uint8) bool {
		st := d.NewState()
		for _, v := range seq {
			d.Transfer(st, Access{First: layout.BlockID(int(v) % blocks), Count: 1})
		}
		c := st.Clone()
		if !st.Equal(c) || !c.Equal(st) {
			return false
		}
		// Mutating the clone must break equality.
		if len(seq) > 0 {
			d.Transfer(c, Access{First: layout.BlockID(int(seq[0]+1) % blocks), Count: 1})
			_ = c
		}
		return st.Equal(st.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
