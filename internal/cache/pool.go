package cache

// PoolStats counts a pool's traffic: Gets - News is the number of state
// allocations the pool avoided.
type PoolStats struct {
	Gets int // states handed out
	News int // states freshly allocated (free list was empty)
	Puts int // states returned for reuse
}

// Reused returns how many Get calls were served without allocating.
func (s PoolStats) Reused() int { return s.Gets - s.News }

// Pool is a free list of equally-sized State buffers for one fixpoint
// engine. It is deliberately not safe for concurrent use: each engine owns
// its pool, and the parallel per-set analysis runs one engine per goroutine.
//
// Ownership rules (see DESIGN.md): a state obtained from Get carries
// arbitrary stale contents and must be initialized with CopyFrom or
// SetBottom before use; Put hands the buffers back, so the caller must not
// retain the pointer afterwards. Domain joins copy out of their src
// argument and never retain it, which is what makes pooling the engine's
// transfer scratch safe.
type Pool struct {
	numBlocks int
	free      []*State
	stats     PoolStats
}

// NewPool creates a pool of states sized for numBlocks blocks.
func NewPool(numBlocks int) *Pool { return &Pool{numBlocks: numBlocks} }

// Get returns a state with allocated buffers and unspecified contents.
func (p *Pool) Get() *State {
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return s
	}
	p.stats.News++
	return NewState(p.numBlocks)
}

// Put returns s to the free list. s must not be used afterwards.
func (p *Pool) Put(s *State) {
	if s == nil {
		return
	}
	p.stats.Puts++
	p.free = append(p.free, s)
}

// Stats returns the pool's traffic counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// Add merges another pool's counters into s (for stitching parallel runs).
func (s *PoolStats) Add(o PoolStats) {
	s.Gets += o.Gets
	s.News += o.News
	s.Puts += o.Puts
}
