// Package wcet estimates worst-case execution time from the (speculative)
// cache analysis: every memory access proved always-hit costs the hit
// latency, every other access is charged the miss penalty, and the bound is
// the longest path through the acyclic (unrolled) CFG. This is the first
// application of the paper (§2.1, §7.2): an analysis that ignores
// speculation under-counts misses and can certify a deadline the hardware
// then breaks.
package wcet

import (
	"fmt"

	"specabsint/internal/cache"
	"specabsint/internal/core"
)

// CostModel assigns cycle costs.
type CostModel struct {
	BaseLatency int64 // per instruction
	HitLatency  int64 // per always-hit access (added to base)
	MissPenalty int64 // per potentially-missing access (added to base)
}

// DefaultCosts mirrors the simulator's default latencies.
func DefaultCosts() CostModel {
	return CostModel{BaseLatency: 1, HitLatency: 1, MissPenalty: 100}
}

// Estimate summarizes the timing analysis of one program.
type Estimate struct {
	// Access classification counts over architectural flows.
	Accesses     int
	AlwaysHits   int
	AlwaysMisses int
	Unknown      int
	// Misses is the paper's #Miss: accesses not proved always-hit.
	Misses int
	// SpecMisses is the paper's #SpMiss: wrong-path accesses not proved
	// always-hit (masked by the pipeline but occupying the memory system).
	SpecMisses int
	// WorstCaseCycles bounds the longest architectural path, or -1 when the
	// CFG still contains loops (unbounded without loop-bound annotations).
	WorstCaseCycles int64
	// SpecExtraCycles pessimistically charges the speculative misses.
	SpecExtraCycles int64
}

// String renders the estimate.
func (e Estimate) String() string {
	wc := "unbounded (cyclic CFG)"
	if e.WorstCaseCycles >= 0 {
		wc = fmt.Sprintf("%d cycles (+%d speculative)", e.WorstCaseCycles, e.SpecExtraCycles)
	}
	return fmt.Sprintf("accesses=%d hits=%d misses=%d specMisses=%d wcet=%s",
		e.Accesses, e.AlwaysHits, e.Misses, e.SpecMisses, wc)
}

// Estimate computes the timing summary from a completed cache analysis.
func New(res *core.Result, costs CostModel) Estimate {
	est := Estimate{
		Accesses:   res.AccessCount(),
		Misses:     res.MissCount(),
		SpecMisses: res.SpecMissCount(),
	}
	for _, a := range res.Access {
		switch a.Class {
		case cache.AlwaysHit:
			est.AlwaysHits++
		case cache.AlwaysMiss:
			est.AlwaysMisses++
		default:
			est.Unknown++
		}
	}
	est.WorstCaseCycles = longestPath(res, costs)
	est.SpecExtraCycles = int64(est.SpecMisses) * costs.MissPenalty
	return est
}

// longestPath computes the maximum-cost entry-to-exit path of an acyclic
// CFG, or -1 when a back edge exists.
func longestPath(res *core.Result, costs CostModel) int64 {
	g := res.Graph
	// Detect cycles: a back edge in reverse postorder.
	for _, b := range g.RPO {
		for _, s := range g.Succs[b] {
			if g.RPOIndex[s] <= g.RPOIndex[b] {
				return -1
			}
		}
	}
	const unset = int64(-1)
	dist := make([]int64, len(res.Prog.Blocks))
	for i := range dist {
		dist[i] = unset
	}
	dist[res.Prog.Entry] = 0
	var worst int64
	for _, b := range g.RPO {
		if dist[b] == unset {
			continue
		}
		total := dist[b] + blockCost(res, costs, res.Prog.Block(b))
		if len(g.Succs[b]) == 0 {
			if total > worst {
				worst = total
			}
			continue
		}
		for _, s := range g.Succs[b] {
			if total > dist[s] {
				dist[s] = total
			}
		}
	}
	return worst
}
