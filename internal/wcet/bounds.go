package wcet

import (
	"specabsint/internal/cache"
	"specabsint/internal/core"
	"specabsint/internal/ir"
)

// BoundOptions supplies loop-iteration bounds for cyclic CFGs. Loops the
// front end could fully unroll never reach this point; the remaining loops
// are data-dependent (the paper's quantl search loop is the canonical case),
// so their bounds must come from the user — exactly as WCET tools require.
type BoundOptions struct {
	// LoopBounds maps a loop header block to the maximum number of times
	// its body can execute.
	LoopBounds map[ir.BlockID]int64
	// DefaultLoopBound applies to loops without an explicit entry. Zero
	// means "unknown": any unbounded loop makes the estimate -1.
	DefaultLoopBound int64
	// Persistence, when non-nil, is an AnalyzePersistence result over the
	// same program and options. Accesses it proves persistent ("first
	// miss") are charged the hit latency on every path plus one single
	// miss penalty overall — the standard first-miss accounting.
	Persistence *core.Result
}

// NewWithBounds computes the timing estimate like New, but bounds cyclic
// CFGs using per-loop iteration limits: each natural loop is contracted —
// innermost first — into a single node charged bound × (its body's longest
// acyclic path). The result over-approximates every execution that respects
// the bounds.
func NewWithBounds(res *core.Result, costs CostModel, bounds BoundOptions) Estimate {
	est := New(res, costs)
	if est.WorstCaseCycles >= 0 {
		return est // already acyclic
	}
	est.WorstCaseCycles = boundedLongestPath(res, costs, bounds)
	return est
}

// boundedLongestPath contracts loops innermost-first and then runs the
// acyclic longest-path over the contracted graph. Returns -1 when a loop
// has no bound.
func boundedLongestPath(res *core.Result, costs CostModel, bounds BoundOptions) int64 {
	g := res.Graph
	n := len(res.Prog.Blocks)

	// Per-block base cost; persistent accesses cost a hit per traversal
	// plus a single one-time miss added at the end.
	var oneTime int64
	cost := make([]int64, n)
	for _, b := range res.Prog.Blocks {
		c, extra := blockCostPersist(res, costs, b, bounds.Persistence)
		cost[b.ID] = c
		oneTime += extra
	}

	// super[b] is the node b is contracted into; find follows the chain.
	super := make([]int, n)
	for i := range super {
		super[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for super[x] != x {
			super[x] = super[super[x]]
			x = super[x]
		}
		return x
	}

	// Current edge set (rebuilt after each contraction).
	type edgeSet map[int]map[int]bool
	edges := edgeSet{}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		if edges[u] == nil {
			edges[u] = map[int]bool{}
		}
		edges[u][v] = true
	}
	for _, b := range g.RPO {
		for _, s := range g.Succs[b] {
			addEdge(int(b), int(s))
		}
	}

	loops := g.NaturalLoops(g.Dominators())
	// Innermost first: smaller bodies are contained in larger ones.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if len(loops[j].Body) < len(loops[i].Body) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}

	for _, loop := range loops {
		bound, ok := bounds.LoopBounds[loop.Header]
		if !ok {
			bound = bounds.DefaultLoopBound
		}
		if bound <= 0 {
			return -1
		}
		header := find(int(loop.Header))
		body := map[int]bool{}
		for _, b := range loop.Body {
			body[find(int(b))] = true
		}
		// Longest acyclic path within the body starting at the header,
		// ignoring edges back to the header.
		bodyMax := longestWithin(header, body, edges, cost, find)
		// Contract: every body node merges into the header, which now
		// carries the whole loop's bounded cost.
		for b := range body {
			if b != header {
				super[b] = header
			}
		}
		cost[header] = bound * bodyMax
		// Rebuild edges under the new contraction, dropping self-loops.
		newEdges := edgeSet{}
		for u, vs := range edges {
			fu := find(u)
			for v := range vs {
				fv := find(v)
				if fu != fv {
					if newEdges[fu] == nil {
						newEdges[fu] = map[int]bool{}
					}
					newEdges[fu][fv] = true
				}
			}
		}
		edges = newEdges
	}

	// Longest path over the contracted graph (now acyclic if all loops were
	// natural; a residual cycle means irreducible flow — give up).
	entry := find(int(res.Prog.Entry))
	total, ok := dagLongest(entry, edges, cost)
	if !ok {
		return -1
	}
	return total + oneTime
}

// blockCostPersist charges a block like blockCost, but accesses the
// persistence analysis proves first-miss are charged HitLatency on the path
// and contribute one MissPenalty to the one-time total.
func blockCostPersist(res *core.Result, costs CostModel, b *ir.Block, persist *core.Result) (c, oneTime int64) {
	if persist == nil {
		return blockCost(res, costs, b), 0
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		c += costs.BaseLatency
		if in.Op != ir.OpLoad && in.Op != ir.OpStore {
			continue
		}
		if a, ok := res.Access[in.ID]; ok && a.Class == cache.AlwaysHit {
			c += costs.HitLatency
			continue
		}
		if p, ok := persist.Access[in.ID]; ok && p.Class == cache.AlwaysHit {
			// First miss: hit on the recurring path, one miss in total per
			// candidate block.
			c += costs.HitLatency
			oneTime += int64(p.Acc.Count) * costs.MissPenalty
			continue
		}
		c += costs.MissPenalty
	}
	return c, oneTime
}

// longestWithin computes the longest path from start through the node set,
// ignoring edges that leave the set or return to start.
func longestWithin(start int, body map[int]bool, edges map[int]map[int]bool, cost []int64, find func(int) int) int64 {
	memo := map[int]int64{}
	visiting := map[int]bool{}
	var dfs func(u int) int64
	dfs = func(u int) int64 {
		if v, ok := memo[u]; ok {
			return v
		}
		if visiting[u] {
			// Residual cycle inside the body (e.g. continue edges): its
			// iterations are already charged by the bound; cut it here.
			return 0
		}
		visiting[u] = true
		best := int64(0)
		for v := range edges[u] {
			fv := find(v)
			if fv == start || !body[fv] {
				continue
			}
			if c := dfs(fv); c > best {
				best = c
			}
		}
		visiting[u] = false
		total := cost[u] + best
		memo[u] = total
		return total
	}
	return dfs(start)
}

// dagLongest computes the longest path from entry; ok is false when a cycle
// survives contraction.
func dagLongest(entry int, edges map[int]map[int]bool, cost []int64) (int64, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	memo := map[int]int64{}
	cyclic := false
	var dfs func(u int) int64
	dfs = func(u int) int64 {
		switch color[u] {
		case gray:
			cyclic = true
			return 0
		case black:
			return memo[u]
		}
		color[u] = gray
		best := int64(0)
		for v := range edges[u] {
			if c := dfs(v); c > best {
				best = c
			}
		}
		color[u] = black
		memo[u] = cost[u] + best
		return memo[u]
	}
	total := dfs(entry)
	if cyclic {
		return -1, false
	}
	return total, true
}

// blockCost charges one block's instructions under the cost model.
func blockCost(res *core.Result, costs CostModel, b *ir.Block) int64 {
	var c int64
	for i := range b.Instrs {
		in := &b.Instrs[i]
		c += costs.BaseLatency
		if in.Op != ir.OpLoad && in.Op != ir.OpStore {
			continue
		}
		if a, ok := res.Access[in.ID]; ok && a.Class == cache.AlwaysHit {
			c += costs.HitLatency
		} else {
			c += costs.MissPenalty
		}
	}
	return c
}
