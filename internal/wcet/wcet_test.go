package wcet

import (
	"testing"

	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/lower"
	"specabsint/internal/source"
)

func analyze(t *testing.T, src string, opts core.Options, maxUnroll int) *core.Result {
	t.Helper()
	ast, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(ast, lower.Options{MaxUnroll: maxUnroll})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCountsStraightLine(t *testing.T) {
	src := `
	int a;
	int main() {
		int x = a;  // miss (cold)
		int y = a;  // hit
		return x + y;
	}`
	opts := core.DefaultOptions()
	res := analyze(t, src, opts, 4096)
	est := New(res, DefaultCosts())
	if est.Accesses == 0 {
		t.Fatal("no accesses")
	}
	if est.AlwaysHits == 0 {
		t.Error("second load of a should be a guaranteed hit")
	}
	if est.Misses == 0 {
		t.Error("cold loads should count as misses")
	}
	if est.Misses != est.Accesses-est.AlwaysHits {
		t.Errorf("misses %d != accesses %d - hits %d", est.Misses, est.Accesses, est.AlwaysHits)
	}
}

func TestWorstCasePicksLongerArm(t *testing.T) {
	// The two arms touch different numbers of cold lines; the bound must
	// charge the expensive one.
	src := `
	int a[64]; int b[16]; int p;
	int main() {
		reg int t;
		if (p > 0) {
			t = a[0]; t = a[16]; t = a[32]; t = a[48];
		} else {
			t = b[0];
		}
		return t;
	}`
	opts := core.DefaultOptions()
	opts.Speculative = false
	res := analyze(t, src, opts, 4096)
	costs := DefaultCosts()
	est := New(res, costs)
	if est.WorstCaseCycles < 0 {
		t.Fatal("acyclic program reported unbounded")
	}
	// Lower bound: 4 cold misses on the long arm + the p load.
	if est.WorstCaseCycles < 5*costs.MissPenalty {
		t.Errorf("wcet = %d, want >= %d", est.WorstCaseCycles, 5*costs.MissPenalty)
	}
}

func TestCyclicCFGUnbounded(t *testing.T) {
	src := `
	int a;
	int main(int n) {
		int s = 0;
		while (n > 0) { s += a; n = n - 1; }
		return s;
	}`
	res := analyze(t, src, core.DefaultOptions(), 1)
	est := New(res, DefaultCosts())
	if est.WorstCaseCycles != -1 {
		t.Errorf("cyclic CFG wcet = %d, want -1", est.WorstCaseCycles)
	}
}

func TestSpeculationIncreasesBound(t *testing.T) {
	// The Fig. 2 pattern: under speculation ph[k] is no longer always-hit,
	// so the bound grows.
	src := `
	char ph[64*32];
	char l1[64]; char l2[64]; char p;
	int main() {
		reg int i; reg int tmp;
		reg int k;
		for (i = 0; i < 64*32; i += 64) { tmp = ph[i]; }
		if (p == 0) { tmp = l1[0]; } else { tmp = l2[0]; }
		tmp = ph[k];
		return tmp;
	}`
	cacheCfg := layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 34}
	spec := core.DefaultOptions()
	spec.Cache = cacheCfg
	nonspec := spec
	nonspec.Speculative = false

	costs := DefaultCosts()
	specEst := New(analyze(t, src, spec, 4096), costs)
	baseEst := New(analyze(t, src, nonspec, 4096), costs)
	if specEst.WorstCaseCycles <= baseEst.WorstCaseCycles {
		t.Errorf("speculative wcet %d should exceed baseline %d",
			specEst.WorstCaseCycles, baseEst.WorstCaseCycles)
	}
	if specEst.SpecMisses == 0 {
		t.Error("no speculative misses counted")
	}
	if specEst.SpecExtraCycles != int64(specEst.SpecMisses)*costs.MissPenalty {
		t.Error("spec extra cycles inconsistent")
	}
}

func TestEstimateString(t *testing.T) {
	src := `int a; int main() { return a; }`
	res := analyze(t, src, core.DefaultOptions(), 4096)
	est := New(res, DefaultCosts())
	if est.String() == "" {
		t.Error("empty rendering")
	}
	res2 := analyze(t, `int a; int main(int n) { int s = 0; while (n > 0) { s += a; n--; } return s; }`,
		core.DefaultOptions(), 1)
	est2 := New(res2, DefaultCosts())
	if est2.String() == "" {
		t.Error("empty rendering for cyclic")
	}
}

func TestBoundedWCETSimpleLoop(t *testing.T) {
	src := `
	int a;
	int main(int n) {
		int s = 0;
		while (n > 0) { s += a; n = n - 1; }
		return s;
	}`
	res := analyze(t, src, core.DefaultOptions(), 1)
	costs := DefaultCosts()

	// Without bounds: unbounded.
	if est := NewWithBounds(res, costs, BoundOptions{}); est.WorstCaseCycles != -1 {
		t.Errorf("no bounds: wcet = %d, want -1", est.WorstCaseCycles)
	}
	// With a default bound, the estimate is finite and grows with the bound.
	est10 := NewWithBounds(res, costs, BoundOptions{DefaultLoopBound: 10})
	est20 := NewWithBounds(res, costs, BoundOptions{DefaultLoopBound: 20})
	if est10.WorstCaseCycles <= 0 {
		t.Fatalf("bounded wcet = %d, want finite positive", est10.WorstCaseCycles)
	}
	if est20.WorstCaseCycles <= est10.WorstCaseCycles {
		t.Errorf("doubling the bound did not grow the estimate: %d vs %d",
			est20.WorstCaseCycles, est10.WorstCaseCycles)
	}
}

func TestBoundedWCETDominatesUnrolledExact(t *testing.T) {
	// The same loop, once unrolled exactly and once bounded: the bounded
	// estimate must dominate the exact acyclic one.
	loop := `
	int a[16];
	int main() {
		int s = 0;
		for (int i = 0; i < 16; i++) { s += a[i & 15]; }
		return s;
	}`
	costs := DefaultCosts()
	exact := New(analyze(t, loop, core.DefaultOptions(), 64), costs)
	if exact.WorstCaseCycles < 0 {
		t.Fatal("unrolled version should be acyclic")
	}
	bounded := NewWithBounds(analyze(t, loop, core.DefaultOptions(), 1), costs,
		BoundOptions{DefaultLoopBound: 16})
	if bounded.WorstCaseCycles < exact.WorstCaseCycles {
		t.Errorf("bounded estimate %d below exact unrolled %d",
			bounded.WorstCaseCycles, exact.WorstCaseCycles)
	}
}

func TestBoundedWCETNestedLoops(t *testing.T) {
	src := `
	int a;
	int main(int n, int m) {
		int s = 0;
		int i = 0;
		while (i < n) {
			int j = 0;
			while (j < m) { s += a; j = j + 1; }
			i = i + 1;
		}
		return s;
	}`
	res := analyze(t, src, core.DefaultOptions(), 1)
	costs := DefaultCosts()
	small := NewWithBounds(res, costs, BoundOptions{DefaultLoopBound: 2})
	big := NewWithBounds(res, costs, BoundOptions{DefaultLoopBound: 8})
	if small.WorstCaseCycles <= 0 || big.WorstCaseCycles <= 0 {
		t.Fatalf("nested bounded wcet: %d / %d", small.WorstCaseCycles, big.WorstCaseCycles)
	}
	// Nested loops multiply: 16x the iterations should far exceed 4x cost.
	if big.WorstCaseCycles < 4*small.WorstCaseCycles {
		t.Errorf("nested bound scaling too weak: %d vs %d", big.WorstCaseCycles, small.WorstCaseCycles)
	}
}

func TestBoundedWCETPerHeaderBounds(t *testing.T) {
	src := `
	int a;
	int main(int n) {
		int s = 0;
		while (n > 0) { s += a; n = n - 1; }
		return s;
	}`
	res := analyze(t, src, core.DefaultOptions(), 1)
	loops := res.Graph.NaturalLoops(res.Graph.Dominators())
	if len(loops) != 1 {
		t.Fatalf("%d loops", len(loops))
	}
	costs := DefaultCosts()
	per := NewWithBounds(res, costs, BoundOptions{
		LoopBounds: map[ir.BlockID]int64{loops[0].Header: 5},
	})
	def := NewWithBounds(res, costs, BoundOptions{DefaultLoopBound: 5})
	if per.WorstCaseCycles != def.WorstCaseCycles {
		t.Errorf("per-header bound %d != default bound %d",
			per.WorstCaseCycles, def.WorstCaseCycles)
	}
}

func TestBoundedWCETWithPersistence(t *testing.T) {
	// A data-dependent loop re-reading one table: the must analysis charges
	// a miss per iteration; persistence knows it misses once.
	src := `
	int tbl[16];
	int acc;
	int main(int n) {
		int i = 0;
		while (i < n) {
			acc = acc + tbl[i & 15];
			i = i + 1;
		}
		return acc;
	}`
	opts := core.DefaultOptions()
	opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8}
	res := analyze(t, src, opts, 1)
	persist, err := core.AnalyzePersistence(res.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}

	costs := DefaultCosts()
	bounds := BoundOptions{DefaultLoopBound: 100}
	plain := NewWithBounds(res, costs, bounds)
	bounds.Persistence = persist
	withP := NewWithBounds(res, costs, bounds)
	if plain.WorstCaseCycles <= 0 || withP.WorstCaseCycles <= 0 {
		t.Fatalf("estimates: %d / %d", plain.WorstCaseCycles, withP.WorstCaseCycles)
	}
	// First-miss accounting should cut the bound dramatically: 100
	// iterations of miss penalties collapse to one.
	if withP.WorstCaseCycles >= plain.WorstCaseCycles {
		t.Errorf("persistence did not improve the bound: %d vs %d",
			withP.WorstCaseCycles, plain.WorstCaseCycles)
	}
	if withP.WorstCaseCycles*2 > plain.WorstCaseCycles {
		t.Errorf("persistence improvement too small: %d vs %d",
			withP.WorstCaseCycles, plain.WorstCaseCycles)
	}
}
