package runner

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/core"
	"specabsint/internal/obs"
)

// cachedJob builds one report-cacheable side-channel job over src.
func cachedJob(name, src string, opts core.Options) Job {
	return Job{Name: name, Source: src, Opts: opts, Mode: ModeSideChannel, Cache: true}
}

// TestReportCacheHit checks that resubmitting an identical job is served
// from the report cache with the same result and CacheHit set.
func TestReportCacheHit(t *testing.T) {
	p := New(2)
	src := bench.Fig2Program(-1)
	job := cachedJob("fig2", src, core.DefaultOptions())

	cold := p.RunAll(context.Background(), []Job{job})[0]
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.CacheHit {
		t.Fatal("cold run reported CacheHit")
	}
	warm := p.RunAll(context.Background(), []Job{job})[0]
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.CacheHit {
		t.Fatal("identical resubmit missed the report cache")
	}
	if !reflect.DeepEqual(cold.Leaks, warm.Leaks) {
		t.Error("cached leaks differ from cold run")
	}
	if cold.Analysis != warm.Analysis || cold.Prog != warm.Prog {
		t.Error("cached run did not return the stored analysis/program")
	}
	hits, misses, _ := p.ReportCacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("report cache stats: %d hits %d misses, want 1/1", hits, misses)
	}
}

// TestReportCacheKeyedByOptions checks that any analysis-relevant option
// change misses the report cache.
func TestReportCacheKeyedByOptions(t *testing.T) {
	p := New(2)
	src := bench.Fig2Program(-1)
	base := core.DefaultOptions()

	variants := []core.Options{base}
	o := base
	o.Speculative = false
	variants = append(variants, o)
	o = base
	o.DepthMiss += 10
	variants = append(variants, o)
	o = base
	o.Strategy = core.StrategyPerRollbackBlock
	variants = append(variants, o)
	o = base
	o.RefinedJoin = !base.RefinedJoin
	variants = append(variants, o)
	o = base
	o.Collector = obs.NewCollector() // instrumented ≠ uninstrumented
	variants = append(variants, o)

	for i, opts := range variants {
		r := p.RunAll(context.Background(), []Job{cachedJob(fmt.Sprintf("v%d", i), src, opts)})[0]
		if r.Err != nil {
			t.Fatalf("variant %d: %v", i, r.Err)
		}
		if r.CacheHit {
			t.Errorf("variant %d hit the cache despite a distinct configuration", i)
		}
	}
	hits, misses, _ := p.ReportCacheStats()
	if hits != 0 || misses != int64(len(variants)) {
		t.Errorf("report cache stats: %d hits %d misses, want 0/%d", hits, misses, len(variants))
	}
}

// TestReportCacheUncachedJobs checks that Cache=false jobs never touch the
// report tier.
func TestReportCacheUncachedJobs(t *testing.T) {
	p := New(1)
	job := Job{Name: "plain", Source: bench.Fig2Program(-1), Opts: core.DefaultOptions(), Mode: ModeSideChannel}
	for i := 0; i < 2; i++ {
		if r := p.RunAll(context.Background(), []Job{job})[0]; r.Err != nil || r.CacheHit {
			t.Fatalf("run %d: err=%v cacheHit=%v", i, r.Err, r.CacheHit)
		}
	}
	hits, misses, _ := p.ReportCacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("uncached jobs touched the report tier: %d hits %d misses", hits, misses)
	}
}

// TestReportCacheEviction checks the LRU bound: with room for one entry, two
// distinct programs evict each other and re-running the first misses.
func TestReportCacheEviction(t *testing.T) {
	p := New(1)
	p.SetCacheBounds(0, 1)
	a := cachedJob("a", bench.Fig2Program(1), core.DefaultOptions())
	b := cachedJob("b", bench.Fig2Program(2), core.DefaultOptions())

	p.RunAll(context.Background(), []Job{a}) // miss, cached
	p.RunAll(context.Background(), []Job{b}) // miss, evicts a
	r := p.RunAll(context.Background(), []Job{a})[0]
	if r.CacheHit {
		t.Error("evicted entry served as a hit")
	}
	hits, misses, evictions := p.ReportCacheStats()
	if hits != 0 || misses != 3 {
		t.Errorf("report cache stats: %d hits %d misses, want 0/3", hits, misses)
	}
	if evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", evictions)
	}
	snap := p.Snapshot()
	if snap.ReportCacheSize != 1 {
		t.Errorf("report cache size = %d, want 1", snap.ReportCacheSize)
	}
	if snap.ReportCacheEvictions != evictions {
		t.Errorf("snapshot evictions = %d, want %d", snap.ReportCacheEvictions, evictions)
	}
}

// TestReportCacheStatsReplay checks that a cache hit replays the miss run's
// stats document into the hit's collector: semantic counters must be
// byte-identical between the cold and warm runs.
func TestReportCacheStatsReplay(t *testing.T) {
	p := New(2)
	src := bench.Fig2Program(-1)
	mkJob := func() (Job, *obs.Collector) {
		opts := core.DefaultOptions()
		c := obs.NewCollector()
		opts.Collector = c
		return cachedJob("fig2", src, opts), c
	}
	coldJob, coldC := mkJob()
	if r := p.RunAll(context.Background(), []Job{coldJob})[0]; r.Err != nil {
		t.Fatal(r.Err)
	}
	warmJob, warmC := mkJob()
	r := p.RunAll(context.Background(), []Job{warmJob})[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.CacheHit {
		t.Fatal("expected a report-cache hit")
	}
	cold, err := coldC.Snapshot().ZeroTimes().JSON()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := warmC.Snapshot().ZeroTimes().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(cold) != string(warm) {
		t.Errorf("replayed stats differ from cold run:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if r.Stats == nil {
		t.Error("cached result carries no stats snapshot")
	}
}

// TestDrain checks that Drain returns once submitted work completes and
// times out cleanly when it cannot.
func TestDrain(t *testing.T) {
	p := New(2)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = cachedJob(fmt.Sprintf("j%d", i), bench.Fig2Program(i), core.DefaultOptions())
	}
	p.RunAll(context.Background(), jobs)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain after completion: %v", err)
	}
	snap := p.Snapshot()
	if snap.Submitted != snap.Completed {
		t.Errorf("drained pool has %d submitted, %d completed", snap.Submitted, snap.Completed)
	}
}
