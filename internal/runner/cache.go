package runner

import (
	"container/list"

	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/obs"
	"specabsint/internal/sidechannel"
)

// The pool's cache is two-tiered and content-addressed, which is what makes
// a long-running analysis service (cmd/specserve) cheap under repetitive
// traffic:
//
//   - tier 1 (programs): progKey = SHA-256(source) + every lowering option
//     that shapes the IR → compiled *ir.Program. Shared by jobs that analyze
//     one source under many analysis configurations (a strategy sweep).
//   - tier 2 (reports): reportKey = progKey + the full analysis-options
//     fingerprint + mode → the completed analysis. A resubmission of an
//     identical request is answered without running the fixpoint at all.
//
// Both tiers are bounded LRU: Get refreshes recency, Put evicts from the
// cold end once the tier exceeds its bound. Every tier counts hits, misses
// and evictions, surfaced together in obs.PoolSnapshot so an operator can
// see both tiers from one /metrics scrape.

// Default cache bounds. Programs are the expensive tier to rebuild but cheap
// to hold (one IR per distinct source); reports are tiny (classification
// maps) so the report tier runs deeper.
const (
	DefaultProgramCacheBound = 512
	DefaultReportCacheBound  = 4096
)

// optsKey is the comparable fingerprint of every analysis option that can
// change a job's result or its stats document. Collector identity is
// irrelevant, but whether stats were requested is part of the key: a cached
// entry only carries a stats snapshot when its miss run collected one.
type optsKey struct {
	cache        layout.CacheConfig
	speculative  bool
	depthMiss    int
	depthHit     int
	dynamicDepth bool
	strategy     core.Strategy
	scheduler    core.Scheduler
	noUncert     bool
	refinedJoin  bool
	widening     int
	parallelism  int
	stats        bool
}

// fingerprintOptions reduces core.Options to its comparable key.
func fingerprintOptions(o core.Options) optsKey {
	return optsKey{
		cache:        o.Cache,
		speculative:  o.Speculative,
		depthMiss:    o.DepthMiss,
		depthHit:     o.DepthHit,
		dynamicDepth: o.DynamicDepthBounding,
		strategy:     o.Strategy,
		scheduler:    o.Scheduler,
		noUncert:     o.DisableUncertainty,
		refinedJoin:  o.RefinedJoin,
		widening:     o.WideningThreshold,
		parallelism:  o.SetParallelism,
		stats:        o.Collector != nil,
	}
}

// reportKey addresses one completed analysis: the compiled program's content
// key plus the analysis configuration it ran under.
type reportKey struct {
	prog progKey
	opts optsKey
	mode Mode
}

// reportEntry is one cached analysis. Entries are immutable once stored;
// concurrent hits share the pointers read-only (analyses never mutate their
// inputs or results after completion).
type reportEntry struct {
	prog     *ir.Program
	analysis *core.Result
	leaks    *sidechannel.Report
	// stats is the miss run's full observability snapshot (compile phases
	// replayed + fixpoint counters); nil when the miss ran uninstrumented.
	stats *obs.Stats
}

// lruCache is a minimal bounded LRU keyed by comparable K. Not safe for
// concurrent use — the pool guards each tier with its mutex.
type lruCache[K comparable, V any] struct {
	bound     int // <= 0: unbounded
	items     map[K]*list.Element
	order     *list.List // front = most recent
	evictions int64
}

type lruSlot[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](bound int) *lruCache[K, V] {
	return &lruCache[K, V]{bound: bound, items: map[K]*list.Element{}, order: list.New()}
}

func (c *lruCache[K, V]) get(k K) (V, bool) {
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruSlot[K, V]).val, true
	}
	var zero V
	return zero, false
}

func (c *lruCache[K, V]) put(k K, v V) {
	if el, ok := c.items[k]; ok {
		// Concurrent misses can race to fill one key; last write wins and
		// no eviction is needed.
		el.Value.(*lruSlot[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruSlot[K, V]{key: k, val: v})
	c.trim()
}

// trim evicts from the cold end until the cache fits its bound.
func (c *lruCache[K, V]) trim() {
	for c.bound > 0 && c.order.Len() > c.bound {
		cold := c.order.Back()
		c.order.Remove(cold)
		delete(c.items, cold.Value.(*lruSlot[K, V]).key)
		c.evictions++
	}
}

func (c *lruCache[K, V]) len() int { return c.order.Len() }

// reportGet returns the cached analysis for key, counting the hit or miss.
func (p *Pool) reportGet(key reportKey) (*reportEntry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.reports.get(key)
	if ok {
		p.reportHits++
	} else {
		p.reportMisses++
	}
	return e, ok
}

// reportPut stores a completed analysis. Only successful results are cached;
// errors (including cancellation) always re-run.
func (p *Pool) reportPut(key reportKey, e *reportEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reports.put(key, e)
}

// ReportCacheStats returns the report tier's hit, miss and eviction counts.
func (p *Pool) ReportCacheStats() (hits, misses, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reportHits, p.reportMisses, p.reports.evictions
}

// SetCacheBounds bounds the two cache tiers (entries, not bytes); <= 0 makes
// a tier unbounded. Shrinking a bound evicts immediately from the cold end.
// Call before serving traffic; it is safe, but not atomic, afterwards.
func (p *Pool) SetCacheBounds(programs, reports int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.progs.bound = programs
	p.progs.trim()
	p.reports.bound = reports
	p.reports.trim()
}
