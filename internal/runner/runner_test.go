package runner

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/core"
	"specabsint/internal/layout"
	"specabsint/internal/obs"
	"specabsint/internal/sidechannel"
)

// TestRunAllOrderAndCompleteness checks that a batch larger than the worker
// count returns exactly one result per job, in job order, regardless of how
// the workers interleave.
func TestRunAllOrderAndCompleteness(t *testing.T) {
	p := New(4)
	const n = 32
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name:   fmt.Sprintf("job%d", i),
			Source: bench.Fig2Program(i % 8), // 8 distinct programs
			Opts:   core.DefaultOptions(),
		}
	}
	results := p.RunAll(context.Background(), jobs)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Index != i || r.Name != jobs[i].Name {
			t.Errorf("result %d: got index %d name %q", i, r.Index, r.Name)
		}
		if r.Err != nil {
			t.Errorf("job %s: %v", r.Name, r.Err)
		}
		if r.Analysis == nil || r.Analysis.AccessCount() == 0 {
			t.Errorf("job %s: empty analysis", r.Name)
		}
	}
	hits, misses := p.CacheStats()
	if misses != 8 || hits != n-8 {
		t.Errorf("cache stats: %d hits %d misses, want %d hits 8 misses", hits, misses, n-8)
	}
}

// TestPanicIsolation checks that a panicking job surfaces as its own
// *PanicError without disturbing the rest of the batch.
func TestPanicIsolation(t *testing.T) {
	p := New(2)
	ok := func(context.Context) (*core.Result, *sidechannel.Report, error) {
		return &core.Result{}, nil, nil
	}
	jobs := []Job{
		{Name: "good0", run: ok},
		{Name: "boom", run: func(context.Context) (*core.Result, *sidechannel.Report, error) {
			panic("deliberate crash")
		}},
		{Name: "good1", run: ok},
	}
	results := p.RunAll(context.Background(), jobs)
	var perr *PanicError
	if !errors.As(results[1].Err, &perr) {
		t.Fatalf("job 1: got %v, want *PanicError", results[1].Err)
	}
	if perr.Job != "boom" || perr.Value != "deliberate crash" || len(perr.Stack) == 0 {
		t.Errorf("panic error: %+v", perr)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("job %d affected by sibling panic: %v", i, results[i].Err)
		}
	}
}

// TestCancelBlockedBatch cancels a batch whose running jobs block on the
// context: the blocked jobs must return the context error and jobs never
// started must be reported as canceled too, so RunAll stays complete.
func TestCancelBlockedBatch(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	running := make(chan struct{}, 2)
	block := func(ctx context.Context) (*core.Result, *sidechannel.Report, error) {
		running <- struct{}{}
		<-ctx.Done()
		return nil, nil, ctx.Err()
	}
	jobs := []Job{
		{Name: "blocked0", run: block},
		{Name: "blocked1", run: block},
		{Name: "never-started", run: block},
	}
	var (
		wg      sync.WaitGroup
		results []Result
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results = p.RunAll(ctx, jobs)
	}()
	<-running // both workers are now parked in a job
	<-running
	cancel()
	wg.Wait()
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %s: got %v, want context.Canceled", r.Name, r.Err)
		}
	}
}

// pollCancelCtx is a context that reports itself canceled after a fixed
// number of Done() polls. The fixpoint engine polls between worklist
// iterations, so this cancels an analysis mid-fixpoint deterministically —
// no timing involved.
type pollCancelCtx struct {
	context.Context
	mu        sync.Mutex
	remaining int
	done      chan struct{}
}

func newPollCancelCtx(polls int) *pollCancelCtx {
	return &pollCancelCtx{Context: context.Background(), remaining: polls, done: make(chan struct{})}
}

func (c *pollCancelCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.remaining--
	if c.remaining <= 0 {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
	return c.done
}

func (c *pollCancelCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

// TestCancelMidFixpoint runs a real analysis under a context that cancels on
// its third poll — several hundred worklist iterations in — and checks the
// fixpoint loop abandons the analysis with the context error.
func TestCancelMidFixpoint(t *testing.T) {
	p := New(1)
	ctx := newPollCancelCtx(3) // canceled on the poll at worklist iteration 512
	b, ok := bench.ByName("adpcm")
	if !ok {
		t.Fatal("adpcm benchmark missing")
	}
	jobs := []Job{{
		Name:      b.Name,
		Source:    b.Code,
		MaxUnroll: 4096, // ~32k worklist iterations: cancellation lands mid-fixpoint
		Opts:      core.DefaultOptions(),
	}}
	results := p.RunAll(ctx, jobs)
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", results[0].Err)
	}
	if results[0].Analysis != nil {
		t.Error("canceled job carries a partial analysis result")
	}
}

// TestBatchMatchesSerial is the golden equivalence check: every WCET
// benchmark analyzed through the pool must report exactly the per-access
// classifications and summary counts of the serial path.
func TestBatchMatchesSerial(t *testing.T) {
	benches := bench.WCETBenchmarks()
	opts := core.DefaultOptions()
	jobs := make([]Job, len(benches))
	for i, b := range benches {
		jobs[i] = Job{Name: b.Name, Source: b.Code, Opts: opts, Mode: ModeSideChannel}
	}
	results := New(0).RunAll(context.Background(), jobs)
	for i, b := range benches {
		r := results[i]
		if r.Err != nil {
			t.Fatalf("%s: %v", b.Name, r.Err)
		}
		prog, err := bench.Compile(b.Code, 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		want, err := sidechannel.Analyze(prog, opts)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		got := r.Leaks
		if got.Analysis.MissCount() != want.Analysis.MissCount() ||
			got.Analysis.SpecMissCount() != want.Analysis.SpecMissCount() ||
			got.Analysis.Iterations != want.Analysis.Iterations {
			t.Errorf("%s: batch summary diverges from serial", b.Name)
		}
		if !reflect.DeepEqual(got.Analysis.Access, want.Analysis.Access) ||
			!reflect.DeepEqual(got.Analysis.SpecAccess, want.Analysis.SpecAccess) {
			t.Errorf("%s: per-access classifications diverge from serial", b.Name)
		}
		if !reflect.DeepEqual(got.Leaks, want.Leaks) ||
			!reflect.DeepEqual(got.SpectreLeaks, want.SpectreLeaks) {
			t.Errorf("%s: leak reports diverge from serial", b.Name)
		}
	}
}

// TestBatchSetParallelismMatchesSerial nests the engine's per-cache-set
// fan-out inside the pool's job-level fan-out: results must still match the
// serial dense engine exactly (and the nesting is exercised under -race by
// the CI race job).
func TestBatchSetParallelismMatchesSerial(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 64, Assoc: 8}
	par := opts
	par.SetParallelism = 2

	var jobs []Job
	var names []string
	for _, name := range []string{"jcmarker", "jdmarker"} {
		b, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("kernel %q not in corpus", name)
		}
		jobs = append(jobs, Job{Name: name, Source: b.Code, Opts: par})
		names = append(names, name)
	}
	results := New(2).RunAll(context.Background(), jobs)
	for i, name := range names {
		r := results[i]
		if r.Err != nil {
			t.Fatalf("%s: %v", name, r.Err)
		}
		want, err := core.Analyze(r.Prog, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(r.Analysis.Access, want.Access) ||
			!reflect.DeepEqual(r.Analysis.SpecAccess, want.SpecAccess) {
			t.Errorf("%s: set-parallel batch classifications diverge from serial dense", name)
		}
	}
}

// TestCompileErrorPerJob checks a bad-source job fails alone: its error is a
// parse error, and sibling jobs complete.
func TestCompileErrorPerJob(t *testing.T) {
	p := New(2)
	jobs := []Job{
		{Name: "bad", Source: "int main( {", Opts: core.DefaultOptions()},
		{Name: "good", Source: bench.Fig2Program(0), Opts: core.DefaultOptions()},
	}
	results := p.RunAll(context.Background(), jobs)
	if results[0].Err == nil {
		t.Error("bad job: expected a compile error")
	}
	if results[1].Err != nil {
		t.Errorf("good job: %v", results[1].Err)
	}
}

// TestPoolReuseAcrossRuns checks the program cache persists across Run calls
// on the same pool: a second identical sweep compiles nothing.
func TestPoolReuseAcrossRuns(t *testing.T) {
	p := New(2)
	jobs := []Job{{Name: "fig2", Source: bench.Fig2Program(0), Opts: core.DefaultOptions()}}
	if r := p.RunAll(context.Background(), jobs); r[0].Err != nil {
		t.Fatal(r[0].Err)
	}
	_, missesBefore := p.CacheStats()
	if r := p.RunAll(context.Background(), jobs); r[0].Err != nil {
		t.Fatal(r[0].Err)
	}
	_, missesAfter := p.CacheStats()
	if missesAfter != missesBefore {
		t.Errorf("second run recompiled: misses %d -> %d", missesBefore, missesAfter)
	}
}

// TestPoolSnapshotCounters drives the pool through success, panic, blocking
// and cancellation, checking the expvar-style gauges at each stage.
func TestPoolSnapshotCounters(t *testing.T) {
	p := New(2)
	if s := p.Snapshot(); s != (obs.PoolSnapshot{Workers: 2}) {
		t.Fatalf("fresh pool snapshot = %+v", s)
	}
	ok := func(context.Context) (*core.Result, *sidechannel.Report, error) {
		return &core.Result{}, nil, nil
	}
	p.RunAll(context.Background(), []Job{
		{Name: "a", run: ok},
		{Name: "boom", run: func(context.Context) (*core.Result, *sidechannel.Report, error) {
			panic("deliberate crash")
		}},
		{Name: "b", run: ok},
	})
	s := p.Snapshot()
	want := obs.PoolSnapshot{Workers: 2, Submitted: 3, Completed: 3, Panics: 1}
	if s != want {
		t.Fatalf("after batch: %+v, want %+v", s, want)
	}

	// A canceled batch: two jobs park on the context, a third never starts
	// (or starts only to observe the canceled context — both count as
	// canceled completions, so the totals are deterministic either way).
	ctx, cancel := context.WithCancel(context.Background())
	running := make(chan struct{}, 2)
	block := func(ctx context.Context) (*core.Result, *sidechannel.Report, error) {
		running <- struct{}{}
		<-ctx.Done()
		return nil, nil, ctx.Err()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.RunAll(ctx, []Job{
			{Name: "b0", run: block},
			{Name: "b1", run: block},
			{Name: "b2", run: block},
		})
	}()
	<-running // both workers are parked inside a job
	<-running
	if s := p.Snapshot(); s.Running != 2 || s.QueueDepth != 1 {
		t.Fatalf("mid-batch: running %d queue %d, want 2 and 1", s.Running, s.QueueDepth)
	}
	cancel()
	<-done
	s = p.Snapshot()
	want = obs.PoolSnapshot{Workers: 2, Submitted: 6, Completed: 6, Panics: 1, Canceled: 3}
	if s != want {
		t.Fatalf("after cancel: %+v, want %+v", s, want)
	}
}

// TestPublishExpvar checks the pool registers on the process expvar page and
// renders its snapshot as JSON.
func TestPublishExpvar(t *testing.T) {
	p := New(1)
	p.PublishExpvar("specabsint-runner-test-pool")
	v := expvar.Get("specabsint-runner-test-pool")
	if v == nil {
		t.Fatal("PublishExpvar did not register the variable")
	}
	var snap obs.PoolSnapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("published value is not JSON: %v\n%s", err, v.String())
	}
	if snap.Workers != 1 {
		t.Fatalf("published snapshot %+v, want Workers=1", snap)
	}
}
