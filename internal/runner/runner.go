// Package runner is the batch-analysis engine: a worker pool that fans out
// independent (program, options) analysis jobs across CPUs. The paper's §6.4
// optimization makes colored speculative states independent per branch, and
// its evaluation runs every benchmark under many configurations (strategies
// × depths × cache geometries) — an embarrassingly parallel workload. The
// pool adds the operational pieces a long corpus sweep needs:
//
//   - cancellation: the worker's context reaches core.AnalyzeContext, whose
//     fixpoint loop polls it between worklist iterations, so a canceled
//     batch stops mid-analysis rather than after the current job;
//   - panic isolation: a crash in one job becomes that job's *PanicError
//     instead of killing the whole batch;
//   - a two-tier content-addressed cache (see cache.go): compiled programs
//     keyed by (source hash, lowering options), and — for Job.Cache jobs —
//     full analysis results keyed additionally by the analysis options, so a
//     resubmitted request skips the fixpoint entirely;
//   - streamed results in completion order (Run) and a deterministic
//     job-order wrapper (RunAll);
//   - graceful drain (Drain): a shutting-down service can wait for every
//     in-flight job before exiting.
//
// Analyses are pure over the IR, so one compiled program is safely shared
// by any number of concurrent jobs.
package runner

import (
	"context"
	"crypto/sha256"
	"errors"
	"expvar"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/lower"
	"specabsint/internal/obs"
	"specabsint/internal/passes"
	"specabsint/internal/sidechannel"
	"specabsint/internal/source"
)

// Mode selects which analysis a job runs.
type Mode int

// Analysis modes.
const (
	// ModeAnalyze runs the speculative data-cache analysis
	// (core.AnalyzeContext).
	ModeAnalyze Mode = iota
	// ModeSideChannel additionally runs leak and Spectre-gadget detection
	// (sidechannel.AnalyzeContext).
	ModeSideChannel
	// ModeICache runs the §3.2 instruction-cache extension
	// (core.AnalyzeInstructionCacheContext).
	ModeICache
)

// Job is one analysis request: a program (source or pre-compiled) plus the
// analysis options to run it under.
type Job struct {
	// Name labels the job in results and error messages.
	Name string
	// Source is MiniC source, compiled through the pool's program cache.
	// Ignored when Prog is set.
	Source string
	// MaxUnroll caps constant-trip loop unrolling at lowering time; it is
	// part of the cache key. 0 uses the lowering default.
	MaxUnroll int
	// Passes runs the analysis-preserving pass pipeline (internal/passes)
	// after lowering; it is part of the cache key. DCE is automatically
	// gated off for ModeICache jobs (nop insertion is analysis-preserving
	// only while the instruction stream's cache footprint is unmodeled), so
	// a source analyzed under both modes compiles twice.
	Passes bool
	// Prog, when non-nil, is analyzed directly (no compile, no cache).
	Prog *ir.Program
	// Opts configures the analysis.
	Opts core.Options
	// Mode selects the analysis pipeline (default ModeAnalyze).
	Mode Mode
	// Cache enables the report tier for this job: a previous successful run
	// of the identical (source, lowering, options, mode) request is returned
	// without re-running the analysis, and a miss stores its result for the
	// next submission. Only Source jobs participate (the report cache is
	// content-addressed; a caller-supplied Prog has no content key).
	Cache bool

	// run, when non-nil, replaces the built-in pipeline. Test seam for
	// exercising pool mechanics (panics, blocking jobs) deterministically.
	run func(ctx context.Context) (*core.Result, *sidechannel.Report, error)
}

// Result is one completed job.
type Result struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Name echoes the job's label.
	Name string
	// Prog is the program that was analyzed (the cached compilation for
	// Source jobs). Nil when compilation failed.
	Prog *ir.Program
	// Analysis is the cache analysis result; nil when Err is set.
	Analysis *core.Result
	// Leaks carries the side-channel report for ModeSideChannel jobs.
	Leaks *sidechannel.Report
	// Elapsed is the job's wall-clock time (compile + analysis).
	Elapsed time.Duration
	// Stats is the run's observability snapshot: populated when the job ran
	// with a collector (Opts.Collector != nil), whether the result was
	// computed or served from the report cache.
	Stats *obs.Stats
	// CacheHit reports that the result was served from the report cache (no
	// fixpoint ran for this job).
	CacheHit bool
	// Err is the job's failure, if any: a compile or analysis error, the
	// context error for canceled jobs, or a *PanicError for crashed ones.
	Err error
}

// PanicError reports a job that panicked. The batch is not affected; the
// panic value and stack are preserved for debugging.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("job %q panicked: %v", e.Job, e.Value)
}

// progKey identifies one compilation: source content plus every lowering
// option that shapes the IR.
type progKey struct {
	hash      [sha256.Size]byte
	maxUnroll int
	passes    bool
	icache    bool // gates DCE when passes run; irrelevant otherwise
}

// progEntry is a cache slot; once guarantees a single compilation even when
// several workers want the same program concurrently.
type progEntry struct {
	once sync.Once
	prog *ir.Program
	// stats is the compile-time observability snapshot (program shape, pass
	// effects, parse/lower/passes phases), replayed into instrumented jobs so
	// a cached compilation still yields a full stats document.
	stats *obs.Stats
	err   error
}

// Pool is a reusable batch-analysis service. The zero value is not usable;
// create pools with New. A Pool is safe for concurrent use, and its program
// cache persists across Run calls, so consecutive sweeps over the same
// corpus skip re-lowering.
type Pool struct {
	workers int

	// Lifecycle metrics, atomics so Snapshot never contends with workers.
	// Jobs dropped by cancellation before any worker picked them up count as
	// completed + canceled, keeping Submitted == Completed + Running +
	// queue-resident at every instant.
	submitted atomic.Int64
	completed atomic.Int64
	running   atomic.Int64
	panics    atomic.Int64
	canceled  atomic.Int64

	mu     sync.Mutex
	progs  *lruCache[progKey, *progEntry]
	hits   int64
	misses int64

	reports      *lruCache[reportKey, *reportEntry]
	reportHits   int64
	reportMisses int64
}

// New creates a pool with the given number of workers; workers <= 0 selects
// GOMAXPROCS. Both cache tiers start at their default bounds
// (DefaultProgramCacheBound / DefaultReportCacheBound); SetCacheBounds
// adjusts them.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers: workers,
		progs:   newLRU[progKey, *progEntry](DefaultProgramCacheBound),
		reports: newLRU[reportKey, *reportEntry](DefaultReportCacheBound),
	}
}

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// CacheStats returns the program tier's hit and miss counts (the report
// tier's live under ReportCacheStats; Snapshot carries both).
func (p *Pool) CacheStats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Snapshot returns the pool's expvar-style state: cumulative job counters,
// instantaneous running/queue gauges, and both cache tiers' hit/miss/
// eviction/size gauges. The counters are read individually (not under one
// lock), so a snapshot taken while jobs move between states is approximately
// — not transactionally — consistent; QueueDepth is clamped at zero for that
// reason.
func (p *Pool) Snapshot() obs.PoolSnapshot {
	s := obs.PoolSnapshot{
		Workers:   p.workers,
		Submitted: p.submitted.Load(),
		Completed: p.completed.Load(),
		Running:   p.running.Load(),
		Panics:    p.panics.Load(),
		Canceled:  p.canceled.Load(),
	}
	p.mu.Lock()
	s.CacheHits, s.CacheMisses = p.hits, p.misses
	s.CacheEvictions, s.CacheSize = p.progs.evictions, int64(p.progs.len())
	s.ReportCacheHits, s.ReportCacheMisses = p.reportHits, p.reportMisses
	s.ReportCacheEvictions, s.ReportCacheSize = p.reports.evictions, int64(p.reports.len())
	p.mu.Unlock()
	if d := s.Submitted - s.Completed - s.Running; d > 0 {
		s.QueueDepth = d
	}
	return s
}

// Drain blocks until every job submitted before the call has completed, or
// ctx expires. It does not stop new submissions — the caller (a shutting-
// down server) is expected to have closed its intake first.
func (p *Pool) Drain(ctx context.Context) error {
	for {
		if p.submitted.Load() == p.completed.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// PublishExpvar registers the pool's live snapshot under name in the
// process-wide expvar registry, so batch services expose it on /debug/vars
// alongside the runtime's memstats. Like expvar.Publish, it panics if name
// is already registered — publish each pool once, at startup.
func (p *Pool) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return p.Snapshot() }))
}

// Run fans jobs out across the pool's workers and streams results in
// completion order. The returned channel is closed after the last result;
// the caller must drain it. When ctx is canceled, jobs already running
// return their context error as soon as their fixpoint loop observes it,
// and jobs not yet started are dropped (RunAll converts those into per-job
// context errors).
func (p *Pool) Run(ctx context.Context, jobs []Job) <-chan Result {
	p.submitted.Add(int64(len(jobs)))
	out := make(chan Result)
	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range jobs {
			select {
			case feed <- i:
			case <-ctx.Done():
				// Jobs never handed to a worker: account them as completed
				// cancellations so the snapshot gauges reconcile.
				p.completed.Add(int64(len(jobs) - i))
				p.canceled.Add(int64(len(jobs) - i))
				return
			}
		}
	}()
	var wg sync.WaitGroup
	workers := p.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				out <- p.runJob(ctx, i, jobs[i])
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// RunAll runs the batch and returns one result per job, in job order —
// deterministic however the workers interleaved. Per-job failures (including
// cancellation) are reported in Result.Err; jobs never started because the
// context was canceled carry the context's error.
func (p *Pool) RunAll(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	started := make([]bool, len(jobs))
	for r := range p.Run(ctx, jobs) {
		results[r.Index] = r
		started[r.Index] = true
	}
	for i := range results {
		if !started[i] {
			err := ctx.Err()
			if err == nil {
				err = context.Canceled // unreachable: only cancellation skips jobs
			}
			results[i] = Result{Index: i, Name: jobs[i].Name, Err: err}
		}
	}
	return results
}

// runJob executes one job with panic isolation.
func (p *Pool) runJob(ctx context.Context, idx int, j Job) (res Result) {
	p.running.Add(1)
	res = Result{Index: idx, Name: j.Name}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			p.panics.Add(1)
			res = Result{
				Index:   idx,
				Name:    j.Name,
				Elapsed: time.Since(start),
				Err:     &PanicError{Job: j.Name, Value: r, Stack: debug.Stack()},
			}
		}
		if res.Err != nil && (errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded)) {
			p.canceled.Add(1)
		}
		p.running.Add(-1)
		p.completed.Add(1)
	}()
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if j.run != nil {
		res.Analysis, res.Leaks, res.Err = j.run(ctx)
		return res
	}
	// Report tier: identical successful requests are answered without
	// compiling or running anything.
	var rkey reportKey
	cacheable := j.Cache && j.Prog == nil
	if cacheable {
		rkey = reportKey{
			prog: p.progKeyFor(j.Source, j.MaxUnroll, j.Passes, j.Mode == ModeICache),
			opts: fingerprintOptions(j.Opts),
			mode: j.Mode,
		}
		if e, ok := p.reportGet(rkey); ok {
			res.Prog = e.prog
			res.Analysis = e.analysis
			res.Leaks = e.leaks
			res.CacheHit = true
			if e.stats != nil {
				res.Stats = e.stats.Clone()
				j.Opts.Collector.Replay(e.stats)
			}
			return res
		}
	}
	prog := j.Prog
	if prog == nil {
		var err error
		var cstats *obs.Stats
		prog, cstats, err = p.compile(j.Source, j.MaxUnroll, j.Passes, j.Mode == ModeICache)
		if err != nil {
			res.Err = err
			return res
		}
		// Replay the (possibly cached) compilation's stats so instrumented
		// jobs get the full document: shape, passes, then analysis phases.
		j.Opts.Collector.Replay(cstats)
	}
	res.Prog = prog
	// The job and mode labels make a CPU profile of a batch attributable:
	// samples group by which benchmark and pipeline they burned time in.
	pprof.Do(ctx, pprof.Labels("job", j.Name, "mode", modeLabel(j.Mode)), func(ctx context.Context) {
		switch j.Mode {
		case ModeSideChannel:
			rep, err := sidechannel.AnalyzeContext(ctx, prog, j.Opts)
			if err != nil {
				res.Err = err
				return
			}
			res.Leaks = rep
			res.Analysis = rep.Analysis
		case ModeICache:
			res.Analysis, res.Err = core.AnalyzeInstructionCacheContext(ctx, prog, j.Opts)
		default:
			res.Analysis, res.Err = core.AnalyzeContext(ctx, prog, j.Opts)
		}
	})
	if res.Err == nil {
		res.Stats = j.Opts.Collector.Snapshot()
		if cacheable {
			p.reportPut(rkey, &reportEntry{
				prog:     res.Prog,
				analysis: res.Analysis,
				leaks:    res.Leaks,
				stats:    res.Stats,
			})
		}
	}
	return res
}

// modeLabel names a Mode for profiler labels.
func modeLabel(m Mode) string {
	switch m {
	case ModeSideChannel:
		return "sidechannel"
	case ModeICache:
		return "icache"
	}
	return "analyze"
}

// progKeyFor computes the program tier's content key.
func (p *Pool) progKeyFor(src string, maxUnroll int, runPasses, icache bool) progKey {
	return progKey{hash: sha256.Sum256([]byte(src)), maxUnroll: maxUnroll, passes: runPasses, icache: runPasses && icache}
}

// compile parses and lowers source through the cache. Concurrent requests
// for the same (source, options) compile once and share the result — and its
// compile-time stats snapshot, so cached compilations still produce full
// observability documents.
func (p *Pool) compile(src string, maxUnroll int, runPasses, icache bool) (*ir.Program, *obs.Stats, error) {
	key := p.progKeyFor(src, maxUnroll, runPasses, icache)
	p.mu.Lock()
	e, ok := p.progs.get(key)
	if ok {
		p.hits++
	} else {
		p.misses++
		e = &progEntry{}
		p.progs.put(key, e)
	}
	p.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("compile panicked: %v", r)
			}
		}()
		col := obs.NewCollector()
		var ast *source.Program
		var err error
		col.Phase("parse", func() { ast, err = source.Parse(src) })
		if err != nil {
			e.err = err
			return
		}
		opts := lower.DefaultOptions()
		if maxUnroll > 0 {
			opts.MaxUnroll = maxUnroll
		}
		col.Phase("lower", func() { e.prog, e.err = lower.Lower(ast, opts) })
		if e.err == nil && runPasses {
			popts := passes.Default()
			popts.ICacheModeled = icache
			var pres *passes.Result
			var perr error
			col.Phase("passes", func() { pres, perr = passes.Run(e.prog, popts) })
			if perr != nil {
				e.prog, e.err = nil, perr
			} else {
				for _, ps := range pres.Stats {
					col.AddPass(ps.Name, ps.Changed)
				}
			}
		}
		if e.err == nil {
			col.SetProgram(obs.ProgramStats{
				Blocks:           len(e.prog.Blocks),
				Instrs:           e.prog.InstrCount(),
				Symbols:          len(e.prog.Symbols),
				MemAccesses:      e.prog.MemAccessCount(),
				CondBranches:     e.prog.CondBranchCount(),
				ResolvedBranches: e.prog.ResolvedBranchCount(),
			})
			e.stats = col.Snapshot()
		}
	})
	return e.prog, e.stats, e.err
}
