package interval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	if !Bot().IsBot() || Top().IsBot() {
		t.Error("bot/top misclassified")
	}
	if !Top().IsTop() || Single(3).IsTop() {
		t.Error("top misclassified")
	}
	if !Single(5).IsSingle() || !Single(5).Contains(5) || Single(5).Contains(6) {
		t.Error("singleton behavior")
	}
}

func TestJoinHull(t *testing.T) {
	j := Of(1, 3).Join(Of(5, 9))
	if j != Of(1, 9) {
		t.Errorf("join = %v", j)
	}
	if Bot().Join(Of(1, 2)) != Of(1, 2) {
		t.Error("join with bottom")
	}
}

func TestLeq(t *testing.T) {
	if !Of(2, 3).Leq(Of(1, 4)) {
		t.Error("containment")
	}
	if Of(0, 5).Leq(Of(1, 4)) {
		t.Error("non-containment")
	}
	if !Bot().Leq(Of(1, 1)) {
		t.Error("bottom is least")
	}
	if Of(1, 1).Leq(Bot()) {
		t.Error("nothing below bottom")
	}
}

func TestWiden(t *testing.T) {
	w := Of(0, 10).Widen(Of(0, 5))
	if w.Lo != 0 || w.Hi != math.MaxInt64 {
		t.Errorf("widen grew-high = %v", w)
	}
	w = Of(-3, 5).Widen(Of(0, 5))
	if w.Lo != math.MinInt64 || w.Hi != 5 {
		t.Errorf("widen grew-low = %v", w)
	}
	w = Of(0, 5).Widen(Of(0, 5))
	if w != Of(0, 5) {
		t.Errorf("stable widen = %v", w)
	}
}

func TestArithmetic(t *testing.T) {
	if got := Of(1, 2).Add(Of(10, 20)); got != Of(11, 22) {
		t.Errorf("add = %v", got)
	}
	if got := Of(1, 2).Sub(Of(10, 20)); got != Of(-19, -8) {
		t.Errorf("sub = %v", got)
	}
	if got := Of(-2, 3).Mul(Of(4, 5)); got != Of(-10, 15) {
		t.Errorf("mul = %v", got)
	}
	if got := Of(1, 2).Neg(); got != Of(-2, -1) {
		t.Errorf("neg = %v", got)
	}
	if got := Of(10, 100).Div(Single(10)); got != Of(1, 10) {
		t.Errorf("div = %v", got)
	}
	if got := Of(0, 1000).Rem(Single(7)); got != Of(0, 6) {
		t.Errorf("rem = %v", got)
	}
	if got := Of(-50, 50).Rem(Single(7)); got != Of(-6, 6) {
		t.Errorf("rem signed = %v", got)
	}
	if got := Of(0, 255).And(Single(15)); got != Of(0, 15) {
		t.Errorf("and = %v", got)
	}
	if got := Of(0, 7).Shl(Single(4)); got != Of(0, 112) {
		t.Errorf("shl = %v", got)
	}
	if got := Of(0, 1024).Shr(Single(4)); got != Of(0, 64) {
		t.Errorf("shr = %v", got)
	}
}

func TestSaturation(t *testing.T) {
	top := Top()
	if got := top.Add(Single(1)); got.Lo != math.MinInt64 || got.Hi != math.MaxInt64 {
		t.Errorf("saturating add = %v", got)
	}
	huge := Of(math.MaxInt64-1, math.MaxInt64)
	if got := huge.Add(Single(10)); got.Hi != math.MaxInt64 {
		t.Errorf("overflow add = %v", got)
	}
	if got := Of(1<<40, 1<<41).Mul(Of(1<<40, 1<<41)); !got.IsTop() {
		t.Errorf("oversized mul should be top, got %v", got)
	}
}

// Property: join is a least upper bound and all ops are monotone-sound for
// membership: if x ∈ a and y ∈ b then x op y ∈ a.Op(b).
func TestPropertySoundArithmetic(t *testing.T) {
	f := func(x, y int32, wa, wb uint8) bool {
		// Build intervals around x and y with random widths.
		a := Of(int64(x)-int64(wa), int64(x)+int64(wa%16))
		b := Of(int64(y)-int64(wb), int64(y)+int64(wb%16))
		checks := []struct {
			got  Interval
			want int64
		}{
			{a.Add(b), int64(x) + int64(y)},
			{a.Sub(b), int64(x) - int64(y)},
			{a.Mul(b), int64(x) * int64(y)},
			{a.Neg(), -int64(x)},
		}
		for _, c := range checks {
			if !c.got.Contains(c.want) {
				return false
			}
		}
		if y > 0 {
			if !a.Div(b).Contains(int64(x) / int64(y)) {
				return false
			}
			if !a.Rem(b).Contains(int64(x) % int64(y)) {
				return false
			}
		}
		if x >= 0 && y >= 0 {
			if !a.And(b).Contains(int64(x) & int64(y)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyJoinUpperBound(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := Of(min64(int64(a1), int64(a2)), max64(int64(a1), int64(a2)))
		b := Of(min64(int64(b1), int64(b2)), max64(int64(b1), int64(b2)))
		j := a.Join(b)
		return a.Leq(j) && b.Leq(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWidenUpperBound(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		prev := Of(min64(int64(a1), int64(a2)), max64(int64(a1), int64(a2)))
		next := Of(min64(int64(b1), int64(b2)), max64(int64(b1), int64(b2)))
		w := next.Widen(prev)
		return next.Leq(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	cases := map[string]Interval{
		"⊥":        Bot(),
		"⊤":        Top(),
		"[1,3]":    Of(1, 3),
		"[0,+inf]": Of(0, math.MaxInt64),
	}
	for want, iv := range cases {
		if got := iv.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", iv, got, want)
		}
	}
}
