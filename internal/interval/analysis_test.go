package interval

import (
	"testing"

	"specabsint/internal/cfg"
	"specabsint/internal/ir"
	"specabsint/internal/lower"
	"specabsint/internal/source"
)

func analyze(t *testing.T, src string, maxUnroll int) (*ir.Program, *Result) {
	t.Helper()
	ast, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(ast, lower.Options{MaxUnroll: maxUnroll})
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.New(prog)
	return prog, Analyze(g)
}

// memInstrs returns all Load/Store instructions touching the named symbol.
func memInstrs(prog *ir.Program, symName string) []*ir.Instr {
	sym := prog.SymbolByName(symName)
	var out []*ir.Instr
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if (in.Op == ir.OpLoad || in.Op == ir.OpStore) && in.Sym == sym.ID {
				out = append(out, in)
			}
		}
	}
	return out
}

func TestUnrolledLoopHasSingletonIndices(t *testing.T) {
	prog, res := analyze(t, `
		int a[32];
		int main() {
			int s = 0;
			for (int i = 0; i < 32; i++) { s += a[i]; }
			return s;
		}`, 64)
	loads := memInstrs(prog, "a")
	if len(loads) != 32 {
		t.Fatalf("found %d loads of a, want 32", len(loads))
	}
	for n, in := range loads {
		iv := res.IndexOf(in)
		if !iv.IsSingle() {
			t.Fatalf("load %d index interval %v, want singleton", n, iv)
		}
		if iv.Lo != int64(n) {
			t.Errorf("load %d reads a[%d], want a[%d]", n, iv.Lo, n)
		}
	}
}

func TestLoopedIndexIsBounded(t *testing.T) {
	prog, res := analyze(t, `
		int a[32];
		int main() {
			int s = 0;
			for (int i = 0; i < 32; i++) { s += a[i]; }
			return s;
		}`, 1) // keep the loop; widening must kick in
	loads := memInstrs(prog, "a")
	if len(loads) != 1 {
		t.Fatalf("found %d loads, want 1", len(loads))
	}
	iv := res.IndexOf(loads[0])
	if iv.Lo < 0 || iv.Lo > 0 {
		t.Errorf("index lower bound = %d, want 0", iv.Lo)
	}
	// Without branch refinement the upper bound is widened to +inf; the
	// consumer clamps to the array. It must still contain all real indices.
	for i := int64(0); i < 32; i++ {
		if !iv.Contains(i) {
			t.Errorf("interval %v misses index %d", iv, i)
		}
	}
}

func TestMaskedIndexStaysPrecise(t *testing.T) {
	prog, res := analyze(t, `
		int sbox[256];
		int main(int k) {
			return sbox[k & 255];
		}`, 1)
	loads := memInstrs(prog, "sbox")
	iv := res.IndexOf(loads[0])
	if iv.Lo != 0 || iv.Hi != 255 {
		t.Errorf("masked index = %v, want [0,255]", iv)
	}
}

func TestSecretScalarIsTop(t *testing.T) {
	prog, res := analyze(t, `
		secret int key;
		int tbl[16];
		int main() { return tbl[key]; }`, 1)
	loads := memInstrs(prog, "tbl")
	iv := res.IndexOf(loads[0])
	if !iv.IsTop() {
		t.Errorf("secret-driven index = %v, want top", iv)
	}
}

func TestInitializedGlobalIsSingleton(t *testing.T) {
	prog, res := analyze(t, `
		int idx = 3;
		int tbl[16];
		int main() { return tbl[idx]; }`, 1)
	loads := memInstrs(prog, "tbl")
	iv := res.IndexOf(loads[0])
	if !iv.IsSingle() || iv.Lo != 3 {
		t.Errorf("index = %v, want {3}", iv)
	}
}

func TestConstIndexNeedsNoEntry(t *testing.T) {
	prog, res := analyze(t, `
		int tbl[16];
		int main() { return tbl[7]; }`, 1)
	loads := memInstrs(prog, "tbl")
	iv := res.IndexOf(loads[0])
	if !iv.IsSingle() || iv.Lo != 7 {
		t.Errorf("const index = %v, want {7}", iv)
	}
}

func TestNoBranchRefinement(t *testing.T) {
	// Inside `if (k < 4)` a refining analysis would bound k; ours must not,
	// because the branch may be mis-speculated.
	prog, res := analyze(t, `
		int tbl[16];
		int main(int k) {
			if (k < 4) { return tbl[k]; }
			return 0;
		}`, 1)
	loads := memInstrs(prog, "tbl")
	iv := res.IndexOf(loads[0])
	if !iv.Contains(10) {
		t.Errorf("interval %v excludes values the speculative path can see", iv)
	}
}

func TestScalarFlowThroughMemory(t *testing.T) {
	prog, res := analyze(t, `
		int tbl[64];
		int main() {
			int a = 5;
			int b = a + 2;
			return tbl[b];
		}`, 1)
	loads := memInstrs(prog, "tbl")
	iv := res.IndexOf(loads[0])
	if !iv.IsSingle() || iv.Lo != 7 {
		t.Errorf("index through memory = %v, want {7}", iv)
	}
}

func TestAnalysisTerminatesOnNestedLoops(t *testing.T) {
	_, res := analyze(t, `
		int a[8];
		int main() {
			int s = 0;
			for (int i = 0; i < 100; i++) {
				int j = 0;
				while (j < i) { s += a[j % 8]; j++; }
			}
			return s;
		}`, 1)
	if res.Iterations <= 0 || res.Iterations > 10000 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestCompareProducesSingletonWhenDecided(t *testing.T) {
	prog, res := analyze(t, `
		int tbl[4];
		int main() {
			int a = 1;
			int c = (a < 2);
			return tbl[c];
		}`, 1)
	loads := memInstrs(prog, "tbl")
	iv := res.IndexOf(loads[0])
	if !iv.IsSingle() || iv.Lo != 1 {
		t.Errorf("decided compare = %v, want {1}", iv)
	}
}
