package interval

import (
	"specabsint/internal/cfg"
	"specabsint/internal/ir"
)

// Env is the abstract environment at a block boundary. Only *cross-block*
// registers (those read in a block other than the one defining them, or
// defined in several blocks) are stored — after full loop unrolling a
// program has tens of thousands of single-block temporaries, and carrying
// all of them per block would dominate the analysis cost. Block-local
// registers are evaluated in a scratch table during the block transfer.
type Env struct {
	Regs []Interval // indexed by compact cross-register index
	Mems []Interval // indexed by SymbolID (scalars only)
}

func (e *Env) clone() *Env {
	return &Env{
		Regs: append([]Interval(nil), e.Regs...),
		Mems: append([]Interval(nil), e.Mems...),
	}
}

func (e *Env) join(o *Env) (changed bool) {
	for i := range e.Regs {
		j := e.Regs[i].Join(o.Regs[i])
		if j != e.Regs[i] {
			e.Regs[i] = j
			changed = true
		}
	}
	for i := range e.Mems {
		j := e.Mems[i].Join(o.Mems[i])
		if j != e.Mems[i] {
			e.Mems[i] = j
			changed = true
		}
	}
	return changed
}

func (e *Env) widen(prev *Env) {
	for i := range e.Regs {
		e.Regs[i] = e.Regs[i].Widen(prev.Regs[i])
	}
	for i := range e.Mems {
		e.Mems[i] = e.Mems[i].Widen(prev.Mems[i])
	}
}

// Result holds the per-instruction index intervals of a completed analysis.
type Result struct {
	// Index[instrID] is the interval of the element index of a Load/Store,
	// present only for memory instructions with a register index.
	Index map[int]Interval
	// Iterations counts block transfers performed by the fixpoint loop.
	Iterations int
}

// IndexOf returns the interval for a memory instruction's element index.
// Constant indices are singletons; unanalyzed registers are Top.
func (r *Result) IndexOf(in *ir.Instr) Interval {
	if in.Idx.IsConst {
		return Single(in.Idx.Const)
	}
	if iv, ok := r.Index[in.ID]; ok {
		return iv
	}
	return Top()
}

// wideningThreshold is the number of visits to a block before widening
// kicks in.
const wideningThreshold = 3

// analyzer carries the fixpoint machinery.
type analyzer struct {
	g    *cfg.Graph
	prog *ir.Program
	res  *Result

	// crossIdx[r] is the compact env index of register r, or -1 when r is
	// block-local.
	crossIdx []int
	numCross int

	// scratch evaluates block-local registers; scratchGen invalidates it
	// per block transfer without clearing.
	scratch    []Interval
	scratchGen []uint32
	curGen     uint32
}

// Analyze runs the interval analysis to a fixpoint over g.
//
// Branch conditions are not used to refine environments at successors: the
// result therefore over-approximates the register/memory values observable
// on speculative (wrong-path) executions as well as architectural ones.
func Analyze(g *cfg.Graph) *Result {
	prog := g.Prog
	a := &analyzer{
		g:          g,
		prog:       prog,
		res:        &Result{Index: map[int]Interval{}},
		crossIdx:   make([]int, prog.NumRegs),
		scratch:    make([]Interval, prog.NumRegs),
		scratchGen: make([]uint32, prog.NumRegs),
	}
	a.classifyRegisters()

	nBlocks := len(prog.Blocks)
	in := make([]*Env, nBlocks)
	visits := make([]int, nBlocks)

	loopHeader := make([]bool, nBlocks)
	for _, loop := range g.NaturalLoops(g.Dominators()) {
		loopHeader[loop.Header] = true
	}

	in[prog.Entry] = a.entryEnv()
	work := []ir.BlockID{prog.Entry}
	inWork := make([]bool, nBlocks)
	inWork[prog.Entry] = true

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		visits[b]++
		a.res.Iterations++

		env := in[b].clone()
		block := prog.Block(b)
		a.transferBlock(block, env)
		// Effective successors: a Resolved CondBr is an unconditional jump in
		// the emitted program, so no execution — architectural or wrong-path —
		// reaches its dead edge, and no value can flow there.
		for _, s := range block.EffectiveSuccs() {
			if in[s] == nil {
				in[s] = a.bottomEnv()
			}
			next := in[s].clone()
			next.join(env)
			if loopHeader[s] && visits[s] >= wideningThreshold {
				next.widen(in[s])
			}
			if in[s].join(next) {
				if !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
			}
		}
	}
	return a.res
}

// classifyRegisters finds the registers whose values flow across block
// boundaries.
func (a *analyzer) classifyRegisters() {
	const noBlock = -2
	defBlock := make([]int, a.prog.NumRegs)
	for i := range defBlock {
		defBlock[i] = noBlock
	}
	cross := make([]bool, a.prog.NumRegs)
	definedHere := make([]uint32, a.prog.NumRegs)
	var gen uint32

	for _, b := range a.prog.Blocks {
		gen++
		for i := range b.Instrs {
			in := &b.Instrs[i]
			use := func(v ir.Value) {
				if !v.IsConst && definedHere[v.Reg] != gen {
					cross[v.Reg] = true
				}
			}
			switch in.Op {
			case ir.OpConst, ir.OpNop, ir.OpBr, ir.OpFence:
			case ir.OpMov, ir.OpNeg, ir.OpNot, ir.OpBool, ir.OpCondBr, ir.OpRet:
				use(in.A)
			case ir.OpLoad:
				use(in.Idx)
			case ir.OpStore:
				use(in.A)
				use(in.Idx)
			default:
				use(in.A)
				use(in.B)
			}
			if writesValue(in.Op) {
				if defBlock[in.Dst] != noBlock && defBlock[in.Dst] != int(b.ID) {
					cross[in.Dst] = true
				}
				defBlock[in.Dst] = int(b.ID)
				definedHere[in.Dst] = gen
			}
		}
	}
	for r := range a.crossIdx {
		if cross[r] {
			a.crossIdx[r] = a.numCross
			a.numCross++
		} else {
			a.crossIdx[r] = -1
		}
	}
}

func writesValue(op ir.Op) bool {
	switch op {
	case ir.OpStore, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpNop, ir.OpFence:
		return false
	}
	return true
}

func (a *analyzer) bottomEnv() *Env {
	e := &Env{
		Regs: make([]Interval, a.numCross),
		Mems: make([]Interval, len(a.prog.Symbols)),
	}
	for i := range e.Regs {
		e.Regs[i] = Bot()
	}
	for i := range e.Mems {
		e.Mems[i] = Bot()
	}
	return e
}

func (a *analyzer) entryEnv() *Env {
	e := a.bottomEnv()
	for _, sym := range a.prog.Symbols {
		if sym.Len != 1 {
			continue
		}
		switch {
		case sym.Secret:
			// Secrets are arbitrary.
			e.Mems[sym.ID] = Top()
		case len(sym.Init) > 0:
			e.Mems[sym.ID] = Single(sym.Init[0])
		default:
			// Uninitialized scalars (e.g. main's parameters) model inputs.
			e.Mems[sym.ID] = Top()
		}
	}
	return e
}

// readReg fetches a register value from the env or the block-local scratch.
func (a *analyzer) readReg(env *Env, r ir.Reg) Interval {
	if ci := a.crossIdx[r]; ci >= 0 {
		iv := env.Regs[ci]
		if iv.IsBot() {
			// Read of a never-written register on this path: be safe.
			return Top()
		}
		return iv
	}
	if a.scratchGen[r] == a.curGen {
		return a.scratch[r]
	}
	return Top()
}

func (a *analyzer) writeReg(env *Env, r ir.Reg, iv Interval) {
	if ci := a.crossIdx[r]; ci >= 0 {
		env.Regs[ci] = iv
		return
	}
	a.scratch[r] = iv
	a.scratchGen[r] = a.curGen
}

// transferBlock pushes env through all instructions of a block, recording
// index intervals for memory instructions.
func (a *analyzer) transferBlock(b *ir.Block, env *Env) {
	a.curGen++
	for i := range b.Instrs {
		a.transfer(env, &b.Instrs[i])
	}
}

func (a *analyzer) transfer(env *Env, instr *ir.Instr) {
	val := func(v ir.Value) Interval {
		if v.IsConst {
			return Single(v.Const)
		}
		return a.readReg(env, v.Reg)
	}
	switch instr.Op {
	case ir.OpConst, ir.OpMov:
		a.writeReg(env, instr.Dst, val(instr.A))
	case ir.OpNeg:
		a.writeReg(env, instr.Dst, val(instr.A).Neg())
	case ir.OpNot:
		a.writeReg(env, instr.Dst, Top())
	case ir.OpBool:
		a.writeReg(env, instr.Dst, Bool01())
	case ir.OpAdd:
		a.writeReg(env, instr.Dst, val(instr.A).Add(val(instr.B)))
	case ir.OpSub:
		a.writeReg(env, instr.Dst, val(instr.A).Sub(val(instr.B)))
	case ir.OpMul:
		a.writeReg(env, instr.Dst, val(instr.A).Mul(val(instr.B)))
	case ir.OpDiv:
		a.writeReg(env, instr.Dst, val(instr.A).Div(val(instr.B)))
	case ir.OpRem:
		a.writeReg(env, instr.Dst, val(instr.A).Rem(val(instr.B)))
	case ir.OpAnd:
		a.writeReg(env, instr.Dst, val(instr.A).And(val(instr.B)))
	case ir.OpOr, ir.OpXor:
		av, bv := val(instr.A), val(instr.B)
		switch {
		case av.IsSingle() && bv.IsSingle():
			if instr.Op == ir.OpOr {
				a.writeReg(env, instr.Dst, Single(av.Lo|bv.Lo))
			} else {
				a.writeReg(env, instr.Dst, Single(av.Lo^bv.Lo))
			}
		case av.Lo >= 0 && bv.Lo >= 0 && !av.IsTop() && !bv.IsTop():
			// or/xor of non-negative values is bounded by the next power
			// of two above both.
			a.writeReg(env, instr.Dst, Of(0, ceilPow2(max64(av.Hi, bv.Hi))))
		default:
			a.writeReg(env, instr.Dst, Top())
		}
	case ir.OpShl:
		a.writeReg(env, instr.Dst, val(instr.A).Shl(val(instr.B)))
	case ir.OpShr:
		a.writeReg(env, instr.Dst, val(instr.A).Shr(val(instr.B)))
	case ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe, ir.OpCmpEq, ir.OpCmpNe:
		a.writeReg(env, instr.Dst, compareInterval(instr.Op, val(instr.A), val(instr.B)))
	case ir.OpLoad:
		if !instr.Idx.IsConst {
			recordIndex(a.res, instr.ID, val(instr.Idx))
		}
		sym := a.prog.Symbol(instr.Sym)
		if sym.Len == 1 {
			iv := env.Mems[instr.Sym]
			if iv.IsBot() {
				iv = Top()
			}
			a.writeReg(env, instr.Dst, iv)
		} else {
			// Array contents are not value-tracked.
			a.writeReg(env, instr.Dst, Top())
		}
	case ir.OpStore:
		if !instr.Idx.IsConst {
			recordIndex(a.res, instr.ID, val(instr.Idx))
		}
		sym := a.prog.Symbol(instr.Sym)
		if sym.Len == 1 {
			env.Mems[instr.Sym] = val(instr.A)
		}
	case ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpNop, ir.OpFence:
		// no value effect
	}
}

// recordIndex joins a freshly computed index interval into the result. The
// per-block environments grow monotonically, so joining keeps the final
// (widest, sound) interval regardless of worklist order.
func recordIndex(res *Result, id int, iv Interval) {
	if old, ok := res.Index[id]; ok {
		iv = old.Join(iv)
	}
	res.Index[id] = iv
}

func compareInterval(op ir.Op, a, b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	// Definitely-true / definitely-false detection keeps comparison results
	// singletons where possible.
	var defTrue, defFalse bool
	switch op {
	case ir.OpCmpLt:
		defTrue, defFalse = a.Hi < b.Lo, a.Lo >= b.Hi
	case ir.OpCmpLe:
		defTrue, defFalse = a.Hi <= b.Lo, a.Lo > b.Hi
	case ir.OpCmpGt:
		defTrue, defFalse = a.Lo > b.Hi, a.Hi <= b.Lo
	case ir.OpCmpGe:
		defTrue, defFalse = a.Lo >= b.Hi, a.Hi < b.Lo
	case ir.OpCmpEq:
		defTrue = a.IsSingle() && b.IsSingle() && a.Lo == b.Lo
		defFalse = a.Hi < b.Lo || b.Hi < a.Lo
	case ir.OpCmpNe:
		defTrue = a.Hi < b.Lo || b.Hi < a.Lo
		defFalse = a.IsSingle() && b.IsSingle() && a.Lo == b.Lo
	}
	switch {
	case defTrue:
		return Single(1)
	case defFalse:
		return Single(0)
	}
	return Bool01()
}

func ceilPow2(v int64) int64 {
	if v <= 0 {
		return 0
	}
	p := int64(1)
	for p <= v && p > 0 {
		p <<= 1
	}
	return p - 1
}
