// Package interval implements an interval abstract domain and a
// flow-sensitive interval analysis over the IR.
//
// Its role in the speculative cache analysis is to bound the element index
// of memory accesses, narrowing the candidate cache blocks of each Load and
// Store. The analysis deliberately performs *no* branch-condition
// refinement: register and memory facts must remain valid on mis-speculated
// paths, where branch conditions are ignored by the hardware (DESIGN.md,
// "Intervals ignore branch conditions").
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed integer interval [Lo, Hi]. Lo > Hi encodes bottom.
type Interval struct {
	Lo, Hi int64
}

// Top is the full interval.
func Top() Interval { return Interval{math.MinInt64, math.MaxInt64} }

// Bot is the empty interval.
func Bot() Interval { return Interval{1, 0} }

// Single is the singleton interval {v}.
func Single(v int64) Interval { return Interval{v, v} }

// Of builds [lo, hi].
func Of(lo, hi int64) Interval {
	return Interval{lo, hi}
}

// IsBot reports whether the interval is empty.
func (iv Interval) IsBot() bool { return iv.Lo > iv.Hi }

// IsTop reports whether the interval is the full range.
func (iv Interval) IsTop() bool {
	return iv.Lo == math.MinInt64 && iv.Hi == math.MaxInt64
}

// IsSingle reports whether the interval holds exactly one value.
func (iv Interval) IsSingle() bool { return iv.Lo == iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// String formats the interval.
func (iv Interval) String() string {
	if iv.IsBot() {
		return "⊥"
	}
	if iv.IsTop() {
		return "⊤"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != math.MinInt64 {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != math.MaxInt64 {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

// Join returns the interval hull of a and b.
func (a Interval) Join(b Interval) Interval {
	if a.IsBot() {
		return b
	}
	if b.IsBot() {
		return a
	}
	return Interval{min64(a.Lo, b.Lo), max64(a.Hi, b.Hi)}
}

// Widen returns a widened against prev: bounds that grew jump to infinity.
func (a Interval) Widen(prev Interval) Interval {
	if prev.IsBot() {
		return a
	}
	if a.IsBot() {
		return prev
	}
	out := a
	if a.Lo < prev.Lo {
		out.Lo = math.MinInt64
	}
	if a.Hi > prev.Hi {
		out.Hi = math.MaxInt64
	}
	return out
}

// Leq reports a ⊑ b (containment).
func (a Interval) Leq(b Interval) bool {
	if a.IsBot() {
		return true
	}
	if b.IsBot() {
		return false
	}
	return b.Lo <= a.Lo && a.Hi <= b.Hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// satAdd adds with saturation, treating MinInt64/MaxInt64 as sticky
// infinities.
func satAdd(a, b int64) int64 {
	if a == math.MinInt64 || b == math.MinInt64 {
		return math.MinInt64
	}
	if a == math.MaxInt64 || b == math.MaxInt64 {
		return math.MaxInt64
	}
	if a > 0 && b > math.MaxInt64-a {
		return math.MaxInt64
	}
	if a < 0 && b < math.MinInt64-a {
		return math.MinInt64
	}
	return a + b
}

// fitsMul reports whether both operands are small enough that their product
// cannot overflow int64.
func fitsMul(a, b int64) bool {
	const lim = int64(1) << 31
	return a > -lim && a < lim && b > -lim && b < lim
}

// Add returns the interval sum.
func (a Interval) Add(b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	return Interval{satAdd(a.Lo, b.Lo), satAdd(a.Hi, b.Hi)}
}

// Sub returns the interval difference.
func (a Interval) Sub(b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	return Interval{satAdd(a.Lo, -b.Hi), satAdd(a.Hi, -b.Lo)}
}

// Neg returns the interval negation.
func (a Interval) Neg() Interval {
	if a.IsBot() {
		return Bot()
	}
	lo, hi := -a.Hi, -a.Lo
	if a.Hi == math.MinInt64 {
		lo = math.MaxInt64
	}
	if a.Lo == math.MinInt64 {
		hi = math.MaxInt64
	}
	return Interval{min64(lo, hi), max64(lo, hi)}
}

// Mul returns the interval product; it degrades to Top when bounds are too
// large to multiply safely.
func (a Interval) Mul(b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	if !fitsMul(a.Lo, b.Lo) || !fitsMul(a.Lo, b.Hi) ||
		!fitsMul(a.Hi, b.Lo) || !fitsMul(a.Hi, b.Hi) {
		return Top()
	}
	p := []int64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		lo, hi = min64(lo, v), max64(hi, v)
	}
	return Interval{lo, hi}
}

// Rem approximates the C remainder a % b: the result magnitude is bounded
// by |b|-1 and takes the sign of a.
func (a Interval) Rem(b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	m := max64(abs64(b.Lo), abs64(b.Hi))
	if m == 0 || m == math.MaxInt64 {
		return Top()
	}
	lo := int64(0)
	if a.Lo < 0 {
		lo = -(m - 1)
	}
	hi := int64(0)
	if a.Hi > 0 {
		hi = m - 1
	}
	return Interval{lo, hi}
}

// Div approximates integer division. Only the common positive-divisor case
// is made precise; everything else degrades soundly.
func (a Interval) Div(b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	if b.Lo > 0 {
		// Dividing by something >= b.Lo shrinks magnitudes.
		candidates := []int64{
			quo(a.Lo, b.Lo), quo(a.Lo, b.Hi),
			quo(a.Hi, b.Lo), quo(a.Hi, b.Hi),
		}
		lo, hi := candidates[0], candidates[0]
		for _, v := range candidates[1:] {
			lo, hi = min64(lo, v), max64(hi, v)
		}
		return Interval{lo, hi}
	}
	return Top()
}

func quo(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Shr approximates an arithmetic right shift by a constant amount.
func (a Interval) Shr(b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	if !b.IsSingle() || b.Lo < 0 || b.Lo > 62 {
		return Top()
	}
	s := uint(b.Lo)
	lo, hi := a.Lo>>s, a.Hi>>s
	if a.Lo == math.MinInt64 {
		lo = math.MinInt64
	}
	if a.Hi == math.MaxInt64 {
		hi = math.MaxInt64
	}
	return Interval{lo, hi}
}

// Shl approximates a left shift by a constant amount.
func (a Interval) Shl(b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	if !b.IsSingle() || b.Lo < 0 || b.Lo > 30 {
		return Top()
	}
	return a.Mul(Single(int64(1) << uint(b.Lo)))
}

// And approximates bitwise and. When either operand is known non-negative,
// the result lies in [0, that operand's maximum] regardless of the other
// operand's sign — this keeps the `x & (N-1)` masking idiom of the crypto
// kernels precise even for unknown x.
func (a Interval) And(b Interval) Interval {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	switch {
	case a.Lo >= 0 && b.Lo >= 0:
		return Interval{0, min64(a.Hi, b.Hi)}
	case b.Lo >= 0:
		return Interval{0, b.Hi}
	case a.Lo >= 0:
		return Interval{0, a.Hi}
	}
	return Top()
}

// Bool01 is the interval of comparison results.
func Bool01() Interval { return Interval{0, 1} }

func abs64(v int64) int64 {
	if v == math.MinInt64 {
		return math.MaxInt64
	}
	if v < 0 {
		return -v
	}
	return v
}
