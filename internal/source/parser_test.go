package source

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	return prog
}

func TestParseMinimalMain(t *testing.T) {
	prog := mustParse(t, "int main() { return 0; }")
	if len(prog.Funcs) != 1 || prog.Funcs[0].Name != "main" {
		t.Fatalf("unexpected functions: %+v", prog.Funcs)
	}
}

func TestParseGlobals(t *testing.T) {
	prog := mustParse(t, `
		int a;
		char buf[64];
		int tbl[4] = {1, 2, 3, 4};
		secret int key;
		int main() { return a; }
	`)
	if len(prog.Globals) != 4 {
		t.Fatalf("got %d globals, want 4", len(prog.Globals))
	}
	buf := prog.Global("buf")
	if !buf.Type.IsArray || buf.Type.Len != 64 || buf.Type.Base != Char {
		t.Errorf("buf type = %v", buf.Type)
	}
	tbl := prog.Global("tbl")
	if len(tbl.InitArr) != 4 {
		t.Errorf("tbl has %d initializers", len(tbl.InitArr))
	}
	if !prog.Global("key").Secret {
		t.Error("key should be secret")
	}
}

func TestParseConstArraySize(t *testing.T) {
	prog := mustParse(t, "char ph[64*510]; int main() { return 0; }")
	if got := prog.Global("ph").Type.Len; got != 64*510 {
		t.Errorf("ph len = %d, want %d", got, 64*510)
	}
}

func TestParseControlFlow(t *testing.T) {
	prog := mustParse(t, `
		int main() {
			int s = 0;
			for (int i = 0; i < 10; i++) {
				if (i % 2 == 0) { s += i; } else { s -= i; }
				while (s > 100) { s = s / 2; break; }
				if (s < 0) continue;
			}
			return s;
		}
	`)
	body := prog.Funcs[0].Body
	if len(body.Stmts) != 3 {
		t.Fatalf("main body has %d stmts, want 3", len(body.Stmts))
	}
	if _, ok := body.Stmts[1].(*ForStmt); !ok {
		t.Errorf("stmt 1 is %T, want *ForStmt", body.Stmts[1])
	}
}

func TestParseIfWithoutBraces(t *testing.T) {
	prog := mustParse(t, `
		int main() {
			int x = 1;
			if (x > 0) x = 2; else x = 3;
			return x;
		}
	`)
	ifs := prog.Funcs[0].Body.Stmts[1].(*IfStmt)
	if len(ifs.Then.Stmts) != 1 || len(ifs.Else.Stmts) != 1 {
		t.Error("single statements should be wrapped into blocks")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustParse(t, "int main() { return 1 + 2 * 3; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	v, err := EvalConst(ret.X)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Errorf("1 + 2 * 3 = %d, want 7", v)
	}
}

func TestParseShortCircuit(t *testing.T) {
	prog := mustParse(t, "int main() { int a = 1; int b = 2; if (a > 0 && b > 0 || !a) { return 1; } return 0; }")
	ifs := prog.Funcs[0].Body.Stmts[2].(*IfStmt)
	cond, ok := ifs.Cond.(*CondExpr)
	if !ok || cond.Op != OrOr {
		t.Fatalf("top-level condition is %T, want *CondExpr(||)", ifs.Cond)
	}
	if inner, ok := cond.L.(*CondExpr); !ok || inner.Op != AndAnd {
		t.Errorf("left is %T, want *CondExpr(&&)", cond.L)
	}
}

func TestParseCalls(t *testing.T) {
	prog := mustParse(t, `
		int add(int a, int b) { return a + b; }
		int main() { return add(1, add(2, 3)); }
	`)
	ret := prog.Funcs[1].Body.Stmts[0].(*ReturnStmt)
	call := ret.X.(*CallExpr)
	if call.Name != "add" || len(call.Args) != 2 {
		t.Fatalf("unexpected call %+v", call)
	}
}

func TestParseCastIgnored(t *testing.T) {
	prog := mustParse(t, "int main() { long w; w = (long)5 * 3; return (int)w; }")
	if prog == nil {
		t.Fatal("nil program")
	}
}

func TestParseQuantlSnippet(t *testing.T) {
	// Condensed version of the paper's Figure 8.
	src := `
	int decis_levl[30] = { 280,576,880,1200,1520,1864,2208,2584,2960,3376,
		3784,4240,4696,5200,5712,6288,6864,7520,8184,8968,9752,10712,11664,
		12896,14120,15840,17560,20456,23352,32767 };
	int quant26bt_pos[31] = { 61,60,59,58,57,56,55,54,53,52,51,50,49,48,47,
		46,45,44,43,42,41,40,39,38,37,36,35,34,33,32,32 };
	int quant26bt_neg[31] = { 63,62,31,30,29,28,27,26,25,24,23,22,21,20,19,
		18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,4 };
	int my_abs(int x) { if (x < 0) { return -x; } return x; }
	int quantl(int el, int detl) {
		int ril; int mil;
		long wd; long decis;
		wd = my_abs(el);
		for (mil = 0; mil < 30; mil++) {
			decis = (decis_levl[mil] * (long)detl) >> 15L;
			if (wd <= decis) break;
		}
		if (el >= 0) { ril = quant26bt_pos[mil]; }
		else { ril = quant26bt_neg[mil]; }
		return ril;
	}
	int main() { return quantl(100, 7); }
	`
	prog := mustParse(t, src)
	if prog.Func("quantl") == nil {
		t.Fatal("quantl missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing semicolon":  "int main() { int x = 1 return x; }",
		"unterminated block": "int main() { return 0;",
		"bad token":          "int main() { return @; }",
		"bad array size":     "int a[0]; int main() { return 0; }",
		"nonconst size":      "int n; int a[n]; int main() { return 0; }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared var":     "int main() { return zz; }",
		"undeclared fn":      "int main() { return f(1); }",
		"arity":              "int f(int a) { return a; } int main() { return f(1, 2); }",
		"dup global":         "int a; int a; int main() { return 0; }",
		"dup local":          "int main() { int x; int x; return 0; }",
		"assign to array":    "int a[4]; int main() { a = 1; return 0; }",
		"index scalar":       "int x; int main() { return x[0]; }",
		"break outside loop": "int main() { break; return 0; }",
		"recursion":          "int f(int n) { return f(n); } int main() { return f(1); }",
		"mutual recursion":   "int f(int n) { return g(n); } int g(int n) { return f(n); } int main() { return f(1); }",
		"no main":            "int f() { return 0; }",
		"void returns value": "void f() { return 1; } int main() { f(); return 0; }",
		"reg array":          "int main() { reg int a[4]; return 0; }",
	}
	for name, src := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("%s: expected semantic error", name)
		} else if strings.Contains(err.Error(), "unknown") {
			t.Errorf("%s: low-quality error %q", name, err)
		}
	}
}

func TestEvalConst(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"1 << 10", 1024},
		{"255 & 0x0f", 15},
		{"-5 % 3", -2},
		{"7 / 2", 3},
		{"~0", -1},
		{"!0", 1},
		{"!5", 0},
		{"1 < 2", 1},
		{"2 <= 1", 0},
		{"3 == 3", 1},
		{"3 != 3", 0},
		{"1 && 0", 0},
		{"0 || 2", 1},
		{"5 ^ 3", 6},
		{"64 * 510", 32640},
	}
	for _, tc := range cases {
		toks, err := LexAll(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		p := &Parser{toks: toks}
		e, err := p.parseExpr()
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		v, err := EvalConst(e)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if v != tc.want {
			t.Errorf("%s = %d, want %d", tc.src, v, tc.want)
		}
	}
}

func TestEvalConstDivZero(t *testing.T) {
	toks, _ := LexAll("1 / 0")
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalConst(e); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestWalkExprsCoversCallArgs(t *testing.T) {
	prog := mustParse(t, `
		int f(int a, int b) { return a + b; }
		int main() { int x = 1; return f(x + 1, f(x, 2)); }
	`)
	calls := 0
	WalkExprs(prog.Funcs[1].Body, func(e Expr) {
		if _, ok := e.(*CallExpr); ok {
			calls++
		}
	})
	if calls != 2 {
		t.Errorf("found %d calls, want 2", calls)
	}
}
