package source

import (
	"errors"
	"testing"
)

// FuzzParse asserts the front end is total: Parse never panics, and every
// rejection is a *ParseError carrying a 1-based source position (the API
// contract errors.go re-exports). Seed inputs cover the grammar; the file
// corpus lives in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"int main() { return 0; }",
		"int g0 = 1;\nint arr[8];\nint main(int inp) {\narr[g0 & 7] = inp;\nreturn arr[0];\n}\n",
		"char buf[64];\nsecret int k;\nint main() {\nreg int t;\nt = buf[k & 63];\nreturn t;\n}\n",
		"int a[4] = { 1, 2, 3, 4 };\nint f(int x) { if (x < 0) { return -x; } return x; }\nint main(int el) { return f(el - 3); }\n",
		"int main() { for (int i = 0; i < 4; i++) { if (i == 2) break; } return 0; }\n",
		"int main() { return (1 + 2) * 3 >> 1 & 7; }",
		"int main( {",
		"int main() { return undeclared; }",
		"int main() { int x = \x00; }",
		"// comment only\n",
		"int 0g = 1;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse rejection is not a *ParseError: %T: %v", err, err)
			}
			if pe.Line() < 1 || pe.Col() < 1 {
				t.Fatalf("ParseError without a source position: %+v (input %q)", pe, src)
			}
			return
		}
		if prog == nil {
			t.Fatalf("Parse returned nil program and nil error (input %q)", src)
		}
	})
}
