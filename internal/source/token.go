// Package source implements the MiniC front-end: lexer, parser, AST,
// semantic checking, and constant folding.
//
// MiniC is a small C-like language sufficient to express the paper's
// benchmark kernels: integer scalars and one-dimensional arrays, functions,
// if/else, while/for loops, break/continue/return, and the storage
// qualifiers `reg` (register-resident, invisible to the cache analysis) and
// `secret` (taint source for side-channel detection).
package source

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwInt
	KwLong
	KwChar
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwBreak
	KwContinue
	KwReturn
	KwReg
	KwSecret
	KwConst
	KwFence

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Not
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	PlusPlus
	MinusMinus
	PlusAssign
	MinusAssign
)

var kindNames = map[Kind]string{
	EOF:         "EOF",
	IDENT:       "identifier",
	NUMBER:      "number",
	KwInt:       "int",
	KwLong:      "long",
	KwChar:      "char",
	KwVoid:      "void",
	KwIf:        "if",
	KwElse:      "else",
	KwWhile:     "while",
	KwFor:       "for",
	KwBreak:     "break",
	KwContinue:  "continue",
	KwReturn:    "return",
	KwReg:       "reg",
	KwSecret:    "secret",
	KwConst:     "const",
	KwFence:     "fence",
	LParen:      "(",
	RParen:      ")",
	LBrace:      "{",
	RBrace:      "}",
	LBracket:    "[",
	RBracket:    "]",
	Comma:       ",",
	Semicolon:   ";",
	Assign:      "=",
	Plus:        "+",
	Minus:       "-",
	Star:        "*",
	Slash:       "/",
	Percent:     "%",
	Amp:         "&",
	Pipe:        "|",
	Caret:       "^",
	Tilde:       "~",
	Not:         "!",
	Shl:         "<<",
	Shr:         ">>",
	Lt:          "<",
	Gt:          ">",
	Le:          "<=",
	Ge:          ">=",
	EqEq:        "==",
	NotEq:       "!=",
	AndAnd:      "&&",
	OrOr:        "||",
	PlusPlus:    "++",
	MinusMinus:  "--",
	PlusAssign:  "+=",
	MinusAssign: "-=",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int":      KwInt,
	"long":     KwLong,
	"char":     KwChar,
	"void":     KwVoid,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"break":    KwBreak,
	"continue": KwContinue,
	"return":   KwReturn,
	"reg":      KwReg,
	"secret":   KwSecret,
	"const":    KwConst,
	"fence":    KwFence,
}

// Pos is a source position.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token.
type Token struct {
	Kind Kind
	Text string
	Val  int64 // for NUMBER
	Pos  Pos
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case NUMBER:
		return fmt.Sprintf("number %d", t.Val)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

// ParseError is a front-end diagnostic carrying a source position. It is
// returned (possibly wrapped) by Parse for lexical, syntactic, and semantic
// errors, and survives errors.As through any number of wrapping layers.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Line returns the 1-based source line of the diagnostic.
func (e *ParseError) Line() int { return e.Pos.Line }

// Col returns the 1-based source column of the diagnostic.
func (e *ParseError) Col() int { return e.Pos.Col }

// Error is the pre-typed-errors name of ParseError.
//
// Deprecated: use ParseError.
type Error = ParseError

func errf(pos Pos, format string, args ...any) *ParseError {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
