package source

import "testing"

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll("int x = 42;")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwInt, IDENT, Assign, NUMBER, Semicolon, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("number value = %d, want 42", toks[3].Val)
	}
}

func TestLexOperators(t *testing.T) {
	src := "<< >> <= >= == != && || ++ -- += -= < > = ! & | ^ ~ + - * / %"
	want := []Kind{
		Shl, Shr, Le, Ge, EqEq, NotEq, AndAnd, OrOr, PlusPlus, MinusMinus,
		PlusAssign, MinusAssign, Lt, Gt, Assign, Not, Amp, Pipe, Caret,
		Tilde, Plus, Minus, Star, Slash, Percent, EOF,
	}
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("// line\nint /* block\nacross lines */ x;")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwInt, IDENT, Semicolon, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := LexAll("/* never closed"); err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestLexHexAndSuffixes(t *testing.T) {
	toks, err := LexAll("0x63 15L 32767UL")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 0x63 || toks[1].Val != 15 || toks[2].Val != 32767 {
		t.Errorf("values = %d %d %d", toks[0].Val, toks[1].Val, toks[2].Val)
	}
}

func TestLexCharLiteral(t *testing.T) {
	toks, err := LexAll(`'a' '\n' '\0'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 'a' || toks[1].Val != '\n' || toks[2].Val != 0 {
		t.Errorf("values = %d %d %d", toks[0].Val, toks[1].Val, toks[2].Val)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := LexAll("int $x;"); err == nil {
		t.Fatal("expected error for '$'")
	}
}

func TestStripIncludes(t *testing.T) {
	out := StripIncludes("#include <stdio.h>\nint x;\n#define N 4\nint y;")
	toks, err := LexAll(out)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tok := range toks {
		if tok.Kind == KwInt {
			count++
		}
	}
	if count != 2 {
		t.Errorf("got %d int keywords, want 2", count)
	}
}

func TestLexKeywords(t *testing.T) {
	src := "if else while for break continue return reg secret const void char long"
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KwIf, KwElse, KwWhile, KwFor, KwBreak, KwContinue, KwReturn,
		KwReg, KwSecret, KwConst, KwVoid, KwChar, KwLong, EOF,
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}
