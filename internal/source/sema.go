package source

import "fmt"

// Check performs semantic analysis on a parsed program: name resolution,
// arity checking, array/scalar usage consistency, and structural rules
// (break/continue inside loops, no recursion — MiniC programs are fully
// inlined during lowering).
func Check(prog *Program) error {
	c := &checker{
		prog:    prog,
		globals: map[string]*VarDecl{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errf(g.Pos, "duplicate global %q", g.Name)
		}
		if g.Type.IsArray && len(g.InitArr) > g.Type.Len {
			return errf(g.Pos, "too many initializers for %q (%d > %d)",
				g.Name, len(g.InitArr), g.Type.Len)
		}
		c.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return errf(f.Pos, "duplicate function %q", f.Name)
		}
		c.funcs[f.Name] = f
	}
	if _, ok := c.funcs["main"]; !ok {
		return errf(Pos{Line: 1, Col: 1}, "program has no main function")
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return c.checkNoRecursion()
}

type checker struct {
	prog    *Program
	globals map[string]*VarDecl
	funcs   map[string]*FuncDecl

	// per-function state
	scopes    []map[string]*VarDecl
	loopDepth int
	current   *FuncDecl
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*VarDecl{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(d *VarDecl) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[d.Name]; dup {
		return errf(d.Pos, "duplicate declaration of %q", d.Name)
	}
	top[d.Name] = d
	return nil
}

// Lookup resolves a name to its declaration, innermost scope first.
func (c *checker) lookup(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d, ok := c.scopes[i][name]; ok {
			return d
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.current = f
	c.scopes = nil
	c.loopDepth = 0
	c.pushScope()
	for _, p := range f.Params {
		if p.Type.IsArray {
			return errf(p.Pos, "array parameters are not supported")
		}
		if err := c.declare(p); err != nil {
			return err
		}
	}
	err := c.checkBlock(f.Body)
	c.popScope()
	return err
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		d := st.Decl
		if d.Type.IsArray && len(d.InitArr) > d.Type.Len {
			return errf(d.Pos, "too many initializers for %q", d.Name)
		}
		if d.Type.IsArray && d.Storage == InReg {
			return errf(d.Pos, "array %q cannot be reg-resident", d.Name)
		}
		if d.Init != nil {
			if err := c.checkExpr(d.Init); err != nil {
				return err
			}
		}
		for _, e := range d.InitArr {
			if err := c.checkExpr(e); err != nil {
				return err
			}
		}
		return c.declare(d)
	case *AssignStmt:
		if err := c.checkLValue(st.LHS); err != nil {
			return err
		}
		return c.checkExpr(st.RHS)
	case *ExprStmt:
		return c.checkExpr(st.X)
	case *IfStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(st.Body)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkExpr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(st.Body)
	case *FenceStmt:
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ReturnStmt:
		if st.X != nil {
			if c.current.Ret == Void {
				return errf(st.Pos, "void function %q returns a value", c.current.Name)
			}
			return c.checkExpr(st.X)
		}
		if c.current.Ret != Void {
			return errf(st.Pos, "non-void function %q returns no value", c.current.Name)
		}
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (c *checker) checkLValue(e Expr) error {
	switch x := e.(type) {
	case *IdentExpr:
		d := c.lookup(x.Name)
		if d == nil {
			return errf(x.Pos, "undeclared variable %q", x.Name)
		}
		if d.Type.IsArray {
			return errf(x.Pos, "cannot assign to array %q", x.Name)
		}
		return nil
	case *IndexExpr:
		return c.checkExpr(x)
	}
	return errf(e.ExprPos(), "expression is not assignable")
}

func (c *checker) checkExpr(e Expr) error {
	switch x := e.(type) {
	case *NumberExpr:
		return nil
	case *IdentExpr:
		d := c.lookup(x.Name)
		if d == nil {
			return errf(x.Pos, "undeclared variable %q", x.Name)
		}
		return nil
	case *IndexExpr:
		d := c.lookup(x.Arr.Name)
		if d == nil {
			return errf(x.Arr.Pos, "undeclared array %q", x.Arr.Name)
		}
		if !d.Type.IsArray {
			return errf(x.Arr.Pos, "%q is not an array", x.Arr.Name)
		}
		return c.checkExpr(x.Index)
	case *UnaryExpr:
		return c.checkExpr(x.X)
	case *BinaryExpr:
		if err := c.checkExpr(x.L); err != nil {
			return err
		}
		return c.checkExpr(x.R)
	case *CondExpr:
		if err := c.checkExpr(x.L); err != nil {
			return err
		}
		return c.checkExpr(x.R)
	case *CallExpr:
		f, ok := c.funcs[x.Name]
		if !ok {
			return errf(x.Pos, "call to undeclared function %q", x.Name)
		}
		if len(x.Args) != len(f.Params) {
			return errf(x.Pos, "call to %q has %d args, want %d",
				x.Name, len(x.Args), len(f.Params))
		}
		for _, a := range x.Args {
			if err := c.checkExpr(a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown expression %T", e)
}

// checkNoRecursion verifies the static call graph is acyclic so that
// whole-program inlining terminates.
func (c *checker) checkNoRecursion() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(f *FuncDecl) error
	visit = func(f *FuncDecl) error {
		color[f.Name] = gray
		for _, callee := range calleesOf(f) {
			g, ok := c.funcs[callee]
			if !ok {
				continue // already diagnosed
			}
			switch color[g.Name] {
			case gray:
				return errf(f.Pos, "recursion involving %q is not supported", g.Name)
			case white:
				if err := visit(g); err != nil {
					return err
				}
			}
		}
		color[f.Name] = black
		return nil
	}
	for _, f := range c.prog.Funcs {
		if color[f.Name] == white {
			if err := visit(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// calleesOf collects the names of functions called anywhere in f.
func calleesOf(f *FuncDecl) []string {
	seen := map[string]bool{}
	var names []string
	WalkExprs(f.Body, func(e Expr) {
		if call, ok := e.(*CallExpr); ok && !seen[call.Name] {
			seen[call.Name] = true
			names = append(names, call.Name)
		}
	})
	return names
}

// WalkExprs invokes fn on every expression nested in the statement tree.
func WalkExprs(s Stmt, fn func(Expr)) {
	var walkE func(Expr)
	walkE = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch x := e.(type) {
		case *IndexExpr:
			walkE(x.Index)
		case *UnaryExpr:
			walkE(x.X)
		case *BinaryExpr:
			walkE(x.L)
			walkE(x.R)
		case *CondExpr:
			walkE(x.L)
			walkE(x.R)
		case *CallExpr:
			for _, a := range x.Args {
				walkE(a)
			}
		}
	}
	var walkS func(Stmt)
	walkS = func(s Stmt) {
		switch st := s.(type) {
		case *BlockStmt:
			for _, inner := range st.Stmts {
				walkS(inner)
			}
		case *DeclStmt:
			walkE(st.Decl.Init)
			for _, e := range st.Decl.InitArr {
				walkE(e)
			}
		case *AssignStmt:
			walkE(st.LHS)
			walkE(st.RHS)
		case *ExprStmt:
			walkE(st.X)
		case *IfStmt:
			walkE(st.Cond)
			walkS(st.Then)
			if st.Else != nil {
				walkS(st.Else)
			}
		case *WhileStmt:
			walkE(st.Cond)
			walkS(st.Body)
		case *ForStmt:
			if st.Init != nil {
				walkS(st.Init)
			}
			walkE(st.Cond)
			if st.Post != nil {
				walkS(st.Post)
			}
			walkS(st.Body)
		case *ReturnStmt:
			walkE(st.X)
		}
	}
	walkS(s)
}
