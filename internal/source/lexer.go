package source

import (
	"strconv"
	"strings"
)

// Lexer turns MiniC source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		return l.lexNumber(pos)
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case c == '\'':
		return l.lexCharLiteral(pos)
	}
	l.advance()
	two := func(next byte, withNext, without Kind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: withNext, Pos: pos}, nil
		}
		return Token{Kind: without, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: pos}, nil
	case '~':
		return Token{Kind: Tilde, Pos: pos}, nil
	case '^':
		return Token{Kind: Caret, Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: PlusPlus, Pos: pos}, nil
		}
		return two('=', PlusAssign, Plus)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: MinusMinus, Pos: pos}, nil
		}
		return two('=', MinusAssign, Minus)
	case '=':
		return two('=', EqEq, Assign)
	case '!':
		return two('=', NotEq, Not)
	case '&':
		return two('&', AndAnd, Amp)
	case '|':
		return two('|', OrOr, Pipe)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: Shl, Pos: pos}, nil
		}
		return two('=', Le, Lt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: Shr, Pos: pos}, nil
		}
		return two('=', Ge, Gt)
	}
	return Token{}, errf(pos, "unexpected character %q", string(rune(c)))
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	base := 10
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		base = 16
		start = l.off
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	// Permit C-style suffixes (e.g. 15L, 32767UL) by trimming them.
	for l.off < len(l.src) {
		switch l.peek() {
		case 'l', 'L', 'u', 'U':
			l.advance()
		default:
			goto done
		}
	}
done:
	if text == "" {
		return Token{}, errf(pos, "malformed number literal")
	}
	v, err := strconv.ParseInt(text, base, 64)
	if err != nil {
		return Token{}, errf(pos, "malformed number literal %q", text)
	}
	return Token{Kind: NUMBER, Text: text, Val: v, Pos: pos}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) lexCharLiteral(pos Pos) (Token, error) {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		return Token{}, errf(pos, "unterminated character literal")
	}
	var v int64
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			return Token{}, errf(pos, "unterminated character literal")
		}
		e := l.advance()
		switch e {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return Token{}, errf(pos, "unsupported escape \\%s", string(rune(e)))
		}
	} else {
		v = int64(c)
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return Token{}, errf(pos, "unterminated character literal")
	}
	return Token{Kind: NUMBER, Text: "'" + string(rune(v)) + "'", Val: v, Pos: pos}, nil
}

// LexAll tokenizes the whole input, returning the tokens including a final
// EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

// StripIncludes removes `#include`/`#define`-style preprocessor lines so
// that benchmark sources copied from C compile; MiniC has no preprocessor.
func StripIncludes(src string) string {
	lines := strings.Split(src, "\n")
	for i, ln := range lines {
		if strings.HasPrefix(strings.TrimSpace(ln), "#") {
			lines[i] = ""
		}
	}
	return strings.Join(lines, "\n")
}
