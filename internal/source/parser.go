package source

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a MiniC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(StripIncludes(src))
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for p.cur().Kind != EOF {
		if err := p.parseTopLevel(prog); err != nil {
			return nil, err
		}
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errf(p.cur().Pos, "expected %q, found %s", k.String(), p.cur())
	}
	return p.advance(), nil
}

func isTypeKw(k Kind) bool {
	return k == KwInt || k == KwLong || k == KwChar || k == KwVoid
}

func baseOf(k Kind) BaseType {
	switch k {
	case KwInt:
		return Int
	case KwLong:
		return Long
	case KwChar:
		return Char
	}
	return Void
}

// parseQualifiers consumes any combination of const/reg/secret qualifiers.
func (p *Parser) parseQualifiers() (storage Storage, secret bool) {
	for {
		switch p.cur().Kind {
		case KwConst:
			p.advance()
		case KwReg:
			p.advance()
			storage = InReg
		case KwSecret:
			p.advance()
			secret = true
		default:
			return storage, secret
		}
	}
}

func (p *Parser) parseTopLevel(prog *Program) error {
	storage, secret := p.parseQualifiers()
	if !isTypeKw(p.cur().Kind) {
		return errf(p.cur().Pos, "expected type at top level, found %s", p.cur())
	}
	base := baseOf(p.advance().Kind)
	// "long int" / "unsigned"-free: allow a second int keyword after long.
	if base == Long && p.cur().Kind == KwInt {
		p.advance()
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	if p.cur().Kind == LParen {
		f, err := p.parseFuncRest(base, name)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, f)
		return nil
	}
	for {
		decl, err := p.parseVarRest(base, name, storage, secret)
		if err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, decl)
		if p.accept(Comma) {
			name, err = p.expect(IDENT)
			if err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err = p.expect(Semicolon)
	return err
}

// parseVarRest parses the declarator tail after `base name`.
func (p *Parser) parseVarRest(base BaseType, name Token, storage Storage, secret bool) (*VarDecl, error) {
	d := &VarDecl{Name: name.Text, Type: Type{Base: base}, Storage: storage, Secret: secret, Pos: name.Pos}
	if p.accept(LBracket) {
		sz, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		n, err := EvalConst(sz)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, errf(name.Pos, "array %q must have positive constant size", name.Text)
		}
		d.Type.IsArray = true
		d.Type.Len = int(n)
	}
	if p.accept(Assign) {
		if d.Type.IsArray {
			if _, err := p.expect(LBrace); err != nil {
				return nil, err
			}
			for !p.accept(RBrace) {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.InitArr = append(d.InitArr, e)
				if !p.accept(Comma) {
					if _, err := p.expect(RBrace); err != nil {
						return nil, err
					}
					break
				}
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
	}
	return d, nil
}

func (p *Parser) parseFuncRest(ret BaseType, name Token) (*FuncDecl, error) {
	f := &FuncDecl{Name: name.Text, Ret: ret, Pos: name.Pos}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if !p.accept(RParen) {
		if p.cur().Kind == KwVoid && p.peek().Kind == RParen {
			p.advance()
			p.advance()
		} else {
			for {
				storage, secret := p.parseQualifiers()
				if !isTypeKw(p.cur().Kind) {
					return nil, errf(p.cur().Pos, "expected parameter type, found %s", p.cur())
				}
				base := baseOf(p.advance().Kind)
				if base == Long && p.cur().Kind == KwInt {
					p.advance()
				}
				pn, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				f.Params = append(f.Params, &VarDecl{
					Name: pn.Text, Type: Type{Base: base},
					Storage: storage, Secret: secret, Pos: pn.Pos,
				})
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.accept(RBrace) {
		if p.cur().Kind == EOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// blockOf wraps a single statement in a block (so `if (c) x=1;` works).
func blockOf(s Stmt) *BlockStmt {
	if b, ok := s.(*BlockStmt); ok {
		return b
	}
	return &BlockStmt{Stmts: []Stmt{s}, Pos: s.StmtPos()}
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.parseBlock()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwBreak:
		p.advance()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case KwContinue:
		p.advance()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case KwReturn:
		p.advance()
		var x Expr
		if p.cur().Kind != Semicolon {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: t.Pos}, nil
	case KwFence:
		p.advance()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &FenceStmt{Pos: t.Pos}, nil
	case Semicolon:
		p.advance()
		return &BlockStmt{Pos: t.Pos}, nil
	}
	if t.Kind == KwConst || t.Kind == KwReg || t.Kind == KwSecret || isTypeKw(t.Kind) {
		return p.parseDeclStmt()
	}
	return p.parseSimpleStmtSemi()
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	storage, secret := p.parseQualifiers()
	if !isTypeKw(p.cur().Kind) {
		return nil, errf(p.cur().Pos, "expected type in declaration, found %s", p.cur())
	}
	base := baseOf(p.advance().Kind)
	if base == Long && p.cur().Kind == KwInt {
		p.advance()
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	first, err := p.parseVarRest(base, name, storage, secret)
	if err != nil {
		return nil, err
	}
	decls := []*VarDecl{first}
	for p.accept(Comma) {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d, err := p.parseVarRest(base, name, storage, secret)
		if err != nil {
			return nil, err
		}
		decls = append(decls, d)
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return &DeclStmt{Decl: decls[0], Pos: name.Pos}, nil
	}
	b := &BlockStmt{Pos: decls[0].Pos}
	for _, d := range decls {
		b.Stmts = append(b.Stmts, &DeclStmt{Decl: d, Pos: d.Pos})
	}
	return b, nil
}

// parseSimpleStmt parses an assignment or expression statement without the
// trailing semicolon (used by for-headers).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Assign:
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Pos: start}, nil
	case PlusAssign, MinusAssign:
		op := Plus
		if p.cur().Kind == MinusAssign {
			op = Minus
		}
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{
			LHS: lhs,
			RHS: &BinaryExpr{Op: op, L: lhs, R: rhs, Pos: start},
			Pos: start,
		}, nil
	case PlusPlus, MinusMinus:
		op := Plus
		if p.cur().Kind == MinusMinus {
			op = Minus
		}
		p.advance()
		return &AssignStmt{
			LHS: lhs,
			RHS: &BinaryExpr{Op: op, L: lhs, R: &NumberExpr{Val: 1, Pos: start}, Pos: start},
			Pos: start,
		}, nil
	}
	return &ExprStmt{X: lhs, Pos: start}, nil
}

func (p *Parser) parseSimpleStmtSemi() (Stmt, error) {
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.advance() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	thenStmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: blockOf(thenStmt), Pos: t.Pos}
	if p.accept(KwElse) {
		elseStmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = blockOf(elseStmt)
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.advance() // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: blockOf(body), Pos: t.Pos}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.advance() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: t.Pos}
	if !p.accept(Semicolon) {
		if p.cur().Kind == KwConst || p.cur().Kind == KwReg || p.cur().Kind == KwSecret || isTypeKw(p.cur().Kind) {
			d, err := p.parseDeclStmt() // consumes semicolon
			if err != nil {
				return nil, err
			}
			st.Init = d
		} else {
			s, err := p.parseSimpleStmtSemi()
			if err != nil {
				return nil, err
			}
			st.Init = s
		}
	}
	if !p.accept(Semicolon) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
	}
	if p.cur().Kind != RParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = blockOf(body)
	return st, nil
}

// Operator precedence (C-like, low to high):
//
//	||  &&  |  ^  &  == !=  < > <= >=  << >>  + -  * / %  unary
var precedence = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4,
	Amp:    5,
	EqEq:   6, NotEq: 6,
	Lt: 7, Gt: 7, Le: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := precedence[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		if op == AndAnd || op == OrOr {
			lhs = &CondExpr{Op: op, L: lhs, R: rhs, Pos: opTok.Pos}
		} else {
			lhs = &BinaryExpr{Op: op, L: lhs, R: rhs, Pos: opTok.Pos}
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Minus, Tilde, Not:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Kind, X: x, Pos: t.Pos}, nil
	case Plus:
		p.advance()
		return p.parseUnary()
	case LParen:
		// Either a cast like (long)x — ignored, MiniC is untyped at
		// expression level — or a parenthesized expression.
		if isTypeKw(p.peek().Kind) {
			p.advance()                // (
			p.advance()                // type
			if p.cur().Kind == KwInt { // "long int"
				p.advance()
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return p.parseUnary()
		}
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case NUMBER:
		p.advance()
		return &NumberExpr{Val: t.Val, Pos: t.Pos}, nil
	case IDENT:
		p.advance()
		switch p.cur().Kind {
		case LParen:
			p.advance()
			call := &CallExpr{Name: t.Text, Pos: t.Pos}
			if !p.accept(RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Comma) {
						break
					}
				}
				if _, err := p.expect(RParen); err != nil {
					return nil, err
				}
			}
			return call, nil
		case LBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{
				Arr:   &IdentExpr{Name: t.Text, Pos: t.Pos},
				Index: idx,
				Pos:   t.Pos,
			}, nil
		}
		return &IdentExpr{Name: t.Text, Pos: t.Pos}, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", t)
}
