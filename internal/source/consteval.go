package source

import "fmt"

// EvalConst evaluates a compile-time constant expression (no identifiers,
// calls, or array indexing allowed).
func EvalConst(e Expr) (int64, error) {
	return evalConstEnv(e, nil)
}

// evalConstEnv evaluates with an optional environment for named constants.
func evalConstEnv(e Expr, env map[string]int64) (int64, error) {
	switch x := e.(type) {
	case *NumberExpr:
		return x.Val, nil
	case *IdentExpr:
		if env != nil {
			if v, ok := env[x.Name]; ok {
				return v, nil
			}
		}
		return 0, errf(x.Pos, "%q is not a compile-time constant", x.Name)
	case *UnaryExpr:
		v, err := evalConstEnv(x.X, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case Minus:
			return -v, nil
		case Tilde:
			return ^v, nil
		case Not:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, errf(x.Pos, "unsupported constant unary operator %s", x.Op)
	case *BinaryExpr:
		l, err := evalConstEnv(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := evalConstEnv(x.R, env)
		if err != nil {
			return 0, err
		}
		v, err := EvalBinop(x.Op, l, r)
		if err != nil {
			return 0, errf(x.Pos, "%v", err)
		}
		return v, nil
	case *CondExpr:
		l, err := evalConstEnv(x.L, env)
		if err != nil {
			return 0, err
		}
		if x.Op == AndAnd {
			if l == 0 {
				return 0, nil
			}
			r, err := evalConstEnv(x.R, env)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		}
		if l != 0 {
			return 1, nil
		}
		r, err := evalConstEnv(x.R, env)
		if err != nil {
			return 0, err
		}
		return boolToInt(r != 0), nil
	}
	return 0, errf(e.ExprPos(), "expression is not a compile-time constant")
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// EvalBinop applies a binary operator to two concrete values with C-like
// semantics on int64. Division and modulo by zero are errors.
func EvalBinop(op Kind, l, r int64) (int64, error) {
	switch op {
	case Plus:
		return l + r, nil
	case Minus:
		return l - r, nil
	case Star:
		return l * r, nil
	case Slash:
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case Percent:
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return l % r, nil
	case Amp:
		return l & r, nil
	case Pipe:
		return l | r, nil
	case Caret:
		return l ^ r, nil
	case Shl:
		return l << (uint64(r) & 63), nil
	case Shr:
		return l >> (uint64(r) & 63), nil
	case Lt:
		return boolToInt(l < r), nil
	case Gt:
		return boolToInt(l > r), nil
	case Le:
		return boolToInt(l <= r), nil
	case Ge:
		return boolToInt(l >= r), nil
	case EqEq:
		return boolToInt(l == r), nil
	case NotEq:
		return boolToInt(l != r), nil
	}
	return 0, fmt.Errorf("unsupported binary operator %s", op)
}

// IsComparison reports whether op yields a boolean (0/1) result.
func IsComparison(op Kind) bool {
	switch op {
	case Lt, Gt, Le, Ge, EqEq, NotEq:
		return true
	}
	return false
}
