package source

import "fmt"

// Type describes a MiniC type. Only integer scalars and one-dimensional
// arrays of them exist.
type Type struct {
	Base    BaseType
	IsArray bool
	Len     int // elements, for arrays (resolved after const-eval)
}

// BaseType is a scalar base type.
type BaseType int

// Base types with their byte sizes.
const (
	Void BaseType = iota
	Char          // 1 byte
	Int           // 4 bytes
	Long          // 8 bytes
)

// Size returns the size of the base type in bytes.
func (b BaseType) Size() int {
	switch b {
	case Char:
		return 1
	case Int:
		return 4
	case Long:
		return 8
	}
	return 0
}

// String returns the C spelling of the base type.
func (b BaseType) String() string {
	switch b {
	case Void:
		return "void"
	case Char:
		return "char"
	case Int:
		return "int"
	case Long:
		return "long"
	}
	return "?"
}

// String returns the C-like spelling of the type.
func (t Type) String() string {
	if t.IsArray {
		return fmt.Sprintf("%s[%d]", t.Base, t.Len)
	}
	return t.Base.String()
}

// SizeBytes returns the total storage size of the type.
func (t Type) SizeBytes() int {
	if t.IsArray {
		return t.Base.Size() * t.Len
	}
	return t.Base.Size()
}

// Storage qualifies where a variable lives.
type Storage int

// Storage classes.
const (
	InMemory Storage = iota // default: participates in cache analysis
	InReg                   // `reg`: register-resident, no memory traffic
)

// VarDecl declares a scalar or array variable (global or local).
type VarDecl struct {
	Name    string
	Type    Type
	Storage Storage
	Secret  bool   // `secret` taint source
	Init    Expr   // scalar initializer, may be nil
	InitArr []Expr // array initializer elements, may be nil
	Pos     Pos
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Ret    BaseType
	Params []*VarDecl // scalars only
	Body   *BlockStmt
	Pos    Pos
}

// Program is a parsed MiniC translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *VarDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
	Pos  Pos
}

// AssignStmt is lhs = rhs (lhs is identifier or index expression).
type AssignStmt struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// ExprStmt evaluates an expression for its side effects (e.g. a call, or a
// bare load used by benchmarks to touch memory).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is if (Cond) Then else Else. Else may be nil.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt
	Pos  Pos
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// ForStmt is for (Init; Cond; Post) Body. Any of the three may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *BlockStmt
	Pos  Pos
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from the current function. X may be nil.
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

// FenceStmt is a `fence;` speculation barrier: architecturally a no-op, it
// stops speculative execution at this program point. The mitigation
// synthesizer inserts these; writing them by hand is also legal.
type FenceStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*FenceStmt) stmtNode()    {}

// StmtPos returns the statement's source position.
func (s *BlockStmt) StmtPos() Pos    { return s.Pos }
func (s *DeclStmt) StmtPos() Pos     { return s.Pos }
func (s *AssignStmt) StmtPos() Pos   { return s.Pos }
func (s *ExprStmt) StmtPos() Pos     { return s.Pos }
func (s *IfStmt) StmtPos() Pos       { return s.Pos }
func (s *WhileStmt) StmtPos() Pos    { return s.Pos }
func (s *ForStmt) StmtPos() Pos      { return s.Pos }
func (s *BreakStmt) StmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos   { return s.Pos }
func (s *FenceStmt) StmtPos() Pos    { return s.Pos }

// NumberExpr is an integer literal.
type NumberExpr struct {
	Val int64
	Pos Pos
}

// IdentExpr references a variable.
type IdentExpr struct {
	Name string
	Pos  Pos
}

// IndexExpr is Arr[Index].
type IndexExpr struct {
	Arr   *IdentExpr
	Index Expr
	Pos   Pos
}

// UnaryExpr applies a prefix operator: - ~ !.
type UnaryExpr struct {
	Op  Kind
	X   Expr
	Pos Pos
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   Kind
	L, R Expr
	Pos  Pos
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// CondExpr is the short-circuit form of && and || (kept distinct from
// BinaryExpr so lowering can branch).
type CondExpr struct {
	Op   Kind // AndAnd or OrOr
	L, R Expr
	Pos  Pos
}

func (*NumberExpr) exprNode() {}
func (*IdentExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*CondExpr) exprNode()   {}

// ExprPos returns the expression's source position.
func (e *NumberExpr) ExprPos() Pos { return e.Pos }
func (e *IdentExpr) ExprPos() Pos  { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }
func (e *CondExpr) ExprPos() Pos   { return e.Pos }
