package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/gen"
)

// balanced reports whether every brace in src closes at or above depth 0.
func balanced(src string) bool {
	depth := 0
	for _, l := range splitLines(src) {
		d, min := braceDelta(l)
		if depth+min < 0 {
			return false
		}
		depth += d
	}
	return depth == 0
}

// TestShrinkPreservesKeep: whatever Shrink returns must satisfy keep, and
// every candidate it proposed along the way must have been brace-balanced.
func TestShrinkPreservesKeep(t *testing.T) {
	src := gen.Program(rand.New(rand.NewSource(2)), gen.Secrets())
	keep := func(s string) bool {
		if !balanced(s) {
			t.Errorf("Shrink proposed an unbalanced candidate:\n%s", s)
		}
		return strings.Contains(s, "sec")
	}
	out := Shrink(src, keep)
	if !keep(out) {
		t.Fatalf("Shrink returned a candidate keep rejects:\n%s", out)
	}
	if len(splitLines(out)) > len(splitLines(src)) {
		t.Fatalf("Shrink grew the program: %d -> %d lines", len(splitLines(src)), len(splitLines(out)))
	}
}

// TestShrinkReducesToCore: with keep = "compiles and still contains the
// secret access", a generated program must shrink to a handful of lines —
// the bound the acceptance criterion puts on reproducers.
func TestShrinkReducesToCore(t *testing.T) {
	compiles := func(s string) bool {
		_, err := bench.Compile(s, 0)
		return err == nil
	}
	for seed := int64(1); seed <= 5; seed++ {
		src := gen.Program(rand.New(rand.NewSource(seed)), gen.Secrets())
		keep := func(s string) bool {
			return compiles(s) && strings.Contains(s, "sec & ")
		}
		out := Shrink(src, keep)
		if !keep(out) {
			t.Fatalf("seed %d: shrunk program no longer satisfies keep:\n%s", seed, out)
		}
		if n := len(splitLines(out)); n > 10 {
			t.Errorf("seed %d: shrunk to %d lines, want <= 10:\n%s", seed, n, out)
		}
	}
}

// TestShrinkIrreducible: when nothing can be removed, the input comes back
// unchanged (modulo the trailing newline Shrink normalizes).
func TestShrinkIrreducible(t *testing.T) {
	src := "int g0 = 1;\nint main(int inp) {\nreturn g0;\n}\n"
	out := Shrink(src, func(s string) bool { return s == src })
	if out != src {
		t.Fatalf("irreducible program changed:\n%s", out)
	}
}

// TestShrinkFlattensBlocks: a marker buried three blocks deep surfaces with
// the wrappers removed.
func TestShrinkFlattensBlocks(t *testing.T) {
	src := "int g0 = 0;\nint main(int inp) {\nif (inp > 0) {\nfor (int i = 0; i < 3; i++) {\nif (g0 == 0) {\ng0 = 7;\n}\n}\n}\nreturn g0;\n}\n"
	compiles := func(s string) bool {
		_, err := bench.Compile(s, 0)
		return err == nil
	}
	out := Shrink(src, func(s string) bool {
		return compiles(s) && strings.Contains(s, "g0 = 7;")
	})
	for _, gone := range []string{"if", "for"} {
		if strings.Contains(out, gone) {
			t.Errorf("wrapper %q survived shrinking:\n%s", gone, out)
		}
	}
	if !strings.Contains(out, "g0 = 7;") {
		t.Fatalf("marker lost:\n%s", out)
	}
}
