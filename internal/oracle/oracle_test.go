package oracle

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specabsint/internal/gen"
	"specabsint/internal/runner"
)

// testConfig picks the sweep breadth by instrumentation: the full Default
// sweep normally, the cut-down Quick sweep under -race or -short.
func testConfig() Config {
	if raceDetectorOn || testing.Short() {
		return Quick()
	}
	return Default()
}

// TestOracleOnGeneratedPrograms is the oracle's own soundness test: on
// known-good builds every property must hold for every generated program, in
// both the default and the secret-carrying distributions.
func TestOracleOnGeneratedPrograms(t *testing.T) {
	n := int64(25)
	if raceDetectorOn || testing.Short() {
		n = 6
	}
	pool := runner.New(0)
	for _, tc := range []struct {
		name string
		cfg  gen.Config
	}{
		{"default", gen.Default()},
		{"secret", gen.Secrets()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= n; seed++ {
				src := gen.Program(rand.New(rand.NewSource(seed)), tc.cfg)
				cfg := testConfig()
				cfg.Pool = pool
				res, err := Check(src, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Analyses == 0 || res.Traces == 0 {
					t.Fatalf("seed %d: sweep ran %d analyses, %d traces", seed, res.Analyses, res.Traces)
				}
				for _, v := range res.Violations {
					t.Errorf("seed %d: %s", seed, v)
				}
				if res.Failed() {
					t.Fatalf("seed %d refuted on program:\n%s", seed, src)
				}
			}
		})
	}
}

// TestFuzzCorpusReplay replays every checked-in reproducer under the full
// sweep — with the worklist-vs-WTO scheduler and compiled-vs-interp exec
// cross-checks on, so reproducers caught by specfuzz -scheduler=both or
// -exec=both stay caught. Failures found by cmd/specfuzz land in
// testdata/fuzz-corpus and are re-verified here forever.
func TestFuzzCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz-corpus", "*.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected at least the 3 seed corpus programs, found %d", len(files))
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.CheckSchedulers = true
			cfg.CheckExec = true
			res, err := Check(string(src), cfg)
			if err != nil {
				t.Fatalf("corpus program no longer compiles: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestSchedulerCheckExtendsSweep guards against the scheduler cross-check
// silently becoming vacuous: enabling CheckSchedulers must add exactly the
// two worklist arms (dense and set-partitioned) to the analysis sweep, and
// they must agree with the WTO reference on a loopy corpus program.
func TestSchedulerCheckExtendsSweep(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "fuzz-corpus", "loops.c"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Check(string(src), Quick())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	cfg.CheckSchedulers = true
	res, err := Check(string(src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyses != base.Analyses+2 {
		t.Fatalf("CheckSchedulers ran %d analyses, want %d (base %d + 2 worklist arms)",
			res.Analyses, base.Analyses+2, base.Analyses)
	}
	if res.Failed() {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
}

// TestExecCheckExtendsSweep guards against the exec cross-check silently
// becoming vacuous: enabling CheckExec must add exactly the two interpreter
// arms (dense and set-partitioned) to the analysis sweep plus the two
// simulator trace replays, and they must agree with the compiled reference
// on a loopy corpus program.
func TestExecCheckExtendsSweep(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "fuzz-corpus", "loops.c"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Check(string(src), Quick())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	cfg.CheckExec = true
	res, err := Check(string(src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyses != base.Analyses+2 {
		t.Fatalf("CheckExec ran %d analyses, want %d (base %d + 2 interp arms)",
			res.Analyses, base.Analyses+2, base.Analyses)
	}
	if res.Traces != base.Traces+2 {
		t.Fatalf("CheckExec ran %d traces, want %d (base %d + 2 exec-sim replays)",
			res.Traces, base.Traces+2, base.Traces)
	}
	if res.Failed() {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
}

// TestSecretCorpusExercisesLeakProperty guards against the leak-completeness
// check silently becoming vacuous: the secret-carrying corpus programs must
// actually reach it (secret scalars present, no secret-tainted branches).
func TestSecretCorpusExercisesLeakProperty(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "fuzz-corpus", "spectre-v1.c"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	res, err := Check(string(src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
	// The leak property runs one pair of traces per secret pair per combo on
	// top of the soundness traces; Quick has 4 combos and 1 pair, so at least
	// 8 extra traces must have run.
	soundness := 4 * (len(cfg.Predictors) + 1) * cfg.InputVectors
	if res.Traces < soundness+8 {
		t.Fatalf("leak-completeness traces missing: %d total traces, soundness accounts for %d", res.Traces, soundness)
	}
}

func TestCheckRejectsUncompilableProgram(t *testing.T) {
	if _, err := Check("int main( {", Quick()); err == nil {
		t.Fatal("expected a compile error")
	}
	if _, err := Check("int g0 = 1;\nint main(int inp) {\nreturn undeclared;\n}\n", Quick()); err == nil {
		t.Fatal("expected an undeclared-identifier error")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Property: MustHit, Config: "cfg", InstrID: 7, Line: 3, Detail: "missed"}
	s := v.String()
	for _, want := range []string{"must-hit", "line 3", "instr 7", "missed", "cfg"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
