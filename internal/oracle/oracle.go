// Package oracle is the differential soundness oracle: it checks the
// speculative abstract interpretation (internal/core, internal/sidechannel)
// against ground truth from the concrete speculative CPU simulator
// (internal/machine). The paper's central claim — the abstract cache states
// over-approximate every concrete speculative trace (§5, §6.3) — becomes an
// executable property here, plus the completeness and metamorphic relations
// that symbolic-execution tools in the same space (SpecuSym, KLEESpectre)
// validate their cache models with.
//
// For one MiniC program, Check verifies:
//
//   - must-hit / must-miss soundness: an access the analysis classifies
//     always-hit (always-miss) hits (misses) on every concrete trace —
//     speculative wrong-path lanes included — across cache geometries,
//     speculation depths, merge strategies, branch predictors, and concrete
//     input vectors;
//   - coverage: every concretely executed access is classified, and every
//     speculatively executed access is lane-analyzed;
//   - leak-detection completeness: when two traces differing only in
//     secret-tagged inputs disagree on the cache behaviour of a
//     secret-indexed access, the side-channel report must name that access
//     (valid for programs whose secrets never reach a branch, which
//     internal/gen guarantees);
//   - metamorphic window monotonicity: a larger speculation window reaches
//     a superset of lane-analyzed instructions and reports a superset of
//     Spectre gadgets;
//   - metamorphic unroll monotonicity: deeper loop unrolling never flips a
//     concretely executed line from always-hit to always-miss;
//   - parallel equivalence: SetParallelism 0/1/4/... produce byte-identical
//     classifications.
//
// Abstract analyses fan out through a runner.Pool (the PR-1 batch engine);
// concrete simulations run inline. Everything is deterministic in
// (source, Config), so a corpus file replays identically forever.
package oracle

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"specabsint/internal/bytecode"
	"specabsint/internal/cache"
	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/irverify"
	"specabsint/internal/layout"
	"specabsint/internal/lower"
	"specabsint/internal/machine"
	"specabsint/internal/passes"
	"specabsint/internal/runner"
	"specabsint/internal/source"
	"specabsint/internal/taint"
)

// Property names one oracle property.
type Property string

// Oracle properties.
const (
	// MustHit: classified always-hit but missed on a concrete trace.
	MustHit Property = "must-hit"
	// MustMiss: classified always-miss but hit on a concrete trace.
	MustMiss Property = "must-miss"
	// Coverage: a concretely executed access the analysis never classified
	// (architecturally or, for wrong-path execution, in any lane).
	Coverage Property = "coverage"
	// LeakCompleteness: traces differing only in secrets diverge at a
	// secret-indexed access the report does not name.
	LeakCompleteness Property = "leak-completeness"
	// WindowMonotone: a larger speculation window lost a lane-analyzed
	// instruction or a reported Spectre gadget.
	WindowMonotone Property = "window-monotonicity"
	// UnrollMonotone: deeper unrolling flipped an executed line from
	// always-hit to always-miss.
	UnrollMonotone Property = "unroll-monotonicity"
	// ParallelEquivalence: SetParallelism changed a classification.
	ParallelEquivalence Property = "parallel-equivalence"
	// SchedulerEquivalence: the fixpoint scheduler (WTO vs worklist) changed
	// a classification.
	SchedulerEquivalence Property = "scheduler-equivalence"
	// ExecEquivalence: the execution engine (compiled vs interp) changed a
	// classification or a concrete simulator trace.
	ExecEquivalence Property = "exec-equivalence"
	// Crash: an analysis or simulation failed outright (panic or error).
	Crash Property = "crash"
)

// Violation is one refuted property instance.
type Violation struct {
	Property Property
	// Config labels the analysis/simulation configuration that refuted it.
	Config string
	// InstrID / Line locate the offending access where applicable.
	InstrID int
	Line    int
	Detail  string
}

// String renders the violation for reports.
func (v Violation) String() string {
	loc := ""
	if v.Line > 0 {
		loc = fmt.Sprintf(" line %d (instr %d)", v.Line, v.InstrID)
	}
	return fmt.Sprintf("[%s]%s %s (%s)", v.Property, loc, v.Detail, v.Config)
}

// Config tunes the oracle sweep. The zero value is not useful; start from
// Default.
type Config struct {
	// Caches, Depths, Strategies span the analysis configurations checked:
	// the sweep runs every (cache, depth) pair, cycling through the
	// strategies so each is exercised against each geometry family.
	Caches     []layout.CacheConfig
	Depths     []int
	Strategies []core.Strategy
	// Predictors names the simulator predictors driven against every
	// analysis: "taken", "nottaken", "2bit", "gshare", "adversarial". A
	// forced-mispredict run (maximal wrong-path pollution) is always added.
	Predictors []string
	// InputNames are the scalars varied across concrete input vectors
	// (unknown-input cells: main parameters and secret/uninitialized
	// scalars). Names absent from a program are ignored; secret scalars are
	// always included.
	InputNames []string
	// InputVectors is the number of concrete input vectors per analysis
	// configuration (the first is all-zeros).
	InputVectors int
	// SecretPairs are (s1, s2) secret assignments compared by the
	// leak-completeness property.
	SecretPairs [][2]int64
	// Parallelism is the SetParallelism equivalence sweep (always compared
	// against the dense engine, 0).
	Parallelism []int
	// CheckSchedulers additionally runs the analysis under the worklist
	// scheduler — dense and set-partitioned — and asserts classifications are
	// byte-identical to the default (WTO) scheduler's. Off by default: the
	// property is also covered by the top-level scheduler-equivalence suite;
	// turn it on for fuzzing (specfuzz -scheduler=both) and corpus replay.
	CheckSchedulers bool
	// CheckExec additionally runs the analysis under the tree-walking
	// interpreter — dense and set-partitioned — and asserts classifications
	// are byte-identical to the default (compiled) engine's, then replays
	// one forced-mispredict concrete simulation under both machine cores
	// and asserts the traces and counters match exactly. Off by default:
	// the property is also covered by the top-level exec-equivalence suite;
	// turn it on for fuzzing (specfuzz -exec=both) and corpus replay.
	CheckExec bool
	// WindowPair is the (small, large) speculation-depth pair of the window
	// monotonicity property.
	WindowPair [2]int
	// SmallUnroll is the reduced MaxUnroll compared against the lowering
	// default by the unroll monotonicity property.
	SmallUnroll int
	// MaxSteps bounds each concrete simulation.
	MaxSteps int64
	// Seed derives the random input vectors (deterministically).
	Seed int64
	// MaxViolations caps collection per program (0 = 20).
	MaxViolations int
	// DisablePasses skips the analysis-preserving pass pipeline
	// (internal/passes) after lowering. The zero value runs it, matching the
	// production compile path: the oracle then certifies soundness of
	// analysis over exactly the programs users analyze. Disabling it checks
	// the raw lowered IR instead.
	DisablePasses bool
	// Pool runs the abstract analyses; nil creates a private pool.
	Pool *runner.Pool
}

// Default is the standard oracle sweep: three cache geometries × three
// depths with the merge strategies cycled across them, three trained
// predictors plus forced misprediction, three input vectors, and the
// metamorphic and parallel-equivalence relations.
func Default() Config {
	return Config{
		Caches: []layout.CacheConfig{
			{LineSize: 64, NumSets: 1, Assoc: 4},
			{LineSize: 64, NumSets: 2, Assoc: 2},
			{LineSize: 32, NumSets: 4, Assoc: 2},
		},
		Depths:       []int{0, 12, 60},
		Strategies:   []core.Strategy{core.StrategyJustInTime, core.StrategyMergeAtRollback, core.StrategyPerRollbackBlock},
		Predictors:   []string{"2bit", "gshare", "adversarial"},
		InputNames:   []string{"inp"},
		InputVectors: 3,
		SecretPairs:  [][2]int64{{0, 15}, {3, 12}, {7, 8}},
		Parallelism:  []int{1, 4},
		WindowPair:   [2]int{4, 40},
		SmallUnroll:  1,
		MaxSteps:     2_000_000,
		Seed:         1,
	}
}

// Quick is a cut-down sweep for race-instrumented or short test runs: one
// cache per family, two depths, one trained predictor.
func Quick() Config {
	c := Default()
	c.Caches = c.Caches[:2]
	c.Depths = []int{0, 20}
	c.Predictors = []string{"adversarial"}
	c.InputVectors = 2
	c.SecretPairs = c.SecretPairs[:1]
	c.Parallelism = []int{2}
	return c
}

// Result is a completed oracle run over one program.
type Result struct {
	// Violations lists every refuted property instance (possibly capped at
	// Config.MaxViolations).
	Violations []Violation
	// Analyses and Traces count the abstract analyses and concrete
	// simulations performed.
	Analyses int
	Traces   int
}

// Failed reports whether any property was refuted.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Check runs the full oracle sweep on one MiniC program. The returned error
// reports front-end failures (the program does not compile) and pool
// plumbing failures only; analysis crashes and refuted properties are
// Violations in the Result.
func Check(src string, cfg Config) (*Result, error) {
	return CheckContext(context.Background(), src, cfg)
}

// checker carries one program's sweep.
type checker struct {
	cfg  Config
	prog *ir.Program
	tnt  *taint.Result
	res  *Result
}

// CheckContext is Check with cancellation, threaded through the analysis
// pool into every fixpoint loop.
func CheckContext(ctx context.Context, src string, cfg Config) (*Result, error) {
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = 20
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 2_000_000
	}
	ast, err := source.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("oracle: compile: %w", err)
	}
	prog, err := lower.Lower(ast, lower.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("oracle: lower: %w", err)
	}
	if !cfg.DisablePasses {
		// passes.Run structurally re-verifies its output, so a pipeline bug
		// surfaces here as a positioned diagnostic rather than as a bogus
		// soundness violation downstream.
		if _, err := passes.Run(prog, passes.Default()); err != nil {
			return nil, fmt.Errorf("oracle: %w", err)
		}
	} else if err := irverify.Verify(prog); err != nil {
		// Lowering verifies its own output; re-check here so the oracle
		// rejects structurally broken IR however it was produced.
		return nil, fmt.Errorf("oracle: %w", err)
	}
	pool := cfg.Pool
	if pool == nil {
		pool = runner.New(0)
	}

	c := &checker{cfg: cfg, prog: prog, tnt: taint.Analyze(prog), res: &Result{}}

	// One batch carries every abstract analysis of the sweep: the
	// (cache × depth) soundness combos, the window-monotonicity pair, the
	// parallelism sweep, and the unroll pair (Source-keyed so the pool's
	// compile cache provides the re-lowered programs).
	combos := c.combos()
	jobs := make([]runner.Job, 0, len(combos)+2+len(cfg.Parallelism)+2+2)
	for _, cb := range combos {
		jobs = append(jobs, runner.Job{Name: cb.label, Prog: prog, Opts: cb.opts, Mode: runner.ModeSideChannel})
	}
	windowBase := len(jobs)
	for _, d := range []int{cfg.WindowPair[0], cfg.WindowPair[1]} {
		opts := c.baseOpts()
		opts.DepthMiss, opts.DepthHit = d, d
		jobs = append(jobs, runner.Job{Name: fmt.Sprintf("window-d%d", d), Prog: prog, Opts: opts, Mode: runner.ModeSideChannel})
	}
	parBase := len(jobs)
	for _, p := range append([]int{0}, cfg.Parallelism...) {
		opts := c.baseOpts()
		opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 4, Assoc: 2}
		opts.DepthMiss, opts.DepthHit = 30, 30
		opts.SetParallelism = p
		jobs = append(jobs, runner.Job{Name: fmt.Sprintf("parallel-%d", p), Prog: prog, Opts: opts, Mode: runner.ModeSideChannel})
	}
	schedBase := len(jobs)
	if cfg.CheckSchedulers {
		// The worklist arms reuse the parallel sweep's base configuration, so
		// the dense default-scheduler job at parBase doubles as the reference:
		// one dense worklist run and one set-partitioned worklist run.
		for _, p := range []int{0, 4} {
			opts := c.baseOpts()
			opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 4, Assoc: 2}
			opts.DepthMiss, opts.DepthHit = 30, 30
			opts.SetParallelism = p
			opts.Scheduler = core.SchedulerWorklist
			jobs = append(jobs, runner.Job{Name: fmt.Sprintf("sched-worklist-p%d", p), Prog: prog, Opts: opts, Mode: runner.ModeSideChannel})
		}
	}
	execBase := len(jobs)
	if cfg.CheckExec {
		// The interp arms mirror the scheduler arms: the dense compiled job
		// at parBase is the reference, compared against one dense and one
		// set-partitioned interpreter run.
		for _, p := range []int{0, 4} {
			opts := c.baseOpts()
			opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 4, Assoc: 2}
			opts.DepthMiss, opts.DepthHit = 30, 30
			opts.SetParallelism = p
			opts.Exec = bytecode.ExecInterp
			jobs = append(jobs, runner.Job{Name: fmt.Sprintf("exec-interp-p%d", p), Prog: prog, Opts: opts, Mode: runner.ModeSideChannel})
		}
	}
	unrollBase := len(jobs)
	if cfg.SmallUnroll > 0 {
		// The unroll pair runs at speculation depth 0: with no wrong path,
		// concrete traces are identical across unroll levels, which is what
		// makes the cross-unroll relation sound (see checkUnrollMonotone).
		for _, u := range []int{cfg.SmallUnroll, lower.DefaultOptions().MaxUnroll} {
			opts := c.baseOpts()
			opts.DepthMiss, opts.DepthHit = 0, 0
			jobs = append(jobs, runner.Job{Name: fmt.Sprintf("unroll-%d", u), Source: src, MaxUnroll: u,
				Passes: !cfg.DisablePasses, Opts: opts, Mode: runner.ModeSideChannel})
		}
	}

	results := pool.RunAll(ctx, jobs)
	c.res.Analyses = len(results)
	for _, r := range results {
		if r.Err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			c.violate(Violation{Property: Crash, Config: r.Name, Detail: fmt.Sprintf("analysis failed: %v", r.Err)})
		}
	}
	if c.res.Failed() { // analyses crashed; nothing sound to compare against
		return c.res, nil
	}

	// Property sweep. Soundness and leak completeness per combo; the
	// metamorphic and equivalence properties on their dedicated jobs.
	for i, cb := range combos {
		c.checkSoundness(results[i].Leaks.Analysis, cb)
		c.checkLeakCompleteness(results[i].Leaks, cb)
	}
	c.checkWindowMonotone(results[windowBase].Leaks, results[windowBase+1].Leaks)
	for i := range cfg.Parallelism {
		c.checkParallelEquivalence(results[parBase].Leaks.Analysis, results[parBase+1+i].Leaks.Analysis, jobs[parBase+1+i].Name)
	}
	if cfg.CheckSchedulers {
		for i := schedBase; i < execBase; i++ {
			c.checkSchedulerEquivalence(results[parBase].Leaks.Analysis, results[i].Leaks.Analysis, jobs[i].Name)
		}
	}
	if cfg.CheckExec {
		for i := execBase; i < unrollBase; i++ {
			c.checkExecEquivalence(results[parBase].Leaks.Analysis, results[i].Leaks.Analysis, jobs[i].Name)
		}
		c.checkExecTraces()
	}
	if cfg.SmallUnroll > 0 {
		c.checkUnrollMonotone(results[unrollBase], results[unrollBase+1])
	}
	return c.res, nil
}

// combo is one (cache, depth, strategy) analysis configuration.
type combo struct {
	opts  core.Options
	label string
}

func (c *checker) baseOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Cache = c.cfg.Caches[0]
	return opts
}

// combos builds the soundness sweep: every (cache, depth) pair with the
// strategies cycled across pairs, alternating the refined join.
func (c *checker) combos() []combo {
	var out []combo
	i := 0
	for _, cc := range c.cfg.Caches {
		for _, d := range c.cfg.Depths {
			opts := core.DefaultOptions()
			opts.Cache = cc
			opts.DepthMiss, opts.DepthHit = d, d
			opts.Strategy = c.cfg.Strategies[i%len(c.cfg.Strategies)]
			opts.RefinedJoin = i%2 == 0
			out = append(out, combo{
				opts:  opts,
				label: fmt.Sprintf("cache=%dx%dw%d depth=%d strat=%v", cc.NumSets, cc.Assoc, cc.LineSize, d, opts.Strategy),
			})
			i++
		}
	}
	return out
}

func (c *checker) violate(v Violation) {
	if len(c.res.Violations) < c.cfg.MaxViolations {
		c.res.Violations = append(c.res.Violations, v)
	}
}

func newPredictor(name string) machine.Predictor {
	switch name {
	case "taken":
		return machine.AlwaysTaken{}
	case "nottaken":
		return machine.NeverTaken{}
	case "gshare":
		return machine.NewGShare(8)
	case "adversarial":
		return machine.NewAdversarial()
	default:
		return machine.NewTwoBit()
	}
}

// inputSymbols resolves the scalars varied across input vectors: the
// configured input names that exist as uninitialized memory scalars, plus
// every secret scalar.
func (c *checker) inputSymbols() []string {
	var names []string
	seen := map[string]bool{}
	add := func(s *ir.Symbol) {
		if s != nil && s.Len == 1 && len(s.Init) == 0 && !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	for _, n := range c.cfg.InputNames {
		add(c.prog.SymbolByName(n))
	}
	for _, s := range c.prog.Symbols {
		if s.Secret {
			add(s)
		}
	}
	sort.Strings(names)
	return names
}

// vectors builds the concrete input vectors: all-zeros first, then random
// assignments drawn deterministically from the oracle seed.
func (c *checker) vectors() []map[string]int64 {
	names := c.inputSymbols()
	out := []map[string]int64{nil}
	if len(names) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	for len(out) < c.cfg.InputVectors {
		v := make(map[string]int64, len(names))
		for _, n := range names {
			v[n] = int64(rng.Intn(64) - 8)
		}
		out = append(out, v)
	}
	return out
}

// checkSoundness replays the program concretely under every predictor and
// input vector and asserts the analysis verdicts over-approximate the
// observed hits and misses, on architectural and wrong-path accesses alike.
func (c *checker) checkSoundness(res *core.Result, cb combo) {
	vectors := c.vectors()
	for _, pname := range c.cfg.Predictors {
		for vi, vec := range vectors {
			simCfg := machine.Config{
				Cache:        cb.opts.Cache,
				Predictor:    newPredictor(pname),
				DepthMiss:    cb.opts.DepthMiss,
				DepthHit:     cb.opts.DepthHit,
				WrongPathOOB: true,
				MaxSteps:     c.cfg.MaxSteps,
				Inputs:       vec,
			}
			c.simCheck(res, simCfg, fmt.Sprintf("%s pred=%s vec=%d", cb.label, pname, vi))
		}
	}
	for vi, vec := range vectors {
		simCfg := machine.Config{
			Cache:           cb.opts.Cache,
			ForceMispredict: true,
			DepthMiss:       cb.opts.DepthMiss,
			DepthHit:        cb.opts.DepthHit,
			WrongPathOOB:    true,
			MaxSteps:        c.cfg.MaxSteps,
			Inputs:          vec,
		}
		c.simCheck(res, simCfg, fmt.Sprintf("%s forced vec=%d", cb.label, vi))
	}
}

// simCheck runs one concrete simulation and compares every observed access
// against the abstract verdicts.
func (c *checker) simCheck(res *core.Result, simCfg machine.Config, label string) {
	sim, err := machine.New(c.prog, simCfg)
	if err != nil {
		c.violate(Violation{Property: Crash, Config: label, Detail: fmt.Sprintf("simulator: %v", err)})
		return
	}
	c.res.Traces++
	lineOf := func(id int) int {
		if a, ok := res.Access[id]; ok {
			return a.Instr.Line
		}
		return 0
	}
	sim.OnAccess = func(r machine.AccessRecord) {
		if len(c.res.Violations) >= c.cfg.MaxViolations {
			return
		}
		if r.Speculative {
			cls, ok := res.SpecAccess[r.InstrID]
			if !ok {
				c.violate(Violation{Property: Coverage, Config: label, InstrID: r.InstrID, Line: lineOf(r.InstrID),
					Detail: "executed speculatively but never lane-analyzed"})
				return
			}
			if cls == cache.AlwaysHit && !r.Hit {
				c.violate(Violation{Property: MustHit, Config: label, InstrID: r.InstrID, Line: lineOf(r.InstrID),
					Detail: "lane-classified always-hit but missed speculatively"})
			}
			if cls == cache.AlwaysMiss && r.Hit {
				c.violate(Violation{Property: MustMiss, Config: label, InstrID: r.InstrID, Line: lineOf(r.InstrID),
					Detail: "lane-classified always-miss but hit speculatively"})
			}
			return
		}
		cls, ok := res.ClassOf(r.InstrID)
		if !ok {
			c.violate(Violation{Property: Coverage, Config: label, InstrID: r.InstrID,
				Detail: "executed architecturally but not classified"})
			return
		}
		if cls == cache.AlwaysHit && !r.Hit {
			c.violate(Violation{Property: MustHit, Config: label, InstrID: r.InstrID, Line: lineOf(r.InstrID),
				Detail: "classified always-hit but missed"})
		}
		if cls == cache.AlwaysMiss && r.Hit {
			c.violate(Violation{Property: MustMiss, Config: label, InstrID: r.InstrID, Line: lineOf(r.InstrID),
				Detail: "classified always-miss but hit"})
		}
	}
	if err := sim.Run(); err != nil {
		c.violate(Violation{Property: Crash, Config: label, Detail: fmt.Sprintf("simulation failed: %v", err)})
	}
}
