// Nested bounded loops around masked stores, a guarded unmasked load, and
// secret-indexed accesses in both directions (load into the write-only sink,
// store into the dedicated secarr) — the internal/gen secret-mode shape.
int g0 = 3;
int g1 = -5;
int arr0[16];
int arr1[8];
secret int sec;
int sink;
int secarr[16];
int main(int inp) {
	for (int i = 0; i < 5; i++) {
		arr0[g0 & 15] = (g1 + 2);
		if (g0 < inp) {
			g1 = arr1[g1 & 7];
			for (int j = 0; j < 3; j++) {
				g0 = g0 - 1;
			}
		}
		sink = arr0[sec & 15];
	}
	if (g1 >= 0 && g1 < 8) { g0 = arr1[g1]; }
	secarr[sec & 15] = g0;
	return g0;
}
