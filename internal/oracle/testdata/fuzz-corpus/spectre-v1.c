// Spectre v1 shape: a bounds-guarded unmasked access is architecturally
// safe, but a mis-speculated guard reads pub[] out of bounds. The trailing
// secret-indexed probe gives the leak-completeness property ground truth.
int pub[16];
int probe[64];
secret int sec;
int sink;
int main(int inp) {
	reg int x;
	x = 0;
	if (inp >= 0 && inp < 16) { x = pub[inp]; }
	sink = probe[sec & 63];
	return x;
}
