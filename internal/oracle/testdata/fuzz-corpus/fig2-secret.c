// Paper Fig. 2, scaled down, with a memory-resident secret index: preload
// ph, branch on an uncached byte, then probe ph[k & 255]. The probe's cache
// footprint depends on k, and the speculative analysis must not prove it
// always-hit (the non-speculative analysis famously does).
char ph[512];
char l1[64];
char l2[64];
char p;
secret int k;
int main() {
	reg int i;
	reg int tmp;
	for (i = 0; i < 512; i += 64) { tmp = ph[i]; }
	if (p == 0) { tmp = l1[0]; }
	else { tmp = l2[0]; }
	tmp = ph[k & 255];
	return tmp;
}
