//go:build !race

package oracle

const raceDetectorOn = false
