package oracle

import "strings"

// Shrink minimizes a failing MiniC program while keep(candidate) stays
// true. keep must return true only for candidates that still compile AND
// still exhibit the failure (cmd/specfuzz wraps the oracle accordingly);
// Shrink itself is syntax-light and only uses brace counting to avoid
// proposing obviously unbalanced candidates.
//
// The reduction loop interleaves three passes until a full round makes no
// progress:
//
//   - chunk removal (ddmin-style): delete brace-balanced line windows,
//     halving the window size down to single lines;
//   - flattening: delete an opening line (`if (...) {`, `for (...) {`)
//     together with its matching `}`, keeping the body;
//   - simplification: rewrite `} else {` to `}` + dropping the else arm is
//     covered by chunk removal, so no dedicated pass is needed.
//
// Shrink never returns a candidate keep rejected; if nothing can be
// removed, the input is returned unchanged.
func Shrink(src string, keep func(string) bool) string {
	lines := splitLines(src)
	for {
		reduced := false
		if next, ok := chunkPass(lines, keep); ok {
			lines = next
			reduced = true
		}
		if next, ok := flattenPass(lines, keep); ok {
			lines = next
			reduced = true
		}
		if !reduced {
			return join(lines)
		}
	}
}

func splitLines(src string) []string {
	raw := strings.Split(strings.TrimRight(src, "\n"), "\n")
	out := make([]string, 0, len(raw))
	for _, l := range raw {
		out = append(out, l)
	}
	return out
}

func join(lines []string) string { return strings.Join(lines, "\n") + "\n" }

// braceDelta returns the net brace change of a line and the lowest running
// depth reached inside it (both ignoring braces in comments/strings, which
// generated programs don't contain).
func braceDelta(line string) (delta, min int) {
	for _, r := range line {
		switch r {
		case '{':
			delta++
		case '}':
			delta--
		}
		if delta < min {
			min = delta
		}
	}
	return delta, min
}

// removable reports whether deleting lines[i:j] keeps the file
// brace-balanced: the removed region must be internally balanced and never
// dip below its entry depth (so it doesn't steal a closer from an enclosing
// block).
func removable(lines []string, i, j int) bool {
	delta, depth := 0, 0
	for _, l := range lines[i:j] {
		d, min := braceDelta(l)
		if depth+min < 0 {
			return false
		}
		depth += d
		delta += d
	}
	return delta == 0
}

// chunkPass tries to delete brace-balanced windows, largest first. It
// returns the first reduced variant found (the caller loops to a fixpoint).
func chunkPass(lines []string, keep func(string) bool) ([]string, bool) {
	for size := len(lines) / 2; size >= 1; size /= 2 {
		for i := 0; i+size <= len(lines); i++ {
			if !removable(lines, i, i+size) {
				continue
			}
			cand := append(append([]string{}, lines[:i]...), lines[i+size:]...)
			if keep(join(cand)) {
				return cand, true
			}
		}
	}
	return lines, false
}

// flattenPass tries to unwrap one block: delete a line that opens a block
// (net +1 brace) together with its matching bare `}` closer, keeping the
// body. This turns `if (c) { S }` into `S` and removes loop headers.
func flattenPass(lines []string, keep func(string) bool) ([]string, bool) {
	for i, l := range lines {
		if d, _ := braceDelta(l); d != 1 {
			continue
		}
		depth := 1
		for j := i + 1; j < len(lines); j++ {
			d, _ := braceDelta(lines[j])
			depth += d
			if depth == 0 {
				if strings.TrimSpace(lines[j]) != "}" {
					break // `} else {` closers need the whole construct gone
				}
				cand := make([]string, 0, len(lines)-2)
				cand = append(cand, lines[:i]...)
				cand = append(cand, lines[i+1:j]...)
				cand = append(cand, lines[j+1:]...)
				if keep(join(cand)) {
					return cand, true
				}
				break
			}
		}
	}
	return lines, false
}
