package oracle

import (
	"fmt"

	"specabsint/internal/bytecode"
	"specabsint/internal/cache"
	"specabsint/internal/core"
	"specabsint/internal/machine"
	"specabsint/internal/runner"
	"specabsint/internal/sidechannel"
)

// checkLeakCompleteness compares concrete traces that differ only in the
// secret-tagged inputs: when the cache behaviour of a secret-indexed access
// diverges between them, an attacker timing that access learns something
// about the secret, so the side-channel report must name it. The property
// holds unconditionally for programs whose secrets never reach a branch
// condition (internal/gen's secret mode guarantees this); programs with
// secret-dependent control flow are skipped — there the control-flow
// channel, reported separately, already covers the divergence.
func (c *checker) checkLeakCompleteness(rep *sidechannel.Report, cb combo) {
	var secrets []string
	for _, s := range c.prog.Symbols {
		if s.Secret && s.Len == 1 {
			secrets = append(secrets, s.Name)
		}
	}
	if len(secrets) == 0 || len(c.tnt.SecretBranches) > 0 {
		return
	}
	watch := map[int]bool{}
	for _, id := range c.tnt.SecretIndexed {
		watch[id] = true
	}
	if len(watch) == 0 {
		return
	}
	leaked := map[int]bool{}
	for _, l := range rep.Leaks {
		leaked[l.InstrID] = true
	}
	for pi, pair := range c.cfg.SecretPairs {
		label := fmt.Sprintf("%s secrets=%d/%d", cb.label, pair[0], pair[1])
		seqA, okA := c.traceSeq(cb, secrets, pair[0], watch, label)
		seqB, okB := c.traceSeq(cb, secrets, pair[1], watch, label)
		if !okA || !okB {
			return // the crash is already recorded
		}
		for id, sa := range seqA {
			if boolsEqual(sa, seqB[id]) || leaked[id] {
				continue
			}
			line := 0
			if a, ok := rep.Analysis.Access[id]; ok {
				line = a.Instr.Line
			}
			c.violate(Violation{
				Property: LeakCompleteness, Config: label, InstrID: id, Line: line,
				Detail: fmt.Sprintf("secret-indexed access diverges between secret assignments (pair %d) but is not reported as a leak", pi),
			})
		}
	}
}

// traceSeq replays the program with every secret set to val and returns the
// architectural hit/miss sequence of each watched instruction.
func (c *checker) traceSeq(cb combo, secrets []string, val int64, watch map[int]bool, label string) (map[int][]bool, bool) {
	inputs := map[string]int64{}
	for _, n := range secrets {
		inputs[n] = val
	}
	simCfg := machine.Config{
		Cache:           cb.opts.Cache,
		ForceMispredict: true,
		DepthMiss:       cb.opts.DepthMiss,
		DepthHit:        cb.opts.DepthHit,
		WrongPathOOB:    true,
		MaxSteps:        c.cfg.MaxSteps,
		Inputs:          inputs,
	}
	sim, err := machine.New(c.prog, simCfg)
	if err != nil {
		c.violate(Violation{Property: Crash, Config: label, Detail: fmt.Sprintf("simulator: %v", err)})
		return nil, false
	}
	c.res.Traces++
	seq := map[int][]bool{}
	sim.OnAccess = func(r machine.AccessRecord) {
		if !r.Speculative && watch[r.InstrID] {
			seq[r.InstrID] = append(seq[r.InstrID], r.Hit)
		}
	}
	if err := sim.Run(); err != nil {
		c.violate(Violation{Property: Crash, Config: label, Detail: fmt.Sprintf("simulation failed: %v", err)})
		return nil, false
	}
	return seq, true
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkWindowMonotone asserts the metamorphic window relation: a larger
// speculation window explores a superset of wrong-path instructions, so no
// lane-analyzed instruction and no reported Spectre gadget may disappear
// when the window grows.
func (c *checker) checkWindowMonotone(small, large *sidechannel.Report) {
	label := fmt.Sprintf("window %d->%d", c.cfg.WindowPair[0], c.cfg.WindowPair[1])
	for id := range small.Analysis.SpecAccess {
		if _, ok := large.Analysis.SpecAccess[id]; !ok {
			c.violate(Violation{Property: WindowMonotone, Config: label, InstrID: id,
				Detail: "instruction lane-analyzed under the small window but not the large one"})
		}
	}
	largeGadgets := map[int]bool{}
	for _, l := range large.SpectreLeaks {
		largeGadgets[l.InstrID] = true
	}
	for _, l := range small.SpectreLeaks {
		if !largeGadgets[l.InstrID] {
			c.violate(Violation{Property: WindowMonotone, Config: label, InstrID: l.InstrID, Line: l.Line,
				Detail: "Spectre gadget reported under the small window disappeared under the large one"})
		}
	}
}

// checkParallelEquivalence asserts the set-partitioned engine is invisible:
// classifications under SetParallelism p must be byte-identical to the dense
// engine's.
func (c *checker) checkParallelEquivalence(dense, part *core.Result, label string) {
	if len(dense.Access) != len(part.Access) || len(dense.SpecAccess) != len(part.SpecAccess) {
		c.violate(Violation{Property: ParallelEquivalence, Config: label,
			Detail: fmt.Sprintf("classified %d/%d accesses, dense engine classified %d/%d",
				len(part.Access), len(part.SpecAccess), len(dense.Access), len(dense.SpecAccess))})
		return
	}
	for id, d := range dense.Access {
		p, ok := part.Access[id]
		if !ok || p.Class != d.Class {
			c.violate(Violation{Property: ParallelEquivalence, Config: label, InstrID: id, Line: d.Instr.Line,
				Detail: fmt.Sprintf("classified %v, dense engine classified %v", p.Class, d.Class)})
		}
	}
	for id, d := range dense.SpecAccess {
		if p, ok := part.SpecAccess[id]; !ok || p != d {
			c.violate(Violation{Property: ParallelEquivalence, Config: label, InstrID: id,
				Detail: fmt.Sprintf("lane-classified %v, dense engine lane-classified %v", p, d)})
		}
	}
}

// checkSchedulerEquivalence asserts the fixpoint scheduler is invisible:
// classifications under the worklist scheduler (dense or set-partitioned)
// must be byte-identical to the default WTO scheduler's. The engine earns
// this by construction — widening runs in a canonical schedule-independent
// phase, and the remaining iteration is monotone — and the oracle holds it
// to that claim on every fuzzed program.
func (c *checker) checkSchedulerEquivalence(wto, wl *core.Result, label string) {
	if len(wto.Access) != len(wl.Access) || len(wto.SpecAccess) != len(wl.SpecAccess) {
		c.violate(Violation{Property: SchedulerEquivalence, Config: label,
			Detail: fmt.Sprintf("classified %d/%d accesses, WTO scheduler classified %d/%d",
				len(wl.Access), len(wl.SpecAccess), len(wto.Access), len(wto.SpecAccess))})
		return
	}
	for id, d := range wto.Access {
		p, ok := wl.Access[id]
		if !ok || p.Class != d.Class {
			c.violate(Violation{Property: SchedulerEquivalence, Config: label, InstrID: id, Line: d.Instr.Line,
				Detail: fmt.Sprintf("classified %v, WTO scheduler classified %v", p.Class, d.Class)})
		}
	}
	for id, d := range wto.SpecAccess {
		if p, ok := wl.SpecAccess[id]; !ok || p != d {
			c.violate(Violation{Property: SchedulerEquivalence, Config: label, InstrID: id,
				Detail: fmt.Sprintf("lane-classified %v, WTO scheduler lane-classified %v", p, d)})
		}
	}
}

// checkExecEquivalence asserts the execution engine is invisible to the
// analysis: classifications under the tree-walking interpreter (dense or
// set-partitioned) must be byte-identical to the default compiled engine's.
// The bytecode earns this by construction — each block's compiled form
// replays the exact access/transfer sequence the tree walk performs — and
// the oracle holds it to that claim on every fuzzed program.
func (c *checker) checkExecEquivalence(compiled, interp *core.Result, label string) {
	if len(compiled.Access) != len(interp.Access) || len(compiled.SpecAccess) != len(interp.SpecAccess) {
		c.violate(Violation{Property: ExecEquivalence, Config: label,
			Detail: fmt.Sprintf("classified %d/%d accesses, compiled engine classified %d/%d",
				len(interp.Access), len(interp.SpecAccess), len(compiled.Access), len(compiled.SpecAccess))})
		return
	}
	for id, d := range compiled.Access {
		p, ok := interp.Access[id]
		if !ok || p.Class != d.Class {
			c.violate(Violation{Property: ExecEquivalence, Config: label, InstrID: id, Line: d.Instr.Line,
				Detail: fmt.Sprintf("classified %v, compiled engine classified %v", p.Class, d.Class)})
		}
	}
	for id, d := range compiled.SpecAccess {
		if p, ok := interp.SpecAccess[id]; !ok || p != d {
			c.violate(Violation{Property: ExecEquivalence, Config: label, InstrID: id,
				Detail: fmt.Sprintf("lane-classified %v, compiled engine lane-classified %v", p, d)})
		}
	}
}

// checkExecTraces asserts the simulator cores are indistinguishable: one
// forced-mispredict run (maximal wrong-path coverage, Spectre OOB reads
// enabled) must produce the identical access sequence and counters whether
// the fetch/execute step is the bytecode-compiled machine or the
// tree-walking interpreter.
func (c *checker) checkExecTraces() {
	const label = "exec-sim compiled-vs-interp"
	trace := func(mode bytecode.ExecMode) ([]machine.AccessRecord, machine.Stats, bool) {
		simCfg := machine.Config{
			Cache:           c.baseOpts().Cache,
			ForceMispredict: true,
			DepthMiss:       30,
			DepthHit:        30,
			WrongPathOOB:    true,
			MaxSteps:        c.cfg.MaxSteps,
			Exec:            mode,
		}
		sim, err := machine.New(c.prog, simCfg)
		if err != nil {
			c.violate(Violation{Property: Crash, Config: label, Detail: fmt.Sprintf("simulator: %v", err)})
			return nil, machine.Stats{}, false
		}
		c.res.Traces++
		var recs []machine.AccessRecord
		sim.OnAccess = func(r machine.AccessRecord) { recs = append(recs, r) }
		if err := sim.Run(); err != nil {
			c.violate(Violation{Property: Crash, Config: label, Detail: fmt.Sprintf("simulation failed: %v", err)})
			return nil, machine.Stats{}, false
		}
		return recs, sim.Stats, true
	}
	cRecs, cStats, okC := trace(bytecode.ExecCompiled)
	iRecs, iStats, okI := trace(bytecode.ExecInterp)
	if !okC || !okI {
		return // the crash is already recorded
	}
	if cStats != iStats {
		c.violate(Violation{Property: ExecEquivalence, Config: label,
			Detail: fmt.Sprintf("stats diverge: compiled %+v, interp %+v", cStats, iStats)})
	}
	if len(cRecs) != len(iRecs) {
		c.violate(Violation{Property: ExecEquivalence, Config: label,
			Detail: fmt.Sprintf("trace lengths diverge: compiled %d accesses, interp %d", len(cRecs), len(iRecs))})
		return
	}
	for i := range cRecs {
		if cRecs[i] != iRecs[i] {
			c.violate(Violation{Property: ExecEquivalence, Config: label, InstrID: cRecs[i].InstrID,
				Detail: fmt.Sprintf("trace diverges at access %d: compiled %+v, interp %+v", i, cRecs[i], iRecs[i])})
			return
		}
	}
}

// checkUnrollMonotone asserts the metamorphic unroll relation at speculation
// depth 0, where concrete traces are identical across unroll levels (no
// wrong path exists, and unrolling preserves architectural semantics):
//
//   - cross-IR soundness: a line proved always-hit under the reduced unroll
//     must hit on every concrete access of the fully-unrolled execution;
//   - no flip: a line proved always-hit under the reduced unroll must not
//     be proved always-miss (at an executed access) under the full unroll.
func (c *checker) checkUnrollMonotone(small, large runner.Result) {
	label := fmt.Sprintf("unroll %d->default", c.cfg.SmallUnroll)
	sres, lres := small.Leaks.Analysis, large.Leaks.Analysis

	// A line is must-hit when it has accesses and all of them are
	// always-hit; with inlining several instructions share a line, and one
	// concrete access instance corresponds to some instruction at the line.
	mustHitLine := map[int]bool{}
	for _, a := range sres.Access {
		l := a.Instr.Line
		if _, seen := mustHitLine[l]; !seen {
			mustHitLine[l] = true
		}
		if a.Class != cache.AlwaysHit {
			mustHitLine[l] = false
		}
	}
	lineOf := map[int]int{}
	missAt := map[int]bool{} // large-IR instrs classified always-miss
	for id, a := range lres.Access {
		lineOf[id] = a.Instr.Line
		missAt[id] = a.Class == cache.AlwaysMiss
	}

	simCfg := machine.Config{
		Cache:    c.baseOpts().Cache,
		MaxSteps: c.cfg.MaxSteps,
	}
	sim, err := machine.New(large.Prog, simCfg)
	if err != nil {
		c.violate(Violation{Property: Crash, Config: label, Detail: fmt.Sprintf("simulator: %v", err)})
		return
	}
	c.res.Traces++
	sim.OnAccess = func(r machine.AccessRecord) {
		if r.Speculative || len(c.res.Violations) >= c.cfg.MaxViolations {
			return
		}
		l := lineOf[r.InstrID]
		if !mustHitLine[l] {
			return
		}
		if !r.Hit {
			c.violate(Violation{Property: UnrollMonotone, Config: label, InstrID: r.InstrID, Line: l,
				Detail: fmt.Sprintf("line proved always-hit at MaxUnroll=%d but missed concretely under full unrolling", c.cfg.SmallUnroll)})
		}
		if missAt[r.InstrID] {
			c.violate(Violation{Property: UnrollMonotone, Config: label, InstrID: r.InstrID, Line: l,
				Detail: fmt.Sprintf("line proved always-hit at MaxUnroll=%d but always-miss under full unrolling", c.cfg.SmallUnroll)})
		}
	}
	if err := sim.Run(); err != nil {
		c.violate(Violation{Property: Crash, Config: label, Detail: fmt.Sprintf("simulation failed: %v", err)})
	}
}
