// Package mitigate turns the speculative side-channel analyzer into a
// fixer: it synthesizes a low-cost set of fence instructions that makes the
// analysis report zero speculation-induced leaks, then verifies the repaired
// program.
//
// The repair loop is classic analysis-guided search. Candidate fence
// placements are seeded from the analysis itself: a singleton site before
// the earliest wrong-path-reachable memory access of every block (the
// instructions whose speculative transfers pollute the cache state and whose
// lane verdicts transmit secrets), and one *pair* per unresolved branch —
// fences at the entries of both successors, cutting that branch's two
// speculation colors at their source (a single successor fence kills only
// one predicted direction, which often has zero gain on its own). A greedy
// set-cover over the leak -> candidate bipartite map picks candidates one at
// a time: each round re-analyzes the program with every remaining candidate
// added to the chosen set, takes the one eliminating the most remaining
// leaks, and breaks ties by the smaller WCET charge. A final reverse-order
// per-site pruning pass drops any individual fence whose removal keeps the
// achieved leak set, restoring minimality that grouped picks may overshoot.
//
// Soundness of the search rests on monotone leak removal: a fence only
// terminates speculative lanes (internal/core kills any lane crossing it,
// the concrete machine squashes wrong-path execution at it), so inserting
// one removes join contributions from the fixpoint system and every abstract
// state can only become more precise. Classifications move from Unknown
// toward AlwaysHit/AlwaysMiss, never the other way, so fencing can only
// shrink the leak set — greedy progress is never undone. Leaks that survive
// the full candidate set are not speculation-induced (they exist under the
// classic analysis too) and are reported as residual rather than papered
// over; no fence set can repair them.
package mitigate

import (
	"context"
	"fmt"
	"math"
	"sort"

	"specabsint/internal/core"
	"specabsint/internal/ir"
	"specabsint/internal/irverify"
	"specabsint/internal/machine"
	"specabsint/internal/sidechannel"
	"specabsint/internal/taint"
	"specabsint/internal/wcet"
)

// Options configures a synthesis run.
type Options struct {
	// Core is the analysis configuration the repair loop must satisfy;
	// Speculative is forced on (a fence synthesizer for the classic analysis
	// is meaningless).
	Core core.Options
	// Costs feeds the WCET estimates used for candidate tie-breaking and the
	// reported overhead.
	Costs wcet.CostModel
	// Verify runs the differential secret-pair trace check on the fenced
	// program (see Report.Verified).
	Verify bool
	// SecretPairs are the (s1, s2) secret assignments the differential check
	// compares, mirroring the fuzz oracle's defaults.
	SecretPairs [][2]int64
	// MaxSteps bounds each concrete verification replay.
	MaxSteps int64
}

// DefaultOptions mirrors the analyzer's and the fuzz oracle's defaults.
func DefaultOptions() Options {
	return Options{
		Core:        core.DefaultOptions(),
		Costs:       wcet.DefaultCosts(),
		Verify:      true,
		SecretPairs: [][2]int64{{0, 15}, {3, 12}, {7, 8}},
		MaxSteps:    2_000_000,
	}
}

// Fence describes one synthesized fence placement. Block/Index locate the
// insertion point in the *input* program: the fence sits immediately before
// the instruction at that index.
type Fence struct {
	Block ir.BlockID
	// Label is the block's label, for rendering.
	Label string
	// Index is the instruction index the fence precedes.
	Index int
	// Line is the source line of the protected instruction (0 for
	// synthesized instructions).
	Line int
	// Symbol names the protected access's variable, or "" when the fence
	// anchors to a non-memory instruction (a speculation-window entry).
	Symbol string
}

// String renders the placement for reports.
func (f Fence) String() string {
	at := fmt.Sprintf("%s+%d", f.Label, f.Index)
	if f.Symbol != "" {
		return fmt.Sprintf("fence at %s (line %d, before access to %s)", at, f.Line, f.Symbol)
	}
	return fmt.Sprintf("fence at %s (line %d)", at, f.Line)
}

// Report is the outcome of one synthesis run.
type Report struct {
	// Fences is the synthesized placement set, in insertion order (sorted by
	// block, then index).
	Fences []Fence
	// BaselineLeaks / BaselineGadgets count the input program's reported
	// cache timing leaks and Spectre transmission gadgets.
	BaselineLeaks   int
	BaselineGadgets int
	// ResidualLeaks / ResidualGadgets count what survives the fence set.
	// Nonzero residual leaks are not speculation-induced: they are reported
	// by the classic analysis too, and no fence can remove them.
	ResidualLeaks   int
	ResidualGadgets int
	// Candidates counts the seeded fence sites; Analyses the re-analysis
	// runs the search spent.
	Candidates int
	Analyses   int
	// BaselineWCET / MitigatedWCET are the architectural worst-case cycle
	// bounds (plus the pessimistic speculative charge), -1 when the CFG is
	// cyclic; WCETBounded reports whether both bounds exist.
	BaselineWCET  int64
	MitigatedWCET int64
	WCETBounded   bool
	// OverheadPercent is 100*(MitigatedWCET-BaselineWCET)/BaselineWCET,
	// rounded to two decimals; 0 when unbounded. Negative overhead is real:
	// killing speculation also removes wrong-path misses from the bound.
	OverheadPercent float64
	// Verified reports that the differential secret-pair check ran on the
	// fenced program and found no unreported secret-varying trace pair;
	// VerifySkipped that the check could not run (no secrets, or
	// secret-dependent control flow, or verification disabled). Traces
	// counts concrete replays.
	Verified      bool
	VerifySkipped bool
	Traces        int
	// Program is the fenced program (the input program itself when Fences is
	// empty). It passes internal/irverify.
	Program *ir.Program
}

// site is an insertion point in the input program.
type site struct {
	block ir.BlockID
	index int
}

// leakKey identifies a leak stably across re-analyses of differently-fenced
// programs, in the input program's instruction-id space.
type leakKey struct {
	gadget bool
	origID int
}

// Synthesize runs the repair loop on prog and returns the fence set, the
// fenced program, and the verification outcome. prog is not modified.
func Synthesize(ctx context.Context, prog *ir.Program, opts Options) (*Report, error) {
	opts.Core.Speculative = true
	opts.Core.Collector = nil
	if opts.MaxSteps == 0 {
		opts.MaxSteps = DefaultOptions().MaxSteps
	}

	rep := &Report{Program: prog}
	base, err := analyzeLeaks(ctx, prog, identityIDs(prog), opts)
	if err != nil {
		return nil, err
	}
	rep.Analyses++
	rep.BaselineLeaks, rep.BaselineGadgets = countKinds(base.leaks)
	rep.BaselineWCET = base.wcetBound

	candidates := candidateSites(prog, base.rep)
	rep.Candidates = len(candidates)

	chosen, remaining, analyses, err := greedyCover(ctx, prog, opts, candidates, base.leaks)
	if err != nil {
		return nil, err
	}
	rep.Analyses += analyses

	// Escalation: when no single candidate makes progress but leaks remain,
	// the pollution may flow from several speculation windows at once (each
	// fence alone has zero gain — common on cyclic CFGs, where every loop
	// branch spawns colors). Try the full candidate union; if it strictly
	// shrinks the leak set, accept it and let the pruning pass below cut it
	// back to a minimal subset.
	if len(remaining) > 0 {
		all := unionSites(chosen, candidates)
		if len(all) > len(chosen) {
			res, err := analyzeSites(ctx, prog, all, opts)
			if err != nil {
				return nil, err
			}
			rep.Analyses++
			if len(res.leaks) < len(remaining) {
				chosen, remaining = all, res.leaks
				sortSites(chosen)
			}
		}
	}

	// Reverse-order pruning: drop any fence whose removal keeps the achieved
	// leak set (only exercised when the set is minimal-redundant, e.g. an
	// early pick subsumed by later ones).
	if len(chosen) > 1 {
		for i := len(chosen) - 1; i >= 0; i-- {
			trial := append(append([]site(nil), chosen[:i]...), chosen[i+1:]...)
			res, err := analyzeSites(ctx, prog, trial, opts)
			if err != nil {
				return nil, err
			}
			rep.Analyses++
			if len(res.leaks) == len(remaining) {
				chosen = trial
			}
		}
	}

	final, err := analyzeSites(ctx, prog, chosen, opts)
	if err != nil {
		return nil, err
	}
	rep.Analyses++
	rep.ResidualLeaks, rep.ResidualGadgets = countKinds(final.leaks)
	rep.MitigatedWCET = final.wcetBound
	rep.WCETBounded = rep.BaselineWCET >= 0 && rep.MitigatedWCET >= 0
	if rep.WCETBounded && rep.BaselineWCET > 0 {
		raw := 100 * float64(rep.MitigatedWCET-rep.BaselineWCET) / float64(rep.BaselineWCET)
		rep.OverheadPercent = math.Round(raw*100) / 100
	}
	rep.Fences = describeSites(prog, chosen)
	if len(chosen) == 0 {
		rep.Program = prog
	} else {
		rep.Program = final.prog
	}

	if err := irverify.Verify(rep.Program); err != nil {
		return nil, fmt.Errorf("mitigate: fenced program fails verification: %w", err)
	}
	if opts.Verify {
		verified, traces, skipped, err := verifyDifferential(rep.Program, final.rep, opts)
		if err != nil {
			return nil, err
		}
		rep.Verified, rep.Traces, rep.VerifySkipped = verified, traces, skipped
	} else {
		rep.VerifySkipped = true
	}
	return rep, nil
}

// analysis bundles one re-analysis of a (possibly fenced) program.
type analysis struct {
	prog *ir.Program
	rep  *sidechannel.Report
	// leaks is the surviving leak set keyed in the input program's id space.
	leaks map[leakKey]bool
	// wcetBound is the architectural worst-case bound (-1 when cyclic).
	wcetBound int64
	// charge is the tie-break cost: the bound (when it exists) plus the
	// pessimistic speculative miss charge.
	charge int64
}

// analyzeSites builds the fenced program for the given sites and analyzes it.
func analyzeSites(ctx context.Context, prog *ir.Program, sites []site, opts Options) (*analysis, error) {
	fenced, origID := buildFenced(prog, sites)
	return analyzeLeaks(ctx, fenced, origID, opts)
}

// analyzeLeaks runs the side-channel analysis and maps the reported leaks
// back to the input program's instruction ids via origID.
func analyzeLeaks(ctx context.Context, prog *ir.Program, origID []int, opts Options) (*analysis, error) {
	rep, err := sidechannel.AnalyzeContext(ctx, prog, opts.Core)
	if err != nil {
		return nil, err
	}
	a := &analysis{prog: prog, rep: rep, leaks: map[leakKey]bool{}}
	for _, l := range rep.Leaks {
		a.leaks[leakKey{origID: origID[l.InstrID]}] = true
	}
	for _, l := range rep.SpectreLeaks {
		a.leaks[leakKey{gadget: true, origID: origID[l.InstrID]}] = true
	}
	est := wcet.New(rep.Analysis, opts.Costs)
	a.wcetBound = est.WorstCaseCycles
	a.charge = est.SpecExtraCycles
	if est.WorstCaseCycles >= 0 {
		a.charge += est.WorstCaseCycles
	}
	return a, nil
}

// candidate is one unit of the greedy search: one or more sites that are
// inserted together (a branch's two successor fences act as a pair).
type candidate struct {
	sites []site
}

// greedyCover picks candidates one per round: the one eliminating the most
// remaining leaks, ties broken by smaller WCET charge, then by candidate
// order. It stops when no candidate makes progress.
func greedyCover(ctx context.Context, prog *ir.Program, opts Options, candidates []candidate, baseLeaks map[leakKey]bool) (chosen []site, remaining map[leakKey]bool, analyses int, err error) {
	remaining = baseLeaks
	inChosen := map[site]bool{}
	union := func(cand candidate) []site {
		out := append([]site(nil), chosen...)
		for _, s := range cand.sites {
			if !inChosen[s] {
				out = append(out, s)
			}
		}
		return out
	}
	for len(remaining) > 0 {
		var best *analysis
		var bestSites []site
		bestGain := 0
		for _, cand := range candidates {
			trial := union(cand)
			if len(trial) == len(chosen) {
				continue // fully subsumed by earlier picks
			}
			res, err := analyzeSites(ctx, prog, trial, opts)
			if err != nil {
				return nil, nil, analyses, err
			}
			analyses++
			gain := len(remaining) - len(res.leaks)
			if gain > bestGain || (gain == bestGain && gain > 0 && res.charge < best.charge) {
				best, bestSites, bestGain = res, trial, gain
			}
		}
		if best == nil {
			break // residual leaks are not speculation-induced
		}
		chosen = bestSites
		for _, s := range chosen {
			inChosen[s] = true
		}
		remaining = best.leaks
	}
	sortSites(chosen)
	return chosen, remaining, analyses, nil
}

// candidateSites seeds the search from the analysis: a singleton candidate
// before the earliest wrong-path-reached memory access of every block
// (fencing there kills the lane before anything in the block pollutes or
// transmits), plus one pair candidate per unresolved conditional branch —
// fences at both successor entries, cutting both of the branch's speculation
// colors where their windows open.
func candidateSites(prog *ir.Program, rep *sidechannel.Report) []candidate {
	var out []candidate
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			if _, ok := rep.Analysis.SpecAccess[b.Instrs[i].ID]; ok {
				out = append(out, candidate{sites: []site{{block: b.ID, index: i}}})
				break
			}
		}
	}
	for _, b := range prog.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr || t.Resolved {
			continue
		}
		out = append(out, candidate{sites: []site{
			{block: t.TrueTarget, index: 0},
			{block: t.FalseTarget, index: 0},
		}})
	}
	return out
}

// unionSites merges the chosen sites with every candidate's sites, deduped.
func unionSites(chosen []site, candidates []candidate) []site {
	seen := map[site]bool{}
	var out []site
	add := func(s site) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range chosen {
		add(s)
	}
	for _, c := range candidates {
		for _, s := range c.sites {
			add(s)
		}
	}
	return out
}

func sortSites(sites []site) {
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].block != sites[j].block {
			return sites[i].block < sites[j].block
		}
		return sites[i].index < sites[j].index
	})
}

// buildFenced clones prog with a fence inserted before each site and
// finalizes it. origID maps every new instruction id to the corresponding
// input-program id (-1 for the inserted fences).
func buildFenced(prog *ir.Program, sites []site) (*ir.Program, []int) {
	at := map[site]bool{}
	for _, s := range sites {
		at[s] = true
	}
	out := &ir.Program{
		Name:       prog.Name,
		Symbols:    prog.Symbols,
		Entry:      prog.Entry,
		NumRegs:    prog.NumRegs,
		SecretRegs: prog.SecretRegs,
		InputRegs:  prog.InputRegs,
	}
	var origID []int
	for _, b := range prog.Blocks {
		nb := &ir.Block{ID: b.ID, Label: b.Label}
		nb.Instrs = make([]ir.Instr, 0, len(b.Instrs)+1)
		for i := range b.Instrs {
			if at[site{block: b.ID, index: i}] {
				nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpFence, Line: b.Instrs[i].Line})
				origID = append(origID, -1)
			}
			nb.Instrs = append(nb.Instrs, b.Instrs[i])
			origID = append(origID, b.Instrs[i].ID)
		}
		out.Blocks = append(out.Blocks, nb)
	}
	out.Finalize()
	return out, origID
}

// identityIDs is origID for the unfenced input program itself.
func identityIDs(prog *ir.Program) []int {
	ids := make([]int, prog.NumInstrs)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// describeSites renders the chosen sites against the input program.
func describeSites(prog *ir.Program, sites []site) []Fence {
	var out []Fence
	for _, s := range sites {
		b := prog.Block(s.block)
		in := &b.Instrs[s.index]
		f := Fence{Block: s.block, Label: b.Label, Index: s.index, Line: in.Line}
		if in.Op == ir.OpLoad || in.Op == ir.OpStore {
			f.Symbol = prog.Symbol(in.Sym).Name
		}
		out = append(out, f)
	}
	return out
}

func countKinds(leaks map[leakKey]bool) (timing, gadgets int) {
	for k := range leaks {
		if k.gadget {
			gadgets++
		} else {
			timing++
		}
	}
	return timing, gadgets
}

// verifyDifferential replays the fenced program with secret assignments that
// differ only in the secret-tagged inputs (memory scalars via Inputs,
// `secret reg` registers via RegInputs) under worst-case speculation
// (every branch mispredicted, wrong-path OOB enabled), recording the
// architectural hit/miss sequence of every secret-indexed access. A
// divergence at an access the residual report does not name means the fence
// set failed to close a real channel. Programs with secret-dependent control
// flow, or without secrets, are skipped — mirroring the fuzz oracle's
// leak-completeness scope.
func verifyDifferential(prog *ir.Program, rep *sidechannel.Report, opts Options) (verified bool, traces int, skipped bool, err error) {
	tnt := taint.Analyze(prog)
	var secretSyms []string
	for _, s := range prog.Symbols {
		if s.Secret && s.Len == 1 {
			secretSyms = append(secretSyms, s.Name)
		}
	}
	if (len(secretSyms) == 0 && len(prog.SecretRegs) == 0) ||
		len(tnt.SecretBranches) > 0 || len(tnt.SecretIndexed) == 0 {
		return false, 0, true, nil
	}
	watch := map[int]bool{}
	for _, id := range tnt.SecretIndexed {
		watch[id] = true
	}
	leaked := map[int]bool{}
	for _, l := range rep.Leaks {
		leaked[l.InstrID] = true
	}

	trace := func(val int64) (map[int][]bool, error) {
		inputs := map[string]int64{}
		for _, n := range secretSyms {
			inputs[n] = val
		}
		regInputs := map[ir.Reg]int64{}
		for _, r := range prog.SecretRegs {
			regInputs[r] = val
		}
		cfg := machine.Config{
			Cache:           opts.Core.Cache,
			ForceMispredict: true,
			DepthMiss:       opts.Core.DepthMiss,
			DepthHit:        opts.Core.DepthHit,
			WrongPathOOB:    true,
			MaxSteps:        opts.MaxSteps,
			Inputs:          inputs,
			RegInputs:       regInputs,
		}
		sim, err := machine.New(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("mitigate: verification simulator: %w", err)
		}
		seq := map[int][]bool{}
		sim.OnAccess = func(r machine.AccessRecord) {
			if !r.Speculative && watch[r.InstrID] {
				seq[r.InstrID] = append(seq[r.InstrID], r.Hit)
			}
		}
		if err := sim.Run(); err != nil {
			return nil, fmt.Errorf("mitigate: verification replay: %w", err)
		}
		return seq, nil
	}

	pairs := opts.SecretPairs
	if len(pairs) == 0 {
		pairs = DefaultOptions().SecretPairs
	}
	for _, pair := range pairs {
		seqA, err := trace(pair[0])
		if err != nil {
			return false, traces, false, err
		}
		seqB, err := trace(pair[1])
		if err != nil {
			return false, traces, false, err
		}
		traces += 2
		for id, sa := range seqA {
			if !boolsEqual(sa, seqB[id]) && !leaked[id] {
				return false, traces, false, nil
			}
		}
		for id := range seqB {
			if _, ok := seqA[id]; !ok && !leaked[id] {
				return false, traces, false, nil
			}
		}
	}
	return true, traces, false, nil
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
