package mitigate

import (
	"context"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/ir"
	"specabsint/internal/sidechannel"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := bench.Compile(src, 0)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// TestSynthesizeFig2 runs the synthesizer on the paper's Fig. 2 program: the
// leak is purely speculation-induced (the classic analysis reports none), so
// the fence set must drive residual leaks to zero, and the fenced program
// must show no secret-varying trace pair.
func TestSynthesizeFig2(t *testing.T) {
	prog := compile(t, bench.Fig2Program(-1))
	rep, err := Synthesize(context.Background(), prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineLeaks == 0 {
		t.Fatal("fig2 must report a baseline leak")
	}
	if rep.ResidualLeaks != 0 || rep.ResidualGadgets != 0 {
		t.Fatalf("residual leaks %d / gadgets %d, want 0/0 (fences: %v)",
			rep.ResidualLeaks, rep.ResidualGadgets, rep.Fences)
	}
	if len(rep.Fences) == 0 {
		t.Fatal("zero fences synthesized for a leaking program")
	}
	if rep.Program.FenceCount() != len(rep.Fences) {
		t.Fatalf("fenced program has %d fences, report lists %d",
			rep.Program.FenceCount(), len(rep.Fences))
	}
	if rep.VerifySkipped {
		t.Fatal("differential verification skipped (fig2 has a secret reg)")
	}
	if !rep.Verified {
		t.Fatal("fenced fig2 still shows a secret-varying trace pair")
	}
	if !rep.WCETBounded {
		t.Fatal("fig2 is acyclic after unrolling; WCET must stay bounded")
	}
	// Independent re-analysis of the fenced program must agree.
	after, err := sidechannel.AnalyzeContext(context.Background(), rep.Program, DefaultOptions().Core)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Leaks) != 0 || len(after.SpectreLeaks) != 0 {
		t.Fatalf("re-analysis of fenced program reports %d leaks, %d gadgets",
			len(after.Leaks), len(after.SpectreLeaks))
	}
}

// TestSynthesizeDeterministic pins the search's determinism: two runs on the
// same program produce identical fence sets and reports.
func TestSynthesizeDeterministic(t *testing.T) {
	run := func() *Report {
		prog := compile(t, bench.Fig2Program(-1))
		rep, err := Synthesize(context.Background(), prog, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Fences) != len(b.Fences) {
		t.Fatalf("fence counts differ: %d vs %d", len(a.Fences), len(b.Fences))
	}
	for i := range a.Fences {
		if a.Fences[i] != b.Fences[i] {
			t.Fatalf("fence %d differs: %v vs %v", i, a.Fences[i], b.Fences[i])
		}
	}
	if a.Analyses != b.Analyses || a.MitigatedWCET != b.MitigatedWCET {
		t.Fatalf("effort/wcet differ: %d/%d vs %d/%d",
			a.Analyses, a.MitigatedWCET, b.Analyses, b.MitigatedWCET)
	}
}

// TestSynthesizeResidualHonest runs the synthesizer on the des kernel, whose
// leak exists under the classic analysis too: no fence set can remove it, and
// the report must say so instead of claiming success.
func TestSynthesizeResidualHonest(t *testing.T) {
	b, ok := bench.ByName("des")
	if !ok {
		t.Fatal("des not in corpus")
	}
	prog := compile(t, bench.WithClient(b, 1024))
	opts := DefaultOptions()
	opts.Verify = false // residual leaks are expected; the trace check is moot
	rep, err := Synthesize(context.Background(), prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineLeaks == 0 {
		t.Fatal("des must report a baseline leak")
	}
	if rep.ResidualLeaks == 0 {
		t.Fatal("des's classic leak cannot be fence-fixable; residual must be nonzero")
	}
	if rep.ResidualLeaks > rep.BaselineLeaks {
		t.Fatalf("fencing grew the leak set: %d -> %d", rep.BaselineLeaks, rep.ResidualLeaks)
	}
}

// TestSynthesizeCleanProgram pins the no-op path: a program without leaks
// needs no fences and comes back unchanged.
func TestSynthesizeCleanProgram(t *testing.T) {
	b, ok := bench.ByName("jcmarker")
	if !ok {
		t.Fatal("jcmarker not in corpus")
	}
	prog := compile(t, b.Code)
	rep, err := Synthesize(context.Background(), prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineLeaks != 0 || rep.BaselineGadgets != 0 {
		t.Fatalf("jcmarker reports %d leaks / %d gadgets, expected clean",
			rep.BaselineLeaks, rep.BaselineGadgets)
	}
	if len(rep.Fences) != 0 {
		t.Fatalf("clean program got %d fences", len(rep.Fences))
	}
	if rep.Program != prog {
		t.Fatal("clean program must come back unchanged (same *ir.Program)")
	}
}

// TestBuildFencedMapping pins the id mapping buildFenced returns: every
// non-fence instruction maps to its input id, fences map to -1, and the
// fenced program finalizes consistently.
func TestBuildFencedMapping(t *testing.T) {
	prog := compile(t, bench.Fig2Program(-1))
	var sites []site
	for _, b := range prog.Blocks[:2] {
		if len(b.Instrs) > 1 {
			sites = append(sites, site{block: b.ID, index: 1})
		}
	}
	if len(sites) == 0 {
		t.Skip("program too small")
	}
	fenced, origID := buildFenced(prog, sites)
	if fenced.NumInstrs != prog.NumInstrs+len(sites) {
		t.Fatalf("fenced has %d instrs, want %d", fenced.NumInstrs, prog.NumInstrs+len(sites))
	}
	if len(origID) != fenced.NumInstrs {
		t.Fatalf("origID has %d entries, want %d", len(origID), fenced.NumInstrs)
	}
	fences, next := 0, 0
	for _, b := range fenced.Blocks {
		for i := range b.Instrs {
			id := b.Instrs[i].ID
			if b.Instrs[i].Op == ir.OpFence {
				if origID[id] != -1 {
					t.Fatalf("fence id %d maps to %d, want -1", id, origID[id])
				}
				fences++
				continue
			}
			if origID[id] != next {
				t.Fatalf("instr id %d maps to %d, want %d", id, origID[id], next)
			}
			next++
		}
	}
	if fences != len(sites) {
		t.Fatalf("%d fences inserted, want %d", fences, len(sites))
	}
}
