// Package ir defines the register-machine intermediate representation the
// analyses operate on. A Function is a list of basic blocks; each block is a
// straight-line sequence of instructions ending in a terminator (Br, CondBr,
// or Ret). Values are either virtual registers or integer constants.
// Memory traffic is explicit: only Load and Store touch memory, and every
// memory operand names a Symbol (a laid-out program variable) plus an
// element index operand.
package ir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register id.
type Reg int

// String formats the register as %rN.
func (r Reg) String() string { return fmt.Sprintf("%%r%d", int(r)) }

// Value is an instruction operand: a register or a constant.
type Value struct {
	IsConst bool
	Const   int64
	Reg     Reg
}

// ConstVal makes a constant operand.
func ConstVal(v int64) Value { return Value{IsConst: true, Const: v} }

// RegVal makes a register operand.
func RegVal(r Reg) Value { return Value{Reg: r} }

// String formats the operand.
func (v Value) String() string {
	if v.IsConst {
		return fmt.Sprintf("%d", v.Const)
	}
	return v.Reg.String()
}

// Op enumerates instruction opcodes.
type Op int

// Opcodes.
const (
	OpNop Op = iota
	OpConst
	OpMov
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot  // bitwise complement
	OpBool // logical not-zero -> 1/0... used with Cmp* usually
	OpCmpLt
	OpCmpLe
	OpCmpGt
	OpCmpGe
	OpCmpEq
	OpCmpNe
	OpLoad
	OpStore
	OpBr
	OpCondBr
	OpRet
	// OpFence is a speculation barrier: architecturally a no-op, but it
	// stops speculative execution dead — the simulator squashes every
	// in-flight wrong-path instruction when a fence reaches execute, and the
	// abstract engine terminates any speculative lane that crosses it. It is
	// the primitive the mitigation synthesizer (internal/mitigate) inserts.
	OpFence
)

var opNames = map[Op]string{
	OpNop:    "nop",
	OpConst:  "const",
	OpMov:    "mov",
	OpAdd:    "add",
	OpSub:    "sub",
	OpMul:    "mul",
	OpDiv:    "div",
	OpRem:    "rem",
	OpAnd:    "and",
	OpOr:     "or",
	OpXor:    "xor",
	OpShl:    "shl",
	OpShr:    "shr",
	OpNeg:    "neg",
	OpNot:    "not",
	OpBool:   "bool",
	OpCmpLt:  "cmplt",
	OpCmpLe:  "cmple",
	OpCmpGt:  "cmpgt",
	OpCmpGe:  "cmpge",
	OpCmpEq:  "cmpeq",
	OpCmpNe:  "cmpne",
	OpLoad:   "load",
	OpStore:  "store",
	OpBr:     "br",
	OpCondBr: "condbr",
	OpRet:    "ret",
	OpFence:  "fence",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBinop reports whether the op is a two-operand arithmetic/compare op.
func (o Op) IsBinop() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe, OpCmpEq, OpCmpNe:
		return true
	}
	return false
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool {
	return o == OpBr || o == OpCondBr || o == OpRet
}

// SymbolID identifies a memory symbol within a Program.
type SymbolID int

// Symbol is a memory-resident program variable (scalar or array).
type Symbol struct {
	ID       SymbolID
	Name     string
	ElemSize int  // bytes per element
	Len      int  // number of elements (1 for scalars)
	Secret   bool // taint source for side-channel analysis
	Init     []int64
}

// SizeBytes returns the symbol's total storage size.
func (s *Symbol) SizeBytes() int { return s.ElemSize * s.Len }

// Instr is one IR instruction.
type Instr struct {
	Op   Op
	Dst  Reg      // result register for value-producing ops
	A, B Value    // operands
	Sym  SymbolID // for Load/Store
	Idx  Value    // element index for Load/Store
	// CondBr: A = condition, TrueTarget/FalseTarget name successors.
	TrueTarget  BlockID
	FalseTarget BlockID
	// Resolved marks a CondBr whose outcome the pass pipeline proved at
	// compile time: the emitted branch is unconditional (direction
	// TakenTrue), so no speculative lane is spawned for it, the predictor
	// never sees it, and only the taken edge carries abstract flow. The
	// not-taken edge stays in the CFG so dominator/post-dominator geometry —
	// and with it every vn_stop placement — is unchanged by resolution.
	Resolved  bool
	TakenTrue bool
	// Pos carries the originating source position (line may be 0 for
	// synthesized instructions).
	Line int
	// ID is a program-unique instruction id assigned by Finalize; analyses
	// key per-access results on it.
	ID int
}

// BlockID identifies a basic block within a Function.
type BlockID int

// Block is a basic block.
type Block struct {
	ID     BlockID
	Label  string
	Instrs []Instr
}

// Terminator returns the final instruction of the block.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor block IDs in order (true target first for
// conditional branches). Resolved CondBrs still report both targets: the
// static CFG shape is resolution-independent by design.
func (b *Block) Succs() []BlockID {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []BlockID{t.TrueTarget}
	case OpCondBr:
		return []BlockID{t.TrueTarget, t.FalseTarget}
	}
	return nil
}

// TakenTarget returns the successor a Resolved CondBr always jumps to. It
// must only be called on resolved conditional branches.
func (in *Instr) TakenTarget() BlockID {
	if in.TakenTrue {
		return in.TrueTarget
	}
	return in.FalseTarget
}

// EffectiveSuccs returns the successors execution can actually follow: for a
// block ending in a Resolved CondBr, only the taken edge; otherwise Succs.
// Abstract flows, the interval analysis, and the concrete simulator all
// propagate along effective successors, while dominator and post-dominator
// computations keep using the full edge set (so vn_stop placements do not
// move when a branch resolves).
func (b *Block) EffectiveSuccs() []BlockID {
	t := b.Terminator()
	if t != nil && t.Op == OpCondBr && t.Resolved {
		return []BlockID{t.TakenTarget()}
	}
	return b.Succs()
}

// Program is a lowered whole program: a single entry function (everything is
// inlined into main during lowering) plus the memory symbol table.
type Program struct {
	Name    string
	Symbols []*Symbol
	Blocks  []*Block
	Entry   BlockID
	NumRegs int
	// NumInstrs is the total instruction count after Finalize.
	NumInstrs int
	// SecretRegs lists virtual registers holding secret-tagged values that
	// never touch memory (`secret reg` declarations). Memory-resident
	// secrets carry the tag on their Symbol instead.
	SecretRegs []Reg
	// InputRegs lists virtual registers that are legitimately read before
	// any instruction writes them: registers bound to `reg` variables
	// declared without an initializer (they model inputs, reading the
	// machine's zero-initialized register file). SecretRegs are inputs too;
	// lowering records them in both lists. The def-before-use verifier
	// treats exactly these registers as defined at entry.
	InputRegs []Reg
	symByName map[string]*Symbol
}

// Symbol returns the symbol with the given id.
func (p *Program) Symbol(id SymbolID) *Symbol { return p.Symbols[id] }

// SymbolByName returns the named symbol, or nil.
func (p *Program) SymbolByName(name string) *Symbol {
	if p.symByName == nil {
		p.symByName = make(map[string]*Symbol, len(p.Symbols))
		for _, s := range p.Symbols {
			p.symByName[s.Name] = s
		}
	}
	return p.symByName[name]
}

// Block returns the block with the given id.
func (p *Program) Block(id BlockID) *Block { return p.Blocks[id] }

// Finalize assigns program-unique instruction IDs and instruction counts.
// It must be called (by the builder) before analyses run.
func (p *Program) Finalize() {
	id := 0
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			b.Instrs[i].ID = id
			id++
		}
	}
	p.NumInstrs = id
	p.symByName = nil
}

// InstrCount returns the number of instructions in the program.
func (p *Program) InstrCount() int { return p.NumInstrs }

// CondBranchCount returns the number of conditional branches that can
// actually mispredict: CondBrs not marked Resolved by the pass pipeline.
// Resolved branches are unconditional jumps in the emitted program, so they
// spawn no speculative colors and do not count toward the paper's #Branch.
func (p *Program) CondBranchCount() int {
	n := 0
	for _, b := range p.Blocks {
		if t := b.Terminator(); t != nil && t.Op == OpCondBr && !t.Resolved {
			n++
		}
	}
	return n
}

// ResolvedBranchCount returns the number of CondBrs the pass pipeline
// statically decided.
func (p *Program) ResolvedBranchCount() int {
	n := 0
	for _, b := range p.Blocks {
		if t := b.Terminator(); t != nil && t.Op == OpCondBr && t.Resolved {
			n++
		}
	}
	return n
}

// FenceCount returns the number of fence instructions.
func (p *Program) FenceCount() int {
	n := 0
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == OpFence {
				n++
			}
		}
	}
	return n
}

// MemAccessCount returns the number of Load/Store instructions.
func (p *Program) MemAccessCount() int {
	n := 0
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == OpLoad || b.Instrs[i].Op == OpStore {
				n++
			}
		}
	}
	return n
}

// String prints the whole program in a readable assembly-like syntax.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s (entry %s)\n", p.Name, p.Blocks[p.Entry].Label)
	for _, s := range p.Symbols {
		secret := ""
		if s.Secret {
			secret = " secret"
		}
		fmt.Fprintf(&sb, "  sym %s: %d x %dB%s\n", s.Name, s.Len, s.ElemSize, secret)
	}
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", p.FormatInstr(&b.Instrs[i]))
		}
	}
	return sb.String()
}

// FormatInstr renders one instruction.
func (p *Program) FormatInstr(in *Instr) string {
	symName := func(id SymbolID) string {
		if int(id) < len(p.Symbols) {
			return p.Symbols[id].Name
		}
		return fmt.Sprintf("sym%d", id)
	}
	blockLabel := func(id BlockID) string {
		if int(id) < len(p.Blocks) {
			return p.Blocks[id].Label
		}
		return fmt.Sprintf("bb%d", id)
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %s", in.Dst, in.A)
	case OpMov:
		return fmt.Sprintf("%s = mov %s", in.Dst, in.A)
	case OpNeg, OpNot, OpBool:
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	case OpLoad:
		return fmt.Sprintf("%s = load %s[%s]", in.Dst, symName(in.Sym), in.Idx)
	case OpStore:
		return fmt.Sprintf("store %s[%s] = %s", symName(in.Sym), in.Idx, in.A)
	case OpBr:
		return fmt.Sprintf("br %s", blockLabel(in.TrueTarget))
	case OpCondBr:
		if in.Resolved {
			dir := "F"
			if in.TakenTrue {
				dir = "T"
			}
			return fmt.Sprintf("condbr %s ? %s : %s  ; resolved=%s", in.A,
				blockLabel(in.TrueTarget), blockLabel(in.FalseTarget), dir)
		}
		return fmt.Sprintf("condbr %s ? %s : %s", in.A,
			blockLabel(in.TrueTarget), blockLabel(in.FalseTarget))
	case OpRet:
		return fmt.Sprintf("ret %s", in.A)
	case OpNop:
		return "nop"
	case OpFence:
		return "fence"
	default:
		return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
}

// Validate checks structural invariants: every block ends in a terminator,
// all branch targets exist, registers are within range, and symbol ids are
// valid. It returns the first violation found.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("program has no blocks")
	}
	if int(p.Entry) >= len(p.Blocks) {
		return fmt.Errorf("entry block %d out of range", p.Entry)
	}
	for _, b := range p.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.Label)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsTerminator() != (i == len(b.Instrs)-1) {
				return fmt.Errorf("block %s: terminator in wrong position (instr %d)", b.Label, i)
			}
			if in.Op == OpLoad || in.Op == OpStore {
				if int(in.Sym) >= len(p.Symbols) {
					return fmt.Errorf("block %s: invalid symbol %d", b.Label, in.Sym)
				}
			}
			for _, tgt := range []BlockID{in.TrueTarget, in.FalseTarget} {
				if (in.Op == OpBr || in.Op == OpCondBr) && int(tgt) >= len(p.Blocks) {
					return fmt.Errorf("block %s: branch target %d out of range", b.Label, tgt)
				}
			}
			checkReg := func(v Value) error {
				if !v.IsConst && (int(v.Reg) < 0 || int(v.Reg) >= p.NumRegs) {
					return fmt.Errorf("block %s: register %s out of range", b.Label, v.Reg)
				}
				return nil
			}
			if err := checkReg(in.A); err != nil && usesA(in.Op) {
				return err
			}
			if err := checkReg(in.B); err != nil && in.Op.IsBinop() {
				return err
			}
		}
	}
	return nil
}

func usesA(op Op) bool {
	switch op {
	case OpNop, OpBr, OpFence:
		return false
	}
	return true
}
