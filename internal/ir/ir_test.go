package ir

import (
	"strings"
	"testing"
)

// buildTiny constructs: entry: r0=const 1; condbr r0 ? a : b; a: ret 1; b: ret 0
func buildTiny(t *testing.T) *Program {
	t.Helper()
	bd := NewBuilder("tiny")
	entry := bd.NewBlock("entry")
	a := bd.NewBlock("a")
	b := bd.NewBlock("b")
	bd.SetBlock(entry)
	r := bd.Const(1)
	bd.CondBr(RegVal(r), a, b)
	bd.SetBlock(a)
	bd.Ret(ConstVal(1))
	bd.SetBlock(b)
	bd.Ret(ConstVal(0))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBuilderProducesValidProgram(t *testing.T) {
	prog := buildTiny(t)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if prog.InstrCount() != 4 {
		t.Errorf("instr count = %d, want 4", prog.InstrCount())
	}
	if prog.CondBranchCount() != 1 {
		t.Errorf("cond branches = %d, want 1", prog.CondBranchCount())
	}
}

func TestSuccs(t *testing.T) {
	prog := buildTiny(t)
	succs := prog.Block(prog.Entry).Succs()
	if len(succs) != 2 || succs[0] != 1 || succs[1] != 2 {
		t.Errorf("succs = %v", succs)
	}
	if got := prog.Block(1).Succs(); got != nil {
		t.Errorf("ret block has succs %v", got)
	}
}

func TestInstrIDsAreUnique(t *testing.T) {
	prog := buildTiny(t)
	seen := map[int]bool{}
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			id := b.Instrs[i].ID
			if seen[id] {
				t.Fatalf("duplicate instruction id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestDeadCodeAfterTerminatorDropped(t *testing.T) {
	bd := NewBuilder("dead")
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Ret(ConstVal(0))
	bd.Const(42) // dead, must be dropped
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(prog.Block(entry).Instrs); n != 1 {
		t.Errorf("entry has %d instrs, want 1", n)
	}
}

func TestUnterminatedBlockGetsRet(t *testing.T) {
	bd := NewBuilder("fall")
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Const(3)
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	term := prog.Block(entry).Terminator()
	if term == nil || term.Op != OpRet {
		t.Fatal("expected synthesized ret")
	}
}

func TestSymbolLookup(t *testing.T) {
	bd := NewBuilder("syms")
	sid := bd.AddSymbol("tbl", 4, 16, true, []int64{1, 2})
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	bd.Load(sid, ConstVal(0))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.SymbolByName("tbl")
	if s == nil || s.ID != sid || !s.Secret || s.SizeBytes() != 64 {
		t.Fatalf("bad symbol %+v", s)
	}
	if prog.SymbolByName("nope") != nil {
		t.Error("lookup of missing symbol should be nil")
	}
	if prog.MemAccessCount() != 1 {
		t.Errorf("mem accesses = %d, want 1", prog.MemAccessCount())
	}
}

func TestProgramString(t *testing.T) {
	prog := buildTiny(t)
	s := prog.String()
	for _, want := range []string{"entry:", "condbr", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("program dump missing %q:\n%s", want, s)
		}
	}
}

func TestFormatInstr(t *testing.T) {
	bd := NewBuilder("fmt")
	sid := bd.AddSymbol("a", 4, 8, false, nil)
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	r := bd.Load(sid, ConstVal(2))
	bd.Store(sid, ConstVal(3), RegVal(r))
	bd.Ret(RegVal(r))
	prog, err := bd.Finish(entry)
	if err != nil {
		t.Fatal(err)
	}
	got := prog.FormatInstr(&prog.Block(entry).Instrs[0])
	if !strings.Contains(got, "load a[2]") {
		t.Errorf("load formatting: %q", got)
	}
	got = prog.FormatInstr(&prog.Block(entry).Instrs[1])
	if !strings.Contains(got, "store a[3]") {
		t.Errorf("store formatting: %q", got)
	}
}

func TestValidateCatchesMisplacedTerminator(t *testing.T) {
	prog := buildTiny(t)
	// Corrupt: append an instruction after the terminator of block a.
	prog.Blocks[1].Instrs = append(prog.Blocks[1].Instrs, Instr{Op: OpConst, Dst: 0, A: ConstVal(1)})
	if err := prog.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpAdd.IsBinop() || OpLoad.IsBinop() {
		t.Error("IsBinop misclassifies")
	}
	if !OpBr.IsTerminator() || !OpCondBr.IsTerminator() || !OpRet.IsTerminator() {
		t.Error("IsTerminator misclassifies terminators")
	}
	if OpLoad.IsTerminator() {
		t.Error("load is not a terminator")
	}
}
