package ir

import "fmt"

// Builder incrementally constructs a Program.
type Builder struct {
	prog    *Program
	current *Block
	nextReg Reg
	line    int
}

// NewBuilder creates a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// AddSymbol registers a memory symbol and returns its id.
func (bd *Builder) AddSymbol(name string, elemSize, n int, secret bool, init []int64) SymbolID {
	id := SymbolID(len(bd.prog.Symbols))
	bd.prog.Symbols = append(bd.prog.Symbols, &Symbol{
		ID: id, Name: name, ElemSize: elemSize, Len: n, Secret: secret, Init: init,
	})
	return id
}

// NewBlock creates a new basic block and returns its id. It does not change
// the insertion point.
func (bd *Builder) NewBlock(label string) BlockID {
	id := BlockID(len(bd.prog.Blocks))
	if label == "" {
		label = fmt.Sprintf("bb%d", id)
	}
	bd.prog.Blocks = append(bd.prog.Blocks, &Block{ID: id, Label: label})
	return id
}

// SetBlock moves the insertion point to the given block.
func (bd *Builder) SetBlock(id BlockID) { bd.current = bd.prog.Blocks[id] }

// CurrentBlock returns the current insertion block id.
func (bd *Builder) CurrentBlock() BlockID { return bd.current.ID }

// SetLine records the source line attached to subsequently emitted
// instructions.
func (bd *Builder) SetLine(line int) { bd.line = line }

// NewReg allocates a fresh virtual register.
func (bd *Builder) NewReg() Reg {
	r := bd.nextReg
	bd.nextReg++
	return r
}

// MarkSecretReg tags a register as a secret source (a `secret reg`
// declaration, which has no Symbol to carry the tag).
func (bd *Builder) MarkSecretReg(r Reg) {
	bd.prog.SecretRegs = append(bd.prog.SecretRegs, r)
}

// MarkInputReg tags a register as legitimately read before any write (a
// `reg` variable declared without an initializer). The def-before-use
// verifier treats it as defined at entry.
func (bd *Builder) MarkInputReg(r Reg) {
	bd.prog.InputRegs = append(bd.prog.InputRegs, r)
}

// Terminated reports whether the current block already ends in a terminator.
func (bd *Builder) Terminated() bool {
	return bd.current != nil && bd.current.Terminator() != nil
}

func (bd *Builder) emit(in Instr) {
	if bd.current == nil {
		panic("ir: emit without a current block")
	}
	if bd.Terminated() {
		// Dead code after a terminator (e.g. statements after return) is
		// silently dropped; the front end permits it like C does.
		return
	}
	in.Line = bd.line
	bd.current.Instrs = append(bd.current.Instrs, in)
}

// Const emits dst = const v.
func (bd *Builder) Const(v int64) Reg {
	dst := bd.NewReg()
	bd.emit(Instr{Op: OpConst, Dst: dst, A: ConstVal(v)})
	return dst
}

// Mov emits dst = a.
func (bd *Builder) Mov(dst Reg, a Value) {
	bd.emit(Instr{Op: OpMov, Dst: dst, A: a})
}

// Binop emits dst = op a, b and returns dst.
func (bd *Builder) Binop(op Op, a, b Value) Reg {
	if !op.IsBinop() {
		panic(fmt.Sprintf("ir: %s is not a binop", op))
	}
	dst := bd.NewReg()
	bd.emit(Instr{Op: op, Dst: dst, A: a, B: b})
	return dst
}

// Unop emits dst = op a for neg/not/bool.
func (bd *Builder) Unop(op Op, a Value) Reg {
	dst := bd.NewReg()
	bd.emit(Instr{Op: op, Dst: dst, A: a})
	return dst
}

// Load emits dst = load sym[idx].
func (bd *Builder) Load(sym SymbolID, idx Value) Reg {
	dst := bd.NewReg()
	bd.emit(Instr{Op: OpLoad, Dst: dst, Sym: sym, Idx: idx})
	return dst
}

// Store emits store sym[idx] = v.
func (bd *Builder) Store(sym SymbolID, idx Value, v Value) {
	bd.emit(Instr{Op: OpStore, Sym: sym, Idx: idx, A: v})
}

// Fence emits a speculation barrier.
func (bd *Builder) Fence() {
	bd.emit(Instr{Op: OpFence})
}

// Br emits an unconditional branch.
func (bd *Builder) Br(target BlockID) {
	bd.emit(Instr{Op: OpBr, TrueTarget: target})
}

// CondBr emits a conditional branch.
func (bd *Builder) CondBr(cond Value, t, f BlockID) {
	bd.emit(Instr{Op: OpCondBr, A: cond, TrueTarget: t, FalseTarget: f})
}

// Ret emits a return.
func (bd *Builder) Ret(v Value) {
	bd.emit(Instr{Op: OpRet, A: v})
}

// Finish seals the program: sets the entry block, ensures every block is
// terminated (unterminated blocks get `ret 0`, matching C's fall-off-main),
// validates, and assigns instruction ids.
func (bd *Builder) Finish(entry BlockID) (*Program, error) {
	bd.prog.Entry = entry
	bd.prog.NumRegs = int(bd.nextReg)
	for _, b := range bd.prog.Blocks {
		if b.Terminator() == nil {
			b.Instrs = append(b.Instrs, Instr{Op: OpRet, A: ConstVal(0)})
		}
	}
	bd.prog.Finalize()
	if err := bd.prog.Validate(); err != nil {
		return nil, err
	}
	return bd.prog, nil
}
