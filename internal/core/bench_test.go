package core

import (
	"fmt"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// fixpointKernels names the corpus kernels the fixpoint benchmarks run on,
// chosen to span analysis cost: vga converges in milliseconds, g72 in
// hundreds of milliseconds, adpcm in seconds (on the seed engine).
var fixpointKernels = []struct {
	size string
	name string
}{
	{"small", "vga"},
	{"medium", "g72"},
	{"large", "adpcm"},
}

func compileKernel(tb testing.TB, name string) *ir.Program {
	tb.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		tb.Fatalf("kernel %q not in corpus", name)
	}
	prog, err := bench.Compile(b.Code, 0)
	if err != nil {
		tb.Fatalf("compile %s: %v", name, err)
	}
	return prog
}

// BenchmarkFixpoint measures the full speculative fixpoint (paper default
// options) per corpus kernel. This is the headline perf-trajectory number
// recorded in BENCH_fixpoint.json.
func BenchmarkFixpoint(b *testing.B) {
	for _, k := range fixpointKernels {
		prog := compileKernel(b, k.name)
		b.Run(fmt.Sprintf("%s-%s", k.size, k.name), func(b *testing.B) {
			opts := DefaultOptions()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(prog, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFixpointSetAssoc runs the medium kernel on a 64-set/8-way
// geometry, the configuration where per-set dirty tracking and partitioned
// fixpoints have room to win over the dense fully-associative paper cache.
func BenchmarkFixpointSetAssoc(b *testing.B) {
	prog := compileKernel(b, "g72")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 64, Assoc: 8}
			opts.SetParallelism = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(prog, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
