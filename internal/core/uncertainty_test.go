package core

import (
	"fmt"
	"testing"
)

// These tests pin the uncertainty-focused speculation machinery: the
// laneNeed pre-pass must skip lane spawns exactly when no wrong-path memory
// access is reachable within the speculation budget, the skip must be
// invisible in every classification, and the counters must record it.

// certainSrc branches on an unknown byte, but neither arm (nor anything
// downstream) touches memory: no wrong-path lane can ever classify an
// access, so every spawn must be skipped.
const certainSrc = `
char p;
int main() {
	reg int t;
	reg int i;
	t = p;
	if (t == 0) { i = 1; } else { i = 2; }
	return i;
}`

// uncertainSrc is the same shape with a memory access at the head of each
// arm: both arms are reachable by a wrong-path lane within any positive
// budget, so both colors of the branch must spawn.
const uncertainSrc = `
char a[256];
char p;
int main() {
	reg int t;
	reg int i;
	t = p;
	if (t == 0) { i = a[0]; } else { i = a[128]; }
	return i;
}`

// mixedSrc has an access on the then-arm only: the else-arm's lanes are
// certain (skippable), the then-arm's are not.
const mixedSrc = `
char a[256];
char p;
int main() {
	reg int t;
	reg int i;
	t = p;
	if (t == 0) { i = a[0]; } else { i = 3; }
	return i;
}`

func TestUncertaintySkipsCertainBranch(t *testing.T) {
	prog := compile(t, certainSrc)
	res, err := Analyze(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LanesSpawned != 0 {
		t.Errorf("LanesSpawned = %d on an access-free wrong path, want 0", res.Stats.LanesSpawned)
	}
	if res.Stats.LanesSkippedCertain == 0 {
		t.Error("LanesSkippedCertain = 0: the certain branch never hit the skip path")
	}
	if len(res.SpecAccess) != 0 {
		t.Errorf("SpecAccess has %d entries, want none", len(res.SpecAccess))
	}
}

func TestUncertaintySpawnsUncertainBranch(t *testing.T) {
	prog := compile(t, uncertainSrc)
	res, err := Analyze(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LanesSpawned == 0 {
		t.Fatal("LanesSpawned = 0 on a branch with accesses in both arms")
	}
	if res.Stats.LanesSkippedCertain != 0 {
		t.Errorf("LanesSkippedCertain = %d, want 0: both arms reach an access immediately", res.Stats.LanesSkippedCertain)
	}
	// Exactly the two arm-head loads must be lane-analyzed: each arm is the
	// wrong path of the opposite prediction.
	for _, name := range []string{"a"} {
		loads := loadsOf(prog, name)
		if len(loads) != 2 {
			t.Fatalf("test program shape changed: %d loads of %s, want 2", len(loads), name)
		}
		for _, in := range loads {
			if _, ok := res.SpecAccess[in.ID]; !ok {
				t.Errorf("load of %s at line %d (instr %d) not lane-analyzed", name, in.Line, in.ID)
			}
		}
	}
}

func TestUncertaintyMixedBranchSkipsOneArm(t *testing.T) {
	prog := compile(t, mixedSrc)
	res, err := Analyze(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LanesSpawned == 0 {
		t.Error("LanesSpawned = 0: the then-arm access must draw lanes")
	}
	if res.Stats.LanesSkippedCertain == 0 {
		t.Error("LanesSkippedCertain = 0: the access-free else-arm must be skipped")
	}
	loads := loadsOf(prog, "a")
	if len(loads) != 1 {
		t.Fatalf("test program shape changed: %d loads of a, want 1", len(loads))
	}
	if _, ok := res.SpecAccess[loads[0].ID]; !ok {
		t.Error("then-arm load not lane-analyzed despite the else-arm skip")
	}
}

// TestUncertaintyBudgetGate pins the depth side of the pre-pass: when the
// speculation window is too small to reach the arm's first access, the spawn
// is skipped, and the skip agrees with what a spawned lane would have
// concluded (nothing).
func TestUncertaintyBudgetGate(t *testing.T) {
	// Three register instructions precede the access on each arm, so a lane
	// needs budget > 3 to classify it.
	src := `
char a[256];
char p;
int main() {
	reg int t;
	reg int i;
	t = p;
	if (t == 0) { i = 1; i = 2; i = 3; i = a[0]; } else { i = 1; i = 2; i = 3; i = a[128]; }
	return i;
}`
	prog := compile(t, src)
	run := func(depth int) *Result {
		t.Helper()
		opts := DefaultOptions()
		opts.DepthMiss, opts.DepthHit = depth, depth
		res, err := Analyze(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tiny := run(2)
	if tiny.Stats.LanesSpawned != 0 {
		t.Errorf("depth=2: LanesSpawned = %d, want 0 (first access needs budget > 3)", tiny.Stats.LanesSpawned)
	}
	if tiny.Stats.LanesSkippedCertain == 0 {
		t.Error("depth=2: LanesSkippedCertain = 0, want the budget gate to trigger")
	}
	if len(tiny.SpecAccess) != 0 {
		t.Errorf("depth=2: SpecAccess has %d entries, want none", len(tiny.SpecAccess))
	}
	wide := run(30)
	if wide.Stats.LanesSpawned == 0 {
		t.Error("depth=30: LanesSpawned = 0, want lanes to reach the accesses")
	}
	if wide.Stats.LanesSkippedCertain != 0 {
		t.Errorf("depth=30: LanesSkippedCertain = %d, want 0", wide.Stats.LanesSkippedCertain)
	}
}

// TestUncertaintyPruningInvisible is the soundness contract of the skip: on
// every probe program, classifications with the uncertainty machinery on are
// byte-identical to the ablation run with it off (which spawns every lane
// and lets the useless ones die naturally).
func TestUncertaintyPruningInvisible(t *testing.T) {
	for name, src := range map[string]string{
		"certain": certainSrc, "uncertain": uncertainSrc, "mixed": mixedSrc, "fig2": fig2Source,
	} {
		t.Run(name, func(t *testing.T) {
			prog := compile(t, src)
			on, err := Analyze(prog, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.DisableUncertainty = true
			off, err := Analyze(prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fmt.Sprint(on.Access), fmt.Sprint(off.Access); got != want {
				t.Errorf("architectural classifications differ:\n on  %s\n off %s", got, want)
			}
			if got, want := fmt.Sprint(on.SpecAccess), fmt.Sprint(off.SpecAccess); got != want {
				t.Errorf("lane classifications differ:\n on  %s\n off %s", got, want)
			}
		})
	}
}

// TestWTOComponentsStat pins the component counter: a loop-free program has
// none, a loopy one at least one, and the counter follows the scheduler that
// actually built a WTO.
func TestWTOComponentsStat(t *testing.T) {
	straight := compile(t, certainSrc)
	res, err := Analyze(straight, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WTOComponents != 0 {
		t.Errorf("WTOComponents = %d on a loop-free program, want 0", res.Stats.WTOComponents)
	}
	// A data-dependent bound keeps the loop in the CFG (constant-bound loops
	// are unrolled away by lowering).
	loopy := compile(t, `
char a[256];
char p;
int main() {
	reg int i;
	reg int t;
	t = p;
	for (i = 0; i < t; i += 1) { t = t + a[i]; }
	return t;
}`)
	res, err = Analyze(loopy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WTOComponents == 0 {
		t.Error("WTOComponents = 0 on a program with a loop")
	}
}
