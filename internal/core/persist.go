package core

import (
	"context"

	"specabsint/internal/cfg"
	"specabsint/internal/interval"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// AnalyzePersistence runs the speculation-aware *persistence* analysis
// ("first miss"): an access classified AlwaysHit here misses at most once
// across the whole execution — even if the must analysis cannot prove it
// always hits. The classification feeds the loop-bounded WCET estimate:
// a persistent access inside a loop costs one miss plus hits, instead of a
// miss per iteration. Speculative lanes and rollback states participate
// exactly as in the must analysis, so the verdicts remain sound under
// speculation.
func AnalyzePersistence(prog *ir.Program, opts Options) (*Result, error) {
	return AnalyzePersistenceContext(context.Background(), prog, opts)
}

// AnalyzePersistenceContext is AnalyzePersistence with cancellation.
func AnalyzePersistenceContext(ctx context.Context, prog *ir.Program, opts Options) (*Result, error) {
	if err := validateDepths(opts); err != nil {
		return nil, err
	}
	l, err := layout.New(prog, opts.Cache)
	if err != nil {
		return nil, err
	}
	// Dynamic depth bounding keys off must-hit facts, which the persistence
	// domain does not provide; use the conservative window.
	opts.DynamicDepthBounding = false
	g := cfg.New(prog)
	idx := interval.Analyze(g)
	e := newEngine(prog, g, l, idx, opts)
	e.dom.Persist = true
	e.dom.Refined = false // the NYoung refinement is a must-analysis rule
	if err := e.run(ctx); err != nil {
		return nil, err
	}
	return e.result(), nil
}
