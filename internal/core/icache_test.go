package core

import (
	"fmt"
	"math/rand"
	"testing"

	"specabsint/internal/cache"
	"specabsint/internal/gen"
	"specabsint/internal/layout"
	"specabsint/internal/machine"
)

func icacheCfg(lines int) layout.CacheConfig {
	return layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: lines}
}

func TestICacheStraightLineAllClassified(t *testing.T) {
	prog := compile(t, `
	int a[8];
	int main() {
		int s = 0;
		for (int i = 0; i < 8; i++) { s += a[i]; }
		return s;
	}`)
	opts := DefaultOptions()
	opts.Cache = icacheCfg(64)
	res, err := AnalyzeInstructionCache(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every instruction is an access in the i-cache analysis.
	if res.AccessCount() != prog.InstrCount() {
		t.Errorf("classified %d fetches, want %d", res.AccessCount(), prog.InstrCount())
	}
	// With a big i-cache, only first-touch fetches miss: the miss count is
	// at most the number of code blocks.
	codeBlocks := (prog.InstrCount()*layout.InstrBytes + 63) / 64
	if res.MissCount() > codeBlocks {
		t.Errorf("misses %d exceed code blocks %d in an oversized cache",
			res.MissCount(), codeBlocks)
	}
}

func TestICacheLoopBodyBecomesHot(t *testing.T) {
	// A loop kept intact: the second iteration onward re-fetches the same
	// code blocks, so the analysis must prove most fetches hits eventually.
	prog := compile(t, `
	int acc;
	int main(int n) {
		int i = 0;
		while (i < n) { acc = acc + i; i = i + 1; }
		return acc;
	}`)
	opts := DefaultOptions()
	opts.Cache = icacheCfg(64)
	opts.Speculative = false
	res, err := AnalyzeInstructionCache(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitCount() == 0 {
		t.Error("loop code should have guaranteed-hit fetches")
	}
}

func TestICacheSpeculationAddsFetchMisses(t *testing.T) {
	// A tiny i-cache and a branch whose arms are large: the wrong-path arm
	// evicts code the normal path relies on.
	var src = `
	int a; int b; int acc;
	int main(int n) {
		int i = 0;
		while (i < n) {
			if (a > 0) {
				` + bigArm("acc = acc + b;", 40) + `
			} else {
				` + bigArm("acc = acc - b;", 40) + `
			}
			i = i + 1;
		}
		return acc;
	}`
	prog := compile(t, src)
	opts := DefaultOptions()
	opts.Cache = icacheCfg(8)
	spec, err := AnalyzeInstructionCache(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Speculative = false
	base, err := AnalyzeInstructionCache(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if spec.MissCount() < base.MissCount() {
		t.Errorf("speculative i-cache misses %d < baseline %d",
			spec.MissCount(), base.MissCount())
	}
	if spec.SpecMissCount() == 0 {
		t.Error("wrong-path fetches should include potential misses")
	}
}

func bigArm(stmt string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += stmt + "\n"
	}
	return out
}

// TestICacheSoundness drives the i-cache analysis against the simulator's
// concrete fetch stream on random programs.
func TestICacheSoundness(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := gen.Source(rng)
		prog := compile(t, src)
		cc := icacheCfg(4 + int(seed%3)*4)
		depth := []int{0, 10, 50}[seed%3]

		opts := DefaultOptions()
		opts.Cache = cc
		opts.DepthMiss = depth
		opts.DepthHit = depth
		res, err := AnalyzeInstructionCache(prog, opts)
		if err != nil {
			t.Fatal(err)
		}

		simCfg := machine.Config{
			Cache:           layout.PaperConfig(),
			ICache:          &cc,
			ForceMispredict: true,
			WrongPathOOB:    true,
			DepthMiss:       depth,
			DepthHit:        depth,
			MaxSteps:        5_000_000,
		}
		sim, err := machine.New(prog, simCfg)
		if err != nil {
			t.Fatal(err)
		}
		violations := 0
		sim.OnFetch = func(r machine.AccessRecord) {
			if violations > 3 {
				return
			}
			label := fmt.Sprintf("seed=%d depth=%d", seed, depth)
			if r.Speculative {
				cls, ok := res.SpecAccess[r.InstrID]
				if !ok {
					violations++
					t.Errorf("%s: fetch of instr %d speculated but never lane-analyzed", label, r.InstrID)
					return
				}
				if cls == cache.AlwaysHit && !r.Hit {
					violations++
					t.Errorf("%s: wrong-path fetch of instr %d classified always-hit but missed", label, r.InstrID)
				}
				return
			}
			cls, ok := res.ClassOf(r.InstrID)
			if !ok {
				violations++
				t.Errorf("%s: fetch of instr %d executed but unclassified", label, r.InstrID)
				return
			}
			if cls == cache.AlwaysHit && !r.Hit {
				violations++
				t.Errorf("%s: fetch of instr %d classified always-hit but missed (block %d)",
					label, r.InstrID, r.Block)
			}
			if cls == cache.AlwaysMiss && r.Hit {
				violations++
				t.Errorf("%s: fetch of instr %d classified always-miss but hit", label, r.InstrID)
			}
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestICacheMachineCounters(t *testing.T) {
	prog := compile(t, `
	int a;
	int main(int n) {
		int i = 0;
		while (i < 20) { a = a + i; i = i + 1; }
		return a;
	}`)
	ic := icacheCfg(32)
	cfg := machine.DefaultConfig()
	cfg.ICache = &ic
	stats, err := machine.RunProgram(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IFetchHits == 0 || stats.IFetchMisses == 0 {
		t.Errorf("fetch counters: hits=%d misses=%d", stats.IFetchHits, stats.IFetchMisses)
	}
	if stats.IFetchHits+stats.IFetchMisses != stats.Instructions {
		t.Errorf("fetches %d != instructions %d",
			stats.IFetchHits+stats.IFetchMisses, stats.Instructions)
	}
}
