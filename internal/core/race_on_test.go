//go:build race

package core

// raceDetectorOn marks builds under `go test -race`. The full-corpus
// partition-equivalence sweeps are skipped there (the detector makes them an
// order of magnitude slower); the partitioned fan-out itself is still raced
// by TestPartitionedFanOutRace and the random-program equivalence test.
const raceDetectorOn = true
