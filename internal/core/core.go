// Package core implements the paper's contribution: abstract interpretation
// that is sound under speculative execution (Algorithms 2 and 3).
//
// The CFG is augmented — implicitly, by the engine's worklist — with the
// paper's virtual control flows: for every conditional branch b and
// predicted direction p, a *color* (b, p) models the speculative execution
// of the predicted side. The engine tracks three families of states:
//
//   - S[n]      — the normal (architectural) state at block entry;
//   - Lane[n][c] — the wrong-path exploration state of color c with its
//     remaining speculation budget (the region between the paper's vn_start
//     and the rollback points);
//   - SS[n][p]  — speculative states after rollback, propagated through the
//     other branch until the branch's immediate post-dominator (vn_stop),
//     where they merge back into S (Just-in-Time merging, Fig. 6c).
//
// The merge strategies of Fig. 6 are selectable: merging rollback states
// directly into the normal flow (Fig. 6d), just-in-time merging (Fig. 6c,
// default), and per-rollback-block trace partitioning which approximates
// the unmerged flows of Fig. 6a/b.
package core

import (
	"context"
	"fmt"
	"runtime/pprof"

	"specabsint/internal/bytecode"
	"specabsint/internal/cache"
	"specabsint/internal/cfg"
	"specabsint/internal/interval"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/obs"
)

// Strategy selects how speculative states merge with normal states (Fig. 6).
type Strategy int

// Merge strategies.
const (
	// StrategyJustInTime merges all rollback states of a color before the
	// other branch, propagates the merged state through it, and joins the
	// normal flow at the branch's post-dominator (Fig. 6c).
	StrategyJustInTime Strategy = iota
	// StrategyMergeAtRollback joins rollback states into the normal state
	// at the other branch's entry (Fig. 6d) — the most aggressive merge.
	StrategyMergeAtRollback
	// StrategyPerRollbackBlock keeps one speculative flow per (color,
	// rollback block) pair, approximating the unmerged virtual flows of
	// Fig. 6a/b by trace partitioning. Most precise, most expensive.
	StrategyPerRollbackBlock
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyJustInTime:
		return "just-in-time"
	case StrategyMergeAtRollback:
		return "merge-at-rollback"
	case StrategyPerRollbackBlock:
		return "per-rollback-block"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Scheduler selects the fixpoint iteration order. Both schedulers compute
// the same fixpoint — classifications are byte-identical — and each is
// individually deterministic; they differ in how many block re-iterations
// convergence takes.
type Scheduler int

// Schedulers.
const (
	// SchedulerWTO (the default) iterates in Bourdoncle's hierarchical weak
	// topological order: inner loop components are stabilized, with widening
	// at their heads, before the enclosing component re-iterates. On nested
	// loops this avoids the re-iteration churn a flat priority worklist pays
	// every time an outer change re-dirties an inner loop.
	SchedulerWTO Scheduler = iota
	// SchedulerWorklist is the classic reverse-postorder priority worklist
	// (the engine's original schedule), kept as an escape hatch and as the
	// reference arm of the scheduler-equivalence test harness.
	SchedulerWorklist
)

// String names the scheduler (the same names specanalyze -scheduler and the
// wire options accept).
func (s Scheduler) String() string {
	switch s {
	case SchedulerWTO:
		return "wto"
	case SchedulerWorklist:
		return "worklist"
	}
	return fmt.Sprintf("scheduler(%d)", int(s))
}

// Options configures the analysis.
type Options struct {
	// Cache is the modeled cache geometry.
	Cache layout.CacheConfig
	// Speculative enables the virtual control flows; false runs the plain
	// Algorithm-1 analysis (the unsound-under-speculation baseline).
	Speculative bool
	// DepthMiss (the paper's b_m) bounds the number of speculatively
	// executed instructions when the branch condition is a potential cache
	// miss; DepthHit (b_h) applies when it is proved a must-hit (§6.2).
	DepthMiss int
	DepthHit  int
	// DynamicDepthBounding enables the §6.2 optimization that switches from
	// b_m to b_h once the branch condition's loads are proved must-hits.
	// When disabled, b_m is always used.
	DynamicDepthBounding bool
	// Strategy selects the speculative-state merging strategy (Fig. 6).
	Strategy Strategy
	// RefinedJoin enables the Appendix-B shadow-variable refinement.
	RefinedJoin bool
	// WideningThreshold is the number of in-state changes at a block before
	// widening; 0 disables widening (§6.3).
	WideningThreshold int
	// Scheduler selects the fixpoint iteration order; the zero value is the
	// WTO schedule. Classifications are identical under either scheduler.
	Scheduler Scheduler
	// Exec selects the execution engine for the transfer loops; the zero
	// value is the bytecode-compiled form. Results are identical under
	// either engine — the interpreted (tree-walking) form is the
	// differential-testing reference.
	Exec bytecode.ExecMode
	// DisableUncertainty turns off uncertainty-focused speculation — the
	// classic must/may warm-start pre-pass and the certain-branch lane-spawn
	// skip — reverting to eager lane spawning. An ablation/benchmark knob
	// (the baseline arm of the scheduler experiment); not exposed through
	// the public configuration surface.
	DisableUncertainty bool
	// SetParallelism >= 1 partitions the block universe into independent
	// cache-set groups and runs one fixpoint per group, fanning the groups
	// across up to SetParallelism goroutines (1 = partitioned but serial).
	// 0 (the default) keeps the single dense fixpoint. Classifications are
	// identical at every value; only wall-clock and allocation change. With
	// a fully-associative cache (NumSets == 1) there is nothing to split and
	// the dense engine runs regardless.
	SetParallelism int
	// Collector, when non-nil, receives the run's fixpoint and partition
	// stats on completion (Result.Stats / Result.Partition always carry them
	// regardless; the collector is for callers aggregating several runs and
	// phases). A nil collector costs nothing on the hot path.
	Collector *obs.Collector
}

// DefaultOptions mirrors the paper's experimental setup: 512-line 64-byte
// fully-associative LRU cache, speculation depths 20 (hit) / 200 (miss),
// just-in-time merging, refined join, dynamic depth bounding on, WTO
// scheduling with uncertainty-focused speculation.
func DefaultOptions() Options {
	return Options{
		Cache:                layout.PaperConfig(),
		Speculative:          true,
		DepthMiss:            200,
		DepthHit:             20,
		DynamicDepthBounding: true,
		Strategy:             StrategyJustInTime,
		RefinedJoin:          true,
		WideningThreshold:    4,
		Scheduler:            SchedulerWTO,
		Exec:                 bytecode.ExecCompiled,
	}
}

// SpecFlow describes one color of the virtual control flow.
type SpecFlow struct {
	Branch    ir.BlockID // block ending in the conditional branch
	Predicted bool       // true: the True successor is speculated
	SpecSucc  ir.BlockID // vn_start target: entry of the speculated side
	OtherSucc ir.BlockID // rollback target: entry of the other side
	Stop      ir.BlockID // vn_stop: the branch's immediate post-dominator
}

// AccessInfo is the analysis verdict for one memory instruction on
// architectural flows (normal execution, including post-rollback cache
// pollution).
type AccessInfo struct {
	Instr *ir.Instr
	Block ir.BlockID
	Acc   cache.Access
	Class cache.Classification
}

// Result is a completed analysis.
type Result struct {
	Prog   *ir.Program
	Graph  *cfg.Graph
	Layout *layout.Layout
	Opts   Options

	// In[b] is the normal abstract state at the entry of block b after the
	// fixpoint (speculative contributions already merged per the strategy).
	In []*cache.State
	// SpecIn[b] maps partition id to the speculative state at b's entry
	// (JIT / per-rollback-block strategies only).
	SpecIn []map[int]*cache.State
	// Access maps instruction id to its architectural verdict.
	Access map[int]AccessInfo
	// SpecAccess maps instruction id to its verdict on wrong-path
	// (speculative lane) executions; these misses are invisible
	// architecturally but cost time in the pipeline (the paper's #SpMiss).
	SpecAccess map[int]cache.Classification

	// Iterations counts worklist block processings (the paper's #Iteration).
	Iterations int
	// PoolStats reports the engine's scratch-state reuse: Gets - News is the
	// number of state allocations the free list avoided.
	PoolStats cache.PoolStats
	// Branches counts conditional branches (= colors/2 when speculative).
	Branches int
	// Colors counts speculative flows considered.
	Colors int
	// Flows describes every speculative flow: the branch, the speculated
	// successor, the rollback target, and the vn_stop merge point (the
	// virtual control flow of §5.1 made explicit, e.g. for DOT export).
	Flows []SpecFlow

	// Stats carries the engine's semantic effort counters — deterministic
	// across repeated runs and worker counts; summed over the per-set-group
	// engines when partitioned. Partition describes the decomposition that
	// ran (Engines=1, Groups=0 for the dense engine, including the dense
	// fallback a trivial partition takes).
	Stats     obs.FixpointStats
	Partition obs.PartitionStats

	domain *cache.Domain
	idx    *interval.Result
}

// MissCount returns the number of static memory accesses not proved
// always-hit on architectural flows (the paper's #Miss).
func (r *Result) MissCount() int {
	n := 0
	for _, a := range r.Access {
		if a.Class != cache.AlwaysHit {
			n++
		}
	}
	return n
}

// SpecMissCount returns the number of static memory accesses not proved
// always-hit on speculative lanes (the paper's #SpMiss).
func (r *Result) SpecMissCount() int {
	n := 0
	for _, c := range r.SpecAccess {
		if c != cache.AlwaysHit {
			n++
		}
	}
	return n
}

// AccessCount returns the number of architecturally reachable memory
// accesses.
func (r *Result) AccessCount() int { return len(r.Access) }

// HitCount returns the number of accesses proved always-hit.
func (r *Result) HitCount() int { return r.AccessCount() - r.MissCount() }

// ClassOf returns the architectural verdict for a memory instruction, and
// whether the instruction is architecturally reachable.
func (r *Result) ClassOf(instrID int) (cache.Classification, bool) {
	a, ok := r.Access[instrID]
	return a.Class, ok
}

// AccessOf returns the resolved candidate blocks of a memory instruction.
func (r *Result) AccessOf(in *ir.Instr) cache.Access {
	return resolveAccess(r.Layout, r.idx, in)
}

// SpecAccessOf returns the candidate blocks of a memory instruction on
// wrong-path executions, where out-of-bounds indices reach adjacent memory.
func (r *Result) SpecAccessOf(in *ir.Instr) cache.Access {
	return resolveSpecAccess(r.Layout, r.idx, in)
}

// Domain exposes the cache domain used by the analysis (for diagnostics).
func (r *Result) Domain() *cache.Domain { return r.domain }

// IndexIntervals exposes the index analysis results.
func (r *Result) IndexIntervals() *interval.Result { return r.idx }

// Analyze runs the (speculative) abstract interpretation on prog.
func Analyze(prog *ir.Program, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), prog, opts)
}

// AnalyzeContext is Analyze with cancellation: the fixpoint loop polls ctx
// between worklist iterations and returns ctx.Err() once it is done. The
// analysis itself is pure, so a canceled run leaves no state behind.
func AnalyzeContext(ctx context.Context, prog *ir.Program, opts Options) (*Result, error) {
	if err := validateDepths(opts); err != nil {
		return nil, err
	}
	l, err := layout.New(prog, opts.Cache)
	if err != nil {
		return nil, err
	}
	g := cfg.New(prog)
	idx := interval.Analyze(g)
	access, accessSpec := dataAccessMaps(prog, l, idx)
	// Lower the transfer loops once, up front: the dense engine, every
	// per-set-group engine, and the depth group all share the compiled form
	// (access steps are unfiltered; the domain's set filter applies inside
	// Transfer/Classify as always).
	var code *bytecode.Program
	if opts.Exec == bytecode.ExecCompiled {
		opts.Collector.Phase("compile_exec", func() {
			code = bytecode.Compile(prog, access, accessSpec)
		})
		opts.Collector.SetBytecode(obs.BytecodeStats{
			Blocks:       int64(len(code.Blocks)),
			ArchSteps:    int64(code.ArchSteps),
			SpecSteps:    int64(code.SpecSteps),
			FencedBlocks: int64(code.FencedBlocks),
		})
	}
	var res *Result
	if opts.SetParallelism >= 1 {
		r, handled, perr := analyzePartitioned(ctx, prog, g, l, idx, opts, access, accessSpec, code)
		if perr != nil {
			return nil, perr
		}
		if handled {
			res = r
		}
	}
	if res == nil {
		e := newEngineShared(prog, g, l, idx, opts, access, accessSpec, code)
		var runErr error
		pprof.Do(ctx, pprof.Labels("phase", "fixpoint", "engine", "dense"), func(ctx context.Context) {
			runErr = e.run(ctx)
		})
		if runErr != nil {
			return nil, runErr
		}
		res = e.result()
		// The trivial-partition fallback lands here too, and must report the
		// same PartitionStats as a pure dense run: at any SetParallelism a
		// fully-associative config yields byte-identical stats.
		res.Partition = obs.PartitionStats{Engines: 1, Groups: 0, DepthGroup: -1}
	}
	opts.Collector.AddFixpoint(res.Stats)
	opts.Collector.SetPartition(res.Partition)
	return res, nil
}

func validateDepths(opts Options) error {
	if opts.DepthMiss < 0 || opts.DepthHit < 0 {
		return fmt.Errorf("core: speculation depths must be non-negative")
	}
	if opts.DepthHit > opts.DepthMiss {
		return fmt.Errorf("core: DepthHit (%d) must not exceed DepthMiss (%d)",
			opts.DepthHit, opts.DepthMiss)
	}
	return nil
}

// resolveAccess maps a memory instruction to its candidate cache blocks
// using the index intervals, clamped to the symbol: architecturally, an
// out-of-bounds access is a program fault, so in-bounds candidates suffice.
func resolveAccess(l *layout.Layout, idx *interval.Result, in *ir.Instr) cache.Access {
	sym := l.Prog.Symbol(in.Sym)
	iv := idx.IndexOf(in)
	if iv.IsSingle() && iv.Lo >= 0 && iv.Lo < int64(sym.Len) {
		return cache.Access{Sym: in.Sym, First: l.BlockOfElem(in.Sym, iv.Lo), Count: 1}
	}
	first, count := l.BlockRangeOfElems(in.Sym, iv.Lo, iv.Hi)
	return cache.Access{Sym: in.Sym, First: first, Count: count}
}

// resolveSpecAccess maps a memory instruction to candidate blocks on
// *wrong-path* executions, where an out-of-bounds index does not fault but
// reads whatever memory sits at the computed address (Spectre v1). The
// candidate range therefore extends beyond the symbol, clamped only to the
// program's address space.
func resolveSpecAccess(l *layout.Layout, idx *interval.Result, in *ir.Instr) cache.Access {
	sym := l.Prog.Symbol(in.Sym)
	iv := idx.IndexOf(in)
	if iv.Lo >= 0 && iv.Hi < int64(sym.Len) {
		return resolveAccess(l, idx, in)
	}
	base := l.Base[in.Sym]
	elemSize := int64(sym.ElemSize)
	end := l.AddressSpaceEnd()
	// Maximum element offset that stays inside the address space.
	maxElem := (end - base) / elemSize
	lo, hi := iv.Lo, iv.Hi
	if lo < 0 {
		lo = -base / elemSize // reaches address 0
	}
	if hi > maxElem {
		hi = maxElem
	}
	loAddr := base + lo*elemSize
	hiAddr := base + hi*elemSize
	if loAddr < 0 {
		loAddr = 0
	}
	if loAddr >= end {
		loAddr = end - 1
	}
	if hiAddr >= end {
		hiAddr = end - 1
	}
	if hiAddr < loAddr {
		hiAddr = loAddr
	}
	first := l.BlockOfAddr(loAddr)
	last := l.BlockOfAddr(hiAddr)
	return cache.Access{Sym: in.Sym, First: first, Count: int(last-first) + 1}
}
