package core

import (
	"specabsint/internal/absint"
	"specabsint/internal/cache"
	"specabsint/internal/cfg"
	"specabsint/internal/interval"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// cacheDomain adapts the abstract cache domain to the generic Algorithm-1
// solver, so the non-speculative baseline can be run through
// absint.Solve and cross-checked against the engine with Speculative=false.
type cacheDomain struct {
	dom    *cache.Domain
	l      *layout.Layout
	idx    *interval.Result
	access map[int]cache.Access
}

func (d *cacheDomain) Bottom() *cache.State { return cache.Bottom() }
func (d *cacheDomain) Entry() *cache.State  { return cache.NewState(d.l.NumBlocks) }

func (d *cacheDomain) TransferBlock(b *ir.Block, s *cache.State) *cache.State {
	out := s.Clone()
	for i := range b.Instrs {
		if acc, ok := d.access[b.Instrs[i].ID]; ok {
			d.dom.Transfer(out, acc)
		}
	}
	return out
}

func (d *cacheDomain) Join(a, b *cache.State) *cache.State { return d.dom.Join(a, b) }
func (d *cacheDomain) Leq(a, b *cache.State) bool          { return d.dom.Leq(a, b) }
func (d *cacheDomain) Widen(prev, next *cache.State) *cache.State {
	return d.dom.Widen(prev, next)
}

// AnalyzeAlgorithm1 runs the plain (non-speculative) cache analysis through
// the generic absint solver. It exists to validate that the speculative
// engine with Speculative=false computes the same fixpoint as the textbook
// Algorithm 1.
func AnalyzeAlgorithm1(prog *ir.Program, opts Options) (*Result, error) {
	l, err := layout.New(prog, opts.Cache)
	if err != nil {
		return nil, err
	}
	g := cfg.New(prog)
	idx := interval.Analyze(g)
	d := &cacheDomain{
		dom:    &cache.Domain{L: l, Refined: opts.RefinedJoin},
		l:      l,
		idx:    idx,
		access: map[int]cache.Access{},
	}
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				d.access[in.ID] = resolveAccess(l, idx, in)
			}
		}
	}
	sol := absint.Solve[*cache.State](g, d, absint.Options{
		WideningThreshold: opts.WideningThreshold,
	})
	res := &Result{
		Prog:       prog,
		Graph:      g,
		Layout:     l,
		Opts:       opts,
		In:         sol.In,
		SpecIn:     make([]map[int]*cache.State, len(prog.Blocks)),
		Access:     map[int]AccessInfo{},
		SpecAccess: map[int]cache.Classification{},
		Iterations: sol.Iterations,
		Branches:   prog.CondBranchCount(),
		domain:     d.dom,
		idx:        idx,
	}
	for _, b := range prog.Blocks {
		if sol.In[b.ID].IsBottom {
			continue
		}
		st := sol.In[b.ID].Clone()
		for i := range b.Instrs {
			in := &b.Instrs[i]
			acc, ok := d.access[in.ID]
			if !ok {
				continue
			}
			res.Access[in.ID] = AccessInfo{
				Instr: in, Block: b.ID, Acc: acc, Class: d.dom.Classify(st, acc),
			}
			d.dom.Transfer(st, acc)
		}
	}
	return res, nil
}
