package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"specabsint/internal/bench"
	"specabsint/internal/cache"
	"specabsint/internal/cfg"
	"specabsint/internal/gen"
	"specabsint/internal/interval"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/machine"
)

// setAssocConfig is the geometry the partition tests run on: enough sets for
// the grouping to split real programs, small enough associativity that
// classifications stay interesting.
var setAssocConfig = layout.CacheConfig{LineSize: 64, NumSets: 64, Assoc: 8}

// compileCorpus compiles every corpus benchmark (side-channel kernels get
// the standard client wrapper so they have a main).
func compileCorpus(t *testing.T) map[string]*ir.Program {
	t.Helper()
	progs := map[string]*ir.Program{}
	for _, b := range bench.All() {
		code := b.Code
		if b.Kind == bench.SideChannel {
			code = bench.WithClient(b, 4096)
		}
		prog, err := bench.Compile(code, 0)
		if err != nil {
			t.Fatalf("compile %s: %v", b.Name, err)
		}
		progs[b.Name] = prog
	}
	return progs
}

// requireSameResult asserts that two analyses agree on everything a caller
// can observe: classification maps, per-block normal states, and (for the
// same engine kind) iteration counts.
func requireSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(got.Access) != len(want.Access) {
		t.Fatalf("%s: %d classified accesses, want %d", label, len(got.Access), len(want.Access))
	}
	for id, w := range want.Access {
		g, ok := got.Access[id]
		if !ok || g.Class != w.Class {
			t.Fatalf("%s: instr %d classified %v, want %v", label, id, g.Class, w.Class)
		}
	}
	if len(got.SpecAccess) != len(want.SpecAccess) {
		t.Fatalf("%s: %d spec accesses, want %d", label, len(got.SpecAccess), len(want.SpecAccess))
	}
	for id, w := range want.SpecAccess {
		if g, ok := got.SpecAccess[id]; !ok || g != w {
			t.Fatalf("%s: spec instr %d classified %v, want %v", label, id, g, w)
		}
	}
	for b := range want.In {
		if !want.In[b].Equal(got.In[b]) {
			t.Fatalf("%s: In state of block %d differs", label, b)
		}
	}
}

// TestPartitionedMatchesDenseCorpus is the PR's headline equivalence
// guarantee: the per-set partitioned engine produces byte-identical
// classifications to the dense engine on the whole corpus, at 1, 4, and
// NumCPU set-workers, and identical results (including iteration counts)
// across worker counts.
func TestPartitionedMatchesDenseCorpus(t *testing.T) {
	if raceDetectorOn {
		t.Skip("full-corpus sweep is too slow under the race detector; see TestPartitionedFanOutRace")
	}
	progs := compileCorpus(t)
	workersList := []int{1, 4, runtime.NumCPU()}
	for name, prog := range progs {
		if testing.Short() && name != "susan" && name != "jcmarker" {
			continue
		}
		opts := DefaultOptions()
		opts.Cache = setAssocConfig
		dense, err := Analyze(prog, opts)
		if err != nil {
			t.Fatalf("%s dense: %v", name, err)
		}
		var first *Result
		for _, w := range workersList {
			opts.SetParallelism = w
			part, err := Analyze(prog, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			requireSameResult(t, fmt.Sprintf("%s workers=%d vs dense", name, w), dense, part)
			if first == nil {
				first = part
			} else {
				if part.Iterations != first.Iterations {
					t.Fatalf("%s workers=%d: %d iterations, want %d (must not depend on worker count)",
						name, w, part.Iterations, first.Iterations)
				}
				if part.Stats != first.Stats {
					t.Fatalf("%s workers=%d: semantic counters depend on worker count:\n got %+v\nwant %+v",
						name, w, part.Stats, first.Stats)
				}
				if part.Partition != first.Partition {
					t.Fatalf("%s workers=%d: partition stats depend on worker count:\n got %+v\nwant %+v",
						name, w, part.Partition, first.Partition)
				}
			}
		}
	}
}

// TestPartitionedMatchesDenseStrategies re-checks equivalence on the
// kernels known to split into many groups, across the merge strategies and
// with dynamic depth bounding both on and off (the depth oracle is only
// exercised when it is on).
func TestPartitionedMatchesDenseStrategies(t *testing.T) {
	if raceDetectorOn {
		t.Skip("full-corpus sweep is too slow under the race detector; see TestPartitionedFanOutRace")
	}
	if testing.Short() {
		t.Skip("strategy cross-product is slow; the corpus test covers the default strategy")
	}
	progs := compileCorpus(t)
	for _, name := range []string{"susan", "jcmarker", "stc"} {
		prog, ok := progs[name]
		if !ok {
			t.Fatalf("kernel %q missing from corpus", name)
		}
		for _, strat := range []Strategy{StrategyJustInTime, StrategyMergeAtRollback, StrategyPerRollbackBlock} {
			for _, ddb := range []bool{true, false} {
				opts := DefaultOptions()
				opts.Cache = setAssocConfig
				opts.Strategy = strat
				opts.DynamicDepthBounding = ddb
				dense, err := Analyze(prog, opts)
				if err != nil {
					t.Fatalf("%s dense: %v", name, err)
				}
				opts.SetParallelism = 4
				part, err := Analyze(prog, opts)
				if err != nil {
					t.Fatalf("%s part: %v", name, err)
				}
				label := fmt.Sprintf("%s strategy=%v ddb=%v", name, strat, ddb)
				requireSameResult(t, label, dense, part)
			}
		}
	}
}

// TestPartitionedMatchesDenseRandom is the property test: on random MiniC
// programs (the shared internal/gen generator) the pooled+partitioned engine
// must classify exactly like the serial dense engine — including when the
// grouping collapses and the dense fallback kicks in — at SetParallelism
// 0, 1, 4, and NumCPU. On the same corpus it re-checks the oracle soundness
// property concretely: the partitioned verdicts must over-approximate a
// forced-mispredict speculative execution (this sweep also runs under the
// race detector, with a smaller corpus).
func TestPartitionedMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	n := 40
	if raceDetectorOn || testing.Short() {
		n = 8
	}
	workersList := []int{1, 4, runtime.NumCPU()}
	for trial := 0; trial < n; trial++ {
		src := gen.Source(rng)
		prog := compile(t, src)
		opts := DefaultOptions()
		opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 8, Assoc: 4}
		opts.DepthMiss = 30
		opts.DepthHit = 30
		opts.SetParallelism = 0
		dense, err := Analyze(prog, opts)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		var first *Result
		for _, w := range workersList {
			opts.SetParallelism = w
			part, err := Analyze(prog, opts)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			requireSameResult(t, fmt.Sprintf("trial %d workers=%d", trial, w), dense, part)
			if first == nil {
				first = part
			} else if part.Stats != first.Stats || part.Partition != first.Partition {
				t.Fatalf("trial %d workers=%d: stats depend on worker count:\n got %+v %+v\nwant %+v %+v",
					trial, w, part.Stats, part.Partition, first.Stats, first.Partition)
			}
		}
		// Concrete oracle check on the partitioned configuration: identical
		// results make one simulation cover every worker count.
		opts.SetParallelism = workersList[len(workersList)-1]
		simCfg := machine.Config{
			Cache:           opts.Cache,
			ForceMispredict: true,
			WrongPathOOB:    true,
			DepthMiss:       opts.DepthMiss,
			DepthHit:        opts.DepthHit,
			MaxSteps:        5_000_000,
		}
		checkSoundness(t, prog, opts, simCfg, fmt.Sprintf("trial %d partitioned", trial))
	}
}

// TestPartitionedFanOutRace drives the goroutine fan-out under the race
// detector (the CI race job runs all tests): group engines must share
// nothing mutable.
func TestPartitionedFanOutRace(t *testing.T) {
	b, ok := bench.ByName("jcmarker")
	if !ok {
		t.Fatal("jcmarker not in corpus")
	}
	prog, err := bench.Compile(b.Code, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Cache = setAssocConfig
	opts.SetParallelism = runtime.NumCPU() + 2
	if opts.SetParallelism < 4 {
		opts.SetParallelism = 4
	}
	res, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.AccessCount() == 0 {
		t.Fatal("no accesses classified")
	}
}

// TestPartitionGrouping pins the structural properties the equivalence
// argument rests on: groups are disjoint, every access's candidate sets lie
// in one group, and all branch-slice loads share the depth group.
func TestPartitionGrouping(t *testing.T) {
	progs := compileCorpus(t)
	for name, prog := range progs {
		opts := DefaultOptions()
		opts.Cache = setAssocConfig
		l, err := layout.New(prog, opts.Cache)
		if err != nil {
			t.Fatal(err)
		}
		g := cfg.New(prog)
		idx := interval.Analyze(g)
		access, accessSpec := dataAccessMaps(prog, l, idx)
		part := partitionSets(prog, l, opts, access, accessSpec)

		groupOf := make([]int, l.Config.NumSets)
		for i := range groupOf {
			groupOf[i] = -1
		}
		for gi, sets := range part.groups {
			for _, s := range sets {
				if groupOf[s] != -1 {
					t.Fatalf("%s: set %d in groups %d and %d", name, s, groupOf[s], gi)
				}
				groupOf[s] = gi
			}
		}
		check := func(acc cache.Access) {
			first := groupOf[l.SetOf(acc.First)]
			n := acc.Count
			if n > l.Config.NumSets {
				n = l.Config.NumSets
			}
			for i := 0; i < n; i++ {
				if got := groupOf[l.SetOf(acc.First+layout.BlockID(i))]; got != first {
					t.Fatalf("%s: access %+v spans groups %d and %d", name, acc, first, got)
				}
			}
		}
		for _, acc := range access {
			check(acc)
		}
		for _, acc := range accessSpec {
			check(acc)
		}
		if part.depthGroup >= 0 {
			for _, b := range prog.Blocks {
				tm := b.Terminator()
				if tm == nil || tm.Op != ir.OpCondBr {
					continue
				}
				loads, resolved := branchSlice(b)
				if !resolved {
					continue
				}
				for id := range loads {
					acc, ok := access[id]
					if !ok {
						continue
					}
					if got := groupOf[l.SetOf(acc.First)]; got != part.depthGroup {
						t.Fatalf("%s: slice load %d in group %d, depth group is %d", name, id, got, part.depthGroup)
					}
				}
			}
		}
	}
}
