package core

import (
	"fmt"
	"math/rand"
	"testing"

	"specabsint/internal/cache"
	"specabsint/internal/gen"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/machine"
)

// checkSoundness runs the analysis and the concrete simulator with aligned
// speculation windows and asserts the analysis verdicts over-approximate
// the observed behaviour.
func checkSoundness(t *testing.T, prog *ir.Program, opts Options, simCfg machine.Config, label string) {
	t.Helper()
	res, err := Analyze(prog, opts)
	if err != nil {
		t.Fatalf("%s: analyze: %v", label, err)
	}
	sim, err := machine.New(prog, simCfg)
	if err != nil {
		t.Fatalf("%s: sim: %v", label, err)
	}
	violations := 0
	sim.OnAccess = func(r machine.AccessRecord) {
		if violations > 3 {
			return
		}
		if r.Speculative {
			cls, ok := res.SpecAccess[r.InstrID]
			if !ok {
				violations++
				t.Errorf("%s: instr %d executed speculatively but never lane-analyzed", label, r.InstrID)
				return
			}
			if cls == cache.AlwaysHit && !r.Hit {
				violations++
				t.Errorf("%s: instr %d lane-classified always-hit but missed speculatively", label, r.InstrID)
			}
			if cls == cache.AlwaysMiss && r.Hit {
				violations++
				t.Errorf("%s: instr %d lane-classified always-miss but hit speculatively", label, r.InstrID)
			}
			return
		}
		cls, ok := res.ClassOf(r.InstrID)
		if !ok {
			violations++
			t.Errorf("%s: instr %d executed but not classified", label, r.InstrID)
			return
		}
		if cls == cache.AlwaysHit && !r.Hit {
			violations++
			t.Errorf("%s: instr %d classified always-hit but missed (block %d)", label, r.InstrID, r.Block)
		}
		if cls == cache.AlwaysMiss && r.Hit {
			violations++
			t.Errorf("%s: instr %d classified always-miss but hit (block %d)", label, r.InstrID, r.Block)
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("%s: sim run: %v", label, err)
	}
}

// TestSoundnessRandomPrograms is the oracle property of the paper: every
// verdict of the speculative analysis must hold on concrete executions with
// wrong-path cache pollution, across cache shapes, merge strategies, and
// predictors.
func TestSoundnessRandomPrograms(t *testing.T) {
	caches := []layout.CacheConfig{
		{LineSize: 64, NumSets: 1, Assoc: 4},
		{LineSize: 64, NumSets: 2, Assoc: 2},
		{LineSize: 64, NumSets: 1, Assoc: 8},
		{LineSize: 32, NumSets: 4, Assoc: 2},
	}
	strategies := []Strategy{StrategyJustInTime, StrategyMergeAtRollback, StrategyPerRollbackBlock}
	depths := []int{0, 8, 60}

	// gen.Source reproduces the historical in-package generator byte for
	// byte (pinned by gen's TestDefaultMatchesHistoricalGenerator), so seeds
	// 1..25 still regenerate the original regression programs.
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := gen.Source(rng)
		prog := compile(t, src)
		cc := caches[seed%int64(len(caches))]
		strat := strategies[seed%int64(len(strategies))]
		depth := depths[seed%int64(len(depths))]

		opts := DefaultOptions()
		opts.Cache = cc
		opts.Strategy = strat
		opts.DepthMiss = depth
		opts.DepthHit = depth
		opts.RefinedJoin = seed%2 == 0

		for _, pred := range []machine.Predictor{
			machine.NewTwoBit(),
			machine.NewAdversarial(),
			machine.NewGShare(8),
		} {
			simCfg := machine.Config{
				Cache:        cc,
				Predictor:    pred,
				DepthMiss:    depth,
				DepthHit:     depth,
				WrongPathOOB: true,
				MaxSteps:     5_000_000,
			}
			label := fmt.Sprintf("seed=%d strat=%v depth=%d pred=%s", seed, strat, depth, pred.Name())
			checkSoundness(t, prog, opts, simCfg, label)
		}
		// Maximal pollution: every branch mispredicted.
		simCfg := machine.Config{
			Cache: cc, ForceMispredict: true, WrongPathOOB: true,
			DepthMiss: depth, DepthHit: depth, MaxSteps: 5_000_000,
		}
		checkSoundness(t, prog, opts, simCfg, fmt.Sprintf("seed=%d forced", seed))
	}
}

// TestNonSpeculativeBaselineIsUnsound reproduces the paper's headline
// argument: the classic analysis (Algorithm 1) claims ph[k] always hits, but
// a mis-speculated execution makes it miss.
func TestNonSpeculativeBaselineIsUnsound(t *testing.T) {
	prog := compile(t, fig2Source)
	opts := DefaultOptions()
	opts.Speculative = false
	res, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := machine.New(prog, machine.Config{
		Cache:           layout.PaperConfig(),
		ForceMispredict: true,
		WrongPathOOB:    true,
		DepthMiss:       3,
		DepthHit:        3,
		MaxSteps:        5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	unsound := false
	sim.OnAccess = func(r machine.AccessRecord) {
		if r.Speculative {
			return
		}
		if cls, ok := res.ClassOf(r.InstrID); ok && cls == cache.AlwaysHit && !r.Hit {
			unsound = true
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !unsound {
		t.Error("expected the non-speculative baseline to be violated by the " +
			"speculative execution (the paper's motivating unsoundness)")
	}
}

// TestSpeculativeAnalysisSoundOnFig2 is the positive counterpart: the
// speculation-aware analysis survives the same adversarial execution.
func TestSpeculativeAnalysisSoundOnFig2(t *testing.T) {
	prog := compile(t, fig2Source)
	opts := DefaultOptions()
	opts.DepthMiss = 3
	opts.DepthHit = 3
	simCfg := machine.Config{
		Cache:           layout.PaperConfig(),
		ForceMispredict: true,
		WrongPathOOB:    true,
		DepthMiss:       3,
		DepthHit:        3,
		MaxSteps:        5_000_000,
	}
	checkSoundness(t, prog, opts, simCfg, "fig2-speculative")
}

// TestSoundnessQuantl checks the running example of §6.1 end to end.
func TestSoundnessQuantl(t *testing.T) {
	src := `
	int decis_levl[30] = { 280,576,880,1200,1520,1864,2208,2584,2960,3376,
		3784,4240,4696,5200,5712,6288,6864,7520,8184,8968,9752,10712,11664,
		12896,14120,15840,17560,20456,23352,32767 };
	int quant26bt_pos[31] = { 61,60,59,58,57,56,55,54,53,52,51,50,49,48,47,
		46,45,44,43,42,41,40,39,38,37,36,35,34,33,32,32 };
	int quant26bt_neg[31] = { 63,62,31,30,29,28,27,26,25,24,23,22,21,20,19,
		18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,4 };
	int my_abs(int x) { if (x < 0) { return -x; } return x; }
	int quantl(int el, int detl) {
		int ril; int mil;
		long wd; long decis;
		wd = my_abs(el);
		for (mil = 0; mil < 30; mil++) {
			decis = (decis_levl[mil] * (long)detl) >> 15;
			if (wd <= decis) break;
		}
		if (el >= 0) { ril = quant26bt_pos[mil]; }
		else { ril = quant26bt_neg[mil]; }
		return ril;
	}
	int main(int el) { return quantl(el - 3000, 32767); }`
	prog := compile(t, src)
	for _, depth := range []int{0, 10, 100} {
		opts := DefaultOptions()
		opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8}
		opts.DepthMiss = depth
		opts.DepthHit = depth
		simCfg := machine.Config{
			Cache:           opts.Cache,
			ForceMispredict: true,
			WrongPathOOB:    true,
			DepthMiss:       depth,
			DepthHit:        depth,
			MaxSteps:        5_000_000,
		}
		checkSoundness(t, prog, opts, simCfg, fmt.Sprintf("quantl-depth-%d", depth))
	}
}
