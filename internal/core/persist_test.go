package core

import (
	"testing"

	"specabsint/internal/cache"
	"specabsint/internal/layout"
	"specabsint/internal/machine"
)

// loopReuse re-reads the same small table every iteration of a
// data-dependent loop (which the front end cannot unroll).
const loopReuse = `
int tbl[16];
int acc;
int main(int n) {
	int i = 0;
	while (i < n) {
		acc = acc + tbl[i & 15];
		i = i + 1;
	}
	return acc;
}`

func TestPersistenceUpgradesLoopAccesses(t *testing.T) {
	prog := compile(t, loopReuse)
	opts := DefaultOptions()
	opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8}

	must, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	persist, err := AnalyzePersistence(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl := loadsOf(prog, "tbl")[0]
	mustCls, _ := must.ClassOf(tbl.ID)
	persistCls, _ := persist.ClassOf(tbl.ID)
	if mustCls == cache.AlwaysHit {
		t.Fatalf("must analysis proved the cold-start access always-hit?")
	}
	if persistCls != cache.AlwaysHit {
		t.Errorf("table access not persistent (%v): once loaded, nothing evicts it", persistCls)
	}
}

func TestPersistenceRespectsCapacity(t *testing.T) {
	// The loop's working set exceeds the cache: nothing is persistent.
	src := `
	int tbl[64];
	int acc;
	int main(int n) {
		int i = 0;
		while (i < n) {
			acc = acc + tbl[i & 63];
			i = i + 1;
		}
		return acc;
	}`
	prog := compile(t, src)
	opts := DefaultOptions()
	opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 3}
	persist, err := AnalyzePersistence(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl := loadsOf(prog, "tbl")[0]
	if cls, _ := persist.ClassOf(tbl.ID); cls == cache.AlwaysHit {
		t.Error("access persistent despite the working set exceeding the cache")
	}
}

func TestPersistenceBrokenBySpeculation(t *testing.T) {
	// Architecturally the loop touches five lines (x, a, acc, i, n) — x is
	// persistent in a 6-line cache. But the bounds-guarded access reads far
	// out of bounds on mis-speculated paths, sweeping the filler region and
	// evicting x: only wrong paths supply the eviction pressure.
	src := `
	int x;
	int a[4];
	int filler[1024];
	int acc;
	int main(int n) {
		int i = 0;
		acc = x;
		while (i < n) {
			if (i >= 0 && i < 4) { acc = acc + a[i]; }
			acc = acc + x;
			i = i + 1;
		}
		return acc;
	}`
	prog := compile(t, src)
	opts := DefaultOptions()
	opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 6}

	base := opts
	base.Speculative = false
	nonspec, err := AnalyzePersistence(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := AnalyzePersistence(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	xLoads := loadsOf(prog, "x")
	final := xLoads[len(xLoads)-1]
	if cls, _ := nonspec.ClassOf(final.ID); cls != cache.AlwaysHit {
		t.Fatalf("non-speculative: x not persistent (%v)", cls)
	}
	if cls, _ := spec.ClassOf(final.ID); cls == cache.AlwaysHit {
		t.Error("speculative wrong paths can evict x; persistence must not survive")
	}
}

// TestPersistenceSoundConcretely: an access classified persistent misses at
// most once in any concrete run, including adversarially mis-speculated
// ones.
func TestPersistenceSoundConcretely(t *testing.T) {
	prog := compile(t, loopReuse)
	opts := DefaultOptions()
	opts.Cache = layout.CacheConfig{LineSize: 64, NumSets: 1, Assoc: 8}
	opts.DepthMiss, opts.DepthHit = 40, 40
	persist, err := AnalyzePersistence(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := machine.New(prog, machine.Config{
		Cache:           opts.Cache,
		ForceMispredict: true,
		WrongPathOOB:    true,
		DepthMiss:       40,
		DepthHit:        40,
		MaxSteps:        5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	missCount := map[int]int{}
	sim.OnAccess = func(r machine.AccessRecord) {
		if !r.Speculative && !r.Hit {
			missCount[r.InstrID]++
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for id, info := range persist.Access {
		if info.Class != cache.AlwaysHit {
			continue
		}
		// Persistent means at most `candidate blocks` first-misses in total
		// (each candidate line can cold-miss once).
		if missCount[id] > info.Acc.Count {
			t.Errorf("instr %d classified persistent but missed %d times (candidates %d)",
				id, missCount[id], info.Acc.Count)
		}
	}
}
