package core

import (
	"runtime"
	"testing"
	"time"

	"specabsint/internal/bench"
	"specabsint/internal/ir"
	"specabsint/internal/obs"
)

// compileBench compiles one corpus kernel (raw code; the caller picks
// WCET-kind kernels that already have a main).
func compileBench(t *testing.T, name string) *ir.Program {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("kernel %q not in corpus", name)
	}
	prog, err := bench.Compile(b.Code, 0)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return prog
}

// TestStatsFullyAssociativeAcrossParallelism pins the strongest form of the
// determinism contract: on the paper's fully-associative cache the partition
// never splits, every SetParallelism value falls back to the single dense
// fixpoint, and the whole stats block — semantic counters AND partition
// shape — is byte-identical at 0, 1, 4, and NumCPU workers.
func TestStatsFullyAssociativeAcrossParallelism(t *testing.T) {
	prog := compile(t, bench.Fig2Program(-1))
	var first *Result
	for _, w := range []int{0, 1, 4, runtime.NumCPU()} {
		opts := DefaultOptions()
		opts.SetParallelism = w
		res, err := Analyze(prog, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		want := obs.PartitionStats{Engines: 1, Groups: 0, DepthGroup: -1}
		if res.Partition != want {
			t.Fatalf("workers=%d: partition %+v, want dense fallback %+v", w, res.Partition, want)
		}
		if first == nil {
			first = res
		} else if res.Stats != first.Stats {
			t.Fatalf("workers=%d: stats differ from workers=0:\n got %+v\nwant %+v", w, res.Stats, first.Stats)
		}
	}
	// The counters must also be live, not zero-value placeholders.
	st := first.Stats
	if st.Iterations == 0 || st.Transfers == 0 || st.Joins == 0 || st.Colors == 0 || st.LanesSpawned == 0 {
		t.Fatalf("implausibly idle fixpoint counters: %+v", st)
	}
	if st.Iterations != int64(first.Iterations) {
		t.Fatalf("Stats.Iterations=%d disagrees with Result.Iterations=%d", st.Iterations, first.Iterations)
	}
}

// TestStatsRepeatedRunsDeterministic re-runs the same set-associative,
// parallel analysis and requires identical counters every time: goroutine
// scheduling may reorder the per-group engines but must not change what any
// of them computes.
func TestStatsRepeatedRunsDeterministic(t *testing.T) {
	prog := compileBench(t, "jcmarker")
	opts := DefaultOptions()
	opts.Cache = setAssocConfig
	opts.SetParallelism = 4
	var first *Result
	runs := 3
	if raceDetectorOn || testing.Short() {
		runs = 2
	}
	for i := 0; i < runs; i++ {
		res, err := Analyze(prog, opts)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if first == nil {
			first = res
			if res.Partition.Engines < 1 {
				t.Fatalf("partition reports %d engines", res.Partition.Engines)
			}
			continue
		}
		if res.Stats != first.Stats || res.Partition != first.Partition {
			t.Fatalf("run %d: stats drifted:\n got %+v %+v\nwant %+v %+v",
				i, res.Stats, res.Partition, first.Stats, first.Partition)
		}
	}
}

// TestStatsCollectorFlush checks the collector plumbing end to end at the
// core layer: a run with a collector snapshots exactly the counters the
// Result carries, and a nil collector changes nothing about the analysis.
func TestStatsCollectorFlush(t *testing.T) {
	prog := compile(t, bench.Fig2Program(-1))
	opts := DefaultOptions()
	col := obs.NewCollector()
	opts.Collector = col
	withCol, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if snap.Fixpoint != withCol.Stats {
		t.Fatalf("collector fixpoint %+v, result carries %+v", snap.Fixpoint, withCol.Stats)
	}
	if snap.Partition != withCol.Partition {
		t.Fatalf("collector partition %+v, result carries %+v", snap.Partition, withCol.Partition)
	}
	opts.Collector = nil
	without, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if without.Stats != withCol.Stats {
		t.Fatalf("collector presence changed semantic counters:\n nil %+v\n col %+v", without.Stats, withCol.Stats)
	}
	requireSameResult(t, "nil vs collector", withCol, without)
}

// TestCollectorOverhead is the observability layer's performance contract:
// attaching a collector may not slow the fixpoint on the medium reference
// kernel by more than 2%. Rounds are interleaved and compared by minimum so
// one scheduling hiccup cannot fail the build, and a measurement that still
// exceeds the bound is repeated from scratch before failing: external load
// (the rest of `go test ./...` saturating every core) can only inflate a
// sample, so a genuine regression fails every attempt while transient
// contention does not.
func TestCollectorOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round wall-clock benchmark; skipped in -short")
	}
	if raceDetectorOn {
		t.Skip("race instrumentation distorts the timing comparison")
	}
	prog := compileBench(t, "g72")
	opts := DefaultOptions()
	if _, err := Analyze(prog, opts); err != nil { // warm-up
		t.Fatal(err)
	}
	run := func(col *obs.Collector) time.Duration {
		opts.Collector = col
		runtime.GC() // don't bill one sample for the previous sample's garbage
		start := time.Now()
		if _, err := Analyze(prog, opts); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure := func() (minNil, minCol time.Duration) {
		const rounds = 6
		minNil, minCol = time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < rounds; i++ {
			// Alternate the order so slow drift (thermal, background
			// load) penalizes both configurations equally.
			if i%2 == 0 {
				if d := run(nil); d < minNil {
					minNil = d
				}
				if d := run(obs.NewCollector()); d < minCol {
					minCol = d
				}
			} else {
				if d := run(obs.NewCollector()); d < minCol {
					minCol = d
				}
				if d := run(nil); d < minNil {
					minNil = d
				}
			}
		}
		return minNil, minCol
	}
	const attempts = 3
	var minNil, minCol time.Duration
	var ratio float64
	for a := 1; a <= attempts; a++ {
		minNil, minCol = measure()
		if minNil <= 0 {
			t.Skipf("clock too coarse: nil run measured %v", minNil)
		}
		ratio = float64(minCol) / float64(minNil)
		t.Logf("attempt %d: min nil=%v collector=%v ratio=%.4f", a, minNil, minCol, ratio)
		if ratio <= 1.02 {
			return
		}
	}
	t.Fatalf("collector overhead %.2f%% exceeds 2%% on all %d attempts (nil %v, collector %v)",
		(ratio-1)*100, attempts, minNil, minCol)
}
