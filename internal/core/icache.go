package core

import (
	"context"

	"specabsint/internal/bytecode"
	"specabsint/internal/cache"
	"specabsint/internal/cfg"
	"specabsint/internal/interval"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
)

// AnalyzeInstructionCache runs the speculation-aware analysis on the
// *instruction* cache: every instruction's fetch touches its code block, and
// wrong-path fetches pollute the i-cache exactly like wrong-path loads
// pollute the d-cache. The paper notes this extension in §3.2; it reuses
// the identical fixpoint machinery — only the access map changes (every
// instruction accesses its statically-known code block), which also makes
// the analysis exact per access (no index uncertainty).
//
// Dynamic depth bounding is disabled: the speculation window depends on
// *data*-cache residency of the branch condition, which this analysis does
// not track, so the conservative b_m window is used throughout.
func AnalyzeInstructionCache(prog *ir.Program, opts Options) (*Result, error) {
	return AnalyzeInstructionCacheContext(context.Background(), prog, opts)
}

// AnalyzeInstructionCacheContext is AnalyzeInstructionCache with
// cancellation.
func AnalyzeInstructionCacheContext(ctx context.Context, prog *ir.Program, opts Options) (*Result, error) {
	if err := validateDepths(opts); err != nil {
		return nil, err
	}
	codeL, fetchBlocks, err := layout.CodeLayout(prog, opts.Cache)
	if err != nil {
		return nil, err
	}
	opts.DynamicDepthBounding = false
	g := cfg.New(prog)
	idx := interval.Analyze(g)
	e := newEngine(prog, g, codeL, idx, opts)
	// Replace the data-access maps with instruction fetches: every
	// instruction touches exactly its code block, on right and wrong paths
	// alike.
	fetch := make(map[int]cache.Access, prog.NumInstrs)
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			id := b.Instrs[i].ID
			fetch[id] = cache.Access{First: fetchBlocks[id], Count: 1}
		}
	}
	e.access = fetch
	e.accessSpec = fetch
	if e.code != nil {
		// The engine was compiled against the data-access maps; relower it
		// against the fetch map so the compiled walks see the same accesses
		// the tree-walking loops would.
		e.code = bytecode.Compile(prog, fetch, fetch)
	}
	if err := e.run(ctx); err != nil {
		return nil, err
	}
	return e.result(), nil
}
