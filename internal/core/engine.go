package core

import (
	"container/heap"
	"context"

	"specabsint/internal/bytecode"
	"specabsint/internal/cache"
	"specabsint/internal/cfg"
	"specabsint/internal/interval"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/obs"
)

// color identifies one speculative flow: branch block + predicted direction
// (§6.4, Algorithm 3: one independent speculative state per color).
type color struct {
	id        int
	branch    ir.BlockID
	predicted bool       // true: the True successor is speculated
	specSucc  ir.BlockID // entry of the speculated side
	otherSucc ir.BlockID // entry of the side rolled back to
	stop      ir.BlockID // vn_stop: immediate post-dominator of branch
}

// laneVal is a wrong-path exploration state with its remaining instruction
// budget. Budgets join by max: exploring deeper than the hardware would
// only over-approximates.
type laneVal struct {
	st     *cache.State
	budget int
}

// partition is one SS flow: a color, plus (for per-rollback-block
// partitioning) the block where the rollback occurred.
type partition struct {
	color *color
	src   ir.BlockID // -1 for the merged (JIT) partition
}

type partKey struct {
	colorID int
	src     ir.BlockID
}

// flowKey names a flow at a block for speculation-depth purposes: the normal
// flow is {-1, -1}; an SS flow is its partition's (colorID, src). Unlike
// partition ids (interned in encounter order, which differs between
// engines), flow keys are stable across the dense and per-set-group engines.
type flowKey struct {
	colorID int
	src     ir.BlockID
}

var normalFlow = flowKey{colorID: -1, src: -1}

// depthOracle records the converged speculation depth per (branch block,
// flow). The per-set partitioned analysis needs it because §6.2's dynamic
// depth bounding classifies the branch-condition loads — state owned by
// whichever set group holds those loads' cache sets — yet the resulting
// budget steers lane propagation in every group. The group union holding all
// branch-slice loads runs first with live depth computation; its converged
// depths are then fixed constants for the remaining groups. The two systems
// have the same least fixpoint: depths only grow b_h → b_m as states weaken
// (monotone feedback), so running with the final depths from the start
// over-approximates every live iterate yet agrees with the live system at
// its fixpoint.
type depthOracle map[depthKey]int

type depthKey struct {
	block ir.BlockID
	flow  flowKey
}

// blockHeap is a worklist ordered by reverse postorder, which minimizes
// re-iteration of downstream blocks.
type blockHeap struct {
	order []int // RPO index per block
	items []ir.BlockID
}

func (h *blockHeap) Len() int           { return len(h.items) }
func (h *blockHeap) Less(i, j int) bool { return h.order[h.items[i]] < h.order[h.items[j]] }
func (h *blockHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *blockHeap) Push(x any)         { h.items = append(h.items, x.(ir.BlockID)) }
func (h *blockHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

type engine struct {
	prog *ir.Program
	g    *cfg.Graph
	l    *layout.Layout
	dom  *cache.Domain
	idx  *interval.Result
	opts Options

	access map[int]cache.Access // per mem-instr id, architectural (in-bounds)
	// accessSpec resolves the same instructions on wrong paths, where
	// out-of-bounds indices reach adjacent memory instead of faulting
	// (Spectre v1); used by the lanes.
	accessSpec map[int]cache.Access
	// code is the bytecode-compiled transfer program (ExecCompiled), nil
	// under ExecInterp. When non-nil, transferBlock, laneWalk, classify, and
	// depthForLive iterate its pre-resolved access steps instead of
	// re-walking b.Instrs with an access-map lookup per instruction; the
	// tree-walking loops remain the differential reference. Shared read-only
	// across the per-set-group engines.
	code *bytecode.Program

	S  []*cache.State
	SS []map[int]*cache.State
	// Lane[n] is indexed by color id and allocated lazily on the first lane
	// reaching n (a dense slice: every condbr seeds all its colors, so maps
	// only added bucket churn on the hottest join). budget < 0 marks a slot
	// no lane has reached yet.
	Lane [][]laneVal

	// dirty flags: which flows at a block changed since last processed.
	dirtyS  []bool
	dirtySS []map[int]bool
	// dirtySSOrder lists each block's dirty SS partitions in the order they
	// became dirty, so process walks them deterministically (map range order
	// would vary run to run, and the semantic counters — join/transfer
	// totals, widening decisions — are pinned as run-to-run deterministic by
	// the stats contract).
	dirtySSOrder [][]int
	dirtyLane    [][]bool

	// change counters drive widening of speculative flows.
	ssChanges   []map[int]int
	laneChanges [][]int

	colors    []*color
	colorsAt  map[ir.BlockID][]*color
	parts     []partition
	partByKey map[partKey]int

	pdom *cfg.PostDomTree

	// succs[n] is the effective successor list used for all state
	// propagation: for a block ending in a Resolved CondBr only the taken
	// edge carries flow (the emitted branch is unconditional). Dominators,
	// post-dominators, and vn_stop placement keep using the full edge set.
	succs [][]ir.BlockID
	// effReach marks blocks reachable from entry along effective successors;
	// blocks behind a resolved branch's dead edge can be entered neither
	// architecturally nor speculatively, so they spawn no colors.
	effReach []bool

	// pool recycles the engine's transfer/walk/classify scratch states; see
	// cache.Pool for the ownership rules.
	pool *cache.Pool
	// oracle, when non-nil, supplies speculation depths instead of the live
	// §6.2 classification (per-set-group engines that do not own the
	// branch-slice loads' cache sets).
	oracle depthOracle
	// slices caches branchSlice per conditional-branch block: the slice is
	// state-independent, and depthFor runs on every pop of a dirty condbr.
	slices map[ir.BlockID]blockSlice

	heap    blockHeap
	inWork  []bool
	changes []int // per-block S-change counts, for widening
	// wto is the Bourdoncle ordering of the effective CFG, non-nil iff the
	// engine runs under SchedulerWTO. Enqueued blocks are then tracked as
	// pending counts per enclosing component (wtoPending, plus the global
	// wtoLive) instead of heap entries: the recursive sweep re-iterates a
	// component exactly while it has pending members, stabilizing inner
	// components before re-entering outer ones.
	wto        *cfg.WTO
	wtoPending []int
	wtoLive    int
	// Dirty-element min-heaps, one per WTO nesting level (index c+1 for
	// component c, index 0 for the top-level sequence), holding the indices
	// of that level's dirty elements. Speculation makes information flow
	// backward through non-CFG channels — a lane rollback joins SS at the
	// branch's other successor, behind the lane's current block, and an SS
	// flow reaching its vn_stop re-joins the normal state of that same
	// block — so a plain front-to-back sweep would re-propagate
	// intermediate states through the whole downstream tail once per
	// backward event. The heaps let each sweep always process the earliest
	// dirty element of its level next, draining upstream re-dirt before any
	// downstream block is (re)visited — the same upstream-first discipline
	// the RPO priority heap provides, applied per nesting level (on an
	// acyclic CFG the single top-level heap degenerates to exactly that).
	// Entries are lazily deleted: an element may be stale by the time it is
	// popped (block no longer in-work, component no longer pending) and is
	// then skipped.
	wtoDirty [][]int
	// wtoBlockIdx[b] is b's element index within its immediate level (body
	// of CompOf[b], or the top-level sequence); for component heads see
	// wtoHeadComp/wtoCompIdx instead, since heads are not body elements.
	wtoBlockIdx []int
	// wtoCompIdx[c] is component c's element index within its parent level.
	wtoCompIdx []int
	// wtoHeadComp[b] is the component headed by b, or -1.
	wtoHeadComp []int
	// lanesOff suppresses lane spawning during the uncertainty pre-pass:
	// the engine first converges the cheap classic must/may analysis
	// (normal flow only), then re-seeds every unresolved branch so lanes
	// spawn once, from near-final states, instead of being re-spawned and
	// re-propagated on every early state change.
	lanesOff bool
	// widenOK permits the classic count-triggered widening at loop headers
	// (the canonical phase-1 solve and the legacy single-pass path). That
	// widening fires on per-block change counts, which depend on iteration
	// order — which is why phase 1 is pinned to one canonical schedule.
	//
	// satWiden replaces it in phase 2: every loop-head contribution is
	// first Saturate'd against satRef — a frozen snapshot of the block's
	// phase-1 state — before being joined. Any dimension a contribution
	// pushes past its classic value jumps straight to the join-absorbing
	// extreme (must age to evicted, shadow age to 1). Because the reference
	// is constant, the saturation is a monotone transform, so the phase-2
	// system stays monotone and its least fixpoint is identical under any
	// fair visit order — widening never re-introduces schedule dependence.
	// (Widening against the *evolving* previous iterate would: for states
	// seeded at bottom, such as the per-color lanes and per-pid SS flows,
	// whichever contribution lands first would become the reference.)
	// Semantically this is the paper's §6.3 amplification: speculative
	// pollution reaching a loop head is widened to its absorbing worst
	// immediately instead of creeping one age step per fixpoint round.
	widenOK  bool
	satWiden bool
	satRef   []*cache.State
	// laneNeed[b] is the minimum entry budget with which a wrong-path lane
	// entering block b can still transfer at least one memory access
	// (structural: from instruction counts and access positions along
	// effective successors). Spawns with depth < laneNeed[specSucc] are
	// provably invisible — the lane would expire before touching memory,
	// contributing no SpecAccess verdict and no rollback — and are skipped
	// (counted as LanesSkippedCertain). nil when uncertainty focusing is
	// disabled.
	laneNeed []int
	// loopHeader marks natural-loop headers: widening applies only there
	// (§6.3 targets loops; widening ordinary merge blocks would discard
	// precision that plain joins preserve).
	loopHeader []bool
	iter       int

	// stats accumulates the engine's semantic effort counters in plain
	// fields — no atomics, no indirection — and is copied into the Result
	// once at the end of the run. The fields are deterministic because the
	// whole engine is: the worklist, the dirty-flow orders, and every join
	// are schedule-free single-goroutine computations.
	stats obs.FixpointStats
}

func newEngine(prog *ir.Program, g *cfg.Graph, l *layout.Layout, idx *interval.Result, opts Options) *engine {
	access, accessSpec := dataAccessMaps(prog, l, idx)
	var code *bytecode.Program
	if opts.Exec == bytecode.ExecCompiled {
		code = bytecode.Compile(prog, access, accessSpec)
	}
	return newEngineShared(prog, g, l, idx, opts, access, accessSpec, code)
}

// newEngineShared builds an engine around precomputed access maps and an
// optionally precompiled transfer program, so the per-set-group engines of
// the partitioned analysis can share one resolution pass and one compiled
// form (both are read-only from here on). code must be nil exactly when
// opts.Exec is ExecInterp.
func newEngineShared(prog *ir.Program, g *cfg.Graph, l *layout.Layout, idx *interval.Result, opts Options, access, accessSpec map[int]cache.Access, code *bytecode.Program) *engine {
	n := len(prog.Blocks)
	e := &engine{
		prog:         prog,
		g:            g,
		l:            l,
		dom:          &cache.Domain{L: l, Refined: opts.RefinedJoin},
		idx:          idx,
		opts:         opts,
		access:       access,
		accessSpec:   accessSpec,
		code:         code,
		pool:         cache.NewPool(l.NumBlocks),
		S:            make([]*cache.State, n),
		SS:           make([]map[int]*cache.State, n),
		Lane:         make([][]laneVal, n),
		dirtyS:       make([]bool, n),
		dirtySS:      make([]map[int]bool, n),
		dirtySSOrder: make([][]int, n),
		dirtyLane:    make([][]bool, n),
		ssChanges:    make([]map[int]int, n),
		laneChanges:  make([][]int, n),
		colorsAt:     map[ir.BlockID][]*color{},
		partByKey:    map[partKey]int{},
		inWork:       make([]bool, n),
		changes:      make([]int, n),
	}
	e.heap.order = make([]int, n)
	for i := range e.heap.order {
		if g.RPOIndex[i] >= 0 {
			e.heap.order[i] = g.RPOIndex[i]
		} else {
			e.heap.order[i] = n // unreachable: last
		}
	}
	for i := range e.S {
		e.S[i] = cache.Bottom()
		e.SS[i] = map[int]*cache.State{}
		e.dirtySS[i] = map[int]bool{}
		e.ssChanges[i] = map[int]int{}
	}
	e.S[prog.Entry] = cache.NewState(l.NumBlocks)
	e.dirtyS[prog.Entry] = true

	e.loopHeader = make([]bool, n)
	for _, loop := range g.NaturalLoops(g.Dominators()) {
		e.loopHeader[loop.Header] = true
	}

	e.succs = make([][]ir.BlockID, n)
	for _, b := range prog.Blocks {
		e.succs[b.ID] = b.EffectiveSuccs()
	}
	e.effReach = effectiveReachable(prog, e.succs)

	if opts.Speculative {
		e.pdom = g.PostDominators()
		e.slices = map[ir.BlockID]blockSlice{}
		for _, b := range prog.Blocks {
			t := b.Terminator()
			// Resolved branches are unconditional jumps in the emitted
			// program: no misprediction, no colors. Blocks only reachable
			// through a resolved branch's dead edge spawn none either — no
			// execution, architectural or wrong-path, can enter them.
			if t == nil || t.Op != ir.OpCondBr || t.Resolved || !e.effReach[b.ID] {
				continue
			}
			loads, resolved := branchSlice(b)
			e.slices[b.ID] = blockSlice{loads: loads, resolved: resolved}
			stop := e.pdom.ImmediatePostDom(b.ID)
			for _, predicted := range []bool{true, false} {
				c := &color{
					id:        len(e.colors),
					branch:    b.ID,
					predicted: predicted,
					stop:      stop,
				}
				if predicted {
					c.specSucc, c.otherSucc = t.TrueTarget, t.FalseTarget
				} else {
					c.specSucc, c.otherSucc = t.FalseTarget, t.TrueTarget
				}
				e.colors = append(e.colors, c)
				e.colorsAt[b.ID] = append(e.colorsAt[b.ID], c)
			}
		}
	}
	if e.uncertainty() {
		e.laneNeed = laneNeedBudgets(prog, e.succs, accessSpec)
	}
	return e
}

// uncertainty reports whether the engine runs the uncertainty-focused
// speculation machinery: the classic warm-start pre-pass plus the
// certain-branch spawn skip. It is on for every speculative analysis with at
// least one unresolved branch unless the ablation knob disables it.
func (e *engine) uncertainty() bool {
	return e.opts.Speculative && !e.opts.DisableUncertainty && len(e.colors) > 0
}

// laneNeedInf is the laneNeed value for blocks from which no wrong-path
// memory access is reachable at any budget (half of MaxInt so adding a block
// length cannot overflow).
const laneNeedInf = int(^uint(0)>>1) / 2

// laneNeedBudgets solves the min-fixpoint
//
//	need[b] = min(firstAccess(b)+1, len(b.Instrs) + min over succs s of need[s])
//
// mirroring laneWalk's budget semantics exactly: a lane entering b with
// budget B transfers the access at instruction index i iff B >= i+1, and
// continues into a successor with budget B-len(b.Instrs) iff that is
// positive. need[b] is therefore the smallest entry budget at which a lane
// entering b can reach any wrong-path memory access. A fence truncates both
// terms exactly as it truncates laneWalk: only accesses before the block's
// first fence are reachable, and a fenced block has no successor
// continuation (the lane dies at the fence). The recurrence is monotone
// decreasing from laneNeedInf, so round-robin iteration converges.
func laneNeedBudgets(prog *ir.Program, succs [][]ir.BlockID, accessSpec map[int]cache.Access) []int {
	n := len(prog.Blocks)
	need := make([]int, n)
	first := make([]int, n)
	fenced := make([]bool, n)
	for _, b := range prog.Blocks {
		need[b.ID] = laneNeedInf
		first[b.ID] = laneNeedInf
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpFence {
				fenced[b.ID] = true
				break
			}
			if first[b.ID] == laneNeedInf {
				if _, ok := accessSpec[b.Instrs[i].ID]; ok {
					first[b.ID] = i + 1
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range prog.Blocks {
			v := first[b.ID]
			if !fenced[b.ID] {
				for _, s := range succs[b.ID] {
					if c := len(b.Instrs) + need[s]; c < v {
						v = c
					}
				}
			}
			if v < need[b.ID] {
				need[b.ID] = v
				changed = true
			}
		}
	}
	return need
}

// effectiveReachable marks blocks reachable from entry along effective
// successor edges.
func effectiveReachable(prog *ir.Program, succs [][]ir.BlockID) []bool {
	reach := make([]bool, len(prog.Blocks))
	stack := []ir.BlockID{prog.Entry}
	reach[prog.Entry] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range succs[n] {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reach
}

func (e *engine) enqueue(b ir.BlockID) {
	if e.inWork[b] {
		return
	}
	e.inWork[b] = true
	if e.wto != nil {
		e.wtoLive++
		// Queue b's element at its own level (component heads have no body
		// element — they are re-stepped by their component's stabilization
		// loop), then push each enclosing component's element at the level
		// above when it transitions clean→pending.
		if e.wtoHeadComp[b] < 0 {
			intHeapPush(&e.wtoDirty[e.wto.CompOf[b]+1], e.wtoBlockIdx[b])
		}
		for c := e.wto.CompOf[b]; c >= 0; c = e.wto.Parent[c] {
			e.wtoPending[c]++
			if e.wtoPending[c] == 1 {
				intHeapPush(&e.wtoDirty[e.wto.Parent[c]+1], e.wtoCompIdx[c])
			}
		}
		return
	}
	heap.Push(&e.heap, b)
}

// ctxCheckInterval is how many worklist pops pass between context polls.
// One poll is a channel select — cheap, but not free on a loop that runs
// millions of times on large unrolled programs.
const ctxCheckInterval = 256

func (e *engine) run(ctx context.Context) error {
	singlePass := e.opts.DisableUncertainty
	if !singlePass {
		// The two-phase split below exists to canonicalize widening
		// decisions. When widening cannot fire at all — no loop headers in
		// the simplified CFG (the common case after full unrolling), or
		// widening disabled — the whole system is a plain monotone
		// iteration whose least fixpoint is schedule-independent by itself,
		// and the split would only pay its phase-2 re-solve overhead for a
		// canonicalization it does not need. Solve in one pass instead;
		// uncertainty focusing (laneNeed pruning) still applies.
		hasLoops := false
		for _, lh := range e.loopHeader {
			if lh {
				hasLoops = true
				break
			}
		}
		singlePass = !hasLoops || e.opts.WideningThreshold <= 0
	}
	if singlePass {
		// Single-pass solve under the configured scheduler. With
		// DisableUncertainty this is the legacy ablation/benchmark baseline
		// (seed-equivalent under SchedulerWorklist): widening triggers on
		// per-block change counts and schedulers batch changes differently,
		// so around widening its results are scheduler-dependent — it is
		// not a supported configuration, just the attribution arm.
		if e.opts.Scheduler == SchedulerWTO {
			e.initWTO()
		}
		e.widenOK = true
		e.enqueue(e.prog.Entry)
		return e.solver()(e, ctx)
	}
	// Phase 1 — canonical classic pass. Lane spawning is off: with no lanes
	// there are no rollbacks and hence no SS flows, so this converges
	// exactly the non-speculative must/may fixpoint. It always runs under
	// the WTO schedule with widening enabled, whatever Options.Scheduler
	// says: widening triggers on per-block change counts, which depend on
	// iteration order, so pinning this phase to one canonical deterministic
	// schedule is what makes every widening decision — and therefore the
	// final classifications — identical across schedulers.
	e.initWTO()
	e.lanesOff = true
	e.widenOK = true
	e.enqueue(e.prog.Entry)
	if err := e.solver()(e, ctx); err != nil {
		return err
	}
	// Phase 2 — speculative completion under the configured scheduler.
	// Every unresolved branch whose state is live is re-seeded, so lanes
	// spawn once, from the converged classic states where the analysis is
	// actually uncertain, instead of being re-spawned on every intermediate
	// state change (uncertainty-focused speculation). Starting from the
	// identical phase-1 states, the remaining system is a monotone
	// iteration — joins, transfers, budget maxima, and the reference
	// saturation described on satWiden — whose least fixpoint is
	// schedule-independent: both schedulers land on byte-identical results
	// and differ only in how much work they spend getting there.
	e.lanesOff = false
	e.widenOK = false
	e.satWiden = true
	if e.opts.WideningThreshold > 0 {
		e.satRef = make([]*cache.State, len(e.S))
		for i := range e.satRef {
			if e.loopHeader[i] {
				e.satRef[i] = e.S[i].Clone()
			}
		}
	}
	if e.opts.Scheduler != SchedulerWTO {
		e.wto = nil // route enqueues back to the RPO heap
	}
	for _, b := range e.prog.Blocks {
		if len(e.colorsAt[b.ID]) > 0 && !e.S[b.ID].IsBottom {
			e.dirtyS[b.ID] = true
			e.enqueue(b.ID)
		}
	}
	return e.solver()(e, ctx)
}

// solveWorklist drains the RPO-ordered worklist heap (SchedulerWorklist).
func (e *engine) solveWorklist(ctx context.Context) error {
	for e.heap.Len() > 0 {
		if e.iter%ctxCheckInterval == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		b := heap.Pop(&e.heap).(ir.BlockID)
		e.inWork[b] = false
		e.iter++
		e.process(b)
	}
	return nil
}

// intHeapPush and intHeapPop maintain a plain min-heap of ints — the
// per-level dirty-element queues, where container/heap's interface
// indirection and per-push boxing would show up on the hot path.
func intHeapPush(h *[]int, v int) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func intHeapPop(h *[]int) int {
	s := *h
	v := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	i := 0
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && s[l] < s[min] {
			min = l
		}
		if r < n && s[r] < s[min] {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return v
}

// initWTO computes the Bourdoncle ordering over the effective CFG, indexes
// the element tree for enqueue's cursor bubbling, and switches enqueue to
// component-pending accounting.
func (e *engine) initWTO() {
	n := len(e.prog.Blocks)
	wto := cfg.WTOOf(n, e.prog.Entry, func(b ir.BlockID) []ir.BlockID {
		return e.succs[b]
	})
	e.stats.WTOComponents = int64(wto.NumComponents)
	if wto.NumComponents == 0 {
		// Acyclic CFG (common after full unrolling): the weak topological
		// order degenerates to plain reverse postorder, which the RPO
		// priority heap already implements — identical visit order without
		// the per-level sweep bookkeeping. Leave e.wto nil so enqueue and
		// run route through the worklist machinery.
		return
	}
	e.wto = wto
	e.wtoPending = make([]int, e.wto.NumComponents)
	e.wtoBlockIdx = make([]int, n)
	e.wtoCompIdx = make([]int, e.wto.NumComponents)
	e.wtoHeadComp = make([]int, n)
	for i := range e.wtoHeadComp {
		e.wtoHeadComp[i] = -1
	}
	e.wtoDirty = make([][]int, e.wto.NumComponents+1)
	var index func(elems []cfg.WTOElem)
	index = func(elems []cfg.WTOElem) {
		for i, el := range elems {
			if el.Comp != nil {
				e.wtoCompIdx[el.Comp.Index] = i
				e.wtoHeadComp[el.Comp.Head] = el.Comp.Index
				index(el.Comp.Body)
				continue
			}
			e.wtoBlockIdx[el.Block] = i
		}
	}
	index(e.wto.Sequence)
}

// solver picks the drain routine matching the schedule initWTO (or a later
// e.wto reset) left in place.
func (e *engine) solver() func(*engine, context.Context) error {
	if e.wto != nil {
		return (*engine).solveWTO
	}
	return (*engine).solveWorklist
}

// solveWTO drains pending work in weak topological order. One sweep of the
// top level suffices: any dirty block keeps its whole chain of enclosing
// elements queued, so the top-level heap is non-empty whenever work remains.
func (e *engine) solveWTO(ctx context.Context) error {
	return e.sweepWTO(ctx, -1, e.wto.Sequence)
}

// sweepWTO processes the elements of one WTO nesting level (lvl -1 is the
// top-level sequence, otherwise a component index whose body elems is)
// until the level is clean, always taking the earliest dirty element next
// (the level's min-heap): upstream re-dirt — a rollback injection or
// vn_stop self-merge landing behind the sweep — is drained before any
// downstream block is revisited, keeping the cost of speculation's backward
// information flow proportional to the re-dirtied region instead of the
// whole downstream tail. Component elements loop locally — head, then body,
// recursively — until nothing inside them is pending, so inner loops fully
// stabilize before the outer sequence moves on (Bourdoncle's recursive
// iteration strategy).
func (e *engine) sweepWTO(ctx context.Context, lvl int, elems []cfg.WTOElem) error {
	h := &e.wtoDirty[lvl+1]
	for len(*h) > 0 {
		el := &elems[intHeapPop(h)]
		if el.Comp == nil {
			// Stale entries (block already stepped as part of an enclosing
			// drain) are skipped by stepWTO's in-work check.
			if err := e.stepWTO(ctx, el.Block); err != nil {
				return err
			}
			continue
		}
		for e.wtoPending[el.Comp.Index] > 0 {
			if err := e.stepWTO(ctx, el.Comp.Head); err != nil {
				return err
			}
			if err := e.sweepWTO(ctx, el.Comp.Index, el.Comp.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

// stepWTO processes block b if it is pending, maintaining the component
// pending counters that drive sweepWTO's local stabilization loops.
func (e *engine) stepWTO(ctx context.Context, b ir.BlockID) error {
	if !e.inWork[b] {
		return nil
	}
	e.inWork[b] = false
	e.wtoLive--
	for c := e.wto.CompOf[b]; c >= 0; c = e.wto.Parent[c] {
		e.wtoPending[c]--
	}
	if e.iter%ctxCheckInterval == 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	e.iter++
	e.process(b)
	return nil
}

// dataAccessMaps resolves every Load/Store to its candidate blocks: the
// architectural (in-bounds) resolution and the wrong-path (OOB-extended)
// resolution.
func dataAccessMaps(prog *ir.Program, l *layout.Layout, idx *interval.Result) (access, accessSpec map[int]cache.Access) {
	access = make(map[int]cache.Access)
	accessSpec = make(map[int]cache.Access)
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				access[in.ID] = resolveAccess(l, idx, in)
				accessSpec[in.ID] = resolveSpecAccess(l, idx, in)
			}
		}
	}
	return access, accessSpec
}

// transferBlock pushes a cache state through all instructions of a block.
// The returned state is pooled scratch: the caller must hand it back with
// e.pool.Put once it has been joined into its targets (joins copy, so no
// target retains it).
func (e *engine) transferBlock(b *ir.Block, st *cache.State) *cache.State {
	out := e.pool.Get()
	out.CopyFrom(st)
	if e.code != nil {
		// Compiled form: the access sequence and its resolutions were
		// precomputed, so the loop touches only memory instructions — same
		// transfers, in the same order, as the tree walk below.
		steps := e.code.Blocks[b.ID].Arch
		for i := range steps {
			e.dom.Transfer(out, steps[i].Acc)
		}
		e.stats.Transfers += int64(len(steps))
		return out
	}
	for i := range b.Instrs {
		if acc, ok := e.access[b.Instrs[i].ID]; ok {
			e.dom.Transfer(out, acc)
			e.stats.Transfers++
		}
	}
	return out
}

// saturate applies the phase-2 reference saturation to a loop-head
// contribution (see satWiden): the returned state is pooled scratch the
// caller must Put back when owned is true. Outside phase 2, or away from
// loop heads, st is returned untouched.
func (e *engine) saturate(target ir.BlockID, st *cache.State) (out *cache.State, owned bool) {
	if !e.satWiden || e.satRef == nil || !e.loopHeader[target] {
		return st, false
	}
	scratch := e.pool.Get()
	scratch.CopyFrom(st)
	e.dom.Saturate(e.satRef[target], scratch)
	e.stats.Widenings++
	return scratch, true
}

// joinS merges st into S[target], widening if the block keeps changing, and
// re-enqueues the target on change.
func (e *engine) joinS(target ir.BlockID, st *cache.State) {
	e.stats.Joins++
	st, owned := e.saturate(target, st)
	widening := e.widenOK && e.opts.WideningThreshold > 0 && e.loopHeader[target] &&
		e.changes[target] >= e.opts.WideningThreshold
	var prev *cache.State
	if widening {
		prev = e.S[target].Clone()
	}
	changed := e.dom.JoinInto(e.S[target], st)
	if owned {
		e.pool.Put(st)
	}
	if !changed {
		return
	}
	e.stats.JoinChanges++
	if widening {
		e.S[target] = e.dom.Widen(prev, e.S[target])
		e.stats.Widenings++
	}
	e.changes[target]++
	e.dirtyS[target] = true
	e.enqueue(target)
}

// joinSS merges st into SS[target][pid] and re-enqueues on change.
// Like joinS, repeated growth is widened: speculative states circulating in
// loops would otherwise creep one age step per fixpoint round (§6.3 applies
// to speculative flows just as much as to normal ones).
func (e *engine) joinSS(target ir.BlockID, pid int, st *cache.State) {
	e.stats.SpecJoins++
	cur, ok := e.SS[target][pid]
	if !ok {
		cur = cache.Bottom()
		e.SS[target][pid] = cur
	}
	st, owned := e.saturate(target, st)
	widening := e.widenOK && e.opts.WideningThreshold > 0 && e.loopHeader[target] &&
		e.ssChanges[target][pid] >= e.opts.WideningThreshold
	var prev *cache.State
	if widening {
		prev = cur.Clone()
	}
	changed := e.dom.JoinInto(cur, st)
	if owned {
		e.pool.Put(st)
	}
	if !changed {
		return
	}
	if widening {
		e.SS[target][pid] = e.dom.Widen(prev, cur)
		e.stats.Widenings++
	}
	e.ssChanges[target][pid]++
	if !e.dirtySS[target][pid] {
		e.dirtySS[target][pid] = true
		e.dirtySSOrder[target] = append(e.dirtySSOrder[target], pid)
	}
	e.enqueue(target)
}

// joinLane merges a lane value (state join, budget max) and re-enqueues on
// change, widening after repeated growth.
func (e *engine) joinLane(target ir.BlockID, colorID int, lv laneVal) {
	e.stats.LaneJoins++
	if e.Lane[target] == nil {
		// One arena of bottom states for all colors at this block: the lane
		// universe is dense (every mispredicted branch seeds all its colors),
		// so batching the allocation beats per-color map inserts.
		nc := len(e.colors)
		lanes := make([]laneVal, nc)
		arena := make([]cache.State, nc)
		for i := range lanes {
			arena[i].IsBottom = true
			lanes[i] = laneVal{st: &arena[i], budget: -1}
		}
		e.Lane[target] = lanes
		e.dirtyLane[target] = make([]bool, nc)
		e.laneChanges[target] = make([]int, nc)
	}
	cur := &e.Lane[target][colorID]
	fresh := cur.budget < 0
	if fresh {
		cur.budget = 0
	}
	lst, owned := e.saturate(target, lv.st)
	widening := e.widenOK && e.opts.WideningThreshold > 0 && e.loopHeader[target] &&
		e.laneChanges[target][colorID] >= e.opts.WideningThreshold
	var prev *cache.State
	if widening {
		prev = cur.st.Clone()
	}
	changed := e.dom.JoinInto(cur.st, lst)
	if owned {
		e.pool.Put(lst)
	}
	if changed && widening {
		cur.st = e.dom.Widen(prev, cur.st)
		e.stats.Widenings++
	}
	if lv.budget > cur.budget {
		cur.budget = lv.budget
		changed = true
	}
	if changed || fresh {
		e.laneChanges[target][colorID]++
		e.dirtyLane[target][colorID] = true
		e.enqueue(target)
	}
}

// partFor interns a partition id.
func (e *engine) partFor(c *color, src ir.BlockID) int {
	key := partKey{colorID: c.id, src: src}
	if pid, ok := e.partByKey[key]; ok {
		return pid
	}
	pid := len(e.parts)
	e.parts = append(e.parts, partition{color: c, src: src})
	e.partByKey[key] = pid
	return pid
}

// process handles one worklist pop. Only flows whose in-state changed since
// they were last pushed through the block are re-evaluated.
func (e *engine) process(n ir.BlockID) {
	block := e.prog.Block(n)

	isCondBr := false
	if t := block.Terminator(); t != nil && t.Op == ir.OpCondBr && !t.Resolved {
		isCondBr = true
	}
	// injectLanes starts the block's speculative flows from one source
	// state (either the normal flow or a post-rollback SS flow — after a
	// rollback, execution is architectural again and can itself
	// mispredict, so SS flows must seed lanes too). fk identifies the
	// source flow for the depth oracle.
	injectLanes := func(src, out *cache.State, fk flowKey) {
		if !e.opts.Speculative || !isCondBr || e.lanesOff {
			return
		}
		depth := e.depthFor(block, src, fk)
		if depth <= 0 {
			return
		}
		for _, c := range e.colorsAt[n] {
			// Certain-branch skip: a lane whose budget cannot reach any
			// wrong-path memory access transfers nothing, classifies
			// nothing, and accumulates a Bottom rollback — spawning it
			// would only burn lane joins and walks. Skipping is invisible
			// to every classification (see laneNeed) and consistent across
			// schedulers and set-group engines: the §6.2 depth per flow is
			// nondecreasing during iteration, so the flow's final spawn is
			// skipped in one engine iff it is skipped in all.
			if e.laneNeed != nil && depth < e.laneNeed[c.specSucc] {
				e.stats.LanesSkippedCertain++
				continue
			}
			e.joinLane(c.specSucc, c.id, laneVal{st: out, budget: depth})
			e.stats.LanesSpawned++
		}
	}

	// Normal (architectural) flow.
	if e.dirtyS[n] {
		e.dirtyS[n] = false
		if !e.S[n].IsBottom {
			out := e.transferBlock(block, e.S[n])
			for _, s := range e.succs[n] {
				e.joinS(s, out)
			}
			injectLanes(e.S[n], out, normalFlow)
			e.pool.Put(out)
		}
	}

	// Speculative post-rollback flows (Algorithm 2/3: SS states). At the
	// color's vn_stop they convert back into the normal state; elsewhere
	// they propagate in parallel with it. The snapshot of the dirty order
	// keeps the walk deterministic; flows re-dirtied while we process them
	// (self-loops) land in a fresh order slice and re-enqueue the block.
	dirtySS := e.dirtySSOrder[n]
	e.dirtySSOrder[n] = nil
	for _, pid := range dirtySS {
		delete(e.dirtySS[n], pid)
		st := e.SS[n][pid]
		p := e.parts[pid]
		if n == p.color.stop {
			e.joinS(n, st)
			continue
		}
		out := e.transferBlock(block, st)
		for _, s := range e.succs[n] {
			e.joinSS(s, pid, out)
		}
		injectLanes(st, out, flowKey{colorID: p.color.id, src: p.src})
		e.pool.Put(out)
	}

	// Wrong-path lanes: explore the speculated side, accumulating a rollback
	// state after every memory access within the budget.
	for colorID := range e.dirtyLane[n] {
		if !e.dirtyLane[n][colorID] {
			continue
		}
		e.dirtyLane[n][colorID] = false
		lv := e.Lane[n][colorID]
		c := e.colors[colorID]
		out, rollback := e.laneWalk(block, lv)
		if out.budget > 0 {
			for _, s := range e.succs[n] {
				e.joinLane(s, colorID, out)
			}
		} else {
			e.stats.LanesExpired++
		}
		if !rollback.IsBottom {
			e.injectRollback(c, n, rollback)
			e.stats.Rollbacks++
		}
		e.pool.Put(out.st)
		e.pool.Put(rollback)
	}
}

// laneWalk pushes a lane through a block, consuming budget per instruction
// and joining the state after each memory access into the rollback
// accumulator (a rollback may occur at any moment, §5.1). Both returned
// states are pooled scratch the caller must Put back.
//
// The rollback accumulation points are structural — every memory access in
// range, whether or not this engine's set filter owns it (a filtered
// Transfer is then a no-op, but the rollback join must still happen so the
// per-set-group engines inject the same SS flows as the dense engine).
func (e *engine) laneWalk(b *ir.Block, lv laneVal) (laneVal, *cache.State) {
	if e.code != nil {
		return e.laneWalkCompiled(&e.code.Blocks[b.ID], lv)
	}
	st := e.pool.Get()
	st.CopyFrom(lv.st)
	budget := lv.budget
	rollback := e.pool.Get()
	rollback.SetBottom()
	for i := range b.Instrs {
		if budget == 0 {
			break
		}
		if b.Instrs[i].Op == ir.OpFence {
			// A fence reaching execute kills all in-flight speculation: the
			// wrong path stops here, before the fence issues, so nothing past
			// it transfers, classifies, or continues into successors. The
			// accumulated rollback still injects — a rollback may have
			// occurred at any access before the fence.
			budget = 0
			e.stats.FencesHit++
			break
		}
		budget--
		if acc, ok := e.accessSpec[b.Instrs[i].ID]; ok {
			e.dom.Transfer(st, acc)
			e.stats.SpecTransfers++
			e.dom.JoinInto(rollback, st)
		}
	}
	return laneVal{st: st, budget: budget}, rollback
}

// laneWalkCompiled is laneWalk on the compiled form. The tree walk decrements
// the budget once per instruction and breaks at the first fence; here that
// arithmetic is positional. An entry budget B executes the spec step at
// instruction index p iff B >= p+1 (the step list is already truncated at
// the block's first fence), the fence is *hit* — FencesHit accounting — iff
// B strictly exceeds its index (at B == FenceIdx the budget expires at the
// fence without reaching execute, exactly the tree walk's order of checks),
// and with a fence present the out-budget is always zero since the walk can
// never cross it.
func (e *engine) laneWalkCompiled(bc *bytecode.BlockCode, lv laneVal) (laneVal, *cache.State) {
	st := e.pool.Get()
	st.CopyFrom(lv.st)
	budget := lv.budget
	rollback := e.pool.Get()
	rollback.SetBottom()
	steps := bc.Spec
	for i := range steps {
		if budget <= steps[i].Pos {
			break
		}
		e.dom.Transfer(st, steps[i].Acc)
		e.stats.SpecTransfers++
		e.dom.JoinInto(rollback, st)
	}
	switch {
	case bc.FenceIdx >= 0 && budget > bc.FenceIdx:
		budget = 0
		e.stats.FencesHit++
	case bc.FenceIdx >= 0:
		budget = 0
	default:
		budget -= bc.NumInstrs
		if budget < 0 {
			budget = 0
		}
	}
	return laneVal{st: st, budget: budget}, rollback
}

// injectRollback feeds an accumulated rollback state of color c (observed in
// block src) into the other branch, per the merge strategy.
func (e *engine) injectRollback(c *color, src ir.BlockID, st *cache.State) {
	switch e.opts.Strategy {
	case StrategyMergeAtRollback:
		e.joinS(c.otherSucc, st)
	case StrategyJustInTime:
		if c.otherSucc == c.stop {
			// Degenerate diamond: the other side is the merge point itself.
			e.joinS(c.otherSucc, st)
			return
		}
		e.joinSS(c.otherSucc, e.partFor(c, -1), st)
	case StrategyPerRollbackBlock:
		if c.otherSucc == c.stop {
			e.joinS(c.otherSucc, st)
			return
		}
		e.joinSS(c.otherSucc, e.partFor(c, src), st)
	}
}

// blockSlice is the cached branchSlice result for one condbr block.
type blockSlice struct {
	loads    map[int]bool
	resolved bool
}

// branchSlice computes the backward slice of a block's branch condition
// within the block: the load instruction ids feeding the condition, and
// whether the condition is fully resolved by in-block computation. It is
// purely structural (state-independent), so the per-set grouping can use it
// to find the cache sets the §6.2 depth decision depends on.
func branchSlice(block *ir.Block) (sliceLoads map[int]bool, resolved bool) {
	t := block.Terminator()
	if t.A.IsConst {
		return nil, true
	}
	needed := map[ir.Reg]bool{t.A.Reg: true}
	sliceLoads = map[int]bool{}
	for i := len(block.Instrs) - 2; i >= 0; i-- {
		in := &block.Instrs[i]
		if !writesDst(in.Op) || !needed[in.Dst] {
			continue
		}
		delete(needed, in.Dst)
		if in.Op == ir.OpLoad {
			sliceLoads[in.ID] = true
			if !in.Idx.IsConst {
				needed[in.Idx.Reg] = true
			}
			continue
		}
		for _, v := range regOperands(in) {
			needed[v] = true
		}
	}
	// Unresolved register reads mean the condition depends on values computed
	// before this block; we cannot cheaply prove the resolving loads hit.
	return sliceLoads, len(needed) == 0
}

// depthFor implements §6.2: use b_h when every load feeding the branch
// condition (within the branch block) is proved a must-hit against the
// source state, b_m otherwise. As the fixpoint weakens states, the choice
// can only move from b_h to b_m, so convergence is monotone. Engines running
// behind a depth oracle look the flow's converged depth up instead (their
// set filter does not cover the branch-slice loads' state).
func (e *engine) depthFor(block *ir.Block, src *cache.State, fk flowKey) int {
	if !e.opts.DynamicDepthBounding {
		return e.opts.DepthMiss
	}
	if e.oracle != nil {
		if d, ok := e.oracle[depthKey{block: block.ID, flow: fk}]; ok {
			return d
		}
		return e.opts.DepthMiss
	}
	d, hit := e.depthForLive(block, src)
	// Count only live decisions (not oracle lookups or recordDepths replays):
	// a decision is one §6.2 classification of the branch slice against the
	// current state, pruned to b_h on a proved must-hit.
	if hit {
		e.stats.DepthHitBounds++
	} else {
		e.stats.DepthMissBounds++
	}
	return d
}

// depthForLive reports the speculation depth for a branch against a concrete
// source state, plus whether §6.2 pruned it to the must-hit bound b_h (the
// bool disambiguates the two cases when DepthHit == DepthMiss).
func (e *engine) depthForLive(block *ir.Block, src *cache.State) (int, bool) {
	bs, ok := e.slices[block.ID]
	if !ok {
		bs.loads, bs.resolved = branchSlice(block)
	}
	if !bs.resolved {
		return e.opts.DepthMiss, false
	}
	if len(bs.loads) == 0 {
		return e.opts.DepthHit, true
	}
	sliceLoads := bs.loads
	st := e.pool.Get()
	st.CopyFrom(src)
	defer e.pool.Put(st)
	if e.code != nil {
		steps := e.code.Blocks[block.ID].Arch
		for i := range steps {
			if sliceLoads[steps[i].In.ID] && e.dom.Classify(st, steps[i].Acc) != cache.AlwaysHit {
				return e.opts.DepthMiss, false
			}
			e.dom.Transfer(st, steps[i].Acc)
		}
		return e.opts.DepthHit, true
	}
	for i := range block.Instrs {
		in := &block.Instrs[i]
		acc, ok := e.access[in.ID]
		if !ok {
			continue
		}
		if sliceLoads[in.ID] && e.dom.Classify(st, acc) != cache.AlwaysHit {
			return e.opts.DepthMiss, false
		}
		e.dom.Transfer(st, acc)
	}
	return e.opts.DepthHit, true
}

// recordDepths replays §6.2's depth decision against the converged states of
// every flow at every conditional branch, producing the oracle consumed by
// the set groups that do not own the branch-slice loads' cache sets. At the
// fixpoint the live decision equals the last one taken during iteration
// (depth choice is monotone in the state), so the recorded depths are
// exactly the ones the dense engine ends up using.
func (e *engine) recordDepths() depthOracle {
	o := depthOracle{}
	for _, b := range e.prog.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr || t.Resolved {
			continue
		}
		if !e.S[b.ID].IsBottom {
			d, _ := e.depthForLive(b, e.S[b.ID])
			o[depthKey{block: b.ID, flow: normalFlow}] = d
		}
		for pid, st := range e.SS[b.ID] {
			if st.IsBottom {
				continue
			}
			p := e.parts[pid]
			fk := flowKey{colorID: p.color.id, src: p.src}
			d, _ := e.depthForLive(b, st)
			o[depthKey{block: b.ID, flow: fk}] = d
		}
	}
	return o
}

func writesDst(op ir.Op) bool {
	switch op {
	case ir.OpStore, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpNop, ir.OpFence:
		return false
	}
	return true
}

// regOperands returns the register operands an instruction reads (excluding
// Load, which is handled by its caller).
func regOperands(in *ir.Instr) []ir.Reg {
	var regs []ir.Reg
	add := func(v ir.Value) {
		if !v.IsConst {
			regs = append(regs, v.Reg)
		}
	}
	switch in.Op {
	case ir.OpConst, ir.OpNop, ir.OpBr, ir.OpFence:
		// no register reads
	case ir.OpMov, ir.OpNeg, ir.OpNot, ir.OpBool, ir.OpCondBr, ir.OpRet:
		add(in.A)
	case ir.OpStore:
		add(in.A)
		add(in.Idx)
	default: // binops
		add(in.A)
		add(in.B)
	}
	return regs
}

// result assembles the classification post-pass over the fixpoint states.
func (e *engine) result() *Result {
	res := &Result{
		Prog:       e.prog,
		Graph:      e.g,
		Layout:     e.l,
		Opts:       e.opts,
		In:         e.S,
		SpecIn:     e.SS,
		Access:     map[int]AccessInfo{},
		SpecAccess: map[int]cache.Classification{},
		Iterations: e.iter,
		Branches:   e.prog.CondBranchCount(),
		Colors:     len(e.colors),
		domain:     e.dom,
		idx:        e.idx,
	}
	res.PoolStats = e.pool.Stats()
	e.stats.Iterations = int64(e.iter)
	e.stats.Colors = int64(len(e.colors))
	e.stats.StatesPooled = int64(res.PoolStats.Reused())
	res.Stats = e.stats
	for _, c := range e.colors {
		res.Flows = append(res.Flows, SpecFlow{
			Branch:    c.branch,
			Predicted: c.predicted,
			SpecSucc:  c.specSucc,
			OtherSucc: c.otherSucc,
			Stop:      c.stop,
		})
	}
	e.classify(res)
	return res
}

// classify walks every flow through every block once more, combining
// per-access verdicts: an access is always-hit only if it is always-hit on
// the normal flow and on every speculative flow passing through it. Under a
// set filter only owned accesses are judged (and recorded); foreign accesses
// still appear in the walk but their transfers are no-ops and their verdicts
// belong to the engine owning their sets.
func (e *engine) classify(res *Result) {
	st := e.pool.Get()
	defer e.pool.Put(st)
	for _, b := range e.prog.Blocks {
		var flows []*cache.State
		if !e.S[b.ID].IsBottom {
			flows = append(flows, e.S[b.ID])
		}
		for _, f := range e.SS[b.ID] {
			if !f.IsBottom {
				flows = append(flows, f)
			}
		}
		for fi, f := range flows {
			st.CopyFrom(f)
			if e.code != nil {
				// Compiled form: the same accesses in the same order; skipping
				// a non-owned access entirely (as the tree walk does) equals
				// transferring it, since a filtered Transfer is a no-op.
				steps := e.code.Blocks[b.ID].Arch
				for i := range steps {
					acc := steps[i].Acc
					if !e.dom.Owns(acc) {
						continue
					}
					in := steps[i].In
					cls := e.dom.Classify(st, acc)
					if fi == 0 {
						res.Access[in.ID] = AccessInfo{Instr: in, Block: b.ID, Acc: acc, Class: cls}
					} else if prev := res.Access[in.ID]; prev.Class != cls {
						prev.Class = cache.Unknown
						res.Access[in.ID] = prev
					}
					e.dom.Transfer(st, acc)
				}
				continue
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				acc, ok := e.access[in.ID]
				if !ok || !e.dom.Owns(acc) {
					continue
				}
				cls := e.dom.Classify(st, acc)
				if fi == 0 {
					res.Access[in.ID] = AccessInfo{Instr: in, Block: b.ID, Acc: acc, Class: cls}
				} else if prev := res.Access[in.ID]; prev.Class != cls {
					prev.Class = cache.Unknown
					res.Access[in.ID] = prev
				}
				e.dom.Transfer(st, acc)
			}
		}
		// Wrong-path verdicts from lanes (#SpMiss).
		for _, lv := range e.Lane[b.ID] {
			if lv.budget < 0 || lv.st.IsBottom {
				continue
			}
			st.CopyFrom(lv.st)
			budget := lv.budget
			if e.code != nil {
				// Compiled lane walk, budget positional as in laneWalkCompiled;
				// the spec step list is already fence-truncated, mirroring
				// laneWalk's truncation without re-counting FencesHit.
				steps := e.code.Blocks[b.ID].Spec
				for i := range steps {
					if budget <= steps[i].Pos {
						break
					}
					acc := steps[i].Acc
					if !e.dom.Owns(acc) {
						continue
					}
					in := steps[i].In
					cls := e.dom.Classify(st, acc)
					if prev, seen := res.SpecAccess[in.ID]; !seen {
						res.SpecAccess[in.ID] = cls
					} else if prev != cls {
						res.SpecAccess[in.ID] = cache.Unknown
					}
					e.dom.Transfer(st, acc)
				}
				continue
			}
			for i := range b.Instrs {
				if budget == 0 {
					break
				}
				// Mirror laneWalk's fence truncation (without re-counting
				// FencesHit): no wrong-path verdict exists past a fence.
				if b.Instrs[i].Op == ir.OpFence {
					break
				}
				budget--
				in := &b.Instrs[i]
				acc, ok := e.accessSpec[in.ID]
				if !ok || !e.dom.Owns(acc) {
					continue
				}
				cls := e.dom.Classify(st, acc)
				if prev, seen := res.SpecAccess[in.ID]; !seen {
					res.SpecAccess[in.ID] = cls
				} else if prev != cls {
					res.SpecAccess[in.ID] = cache.Unknown
				}
				e.dom.Transfer(st, acc)
			}
		}
	}
}
