package core

import (
	"container/heap"
	"context"

	"specabsint/internal/cache"
	"specabsint/internal/cfg"
	"specabsint/internal/interval"
	"specabsint/internal/ir"
	"specabsint/internal/layout"
	"specabsint/internal/obs"
)

// color identifies one speculative flow: branch block + predicted direction
// (§6.4, Algorithm 3: one independent speculative state per color).
type color struct {
	id        int
	branch    ir.BlockID
	predicted bool       // true: the True successor is speculated
	specSucc  ir.BlockID // entry of the speculated side
	otherSucc ir.BlockID // entry of the side rolled back to
	stop      ir.BlockID // vn_stop: immediate post-dominator of branch
}

// laneVal is a wrong-path exploration state with its remaining instruction
// budget. Budgets join by max: exploring deeper than the hardware would
// only over-approximates.
type laneVal struct {
	st     *cache.State
	budget int
}

// partition is one SS flow: a color, plus (for per-rollback-block
// partitioning) the block where the rollback occurred.
type partition struct {
	color *color
	src   ir.BlockID // -1 for the merged (JIT) partition
}

type partKey struct {
	colorID int
	src     ir.BlockID
}

// flowKey names a flow at a block for speculation-depth purposes: the normal
// flow is {-1, -1}; an SS flow is its partition's (colorID, src). Unlike
// partition ids (interned in encounter order, which differs between
// engines), flow keys are stable across the dense and per-set-group engines.
type flowKey struct {
	colorID int
	src     ir.BlockID
}

var normalFlow = flowKey{colorID: -1, src: -1}

// depthOracle records the converged speculation depth per (branch block,
// flow). The per-set partitioned analysis needs it because §6.2's dynamic
// depth bounding classifies the branch-condition loads — state owned by
// whichever set group holds those loads' cache sets — yet the resulting
// budget steers lane propagation in every group. The group union holding all
// branch-slice loads runs first with live depth computation; its converged
// depths are then fixed constants for the remaining groups. The two systems
// have the same least fixpoint: depths only grow b_h → b_m as states weaken
// (monotone feedback), so running with the final depths from the start
// over-approximates every live iterate yet agrees with the live system at
// its fixpoint.
type depthOracle map[depthKey]int

type depthKey struct {
	block ir.BlockID
	flow  flowKey
}

// blockHeap is a worklist ordered by reverse postorder, which minimizes
// re-iteration of downstream blocks.
type blockHeap struct {
	order []int // RPO index per block
	items []ir.BlockID
}

func (h *blockHeap) Len() int           { return len(h.items) }
func (h *blockHeap) Less(i, j int) bool { return h.order[h.items[i]] < h.order[h.items[j]] }
func (h *blockHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *blockHeap) Push(x any)         { h.items = append(h.items, x.(ir.BlockID)) }
func (h *blockHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

type engine struct {
	prog *ir.Program
	g    *cfg.Graph
	l    *layout.Layout
	dom  *cache.Domain
	idx  *interval.Result
	opts Options

	access map[int]cache.Access // per mem-instr id, architectural (in-bounds)
	// accessSpec resolves the same instructions on wrong paths, where
	// out-of-bounds indices reach adjacent memory instead of faulting
	// (Spectre v1); used by the lanes.
	accessSpec map[int]cache.Access

	S  []*cache.State
	SS []map[int]*cache.State
	// Lane[n] is indexed by color id and allocated lazily on the first lane
	// reaching n (a dense slice: every condbr seeds all its colors, so maps
	// only added bucket churn on the hottest join). budget < 0 marks a slot
	// no lane has reached yet.
	Lane [][]laneVal

	// dirty flags: which flows at a block changed since last processed.
	dirtyS  []bool
	dirtySS []map[int]bool
	// dirtySSOrder lists each block's dirty SS partitions in the order they
	// became dirty, so process walks them deterministically (map range order
	// would vary run to run, and the semantic counters — join/transfer
	// totals, widening decisions — are pinned as run-to-run deterministic by
	// the stats contract).
	dirtySSOrder [][]int
	dirtyLane    [][]bool

	// change counters drive widening of speculative flows.
	ssChanges   []map[int]int
	laneChanges [][]int

	colors    []*color
	colorsAt  map[ir.BlockID][]*color
	parts     []partition
	partByKey map[partKey]int

	pdom *cfg.PostDomTree

	// succs[n] is the effective successor list used for all state
	// propagation: for a block ending in a Resolved CondBr only the taken
	// edge carries flow (the emitted branch is unconditional). Dominators,
	// post-dominators, and vn_stop placement keep using the full edge set.
	succs [][]ir.BlockID
	// effReach marks blocks reachable from entry along effective successors;
	// blocks behind a resolved branch's dead edge can be entered neither
	// architecturally nor speculatively, so they spawn no colors.
	effReach []bool

	// pool recycles the engine's transfer/walk/classify scratch states; see
	// cache.Pool for the ownership rules.
	pool *cache.Pool
	// oracle, when non-nil, supplies speculation depths instead of the live
	// §6.2 classification (per-set-group engines that do not own the
	// branch-slice loads' cache sets).
	oracle depthOracle
	// slices caches branchSlice per conditional-branch block: the slice is
	// state-independent, and depthFor runs on every pop of a dirty condbr.
	slices map[ir.BlockID]blockSlice

	heap    blockHeap
	inWork  []bool
	changes []int // per-block S-change counts, for widening
	// loopHeader marks natural-loop headers: widening applies only there
	// (§6.3 targets loops; widening ordinary merge blocks would discard
	// precision that plain joins preserve).
	loopHeader []bool
	iter       int

	// stats accumulates the engine's semantic effort counters in plain
	// fields — no atomics, no indirection — and is copied into the Result
	// once at the end of the run. The fields are deterministic because the
	// whole engine is: the worklist, the dirty-flow orders, and every join
	// are schedule-free single-goroutine computations.
	stats obs.FixpointStats
}

func newEngine(prog *ir.Program, g *cfg.Graph, l *layout.Layout, idx *interval.Result, opts Options) *engine {
	access, accessSpec := dataAccessMaps(prog, l, idx)
	return newEngineShared(prog, g, l, idx, opts, access, accessSpec)
}

// newEngineShared builds an engine around precomputed access maps, so the
// per-set-group engines of the partitioned analysis can share one resolution
// pass (the maps are read-only from here on).
func newEngineShared(prog *ir.Program, g *cfg.Graph, l *layout.Layout, idx *interval.Result, opts Options, access, accessSpec map[int]cache.Access) *engine {
	n := len(prog.Blocks)
	e := &engine{
		prog:         prog,
		g:            g,
		l:            l,
		dom:          &cache.Domain{L: l, Refined: opts.RefinedJoin},
		idx:          idx,
		opts:         opts,
		access:       access,
		accessSpec:   accessSpec,
		pool:         cache.NewPool(l.NumBlocks),
		S:            make([]*cache.State, n),
		SS:           make([]map[int]*cache.State, n),
		Lane:         make([][]laneVal, n),
		dirtyS:       make([]bool, n),
		dirtySS:      make([]map[int]bool, n),
		dirtySSOrder: make([][]int, n),
		dirtyLane:    make([][]bool, n),
		ssChanges:    make([]map[int]int, n),
		laneChanges:  make([][]int, n),
		colorsAt:     map[ir.BlockID][]*color{},
		partByKey:    map[partKey]int{},
		inWork:       make([]bool, n),
		changes:      make([]int, n),
	}
	e.heap.order = make([]int, n)
	for i := range e.heap.order {
		if g.RPOIndex[i] >= 0 {
			e.heap.order[i] = g.RPOIndex[i]
		} else {
			e.heap.order[i] = n // unreachable: last
		}
	}
	for i := range e.S {
		e.S[i] = cache.Bottom()
		e.SS[i] = map[int]*cache.State{}
		e.dirtySS[i] = map[int]bool{}
		e.ssChanges[i] = map[int]int{}
	}
	e.S[prog.Entry] = cache.NewState(l.NumBlocks)
	e.dirtyS[prog.Entry] = true

	e.loopHeader = make([]bool, n)
	for _, loop := range g.NaturalLoops(g.Dominators()) {
		e.loopHeader[loop.Header] = true
	}

	e.succs = make([][]ir.BlockID, n)
	for _, b := range prog.Blocks {
		e.succs[b.ID] = b.EffectiveSuccs()
	}
	e.effReach = effectiveReachable(prog, e.succs)

	if opts.Speculative {
		e.pdom = g.PostDominators()
		e.slices = map[ir.BlockID]blockSlice{}
		for _, b := range prog.Blocks {
			t := b.Terminator()
			// Resolved branches are unconditional jumps in the emitted
			// program: no misprediction, no colors. Blocks only reachable
			// through a resolved branch's dead edge spawn none either — no
			// execution, architectural or wrong-path, can enter them.
			if t == nil || t.Op != ir.OpCondBr || t.Resolved || !e.effReach[b.ID] {
				continue
			}
			loads, resolved := branchSlice(b)
			e.slices[b.ID] = blockSlice{loads: loads, resolved: resolved}
			stop := e.pdom.ImmediatePostDom(b.ID)
			for _, predicted := range []bool{true, false} {
				c := &color{
					id:        len(e.colors),
					branch:    b.ID,
					predicted: predicted,
					stop:      stop,
				}
				if predicted {
					c.specSucc, c.otherSucc = t.TrueTarget, t.FalseTarget
				} else {
					c.specSucc, c.otherSucc = t.FalseTarget, t.TrueTarget
				}
				e.colors = append(e.colors, c)
				e.colorsAt[b.ID] = append(e.colorsAt[b.ID], c)
			}
		}
	}
	return e
}

// effectiveReachable marks blocks reachable from entry along effective
// successor edges.
func effectiveReachable(prog *ir.Program, succs [][]ir.BlockID) []bool {
	reach := make([]bool, len(prog.Blocks))
	stack := []ir.BlockID{prog.Entry}
	reach[prog.Entry] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range succs[n] {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reach
}

func (e *engine) enqueue(b ir.BlockID) {
	if !e.inWork[b] {
		heap.Push(&e.heap, b)
		e.inWork[b] = true
	}
}

// ctxCheckInterval is how many worklist pops pass between context polls.
// One poll is a channel select — cheap, but not free on a loop that runs
// millions of times on large unrolled programs.
const ctxCheckInterval = 256

func (e *engine) run(ctx context.Context) error {
	e.enqueue(e.prog.Entry)
	for e.heap.Len() > 0 {
		if e.iter%ctxCheckInterval == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		b := heap.Pop(&e.heap).(ir.BlockID)
		e.inWork[b] = false
		e.iter++
		e.process(b)
	}
	return nil
}

// dataAccessMaps resolves every Load/Store to its candidate blocks: the
// architectural (in-bounds) resolution and the wrong-path (OOB-extended)
// resolution.
func dataAccessMaps(prog *ir.Program, l *layout.Layout, idx *interval.Result) (access, accessSpec map[int]cache.Access) {
	access = make(map[int]cache.Access)
	accessSpec = make(map[int]cache.Access)
	for _, b := range prog.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				access[in.ID] = resolveAccess(l, idx, in)
				accessSpec[in.ID] = resolveSpecAccess(l, idx, in)
			}
		}
	}
	return access, accessSpec
}

// transferBlock pushes a cache state through all instructions of a block.
// The returned state is pooled scratch: the caller must hand it back with
// e.pool.Put once it has been joined into its targets (joins copy, so no
// target retains it).
func (e *engine) transferBlock(b *ir.Block, st *cache.State) *cache.State {
	out := e.pool.Get()
	out.CopyFrom(st)
	for i := range b.Instrs {
		if acc, ok := e.access[b.Instrs[i].ID]; ok {
			e.dom.Transfer(out, acc)
			e.stats.Transfers++
		}
	}
	return out
}

// joinS merges st into S[target], widening if the block keeps changing, and
// re-enqueues the target on change.
func (e *engine) joinS(target ir.BlockID, st *cache.State) {
	e.stats.Joins++
	widening := e.opts.WideningThreshold > 0 && e.loopHeader[target] &&
		e.changes[target] >= e.opts.WideningThreshold
	var prev *cache.State
	if widening {
		prev = e.S[target].Clone()
	}
	if !e.dom.JoinInto(e.S[target], st) {
		return
	}
	e.stats.JoinChanges++
	if widening {
		e.S[target] = e.dom.Widen(prev, e.S[target])
		e.stats.Widenings++
	}
	e.changes[target]++
	e.dirtyS[target] = true
	e.enqueue(target)
}

// joinSS merges st into SS[target][pid] and re-enqueues on change.
// Like joinS, repeated growth is widened: speculative states circulating in
// loops would otherwise creep one age step per fixpoint round (§6.3 applies
// to speculative flows just as much as to normal ones).
func (e *engine) joinSS(target ir.BlockID, pid int, st *cache.State) {
	e.stats.SpecJoins++
	cur, ok := e.SS[target][pid]
	if !ok {
		cur = cache.Bottom()
		e.SS[target][pid] = cur
	}
	widening := e.opts.WideningThreshold > 0 && e.loopHeader[target] &&
		e.ssChanges[target][pid] >= e.opts.WideningThreshold
	var prev *cache.State
	if widening {
		prev = cur.Clone()
	}
	if !e.dom.JoinInto(cur, st) {
		return
	}
	if widening {
		e.SS[target][pid] = e.dom.Widen(prev, cur)
		e.stats.Widenings++
	}
	e.ssChanges[target][pid]++
	if !e.dirtySS[target][pid] {
		e.dirtySS[target][pid] = true
		e.dirtySSOrder[target] = append(e.dirtySSOrder[target], pid)
	}
	e.enqueue(target)
}

// joinLane merges a lane value (state join, budget max) and re-enqueues on
// change, widening after repeated growth.
func (e *engine) joinLane(target ir.BlockID, colorID int, lv laneVal) {
	e.stats.LaneJoins++
	if e.Lane[target] == nil {
		// One arena of bottom states for all colors at this block: the lane
		// universe is dense (every mispredicted branch seeds all its colors),
		// so batching the allocation beats per-color map inserts.
		nc := len(e.colors)
		lanes := make([]laneVal, nc)
		arena := make([]cache.State, nc)
		for i := range lanes {
			arena[i].IsBottom = true
			lanes[i] = laneVal{st: &arena[i], budget: -1}
		}
		e.Lane[target] = lanes
		e.dirtyLane[target] = make([]bool, nc)
		e.laneChanges[target] = make([]int, nc)
	}
	cur := &e.Lane[target][colorID]
	fresh := cur.budget < 0
	if fresh {
		cur.budget = 0
	}
	widening := e.opts.WideningThreshold > 0 && e.loopHeader[target] &&
		e.laneChanges[target][colorID] >= e.opts.WideningThreshold
	var prev *cache.State
	if widening {
		prev = cur.st.Clone()
	}
	changed := e.dom.JoinInto(cur.st, lv.st)
	if changed && widening {
		cur.st = e.dom.Widen(prev, cur.st)
		e.stats.Widenings++
	}
	if lv.budget > cur.budget {
		cur.budget = lv.budget
		changed = true
	}
	if changed || fresh {
		e.laneChanges[target][colorID]++
		e.dirtyLane[target][colorID] = true
		e.enqueue(target)
	}
}

// partFor interns a partition id.
func (e *engine) partFor(c *color, src ir.BlockID) int {
	key := partKey{colorID: c.id, src: src}
	if pid, ok := e.partByKey[key]; ok {
		return pid
	}
	pid := len(e.parts)
	e.parts = append(e.parts, partition{color: c, src: src})
	e.partByKey[key] = pid
	return pid
}

// process handles one worklist pop. Only flows whose in-state changed since
// they were last pushed through the block are re-evaluated.
func (e *engine) process(n ir.BlockID) {
	block := e.prog.Block(n)

	isCondBr := false
	if t := block.Terminator(); t != nil && t.Op == ir.OpCondBr && !t.Resolved {
		isCondBr = true
	}
	// injectLanes starts the block's speculative flows from one source
	// state (either the normal flow or a post-rollback SS flow — after a
	// rollback, execution is architectural again and can itself
	// mispredict, so SS flows must seed lanes too). fk identifies the
	// source flow for the depth oracle.
	injectLanes := func(src, out *cache.State, fk flowKey) {
		if !e.opts.Speculative || !isCondBr {
			return
		}
		depth := e.depthFor(block, src, fk)
		if depth <= 0 {
			return
		}
		for _, c := range e.colorsAt[n] {
			e.joinLane(c.specSucc, c.id, laneVal{st: out, budget: depth})
			e.stats.LanesSpawned++
		}
	}

	// Normal (architectural) flow.
	if e.dirtyS[n] {
		e.dirtyS[n] = false
		if !e.S[n].IsBottom {
			out := e.transferBlock(block, e.S[n])
			for _, s := range e.succs[n] {
				e.joinS(s, out)
			}
			injectLanes(e.S[n], out, normalFlow)
			e.pool.Put(out)
		}
	}

	// Speculative post-rollback flows (Algorithm 2/3: SS states). At the
	// color's vn_stop they convert back into the normal state; elsewhere
	// they propagate in parallel with it. The snapshot of the dirty order
	// keeps the walk deterministic; flows re-dirtied while we process them
	// (self-loops) land in a fresh order slice and re-enqueue the block.
	dirtySS := e.dirtySSOrder[n]
	e.dirtySSOrder[n] = nil
	for _, pid := range dirtySS {
		delete(e.dirtySS[n], pid)
		st := e.SS[n][pid]
		p := e.parts[pid]
		if n == p.color.stop {
			e.joinS(n, st)
			continue
		}
		out := e.transferBlock(block, st)
		for _, s := range e.succs[n] {
			e.joinSS(s, pid, out)
		}
		injectLanes(st, out, flowKey{colorID: p.color.id, src: p.src})
		e.pool.Put(out)
	}

	// Wrong-path lanes: explore the speculated side, accumulating a rollback
	// state after every memory access within the budget.
	for colorID := range e.dirtyLane[n] {
		if !e.dirtyLane[n][colorID] {
			continue
		}
		e.dirtyLane[n][colorID] = false
		lv := e.Lane[n][colorID]
		c := e.colors[colorID]
		out, rollback := e.laneWalk(block, lv)
		if out.budget > 0 {
			for _, s := range e.succs[n] {
				e.joinLane(s, colorID, out)
			}
		} else {
			e.stats.LanesExpired++
		}
		if !rollback.IsBottom {
			e.injectRollback(c, n, rollback)
			e.stats.Rollbacks++
		}
		e.pool.Put(out.st)
		e.pool.Put(rollback)
	}
}

// laneWalk pushes a lane through a block, consuming budget per instruction
// and joining the state after each memory access into the rollback
// accumulator (a rollback may occur at any moment, §5.1). Both returned
// states are pooled scratch the caller must Put back.
//
// The rollback accumulation points are structural — every memory access in
// range, whether or not this engine's set filter owns it (a filtered
// Transfer is then a no-op, but the rollback join must still happen so the
// per-set-group engines inject the same SS flows as the dense engine).
func (e *engine) laneWalk(b *ir.Block, lv laneVal) (laneVal, *cache.State) {
	st := e.pool.Get()
	st.CopyFrom(lv.st)
	budget := lv.budget
	rollback := e.pool.Get()
	rollback.SetBottom()
	for i := range b.Instrs {
		if budget == 0 {
			break
		}
		budget--
		if acc, ok := e.accessSpec[b.Instrs[i].ID]; ok {
			e.dom.Transfer(st, acc)
			e.stats.SpecTransfers++
			e.dom.JoinInto(rollback, st)
		}
	}
	return laneVal{st: st, budget: budget}, rollback
}

// injectRollback feeds an accumulated rollback state of color c (observed in
// block src) into the other branch, per the merge strategy.
func (e *engine) injectRollback(c *color, src ir.BlockID, st *cache.State) {
	switch e.opts.Strategy {
	case StrategyMergeAtRollback:
		e.joinS(c.otherSucc, st)
	case StrategyJustInTime:
		if c.otherSucc == c.stop {
			// Degenerate diamond: the other side is the merge point itself.
			e.joinS(c.otherSucc, st)
			return
		}
		e.joinSS(c.otherSucc, e.partFor(c, -1), st)
	case StrategyPerRollbackBlock:
		if c.otherSucc == c.stop {
			e.joinS(c.otherSucc, st)
			return
		}
		e.joinSS(c.otherSucc, e.partFor(c, src), st)
	}
}

// blockSlice is the cached branchSlice result for one condbr block.
type blockSlice struct {
	loads    map[int]bool
	resolved bool
}

// branchSlice computes the backward slice of a block's branch condition
// within the block: the load instruction ids feeding the condition, and
// whether the condition is fully resolved by in-block computation. It is
// purely structural (state-independent), so the per-set grouping can use it
// to find the cache sets the §6.2 depth decision depends on.
func branchSlice(block *ir.Block) (sliceLoads map[int]bool, resolved bool) {
	t := block.Terminator()
	if t.A.IsConst {
		return nil, true
	}
	needed := map[ir.Reg]bool{t.A.Reg: true}
	sliceLoads = map[int]bool{}
	for i := len(block.Instrs) - 2; i >= 0; i-- {
		in := &block.Instrs[i]
		if !writesDst(in.Op) || !needed[in.Dst] {
			continue
		}
		delete(needed, in.Dst)
		if in.Op == ir.OpLoad {
			sliceLoads[in.ID] = true
			if !in.Idx.IsConst {
				needed[in.Idx.Reg] = true
			}
			continue
		}
		for _, v := range regOperands(in) {
			needed[v] = true
		}
	}
	// Unresolved register reads mean the condition depends on values computed
	// before this block; we cannot cheaply prove the resolving loads hit.
	return sliceLoads, len(needed) == 0
}

// depthFor implements §6.2: use b_h when every load feeding the branch
// condition (within the branch block) is proved a must-hit against the
// source state, b_m otherwise. As the fixpoint weakens states, the choice
// can only move from b_h to b_m, so convergence is monotone. Engines running
// behind a depth oracle look the flow's converged depth up instead (their
// set filter does not cover the branch-slice loads' state).
func (e *engine) depthFor(block *ir.Block, src *cache.State, fk flowKey) int {
	if !e.opts.DynamicDepthBounding {
		return e.opts.DepthMiss
	}
	if e.oracle != nil {
		if d, ok := e.oracle[depthKey{block: block.ID, flow: fk}]; ok {
			return d
		}
		return e.opts.DepthMiss
	}
	d, hit := e.depthForLive(block, src)
	// Count only live decisions (not oracle lookups or recordDepths replays):
	// a decision is one §6.2 classification of the branch slice against the
	// current state, pruned to b_h on a proved must-hit.
	if hit {
		e.stats.DepthHitBounds++
	} else {
		e.stats.DepthMissBounds++
	}
	return d
}

// depthForLive reports the speculation depth for a branch against a concrete
// source state, plus whether §6.2 pruned it to the must-hit bound b_h (the
// bool disambiguates the two cases when DepthHit == DepthMiss).
func (e *engine) depthForLive(block *ir.Block, src *cache.State) (int, bool) {
	bs, ok := e.slices[block.ID]
	if !ok {
		bs.loads, bs.resolved = branchSlice(block)
	}
	if !bs.resolved {
		return e.opts.DepthMiss, false
	}
	if len(bs.loads) == 0 {
		return e.opts.DepthHit, true
	}
	sliceLoads := bs.loads
	st := e.pool.Get()
	st.CopyFrom(src)
	defer e.pool.Put(st)
	for i := range block.Instrs {
		in := &block.Instrs[i]
		acc, ok := e.access[in.ID]
		if !ok {
			continue
		}
		if sliceLoads[in.ID] && e.dom.Classify(st, acc) != cache.AlwaysHit {
			return e.opts.DepthMiss, false
		}
		e.dom.Transfer(st, acc)
	}
	return e.opts.DepthHit, true
}

// recordDepths replays §6.2's depth decision against the converged states of
// every flow at every conditional branch, producing the oracle consumed by
// the set groups that do not own the branch-slice loads' cache sets. At the
// fixpoint the live decision equals the last one taken during iteration
// (depth choice is monotone in the state), so the recorded depths are
// exactly the ones the dense engine ends up using.
func (e *engine) recordDepths() depthOracle {
	o := depthOracle{}
	for _, b := range e.prog.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr || t.Resolved {
			continue
		}
		if !e.S[b.ID].IsBottom {
			d, _ := e.depthForLive(b, e.S[b.ID])
			o[depthKey{block: b.ID, flow: normalFlow}] = d
		}
		for pid, st := range e.SS[b.ID] {
			if st.IsBottom {
				continue
			}
			p := e.parts[pid]
			fk := flowKey{colorID: p.color.id, src: p.src}
			d, _ := e.depthForLive(b, st)
			o[depthKey{block: b.ID, flow: fk}] = d
		}
	}
	return o
}

func writesDst(op ir.Op) bool {
	switch op {
	case ir.OpStore, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpNop:
		return false
	}
	return true
}

// regOperands returns the register operands an instruction reads (excluding
// Load, which is handled by its caller).
func regOperands(in *ir.Instr) []ir.Reg {
	var regs []ir.Reg
	add := func(v ir.Value) {
		if !v.IsConst {
			regs = append(regs, v.Reg)
		}
	}
	switch in.Op {
	case ir.OpConst, ir.OpNop, ir.OpBr:
		// no register reads
	case ir.OpMov, ir.OpNeg, ir.OpNot, ir.OpBool, ir.OpCondBr, ir.OpRet:
		add(in.A)
	case ir.OpStore:
		add(in.A)
		add(in.Idx)
	default: // binops
		add(in.A)
		add(in.B)
	}
	return regs
}

// result assembles the classification post-pass over the fixpoint states.
func (e *engine) result() *Result {
	res := &Result{
		Prog:       e.prog,
		Graph:      e.g,
		Layout:     e.l,
		Opts:       e.opts,
		In:         e.S,
		SpecIn:     e.SS,
		Access:     map[int]AccessInfo{},
		SpecAccess: map[int]cache.Classification{},
		Iterations: e.iter,
		Branches:   e.prog.CondBranchCount(),
		Colors:     len(e.colors),
		domain:     e.dom,
		idx:        e.idx,
	}
	res.PoolStats = e.pool.Stats()
	e.stats.Iterations = int64(e.iter)
	e.stats.Colors = int64(len(e.colors))
	e.stats.StatesPooled = int64(res.PoolStats.Reused())
	res.Stats = e.stats
	for _, c := range e.colors {
		res.Flows = append(res.Flows, SpecFlow{
			Branch:    c.branch,
			Predicted: c.predicted,
			SpecSucc:  c.specSucc,
			OtherSucc: c.otherSucc,
			Stop:      c.stop,
		})
	}
	e.classify(res)
	return res
}

// classify walks every flow through every block once more, combining
// per-access verdicts: an access is always-hit only if it is always-hit on
// the normal flow and on every speculative flow passing through it. Under a
// set filter only owned accesses are judged (and recorded); foreign accesses
// still appear in the walk but their transfers are no-ops and their verdicts
// belong to the engine owning their sets.
func (e *engine) classify(res *Result) {
	st := e.pool.Get()
	defer e.pool.Put(st)
	for _, b := range e.prog.Blocks {
		var flows []*cache.State
		if !e.S[b.ID].IsBottom {
			flows = append(flows, e.S[b.ID])
		}
		for _, f := range e.SS[b.ID] {
			if !f.IsBottom {
				flows = append(flows, f)
			}
		}
		for fi, f := range flows {
			st.CopyFrom(f)
			for i := range b.Instrs {
				in := &b.Instrs[i]
				acc, ok := e.access[in.ID]
				if !ok || !e.dom.Owns(acc) {
					continue
				}
				cls := e.dom.Classify(st, acc)
				if fi == 0 {
					res.Access[in.ID] = AccessInfo{Instr: in, Block: b.ID, Acc: acc, Class: cls}
				} else if prev := res.Access[in.ID]; prev.Class != cls {
					prev.Class = cache.Unknown
					res.Access[in.ID] = prev
				}
				e.dom.Transfer(st, acc)
			}
		}
		// Wrong-path verdicts from lanes (#SpMiss).
		for _, lv := range e.Lane[b.ID] {
			if lv.budget < 0 || lv.st.IsBottom {
				continue
			}
			st.CopyFrom(lv.st)
			budget := lv.budget
			for i := range b.Instrs {
				if budget == 0 {
					break
				}
				budget--
				in := &b.Instrs[i]
				acc, ok := e.accessSpec[in.ID]
				if !ok || !e.dom.Owns(acc) {
					continue
				}
				cls := e.dom.Classify(st, acc)
				if prev, seen := res.SpecAccess[in.ID]; !seen {
					res.SpecAccess[in.ID] = cls
				} else if prev != cls {
					res.SpecAccess[in.ID] = cache.Unknown
				}
				e.dom.Transfer(st, acc)
			}
		}
	}
}
